// ftspan_cli — command-line access to the library.
//
//   ftspan_cli gen <gnp|grid|geometric|complete> <args...> -o graph.txt
//   ftspan_cli spanner   -i graph.txt -k K [--algo greedy|bs|tz] [-o out.txt]
//   ftspan_cli ft        -i graph.txt -k K -r R [-c CONST] [--threads T]
//   ftspan_cli ftedge    -i graph.txt -k K -r R [-c CONST] [--threads T]
//   ftspan_cli ft2       -i digraph.txt -r R            (directed 2-spanner)
//   ftspan_cli verify    -i graph.txt -s spanner.txt -k K [-r R] [--exact]
//   ftspan_cli check     -i graph.txt -s spanner.txt -k K -r R [--threads T]
//   ftspan_cli import    -i in.gr -o out.fgb [--format auto|dimacs|edgelist]
//   ftspan_cli info      -i graph.fgb         (validate + print the header)
//   ftspan_cli corpus    -o DIR [--scale S] [--seed S]
//   ftspan_cli selftest                                  (used by ctest)
//   ftspan_cli help                                      (full usage text)
//
// Graph files use the library's edge-list format (see src/graph/io.hpp) or
// the ftspan.graph.v1 binary format (src/graph/graph_file.hpp, written by
// `import`, `corpus`, and any `--binary` emit); every -i flag sniffs which
// one it was given by the file's magic.
// `--threads T` fans the conversion's sampling iterations across T worker
// threads (0 = all hardware threads); the output edge set is bit-identical
// to --threads 1 for the same seed (see src/ftspanner/parallel.hpp).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "ftspanner/conversion.hpp"
#include "ftspanner/edge_faults.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/import.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/workloads.hpp"
#include "serve/query.hpp"
#include "serve/server.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/greedy.hpp"
#include "spanner/thorup_zwick.hpp"
#include "spanner/verify.hpp"
#include "spanner2/rounding.hpp"
#include "spanner2/verify2.hpp"
#include "util/timer.hpp"
#include "validate/stretch_oracle.hpp"

using namespace ftspan;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key value / -k value
  bool flag(const std::string& name) const { return options.count(name) > 0; }
  std::string get(const std::string& name, const std::string& dflt = "") const {
    const auto it = options.find(name);
    return it == options.end() ? dflt : it->second;
  }
  double num(const std::string& name, double dflt) const {
    const auto it = options.find(name);
    return it == options.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
};

Args parse(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("-", 0) == 0) {
      while (!s.empty() && s[0] == '-') s.erase(s.begin());
      if (i + 1 < argc && argv[i + 1][0] != '-')
        a.options[s] = argv[++i];
      else
        a.options[s] = "1";
    } else {
      a.positional.push_back(s);
    }
  }
  return a;
}

/// Full usage text; printed to `out` (stderr on a parse error, stdout for
/// the `help` subcommand / --help). Covers every subcommand and flag.
void print_usage(std::FILE* out) {
  std::fprintf(out,
      "ftspan_cli — fault-tolerant spanners (Dinitz–Krauthgamer, PODC 2011)\n"
      "\n"
      "usage: ftspan_cli <subcommand> [options]\n"
      "\n"
      "subcommands:\n"
      "  gen gnp N P          random G(n, p) graph\n"
      "  gen grid ROWS COLS   ROWS x COLS grid graph\n"
      "  gen geometric N R    random geometric graph, connect radius R\n"
      "  gen complete N       complete graph K_N\n"
      "      common gen options: [--seed S] [-o FILE] [--binary]\n"
      "      without -o the graph is written to stdout (edge-list format,\n"
      "      see src/graph/io.hpp); --binary writes ftspan.graph.v1 instead\n"
      "      (requires -o; see docs/FORMATS.md)\n"
      "\n"
      "  import               stream a text instance into the binary format\n"
      "      -i FILE          input: DIMACS .gr (c/p/a/e lines) or this\n"
      "                       repo's edge-list format (required)\n"
      "      -o FILE          output ftspan.graph.v1 file (required)\n"
      "      --format F       auto (default, sniffed) | dimacs | edgelist\n"
      "\n"
      "  info                 validate a binary graph file, print its header\n"
      "      -i FILE          ftspan.graph.v1 file (required)\n"
      "\n"
      "  corpus               write one small binary graph per generated\n"
      "                       workload family (the CI format-smoke corpus)\n"
      "      -o DIR           output directory (required; must exist)\n"
      "      --scale S        workload scale factor, default 0.25\n"
      "      --seed S         workload seed, default 1\n"
      "\n"
      "  spanner              plain k-spanner of an input graph\n"
      "      -i FILE          input graph (required)\n"
      "      -k K             stretch, default 3\n"
      "      --algo A         greedy | bs (Baswana–Sen) | tz (Thorup–Zwick)\n"
      "      --seed S         RNG seed for randomized algorithms, default 1\n"
      "      -o FILE          write the spanner as a graph file\n"
      "\n"
      "  ft                   r-VERTEX-fault-tolerant k-spanner (Theorem 2.1\n"
      "                       conversion over the greedy spanner)\n"
      "      -i FILE          input graph (required)\n"
      "      -k K             stretch, default 3\n"
      "      -r R             fault tolerance, default 1 (R >= 1)\n"
      "      -c CONST         iteration constant c in alpha = c(r+2)ln(n)/q,\n"
      "                       default 1 (the proof constant; A1 shows smaller\n"
      "                       values usually suffice)\n"
      "      --threads T      fan iterations across T workers; 0 = all\n"
      "                       hardware threads, default 1. Output is\n"
      "                       bit-identical for every T given the same seed.\n"
      "      --seed S         RNG seed, default 1\n"
      "      -o FILE          write the spanner as a graph file\n"
      "\n"
      "  ftedge               r-EDGE-fault-tolerant k-spanner (the edge-fault\n"
      "                       variant of the conversion); same options as ft\n"
      "\n"
      "  ft2                  min-cost r-fault-tolerant 2-spanner of a DIRECTED\n"
      "                       graph (Section 3: LP rounding, O(r log n) approx)\n"
      "      -i FILE          input digraph (required)\n"
      "      -r R             fault tolerance, default 1\n"
      "      --seed S         RNG seed, default 1\n"
      "      -o FILE          write the 2-spanner as a digraph file\n"
      "\n"
      "  verify               check a (fault-tolerant) spanner\n"
      "      -i FILE          original graph (required)\n"
      "      -s FILE          candidate spanner (required)\n"
      "      -k K             stretch to check, default 3\n"
      "      -r R             fault tolerance; 0 (default) = plain stretch\n"
      "      --exact          enumerate all fault sets of size <= R instead\n"
      "                       of the sampled + adversarial check\n"
      "\n"
      "  check                validate a spanner with the batched\n"
      "                       StretchOracle (one source-batched Dijkstra\n"
      "                       pair per endpoint, fault sets fanned across\n"
      "                       workers, deterministic worst witness)\n"
      "      -i FILE          original graph (required)\n"
      "      -s FILE          candidate spanner (required)\n"
      "      -k K             stretch to check, default 3\n"
      "      -r R             fault tolerance; 0 (default) = plain stretch\n"
      "      --exact          enumerate all fault sets of size <= R\n"
      "      --trials N       random fault sets (sampled mode), default 60\n"
      "      --adversarial N  targeted adversary probes, default 80\n"
      "      --threads T      fan fault sets across T workers; 0 = all\n"
      "                       hardware threads, default 1. The result is\n"
      "                       bit-identical for every T.\n"
      "      --seed S         RNG seed for the sampled mode, default 7\n"
      "\n"
      "  bench                run a scenario through the unified runner\n"
      "                       (workload x algorithm x k/r/threads sweep x\n"
      "                       validation; see docs/SCENARIOS.md)\n"
      "      bench <preset> [key=value ...]   run a named preset, overriding\n"
      "                                       spec keys from the command line\n"
      "      bench <key=value ...>            run an inline scenario spec\n"
      "      bench --list                     list presets, workloads, algos\n"
      "      --format F       table (default) | csv | json\n"
      "      -o FILE          write the report to FILE instead of stdout\n"
      "\n"
      "  serve                precompute an FT spanner and answer distance /\n"
      "                       stretch / fault-what-if queries over HTTP/JSON\n"
      "                       (GET /distance?s=S&t=T[&avoid=L],\n"
      "                       /stretch?s=S&t=T[&avoid=L], /stats, /healthz;\n"
      "                       POST /admin/reload[?path=F] hot-swaps the\n"
      "                       graph; avoid L = comma list: 7 = vertex 7,\n"
      "                       3-5 = edge)\n"
      "      -i FILE          input graph (required)\n"
      "      -k K             stretch, default 3\n"
      "      -r R             fault tolerance, default 1\n"
      "      -c CONST         conversion iteration constant, default 1\n"
      "      --host H         bind address, default 127.0.0.1\n"
      "      --port P         port; 0 picks an ephemeral one (printed),\n"
      "                       default 8080\n"
      "      --threads T      query worker lanes, default 1\n"
      "      --cache N        answer-cache entries (0 disables), default 1024\n"
      "      --seed S         RNG seed for the conversion, default 1\n"
      "      --max-pipeline N requests parsed per connection per poll round,\n"
      "                       default 16 (excess defers, never drops)\n"
      "      --max-pending N  queries admitted per batch before 503 +\n"
      "                       Retry-After shedding, default 512\n"
      "      --deadline-ms D  per-request deadline (503 past it); 0 = off\n"
      "      SIGINT/SIGTERM stop gracefully; SIGHUP reloads the graph file\n"
      "      (a failed reload keeps the old graph serving; see /healthz).\n"
      "\n"
      "  version              print the build's git describe and build type\n"
      "  selftest             gen -> ft -> exact-verify round trip (ctest)\n"
      "  help                 print this text\n"
      "\n"
      "exit status: 0 on success / valid, 1 on failure / invalid, 2 on usage\n"
      "errors.\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

void emit(const Graph& g, const std::string& path, bool binary = false) {
  if (path.empty()) {
    if (binary)
      throw std::runtime_error("--binary needs -o FILE (binary to a "
                               "terminal is never what you want)");
    write_graph(std::cout, g);
  } else {
    if (binary)
      save_graph_binary(path, g);
    else
      save_graph(path, g);
    std::printf("wrote %s (n=%zu, m=%zu%s)\n", path.c_str(), g.num_vertices(),
                g.num_edges(), binary ? ", ftspan.graph.v1" : "");
  }
}

int cmd_gen(const Args& a) {
  if (a.positional.empty()) return usage();
  const std::string kind = a.positional[0];
  const std::uint64_t seed =
      static_cast<std::uint64_t>(a.num("seed", 1));
  Graph g;
  if (kind == "gnp" && a.positional.size() >= 3) {
    g = gnp(std::strtoul(a.positional[1].c_str(), nullptr, 10),
            std::strtod(a.positional[2].c_str(), nullptr), seed);
  } else if (kind == "grid" && a.positional.size() >= 3) {
    g = grid(std::strtoul(a.positional[1].c_str(), nullptr, 10),
             std::strtoul(a.positional[2].c_str(), nullptr, 10));
  } else if (kind == "geometric" && a.positional.size() >= 3) {
    g = random_geometric(std::strtoul(a.positional[1].c_str(), nullptr, 10),
                         std::strtod(a.positional[2].c_str(), nullptr), seed);
  } else if (kind == "complete" && a.positional.size() >= 2) {
    g = complete(std::strtoul(a.positional[1].c_str(), nullptr, 10));
  } else {
    return usage();
  }
  emit(g, a.get("o"), a.flag("binary"));
  return 0;
}

int cmd_spanner(const Args& a) {
  const std::string in = a.get("i");
  const double k = a.num("k", 3.0);
  if (in.empty()) return usage();
  const Graph g = load_graph_any(in);
  const std::string algo = a.get("algo", "greedy");
  const std::uint64_t seed = static_cast<std::uint64_t>(a.num("seed", 1));

  std::vector<EdgeId> edges;
  if (algo == "greedy") {
    edges = greedy_spanner(g, k);
  } else if (algo == "bs") {
    edges = baswana_sen_spanner(g, static_cast<std::size_t>((k + 1) / 2), seed);
  } else if (algo == "tz") {
    edges = thorup_zwick_spanner(g, static_cast<std::size_t>((k + 1) / 2), seed);
  } else {
    return usage();
  }
  const Graph h = g.edge_subgraph(edges);
  std::printf("%s %g-spanner: %zu -> %zu edges, stretch (exact over edges): %.3f\n",
              algo.c_str(), k, g.num_edges(), h.num_edges(),
              max_edge_stretch(g, h));
  emit(h, a.get("o"), a.flag("binary"));
  return 0;
}

/// Shared driver for `ft` and `ftedge`: parse the common flags, run the
/// conversion, sampled-check the result, print the summary line, emit -o,
/// and map validity to the exit status. `edge_faults` selects the fault
/// model (and the matching checker).
int run_ft_conversion(const Args& a, bool edge_faults) {
  const std::string in = a.get("i");
  if (in.empty()) return usage();
  const Graph g = load_graph_any(in);
  const double k = a.num("k", 3.0);
  const std::size_t r = static_cast<std::size_t>(a.num("r", 1));
  const double c = a.num("c", 1.0);
  const std::size_t threads = static_cast<std::size_t>(a.num("threads", 1));
  const std::uint64_t seed = static_cast<std::uint64_t>(a.num("seed", 1));

  // One branch per fault model: run the conversion and its matching sampled
  // checker, landing in a model-agnostic summary.
  struct Summary {
    Graph h;
    std::size_t iterations = 0;
    std::size_t threads_used = 1;
    bool valid = false;
    double worst_stretch = 0;
  };
  Summary s;
  if (edge_faults) {
    EdgeFtOptions opt;
    opt.iteration_constant = c;
    opt.threads = threads;
    const auto res = ft_edge_greedy_spanner(g, k, r, seed, opt);
    Graph h = g.edge_subgraph(res.edges);
    const auto check = check_edge_ft_spanner_sampled(g, h, k, r, 40, 60, 99);
    s = {std::move(h), res.iterations, res.threads_used, check.valid,
         check.worst_stretch};
  } else {
    ConversionOptions opt;
    opt.iteration_constant = c;
    opt.threads = threads;
    const auto res = ft_greedy_spanner(g, k, r, seed, opt);
    Graph h = g.edge_subgraph(res.edges);
    const auto check = check_ft_spanner_sampled(g, h, k, r, 40, 60, 99);
    s = {std::move(h), res.iterations, res.threads_used, check.valid,
         check.worst_stretch};
  }
  std::printf("%zu-%sfault-tolerant %g-spanner: %zu -> %zu edges "
              "(%zu iterations, %zu threads); sampled check: %s "
              "(worst stretch %.3f)\n",
              r, edge_faults ? "edge-" : "", k, g.num_edges(),
              s.h.num_edges(), s.iterations, s.threads_used,
              s.valid ? "valid" : "INVALID", s.worst_stretch);
  emit(s.h, a.get("o"), a.flag("binary"));
  return s.valid ? 0 : 1;
}

/// `ft` — the vertex-fault conversion of Theorem 2.1 over the greedy
/// spanner, followed by a sampled fault-tolerance check of the output.
int cmd_ft(const Args& a) { return run_ft_conversion(a, /*edge_faults=*/false); }

/// `ftedge` — the edge-fault variant of the conversion, checked with the
/// sampled + adversarial edge-fault checker.
int cmd_ftedge(const Args& a) {
  return run_ft_conversion(a, /*edge_faults=*/true);
}

int cmd_ft2(const Args& a) {
  const std::string in = a.get("i");
  if (in.empty()) return usage();
  std::ifstream is(in);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", in.c_str());
    return 1;
  }
  const Digraph g = read_digraph(is);
  const std::size_t r = static_cast<std::size_t>(a.num("r", 1));
  const auto res =
      approx_ft_2spanner(g, r, static_cast<std::uint64_t>(a.num("seed", 1)));
  std::printf("%zu-fault-tolerant 2-spanner: cost %.3f (LP lower bound %.3f), "
              "valid: %s\n",
              r, res.cost, res.lp_value, res.valid ? "yes" : "NO");
  const std::string out = a.get("o");
  if (!out.empty()) {
    Digraph h(g.num_vertices());
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      if (res.in_spanner[id]) {
        const DiEdge& e = g.edge(id);
        h.add_edge(e.u, e.v, e.w);
      }
    std::ofstream os(out);
    write_digraph(os, h);
    std::printf("wrote %s\n", out.c_str());
  }
  return res.valid ? 0 : 1;
}

int cmd_verify(const Args& a) {
  const std::string in = a.get("i"), sp = a.get("s");
  if (in.empty() || sp.empty()) return usage();
  const Graph g = load_graph_any(in);
  const Graph h = load_graph_any(sp);
  const double k = a.num("k", 3.0);
  const std::size_t r = static_cast<std::size_t>(a.num("r", 0));
  if (r == 0) {
    const double stretch = max_edge_stretch(g, h);
    std::printf("stretch: %.4f — %s %g-spanner\n", stretch,
                stretch <= k * (1 + 1e-9) ? "valid" : "NOT a", k);
    return stretch <= k * (1 + 1e-9) ? 0 : 1;
  }
  const auto check = a.flag("exact")
                         ? check_ft_spanner_exact(g, h, k, r)
                         : check_ft_spanner_sampled(g, h, k, r, 60, 80, 7);
  std::printf("%s check over %zu fault sets: %s (worst stretch %.4f)\n",
              a.flag("exact") ? "exact" : "sampled", check.fault_sets_checked,
              check.valid ? "valid" : "INVALID", check.worst_stretch);
  return check.valid ? 0 : 1;
}

/// `check` — the oracle-backed validator: exact (fault-set enumeration) or
/// sampled + adversarial, with a threads knob and a witness report.
int cmd_check(const Args& a) {
  const std::string in = a.get("i"), sp = a.get("s");
  if (in.empty() || sp.empty()) return usage();
  const Graph g = load_graph_any(in);
  const Graph h = load_graph_any(sp);
  const double k = a.num("k", 3.0);
  const std::size_t r = static_cast<std::size_t>(a.num("r", 0));
  const bool exact = a.flag("exact") || r == 0;  // r = 0 enumerates only ∅

  FtCheckOptions opt;
  opt.threads = static_cast<std::size_t>(a.num("threads", 1));
  const StretchOracle oracle(g, h, k);
  Timer timer;
  const FtCheckResult res =
      exact ? oracle.check_exact(r, opt)
            : oracle.check_sampled(
                  r, static_cast<std::size_t>(a.num("trials", 60)),
                  static_cast<std::size_t>(a.num("adversarial", 80)),
                  static_cast<std::uint64_t>(a.num("seed", 7)), opt);
  const double ms = timer.millis();

  std::printf("%s oracle check: %s (worst stretch %.4f over %zu fault sets, "
              "%.1f ms, %.0f sets/s)\n",
              exact ? "exact" : "sampled", res.valid ? "valid" : "INVALID",
              res.worst_stretch, res.fault_sets_checked, ms,
              res.fault_sets_checked / (ms > 0 ? ms / 1e3 : 1.0));
  if (res.witness_u != kInvalidVertex) {
    std::printf("worst pair: (%u, %u), fault set {", res.witness_u,
                res.witness_v);
    bool first = true;
    for (const Vertex v : res.witness_faults.to_vector()) {
      std::printf("%s%u", first ? "" : ", ", v);
      first = false;
    }
    std::printf("}\n");
  }
  return res.valid ? 0 : 1;
}

// Configure-time stamps (see CMakeLists.txt); fall back gracefully when the
// CLI is compiled outside the CMake build.
#ifndef FTSPAN_GIT_DESCRIBE
#define FTSPAN_GIT_DESCRIBE "unknown"
#endif
#ifndef FTSPAN_BUILD_TYPE
#define FTSPAN_BUILD_TYPE "unknown"
#endif

/// `import` — stream a DIMACS .gr / text edge-list file into the
/// ftspan.graph.v1 binary format (src/graph/import.hpp).
int cmd_import(const Args& a) {
  const std::string in = a.get("i"), out = a.get("o");
  if (in.empty() || out.empty()) return usage();
  const std::string fmt = a.get("format", "auto");
  ImportFormat format;
  if (fmt == "auto") {
    format = ImportFormat::kAuto;
  } else if (fmt == "dimacs") {
    format = ImportFormat::kDimacs;
  } else if (fmt == "edgelist") {
    format = ImportFormat::kEdgeList;
  } else {
    std::fprintf(stderr, "unknown --format '%s' (auto | dimacs | edgelist)\n",
                 fmt.c_str());
    return 2;
  }
  const ImportResult res = import_graph_file(in, out, format);
  std::printf("imported %s -> %s: n=%zu m=%zu (%zu lines, %zu arcs seen, "
              "%zu duplicates dropped, %zu self-loops dropped)\n",
              in.c_str(), out.c_str(), res.n, res.edges, res.lines,
              res.arcs_seen, res.duplicates, res.self_loops);
  return 0;
}

/// `info` — validate a binary graph file and print its header facts.
int cmd_info(const Args& a) {
  const std::string in = a.get("i");
  if (in.empty()) return usage();
  if (!is_graph_binary(in)) {
    std::fprintf(stderr, "%s is not an ftspan.graph.v1 file\n", in.c_str());
    return 1;
  }
  const MappedGraph mg(in);
  const GraphFileHeader& h = mg.header();
  std::printf("%s: ftspan.graph.v1\n", in.c_str());
  std::printf("  n                %llu\n", (unsigned long long)h.n);
  std::printf("  m                %llu\n", (unsigned long long)h.m);
  std::printf("  arcs             %llu\n", (unsigned long long)h.num_arcs);
  std::printf("  weights          %s, max %.17g, total (per arc) %.17g\n",
              h.weights_integral ? "integral" : "real", h.max_weight,
              h.total_weight);
  std::printf("  checksum         %016llx (verified)\n",
              (unsigned long long)h.checksum);
  return 0;
}

/// `corpus` — one tiny binary graph per generated workload family, written
/// to a directory: the committed-seed corpus CI's format-smoke job runs on.
int cmd_corpus(const Args& a) {
  const std::string dir = a.get("o");
  if (dir.empty()) return usage();
  runner::WorkloadParams wp;
  wp.scale = a.num("scale", 0.25);
  wp.seed = static_cast<std::uint64_t>(a.num("seed", 1));
  for (const std::string& name : runner::workload_registry().names()) {
    // Skip the families that exist to consume external input (file) or to
    // parameterize the daemon load test (serve) — neither is a generator
    // family the corpus should snapshot.
    if (name == "file" || name == "serve") continue;
    const runner::WorkloadInstance inst =
        runner::workload_registry().get(name).make(wp);
    const std::string path = dir + "/" + name + ".fgb";
    save_graph_binary(path, inst.g);
    std::printf("wrote %s (%s, n=%zu, m=%zu)\n", path.c_str(),
                inst.params.c_str(), inst.g.num_vertices(),
                inst.g.num_edges());
  }
  return 0;
}

/// The running daemon, for the signal handlers: stop() and trigger_reload()
/// are async-signal-safe (a single self-pipe write), so SIGINT/SIGTERM shut
/// the loop down gracefully — flush, close, return from run() — and SIGHUP
/// hot-reloads the graph, instead of killing the process mid-response.
serve::ServeDaemon* g_daemon = nullptr;

extern "C" void serve_signal_handler(int) {
  if (g_daemon != nullptr) g_daemon->stop();
}

extern "C" void serve_reload_handler(int) {
  if (g_daemon != nullptr) g_daemon->trigger_reload();
}

/// `serve` — precompute the FT spanner, then answer queries over HTTP.
/// SIGHUP or POST /admin/reload rebuilds from the graph file (or a new
/// `path=` target) on a background thread and swaps epochs atomically.
int cmd_serve(const Args& a) {
  const std::string in = a.get("i");
  if (in.empty()) return usage();
  const double k = a.num("k", 3.0);
  const std::size_t r = static_cast<std::size_t>(a.num("r", 1));
  const std::size_t threads = static_cast<std::size_t>(a.num("threads", 1));
  const std::uint64_t seed = static_cast<std::uint64_t>(a.num("seed", 1));

  ConversionOptions copt;
  copt.iteration_constant = a.num("c", 1.0);
  copt.threads = threads;

  serve::QueryEngine::Options qo;
  qo.workers = threads == 0 ? 1 : threads;
  qo.cache_capacity = static_cast<std::size_t>(a.num("cache", 1024));

  // The reload builder: load + convert + engine-build, identically to the
  // initial boot. An empty path means "the current source again" (the
  // SIGHUP shape); a failed build throws and leaves the old epoch serving.
  const auto build_epoch =
      [k, r, seed, copt, qo](const std::string& path) {
        Graph g = load_graph_any(path);
        const auto res = ft_greedy_spanner(g, k, r, seed, copt);
        return serve::EngineEpoch::build(std::move(g), res.edges, k, qo,
                                         path);
      };
  const std::shared_ptr<serve::EngineEpoch> first = build_epoch(in);
  auto epochs = std::make_shared<serve::EpochManager>(
      first, [build_epoch](const std::string& path) {
        return build_epoch(path);
      });

  serve::ServeOptions so;
  so.host = a.get("host", "127.0.0.1");
  so.port = static_cast<std::uint16_t>(a.num("port", 8080));
  so.max_pipeline = static_cast<std::size_t>(a.num("max-pipeline", 16));
  so.max_pending = static_cast<std::size_t>(a.num("max-pending", 512));
  so.deadline_ms = static_cast<int>(a.num("deadline-ms", 0));
  serve::ServeDaemon daemon(epochs, so);
  daemon.listen();

  g_daemon = &daemon;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGHUP, serve_reload_handler);

  std::printf("serving on %s:%u — n=%zu m=%zu spanner=%zu k=%g r=%zu "
              "workers=%zu\n",
              so.host.c_str(), daemon.port(), first->graph.num_vertices(),
              first->graph.num_edges(),
              first->engine->spanner().num_edges(), k, r, qo.workers);
  std::printf("endpoints: /distance?s=S&t=T[&avoid=L]  /stretch?...  "
              "/stats  /healthz  POST /admin/reload[?path=F]  "
              "(SIGINT/SIGTERM to stop, SIGHUP to reload)\n");
  std::fflush(stdout);  // scripts scrape the port line before querying

  daemon.run();
  g_daemon = nullptr;
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGHUP, SIG_DFL);

  const serve::ServeDaemon::Stats& st = daemon.stats();
  const serve::EpochManager::Status es = epochs->status();
  std::printf("stopped: %llu requests (%llu rejected, %llu shed, "
              "%llu deadline), %llu connections, epoch %llu "
              "(%llu reloads ok, %llu failed)\n",
              (unsigned long long)st.requests,
              (unsigned long long)st.bad_requests,
              (unsigned long long)(st.shed + st.internal_errors),
              (unsigned long long)st.deadline_hits,
              (unsigned long long)st.connections,
              (unsigned long long)es.epoch, (unsigned long long)es.ok,
              (unsigned long long)es.failed);
  return 0;
}

/// `version` — the build's git describe and CMake build type.
int cmd_version() {
  std::printf("ftspan %s (%s build)\n", FTSPAN_GIT_DESCRIBE,
              FTSPAN_BUILD_TYPE);
  return 0;
}

/// `bench` — the unified scenario runner: a named preset or an inline
/// key=value spec, optional spec overrides, table/csv/json output.
int cmd_bench(const Args& a) {
  if (a.flag("list")) {
    std::printf("presets:\n");
    for (const std::string& name : runner::preset_registry().names())
      std::printf("  %-28s %s\n", name.c_str(),
                  runner::preset_registry().get(name).summary.c_str());
    std::printf("\nworkloads:\n");
    for (const std::string& name : runner::workload_registry().names())
      std::printf("  %-28s %s\n", name.c_str(),
                  runner::workload_registry().get(name).summary.c_str());
    std::printf("\nalgorithms:\n");
    for (const std::string& name : runner::algorithm_registry().names())
      std::printf("  %-28s %s\n", name.c_str(),
                  runner::algorithm_registry().get(name).summary.c_str());
    return 0;
  }
  if (a.positional.empty()) return usage();

  // A first positional without '=' names a preset; everything else (and
  // every later positional) is appended as key=value overrides — the spec
  // parser lets later keys win.
  std::string spec_text;
  std::size_t first = 0;
  if (a.positional[0].find('=') == std::string::npos) {
    spec_text = runner::preset_registry().get(a.positional[0]).spec;
    first = 1;
  }
  for (std::size_t i = first; i < a.positional.size(); ++i)
    spec_text += " " + a.positional[i];
  const runner::ScenarioSpec spec = runner::ScenarioSpec::parse(spec_text);
  const runner::ScenarioReport report = runner::run_scenario(spec);

  const std::string format = a.get("format", "table");
  const std::string out = a.get("o");
  std::ofstream file;
  if (!out.empty()) {
    file.open(out);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
      return 1;
    }
  }
  std::ostream& os = out.empty() ? std::cout : file;
  if (format == "table") {
    os << "# spec: " << spec.to_string() << "\n";
    runner::print_table(report, os);
  } else if (format == "csv") {
    runner::print_csv(report, os);
  } else if (format == "json") {
    runner::print_json(report, os);
  } else {
    std::fprintf(stderr, "unknown --format '%s' (table | csv | json)\n",
                 format.c_str());
    return 2;
  }
  if (!out.empty()) std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_selftest() {
  // gen → ft → verify round trip through temp files; exercised by ctest.
  const std::string dir = "/tmp";
  const std::string gpath = dir + "/ftspan_cli_g.txt";
  const Graph g = gnp(24, 0.4, 5);
  save_graph(gpath, g);

  const Graph g2 = load_graph(gpath);
  if (g2.num_edges() != g.num_edges()) {
    std::fprintf(stderr, "selftest: io round trip failed\n");
    return 1;
  }
  const auto res = ft_greedy_spanner(g2, 3.0, 1, 3);
  const Graph h = g2.edge_subgraph(res.edges);
  const auto check = check_ft_spanner_exact(g2, h, 3.0, 1);
  if (!check.valid) {
    std::fprintf(stderr, "selftest: FT check failed (stretch %.3f)\n",
                 check.worst_stretch);
    return 1;
  }
  std::printf("selftest ok: n=%zu m=%zu spanner=%zu\n", g.num_vertices(),
              g.num_edges(), res.edges.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // `help` as a subcommand, or --help/-h anywhere (e.g. `ftspan_cli ft
  // --help`), prints the full usage to stdout.
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    if ((i == 1 && s == "help") || s == "--help" || s == "-h") {
      print_usage(stdout);
      return 0;
    }
  }
  const Args a = parse(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(a);
    if (cmd == "spanner") return cmd_spanner(a);
    if (cmd == "ft") return cmd_ft(a);
    if (cmd == "ftedge") return cmd_ftedge(a);
    if (cmd == "ft2") return cmd_ft2(a);
    if (cmd == "verify") return cmd_verify(a);
    if (cmd == "check") return cmd_check(a);
    if (cmd == "bench") return cmd_bench(a);
    if (cmd == "import") return cmd_import(a);
    if (cmd == "info") return cmd_info(a);
    if (cmd == "corpus") return cmd_corpus(a);
    if (cmd == "serve") return cmd_serve(a);
    if (cmd == "version") return cmd_version();
    if (cmd == "selftest") return cmd_selftest();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
