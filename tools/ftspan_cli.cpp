// ftspan_cli — command-line access to the library.
//
//   ftspan_cli gen <gnp|grid|geometric|complete> <args...> -o graph.txt
//   ftspan_cli spanner   -i graph.txt -k K [--algo greedy|bs|tz] [-o out.txt]
//   ftspan_cli ft        -i graph.txt -k K -r R [-c CONST] [-o out.txt]
//   ftspan_cli ft2       -i digraph.txt -r R            (directed 2-spanner)
//   ftspan_cli verify    -i graph.txt -s spanner.txt -k K [-r R] [--exact]
//   ftspan_cli selftest                                  (used by ctest)
//
// Graph files use the library's edge-list format (see src/graph/io.hpp).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "ftspanner/conversion.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/greedy.hpp"
#include "spanner/thorup_zwick.hpp"
#include "spanner/verify.hpp"
#include "spanner2/rounding.hpp"
#include "spanner2/verify2.hpp"

using namespace ftspan;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key value / -k value
  bool flag(const std::string& name) const { return options.count(name) > 0; }
  std::string get(const std::string& name, const std::string& dflt = "") const {
    const auto it = options.find(name);
    return it == options.end() ? dflt : it->second;
  }
  double num(const std::string& name, double dflt) const {
    const auto it = options.find(name);
    return it == options.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
};

Args parse(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("-", 0) == 0) {
      while (!s.empty() && s[0] == '-') s.erase(s.begin());
      if (i + 1 < argc && argv[i + 1][0] != '-')
        a.options[s] = argv[++i];
      else
        a.options[s] = "1";
    } else {
      a.positional.push_back(s);
    }
  }
  return a;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ftspan_cli gen gnp N P [--seed S] [-o FILE]\n"
               "  ftspan_cli gen grid ROWS COLS [-o FILE]\n"
               "  ftspan_cli gen geometric N RADIUS [--seed S] [-o FILE]\n"
               "  ftspan_cli gen complete N [-o FILE]\n"
               "  ftspan_cli spanner -i FILE -k K [--algo greedy|bs|tz] [-o FILE]\n"
               "  ftspan_cli ft -i FILE -k K -r R [-c CONST] [-o FILE]\n"
               "  ftspan_cli ft2 -i FILE -r R [-o FILE]   (directed input)\n"
               "  ftspan_cli verify -i FILE -s FILE -k K [-r R] [--exact]\n"
               "  ftspan_cli selftest\n");
  return 2;
}

void emit(const Graph& g, const std::string& path) {
  if (path.empty()) {
    write_graph(std::cout, g);
  } else {
    save_graph(path, g);
    std::printf("wrote %s (n=%zu, m=%zu)\n", path.c_str(), g.num_vertices(),
                g.num_edges());
  }
}

int cmd_gen(const Args& a) {
  if (a.positional.empty()) return usage();
  const std::string kind = a.positional[0];
  const std::uint64_t seed =
      static_cast<std::uint64_t>(a.num("seed", 1));
  Graph g;
  if (kind == "gnp" && a.positional.size() >= 3) {
    g = gnp(std::strtoul(a.positional[1].c_str(), nullptr, 10),
            std::strtod(a.positional[2].c_str(), nullptr), seed);
  } else if (kind == "grid" && a.positional.size() >= 3) {
    g = grid(std::strtoul(a.positional[1].c_str(), nullptr, 10),
             std::strtoul(a.positional[2].c_str(), nullptr, 10));
  } else if (kind == "geometric" && a.positional.size() >= 3) {
    g = random_geometric(std::strtoul(a.positional[1].c_str(), nullptr, 10),
                         std::strtod(a.positional[2].c_str(), nullptr), seed);
  } else if (kind == "complete" && a.positional.size() >= 2) {
    g = complete(std::strtoul(a.positional[1].c_str(), nullptr, 10));
  } else {
    return usage();
  }
  emit(g, a.get("o"));
  return 0;
}

int cmd_spanner(const Args& a) {
  const std::string in = a.get("i");
  const double k = a.num("k", 3.0);
  if (in.empty()) return usage();
  const Graph g = load_graph(in);
  const std::string algo = a.get("algo", "greedy");
  const std::uint64_t seed = static_cast<std::uint64_t>(a.num("seed", 1));

  std::vector<EdgeId> edges;
  if (algo == "greedy") {
    edges = greedy_spanner(g, k);
  } else if (algo == "bs") {
    edges = baswana_sen_spanner(g, static_cast<std::size_t>((k + 1) / 2), seed);
  } else if (algo == "tz") {
    edges = thorup_zwick_spanner(g, static_cast<std::size_t>((k + 1) / 2), seed);
  } else {
    return usage();
  }
  const Graph h = g.edge_subgraph(edges);
  std::printf("%s %g-spanner: %zu -> %zu edges, stretch (exact over edges): %.3f\n",
              algo.c_str(), k, g.num_edges(), h.num_edges(),
              max_edge_stretch(g, h));
  emit(h, a.get("o"));
  return 0;
}

int cmd_ft(const Args& a) {
  const std::string in = a.get("i");
  if (in.empty()) return usage();
  const Graph g = load_graph(in);
  const double k = a.num("k", 3.0);
  const std::size_t r = static_cast<std::size_t>(a.num("r", 1));
  ConversionOptions opt;
  opt.iteration_constant = a.num("c", 1.0);
  const auto res =
      ft_greedy_spanner(g, k, r, static_cast<std::uint64_t>(a.num("seed", 1)), opt);
  const Graph h = g.edge_subgraph(res.edges);
  const auto check = check_ft_spanner_sampled(g, h, k, r, 40, 60, 99);
  std::printf("%zu-fault-tolerant %g-spanner: %zu -> %zu edges "
              "(%zu iterations); sampled check: %s (worst stretch %.3f)\n",
              r, k, g.num_edges(), h.num_edges(), res.iterations,
              check.valid ? "valid" : "INVALID", check.worst_stretch);
  emit(h, a.get("o"));
  return check.valid ? 0 : 1;
}

int cmd_ft2(const Args& a) {
  const std::string in = a.get("i");
  if (in.empty()) return usage();
  std::ifstream is(in);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", in.c_str());
    return 1;
  }
  const Digraph g = read_digraph(is);
  const std::size_t r = static_cast<std::size_t>(a.num("r", 1));
  const auto res =
      approx_ft_2spanner(g, r, static_cast<std::uint64_t>(a.num("seed", 1)));
  std::printf("%zu-fault-tolerant 2-spanner: cost %.3f (LP lower bound %.3f), "
              "valid: %s\n",
              r, res.cost, res.lp_value, res.valid ? "yes" : "NO");
  const std::string out = a.get("o");
  if (!out.empty()) {
    Digraph h(g.num_vertices());
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      if (res.in_spanner[id]) {
        const DiEdge& e = g.edge(id);
        h.add_edge(e.u, e.v, e.w);
      }
    std::ofstream os(out);
    write_digraph(os, h);
    std::printf("wrote %s\n", out.c_str());
  }
  return res.valid ? 0 : 1;
}

int cmd_verify(const Args& a) {
  const std::string in = a.get("i"), sp = a.get("s");
  if (in.empty() || sp.empty()) return usage();
  const Graph g = load_graph(in);
  const Graph h = load_graph(sp);
  const double k = a.num("k", 3.0);
  const std::size_t r = static_cast<std::size_t>(a.num("r", 0));
  if (r == 0) {
    const double stretch = max_edge_stretch(g, h);
    std::printf("stretch: %.4f — %s %g-spanner\n", stretch,
                stretch <= k * (1 + 1e-9) ? "valid" : "NOT a", k);
    return stretch <= k * (1 + 1e-9) ? 0 : 1;
  }
  const auto check = a.flag("exact")
                         ? check_ft_spanner_exact(g, h, k, r)
                         : check_ft_spanner_sampled(g, h, k, r, 60, 80, 7);
  std::printf("%s check over %zu fault sets: %s (worst stretch %.4f)\n",
              a.flag("exact") ? "exact" : "sampled", check.fault_sets_checked,
              check.valid ? "valid" : "INVALID", check.worst_stretch);
  return check.valid ? 0 : 1;
}

int cmd_selftest() {
  // gen → ft → verify round trip through temp files; exercised by ctest.
  const std::string dir = "/tmp";
  const std::string gpath = dir + "/ftspan_cli_g.txt";
  const Graph g = gnp(24, 0.4, 5);
  save_graph(gpath, g);

  const Graph g2 = load_graph(gpath);
  if (g2.num_edges() != g.num_edges()) {
    std::fprintf(stderr, "selftest: io round trip failed\n");
    return 1;
  }
  const auto res = ft_greedy_spanner(g2, 3.0, 1, 3);
  const Graph h = g2.edge_subgraph(res.edges);
  const auto check = check_ft_spanner_exact(g2, h, 3.0, 1);
  if (!check.valid) {
    std::fprintf(stderr, "selftest: FT check failed (stretch %.3f)\n",
                 check.worst_stretch);
    return 1;
  }
  std::printf("selftest ok: n=%zu m=%zu spanner=%zu\n", g.num_vertices(),
              g.num_edges(), res.edges.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args a = parse(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(a);
    if (cmd == "spanner") return cmd_spanner(a);
    if (cmd == "ft") return cmd_ft(a);
    if (cmd == "ft2") return cmd_ft2(a);
    if (cmd == "verify") return cmd_verify(a);
    if (cmd == "selftest") return cmd_selftest();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
