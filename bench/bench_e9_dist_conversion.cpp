// E9 — Theorem 2.3 / Corollary 2.4: the distributed conversion.
//
// Base algorithm: distributed Baswana–Sen (stretch 2k-1 = 3), simulated in
// the LOCAL engine. We sweep n and r, reporting LOCAL rounds (theory:
// O(r³ log n · t(n)) with t(n) = O(k²)), spanner size, and a fault-
// tolerance check (exact where feasible, sampled otherwise).
#include <cstdio>

#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "local/dist_spanner.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ftspan;
using namespace ftspan::local;

int main() {
  std::printf("# E9: distributed FT conversion (Theorem 2.3), stretch 3\n");
  std::printf("# base: distributed Baswana-Sen k=2 (7 LOCAL rounds/run)\n");

  banner("rounds and size vs (n, r)");
  Table t({"n", "m", "r", "iterations", "LOCAL rounds", "rounds/(r^3 ln n)",
           "|H|", "|H|/m", "valid", "check", "sec"});
  for (const std::size_t n : {64u, 128u, 256u}) {
    const Graph g = gnp(n, 12.0 / n, 31 + n);
    for (const std::size_t r : {1u, 2u, 3u}) {
      Timer timer;
      const auto res = distributed_ft_spanner(g, 2, r, 7 * n + r);
      const double sec = timer.seconds();
      const Graph h = g.edge_subgraph(res.edges);

      bool exact = count_fault_sets(n, r) <= 50'000;
      // Exact checking costs |fault sets| × n Dijkstras; keep it for the
      // smallest configurations only.
      exact = exact && n <= 64;
      const auto check = exact
                             ? check_ft_spanner_exact(g, h, 3.0, r)
                             : check_ft_spanner_sampled(g, h, 3.0, r, 15, 25, 5);
      const double theory =
          std::pow(static_cast<double>(r), 3.0) * std::log(static_cast<double>(n));
      t.row()
          .cell(n)
          .cell(g.num_edges())
          .cell(r)
          .cell(res.iterations)
          .cell(res.stats.rounds)
          .cell(static_cast<double>(res.stats.rounds) / theory, 1)
          .cell(res.edges.size())
          .cell(static_cast<double>(res.edges.size()) / g.num_edges(), 3)
          .cell(check.valid ? "yes" : "NO")
          .cell(exact ? "exact" : "sampled")
          .cell(sec, 2);
    }
  }
  t.print();
  std::printf(
      "\nReading: rounds/(r^3 ln n) is ~constant (= per-iteration base "
      "rounds), matching Theorem 2.3's O(r^3 log n * t(n)).\n");
  return 0;
}
