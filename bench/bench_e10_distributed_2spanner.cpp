// E10 — Theorem 3.9 / Algorithm 2: the distributed O(log n)-approximation
// for Minimum Cost r-Fault-Tolerant 2-Spanner.
//
// Measured claims: LOCAL rounds = O(log² n); solution cost within an
// O(log n) factor of the centralized LP (4) optimum; the Lemma 3.8
// inequality Σ_C LP*(C) <= LP* per sampled partition; and the averaged
// fractional solution's cost Σ c_e x̃_e <= 4 LP*.
#include <cstdio>

#include "graph/generators.hpp"
#include "local/dist_2spanner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ftspan;
using namespace ftspan::local;

int main() {
  std::printf("# E10: Algorithm 2 in the LOCAL model (Theorem 3.9)\n");

  {
    banner("Lemma 3.8: sum of cluster LP optima vs global LP*, 5 partitions");
    // Lemma 3.8 holds for EVERY partition; we sample with an aggressive
    // geometric parameter (small radii) so partitions are nontrivial —
    // the default parameter would put these low-diameter graphs into a
    // single cluster and make the inequality vacuously tight.
    PaddedDecompositionOptions aggressive;
    aggressive.geometric_p = 0.65;
    Table t({"instance", "r", "LP*", "max_P sum_C LP*(C)", "ratio <= 1",
             "max clusters"});
    const auto run = [&](const char* name, const Digraph& g, std::size_t r) {
      const Graph comm = communication_graph(g);
      const auto full = solve_lp4(g, r);
      double worst = 0;
      std::size_t max_clusters = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto d = sample_padded_decomposition(comm, seed * 19, aggressive);
        const auto sum = cluster_lp_values(g, r, d);
        worst = std::max(worst, sum.sum_cluster_values);
        max_clusters = std::max(max_clusters, sum.clusters);
      }
      t.row()
          .cell(name)
          .cell(r)
          .cell(full.value, 2)
          .cell(worst, 2)
          .cell(worst / std::max(full.value, 1e-12), 3)
          .cell(max_clusters);
    };
    for (const std::size_t r : {0u, 1u}) {
      run("G(10,0.4)", di_gnp(10, 0.4, 10), r);
      run("G(14,0.4)", di_gnp(14, 0.4, 14), r);
      run("cycle(12) bidirected", bidirect(ftspan::cycle(12)), r);
      run("grid(3x4) bidirected", bidirect(ftspan::grid(3, 4)), r);
    }
    t.print();
  }

  {
    banner("Algorithm 2 end-to-end");
    Table t({"n", "r", "rounds", "rounds/ln^2 n", "LP*", "x~ cost",
             "x~/LP* (<=4)", "cost", "cost/LP*", "valid", "sec"});
    for (const std::size_t n : {12u, 16u}) {
      const Digraph g = di_gnp(n, 0.4, 3 * n);
      const double ln_n = std::log(static_cast<double>(n));
      for (const std::size_t r : {0u, 1u}) {
        const auto full = solve_lp4(g, r);
        Timer timer;
        const auto res = distributed_ft_2spanner(g, r, 17 * n + r);
        const double sec = timer.seconds();
        t.row()
            .cell(n)
            .cell(r)
            .cell(res.stats.rounds)
            .cell(static_cast<double>(res.stats.rounds) / (ln_n * ln_n), 1)
            .cell(full.value, 1)
            .cell(res.x_tilde_cost, 1)
            .cell(res.x_tilde_cost / std::max(full.value, 1e-12), 3)
            .cell(res.cost, 1)
            .cell(res.cost / std::max(full.value, 1e-12), 3)
            .cell(res.valid ? "yes" : "NO")
            .cell(sec, 2);
      }
    }
    t.print();
    std::printf(
        "\nReading: rounds/ln² n is ~constant (Theorem 3.9's O(log² n)); "
        "x~/LP* <= 4 (Lemma 3.8 + averaging); final cost within the rounding's "
        "O(log n) of LP*.\n");
  }
  return 0;
}
