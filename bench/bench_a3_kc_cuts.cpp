// A3 (ablation) — the cost of the stronger relaxation.
//
// LP (4)'s knapsack-cover inequalities are exponential in number but enter
// lazily through the Lemma 3.2 separation oracle. We report how many
// cutting-plane rounds and cuts instances actually need, and how much the
// LP value rises from LP (3) to LP (4).
#include <cstdio>

#include "graph/generators.hpp"
#include "spanner2/formulation.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ftspan;

namespace {

void run(const char* name, const Digraph& g, std::size_t r, Table& t) {
  Timer t3;
  const auto lp3 = solve_lp3(g, r);
  const double s3 = t3.seconds();
  Timer t4;
  const auto lp4 = solve_lp4(g, r);
  const double s4 = t4.seconds();
  t.row()
      .cell(name)
      .cell(g.num_edges())
      .cell(r)
      .cell(lp3.value, 1)
      .cell(lp4.value, 1)
      .cell(lp4.value / std::max(lp3.value, 1e-12), 3)
      .cell(lp4.cut_rounds)
      .cell(lp4.cuts_added)
      .cell(s3, 2)
      .cell(s4, 2);
}

}  // namespace

int main() {
  std::printf("# A3: knapsack-cover cutting planes — rounds, cuts, value lift\n");

  banner("per-instance separation effort");
  Table t({"instance", "m", "r", "LP(3)", "LP(4)", "lift", "cut rounds",
           "cuts", "LP3 sec", "LP4 sec"});
  run("gadget M=1000", gap_gadget(2, 1000.0), 2, t);
  run("gadget M=1000", gap_gadget(4, 1000.0), 4, t);
  run("gadget M=1000", gap_gadget(8, 1000.0), 8, t);
  run("K_8", di_complete(8), 1, t);
  run("K_8", di_complete(8), 3, t);
  run("G(10,0.4)", di_gnp(10, 0.4, 1), 1, t);
  run("G(14,0.4)", di_gnp(14, 0.4, 2), 1, t);
  run("G(14,0.4)", di_gnp(14, 0.4, 2), 2, t);
  run("G(18,0.3)", di_gnp(18, 0.3, 3), 1, t);
  t.print();

  std::printf(
      "\nReading: a handful of cut rounds suffices in practice — the "
      "exponential family is never materialized (Lemma 3.2's oracle "
      "inspects only the top-j flow prefixes).\n");
  return 0;
}
