// E12 — engine specialization + burst pipeline throughput.
//
// PR 6 adds two single-thread levers under the same scenario cells PR 4/5
// tracked: (1) the Dial bucket-queue frontier, selected per graph by the
// engine=auto policy when the hoisted weight profile shows bounded integer
// weights, and (2) the dataplane burst pipeline (pipeline/burst_pipeline.hpp)
// that routes conversion iterations and fault-set checks to worker-pinned
// engines in fixed-size bursts instead of one shared-counter bounce per task.
//
// This bench runs the two *tracked presets* (conv_throughput,
// validation_throughput — the exact cells `ftspan bench` and CI execute)
// under engine=heap|bucket|auto, checks that every policy produces
// bit-identical outputs, and reports the measured multiples. It then sweeps
// the burst geometry to show batch= never changes a bit.
//
//   $ ./bench_e12_pipeline_throughput [trials] [--json <path>]
//
// Acceptance: all three engine policies bit-identical on both cells
// (edges_hash, worst stretch, witnesses); engine=auto resolves to the bucket
// on these unit-weight graphs and its validation throughput beats the forced
// heap by >= 1.1x at one thread. `--json <path>` writes the runner's JSON
// record of both auto-policy cells — the BENCH_pr6.json snapshot CI gates
// against.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "runner/runner.hpp"
#include "util/table.hpp"

using namespace ftspan;
using runner::ScenarioCell;
using runner::ScenarioReport;
using runner::ScenarioSpec;

namespace {

/// The tracked preset, parsed from the registry so this bench can never
/// drift from what `ftspan bench <name>` runs.
ScenarioSpec preset_spec(const std::string& name) {
  return ScenarioSpec::parse(runner::preset_registry().get(name).spec);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::size_t trials = 60;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path argument\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      trials = std::strtoul(argv[i], nullptr, 10);
    }
  }

  std::printf("# E12: engine specialization + burst pipeline\n");
  bool ok = true;

  // --- conversion cell: engine policy sweep -------------------------------
  double conv_heap_ips = 0, conv_auto_ips = 0;
  {
    banner("conv_throughput preset under engine=heap|bucket|auto");
    ScenarioSpec spec = preset_spec("conv_throughput");
    Table t({"engine", "sec (best)", "iters/s", "|H|", "edges_hash"});
    std::uint64_t hash0 = 0;
    for (const char* engine : {"heap", "bucket", "auto"}) {
      spec.engine = engine;
      const ScenarioReport report = runner::run_scenario(spec);
      const ScenarioCell& cell = report.cells.front();
      const double ips = cell.stat("iterations") / cell.seconds_best;
      if (std::strcmp(engine, "heap") == 0) conv_heap_ips = ips;
      if (std::strcmp(engine, "auto") == 0) conv_auto_ips = ips;
      char hash[32];
      std::snprintf(hash, sizeof hash, "0x%016llx",
                    static_cast<unsigned long long>(cell.edges_hash));
      t.row()
          .cell(engine)
          .cell(cell.seconds_best, 3)
          .cell(ips, 1)
          .cell(cell.edges)
          .cell(hash);
      if (hash0 == 0)
        hash0 = cell.edges_hash;
      else if (cell.edges_hash != hash0) {
        std::printf("BIT-IDENTITY FAILED: engine=%s changed the edge set\n",
                    engine);
        ok = false;
      }
    }
    t.print();
    std::printf("\nauto/heap multiple: %.2fx (unit weights: auto resolves to "
                "the bucket queue)\n",
                conv_auto_ips / conv_heap_ips);
  }

  // --- validation cell: engine policy sweep -------------------------------
  double val_heap_sps = 0, val_bucket_sps = 0;
  {
    banner("validation_throughput preset under engine=heap|bucket|auto");
    ScenarioSpec spec = preset_spec("validation_throughput");
    spec.trials = trials;  // more fault sets -> steadier clock
    Table t({"engine", "val sec", "sets/s", "worst stretch"});
    ScenarioCell base;
    bool have_base = false;
    for (const char* engine : {"heap", "bucket", "auto"}) {
      spec.engine = engine;
      const ScenarioReport report = runner::run_scenario(spec);
      const ScenarioCell& cell = report.cells.front();
      const double sps = cell.fault_sets / cell.val_seconds;
      if (std::strcmp(engine, "heap") == 0) val_heap_sps = sps;
      if (std::strcmp(engine, "bucket") == 0) val_bucket_sps = sps;
      t.row()
          .cell(engine)
          .cell(cell.val_seconds, 3)
          .cell(sps, 1)
          .cell(cell.worst_stretch, 4);
      if (!have_base) {
        base = cell;
        have_base = true;
      } else if (cell.worst_stretch != base.worst_stretch ||
                 cell.witness_u != base.witness_u ||
                 cell.witness_v != base.witness_v ||
                 cell.valid != base.valid) {
        std::printf("BIT-IDENTITY FAILED: engine=%s changed the validation "
                    "result\n",
                    engine);
        ok = false;
      }
    }
    t.print();
    const double multiple = val_bucket_sps / val_heap_sps;
    std::printf("\nbucket/heap multiple: %.2fx (need >= 1.1x)\n", multiple);
    if (multiple < 1.1) {
      std::printf("acceptance FAILED: bucket did not beat the heap\n");
      ok = false;
    }
  }

  // --- burst geometry: batch= must never change a bit ---------------------
  {
    banner("burst geometry sweep (batch= is perf-only)");
    ScenarioSpec spec = preset_spec("conv_throughput");
    spec.reps = 1;
    spec.threads = {2};  // engage the pipeline even on small CI boxes
    Table t({"batch", "sec", "edges_hash"});
    std::uint64_t hash0 = 0;
    for (const std::size_t batch : {std::size_t{1}, std::size_t{16},
                                    std::size_t{256}}) {
      spec.batch = batch;
      const ScenarioReport report = runner::run_scenario(spec);
      const ScenarioCell& cell = report.cells.front();
      char hash[32];
      std::snprintf(hash, sizeof hash, "0x%016llx",
                    static_cast<unsigned long long>(cell.edges_hash));
      t.row().cell(batch).cell(cell.seconds_best, 3).cell(hash);
      if (hash0 == 0)
        hash0 = cell.edges_hash;
      else if (cell.edges_hash != hash0) {
        std::printf("BIT-IDENTITY FAILED: batch=%zu changed the edge set\n",
                    batch);
        ok = false;
      }
    }
    t.print();
  }

  // --- the tracked snapshot ------------------------------------------------
  if (json_path != nullptr) {
    // Both tracked cells at their preset definitions (engine=auto): the
    // BENCH_pr6.json lineage CI's perf-smoke gates against.
    const ScenarioReport report = runner::run_scenarios(
        {preset_spec("conv_throughput"), preset_spec("validation_throughput")});
    std::ofstream os(json_path);
    if (!os) {
      std::printf("ERROR: cannot open %s for writing\n", json_path);
      return 1;
    }
    runner::print_json(report, os);
    std::printf("wrote %s\n", json_path);
  }

  std::printf("\n%s\n", ok ? "acceptance PASSED" : "acceptance FAILED");
  return ok ? 0 : 1;
}
