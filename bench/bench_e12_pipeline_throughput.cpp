// E12 — engine specialization + burst pipeline throughput.
//
// PR 6 added two single-thread levers under the same scenario cells PR 4/5
// tracked: (1) the Dial bucket-queue frontier, selected per graph by the
// engine=auto policy when the hoisted weight profile shows bounded integer
// weights, and (2) the dataplane burst pipeline (pipeline/burst_pipeline.hpp)
// that routes conversion iterations and fault-set checks to worker-pinned
// engines in fixed-size bursts instead of one shared-counter bounce per task.
// PR 10 adds the third frontier — delta-stepping (engine=delta) — for the
// mid-range integer regime the bucket's O(max_weight) bucket array cannot
// reach, plus opt-in core-affinity worker lanes.
//
// This bench runs the tracked presets (conv_throughput,
// validation_throughput, midrange_throughput — the exact cells
// `ftspan bench` and CI execute) under every engine policy, checks that
// every policy produces bit-identical outputs, and reports the measured
// multiples. It then sweeps threads x engine on the mid-range cell and the
// burst geometry to show neither changes a bit.
//
//   $ ./bench_e12_pipeline_throughput [trials] [--json <path>]
//
// Acceptance: all engine policies bit-identical on every cell (edges_hash,
// worst stretch, witnesses); engine=auto resolves to the bucket on the
// unit-weight cells and to delta on the mid-range cell (where an explicit
// engine=bucket must downgrade to the heap — the resolver never builds a
// 1e5-bucket array); bucket beats the forced heap by >= 1.1x on the
// unit-weight validation cell and delta >= heap on the mid-range cell at
// one thread. `--json <path>` writes the runner's JSON record with one row
// per engine setting, each naming the engine actually resolved
// (engine_resolved) — the BENCH_pr10.json snapshot CI gates against — with
// hardware_concurrency stamped in every timed cell.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "util/table.hpp"

using namespace ftspan;
using runner::ScenarioCell;
using runner::ScenarioReport;
using runner::ScenarioSpec;

namespace {

/// The tracked preset, parsed from the registry so this bench can never
/// drift from what `ftspan bench <name>` runs.
ScenarioSpec preset_spec(const std::string& name) {
  return ScenarioSpec::parse(runner::preset_registry().get(name).spec);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::size_t trials = 60;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path argument\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      trials = std::strtoul(argv[i], nullptr, 10);
    }
  }

  std::printf("# E12: engine specialization + burst pipeline\n");
  bool ok = true;

  // --- conversion cell: engine policy sweep -------------------------------
  double conv_heap_ips = 0, conv_auto_ips = 0;
  {
    banner("conv_throughput preset under engine=heap|bucket|delta|auto");
    ScenarioSpec spec = preset_spec("conv_throughput");
    Table t({"engine", "resolved", "sec (best)", "iters/s", "|H|",
             "edges_hash"});
    std::uint64_t hash0 = 0;
    for (const char* engine : {"heap", "bucket", "delta", "auto"}) {
      spec.engine = engine;
      const ScenarioReport report = runner::run_scenario(spec);
      const ScenarioCell& cell = report.cells.front();
      const double ips = cell.stat("iterations") / cell.seconds_best;
      if (std::strcmp(engine, "heap") == 0) conv_heap_ips = ips;
      if (std::strcmp(engine, "auto") == 0) conv_auto_ips = ips;
      char hash[32];
      std::snprintf(hash, sizeof hash, "0x%016llx",
                    static_cast<unsigned long long>(cell.edges_hash));
      t.row()
          .cell(engine)
          .cell(cell.engine_resolved)
          .cell(cell.seconds_best, 3)
          .cell(ips, 1)
          .cell(cell.edges)
          .cell(hash);
      if (hash0 == 0)
        hash0 = cell.edges_hash;
      else if (cell.edges_hash != hash0) {
        std::printf("BIT-IDENTITY FAILED: engine=%s changed the edge set\n",
                    engine);
        ok = false;
      }
    }
    t.print();
    std::printf("\nauto/heap multiple: %.2fx (unit weights: auto resolves to "
                "the bucket queue)\n",
                conv_auto_ips / conv_heap_ips);
  }

  // --- validation cell: engine policy sweep -------------------------------
  double val_heap_sps = 0, val_bucket_sps = 0;
  {
    banner("validation_throughput preset under engine=heap|bucket|delta|auto");
    ScenarioSpec spec = preset_spec("validation_throughput");
    spec.trials = trials;  // more fault sets -> steadier clock
    Table t({"engine", "resolved", "val sec", "sets/s", "worst stretch"});
    ScenarioCell base;
    bool have_base = false;
    for (const char* engine : {"heap", "bucket", "delta", "auto"}) {
      spec.engine = engine;
      const ScenarioReport report = runner::run_scenario(spec);
      const ScenarioCell& cell = report.cells.front();
      const double sps = cell.fault_sets / cell.val_seconds;
      if (std::strcmp(engine, "heap") == 0) val_heap_sps = sps;
      if (std::strcmp(engine, "bucket") == 0) val_bucket_sps = sps;
      t.row()
          .cell(engine)
          .cell(cell.engine_resolved)
          .cell(cell.val_seconds, 3)
          .cell(sps, 1)
          .cell(cell.worst_stretch, 4);
      if (!have_base) {
        base = cell;
        have_base = true;
      } else if (cell.worst_stretch != base.worst_stretch ||
                 cell.witness_u != base.witness_u ||
                 cell.witness_v != base.witness_v ||
                 cell.valid != base.valid) {
        std::printf("BIT-IDENTITY FAILED: engine=%s changed the validation "
                    "result\n",
                    engine);
        ok = false;
      }
    }
    t.print();
    const double multiple = val_bucket_sps / val_heap_sps;
    std::printf("\nbucket/heap multiple: %.2fx (need >= 1.1x)\n", multiple);
    if (multiple < 1.1) {
      std::printf("acceptance FAILED: bucket did not beat the heap\n");
      ok = false;
    }
  }

  // --- mid-range cell: the delta-stepping regime --------------------------
  {
    banner("midrange_throughput preset under engine=heap|bucket|delta|auto");
    ScenarioSpec spec = preset_spec("midrange_throughput");
    Table t({"engine", "resolved", "val sec", "sets/s", "worst stretch"});
    ScenarioCell base;
    bool have_base = false;
    double heap_sps = 0, delta_sps = 0;
    for (const char* engine : {"heap", "bucket", "delta", "auto"}) {
      spec.engine = engine;
      const ScenarioReport report = runner::run_scenario(spec);
      const ScenarioCell& cell = report.cells.front();
      const double sps = cell.fault_sets / cell.val_seconds;
      if (std::strcmp(engine, "heap") == 0) heap_sps = sps;
      if (std::strcmp(engine, "delta") == 0) delta_sps = sps;
      t.row()
          .cell(engine)
          .cell(cell.engine_resolved)
          .cell(cell.val_seconds, 3)
          .cell(sps, 1)
          .cell(cell.worst_stretch, 4);
      if (!have_base) {
        base = cell;
        have_base = true;
      } else if (cell.edges_hash != base.edges_hash ||
                 cell.worst_stretch != base.worst_stretch ||
                 cell.witness_u != base.witness_u ||
                 cell.witness_v != base.witness_v) {
        std::printf("BIT-IDENTITY FAILED: engine=%s changed the mid-range "
                    "result\n",
                    engine);
        ok = false;
      }
      // The resolver's contract on a 1e5-max integer graph: auto and
      // explicit delta run delta-stepping; explicit bucket must downgrade
      // to the heap rather than build a 1e5-slot bucket array.
      const char* want = std::strcmp(engine, "heap") == 0    ? "heap"
                         : std::strcmp(engine, "bucket") == 0 ? "heap"
                                                              : "delta";
      if (cell.engine_resolved != want) {
        std::printf("RESOLUTION FAILED: engine=%s resolved to %s, want %s\n",
                    engine, cell.engine_resolved.c_str(), want);
        ok = false;
      }
    }
    t.print();
    const double multiple = heap_sps > 0 ? delta_sps / heap_sps : 0;
    std::printf("\ndelta/heap multiple: %.2fx (need >= 1.0x)\n", multiple);
    if (multiple < 1.0) {
      std::printf("acceptance FAILED: delta fell behind the heap on the "
                  "mid-range cell\n");
      ok = false;
    }
  }

  // --- threads x engine on the mid-range cell -----------------------------
  {
    banner("midrange threads x engine sweep (worker lanes, affinity-ready)");
    ScenarioSpec spec = preset_spec("midrange_throughput");
    Table t({"engine", "threads", "val sec", "sets/s", "edges_hash"});
    std::uint64_t hash0 = 0;
    for (const char* engine : {"heap", "delta"}) {
      spec.engine = engine;
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                        std::size_t{4}}) {
        spec.threads = {threads};
        const ScenarioReport report = runner::run_scenario(spec);
        const ScenarioCell& cell = report.cells.front();
        char hash[32];
        std::snprintf(hash, sizeof hash, "0x%016llx",
                      static_cast<unsigned long long>(cell.edges_hash));
        t.row()
            .cell(engine)
            .cell(threads)
            .cell(cell.val_seconds, 3)
            .cell(cell.fault_sets / cell.val_seconds, 1)
            .cell(hash);
        if (hash0 == 0)
          hash0 = cell.edges_hash;
        else if (cell.edges_hash != hash0) {
          std::printf("BIT-IDENTITY FAILED: engine=%s threads=%zu changed "
                      "the edge set\n",
                      engine, threads);
          ok = false;
        }
      }
    }
    t.print();
  }

  // --- burst geometry: batch= must never change a bit ---------------------
  {
    banner("burst geometry sweep (batch= is perf-only)");
    ScenarioSpec spec = preset_spec("conv_throughput");
    spec.reps = 1;
    spec.threads = {2};  // engage the pipeline even on small CI boxes
    Table t({"batch", "sec", "edges_hash"});
    std::uint64_t hash0 = 0;
    for (const std::size_t batch : {std::size_t{1}, std::size_t{16},
                                    std::size_t{256}}) {
      spec.batch = batch;
      const ScenarioReport report = runner::run_scenario(spec);
      const ScenarioCell& cell = report.cells.front();
      char hash[32];
      std::snprintf(hash, sizeof hash, "0x%016llx",
                    static_cast<unsigned long long>(cell.edges_hash));
      t.row().cell(batch).cell(cell.seconds_best, 3).cell(hash);
      if (hash0 == 0)
        hash0 = cell.edges_hash;
      else if (cell.edges_hash != hash0) {
        std::printf("BIT-IDENTITY FAILED: batch=%zu changed the edge set\n",
                    batch);
        ok = false;
      }
    }
    t.print();
  }

  // --- the tracked snapshot ------------------------------------------------
  if (json_path != nullptr) {
    // The tracked cells at their preset definitions plus the mid-range cell
    // under every engine setting — one JSON row per engine, each naming the
    // engine actually resolved (engine_resolved; delta rows included) —
    // and a threads sweep over the mid-range cell. hardware_concurrency is
    // stamped inside every timed cell. This is the BENCH_pr10.json snapshot
    // CI's perf-smoke gates against.
    std::vector<ScenarioSpec> specs = {preset_spec("conv_throughput"),
                                       preset_spec("validation_throughput")};
    for (const char* engine : {"heap", "bucket", "delta", "auto"}) {
      ScenarioSpec spec = preset_spec("midrange_throughput");
      spec.engine = engine;
      specs.push_back(spec);
    }
    {
      ScenarioSpec sweep = preset_spec("midrange_throughput");
      sweep.threads = {1, 2, 4, 8};
      specs.push_back(sweep);
    }
    const ScenarioReport report = runner::run_scenarios(specs);
    std::ofstream os(json_path);
    if (!os) {
      std::printf("ERROR: cannot open %s for writing\n", json_path);
      return 1;
    }
    runner::print_json(report, os);
    std::printf("wrote %s\n", json_path);
  }

  std::printf("\n%s\n", ok ? "acceptance PASSED" : "acceptance FAILED");
  return ok ? 0 : 1;
}
