// A1 (ablation) — how many conversion iterations are needed in practice?
//
// Theorem 2.1 uses α = Θ(r³ log n); the constant matters in practice. We
// sweep the constant c and measure the fraction of seeds whose output is
// exactly fault tolerant, plus the spanner size. The experiment shows the
// theory constant is conservative — small c already gives validity — which
// is why ConversionOptions exposes it.
//
// All execution runs through the unified scenario runner (src/runner): the
// c-sweep is one exactly-validated scenario per (c, seed) cell, the thread
// fan-out is a single threads-sweep scenario, and the perf-tracked cell IS
// the `conv_throughput` preset — the same scenario `ftspan bench
// conv_throughput` runs and BENCH_pr5.json snapshots.
//
// `--json <path>` writes the runner's JSON record for that preset; the CI
// perf-smoke job compares its iters_per_sec against the committed baseline.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "runner/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace ftspan;
using runner::ScenarioSpec;

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path argument\n");
        return 2;
      }
      json_path = argv[++i];
    }

  std::printf("# A1: iteration-constant sweep for the Theorem 2.1 conversion\n");
  std::printf("# instance: G(16, 0.5), k = 3, r = 2; 10 seeds per cell\n");

  banner("validity vs iteration constant c (alpha = c r^3 ln n)");
  Table t({"c", "alpha", "valid fraction", "mean |H|", "|H|/m"});
  for (const double c : {0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    // Ten seeds, one exactly-validated scenario each (seed formula 71s).
    std::vector<ScenarioSpec> specs;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      ScenarioSpec s;
      s.workload = "gnp";
      s.n = {16};
      s.p = 0.5;
      s.wseed = 99;
      s.algo = "ft_vertex";
      s.k = {3.0};
      s.r = {2};
      s.c = c;
      s.seed = seed * 71;
      s.validate = "exact";
      specs.push_back(std::move(s));
    }
    const runner::ScenarioReport report = runner::run_scenarios(specs);
    std::size_t valid = 0, alpha = 0;
    Stats size;
    for (const runner::ScenarioCell& cell : report.cells) {
      alpha = static_cast<std::size_t>(cell.stat("iterations"));
      size.add(static_cast<double>(cell.edges));
      if (cell.valid) ++valid;
    }
    t.row()
        .cell(c, 2)
        .cell(alpha)
        .cell(static_cast<double>(valid) / 10.0, 2)
        .cell(size.mean(), 1)
        .cell(size.mean() / report.cells.front().m, 3);
  }
  t.print();
  std::printf(
      "\nReading: validity saturates well below c = 1 — the proof constant is "
      "loose; size grows with c until the union saturates.\n");

  // At the proof constant the iterations dominate the run time, which is
  // exactly what the parallel engine targets; sweep threads on a larger
  // instance and confirm the output does not depend on the thread count.
  banner("iteration fan-out: G(512, 16/n), k = 3, r = 2, c = 1");
  std::printf("hardware threads available: %zu\n",
              ThreadPool::hardware_threads());
  {
    ScenarioSpec s;
    s.workload = "gnp";
    s.n = {512};
    s.p = 16.0 / 512.0;
    s.wseed = 4242;
    s.algo = "ft_vertex";
    s.k = {3.0};
    s.r = {2};
    s.seed = 4242;
    s.threads = {1, 2, 4, 8};
    s.validate = "none";
    const runner::ScenarioReport report = runner::run_scenario(s);
    const runner::ScenarioCell& seq = report.cells.front();
    Table tt({"threads", "alpha", "|H|", "sec", "speedup"});
    for (const runner::ScenarioCell& cell : report.cells) {
      if (cell.edges_hash != seq.edges_hash)
        std::printf("WARNING: thread count changed the output!\n");
      tt.row()
          .cell(cell.threads)
          .cell(static_cast<std::size_t>(cell.stat("iterations")))
          .cell(cell.edges)
          .cell(cell.seconds_best, 3)
          .cell(seq.seconds_best / cell.seconds_best, 2);
    }
    tt.print();
  }

  // The perf-tracked cell: the conv_throughput preset (gnp(400, 0.05),
  // k = 3, r = 2, c = 1, 1 thread, best of 3 — ISSUE 4's acceptance
  // instance). Best-of-3, so one scheduler hiccup on a noisy host (CI!)
  // does not read as a regression.
  banner("conversion throughput: gnp(400, 0.05), k = 3, r = 2, 1 thread");
  const ScenarioSpec perf = ScenarioSpec::parse(
      runner::preset_registry().get("conv_throughput").spec);
  const runner::ScenarioReport report = runner::run_scenario(perf);
  const runner::ScenarioCell& cell = report.cells.front();
  const double iters = cell.stat("iterations");
  std::printf("alpha = %zu iterations, best of %zu: %.3f s -> %.1f "
              "iterations/s\n",
              static_cast<std::size_t>(iters), cell.reps, cell.seconds_best,
              iters / cell.seconds_best);

  if (json_path != nullptr) {
    std::ofstream os(json_path);
    if (!os) {
      std::printf("ERROR: cannot open %s for writing\n", json_path);
      return 1;
    }
    runner::print_json(report, os);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
