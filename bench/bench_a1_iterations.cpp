// A1 (ablation) — how many conversion iterations are needed in practice?
//
// Theorem 2.1 uses α = Θ(r³ log n); the constant matters in practice. We
// sweep the constant c and measure the fraction of seeds whose output is
// exactly fault tolerant, plus the spanner size. The experiment shows the
// theory constant is conservative — small c already gives validity — which
// is why ConversionOptions exposes it.
#include <cstdio>

#include "ftspanner/conversion.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace ftspan;

int main() {
  std::printf("# A1: iteration-constant sweep for the Theorem 2.1 conversion\n");
  std::printf("# instance: G(16, 0.5), k = 3, r = 2; 10 seeds per cell\n");

  const Graph g = gnp(16, 0.5, 99);
  const std::size_t r = 2;

  banner("validity vs iteration constant c (alpha = c r^3 ln n)");
  Table t({"c", "alpha", "valid fraction", "mean |H|", "|H|/m"});
  for (const double c : {0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    ConversionOptions opt;
    opt.iteration_constant = c;
    std::size_t valid = 0;
    Stats size;
    std::size_t alpha = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto res = ft_greedy_spanner(g, 3.0, r, seed * 71, opt);
      alpha = res.iterations;
      size.add(static_cast<double>(res.edges.size()));
      if (check_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, r).valid)
        ++valid;
    }
    t.row()
        .cell(c, 2)
        .cell(alpha)
        .cell(static_cast<double>(valid) / 10.0, 2)
        .cell(size.mean(), 1)
        .cell(size.mean() / g.num_edges(), 3);
  }
  t.print();
  std::printf(
      "\nReading: validity saturates well below c = 1 — the proof constant is "
      "loose; size grows with c until the union saturates.\n");

  // At the proof constant the iterations dominate the run time, which is
  // exactly what the parallel engine targets; sweep threads on a larger
  // instance and confirm the output does not depend on the thread count.
  banner("iteration fan-out: G(512, 16/n), k = 3, r = 2, c = 1");
  std::printf("hardware threads available: %zu\n",
              ThreadPool::hardware_threads());
  const Graph big = gnp(512, 16.0 / 512.0, 4242);
  Table tt({"threads", "alpha", "|H|", "sec", "speedup"});
  double seq_sec = 0;
  std::vector<EdgeId> seq_edges;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ConversionOptions opt;
    opt.threads = threads;
    Timer timer;
    const auto res = ft_greedy_spanner(big, 3.0, r, 4242, opt);
    const double sec = timer.seconds();
    if (threads == 1) {
      seq_sec = sec;
      seq_edges = res.edges;
    } else if (res.edges != seq_edges) {
      std::printf("WARNING: thread count changed the output!\n");
    }
    tt.row()
        .cell(threads)
        .cell(res.iterations)
        .cell(res.edges.size())
        .cell(sec, 3)
        .cell(seq_sec / sec, 2);
  }
  tt.print();
  return 0;
}
