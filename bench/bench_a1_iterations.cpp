// A1 (ablation) — how many conversion iterations are needed in practice?
//
// Theorem 2.1 uses α = Θ(r³ log n); the constant matters in practice. We
// sweep the constant c and measure the fraction of seeds whose output is
// exactly fault tolerant, plus the spanner size. The experiment shows the
// theory constant is conservative — small c already gives validity — which
// is why ConversionOptions exposes it.
//
// `--json <path>` additionally writes the machine-readable throughput record
// (conversion iterations/second on gnp(400, 0.05), r = 2, 1 thread) that
// BENCH_pr4.json snapshots and the CI perf-smoke job compares against.
#include <cstdio>
#include <cstring>

#include "ftspanner/conversion.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace ftspan;

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path argument\n");
        return 2;
      }
      json_path = argv[++i];
    }

  std::printf("# A1: iteration-constant sweep for the Theorem 2.1 conversion\n");
  std::printf("# instance: G(16, 0.5), k = 3, r = 2; 10 seeds per cell\n");

  const Graph g = gnp(16, 0.5, 99);
  const std::size_t r = 2;

  banner("validity vs iteration constant c (alpha = c r^3 ln n)");
  Table t({"c", "alpha", "valid fraction", "mean |H|", "|H|/m"});
  for (const double c : {0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    ConversionOptions opt;
    opt.iteration_constant = c;
    std::size_t valid = 0;
    Stats size;
    std::size_t alpha = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto res = ft_greedy_spanner(g, 3.0, r, seed * 71, opt);
      alpha = res.iterations;
      size.add(static_cast<double>(res.edges.size()));
      if (check_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, r).valid)
        ++valid;
    }
    t.row()
        .cell(c, 2)
        .cell(alpha)
        .cell(static_cast<double>(valid) / 10.0, 2)
        .cell(size.mean(), 1)
        .cell(size.mean() / g.num_edges(), 3);
  }
  t.print();
  std::printf(
      "\nReading: validity saturates well below c = 1 — the proof constant is "
      "loose; size grows with c until the union saturates.\n");

  // At the proof constant the iterations dominate the run time, which is
  // exactly what the parallel engine targets; sweep threads on a larger
  // instance and confirm the output does not depend on the thread count.
  banner("iteration fan-out: G(512, 16/n), k = 3, r = 2, c = 1");
  std::printf("hardware threads available: %zu\n",
              ThreadPool::hardware_threads());
  const Graph big = gnp(512, 16.0 / 512.0, 4242);
  Table tt({"threads", "alpha", "|H|", "sec", "speedup"});
  double seq_sec = 0;
  std::vector<EdgeId> seq_edges;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ConversionOptions opt;
    opt.threads = threads;
    Timer timer;
    const auto res = ft_greedy_spanner(big, 3.0, r, 4242, opt);
    const double sec = timer.seconds();
    if (threads == 1) {
      seq_sec = sec;
      seq_edges = res.edges;
    } else if (res.edges != seq_edges) {
      std::printf("WARNING: thread count changed the output!\n");
    }
    tt.row()
        .cell(threads)
        .cell(res.iterations)
        .cell(res.edges.size())
        .cell(sec, 3)
        .cell(seq_sec / sec, 2);
  }
  tt.print();

  // The perf-tracked cell: single-thread conversion-iteration throughput on
  // the acceptance instance (ISSUE 4), gnp(400, 0.05), k = 3, r = 2, c = 1.
  // Best of three timed runs, so one scheduler hiccup on a noisy host (CI!)
  // does not read as a regression.
  banner("conversion throughput: gnp(400, 0.05), k = 3, r = 2, 1 thread");
  const Graph perf_g = gnp(400, 0.05, 1234);
  ConversionOptions perf_opt;
  perf_opt.threads = 1;
  perf_opt.iteration_constant = 1.0;
  std::size_t perf_alpha = 0, perf_edges = 0;
  double perf_sec = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer perf_timer;
    const auto perf = ft_greedy_spanner(perf_g, 3.0, r, 4242, perf_opt);
    const double sec = perf_timer.seconds();
    if (rep == 0 || sec < perf_sec) perf_sec = sec;
    perf_alpha = perf.iterations;
    perf_edges = perf.edges.size();
  }
  const double iters_per_sec = perf_alpha / perf_sec;
  std::printf("alpha = %zu iterations, best of 3: %.3f s -> %.1f "
              "iterations/s\n",
              perf_alpha, perf_sec, iters_per_sec);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("ERROR: cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"bench_a1\",\n"
                 "  \"instance\": \"gnp(400, 0.05, seed=1234), k=3, r=2\",\n"
                 "  \"threads\": 1,\n"
                 "  \"iterations\": %zu,\n"
                 "  \"seconds\": %.6f,\n"
                 "  \"iters_per_sec\": %.2f,\n"
                 "  \"spanner_edges\": %zu\n"
                 "}\n",
                 perf_alpha, perf_sec, iters_per_sec, perf_edges);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
