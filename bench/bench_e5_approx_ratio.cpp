// E5 — Theorem 3.3: the O(log n)-approximation, ratio independent of r.
//
// On small directed instances we compute the LP (4) optimum (a lower bound
// on OPT), the rounded solution's cost, and — where branch-and-bound is
// feasible — the true OPT. The claim to observe: cost / LP* stays flat as r
// grows (contrast with E6's DK10 baseline).
#include <cstdio>

#include "graph/generators.hpp"
#include "spanner2/exact_bb.hpp"
#include "spanner2/rounding.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftspan;

int main() {
  std::printf("# E5: approximation quality of Theorem 3.3 rounding\n");

  {
    banner("vs true OPT (branch & bound), n = 8, G(n, 0.5), 3 seeds");
    Table t({"r", "LP(4)*", "OPT", "rounded", "rounded/OPT", "rounded/LP*",
             "OPT/LP*"});
    for (const std::size_t r : {0u, 1u, 2u}) {
      Stats lp, opt, cost;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Digraph g = di_gnp(8, 0.5, seed);
        const auto exact = exact_min_ft_2spanner(g, r);
        const auto rounded = approx_ft_2spanner(g, r, seed * 7 + r);
        if (!rounded.valid || !exact.proven_optimal) continue;
        lp.add(rounded.lp_value);
        opt.add(exact.cost);
        cost.add(rounded.cost);
      }
      t.row()
          .cell(r)
          .cell(lp.mean(), 1)
          .cell(opt.mean(), 1)
          .cell(cost.mean(), 1)
          .cell(cost.mean() / opt.mean(), 3)
          .cell(cost.mean() / lp.mean(), 3)
          .cell(opt.mean() / lp.mean(), 3);
    }
    t.print();
  }

  {
    banner("vs LP* only, n in {12, 16, 20}, G(n, 0.4), r sweep, 3 seeds");
    Table t({"n", "r", "LP(4)*", "rounded", "rounded/LP*", "alpha",
             "KC cuts", "repair edges"});
    for (const std::size_t n : {12u, 16u, 20u}) {
      for (const std::size_t r : {0u, 1u, 2u, 3u}) {
        Stats lp, cost, cuts, repaired;
        double alpha = 0;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
          const Digraph g = di_gnp(n, 0.4, 100 * n + seed);
          const auto res = approx_ft_2spanner(g, r, seed * 13 + r);
          if (!res.valid) continue;
          lp.add(res.lp_value);
          cost.add(res.cost);
          cuts.add(static_cast<double>(res.relaxation.cuts_added));
          repaired.add(static_cast<double>(res.repaired_edges));
          alpha = res.alpha;
        }
        t.row()
            .cell(n)
            .cell(r)
            .cell(lp.mean(), 1)
            .cell(cost.mean(), 1)
            .cell(cost.mean() / lp.mean(), 3)
            .cell(alpha, 2)
            .cell(cuts.mean(), 1)
            .cell(repaired.mean(), 1);
      }
    }
    t.print();
    std::printf(
        "Reading: rounded/LP* does not grow with r (Theorem 3.3's "
        "r-independence); it grows mildly with n (the O(log n) factor).\n");
  }
  return 0;
}
