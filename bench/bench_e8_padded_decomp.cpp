// E8 — Lemma 3.7: padded decompositions in the LOCAL model.
//
// Claims measured: (1) every cluster has weak diameter O(log n) (we report
// max diam / ln n); (2) each vertex's neighborhood is fully inside its
// cluster with probability >= 1/2 (empirical padding frequency; the
// analysis gives (1-p)² for geometric parameter p); (3) the distributed
// protocol takes O(log n) rounds and matches the centralized sampler.
#include <cstdio>

#include "graph/generators.hpp"
#include "local/padded_decomposition.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftspan;
using namespace ftspan::local;

namespace {

void run_family(const char* name, const Graph& g, Table& t,
                std::size_t samples) {
  const std::size_t n = g.num_vertices();
  const double ln_n = std::log(static_cast<double>(std::max<std::size_t>(n, 2)));
  Stats diam, padded, clusters;
  for (std::uint64_t seed = 0; seed < samples; ++seed) {
    const auto d = sample_padded_decomposition(g, seed * 101 + 7);
    diam.add(static_cast<double>(max_cluster_diameter(g, d)));
    std::size_t ok = 0;
    for (Vertex v = 0; v < n; ++v) ok += is_padded(g, d, v);
    padded.add(static_cast<double>(ok) / static_cast<double>(n));
    clusters.add(static_cast<double>(d.centers().size()));
  }
  RunStats rs;
  const auto dd = distributed_padded_decomposition(g, 12345, {}, &rs);
  (void)dd;
  t.row()
      .cell(name)
      .cell(n)
      .cell(g.num_edges())
      .cell(diam.mean(), 1)
      .cell(diam.max(), 0)
      .cell(diam.max() / ln_n, 2)
      .cell(padded.mean(), 3)
      .cell(clusters.mean(), 1)
      .cell(rs.rounds)
      .cell(static_cast<double>(rs.rounds) / ln_n, 2);
}

}  // namespace

int main() {
  std::printf("# E8: padded decomposition (Lemma 3.7), geometric p = 0.2\n");
  std::printf("# padding target: Pr[N(x) in P(x)] >= 1/2 (analysis: (1-p)^2 = 0.64)\n");

  banner("per-family measurements (10 samples each)");
  Table t({"family", "n", "m", "diam mean", "diam max", "diam max/ln n",
           "padded frac", "clusters", "LOCAL rounds", "rounds/ln n"});
  run_family("gnp deg8 n=64", gnp_connected(64, 8.0 / 64, 1), t, 10);
  run_family("gnp deg8 n=256", gnp_connected(256, 8.0 / 256, 2), t, 10);
  run_family("gnp deg8 n=1024", gnp_connected(1024, 8.0 / 1024, 3), t, 10);
  run_family("grid 16x16", grid(16, 16), t, 10);
  run_family("grid 32x32", grid(32, 32), t, 10);
  run_family("BA m=3 n=512", barabasi_albert(512, 3, 4), t, 10);
  run_family("hypercube d=10", hypercube(10), t, 10);
  t.print();

  std::printf(
      "\nReading: diam max/ln n bounded by 2·cap_factor; padded fraction "
      ">= 0.5 everywhere; distributed rounds = radius cap + 1 = O(log n).\n");
  return 0;
}
