// E1 — Corollary 2.2 size scaling in n, plus conversion-engine throughput.
//
// Claim: the conversion applied to the greedy spanner yields an r-fault-
// tolerant k-spanner of size O(r^{2-2/(k+1)} n^{1+2/(k+1)} log n). We sweep
// n at fixed (k, r), report measured size, size normalized by the bound
// (should be flat-to-decreasing in n), the empirical log-log slope of size
// vs n (should not exceed 1 + 2/(k+1) by much once the log n factor is
// accounted for), and a sampled fault-tolerance validity check.
//
// Every sweep is a list of scenario definitions on the unified runner
// (src/runner); the per-row seed formulas (workload seed 1000+n, conversion
// seed 7n+r, ...) are the historical ones, so the measured sizes are
// bit-identical to the pre-runner bench. The final section sweeps the
// engine's thread fan-out at a pinned iteration count and checks the edge
// sets stay bit-identical via the runner's edge-set hash.
#include <cstdio>
#include <iostream>
#include <vector>

#include "ftspanner/conversion.hpp"
#include "runner/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace ftspan;
using runner::ScenarioSpec;

namespace {

/// Prints the runner table plus the derived bound-normalized columns and
/// the log-log slope of |H| against n.
void report_sweep(const std::vector<ScenarioSpec>& specs, double k,
                  bool with_bound) {
  const runner::ScenarioReport report = runner::run_scenarios(specs);
  runner::print_table(report, std::cout);
  std::vector<double> xs, ys;
  Table derived({"n", "bound", "|H|/bound"});
  for (const runner::ScenarioCell& cell : report.cells) {
    xs.push_back(static_cast<double>(cell.n));
    ys.push_back(static_cast<double>(cell.edges));
    if (with_bound) {
      const double bound = corollary22_size_bound(cell.n, cell.k, cell.r);
      derived.row().cell(cell.n).cell(bound, 0).cell(cell.edges / bound, 4);
    }
  }
  if (with_bound) {
    std::printf("\n");
    derived.print();
  }
  std::printf("log-log slope of |H| vs n: %.3f (paper exponent %.3f + o(1); "
              "when |H|/m ~ 1 the union has saturated at G itself and the "
              "slope reflects m, not the bound)\n",
              loglog_slope(xs, ys), 1.0 + 2.0 / (k + 1.0));
}

}  // namespace

int main() {
  std::printf("# E1: FT-greedy spanner size vs n (Corollary 2.2)\n");
  std::printf("# workload: G(n, p) with expected average degree 16\n");

  const std::vector<std::size_t> ns{128, 256, 512};
  for (const double k : {3.0, 5.0}) {
    for (const std::size_t r : {1u, 2u, 4u}) {
      banner("k = " + std::to_string(static_cast<int>(k)) +
             ", r = " + std::to_string(r));
      std::vector<ScenarioSpec> specs;
      for (const std::size_t n : ns) {
        ScenarioSpec s;
        s.workload = "gnp";
        s.n = {n};
        s.p = 16.0 / static_cast<double>(n);
        s.wseed = 1000 + n;
        s.algo = "ft_vertex";
        s.k = {k};
        s.r = {r};
        s.seed = 7 * n + r;
        s.validate = "sampled";
        s.trials = 15;
        s.adversarial = 25;
        s.vseed = 5;
        specs.push_back(std::move(s));
      }
      report_sweep(specs, k, /*with_bound=*/true);
    }
  }

  std::printf(
      "\nNote: with the proof-faithful iteration count, alpha * f(2n/r) "
      "exceeds m for these n, so the union saturates towards G — the size "
      "bound is vacuous below the crossover scale. The dense-family table "
      "below uses the practical preset (c = 0.25, validity still holding per "
      "experiment A1) where sparsification is visible.\n");

  for (const double k : {3.0, 5.0}) {
    for (const std::size_t r : {1u, 2u}) {
      banner("complete graphs, practical preset c=0.25: k = " +
             std::to_string(static_cast<int>(k)) + ", r = " + std::to_string(r));
      std::vector<ScenarioSpec> specs;
      for (const std::size_t n : {64u, 128u, 256u}) {
        ScenarioSpec s;
        s.workload = "complete";
        s.n = {n};
        s.algo = "ft_vertex";
        s.k = {k};
        s.r = {r};
        s.c = 0.25;
        s.seed = 11 * n + r;
        s.validate = "sampled";
        s.trials = 10;
        s.adversarial = 20;
        s.vseed = 5;
        specs.push_back(std::move(s));
      }
      report_sweep(specs, k, /*with_bound=*/false);
    }
  }

  // ---------------------------------------------------------------------
  // Parallel-engine throughput: the conversion's iterations are independent,
  // so wall-clock should drop near-linearly with threads (up to the core
  // count). The iteration count is pinned so every cell does identical work;
  // the runner's edge-set hash certifies the engine's determinism contract
  // (bit-identical output at every width).
  {
    banner("parallel engine: G(2000, 8/n), k = 3, r = 2, alpha = 48");
    std::printf("hardware threads available: %zu\n",
                ThreadPool::hardware_threads());
    ScenarioSpec s;
    s.workload = "gnp";
    s.n = {2000};
    s.p = 8.0 / 2000.0;
    s.wseed = 4242;
    s.algo = "ft_vertex";
    s.k = {3.0};
    s.r = {2};
    s.iters = 48;
    s.seed = 77;
    s.threads = {1, 2, 4, 8};
    s.validate = "none";
    const runner::ScenarioReport report = runner::run_scenario(s);

    const runner::ScenarioCell& seq = report.cells.front();
    Table t({"threads", "|H|", "sec", "speedup", "identical to seq"});
    for (const runner::ScenarioCell& cell : report.cells)
      t.row()
          .cell(cell.threads)
          .cell(cell.edges)
          .cell(cell.seconds_best, 3)
          .cell(seq.seconds_best / cell.seconds_best, 2)
          .cell(cell.edges_hash == seq.edges_hash ? "yes" : "NO");
    t.print();
    std::printf(
        "Speedup saturates at the machine's core count; per-iteration RNG "
        "streams keep every row's edge set bit-identical.\n");
  }
  return 0;
}
