// E1 — Corollary 2.2 size scaling in n.
//
// Claim: the conversion applied to the greedy spanner yields an r-fault-
// tolerant k-spanner of size O(r^{2-2/(k+1)} n^{1+2/(k+1)} log n). We sweep
// n at fixed (k, r), report measured size, size normalized by the bound
// (should be flat-to-decreasing in n), the empirical log-log slope of size
// vs n (should not exceed 1 + 2/(k+1) by much once the log n factor is
// accounted for), and a sampled fault-tolerance validity check.
#include <cstdio>
#include <vector>

#include "ftspanner/conversion.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ftspan;

int main() {
  std::printf("# E1: FT-greedy spanner size vs n (Corollary 2.2)\n");
  std::printf("# workload: G(n, p) with expected average degree 16\n");

  const std::vector<std::size_t> ns{128, 256, 512};
  for (const double k : {3.0, 5.0}) {
    for (const std::size_t r : {1u, 2u, 4u}) {
      banner("k = " + std::to_string(static_cast<int>(k)) +
             ", r = " + std::to_string(r));
      Table t({"n", "m", "|H|", "|H|/m", "bound", "|H|/bound", "alpha",
               "valid(sampled)", "sec"});
      std::vector<double> xs, ys;
      for (const std::size_t n : ns) {
        const double p = 16.0 / static_cast<double>(n);
        const Graph g = gnp(n, p, 1000 + n);
        Timer timer;
        const auto res = ft_greedy_spanner(g, k, r, 7 * n + r);
        const double sec = timer.seconds();
        const Graph h = g.edge_subgraph(res.edges);
        const auto check = check_ft_spanner_sampled(g, h, k, r, 15, 25, 5);
        const double bound = corollary22_size_bound(n, k, r);
        xs.push_back(static_cast<double>(n));
        ys.push_back(static_cast<double>(res.edges.size()));
        t.row()
            .cell(n)
            .cell(g.num_edges())
            .cell(res.edges.size())
            .cell(static_cast<double>(res.edges.size()) / g.num_edges(), 3)
            .cell(bound, 0)
            .cell(res.edges.size() / bound, 4)
            .cell(res.iterations)
            .cell(check.valid ? "yes" : "NO")
            .cell(sec, 2);
      }
      t.print();
      std::printf("log-log slope of |H| vs n: %.3f (paper exponent %.3f + o(1); "
                  "when |H|/m ~ 1 the union has saturated at G itself and the "
                  "slope reflects m, not the bound)\n",
                  loglog_slope(xs, ys), 1.0 + 2.0 / (k + 1.0));
    }
  }

  std::printf(
      "\nNote: with the proof-faithful iteration count, alpha * f(2n/r) "
      "exceeds m for these n, so the union saturates towards G — the size "
      "bound is vacuous below the crossover scale. The dense-family table "
      "below uses the practical preset (c = 0.25, validity still holding per "
      "experiment A1) where sparsification is visible.\n");

  for (const double k : {3.0, 5.0}) {
    for (const std::size_t r : {1u, 2u}) {
      banner("complete graphs, practical preset c=0.25: k = " +
             std::to_string(static_cast<int>(k)) + ", r = " + std::to_string(r));
      Table t({"n", "m", "|H|", "|H|/m", "alpha", "valid(sampled)", "sec"});
      std::vector<double> xs, ys;
      for (const std::size_t n : {64u, 128u, 256u}) {
        const Graph g = complete(n);
        ConversionOptions opt;
        opt.iteration_constant = 0.25;
        Timer timer;
        const auto res = ft_greedy_spanner(g, k, r, 11 * n + r, opt);
        const double sec = timer.seconds();
        const Graph h = g.edge_subgraph(res.edges);
        const auto check = check_ft_spanner_sampled(g, h, k, r, 10, 20, 5);
        xs.push_back(static_cast<double>(n));
        ys.push_back(static_cast<double>(res.edges.size()));
        t.row()
            .cell(n)
            .cell(g.num_edges())
            .cell(res.edges.size())
            .cell(static_cast<double>(res.edges.size()) / g.num_edges(), 3)
            .cell(res.iterations)
            .cell(check.valid ? "yes" : "NO")
            .cell(sec, 2);
      }
      t.print();
      std::printf("log-log slope of |H| vs n: %.3f "
                  "(paper exponent %.3f + o(1); m itself grows with slope 2)\n",
                  loglog_slope(xs, ys), 1.0 + 2.0 / (k + 1.0));
    }
  }
  return 0;
}
