// E1 — Corollary 2.2 size scaling in n, plus conversion-engine throughput.
//
// Claim: the conversion applied to the greedy spanner yields an r-fault-
// tolerant k-spanner of size O(r^{2-2/(k+1)} n^{1+2/(k+1)} log n). We sweep
// n at fixed (k, r), report measured size, size normalized by the bound
// (should be flat-to-decreasing in n), the empirical log-log slope of size
// vs n (should not exceed 1 + 2/(k+1) by much once the log n factor is
// accounted for), and a sampled fault-tolerance validity check.
//
// The final section measures the parallel engine (ftspanner/parallel.hpp) on
// an n >= 2000 instance: wall-clock at 1/2/4/8 threads, the speedup over the
// sequential path, and a bit-identity check of the edge sets.
#include <cstdio>
#include <vector>

#include "ftspanner/conversion.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace ftspan;

int main() {
  std::printf("# E1: FT-greedy spanner size vs n (Corollary 2.2)\n");
  std::printf("# workload: G(n, p) with expected average degree 16\n");

  const std::vector<std::size_t> ns{128, 256, 512};
  for (const double k : {3.0, 5.0}) {
    for (const std::size_t r : {1u, 2u, 4u}) {
      banner("k = " + std::to_string(static_cast<int>(k)) +
             ", r = " + std::to_string(r));
      Table t({"n", "m", "|H|", "|H|/m", "bound", "|H|/bound", "alpha",
               "valid(sampled)", "sec"});
      std::vector<double> xs, ys;
      for (const std::size_t n : ns) {
        const double p = 16.0 / static_cast<double>(n);
        const Graph g = gnp(n, p, 1000 + n);
        Timer timer;
        const auto res = ft_greedy_spanner(g, k, r, 7 * n + r);
        const double sec = timer.seconds();
        const Graph h = g.edge_subgraph(res.edges);
        const auto check = check_ft_spanner_sampled(g, h, k, r, 15, 25, 5);
        const double bound = corollary22_size_bound(n, k, r);
        xs.push_back(static_cast<double>(n));
        ys.push_back(static_cast<double>(res.edges.size()));
        t.row()
            .cell(n)
            .cell(g.num_edges())
            .cell(res.edges.size())
            .cell(static_cast<double>(res.edges.size()) / g.num_edges(), 3)
            .cell(bound, 0)
            .cell(res.edges.size() / bound, 4)
            .cell(res.iterations)
            .cell(check.valid ? "yes" : "NO")
            .cell(sec, 2);
      }
      t.print();
      std::printf("log-log slope of |H| vs n: %.3f (paper exponent %.3f + o(1); "
                  "when |H|/m ~ 1 the union has saturated at G itself and the "
                  "slope reflects m, not the bound)\n",
                  loglog_slope(xs, ys), 1.0 + 2.0 / (k + 1.0));
    }
  }

  std::printf(
      "\nNote: with the proof-faithful iteration count, alpha * f(2n/r) "
      "exceeds m for these n, so the union saturates towards G — the size "
      "bound is vacuous below the crossover scale. The dense-family table "
      "below uses the practical preset (c = 0.25, validity still holding per "
      "experiment A1) where sparsification is visible.\n");

  for (const double k : {3.0, 5.0}) {
    for (const std::size_t r : {1u, 2u}) {
      banner("complete graphs, practical preset c=0.25: k = " +
             std::to_string(static_cast<int>(k)) + ", r = " + std::to_string(r));
      Table t({"n", "m", "|H|", "|H|/m", "alpha", "valid(sampled)", "sec"});
      std::vector<double> xs, ys;
      for (const std::size_t n : {64u, 128u, 256u}) {
        const Graph g = complete(n);
        ConversionOptions opt;
        opt.iteration_constant = 0.25;
        Timer timer;
        const auto res = ft_greedy_spanner(g, k, r, 11 * n + r, opt);
        const double sec = timer.seconds();
        const Graph h = g.edge_subgraph(res.edges);
        const auto check = check_ft_spanner_sampled(g, h, k, r, 10, 20, 5);
        xs.push_back(static_cast<double>(n));
        ys.push_back(static_cast<double>(res.edges.size()));
        t.row()
            .cell(n)
            .cell(g.num_edges())
            .cell(res.edges.size())
            .cell(static_cast<double>(res.edges.size()) / g.num_edges(), 3)
            .cell(res.iterations)
            .cell(check.valid ? "yes" : "NO")
            .cell(sec, 2);
      }
      t.print();
      std::printf("log-log slope of |H| vs n: %.3f "
                  "(paper exponent %.3f + o(1); m itself grows with slope 2)\n",
                  loglog_slope(xs, ys), 1.0 + 2.0 / (k + 1.0));
    }
  }

  // ---------------------------------------------------------------------
  // Parallel-engine throughput: the conversion's iterations are independent,
  // so wall-clock should drop near-linearly with threads (up to the core
  // count). The iteration count is pinned so every row does identical work,
  // and the edge sets are compared against the sequential output — the
  // engine's determinism contract makes them bit-identical.
  {
    const std::size_t n = 2000;
    const Graph g = gnp(n, 8.0 / static_cast<double>(n), 4242);
    ConversionOptions base_opt;
    base_opt.iterations = 48;  // pinned: equal work per row
    banner("parallel engine: G(2000, 8/n), k = 3, r = 2, alpha = 48");
    std::printf("hardware threads available: %zu\n",
                ThreadPool::hardware_threads());

    base_opt.threads = 1;
    Timer seq_timer;
    const auto seq = ft_greedy_spanner(g, 3.0, 2, 77, base_opt);
    const double seq_sec = seq_timer.seconds();

    Table t({"threads", "|H|", "sec", "speedup", "identical to seq"});
    t.row().cell(1).cell(seq.edges.size()).cell(seq_sec, 3).cell(1.0, 2).cell(
        "yes");
    for (const std::size_t threads : {2u, 4u, 8u}) {
      ConversionOptions opt = base_opt;
      opt.threads = threads;
      Timer timer;
      const auto res = ft_greedy_spanner(g, 3.0, 2, 77, opt);
      const double sec = timer.seconds();
      t.row()
          .cell(threads)
          .cell(res.edges.size())
          .cell(sec, 3)
          .cell(seq_sec / sec, 2)
          .cell(res.edges == seq.edges ? "yes" : "NO");
    }
    t.print();
    std::printf(
        "Speedup saturates at the machine's core count; per-iteration RNG "
        "streams keep every row's edge set bit-identical.\n");
  }
  return 0;
}
