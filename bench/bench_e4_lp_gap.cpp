// E4 — Sections 3.1/3.2: integrality gaps of LP (2) and LP (3), closed by
// LP (4)'s knapsack-cover inequalities.
//
// (a) Complete graph K_n: LP (2) pays ~ n(n-1)/(n-r-2) = O(n) while any
//     valid spanner costs >= rn — an Ω(r) gap. LP (4) scales with r.
// (b) The cost-M gadget: LP (3) pays ~ M/(r+1) + 2r while OPT = M + 2r —
//     again Ω(r). LP (4) pays the full M.
#include <cstdio>

#include "graph/generators.hpp"
#include "spanner2/exact_bb.hpp"
#include "spanner2/formulation.hpp"
#include "util/table.hpp"

using namespace ftspan;

int main() {
  std::printf("# E4: LP relaxation strength (Sections 3.1-3.2)\n");

  {
    banner("complete graph K_8 (unit costs), r sweep");
    // LP (2) is given by its closed form n(n-1)/(n-r-2) (feasibility of
    // x = 1/(n-r-2)); solve_lp2_exact confirms the form on K_6 below.
    const std::size_t n = 8;
    const Digraph g = di_complete(n);
    Table t({"r", "LP(2) closed form", "LP(3)", "LP(4)", "OPT lower bnd rn",
             "LP2 gap", "LP4 gap", "KC cuts"});
    for (const std::size_t r : {1u, 2u, 3u, 4u}) {
      const double lp2 = lp2_value_complete_graph(n, r);
      const auto lp3 = solve_lp3(g, r);
      const auto lp4 = solve_lp4(g, r);
      const double opt_lb = static_cast<double>(r) * n;
      t.row()
          .cell(r)
          .cell(lp2, 1)
          .cell(lp3.value, 1)
          .cell(lp4.value, 1)
          .cell(opt_lb, 0)
          .cell(opt_lb / lp2, 2)
          .cell(opt_lb / lp4.value, 2)
          .cell(lp4.cuts_added);
    }
    t.print();
    std::printf(
        "LP(2)'s gap grows ~linearly in r (the Section 3.1 example); LP(4)'s "
        "stays bounded.\n");

    const double exact6 = solve_lp2_exact(di_complete(6), 1).value;
    std::printf(
        "sanity: exact LP(2) on K_6, r=1: %.3f (<= closed form %.3f)\n",
        exact6, lp2_value_complete_graph(6, 1));
  }

  {
    banner("gap gadget (u -> v cost M = 1000, r unit 2-paths), r sweep");
    Table t({"r", "LP(3)", "LP(3) predicted M/(r+1)+2r", "LP(4)", "OPT",
             "LP3 gap", "LP4 gap"});
    const double M = 1000.0;
    for (const std::size_t r : {1u, 2u, 4u, 8u}) {
      const Digraph g = gap_gadget(r, M);
      const auto lp3 = solve_lp3(g, r);
      const auto lp4 = solve_lp4(g, r);
      const auto opt = exact_min_ft_2spanner(g, r);
      t.row()
          .cell(r)
          .cell(lp3.value, 1)
          .cell(M / (r + 1) + 2.0 * r, 1)
          .cell(lp4.value, 1)
          .cell(opt.cost, 1)
          .cell(opt.cost / lp3.value, 2)
          .cell(opt.cost / lp4.value, 2);
    }
    t.print();
    std::printf(
        "LP(3) tracks M/(r+1)+2r (gap Ω(r)); LP(4) = OPT on the gadget — the "
        "knapsack-cover inequalities (Section 3.2) close the gap.\n");
  }
  return 0;
}
