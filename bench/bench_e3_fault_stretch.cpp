// E3 — fault-tolerance validity: the definition in action.
//
// Compare three constructions under vertex faults: the plain greedy spanner
// (no fault tolerance), the layered-greedy heuristic (edge-disjoint layers),
// and the Theorem 2.1 conversion. For each we report size and the worst
// stretch found by exact enumeration (small n) and by the targeted
// adversary (larger n). The conversion should be the only one that is
// always valid.
#include <cstdio>

#include "ftspanner/baselines.hpp"
#include "ftspanner/conversion.hpp"
#include "graph/generators.hpp"
#include "spanner/greedy.hpp"
#include "util/table.hpp"
#include "validate/stretch_oracle.hpp"

using namespace ftspan;

namespace {

void report(const char* name, const Graph& g, const Graph& h, double k,
            std::size_t r, Table& t, bool exact) {
  // One oracle per (g, h): every fault set below shares its batched
  // Dijkstras and epoch-stamped scratch.
  const StretchOracle oracle(g, h, k);
  const FtCheckResult check =
      exact ? oracle.check_exact(r) : oracle.check_sampled(r, 40, 60, 99);
  t.row()
      .cell(name)
      .cell(h.num_edges())
      .cell(check.worst_stretch >= kInfiniteWeight
                ? std::string("disconnected")
                : [&] {
                    char buf[32];
                    std::snprintf(buf, sizeof buf, "%.2f", check.worst_stretch);
                    return std::string(buf);
                  }())
      .cell(check.valid ? "yes" : "NO")
      .cell(check.fault_sets_checked);
}

}  // namespace

int main() {
  std::printf("# E3: stretch under vertex faults (definition of r-FT)\n");

  {
    banner("exact enumeration: K_14, k = 3, r = 1");
    const Graph g = complete(14);
    Table t({"construction", "|H|", "worst stretch", "valid", "fault sets"});
    report("plain greedy", g, greedy_spanner_graph(g, 3.0), 3.0, 1, t, true);
    report("layered greedy", g, g.edge_subgraph(layered_greedy_spanner(g, 3.0, 1)),
           3.0, 1, t, true);
    const auto conv = ft_greedy_spanner(g, 3.0, 1, 7);
    report("conversion (Thm 2.1)", g, g.edge_subgraph(conv.edges), 3.0, 1, t, true);
    t.print();
  }

  {
    banner("exact enumeration: G(18, 0.5), k = 3, r = 2");
    const Graph g = gnp(18, 0.5, 11);
    Table t({"construction", "|H|", "worst stretch", "valid", "fault sets"});
    report("plain greedy", g, greedy_spanner_graph(g, 3.0), 3.0, 2, t, true);
    report("layered greedy", g, g.edge_subgraph(layered_greedy_spanner(g, 3.0, 2)),
           3.0, 2, t, true);
    const auto conv = ft_greedy_spanner(g, 3.0, 2, 13);
    report("conversion (Thm 2.1)", g, g.edge_subgraph(conv.edges), 3.0, 2, t, true);
    t.print();
  }

  {
    banner("sampled + adversarial: G(128, 12/n), k = 5, r = 2");
    const Graph g = gnp(128, 12.0 / 128, 17);
    Table t({"construction", "|H|", "worst stretch", "valid", "fault sets"});
    report("plain greedy", g, greedy_spanner_graph(g, 5.0), 5.0, 2, t, false);
    report("layered greedy", g, g.edge_subgraph(layered_greedy_spanner(g, 5.0, 2)),
           5.0, 2, t, false);
    const auto conv = ft_greedy_spanner(g, 5.0, 2, 19);
    report("conversion (Thm 2.1)", g, g.edge_subgraph(conv.edges), 5.0, 2, t, false);
    t.print();
  }

  std::printf(
      "\nReading: plain greedy is a valid k-spanner but fails under faults; "
      "the conversion stays within stretch k for every fault set tried.\n");
  return 0;
}
