// E3 — fault-tolerance validity: the definition in action.
//
// Compare three constructions under vertex faults: the plain greedy spanner
// (no fault tolerance), the layered-greedy heuristic (edge-disjoint layers),
// and the Theorem 2.1 conversion. For each we report size and the worst
// stretch found by exact enumeration (small n) and by the targeted
// adversary (larger n). The conversion should be the only one that is
// always valid.
//
// Each section is three scenario definitions on the unified runner
// (src/runner): same workload instance, three algorithms, StretchOracle
// validation — the bench itself holds no execution loop.
#include <cstdio>
#include <iostream>
#include <vector>

#include "runner/runner.hpp"
#include "util/table.hpp"

using namespace ftspan;
using runner::ScenarioSpec;

namespace {

/// The three constructions over one workload instance, one spec each.
std::vector<ScenarioSpec> constructions(const char* workload, std::size_t n,
                                        double p, std::uint64_t wseed,
                                        double k, std::size_t r,
                                        std::uint64_t conversion_seed,
                                        const char* validate) {
  ScenarioSpec base;
  base.workload = workload;
  base.n = {n};
  base.p = p;
  base.wseed = wseed;
  base.k = {k};
  base.r = {r};
  base.validate = validate;
  std::vector<ScenarioSpec> specs(3, base);
  specs[0].algo = "greedy";
  specs[1].algo = "layered_greedy";
  specs[2].algo = "ft_vertex";
  specs[2].seed = conversion_seed;
  return specs;
}

}  // namespace

int main() {
  std::printf("# E3: stretch under vertex faults (definition of r-FT)\n");

  banner("exact enumeration: K_14, k = 3, r = 1");
  runner::print_table(
      runner::run_scenarios(
          constructions("complete", 14, -1.0, 1, 3.0, 1, 7, "exact")),
      std::cout);

  banner("exact enumeration: G(18, 0.5), k = 3, r = 2");
  runner::print_table(
      runner::run_scenarios(
          constructions("gnp", 18, 0.5, 11, 3.0, 2, 13, "exact")),
      std::cout);

  banner("sampled + adversarial: G(128, 12/n), k = 5, r = 2");
  runner::print_table(
      runner::run_scenarios(constructions("gnp", 128, 12.0 / 128, 17, 5.0, 2,
                                          19, "sampled")),
      std::cout);

  std::printf(
      "\nReading: plain greedy is a valid k-spanner but fails under faults; "
      "the conversion stays within stretch k for every fault set tried.\n");
  return 0;
}
