// E11 — validation throughput: the StretchOracle vs the per-pair path.
//
// The pre-oracle validators ran one Dijkstra pair per *pair* (edge) per
// fault set. The oracle runs one source-batched Dijkstra pair per
// spanner-edge endpoint, bounds the G-side run by the largest incident edge
// length, early-exits both runs once every incident target is settled, and
// reuses epoch-stamped scratch across fault sets. This bench times both on
// the same fault-set stream (so worst stretch must match exactly) and then
// shows the thread fan-out.
//
//   $ ./bench_e11_validation_throughput [n] [p] [r] [trials] [--json <path>]
//
// Acceptance (ISSUE 3): oracle >= 5x faster than the per-pair path at one
// thread on gnp(400, 0.05), r = 2, with identical worst_stretch.
// `--json <path>` writes the machine-readable record for perf tracking.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "spanner/greedy.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ftspan;

namespace {

/// The pre-oracle formulation: per fault set, one full Dijkstra pair per
/// surviving edge, fresh allocations every run. Consumes the same per-trial
/// RNG streams as StretchOracle::check_sampled's random trials, so the
/// fault-set stream — and therefore the worst stretch — matches the oracle
/// exactly.
FtCheckResult per_pair_reference(const Graph& g, const Graph& h, double k,
                                 std::size_t r, std::size_t trials,
                                 std::uint64_t seed) {
  const std::size_t n = g.num_vertices();
  FtCheckResult out;
  out.witness_faults = VertexSet(n);
  const std::size_t fault_size =
      std::min(r, n >= 2 ? n - 2 : std::size_t{0});
  std::vector<Vertex> pool;
  VertexSet faults(n);
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng(hash_combine(seed, t));
    sample_fault_set(rng, fault_size, pool, faults);
    ++out.fault_sets_checked;
    for (const Edge& e : g.edges()) {
      if (faults.contains(e.u) || faults.contains(e.v)) continue;
      const auto dg = dijkstra(g, e.u, &faults);  // one full run per PAIR
      const auto dh = dijkstra(h, e.u, &faults);
      if (!dg.reachable(e.v) || dg.dist[e.v] <= 0) continue;
      const double stretch = dh.reachable(e.v)
                                 ? dh.dist[e.v] / dg.dist[e.v]
                                 : kInfiniteWeight;
      out.consider(stretch, faults, e.u, e.v, k);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* pos[4] = {nullptr, nullptr, nullptr, nullptr};
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path argument\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (npos < 4) {
      pos[npos++] = argv[i];
    }
  }
  const std::size_t n = pos[0] ? std::strtoul(pos[0], nullptr, 10) : 400;
  const double p = pos[1] ? std::strtod(pos[1], nullptr) : 0.05;
  const std::size_t r = pos[2] ? std::strtoul(pos[2], nullptr, 10) : 2;
  const std::size_t trials = pos[3] ? std::strtoul(pos[3], nullptr, 10) : 12;
  const double k = 3.0;
  const std::uint64_t seed = 1;

  std::printf("# E11: validation throughput — StretchOracle vs per-pair\n");
  const Graph g = gnp(n, p, seed);
  const Graph h = greedy_spanner_graph(g, k);
  std::printf("\ngraph: gnp(n=%zu, p=%g) -> m=%zu; greedy %g-spanner: %zu "
              "edges; r=%zu, %zu random fault sets\n",
              n, p, g.num_edges(), k, h.num_edges(), r, trials);

  double json_sets_per_sec = 0;
  double json_speedup = 0;
  {
    banner("sampled check at 1 thread (identical fault-set stream)");
    const StretchOracle oracle(g, h, k);

    Timer t1;
    const FtCheckResult ref = per_pair_reference(g, h, k, r, trials, seed);
    const double ms_ref = t1.millis();

    FtCheckOptions opt;
    opt.threads = 1;
    Timer t2;
    const FtCheckResult ora =
        oracle.check_sampled(r, trials, /*adversarial_edges=*/0, seed, opt);
    const double ms_ora = t2.millis();

    Table t({"validator", "fault sets", "ms", "sets/s", "worst stretch"});
    t.row()
        .cell("per-pair (pre-oracle)")
        .cell(ref.fault_sets_checked)
        .cell(ms_ref, 1)
        .cell(ref.fault_sets_checked / (ms_ref / 1e3), 1)
        .cell(ref.worst_stretch, 4);
    t.row()
        .cell("StretchOracle")
        .cell(ora.fault_sets_checked)
        .cell(ms_ora, 1)
        .cell(ora.fault_sets_checked / (ms_ora / 1e3), 1)
        .cell(ora.worst_stretch, 4);
    t.print();

    const double speedup = ms_ref / ms_ora;
    const bool same = ref.worst_stretch == ora.worst_stretch;
    std::printf("\nspeedup: %.1fx; worst-stretch self-check: %s\n", speedup,
                same ? "IDENTICAL (pass)" : "MISMATCH (FAIL)");
    if (!same || speedup < 5.0) {
      std::printf("acceptance FAILED (need identical stretch and >= 5x)\n");
      return 1;
    }
    json_sets_per_sec = ora.fault_sets_checked / (ms_ora / 1e3);
    json_speedup = speedup;
  }

  {
    banner("full sampled check (random + adversarial), oracle only");
    const StretchOracle oracle(g, h, k);
    Timer t;
    const FtCheckResult res =
        oracle.check_sampled(r, trials, /*adversarial_edges=*/trials, seed);
    std::printf("%zu fault sets in %.1f ms (%s, worst stretch %.4f)\n",
                res.fault_sets_checked, t.millis(),
                res.valid ? "valid" : "INVALID", res.worst_stretch);
  }

  {
    banner("thread fan-out (bit-identical result at every width)");
    const StretchOracle oracle(g, h, k);
    FtCheckOptions seq;
    seq.threads = 1;
    const FtCheckResult base =
        oracle.check_sampled(r, trials, trials, seed, seq);
    Table t({"threads", "ms", "speedup", "bit-identical"});
    double ms1 = 0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      FtCheckOptions opt;
      opt.threads = threads;
      Timer timer;
      const FtCheckResult res =
          oracle.check_sampled(r, trials, trials, seed, opt);
      const double ms = timer.millis();
      if (threads == 1) ms1 = ms;
      const bool same = res.valid == base.valid &&
                        res.worst_stretch == base.worst_stretch &&
                        res.witness_faults == base.witness_faults &&
                        res.witness_u == base.witness_u &&
                        res.witness_v == base.witness_v;
      t.row()
          .cell(threads)
          .cell(ms, 1)
          .cell(ms1 / ms, 2)
          .cell(same ? "yes" : "NO");
      if (!same) {
        t.print();
        std::printf("\ndeterminism FAILED at %zu threads\n", threads);
        return 1;
      }
    }
    t.print();
    std::printf(
        "\nReading: the oracle turns one Dijkstra pair per pair into one per "
        "endpoint (bounded + early-exit + reused scratch), and the fault-set "
        "fan-out adds wall-clock speedup without changing a single bit.\n");
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("ERROR: cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"bench_e11\",\n"
                 "  \"instance\": \"gnp(%zu, %g, seed=1), k=%g, r=%zu, "
                 "%zu fault sets\",\n"
                 "  \"threads\": 1,\n"
                 "  \"oracle_sets_per_sec\": %.2f,\n"
                 "  \"speedup_vs_per_pair\": %.2f\n"
                 "}\n",
                 n, p, k, r, trials, json_sets_per_sec, json_speedup);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
