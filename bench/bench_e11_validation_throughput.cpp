// E11 — validation throughput: the StretchOracle vs the per-pair path.
//
// The pre-oracle validators ran one Dijkstra pair per *pair* (edge) per
// fault set. The oracle runs one source-batched Dijkstra pair per
// spanner-edge endpoint, bounds the G-side run by the largest incident edge
// length, early-exits both runs once every incident target is settled, and
// reuses epoch-stamped scratch across fault sets. This bench times both on
// the same fault-set stream (so worst stretch must match exactly) and then
// shows the thread fan-out.
//
// The oracle side runs as scenario definitions on the unified runner
// (src/runner) — the same cells `ftspan bench validation_throughput`
// executes; only the legacy per-pair reference is bench-local code.
//
//   $ ./bench_e11_validation_throughput [n] [p] [r] [trials] [--json <path>]
//
// Acceptance (ISSUE 3): oracle >= 5x faster than the per-pair path at one
// thread on gnp(400, 0.05), r = 2, with identical worst_stretch.
// `--json <path>` writes the runner's JSON record of the oracle scenario.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "runner/runner.hpp"
#include "spanner/greedy.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "validate/stretch_oracle.hpp"

using namespace ftspan;
using runner::ScenarioSpec;

namespace {

/// The pre-oracle formulation: per fault set, one full Dijkstra pair per
/// surviving edge, fresh allocations every run. Consumes the same per-trial
/// RNG streams as StretchOracle::check_sampled's random trials, so the
/// fault-set stream — and therefore the worst stretch — matches the oracle
/// exactly.
FtCheckResult per_pair_reference(const Graph& g, const Graph& h, double k,
                                 std::size_t r, std::size_t trials,
                                 std::uint64_t seed) {
  const std::size_t n = g.num_vertices();
  FtCheckResult out;
  out.witness_faults = VertexSet(n);
  const std::size_t fault_size =
      std::min(r, n >= 2 ? n - 2 : std::size_t{0});
  std::vector<Vertex> pool;
  VertexSet faults(n);
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng(hash_combine(seed, t));
    sample_fault_set(rng, fault_size, pool, faults);
    ++out.fault_sets_checked;
    for (const Edge& e : g.edges()) {
      if (faults.contains(e.u) || faults.contains(e.v)) continue;
      const auto dg = dijkstra(g, e.u, &faults);  // one full run per PAIR
      const auto dh = dijkstra(h, e.u, &faults);
      if (!dg.reachable(e.v) || dg.dist[e.v] <= 0) continue;
      const double stretch = dh.reachable(e.v)
                                 ? dh.dist[e.v] / dg.dist[e.v]
                                 : kInfiniteWeight;
      out.consider(stretch, faults, e.u, e.v, k);
    }
  }
  return out;
}

/// The oracle scenario: greedy k-spanner of gnp(n, p), sampled validation.
ScenarioSpec oracle_spec(std::size_t n, double p, std::size_t r,
                         std::size_t trials, std::size_t adversarial,
                         std::uint64_t seed) {
  ScenarioSpec s;
  s.workload = "gnp";
  s.n = {n};
  s.p = p;
  s.wseed = seed;
  s.algo = "greedy";
  s.k = {3.0};
  s.r = {r};
  s.seed = seed;
  s.validate = "sampled";
  s.trials = trials;
  s.adversarial = adversarial;
  s.vseed = seed;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* pos[4] = {nullptr, nullptr, nullptr, nullptr};
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path argument\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (npos < 4) {
      pos[npos++] = argv[i];
    }
  }
  const std::size_t n = pos[0] ? std::strtoul(pos[0], nullptr, 10) : 400;
  const double p = pos[1] ? std::strtod(pos[1], nullptr) : 0.05;
  const std::size_t r = pos[2] ? std::strtoul(pos[2], nullptr, 10) : 2;
  const std::size_t trials = pos[3] ? std::strtoul(pos[3], nullptr, 10) : 12;
  const double k = 3.0;
  const std::uint64_t seed = 1;

  std::printf("# E11: validation throughput — StretchOracle vs per-pair\n");
  const Graph g = gnp(n, p, seed);
  const Graph h = greedy_spanner_graph(g, k);
  std::printf("\ngraph: gnp(n=%zu, p=%g) -> m=%zu; greedy %g-spanner: %zu "
              "edges; r=%zu, %zu random fault sets\n",
              n, p, g.num_edges(), k, h.num_edges(), r, trials);

  runner::ScenarioReport oracle_report;
  {
    banner("sampled check at 1 thread (identical fault-set stream)");

    Timer t1;
    const FtCheckResult ref = per_pair_reference(g, h, k, r, trials, seed);
    const double ms_ref = t1.millis();

    oracle_report = runner::run_scenario(
        oracle_spec(n, p, r, trials, /*adversarial=*/0, seed));
    const runner::ScenarioCell& ora = oracle_report.cells.front();
    const double ms_ora = ora.val_seconds * 1e3;

    Table t({"validator", "fault sets", "ms", "sets/s", "worst stretch"});
    t.row()
        .cell("per-pair (pre-oracle)")
        .cell(ref.fault_sets_checked)
        .cell(ms_ref, 1)
        .cell(ref.fault_sets_checked / (ms_ref / 1e3), 1)
        .cell(ref.worst_stretch, 4);
    t.row()
        .cell("StretchOracle (runner)")
        .cell(ora.fault_sets)
        .cell(ms_ora, 1)
        .cell(ora.fault_sets / (ms_ora / 1e3), 1)
        .cell(ora.worst_stretch, 4);
    t.print();

    const double speedup = ms_ref / ms_ora;
    const bool same = ref.worst_stretch == ora.worst_stretch;
    std::printf("\nspeedup: %.1fx; worst-stretch self-check: %s\n", speedup,
                same ? "IDENTICAL (pass)" : "MISMATCH (FAIL)");
    if (!same || speedup < 5.0) {
      std::printf("acceptance FAILED (need identical stretch and >= 5x)\n");
      return 1;
    }
  }

  {
    banner("full sampled check (random + adversarial), oracle only");
    const runner::ScenarioReport report =
        runner::run_scenario(oracle_spec(n, p, r, trials, trials, seed));
    const runner::ScenarioCell& cell = report.cells.front();
    std::printf("%zu fault sets in %.1f ms (%s, worst stretch %.4f)\n",
                cell.fault_sets, cell.val_seconds * 1e3,
                cell.valid ? "valid" : "INVALID", cell.worst_stretch);
  }

  {
    banner("thread fan-out (bit-identical result at every width)");
    ScenarioSpec s = oracle_spec(n, p, r, trials, trials, seed);
    s.threads = {1, 2, 4, 8};
    const runner::ScenarioReport report = runner::run_scenario(s);
    const runner::ScenarioCell& base = report.cells.front();
    Table t({"threads", "ms", "speedup", "bit-identical"});
    for (const runner::ScenarioCell& cell : report.cells) {
      const bool same = cell.valid == base.valid &&
                        cell.worst_stretch == base.worst_stretch &&
                        cell.witness_u == base.witness_u &&
                        cell.witness_v == base.witness_v &&
                        cell.fault_sets == base.fault_sets;
      t.row()
          .cell(cell.threads)
          .cell(cell.val_seconds * 1e3, 1)
          .cell(base.val_seconds / cell.val_seconds, 2)
          .cell(same ? "yes" : "NO");
      if (!same) {
        t.print();
        std::printf("\ndeterminism FAILED at %zu threads\n", cell.threads);
        return 1;
      }
    }
    t.print();
    std::printf(
        "\nReading: the oracle turns one Dijkstra pair per pair into one per "
        "endpoint (bounded + early-exit + reused scratch), and the fault-set "
        "fan-out adds wall-clock speedup without changing a single bit.\n");
  }

  if (json_path != nullptr) {
    std::ofstream os(json_path);
    if (!os) {
      std::printf("ERROR: cannot open %s for writing\n", json_path);
      return 1;
    }
    runner::print_json(oracle_report, os);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
