// E7 — Theorem 3.4: O(log Δ)-approximation for unit costs via the
// constructive Lovász Local Lemma.
//
// Regime of the theorem: Δ fixed, n growing — then α = C ln Δ stays flat
// while the log n rounding's α grows. Workload: b disjoint copies of the
// complete digraph K_m (Δ = m-1 fixed, n = b·m, every edge has m-2
// two-paths, so there is genuine rounding freedom). LP (4) decomposes
// exactly over components, so we solve one block and replicate its
// (symmetric) solution — the full-graph LP* is b times the block value.
//
// Secondary table: sparse bounded-degree digraphs, where LP (4) is already
// integral and both roundings coincide (a consistency check, not a
// separation).
#include <cstdio>

#include "graph/generators.hpp"
#include "spanner2/lll.hpp"
#include "spanner2/rounding.hpp"
#include "spanner2/verify2.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftspan;

namespace {

Digraph k_blocks(std::size_t blocks, std::size_t m) {
  Digraph g(blocks * m);
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j)
        if (i != j)
          g.add_edge(static_cast<Vertex>(b * m + i),
                     static_cast<Vertex>(b * m + j));
  return g;
}

/// Rounds replicated-x with threshold alpha, retries until Lemma 3.1 valid,
/// repairs as a last resort; returns the cost.
double round_until_valid(const Digraph& g, const std::vector<double>& x,
                         double alpha, std::size_t r, Rng& rng) {
  for (int attempt = 0; attempt < 25; ++attempt) {
    auto in = threshold_round(g, x, alpha, rng());
    if (is_ft_2spanner(g, in, r)) return spanner_cost(g, in);
  }
  auto in = threshold_round(g, x, alpha, rng());
  greedy_repair(g, in, r);
  return spanner_cost(g, in);
}

}  // namespace

int main() {
  std::printf("# E7: LLL rounding (alpha = ln Delta) vs log-n rounding\n");

  {
    const std::size_t m = 8;  // Delta = 7, fixed
    const std::size_t r = 1;
    const Digraph block = di_complete(m);
    const auto block_lp = solve_lp4(block, r);

    banner("b disjoint K_8 blocks (Delta = 7 fixed, n grows), r = 1, 3 seeds");
    Table t({"blocks", "n", "m edges", "LP*", "LLL-alpha cost", "logn-alpha cost",
             "LLL/LP", "logn/LP", "a=ln D", "a=ln n"});
    for (const std::size_t blocks : {3u, 6u, 12u, 24u}) {
      const Digraph g = k_blocks(blocks, m);
      const std::size_t n = g.num_vertices();
      // Replicate the block solution (LP (4) decomposes over components).
      std::vector<double> x(g.num_edges());
      for (EdgeId id = 0; id < g.num_edges(); ++id)
        x[id] = block_lp.x[id % block.num_edges()];
      const double lp_star = block_lp.value * static_cast<double>(blocks);

      const double a_lll = std::log(static_cast<double>(m - 1));
      const double a_logn = std::log(static_cast<double>(n));
      Stats lll_cost, logn_cost;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Rng rng(seed * 977);
        lll_cost.add(round_until_valid(g, x, a_lll, r, rng));
        logn_cost.add(round_until_valid(g, x, a_logn, r, rng));
      }
      t.row()
          .cell(blocks)
          .cell(n)
          .cell(g.num_edges())
          .cell(lp_star, 1)
          .cell(lll_cost.mean(), 1)
          .cell(logn_cost.mean(), 1)
          .cell(lll_cost.mean() / lp_star, 3)
          .cell(logn_cost.mean() / lp_star, 3)
          .cell(a_lll, 2)
          .cell(a_logn, 2);
    }
    t.print();
    std::printf(
        "Reading: LLL/LP stays flat as n grows (alpha = ln Delta is "
        "n-independent); logn/LP climbs until alpha*x >= 1 buys every edge. "
        "This is Theorem 3.4's improvement over Theorem 3.3 at bounded "
        "degree.\n");
  }

  {
    banner("sparse bounded-degree digraphs (consistency check), r = 1");
    Table t({"n", "Delta", "m", "LP(4)*", "LLL cost", "logn cost",
             "resamples", "converged"});
    for (const std::size_t n : {30u, 60u}) {
      for (const std::size_t delta : {4u, 8u}) {
        Stats lp, lll_c, logn_c, resamples;
        std::size_t m = 0;
        bool all_converged = true;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
          const Digraph g = di_bounded_degree(n, delta, 0.6, 100 * n + seed);
          m = g.num_edges();
          const auto a = lll_ft_2spanner(g, 1, seed * 5 + 1);
          const auto b = approx_ft_2spanner(g, 1, seed * 5 + 1);
          if (!a.valid || !b.valid) continue;
          lp.add(a.lp_value);
          lll_c.add(a.cost);
          logn_c.add(b.cost);
          resamples.add(static_cast<double>(a.resamples));
          all_converged = all_converged && a.converged;
        }
        t.row()
            .cell(n)
            .cell(delta)
            .cell(m)
            .cell(lp.mean(), 1)
            .cell(lll_c.mean(), 1)
            .cell(logn_c.mean(), 1)
            .cell(resamples.mean(), 1)
            .cell(all_converged ? "yes" : "partly");
      }
    }
    t.print();
    std::printf(
        "Reading: these LPs are near-integral (few 2-paths at this "
        "sparsity), so both roundings sit at LP* — consistent, no "
        "separation expected here.\n");
  }
  return 0;
}
