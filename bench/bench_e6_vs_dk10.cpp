// E6 — Theorem 3.3 vs the DK10 baseline.
//
// DK10 rounds the weaker relaxation (no knapsack-cover inequalities) and
// must inflate thresholds by α = Θ((r+1) log n); the paper's algorithm
// inflates by Θ(log n) only. As r grows the baseline buys ~r times more
// edges. Both are run with the same retry/repair policy.
#include <cstdio>

#include "graph/generators.hpp"
#include "spanner2/dk10_baseline.hpp"
#include "spanner2/rounding.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftspan;

int main() {
  std::printf("# E6: Theorem 3.3 (KC cuts, alpha=ln n) vs DK10 (alpha=(r+1)ln n)\n");
  std::printf("# workload: G(14, 0.45) directed, unit costs, 4 seeds\n");

  banner("cost vs r");
  Table t({"r", "LP(3)*", "LP(4)*", "DK10 cost", "ours cost",
           "DK10/LP4", "ours/LP4", "DK10 alpha", "ours alpha"});
  for (const std::size_t r : {0u, 1u, 2u, 3u, 4u}) {
    Stats lp3v, lp4v, dk, ours;
    double a_dk = 0, a_ours = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Digraph g = di_gnp(14, 0.45, seed);
      const auto b = dk10_ft_2spanner(g, r, seed * 3 + 1);
      const auto o = approx_ft_2spanner(g, r, seed * 3 + 1);
      if (!b.valid || !o.valid) continue;
      lp3v.add(b.lp_value);
      lp4v.add(o.lp_value);
      dk.add(b.cost);
      ours.add(o.cost);
      a_dk = b.alpha;
      a_ours = o.alpha;
    }
    t.row()
        .cell(r)
        .cell(lp3v.mean(), 1)
        .cell(lp4v.mean(), 1)
        .cell(dk.mean(), 1)
        .cell(ours.mean(), 1)
        .cell(dk.mean() / lp4v.mean(), 3)
        .cell(ours.mean() / lp4v.mean(), 3)
        .cell(a_dk, 2)
        .cell(a_ours, 2);
  }
  t.print();
  std::printf(
      "\nReading: ours/LP4 is ~flat in r; DK10/LP4 climbs (its inflation is "
      "(r+1) ln n) — the improvement of Theorem 3.3 over the prior "
      "O(r log n) of DK10.\n");
  return 0;
}
