// A2 (ablation) — the fault-oversampling probability.
//
// Theorem 2.1 keeps each vertex alive with probability 1/r. Scaling that
// probability changes the trade-off: keeping more vertices makes each
// iteration's spanner larger but covers fewer fault sets per iteration;
// keeping fewer shrinks survivors below useful size. We sweep the scale at
// fixed iteration budget and measure validity and size.
#include <cstdio>

#include "ftspanner/conversion.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftspan;

int main() {
  std::printf("# A2: keep-probability scale sweep (paper: keep = 1/r)\n");
  std::printf("# instance: G(16, 0.5), k = 3, r = 3; fixed alpha; 10 seeds\n");

  const Graph g = gnp(16, 0.5, 7);
  const std::size_t r = 3;

  banner("validity and size vs keep-probability scale");
  Table t({"scale", "keep prob", "valid fraction", "mean |H|",
           "mean max survivors"});
  for (const double scale : {0.5, 0.75, 1.0, 1.5, 2.0, 2.5}) {
    ConversionOptions opt;
    opt.keep_probability_scale = scale;
    opt.iterations = conversion_iterations(r, g.num_vertices(), 0.5);
    std::size_t valid = 0;
    Stats size, survivors;
    double keep = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto res = ft_greedy_spanner(g, 3.0, r, seed * 53, opt);
      keep = res.keep_probability;
      size.add(static_cast<double>(res.edges.size()));
      survivors.add(static_cast<double>(res.max_survivors));
      if (check_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, r).valid)
        ++valid;
    }
    t.row()
        .cell(scale, 2)
        .cell(keep, 3)
        .cell(static_cast<double>(valid) / 10.0, 2)
        .cell(size.mean(), 1)
        .cell(survivors.mean(), 1);
  }
  t.print();
  std::printf(
      "\nReading: the paper's scale = 1 sits on the validity plateau with "
      "near-minimal size; very small keep probabilities starve iterations "
      "of survivors, very large ones waste iterations on few fault sets.\n");
  return 0;
}
