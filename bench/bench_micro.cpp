// M1 — micro-benchmarks (google-benchmark) for the library's hot paths.
#include <benchmark/benchmark.h>

#include "ftspanner/conversion.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "local/padded_decomposition.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/greedy.hpp"
#include "spanner/thorup_zwick.hpp"
#include "spanner2/formulation.hpp"
#include "spanner2/rounding.hpp"

namespace {

using namespace ftspan;

void BM_Dijkstra(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp(n, 8.0 / static_cast<double>(n), 1, 4.0);
  Vertex src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, src));
    src = (src + 1) % n;
  }
}
BENCHMARK(BM_Dijkstra)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GreedySpanner(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp(n, 16.0 / static_cast<double>(n), 2);
  for (auto _ : state) benchmark::DoNotOptimize(greedy_spanner(g, 3.0));
}
BENCHMARK(BM_GreedySpanner)->Arg(128)->Arg(256)->Arg(512);

void BM_BaswanaSen(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp(n, 16.0 / static_cast<double>(n), 3);
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(baswana_sen_spanner(g, 2, seed++));
}
BENCHMARK(BM_BaswanaSen)->Arg(256)->Arg(1024);

void BM_ThorupZwick(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp(n, 16.0 / static_cast<double>(n), 4);
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(thorup_zwick_spanner(g, 2, seed++));
}
BENCHMARK(BM_ThorupZwick)->Arg(256)->Arg(1024);

void BM_ConversionIteration(benchmark::State& state) {
  // One oversample + greedy iteration at r = 4 (survivor count ~ n/4).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp(n, 16.0 / static_cast<double>(n), 5);
  ConversionOptions opt;
  opt.iterations = 1;
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(ft_greedy_spanner(g, 3.0, 4, seed++, opt));
}
BENCHMARK(BM_ConversionIteration)->Arg(256)->Arg(1024);

void BM_Lp4Solve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Digraph g = di_gnp(n, 0.4, 6);
  for (auto _ : state) benchmark::DoNotOptimize(solve_lp4(g, 1));
}
BENCHMARK(BM_Lp4Solve)->Arg(8)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ThresholdRound(benchmark::State& state) {
  const Digraph g = di_gnp(64, 0.2, 7);
  std::vector<double> x(g.num_edges(), 0.3);
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(threshold_round(g, x, 3.0, seed++));
}
BENCHMARK(BM_ThresholdRound);

void BM_PaddedDecomposition(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Graph g = gnp_connected(n, 8.0 / static_cast<double>(n), 8);
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(local::sample_padded_decomposition(g, seed++));
}
BENCHMARK(BM_PaddedDecomposition)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
