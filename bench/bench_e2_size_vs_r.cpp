// E2 — Theorem 1.1 vs CLPR09: polynomial vs exponential dependence on r.
//
// Fixed n and k = 3; sweep r. The conversion's measured size should track
// r^{2-2/(k+1)} = r^{3/2} (times log n), while CLPR09's published bound
// grows like r² k^{r+1} — exponentially. We print measured size, the two
// analytic bounds normalized to their r = 1 values, and the layered-greedy
// heuristic size for scale.
//
// Execution runs through the unified scenario runner (src/runner): one
// conversion scenario per r (the historical per-r seed 17r+1), plus one
// layered-greedy scenario sweeping r. The presentation table merges the
// runner's cells with the analytic bound curves.
#include <cstdio>
#include <iostream>
#include <vector>

#include "ftspanner/conversion.hpp"
#include "runner/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftspan;
using runner::ScenarioSpec;

int main() {
  std::printf("# E2: size vs r at n = 256, k = 3 (Theorem 1.1 vs CLPR09)\n");

  const std::size_t n = 256;
  const double k = 3.0;
  const std::vector<std::size_t> rs{1, 2, 3, 4, 5, 6, 8};

  ScenarioSpec base;
  base.workload = "gnp";
  base.n = {n};
  base.p = 24.0 / n;
  base.wseed = 42;
  base.k = {k};
  base.validate = "none";

  // One conversion scenario per r (seed = 17r+1, as always) ...
  std::vector<ScenarioSpec> specs;
  for (const std::size_t r : rs) {
    ScenarioSpec s = base;
    s.algo = "ft_vertex";
    s.r = {r};
    s.seed = 17 * r + 1;
    specs.push_back(std::move(s));
  }
  // ... plus the deterministic layered baseline as a single r-sweep.
  {
    ScenarioSpec s = base;
    s.algo = "layered_greedy";
    s.r = rs;
    specs.push_back(std::move(s));
  }
  const runner::ScenarioReport report = runner::run_scenarios(specs);
  const std::size_t layered_begin = report.first_cell.back();
  std::printf("# instance: G(%zu, 24/n), m = %zu\n", n,
              report.cells.front().m);

  const double ours1 = corollary22_size_bound(n, k, 1);
  const double clpr1 = clpr09_size_bound(n, k, 1);

  banner("size vs r");
  Table t({"r", "|H| measured", "|H|/m", "layered |H|", "ours bound (rel r=1)",
           "CLPR09 bound (rel r=1)", "alpha", "sec"});
  std::vector<double> xs, sizes;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const runner::ScenarioCell& conv = report.cells[i];
    const runner::ScenarioCell& layered = report.cells[layered_begin + i];
    xs.push_back(static_cast<double>(conv.r));
    sizes.push_back(static_cast<double>(conv.edges));
    t.row()
        .cell(conv.r)
        .cell(conv.edges)
        .cell(static_cast<double>(conv.edges) / conv.m, 3)
        .cell(layered.edges)
        .cell(corollary22_size_bound(n, k, conv.r) / ours1, 2)
        .cell(clpr09_size_bound(n, k, conv.r) / clpr1, 1)
        .cell(static_cast<std::size_t>(conv.stat("iterations")))
        .cell(conv.seconds_best, 2);
  }
  t.print();
  std::printf(
      "log-log slope of measured |H| vs r: %.3f "
      "(paper: <= 2 - 2/(k+1) = %.3f; saturation towards m lowers it)\n",
      loglog_slope(xs, sizes), 2.0 - 2.0 / (k + 1.0));
  std::printf(
      "CLPR09 bound grows by %.0fx from r=1 to r=8; ours by %.1fx — the "
      "exponential-vs-polynomial separation of Theorem 1.1.\n",
      clpr09_size_bound(n, k, 8) / clpr1, corollary22_size_bound(n, k, 8) / ours1);

  // Below the saturation scale the measured r-dependence needs a dense
  // instance and the practical iteration preset (validity per experiment A1).
  {
    banner("K_128, practical preset c = 0.25, k = 5: measured size vs r");
    std::vector<ScenarioSpec> dense;
    for (const std::size_t r : {1u, 2u, 3u, 4u}) {
      ScenarioSpec s;
      s.workload = "complete";
      s.n = {128};
      s.algo = "ft_vertex";
      s.k = {5.0};
      s.r = {r};
      s.c = 0.25;
      s.seed = 23 * r + 5;
      s.validate = "none";
      dense.push_back(std::move(s));
    }
    const runner::ScenarioReport dr = runner::run_scenarios(dense);
    runner::print_table(dr, std::cout);
    std::vector<double> xs2, sizes2;
    for (const runner::ScenarioCell& cell : dr.cells) {
      xs2.push_back(static_cast<double>(cell.r));
      sizes2.push_back(static_cast<double>(cell.edges));
    }
    std::printf("log-log slope of measured |H| vs r: %.3f "
                "(polynomial, far below CLPR09's exponential growth)\n",
                loglog_slope(xs2, sizes2));
  }
  return 0;
}
