// E2 — Theorem 1.1 vs CLPR09: polynomial vs exponential dependence on r.
//
// Fixed n and k = 3; sweep r. The conversion's measured size should track
// r^{2-2/(k+1)} = r^{3/2} (times log n), while CLPR09's published bound
// grows like r² k^{r+1} — exponentially. We print measured size, the two
// analytic bounds normalized to their r = 1 values, and the layered-greedy
// heuristic size for scale.
#include <cstdio>
#include <vector>

#include "ftspanner/baselines.hpp"
#include "ftspanner/conversion.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ftspan;

int main() {
  std::printf("# E2: size vs r at n = 256, k = 3 (Theorem 1.1 vs CLPR09)\n");

  const std::size_t n = 256;
  const double k = 3.0;
  const Graph g = gnp(n, 24.0 / n, 42);
  std::printf("# instance: G(%zu, 24/n), m = %zu\n", n, g.num_edges());

  const double ours1 = corollary22_size_bound(n, k, 1);
  const double clpr1 = clpr09_size_bound(n, k, 1);

  banner("size vs r");
  Table t({"r", "|H| measured", "|H|/m", "layered |H|", "ours bound (rel r=1)",
           "CLPR09 bound (rel r=1)", "alpha", "sec"});
  std::vector<double> rs, sizes;
  for (const std::size_t r : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
    Timer timer;
    const auto res = ft_greedy_spanner(g, k, r, 17 * r + 1);
    const double sec = timer.seconds();
    const auto layered = layered_greedy_spanner(g, k, r);
    rs.push_back(static_cast<double>(r));
    sizes.push_back(static_cast<double>(res.edges.size()));
    t.row()
        .cell(r)
        .cell(res.edges.size())
        .cell(static_cast<double>(res.edges.size()) / g.num_edges(), 3)
        .cell(layered.size())
        .cell(corollary22_size_bound(n, k, r) / ours1, 2)
        .cell(clpr09_size_bound(n, k, r) / clpr1, 1)
        .cell(res.iterations)
        .cell(sec, 2);
  }
  t.print();
  std::printf(
      "log-log slope of measured |H| vs r: %.3f "
      "(paper: <= 2 - 2/(k+1) = %.3f; saturation towards m lowers it)\n",
      loglog_slope(rs, sizes), 2.0 - 2.0 / (k + 1.0));
  std::printf(
      "CLPR09 bound grows by %.0fx from r=1 to r=8; ours by %.1fx — the "
      "exponential-vs-polynomial separation of Theorem 1.1.\n",
      clpr09_size_bound(n, k, 8) / clpr1, corollary22_size_bound(n, k, 8) / ours1);

  // Below the saturation scale the measured r-dependence needs a dense
  // instance and the practical iteration preset (validity per experiment A1).
  {
    const Graph kn = complete(128);
    banner("K_128, practical preset c = 0.25, k = 5: measured size vs r");
    Table t2({"r", "|H| measured", "|H|/m", "alpha", "sec"});
    std::vector<double> rs2, sizes2;
    for (const std::size_t r : {1u, 2u, 3u, 4u}) {
      ConversionOptions opt;
      opt.iteration_constant = 0.25;
      Timer timer;
      const auto res = ft_greedy_spanner(kn, 5.0, r, 23 * r + 5, opt);
      const double sec = timer.seconds();
      rs2.push_back(static_cast<double>(r));
      sizes2.push_back(static_cast<double>(res.edges.size()));
      t2.row()
          .cell(r)
          .cell(res.edges.size())
          .cell(static_cast<double>(res.edges.size()) / kn.num_edges(), 3)
          .cell(res.iterations)
          .cell(sec, 2);
    }
    t2.print();
    std::printf("log-log slope of measured |H| vs r: %.3f "
                "(polynomial, far below CLPR09's exponential growth)\n",
                loglog_slope(rs2, sizes2));
  }
  return 0;
}
