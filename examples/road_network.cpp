// Road-network scenario: spanners as sparse routing backbones that survive
// intersection closures.
//
// A random geometric graph stands in for a road network (vertices =
// intersections, edges = road segments weighted by Euclidean length). We
// build a 2-fault-tolerant 3-spanner, close random intersections, and
// compare route lengths in the full network vs the backbone.
#include <cstdio>

#include "ftspanner/conversion.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/shortest_paths.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftspan;

int main() {
  const std::size_t n = 300;
  const std::size_t r = 2;
  const double k = 3.0;

  const Graph roads = random_geometric(n, 0.12, /*seed=*/5);
  std::printf("road network: %zu intersections, %zu segments, connected: %s\n",
              roads.num_vertices(), roads.num_edges(),
              is_connected(roads) ? "yes" : "no");

  ConversionOptions opt;
  opt.iteration_constant = 0.5;  // practical preset (see bench_a1)
  const auto ft = ft_greedy_spanner(roads, k, r, /*seed=*/6, opt);
  const Graph backbone = roads.edge_subgraph(ft.edges);
  std::printf("backbone: %zu segments (%.1f%% of the network), weight %.1f "
              "vs %.1f\n",
              backbone.num_edges(),
              100.0 * backbone.num_edges() / roads.num_edges(),
              backbone.total_weight(), roads.total_weight());

  // Simulate closure scenarios: r random intersections fail; sample routes.
  Rng rng(7);
  Table t({"scenario", "closed", "routes sampled", "mean detour", "max detour"});
  for (int scenario = 1; scenario <= 5; ++scenario) {
    VertexSet closed(n);
    while (closed.count() < r)
      closed.insert(static_cast<Vertex>(rng.uniform_index(n)));

    Stats detour;
    std::size_t sampled = 0;
    for (int i = 0; i < 300 && sampled < 100; ++i) {
      const Vertex a = static_cast<Vertex>(rng.uniform_index(n));
      const Vertex b = static_cast<Vertex>(rng.uniform_index(n));
      if (a == b || closed.contains(a) || closed.contains(b)) continue;
      const Weight direct = pair_distance(roads, a, b, &closed);
      if (direct >= kInfiniteWeight || direct <= 0) continue;
      const Weight via = pair_distance(backbone, a, b, &closed);
      if (via >= kInfiniteWeight) {
        std::printf("  !! backbone disconnected a route (should not happen)\n");
        continue;
      }
      detour.add(via / direct);
      ++sampled;
    }
    std::string closed_list;
    for (Vertex v : closed.to_vector())
      closed_list += (closed_list.empty() ? "" : ",") + std::to_string(v);
    t.row()
        .cell(scenario)
        .cell(closed_list)
        .cell(sampled)
        .cell(detour.mean(), 3)
        .cell(detour.max(), 3);
  }
  t.print();
  std::printf("\nAll detours stay below the stretch bound k = %g.\n", k);
  return 0;
}
