// Quickstart: build an r-fault-tolerant k-spanner of a random graph and
// verify it survives faults.
//
//   $ ./quickstart [n] [r]
//
// Walks through the library's primary API: a generator, the Theorem 2.1
// conversion over the greedy spanner, and the batched StretchOracle
// validator (one oracle per (graph, spanner) pair; its scratch and
// Dijkstra batching are reused across every fault set it checks).
#include <cstdio>
#include <cstdlib>

#include "ftspanner/conversion.hpp"
#include "graph/generators.hpp"
#include "spanner/greedy.hpp"
#include "validate/stretch_oracle.hpp"

using namespace ftspan;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::size_t r = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  const double k = 3.0;

  // 1. A random graph with average degree ~12.
  const Graph g = gnp(n, 12.0 / static_cast<double>(n), /*seed=*/1);
  std::printf("graph: n = %zu, m = %zu\n", g.num_vertices(), g.num_edges());

  // 2. A plain (non-fault-tolerant) greedy 3-spanner, for scale.
  const auto plain = greedy_spanner(g, k);
  std::printf("plain greedy %g-spanner: %zu edges\n", k, plain.size());

  // 3. The r-fault-tolerant 3-spanner via the Theorem 2.1 conversion.
  const auto ft = ft_greedy_spanner(g, k, r, /*seed=*/2);
  std::printf("%zu-fault-tolerant %g-spanner: %zu edges "
              "(%zu oversampling iterations, keep prob %.2f)\n",
              r, k, ft.edges.size(), ft.iterations, ft.keep_probability);

  // 4. Verify with the StretchOracle: random fault sets plus a targeted
  //    adversary, fanned across FtCheckOptions::threads workers (the result
  //    is bit-identical for every thread count).
  const Graph h = g.edge_subgraph(ft.edges);
  const StretchOracle oracle(g, h, k);
  FtCheckOptions opt;
  opt.threads = 0;  // all hardware threads
  const auto check = oracle.check_sampled(r, 50, 100, /*seed=*/3, opt);
  std::printf("validation over %zu fault sets: %s (worst stretch %.2f)\n",
              check.fault_sets_checked, check.valid ? "VALID" : "INVALID",
              check.worst_stretch);

  // 5. Contrast: the plain spanner under the same adversary. (The oracle
  //    keeps references, so the spanner graph needs a name — a temporary
  //    would be rejected at compile time.)
  const Graph plain_h = g.edge_subgraph(plain);
  const StretchOracle plain_oracle(g, plain_h, k);
  const auto plain_check =
      plain_oracle.check_sampled(r, 50, 100, /*seed=*/3, opt);
  std::printf("plain spanner under the same faults: %s\n",
              plain_check.valid ? "valid (lucky)" : "INVALID, as expected");
  return check.valid ? 0 : 1;
}
