// Quickstart: build an r-fault-tolerant k-spanner of a random graph and
// verify it survives faults.
//
//   $ ./quickstart [n] [r]
//
// Walks through the library's primary API: a generator, the Theorem 2.1
// conversion over the greedy spanner, and the fault-tolerance validators.
#include <cstdio>
#include <cstdlib>

#include "ftspanner/conversion.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "spanner/greedy.hpp"

using namespace ftspan;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::size_t r = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  const double k = 3.0;

  // 1. A random graph with average degree ~12.
  const Graph g = gnp(n, 12.0 / static_cast<double>(n), /*seed=*/1);
  std::printf("graph: n = %zu, m = %zu\n", g.num_vertices(), g.num_edges());

  // 2. A plain (non-fault-tolerant) greedy 3-spanner, for scale.
  const auto plain = greedy_spanner(g, k);
  std::printf("plain greedy %g-spanner: %zu edges\n", k, plain.size());

  // 3. The r-fault-tolerant 3-spanner via the Theorem 2.1 conversion.
  const auto ft = ft_greedy_spanner(g, k, r, /*seed=*/2);
  std::printf("%zu-fault-tolerant %g-spanner: %zu edges "
              "(%zu oversampling iterations, keep prob %.2f)\n",
              r, k, ft.edges.size(), ft.iterations, ft.keep_probability);

  // 4. Verify: random fault sets plus a targeted adversary.
  const Graph h = g.edge_subgraph(ft.edges);
  const auto check = check_ft_spanner_sampled(g, h, k, r, 50, 100, /*seed=*/3);
  std::printf("validation over %zu fault sets: %s (worst stretch %.2f)\n",
              check.fault_sets_checked, check.valid ? "VALID" : "INVALID",
              check.worst_stretch);

  // 5. Contrast: the plain spanner under the same adversary.
  const auto plain_check = check_ft_spanner_sampled(
      g, g.edge_subgraph(plain), k, r, 50, 100, /*seed=*/3);
  std::printf("plain spanner under the same faults: %s\n",
              plain_check.valid ? "valid (lucky)" : "INVALID, as expected");
  return check.valid ? 0 : 1;
}
