// Sensor-network scenario: edge (link) failures and approximate distance
// queries.
//
// Wireless links fail far more often than sensor nodes, so here the fault
// model is EDGE faults: we build an r-edge-fault-tolerant 3-spanner of a
// random geometric network (ftspanner/edge_faults.hpp — the Theorem 2.1
// conversion with edges oversampled instead of vertices), knock out random
// link sets, and measure detours. A Thorup–Zwick distance oracle built on
// the backbone answers route-length queries in O(k) time without storing
// all-pairs tables.
#include <cstdio>

#include "ftspanner/edge_faults.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/shortest_paths.hpp"
#include "spanner/distance_oracle.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftspan;

int main() {
  const std::size_t n = 250;
  const std::size_t r = 2;  // tolerate any 2 simultaneous link failures
  const double k = 3.0;

  const Graph net = random_geometric(n, 0.13, /*seed=*/21);
  std::printf("sensor network: %zu nodes, %zu links, connected: %s\n",
              net.num_vertices(), net.num_edges(),
              is_connected(net) ? "yes" : "no");

  EdgeFtOptions opt;
  opt.iteration_constant = 0.5;
  const auto ft = ft_edge_greedy_spanner(net, k, r, /*seed=*/22, opt);
  const Graph backbone = net.edge_subgraph(ft.edges);
  std::printf("edge-fault-tolerant backbone: %zu links (%.1f%%), "
              "%zu oversampling iterations\n",
              backbone.num_edges(),
              100.0 * backbone.num_edges() / net.num_edges(), ft.iterations);

  // Link-failure scenarios: fail r random backbone links, compare detours.
  Rng rng(23);
  Table t({"scenario", "failed links", "routes", "mean detour", "max detour"});
  for (int scenario = 1; scenario <= 5; ++scenario) {
    std::vector<char> dead_net(net.num_edges(), 0);
    std::vector<char> dead_bb(backbone.num_edges(), 0);
    std::size_t failed = 0;
    while (failed < r) {
      const EdgeId bb = static_cast<EdgeId>(rng.uniform_index(backbone.num_edges()));
      if (dead_bb[bb]) continue;
      dead_bb[bb] = 1;
      const Edge& e = backbone.edge(bb);
      dead_net[*net.edge_id(e.u, e.v)] = 1;
      ++failed;
    }

    Stats detour;
    std::size_t routes = 0;
    for (int i = 0; i < 400 && routes < 120; ++i) {
      const Vertex a = static_cast<Vertex>(rng.uniform_index(n));
      const Vertex b = static_cast<Vertex>(rng.uniform_index(n));
      if (a == b) continue;
      const auto dn = distances_avoiding_edges(net, a, dead_net);
      const auto db = distances_avoiding_edges(backbone, a, dead_bb);
      if (dn[b] >= kInfiniteWeight || dn[b] <= 0) continue;
      if (db[b] >= kInfiniteWeight) {
        std::printf("  !! backbone lost a route (should not happen)\n");
        continue;
      }
      detour.add(db[b] / dn[b]);
      ++routes;
    }
    t.row()
        .cell(scenario)
        .cell(failed)
        .cell(routes)
        .cell(detour.mean(), 3)
        .cell(detour.max(), 3);
  }
  t.print();

  // Distance oracle on the backbone: constant-time approximate queries.
  const DistanceOracle oracle(backbone, /*k=*/2, /*seed=*/24);
  Stats ratio;
  for (int i = 0; i < 200; ++i) {
    const Vertex a = static_cast<Vertex>(rng.uniform_index(n));
    const Vertex b = static_cast<Vertex>(rng.uniform_index(n));
    if (a == b) continue;
    const Weight exact = pair_distance(backbone, a, b);
    if (exact >= kInfiniteWeight || exact <= 0) continue;
    ratio.add(oracle.query(a, b) / exact);
  }
  std::printf("\ndistance oracle on backbone (k=2, stretch <= 3): "
              "%zu entries (vs %zu for all-pairs), observed stretch mean "
              "%.3f max %.3f\n",
              oracle.size(), n * n, ratio.mean(), ratio.max());
  return 0;
}
