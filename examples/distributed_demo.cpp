// Distributed demo: the LOCAL-model algorithms end to end.
//
// 1. Padded decomposition of a grid (Lemma 3.7) by message flooding.
// 2. Distributed Baswana-Sen spanner (the base algorithm of Theorem 2.3).
// 3. Distributed fault-tolerant conversion (Theorem 2.3).
// 4. Distributed 2-spanner (Algorithm 2 / Theorem 3.9).
#include <cstdio>

#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "local/dist_2spanner.hpp"
#include "local/dist_spanner.hpp"
#include "local/padded_decomposition.hpp"
#include "spanner/verify.hpp"

using namespace ftspan;
using namespace ftspan::local;

int main() {
  // --- 1. Padded decomposition on a 12x12 grid. ---
  {
    const Graph g = grid(12, 12);
    RunStats stats;
    const auto d = distributed_padded_decomposition(g, /*seed=*/3, {}, &stats);
    std::size_t padded = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) padded += is_padded(g, d, v);
    std::printf("[1] padded decomposition of 12x12 grid: %zu clusters, "
                "max diameter %zu, padded %zu/%zu, %zu LOCAL rounds, %zu msgs\n",
                d.centers().size(), max_cluster_diameter(g, d), padded,
                g.num_vertices(), stats.rounds, stats.messages);
  }

  // --- 2. Distributed Baswana-Sen 3-spanner. ---
  const Graph g = gnp(100, 0.15, /*seed=*/4);
  {
    const auto res = distributed_baswana_sen(g, 2, /*seed=*/5);
    const bool ok = is_k_spanner(g, g.edge_subgraph(res.edges), 3.0);
    std::printf("[2] distributed Baswana-Sen on G(100, .15): %zu -> %zu edges "
                "in %zu rounds; 3-spanner: %s\n",
                g.num_edges(), res.edges.size(), res.stats.rounds,
                ok ? "yes" : "NO");
  }

  // --- 3. Distributed FT conversion (Theorem 2.3), r = 1. ---
  {
    const auto res = distributed_ft_spanner(g, 2, 1, /*seed=*/6);
    const auto check = check_ft_spanner_sampled(
        g, g.edge_subgraph(res.edges), 3.0, 1, 30, 50, 7);
    std::printf("[3] distributed 1-FT 3-spanner: %zu edges, %zu iterations, "
                "%zu rounds; sampled validity: %s\n",
                res.edges.size(), res.iterations, res.stats.rounds,
                check.valid ? "yes" : "NO");
  }

  // --- 4. Algorithm 2 on a small directed overlay. ---
  {
    const Digraph d = di_gnp(14, 0.4, /*seed=*/8);
    const auto res = distributed_ft_2spanner(d, 1, /*seed=*/9);
    std::printf("[4] Algorithm 2 (distributed 1-FT 2-spanner) on G(14,.4): "
                "cost %.1f, x~ cost %.1f, %zu rounds over %zu iterations, "
                "valid: %s\n",
                res.cost, res.x_tilde_cost, res.stats.rounds, res.iterations,
                res.valid ? "yes" : "NO");
  }
  return 0;
}
