// Overlay-network scenario: minimum-cost fault-tolerant 2-hop connectivity.
//
// A directed overlay (e.g. an RPC mesh) where every existing link must stay
// reachable within 2 hops even if r relay nodes fail. This is exactly
// Minimum Cost r-Fault-Tolerant 2-Spanner (Section 3). We compare the
// LP-rounding algorithm (Theorem 3.3), the LLL variant (Theorem 3.4), the
// DK10 baseline, and the greedy repair heuristic.
#include <cstdio>

#include "graph/generators.hpp"
#include "spanner2/dk10_baseline.hpp"
#include "spanner2/lll.hpp"
#include "spanner2/rounding.hpp"
#include "spanner2/verify2.hpp"
#include "util/table.hpp"

using namespace ftspan;

int main() {
  const std::size_t n = 14;
  const std::size_t r = 2;
  // Link costs in [1, 5]: think latency or egress pricing.
  const Digraph overlay = di_gnp(n, 0.45, /*seed=*/11, /*max_cost=*/5.0);
  std::printf("overlay: %zu nodes, %zu links, total link cost %.1f\n",
              overlay.num_vertices(), overlay.num_edges(), overlay.total_cost());
  std::printf("requirement: every link covered by the edge itself or %zu+1 "
              "two-hop relays\n\n", r);

  Table t({"algorithm", "cost", "links kept", "valid", "notes"});

  const auto lp = approx_ft_2spanner(overlay, r, /*seed=*/13);
  {
    char notes[64];
    std::snprintf(notes, sizeof notes, "LP*=%.1f, alpha=%.2f", lp.lp_value,
                  lp.alpha);
    std::size_t kept = 0;
    for (char b : lp.in_spanner) kept += b;
    t.row()
        .cell("Theorem 3.3 (LP+round)")
        .cell(lp.cost, 1)
        .cell(kept)
        .cell(lp.valid ? "yes" : "NO")
        .cell(notes);
  }

  const auto lll = lll_ft_2spanner(overlay, r, /*seed=*/13);
  {
    char notes[64];
    std::snprintf(notes, sizeof notes, "resamples=%zu", lll.resamples);
    std::size_t kept = 0;
    for (char b : lll.in_spanner) kept += b;
    t.row()
        .cell("Theorem 3.4 (LLL)")
        .cell(lll.cost, 1)
        .cell(kept)
        .cell(lll.valid ? "yes" : "NO")
        .cell(notes);
  }

  const auto dk = dk10_ft_2spanner(overlay, r, /*seed=*/13);
  {
    char notes[64];
    std::snprintf(notes, sizeof notes, "alpha=%.2f ((r+1)ln n)", dk.alpha);
    std::size_t kept = 0;
    for (char b : dk.in_spanner) kept += b;
    t.row()
        .cell("DK10 baseline")
        .cell(dk.cost, 1)
        .cell(kept)
        .cell(dk.valid ? "yes" : "NO")
        .cell(notes);
  }

  {
    const auto greedy = greedy_ft_2spanner(overlay, r);
    std::size_t kept = 0;
    for (char b : greedy) kept += b;
    t.row()
        .cell("greedy repair")
        .cell(spanner_cost(overlay, greedy), 1)
        .cell(kept)
        .cell(is_ft_2spanner(overlay, greedy, r) ? "yes" : "NO")
        .cell("no guarantee");
  }

  t.print();
  std::printf("\nLower bound from LP (4): %.1f — every valid overlay "
              "backbone costs at least this.\n", lp.lp_value);
  return 0;
}
