// ScenarioSpec — the declarative description of one experiment:
// {workload × algorithm × k/r/threads sweep × repetitions × validation}.
//
// Specs are plain key=value text (whitespace-separated), e.g.
//
//   workload=gnp n=400 p=0.05 wseed=1234 algo=ft_vertex k=3 r=2 seed=4242
//   threads=1 reps=3 validate=sampled trials=40 adversarial=60 vseed=99
//
// n, k, r, and threads accept comma-separated sweep lists ("r=1,2,4"); a
// spec expands to the cartesian product n × k × r × threads, one cell per
// combination (all cells share the spec's seeds — per-cell seed formulas
// stay in the callers that need them, which simply emit one spec per cell).
// `to_string()` is canonical: fields at their defaults are omitted, numbers
// print in shortest round-trip form, key order is fixed — so
// parse → to_string is idempotent byte-for-byte. docs/SCENARIOS.md has the
// full grammar.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftspan::runner {

struct ScenarioSpec {
  // --- workload ---
  std::string workload = "gnp";
  std::string path;            ///< for workload=file: the graph file to load
                               ///< (no whitespace — specs are token-split)
  std::vector<std::size_t> n;  ///< size sweep; empty = workload default
  double p = -1.0;             ///< density knob; < 0 = workload default
  double scale = 1.0;          ///< workload scale factor
  /// Reweight the generated graph with integer weights drawn uniformly from
  /// [1, max_weight] (seeded by wseed); 0 = keep the workload's own weights.
  /// Makes the mid-range integer regime sweepable without a DIMACS file.
  double max_weight = 0;
  std::uint64_t wseed = 1;     ///< workload RNG seed

  // --- serve load test (workload=serve only; see docs/SERVE.md) ---
  double qps = 0;          ///< paced request rate; 0 = closed loop, unpaced
  std::size_t conns = 1;   ///< concurrent client connections
  double duration = 0;     ///< load-test seconds; 0 = no load phase
  double chaos = 0;        ///< P(a client slot injects a fault); 0 = off
  std::size_t reload_every = 0;  ///< POST /admin/reload every Nth request

  // --- algorithm ---
  std::string algo = "ft_vertex";
  std::vector<double> k = {3.0};       ///< stretch sweep
  std::vector<std::size_t> r = {1};    ///< fault-tolerance sweep
  double c = 1.0;                      ///< conversion iteration constant
  std::size_t iters = 0;               ///< iteration override; 0 = formula
  std::uint64_t seed = 1;              ///< algorithm RNG seed
  std::vector<std::size_t> threads = {1};  ///< fan-out width sweep
  std::string engine = "auto";  ///< SP engine policy: auto|heap|bucket|delta
  std::size_t batch = 0;               ///< pipeline burst size; 0 = default
  /// Bucket/delta engine-resolution ceiling; 0 = the engine default
  /// (kMaxBucketWeight). Range-checked against kBucketMaxCeiling.
  double bucket_max = 0;
  bool pin = false;  ///< pin worker lanes to cores (best effort; see JSON)

  // --- driver ---
  std::size_t reps = 1;  ///< timing repetitions; metrics use rep 0, time is best-of

  // --- validation (via the StretchOracle / edge-fault checker) ---
  std::string validate = "sampled";  ///< none | sampled | exact
  std::size_t trials = 40;           ///< sampled: random fault sets
  std::size_t adversarial = 60;      ///< sampled: adversary probes
  std::uint64_t vseed = 99;          ///< sampled: fault-set stream seed

  // --- output ---
  bool timings = true;  ///< false: omit wall-clock fields from JSON/CSV

  /// Canonical key=value form (see header comment). parse(to_string()) == *this.
  std::string to_string() const;

  /// Parses key=value text; later occurrences of a key override earlier
  /// ones (which is how CLI overrides are applied). Throws
  /// std::invalid_argument on an unknown key or malformed value.
  static ScenarioSpec parse(const std::string& text);

  bool operator==(const ScenarioSpec&) const = default;
};

/// Shortest decimal form of v that parses back to exactly the same double
/// ("3", "0.05", "0.120208..." as needed). Shared by the spec serializer
/// and the runner's JSON/CSV emitters, so every emitted number is both
/// readable and bit-faithful.
std::string format_double(double v);

}  // namespace ftspan::runner
