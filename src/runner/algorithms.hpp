// The algorithm registry: name → spanner construction behind one uniform
// interface.
//
// Every construction in src/spanner, src/spanner2, and src/ftspanner is
// exposed as a SpannerAlgorithm: `bind(graph)` returns a callable that maps
// AlgoParams to {edge ids, named stats}. Binding follows the same idiom as
// the conversion engine's BoundBaseSpanner (PR 4): the bound callable may
// keep pooled scratch — the hoisted GreedyContext edge sort, per-worker
// GreedyWorkspaces with their DijkstraEngines — and reuse it across calls,
// so a scenario's timing repetitions pay the hot path only. A bound
// instance is sequential-use; concurrency happens *inside* a call (the
// conversions' iteration fan-out honors AlgoParams::threads and stays
// bit-identical at every width).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "graph/engine_policy.hpp"
#include "graph/graph.hpp"
#include "runner/registry.hpp"

namespace ftspan::runner {

/// The fault regime an algorithm's advertised guarantee refers to. It
/// selects the validator family: the vertex-fault StretchOracle for kNone
/// and kVertex, the edge-fault checker for kEdge.
enum class FaultModel { kNone, kVertex, kEdge };

struct AlgoParams {
  double k = 3.0;              ///< stretch (construction + validation)
  std::size_t r = 1;           ///< fault tolerance (ignored by plain bases)
  double c = 1.0;              ///< conversion iteration constant
  std::size_t iterations = 0;  ///< hard iteration override; 0 = formula
  std::size_t threads = 1;     ///< iteration fan-out width (bit-identical)
  std::uint64_t seed = 1;      ///< RNG seed (ignored by deterministic algos)
  SpEnginePolicy engine = SpEnginePolicy::kAuto;  ///< SP queue policy
  std::size_t batch = 0;       ///< pipeline burst size; 0 = default
  /// Bucket/delta engine-resolution ceiling (graph/engine_policy.hpp).
  Weight bucket_max = kMaxBucketWeight;
  bool pin = false;            ///< pin worker lanes to cores (best effort)
};

struct AlgoResult {
  std::vector<EdgeId> edges;  ///< spanner edges, ids into the bound graph
  /// Named algorithm-specific stats (iteration counts, LP values, costs...),
  /// in emission order. All values are deterministic given (graph, params).
  std::vector<std::pair<std::string, double>> stats;
  /// Per-lane affinity status of the construction fan-out (1 = pinned).
  /// Machine-dependent when AlgoParams::pin is set, so emitters keep it
  /// inside the timings-gated block. Empty for single-shot algorithms.
  std::vector<char> lane_pinned;
};

/// A SpannerAlgorithm bound to one graph. Sequential use only; the graph
/// must outlive the callable.
using BoundAlgorithm = std::function<AlgoResult(const AlgoParams&)>;

struct SpannerAlgorithm {
  std::string summary;
  FaultModel model = FaultModel::kNone;
  /// Non-zero forces the validated stretch (the 2-spanner algorithms ignore
  /// AlgoParams::k and always certify k = 2, on unit-length graphs).
  double fixed_k = 0;
  std::function<BoundAlgorithm(const Graph&)> bind;
};

/// The process-wide algorithm catalog: greedy, baswana_sen, thorup_zwick,
/// layered_greedy, ft_vertex, ft_edge, ft2_rounding, ft2_dk10, ft2_lll.
const Registry<SpannerAlgorithm>& algorithm_registry();

/// One-shot convenience: bind and run. Throws std::invalid_argument
/// (listing valid names) for an unknown name.
AlgoResult run_algorithm(const std::string& name, const Graph& g,
                         const AlgoParams& params);

}  // namespace ftspan::runner
