#include "runner/runner.hpp"

#include <cstdio>
#include <ostream>
#include <thread>

#include "ftspanner/edge_faults.hpp"
#include "runner/workloads.hpp"
#include "serve/loadtest.hpp"
#include "util/mem.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "validate/stretch_oracle.hpp"

namespace ftspan::runner {

double ScenarioCell::stat(const std::string& name, double dflt) const {
  for (const auto& [key, value] : stats)
    if (key == name) return value;
  return dflt;
}

std::uint64_t edge_set_hash(const std::vector<EdgeId>& edges) {
  std::uint64_t h = 1469598103934665603ull;
  for (const EdgeId e : edges)
    for (int i = 0; i < 8; ++i) {
      h ^= (static_cast<std::uint64_t>(e) >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  return h;
}

namespace {

/// Runs the spec's validation mode on (g, h) and stores the outcome in
/// `cell`. Vertex-fault guarantees (and plain stretch, r = 0) go through
/// the StretchOracle; edge-fault guarantees through the edge checker.
void validate_cell(const ScenarioSpec& spec, const Graph& g, const Graph& h,
                   FaultModel model, ScenarioCell& cell) {
  cell.validate = spec.validate;
  if (spec.validate == "none") return;
  const bool exact = spec.validate == "exact";
  // Like construction: metrics come from repetition 0, later repetitions
  // redo identical work purely to take the best wall clock. The oracle (and
  // its CSR snapshots) is built once and pooled across repetitions, so the
  // timed region is the validation hot path only.
  if (model == FaultModel::kEdge) {
    for (std::size_t rep = 0; rep < spec.reps; ++rep) {
      Timer timer;
      const EdgeFtCheckResult res =
          exact ? check_edge_ft_spanner_exact(g, h, cell.k, cell.r)
                : check_edge_ft_spanner_sampled(g, h, cell.k, cell.r,
                                                spec.trials, spec.adversarial,
                                                spec.vseed);
      const double sec = timer.seconds();
      if (rep == 0 || sec < cell.val_seconds) cell.val_seconds = sec;
      if (rep > 0) continue;
      cell.valid = res.valid;
      cell.worst_stretch = res.worst_stretch;
      cell.fault_sets = res.fault_sets_checked;
    }
  } else {
    FtCheckOptions opt;
    opt.threads = cell.threads;
    opt.engine =
        parse_engine_policy(spec.engine).value_or(SpEnginePolicy::kAuto);
    opt.batch = spec.batch;
    opt.bucket_max =
        spec.bucket_max != 0 ? spec.bucket_max : kMaxBucketWeight;
    opt.pin = spec.pin;
    const StretchOracle oracle(g, h, cell.k);
    for (std::size_t rep = 0; rep < spec.reps; ++rep) {
      Timer timer;
      const FtCheckResult res =
          exact ? oracle.check_exact(cell.r, opt)
                : oracle.check_sampled(cell.r, spec.trials, spec.adversarial,
                                       spec.vseed, opt);
      const double sec = timer.seconds();
      if (rep == 0 || sec < cell.val_seconds) cell.val_seconds = sec;
      if (rep > 0) continue;
      cell.valid = res.valid;
      cell.worst_stretch = res.worst_stretch;
      cell.fault_sets = res.fault_sets_checked;
      cell.witness_u = res.witness_u;
      cell.witness_v = res.witness_v;
    }
  }
}

}  // namespace

ScenarioReport run_scenarios(const std::vector<ScenarioSpec>& specs) {
  ScenarioReport report;
  report.specs = specs;
  for (const ScenarioSpec& spec : specs) {
    report.first_cell.push_back(report.cells.size());
    const SpannerAlgorithm& algo = algorithm_registry().get(spec.algo);

    const std::vector<std::size_t> sizes =
        spec.n.empty() ? std::vector<std::size_t>{0} : spec.n;
    for (const std::size_t size : sizes) {
      WorkloadParams wp;
      wp.n = size;
      wp.p = spec.p;
      wp.scale = spec.scale;
      wp.seed = spec.wseed;
      wp.max_weight = spec.max_weight;
      wp.path = spec.path;
      // Through make_workload (not workload.make) so the max_weight
      // reweight pass applies uniformly to every family.
      const WorkloadInstance instance = make_workload(spec.workload, wp);
      const Graph& g = instance.g;

      // The base graph's weight profile: what engine=auto (and the bucket/
      // delta downgrades) resolve against — reported per cell as
      // engine_resolved.
      WeightProfile profile;
      for (EdgeId id = 0; id < g.num_edges(); ++id)
        profile.observe(g.edge(id).w);
      const Weight bucket_max =
          spec.bucket_max != 0 ? spec.bucket_max : kMaxBucketWeight;

      // One bound algorithm per instance: the k/r/threads sweep and every
      // timing repetition below share its pooled scratch.
      const BoundAlgorithm bound = algo.bind(g);

      for (const double k : spec.k)
        for (const std::size_t r : spec.r)
          for (const std::size_t threads : spec.threads) {
            ScenarioCell cell;
            cell.workload = spec.workload;
            cell.params = instance.params;
            cell.n = g.num_vertices();
            cell.m = g.num_edges();
            cell.algorithm = spec.algo;
            cell.k = algo.fixed_k > 0 ? algo.fixed_k : k;
            cell.r = r;
            cell.threads = threads;
            cell.reps = spec.reps;

            AlgoParams ap;
            ap.k = cell.k;
            ap.r = r;
            ap.c = spec.c;
            ap.iterations = spec.iters;
            ap.threads = threads;
            ap.seed = spec.seed;
            // parse() validated the engine string, so the parse here cannot
            // fail (specs constructed programmatically go through the same
            // vocabulary).
            ap.engine = parse_engine_policy(spec.engine)
                            .value_or(SpEnginePolicy::kAuto);
            ap.batch = spec.batch;
            ap.bucket_max = bucket_max;
            ap.pin = spec.pin;
            cell.engine_resolved = to_string(select_sp_queue(
                ap.engine, profile.integral, profile.max_weight, bucket_max));

            // Metrics come from the first repetition; later repetitions
            // redo identical work purely to take the best wall clock.
            AlgoResult result;
            for (std::size_t rep = 0; rep < spec.reps; ++rep) {
              Timer timer;
              AlgoResult run = bound(ap);
              const double sec = timer.seconds();
              if (rep == 0 || sec < cell.seconds_best)
                cell.seconds_best = sec;
              if (rep == 0) result = std::move(run);
            }
            cell.edges = result.edges.size();
            cell.edges_hash = edge_set_hash(result.edges);
            cell.stats = std::move(result.stats);
            cell.lane_pinned = std::move(result.lane_pinned);
            cell.hw_concurrency = std::thread::hardware_concurrency();

            const Graph h = g.edge_subgraph(result.edges);
            validate_cell(spec, g, h, algo.model, cell);

            // workload=serve with a load phase: stand the daemon up over
            // the spanner just built and drive it. Gated on timings like
            // every other wall-clock metric, so timings=off JSON stays
            // bit-identical across hosts and thread counts.
            if (spec.workload == "serve" && spec.duration > 0 &&
                spec.timings) {
              serve::QueryEngine::Options qo;
              qo.workers = threads;
              qo.batch = spec.batch;
              qo.engine = ap.engine;
              qo.bucket_max = bucket_max;
              qo.pin = spec.pin;
              serve::LoadTestOptions lo;
              lo.qps = spec.qps;
              lo.conns = spec.conns;
              lo.duration = spec.duration;
              lo.seed = spec.seed;
              lo.chaos = spec.chaos;
              lo.reload_every = spec.reload_every;
              serve::LoadTestResult lt;
              if (spec.reload_every > 0) {
                // Reload storms need a rebuildable epoch: the builder
                // reconstructs the engine from a captured copy of the
                // graph and spanner, so every epoch answers bit-identically
                // and the storm only exercises the swap machinery.
                auto rebuild = [g, edges = result.edges, k = cell.k,
                                qo](const std::string&) {
                  return serve::EngineEpoch::build(g, edges, k, qo,
                                                   "inline");
                };
                auto epochs = std::make_shared<serve::EpochManager>(
                    rebuild(""), rebuild);
                lt = run_load_test(epochs, lo);
              } else {
                serve::QueryEngine engine(g, result.edges, cell.k, qo);
                lt = run_load_test(engine, lo);
              }
              cell.load.ran = true;
              cell.load.requests = lt.requests;
              cell.load.errors = lt.errors;
              cell.load.seconds = lt.seconds;
              cell.load.qps = lt.achieved_qps;
              cell.load.p50_ms = lt.p50_ms;
              cell.load.p99_ms = lt.p99_ms;
              cell.load.cache_hits = lt.cache_hits;
              cell.load.cache_misses = lt.cache_misses;
              cell.load.cache_hit_rate = lt.cache_hit_rate;
              cell.load.shed = lt.shed;
              cell.load.deadline_hits = lt.deadline_hits;
              cell.load.rejected = lt.rejected;
              cell.load.chaos_events = lt.chaos_events;
              cell.load.reloads_sent = lt.reloads_sent;
              cell.load.reloads_ok = lt.reloads_ok;
              cell.load.reloads_failed = lt.reloads_failed;
              cell.load.final_epoch = lt.final_epoch;
            }

            cell.peak_rss = peak_rss_bytes();
            report.cells.push_back(std::move(cell));
          }
    }
  }
  return report;
}

ScenarioReport run_scenario(const ScenarioSpec& spec) {
  return run_scenarios({spec});
}

namespace {

/// The shared table/CSV layout.
Table report_table(const ScenarioReport& report) {
  Table t({"workload", "params", "algo", "k", "r", "thr", "m", "|H|",
           "|H|/m", "iters", "valid", "worst stretch", "sets", "sec",
           "val sec"});
  const bool timings = [&report] {
    for (const ScenarioSpec& s : report.specs)
      if (!s.timings) return false;
    return true;
  }();
  for (const ScenarioCell& c : report.cells) {
    auto& row = t.row();
    row.cell(c.workload)
        .cell(c.params)
        .cell(c.algorithm)
        .cell(format_double(c.k))
        .cell(c.r)
        .cell(c.threads)
        .cell(c.m)
        .cell(c.edges)
        .cell(c.m > 0 ? static_cast<double>(c.edges) / c.m : 0.0, 3);
    const double iters = c.stat("iterations", -1);
    row.cell(iters >= 0 ? std::to_string(static_cast<std::size_t>(iters))
                        : std::string("-"));
    if (c.validate == "none") {
      row.cell("-").cell("-").cell("-");
    } else {
      row.cell(c.valid ? "yes" : "NO")
          .cell(c.worst_stretch >= kInfiniteWeight
                    ? std::string("disconnected")
                    : format_double(c.worst_stretch))
          .cell(c.fault_sets);
    }
    if (timings) {
      row.cell(c.seconds_best, 3);
      if (c.validate == "none")
        row.cell("-");
      else
        row.cell(c.val_seconds, 3);
    } else {
      row.cell("-").cell("-");
    }
  }
  return t;
}

void json_escape(const std::string& s, std::ostream& os) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << ch;
    }
  }
}

/// JSON number: integers print without a fraction, infinities as strings
/// (JSON has no inf literal), everything else in shortest round-trip form.
void json_number(double v, std::ostream& os) {
  if (v >= kInfiniteWeight || v <= -kInfiniteWeight) {
    os << '"' << format_double(v) << '"';
    return;
  }
  os << format_double(v);
}

void json_cell(const ScenarioCell& c, bool timings, std::ostream& os,
               const char* indent) {
  os << indent << "{\n";
  const std::string in = std::string(indent) + "  ";
  os << in << "\"workload\": \"" << c.workload << "\",\n";
  os << in << "\"params\": \"";
  json_escape(c.params, os);
  os << "\",\n";
  os << in << "\"n\": " << c.n << ",\n";
  os << in << "\"m\": " << c.m << ",\n";
  os << in << "\"algorithm\": \"" << c.algorithm << "\",\n";
  os << in << "\"k\": ";
  json_number(c.k, os);
  os << ",\n";
  os << in << "\"r\": " << c.r << ",\n";
  os << in << "\"threads\": " << c.threads << ",\n";
  os << in << "\"edges\": " << c.edges << ",\n";
  char hash[32];
  std::snprintf(hash, sizeof hash, "0x%016llx",
                static_cast<unsigned long long>(c.edges_hash));
  os << in << "\"edges_hash\": \"" << hash << "\",\n";
  os << in << "\"engine_resolved\": \"" << c.engine_resolved << "\",\n";
  os << in << "\"stats\": {";
  for (std::size_t i = 0; i < c.stats.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << c.stats[i].first << "\": ";
    json_number(c.stats[i].second, os);
  }
  os << "},\n";
  os << in << "\"validate\": \"" << c.validate << "\"";
  if (c.validate != "none") {
    os << ",\n" << in << "\"valid\": " << (c.valid ? "true" : "false");
    os << ",\n" << in << "\"worst_stretch\": ";
    json_number(c.worst_stretch, os);
    os << ",\n" << in << "\"fault_sets\": " << c.fault_sets;
    os << ",\n"
       << in << "\"witness_u\": "
       << (c.witness_u == kInvalidVertex
               ? -1
               : static_cast<long long>(c.witness_u));
    os << ",\n"
       << in << "\"witness_v\": "
       << (c.witness_v == kInvalidVertex
               ? -1
               : static_cast<long long>(c.witness_v));
  }
  if (timings) {
    os << ",\n" << in << "\"reps\": " << c.reps;
    os << ",\n" << in << "\"seconds_best\": ";
    json_number(c.seconds_best, os);
    const double iters = c.stat("iterations", -1);
    if (iters > 0 && c.seconds_best > 0) {
      os << ",\n" << in << "\"iters_per_sec\": ";
      json_number(iters / c.seconds_best, os);
    }
    if (c.validate != "none") {
      os << ",\n" << in << "\"val_seconds\": ";
      json_number(c.val_seconds, os);
      if (c.val_seconds > 0) {
        os << ",\n" << in << "\"sets_per_sec\": ";
        json_number(c.fault_sets / c.val_seconds, os);
      }
    }
    // Machine-dependent like the clocks, so it lives (and dies) with them:
    // timings=off keeps the JSON bit-identical across hosts.
    os << ",\n" << in << "\"peak_rss_bytes\": " << c.peak_rss;
    os << ",\n" << in << "\"hardware_concurrency\": " << c.hw_concurrency;
    if (!c.lane_pinned.empty()) {
      std::size_t pinned = 0;
      os << ",\n" << in << "\"lane_pinned\": [";
      for (std::size_t i = 0; i < c.lane_pinned.size(); ++i) {
        if (i > 0) os << ", ";
        os << (c.lane_pinned[i] ? 1 : 0);
        pinned += c.lane_pinned[i] != 0;
      }
      os << "],\n" << in << "\"lanes_pinned\": " << pinned;
    }
    if (c.load.ran) {
      os << ",\n" << in << "\"load\": {";
      os << "\"requests\": " << c.load.requests;
      os << ", \"errors\": " << c.load.errors;
      os << ", \"seconds\": ";
      json_number(c.load.seconds, os);
      os << ", \"qps\": ";
      json_number(c.load.qps, os);
      os << ", \"p50_ms\": ";
      json_number(c.load.p50_ms, os);
      os << ", \"p99_ms\": ";
      json_number(c.load.p99_ms, os);
      os << ", \"cache_hits\": " << c.load.cache_hits;
      os << ", \"cache_misses\": " << c.load.cache_misses;
      os << ", \"cache_hit_rate\": ";
      json_number(c.load.cache_hit_rate, os);
      os << ", \"shed\": " << c.load.shed;
      os << ", \"deadline_hits\": " << c.load.deadline_hits;
      os << ", \"rejected\": " << c.load.rejected;
      os << ", \"chaos_events\": " << c.load.chaos_events;
      os << ", \"reloads_sent\": " << c.load.reloads_sent;
      os << ", \"reloads_ok\": " << c.load.reloads_ok;
      os << ", \"reloads_failed\": " << c.load.reloads_failed;
      os << ", \"final_epoch\": " << c.load.final_epoch;
      os << "}";
    }
  }
  os << "\n" << indent << "}";
}

}  // namespace

void print_table(const ScenarioReport& report, std::ostream& os) {
  report_table(report).print(os);
}

void print_csv(const ScenarioReport& report, std::ostream& os) {
  report_table(report).print_csv(os);
}

void print_json(const ScenarioReport& report, std::ostream& os) {
  os << "{\n  \"schema\": \"ftspan.scenario.v1\",\n  \"scenarios\": [\n";
  for (std::size_t s = 0; s < report.specs.size(); ++s) {
    const ScenarioSpec& spec = report.specs[s];
    os << "    {\n      \"spec\": \"";
    json_escape(spec.to_string(), os);
    os << "\",\n";
    os << "      \"seed\": " << spec.seed << ",\n";
    os << "      \"wseed\": " << spec.wseed << ",\n";
    os << "      \"cells\": [\n";
    const std::size_t begin = report.first_cell[s];
    const std::size_t end = s + 1 < report.first_cell.size()
                                ? report.first_cell[s + 1]
                                : report.cells.size();
    for (std::size_t i = begin; i < end; ++i) {
      json_cell(report.cells[i], spec.timings, os, "        ");
      os << (i + 1 < end ? ",\n" : "\n");
    }
    os << "      ]\n    }" << (s + 1 < report.specs.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

namespace {

Registry<ScenarioPreset> build_presets() {
  Registry<ScenarioPreset> reg("scenario preset");

  // One tiny smoke scenario per registered algorithm, in registry order —
  // the CI scenario-smoke job runs exactly these. The 2-spanner LP
  // algorithms get a smaller instance (they solve LPs); the plain bases
  // validate r = 0 (their guarantee is plain stretch), the fault-tolerant
  // constructions validate r = 1 exactly.
  for (const std::string& name : algorithm_registry().names()) {
    const SpannerAlgorithm& algo = algorithm_registry().get(name);
    std::string spec;
    if (algo.fixed_k > 0) {
      spec = "workload=gnp n=14 p=0.4 wseed=7 algo=" + name +
             " k=2 r=1 seed=3 reps=1 validate=exact";
    } else if (algo.model == FaultModel::kNone && name != "layered_greedy") {
      spec = "workload=gnp n=24 p=0.3 wseed=5 algo=" + name +
             " k=3 r=0 seed=3 reps=1 validate=exact";
    } else {
      spec = "workload=gnp n=24 p=0.3 wseed=5 algo=" + name +
             " k=3 r=1 seed=3 reps=1 validate=exact";
    }
    reg.add("smoke_" + name,
            {"CI smoke: tiny " + name + " scenario, exact validation", spec});
  }

  reg.add("conv_throughput",
          {"the tracked conversion-throughput cell (BENCH_pr4/pr5 lineage): "
           "gnp(400, 0.05), k=3, r=2, c=1, 1 thread, best of 3",
           "workload=gnp n=400 p=0.05 wseed=1234 algo=ft_vertex k=3 r=2 "
           "seed=4242 threads=1 reps=3 validate=none"});

  reg.add("validation_throughput",
          {"the tracked StretchOracle cell (bench_e11's oracle side): "
           "greedy 3-spanner of gnp(400, 0.05), 12 sampled fault sets",
           "workload=gnp n=400 p=0.05 wseed=1 algo=greedy k=3 r=2 seed=1 "
           "reps=1 validate=sampled trials=12 adversarial=0 vseed=1"});

  reg.add("midrange_throughput",
          {"the tracked mid-range integer-weight cell (BENCH_pr10 lineage): "
           "greedy 3-spanner of gnp(400, 0.05) reweighted to w <= 1e5 "
           "(engine=auto resolves to delta), 12 sampled fault sets, "
           "best of 3",
           "workload=gnp n=400 p=0.05 max_weight=100000 wseed=1 algo=greedy "
           "k=3 r=2 seed=1 threads=1 reps=3 validate=sampled trials=12 "
           "adversarial=0 vseed=1"});

  // Deliberately NOT named smoke_<algo>: the CI scenario-smoke job globs
  // that prefix and compares goldens, which a wall-clock load test can
  // never satisfy. The serve-smoke CI job runs this preset explicitly.
  reg.add("serve_smoke",
          {"serve daemon load test: ft_vertex spanner of a tiny gnp, "
           "0.3 s closed loop over 2 connections",
           "workload=serve n=48 p=0.3 conns=2 duration=0.3 wseed=2 "
           "algo=ft_vertex k=3 r=1 seed=3 threads=2 reps=1 validate=none"});

  // Same shape as serve_smoke plus the robustness machinery: 40% of client
  // slots inject seeded faults (resets, slow-loris, malformed, oversized)
  // and every 25th request per client fires an admin reload. The CI
  // chaos-smoke job asserts errors == 0 on this preset's load block.
  reg.add("serve_chaos",
          {"serve daemon chaos run: seeded client faults + reload storm "
           "over 3 connections, 0.4 s",
           "workload=serve n=48 p=0.3 conns=3 duration=0.4 chaos=0.4 "
           "reload_every=25 wseed=2 algo=ft_vertex k=3 r=1 seed=3 "
           "threads=2 reps=1 validate=none"});

  reg.add("quick",
          {"small demo sweep: ft_vertex over gnp at n={64,128}, r={1,2}",
           "workload=gnp n=64,128 wseed=1 algo=ft_vertex k=3 r=1,2 "
           "seed=7 reps=1 validate=sampled trials=10 adversarial=10 vseed=5"});

  return reg;
}

}  // namespace

const Registry<ScenarioPreset>& preset_registry() {
  static const Registry<ScenarioPreset> reg = build_presets();
  return reg;
}

}  // namespace ftspan::runner
