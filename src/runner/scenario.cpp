#include "runner/scenario.hpp"

#include "graph/engine_policy.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ftspan::runner {

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os.precision(precision);
    os << v;
    const std::string s = os.str();
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return std::to_string(v);  // unreachable: precision 17 round-trips
}

namespace {

std::string join_sizes(const std::vector<std::size_t>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(xs[i]);
  }
  return out;
}

std::string join_doubles(const std::vector<double>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += format_double(xs[i]);
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char ch : s) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  out.push_back(cur);
  return out;
}

[[noreturn]] void bad_value(const std::string& key, const std::string& value) {
  throw std::invalid_argument("scenario spec: bad value '" + value +
                              "' for key '" + key + "'");
}

/// Specs are whitespace-tokenized, so a path containing whitespace cannot
/// survive a to_string -> parse round trip (the splitter would truncate it
/// into a different spec or a bogus key). Reject it loudly at both ends
/// instead of silently corrupting the spec.
void check_path(const std::string& path) {
  if (path.find_first_of(" \t\n\r") != std::string::npos)
    throw std::invalid_argument(
        "scenario spec: path '" + path +
        "' contains whitespace, which the whitespace-tokenized spec grammar "
        "cannot represent");
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size())
    bad_value(key, value);
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  // strtoull silently wraps "-1" to 2^64-1; integer spec keys are
  // non-negative decimals only, so reject any sign explicitly.
  if (value.empty() || value[0] == '-' || value[0] == '+')
    bad_value(key, value);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  // Out-of-range input saturates to ULLONG_MAX with errno = ERANGE instead
  // of failing the end-pointer check; report it as a bad value for the key
  // rather than letting a wrapped/saturated count through.
  if (errno == ERANGE || end != value.c_str() + value.size())
    bad_value(key, value);
  return v;
}

std::vector<std::size_t> parse_size_list(const std::string& key,
                                         const std::string& value) {
  std::vector<std::size_t> out;
  for (const std::string& part : split(value, ','))
    out.push_back(static_cast<std::size_t>(parse_u64(key, part)));
  return out;
}

std::vector<double> parse_double_list(const std::string& key,
                                      const std::string& value) {
  std::vector<double> out;
  for (const std::string& part : split(value, ','))
    out.push_back(parse_double(key, part));
  return out;
}

}  // namespace

std::string ScenarioSpec::to_string() const {
  std::ostringstream os;
  os << "workload=" << workload;
  if (!path.empty()) {
    check_path(path);
    os << " path=" << path;
  }
  if (!n.empty()) os << " n=" << join_sizes(n);
  if (p >= 0) os << " p=" << format_double(p);
  if (scale != 1.0) os << " scale=" << format_double(scale);
  if (max_weight != 0) os << " max_weight=" << format_double(max_weight);
  if (qps != 0) os << " qps=" << format_double(qps);
  if (conns != 1) os << " conns=" << conns;
  if (duration != 0) os << " duration=" << format_double(duration);
  if (chaos != 0) os << " chaos=" << format_double(chaos);
  if (reload_every != 0) os << " reload_every=" << reload_every;
  os << " wseed=" << wseed;
  os << " algo=" << algo;
  os << " k=" << join_doubles(k);
  os << " r=" << join_sizes(r);
  if (c != 1.0) os << " c=" << format_double(c);
  if (iters != 0) os << " iters=" << iters;
  os << " seed=" << seed;
  os << " threads=" << join_sizes(threads);
  // Engine/batch only appear when non-default so historical spec strings
  // stay byte-identical (to_string must round-trip through parse verbatim).
  if (engine != "auto") os << " engine=" << engine;
  if (batch != 0) os << " batch=" << batch;
  if (bucket_max != 0) os << " bucket_max=" << format_double(bucket_max);
  if (pin) os << " pin=on";
  os << " reps=" << reps;
  os << " validate=" << validate;
  if (validate != "none") {
    os << " trials=" << trials;
    os << " adversarial=" << adversarial;
    os << " vseed=" << vseed;
  }
  if (!timings) os << " timings=off";
  return os.str();
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument(
          "scenario spec: expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "workload") {
      spec.workload = value;
    } else if (key == "path") {
      check_path(value);
      spec.path = value;
    } else if (key == "n") {
      spec.n = parse_size_list(key, value);
    } else if (key == "p") {
      // Density knobs are probabilities; nan fails both comparisons.
      spec.p = parse_double(key, value);
      if (!(spec.p >= 0.0 && spec.p <= 1.0)) bad_value(key, value);
    } else if (key == "scale") {
      spec.scale = parse_double(key, value);
      if (!(spec.scale > 0.0) || !std::isfinite(spec.scale))
        bad_value(key, value);
    } else if (key == "max_weight") {
      // An integer reweight ceiling: whole-valued, >= 1 (0 turns it off).
      spec.max_weight = parse_double(key, value);
      if (!std::isfinite(spec.max_weight) || spec.max_weight < 0 ||
          spec.max_weight != std::floor(spec.max_weight) ||
          (spec.max_weight != 0 && spec.max_weight < 1.0))
        bad_value(key, value);
    } else if (key == "qps") {
      spec.qps = parse_double(key, value);
      if (!(spec.qps >= 0.0) || !std::isfinite(spec.qps))
        bad_value(key, value);
    } else if (key == "conns") {
      spec.conns = static_cast<std::size_t>(parse_u64(key, value));
      if (spec.conns == 0) bad_value(key, value);
    } else if (key == "duration") {
      spec.duration = parse_double(key, value);
      if (!(spec.duration >= 0.0) || !std::isfinite(spec.duration))
        bad_value(key, value);
    } else if (key == "chaos") {
      // An injection probability; nan fails both comparisons.
      spec.chaos = parse_double(key, value);
      if (!(spec.chaos >= 0.0 && spec.chaos <= 1.0)) bad_value(key, value);
    } else if (key == "reload_every") {
      spec.reload_every = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "wseed") {
      spec.wseed = parse_u64(key, value);
    } else if (key == "algo") {
      spec.algo = value;
    } else if (key == "k") {
      spec.k = parse_double_list(key, value);
      if (spec.k.empty()) bad_value(key, value);
      // A stretch below 1 is meaningless (and nan poisons the iteration
      // formula); every sweep entry must be a finite k >= 1.
      for (const double k : spec.k)
        if (!(k >= 1.0) || !std::isfinite(k)) bad_value(key, value);
    } else if (key == "r") {
      spec.r = parse_size_list(key, value);
      if (spec.r.empty()) bad_value(key, value);
    } else if (key == "c") {
      // The conversion's correctness argument needs at least the proof
      // constant's shape: c < 1 silently undershoots the iteration count.
      spec.c = parse_double(key, value);
      if (!(spec.c >= 1.0) || !std::isfinite(spec.c)) bad_value(key, value);
    } else if (key == "iters") {
      spec.iters = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "seed") {
      spec.seed = parse_u64(key, value);
    } else if (key == "threads") {
      spec.threads = parse_size_list(key, value);
      if (spec.threads.empty()) bad_value(key, value);
    } else if (key == "engine") {
      if (!parse_engine_policy(value)) bad_value(key, value);
      spec.engine = value;
    } else if (key == "batch") {
      spec.batch = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "bucket_max") {
      // Whole-valued, in [1, kBucketMaxCeiling]; 0 = engine default.
      spec.bucket_max = parse_double(key, value);
      if (!std::isfinite(spec.bucket_max) || spec.bucket_max < 0 ||
          spec.bucket_max != std::floor(spec.bucket_max) ||
          (spec.bucket_max != 0 &&
           (spec.bucket_max < 1.0 ||
            spec.bucket_max > static_cast<double>(kBucketMaxCeiling))))
        bad_value(key, value);
    } else if (key == "pin") {
      if (value != "on" && value != "off") bad_value(key, value);
      spec.pin = value == "on";
    } else if (key == "reps") {
      spec.reps = static_cast<std::size_t>(parse_u64(key, value));
      if (spec.reps == 0) bad_value(key, value);
    } else if (key == "validate") {
      if (value != "none" && value != "sampled" && value != "exact")
        bad_value(key, value);
      spec.validate = value;
    } else if (key == "trials") {
      spec.trials = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "adversarial") {
      spec.adversarial = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "vseed") {
      spec.vseed = parse_u64(key, value);
    } else if (key == "timings") {
      if (value != "on" && value != "off") bad_value(key, value);
      spec.timings = value == "on";
    } else {
      throw std::invalid_argument(
          "scenario spec: unknown key '" + key +
          "'; valid keys: workload path n p scale max_weight qps conns "
          "duration chaos reload_every wseed algo k r c iters seed threads "
          "engine batch bucket_max pin reps validate trials adversarial "
          "vseed timings");
    }
  }
  return spec;
}

}  // namespace ftspan::runner
