// Name → entry registry shared by the scenario engine's three catalogs
// (workloads, algorithms, presets).
//
// Lookups are by exact name; an unknown name throws std::invalid_argument
// whose message lists every registered name, so a typo at the CLI or in a
// scenario spec is self-correcting. Registration order is preserved — it is
// the order `names()` reports and the order CI iterates smoke scenarios in.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ftspan::runner {

template <class Entry>
class Registry {
 public:
  /// `kind` names the catalog in error messages, e.g. "workload".
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers `entry` under `name`; duplicate names are a programming
  /// error and throw std::logic_error.
  void add(std::string name, Entry entry) {
    if (contains(name))
      throw std::logic_error("duplicate " + kind_ + " '" + name + "'");
    entries_.emplace_back(std::move(name), std::move(entry));
  }

  bool contains(const std::string& name) const {
    for (const auto& [n, e] : entries_)
      if (n == name) return true;
    return false;
  }

  /// Throws std::invalid_argument listing the valid names when `name` is
  /// not registered.
  const Entry& get(const std::string& name) const {
    for (const auto& [n, e] : entries_)
      if (n == name) return e;
    std::ostringstream os;
    os << "unknown " << kind_ << " '" << name << "'; valid names:";
    for (const auto& [n, e] : entries_) os << " " << n;
    throw std::invalid_argument(os.str());
  }

  /// Registered names, in registration order.
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [n, e] : entries_) out.push_back(n);
    return out;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::string kind_;
  std::vector<std::pair<std::string, Entry>> entries_;
};

}  // namespace ftspan::runner
