// The scenario driver: expands ScenarioSpecs into cells, executes each cell
// through the workload and algorithm registries, validates the result
// through the StretchOracle (or the edge-fault checker), and emits the
// report as a util/table.hpp text table, CSV, or versioned JSON.
//
// Determinism contract: every metric in a cell — sizes, stats, validity,
// worst stretch, witnesses, edge-set hash — is bit-identical for the same
// spec and seeds at every thread count (wall-clock fields are the only
// exception, and `timings=off` removes them from the emitters entirely).
//
// Within one spec the driver binds the algorithm once per workload instance
// and reuses the bound state — the GreedyContext edge sort and the pooled
// per-worker DijkstraEngine scratch — across the k/r/threads sweep and all
// timing repetitions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "runner/algorithms.hpp"
#include "runner/scenario.hpp"

namespace ftspan::runner {

/// One executed (workload, algorithm, k, r, threads) combination.
struct ScenarioCell {
  // Instance identity.
  std::string workload;
  std::string params;  ///< the workload's canonical parameter string
  std::size_t n = 0;   ///< vertices of the generated instance
  std::size_t m = 0;   ///< edges of the generated instance

  // Algorithm and its result.
  std::string algorithm;
  double k = 3.0;
  std::size_t r = 1;
  std::size_t threads = 1;
  std::size_t edges = 0;         ///< spanner size |H|
  std::uint64_t edges_hash = 0;  ///< FNV-1a over the edge-id sequence
  /// The SP queue the spec's engine policy resolves to against the BASE
  /// graph's weight profile ("heap" | "bucket" | "delta"). Deterministic —
  /// a function of (instance, engine, bucket_max) only — so it sits outside
  /// the timings gate. (The spanner H resolves separately per graph; its
  /// profile can only be narrower.)
  std::string engine_resolved;
  std::vector<std::pair<std::string, double>> stats;

  // Validation (fields meaningful when validate != "none").
  std::string validate = "none";
  bool valid = true;
  double worst_stretch = 1.0;
  std::size_t fault_sets = 0;
  Vertex witness_u = kInvalidVertex;
  Vertex witness_v = kInvalidVertex;

  // Wall clock and machine-dependent metrics (never part of the determinism
  // contract; `timings=off` removes them from the emitters).
  std::size_t reps = 1;
  double seconds_best = 0;  ///< construction, best of `reps`
  double val_seconds = 0;   ///< validation, best of `reps`
  /// std::thread::hardware_concurrency() where the cell ran, plus the
  /// construction fan-out's per-lane affinity status (1 = pinned; empty for
  /// single-shot algorithms). Machine-dependent, so the emitters keep both
  /// inside the timings-gated block.
  std::size_t hw_concurrency = 0;
  std::vector<char> lane_pinned;
  /// Process-wide peak RSS sampled after the cell ran (util/mem.hpp):
  /// an upper bound on the cell's footprint, monotone across cells.
  std::size_t peak_rss = 0;

  /// workload=serve load-test metrics (serve/loadtest.hpp). Machine-
  /// dependent like the clocks, so the emitters put them inside the
  /// timings-gated block; `ran` is false when no load phase ran (duration=0
  /// or timings=off).
  struct LoadStats {
    bool ran = false;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    double seconds = 0;
    double qps = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    double cache_hit_rate = 0;
    // Failure-mode counters (chaos= / reload_every= keys): client-observed
    // shed and rejection totals, injected-fault counts, and the reload
    // storm's outcome. All zero when neither key is set.
    std::uint64_t shed = 0;
    std::uint64_t deadline_hits = 0;
    std::uint64_t rejected = 0;
    std::uint64_t chaos_events = 0;
    std::uint64_t reloads_sent = 0;
    std::uint64_t reloads_ok = 0;
    std::uint64_t reloads_failed = 0;
    std::uint64_t final_epoch = 0;
  };
  LoadStats load;

  /// Value of a named stat, or `dflt` when the algorithm did not emit it.
  double stat(const std::string& name, double dflt = 0) const;
};

struct ScenarioReport {
  std::vector<ScenarioSpec> specs;
  /// Cells in execution order: specs in input order, each expanded
  /// n-major, then k, then r, then threads.
  std::vector<ScenarioCell> cells;
  /// Index into `cells` of each spec's first cell (parallel to `specs`).
  std::vector<std::size_t> first_cell;
};

/// Executes the spec(s). Throws std::invalid_argument for unknown workload
/// or algorithm names (listing the valid names).
ScenarioReport run_scenario(const ScenarioSpec& spec);
ScenarioReport run_scenarios(const std::vector<ScenarioSpec>& specs);

/// Emitters. Table and CSV share one column layout; JSON is the versioned
/// machine-readable record (schema "ftspan.scenario.v1").
void print_table(const ScenarioReport& report, std::ostream& os);
void print_csv(const ScenarioReport& report, std::ostream& os);
void print_json(const ScenarioReport& report, std::ostream& os);

/// FNV-1a over an edge-id sequence — the cross-run bit-identity fingerprint
/// stored in ScenarioCell::edges_hash (same function the golden-conversion
/// tests use).
std::uint64_t edge_set_hash(const std::vector<EdgeId>& edges);

/// A named, committed scenario: the registry behind `ftspan bench <name>`.
struct ScenarioPreset {
  std::string summary;
  std::string spec;  ///< parseable ScenarioSpec text
};

/// Presets: one `smoke_<algo>` per registered algorithm (tiny instances,
/// used by the CI scenario-smoke job) plus the tracked performance cells
/// (`conv_throughput`, `validation_throughput`) and a `quick` demo sweep.
const Registry<ScenarioPreset>& preset_registry();

}  // namespace ftspan::runner
