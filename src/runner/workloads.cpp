#include "runner/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "util/rng.hpp"

namespace ftspan::runner {

namespace {

/// Stream tag for the reweight RNG: independent of every generator's own
/// use of the seed, so max_weight changes weights without moving topology.
constexpr std::uint64_t kReweightStream = 0x9e3779b97f4a7c15ull;

/// Replaces every edge length with an integer uniform in [1, max_weight],
/// keeping the topology (and edge ids) exactly as generated.
Graph reweight_integer(const Graph& g, double max_weight,
                       std::uint64_t seed) {
  Rng rng(hash_combine(seed, kReweightStream));
  const auto w = static_cast<std::int64_t>(max_weight);
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    Edge e = g.edge(id);
    e.w = static_cast<Weight>(rng.uniform_int(1, w));
    edges.push_back(e);
  }
  return Graph::from_edges(g.num_vertices(), edges);
}

/// max(floor_n, lround(full * scale)) — the scaling rule every vertex-count
/// knob uses (identical to the property harness's historical `scaled`).
std::size_t scaled(std::size_t full, double scale, std::size_t floor_n) {
  return std::max<std::size_t>(
      floor_n, static_cast<std::size_t>(std::lround(full * scale)));
}

/// Default-ostream double formatting (6 significant digits) — the format the
/// property harness has always used in replay-tuple params strings.
std::string num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

Registry<Workload> build_registry() {
  Registry<Workload> reg("workload");

  reg.add("gnp", {"Erdős–Rényi G(n, p); p defaults to 10/n",
                  [](const WorkloadParams& wp) {
                    const std::size_t n = scaled(wp.n ? wp.n : 240, wp.scale, 12);
                    const double p =
                        wp.p < 0 ? std::min(1.0, 10.0 / static_cast<double>(n))
                                 : wp.p;
                    std::ostringstream os;
                    os << "n=" << n << " p=" << p;
                    return WorkloadInstance{gnp(n, p, wp.seed), os.str()};
                  }});

  reg.add("sensor",
          {"random geometric disk graph (sensor field); p = connect radius, "
           "default 1.7/sqrt(n)",
           [](const WorkloadParams& wp) {
             const std::size_t n = scaled(wp.n ? wp.n : 200, wp.scale, 12);
             const double radius =
                 wp.p < 0 ? 1.7 / std::sqrt(static_cast<double>(n)) : wp.p;
             std::ostringstream os;
             os << "n=" << n << " radius=" << radius;
             return WorkloadInstance{random_geometric(n, radius, wp.seed),
                                     os.str()};
           }});

  reg.add("grid", {"n x n grid, unit lengths (n = side, default 15)",
                   [](const WorkloadParams& wp) {
                     const std::size_t side =
                         scaled(wp.n ? wp.n : 15, std::sqrt(wp.scale), 3);
                     std::ostringstream os;
                     os << "rows=" << side << " cols=" << side;
                     return WorkloadInstance{grid(side, side), os.str()};
                   }});

  reg.add("road",
          {"road-like n x n grid with jittered block lengths and diagonal "
           "shortcuts; p = shortcut probability, default 0.15",
           [](const WorkloadParams& wp) {
             const std::size_t side =
                 scaled(wp.n ? wp.n : 14, std::sqrt(wp.scale), 3);
             const double shortcut = wp.p < 0 ? 0.15 : wp.p;
             std::ostringstream os;
             os << "rows=" << side << " cols=" << side
                << " shortcut=" << shortcut;
             return WorkloadInstance{
                 road_like(side, side, shortcut, wp.seed), os.str()};
           }});

  reg.add("preferential",
          {"Barabási–Albert preferential attachment; p = edges per new "
           "vertex, default 4",
           [](const WorkloadParams& wp) {
             const std::size_t n = scaled(wp.n ? wp.n : 220, wp.scale, 14);
             const std::size_t m =
                 wp.p < 0 ? 4 : static_cast<std::size_t>(wp.p);
             std::ostringstream os;
             os << "n=" << n << " m=" << m;
             return WorkloadInstance{barabasi_albert(n, m, wp.seed), os.str()};
           }});

  reg.add("smallworld",
          {"Watts–Strogatz ring (6 neighbors); p = rewiring beta, "
           "default 0.2",
           [](const WorkloadParams& wp) {
             const std::size_t n = scaled(wp.n ? wp.n : 240, wp.scale, 12);
             const double beta = wp.p < 0 ? 0.2 : wp.p;
             std::ostringstream os;
             os << "n=" << n << " k=6 beta=" << beta;
             return WorkloadInstance{watts_strogatz(n, 6, beta, wp.seed),
                                     os.str()};
           }});

  reg.add("hypercube",
          {"d-dimensional hypercube, d = ⌊log2(scaled n)⌋ (default n = 256)",
           [](const WorkloadParams& wp) {
             const double target =
                 std::max(8.0, static_cast<double>(wp.n ? wp.n : 256) *
                                   wp.scale);
             const std::size_t d =
                 static_cast<std::size_t>(std::log2(target));
             std::ostringstream os;
             os << "d=" << d;
             return WorkloadInstance{hypercube(d), os.str()};
           }});

  reg.add("tie_dense",
          {"worst-case ties: G(n, p) with lengths from {1.0, 1.1, 1.2, 1.3} "
           "(p defaults to 12/n)",
           [](const WorkloadParams& wp) {
             const std::size_t n = scaled(wp.n ? wp.n : 160, wp.scale, 12);
             const double p =
                 wp.p < 0 ? std::min(1.0, 12.0 / static_cast<double>(n))
                          : wp.p;
             std::ostringstream os;
             os << "n=" << n << " p=" << p << " levels=4";
             return WorkloadInstance{tie_dense(n, p, 4, wp.seed), os.str()};
           }});

  reg.add("complete", {"complete graph K_n, unit lengths (default n = 64)",
                       [](const WorkloadParams& wp) {
                         const std::size_t n =
                             scaled(wp.n ? wp.n : 64, wp.scale, 4);
                         std::ostringstream os;
                         os << "n=" << n;
                         return WorkloadInstance{complete(n), os.str()};
                       }});

  reg.add("file",
          {"graph loaded from path= (ftspan.graph.v1 binary or text "
           "edge-list, sniffed by magic); size/density knobs are ignored",
           [](const WorkloadParams& wp) {
             if (wp.path.empty())
               throw std::invalid_argument(
                   "workload 'file' needs path=<graph file>");
             Graph g = load_graph_any(wp.path);
             std::ostringstream os;
             os << "path=" << wp.path << " n=" << g.num_vertices()
                << " m=" << g.num_edges();
             return WorkloadInstance{std::move(g), os.str()};
           }});

  reg.add("serve",
          {"daemon load-test graph: path= if given (like 'file'), else "
           "G(n, p) with n defaulting to 200; drive with qps/conns/duration",
           [](const WorkloadParams& wp) {
             if (!wp.path.empty()) {
               Graph g = load_graph_any(wp.path);
               std::ostringstream os;
               os << "path=" << wp.path << " n=" << g.num_vertices()
                  << " m=" << g.num_edges();
               return WorkloadInstance{std::move(g), os.str()};
             }
             const std::size_t n = scaled(wp.n ? wp.n : 200, wp.scale, 12);
             const double p =
                 wp.p < 0 ? std::min(1.0, 10.0 / static_cast<double>(n))
                          : wp.p;
             std::ostringstream os;
             os << "n=" << n << " p=" << p;
             return WorkloadInstance{gnp(n, p, wp.seed), os.str()};
           }});

  return reg;
}

}  // namespace

const Registry<Workload>& workload_registry() {
  static const Registry<Workload> reg = build_registry();
  return reg;
}

WorkloadInstance make_workload(const std::string& name,
                               const WorkloadParams& params) {
  WorkloadInstance inst = workload_registry().get(name).make(params);
  if (params.max_weight != 0) {
    inst.g = reweight_integer(inst.g, params.max_weight, params.seed);
    inst.params += " max_weight=" + num(params.max_weight);
  }
  return inst;
}

}  // namespace ftspan::runner
