// The workload registry: name → parameterized graph family.
//
// One catalog of instances for the whole repo: the benches, the `ftspan
// bench` subcommand, and the property-test harness (tests/property/
// harness.hpp) all draw their graphs from here, so a scenario measured by a
// bench and a cell validated by the matrix test are provably the same
// instance. Every family is deterministic given (params, seed); `scale`
// shrinks a family towards its floor size, which is what the harness's
// shrinking loop drives.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "graph/graph.hpp"
#include "runner/registry.hpp"

namespace ftspan::runner {

struct WorkloadParams {
  /// Family size knob before scaling; 0 = the family's default. For grid-
  /// shaped families this is the side length, for hypercube the vertex
  /// count 2^⌊log2 n⌋, otherwise the vertex count.
  std::size_t n = 0;

  /// Family density knob (edge probability, disk radius, shortcut
  /// probability, attachment count, rewiring beta); < 0 = family default.
  double p = -1.0;

  /// Multiplies the size knob, floored at the family's minimum viable size.
  /// The property harness shrinks failing instances by lowering this.
  double scale = 1.0;

  std::uint64_t seed = 1;

  /// Post-generation reweight: replace every edge length with an integer
  /// drawn uniformly from [1, max_weight] (its own seeded RNG stream, so
  /// the topology is untouched); 0 = keep the family's own weights. This is
  /// how the mid-range integer regime (4096 < w <= 10^6) is swept without
  /// a DIMACS file.
  double max_weight = 0;

  /// For the "file" family only: the graph file to load (ftspan.graph.v1
  /// binary or the text edge-list format, sniffed by magic). The size and
  /// density knobs above are ignored — the file is the instance.
  std::string path;
};

struct WorkloadInstance {
  Graph g;
  /// Canonical human-readable parameters, e.g. "n=240 p=0.0416667" — the
  /// string the property harness reports in replay tuples.
  std::string params;
};

struct Workload {
  std::string summary;
  std::function<WorkloadInstance(const WorkloadParams&)> make;
};

/// The process-wide workload catalog (registration order is display order):
/// gnp, sensor, grid, road, preferential, smallworld, hypercube, tie_dense,
/// complete, file.
const Registry<Workload>& workload_registry();

/// Convenience: workload_registry().get(name).make(params). Throws
/// std::invalid_argument (listing valid names) for an unknown name.
WorkloadInstance make_workload(const std::string& name,
                               const WorkloadParams& params);

}  // namespace ftspan::runner
