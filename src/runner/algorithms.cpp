#include "runner/algorithms.hpp"

#include <memory>
#include <mutex>

#include "ftspanner/baselines.hpp"
#include "ftspanner/conversion.hpp"
#include "ftspanner/edge_faults.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/greedy.hpp"
#include "spanner/thorup_zwick.hpp"
#include "spanner2/undirected.hpp"

namespace ftspan::runner {

namespace {

/// Stretch k → the (2k'-1)-spanner parameter k' the clustering bases take
/// (the same mapping the CLI's `spanner --algo bs|tz` has always used).
std::size_t cluster_k(double k) {
  return static_cast<std::size_t>((k + 1.0) / 2.0);
}

AlgoResult from_two_spanner(const Graph& g,
                            const UndirectedTwoSpannerResult& res) {
  AlgoResult out;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (res.in_spanner[id]) out.edges.push_back(id);
  out.stats = {{"cost", res.cost},
               {"lp_value", res.lp_value},
               {"lemma_valid", res.valid ? 1.0 : 0.0}};
  return out;
}

/// The conversion over the greedy base with runner-owned pooled state: the
/// GreedyContext (hoisted edge-weight sort) is built once per bound graph
/// and the per-worker GreedyWorkspaces — each holding its DijkstraEngines —
/// persist across calls, so timing repetitions reuse all scratch. Semantics
/// are identical to ft_greedy_spanner (same factory contract, same seeds),
/// so the output is bit-identical to the one-shot API at every thread count.
BoundAlgorithm bind_ft_vertex(const Graph& g) {
  auto ctx = std::make_shared<GreedyContext>(g);
  auto pool =
      std::make_shared<std::vector<std::shared_ptr<GreedyWorkspace>>>();
  auto mu = std::make_shared<std::mutex>();
  const Graph* gp = &g;
  return [ctx, pool, mu, gp](const AlgoParams& p) {
    ConversionOptions opt;
    opt.iteration_constant = p.c;
    if (p.iterations > 0) opt.iterations = p.iterations;
    opt.threads = p.threads;
    opt.engine = p.engine;
    opt.batch = p.batch;
    opt.bucket_max = p.bucket_max;
    opt.pin = p.pin;
    // Hand each worker its own pooled workspace; `handed` restarts at 0 for
    // every conversion call (bound instances are sequential-use).
    auto handed = std::make_shared<std::size_t>(0);
    const double k = p.k;
    const SpEnginePolicy engine = p.engine;
    const Weight bucket_max = p.bucket_max;
    const BaseSpannerFactory factory = [ctx, pool, mu, handed, k, engine,
                                        bucket_max]() -> BoundBaseSpanner {
      std::shared_ptr<GreedyWorkspace> ws;
      {
        std::lock_guard<std::mutex> lock(*mu);
        const std::size_t i = (*handed)++;
        if (i >= pool->size()) pool->resize(i + 1);
        if (!(*pool)[i]) (*pool)[i] = std::make_shared<GreedyWorkspace>();
        ws = (*pool)[i];
      }
      ws->set_engine(engine, bucket_max);
      return [ctx, ws, k](const VertexSet* mask,
                          std::uint64_t) -> std::span<const EdgeId> {
        return ws->run(*ctx, k, mask);
      };
    };
    ConversionResult res =
        fault_tolerant_spanner(*gp, p.r, factory, p.seed, opt);
    AlgoResult out;
    out.edges = std::move(res.edges);
    out.stats = {{"iterations", static_cast<double>(res.iterations)},
                 {"max_survivors", static_cast<double>(res.max_survivors)},
                 {"keep_probability", res.keep_probability},
                 {"threads_used", static_cast<double>(res.threads_used)}};
    out.lane_pinned = std::move(res.lane_pinned);
    return out;
  };
}

Registry<SpannerAlgorithm> build_registry() {
  Registry<SpannerAlgorithm> reg("algorithm");

  reg.add("greedy",
          {"greedy k-spanner (Althöfer et al.); deterministic", FaultModel::kNone, 0,
           [](const Graph& g) -> BoundAlgorithm {
             auto ctx = std::make_shared<GreedyContext>(g);
             auto ws = std::make_shared<GreedyWorkspace>();
             return [ctx, ws](const AlgoParams& p) {
               ws->set_engine(p.engine, p.bucket_max);
               const auto kept = ws->run(*ctx, p.k, nullptr);
               AlgoResult out;
               out.edges.assign(kept.begin(), kept.end());
               return out;
             };
           }});

  reg.add("baswana_sen",
          {"Baswana–Sen randomized (2k'-1)-spanner, k' = (k+1)/2",
           FaultModel::kNone, 0, [](const Graph& g) -> BoundAlgorithm {
             const Graph* gp = &g;
             return [gp](const AlgoParams& p) {
               AlgoResult out;
               out.edges = baswana_sen_spanner(*gp, cluster_k(p.k), p.seed);
               return out;
             };
           }});

  reg.add("thorup_zwick",
          {"Thorup–Zwick (2k'-1)-spanner, k' = (k+1)/2", FaultModel::kNone, 0,
           [](const Graph& g) -> BoundAlgorithm {
             const Graph* gp = &g;
             return [gp](const AlgoParams& p) {
               AlgoResult out;
               out.edges = thorup_zwick_spanner(*gp, cluster_k(p.k), p.seed);
               return out;
             };
           }});

  reg.add("layered_greedy",
          {"r+1 edge-disjoint greedy layers (baseline; NOT vertex-fault "
           "tolerant in general)",
           FaultModel::kNone, 0, [](const Graph& g) -> BoundAlgorithm {
             const Graph* gp = &g;
             return [gp](const AlgoParams& p) {
               AlgoResult out;
               out.edges = layered_greedy_spanner(*gp, p.k, p.r);
               return out;
             };
           }});

  reg.add("ft_vertex",
          {"Theorem 2.1 conversion over greedy: r-VERTEX-fault-tolerant "
           "k-spanner",
           FaultModel::kVertex, 0, bind_ft_vertex});

  reg.add("ft_edge",
          {"edge-fault conversion over greedy: r-EDGE-fault-tolerant "
           "k-spanner",
           FaultModel::kEdge, 0, [](const Graph& g) -> BoundAlgorithm {
             const Graph* gp = &g;
             return [gp](const AlgoParams& p) {
               EdgeFtOptions opt;
               opt.iteration_constant = p.c;
               if (p.iterations > 0) opt.iterations = p.iterations;
               opt.threads = p.threads;
               opt.engine = p.engine;
               opt.batch = p.batch;
               opt.bucket_max = p.bucket_max;
               opt.pin = p.pin;
               EdgeFtResult res =
                   ft_edge_greedy_spanner(*gp, p.k, p.r, p.seed, opt);
               AlgoResult out;
               out.edges = std::move(res.edges);
               out.stats = {
                   {"iterations", static_cast<double>(res.iterations)},
                   {"keep_probability", res.keep_probability},
                   {"threads_used", static_cast<double>(res.threads_used)}};
               out.lane_pinned = std::move(res.lane_pinned);
               return out;
             };
           }});

  reg.add("ft2_rounding",
          {"Theorem 3.3 LP rounding: r-FT 2-spanner, O(log n) approx "
           "(unit lengths)",
           FaultModel::kVertex, 2, [](const Graph& g) -> BoundAlgorithm {
             const Graph* gp = &g;
             return [gp](const AlgoParams& p) {
               return from_two_spanner(
                   *gp, approx_ft_2spanner_undirected(*gp, p.r, p.seed));
             };
           }});

  reg.add("ft2_dk10",
          {"DK10 baseline: r-FT 2-spanner, O(r log n) approx (unit lengths)",
           FaultModel::kVertex, 2, [](const Graph& g) -> BoundAlgorithm {
             const Graph* gp = &g;
             return [gp](const AlgoParams& p) {
               return from_two_spanner(
                   *gp, dk10_ft_2spanner_undirected(*gp, p.r, p.seed));
             };
           }});

  reg.add("ft2_lll",
          {"Theorem 3.4 Moser–Tardos LLL: r-FT 2-spanner, O(log Δ) approx "
           "(unit lengths)",
           FaultModel::kVertex, 2, [](const Graph& g) -> BoundAlgorithm {
             const Graph* gp = &g;
             return [gp](const AlgoParams& p) {
               return from_two_spanner(
                   *gp, lll_ft_2spanner_undirected(*gp, p.r, p.seed));
             };
           }});

  return reg;
}

}  // namespace

const Registry<SpannerAlgorithm>& algorithm_registry() {
  static const Registry<SpannerAlgorithm> reg = build_registry();
  return reg;
}

AlgoResult run_algorithm(const std::string& name, const Graph& g,
                         const AlgoParams& params) {
  return algorithm_registry().get(name).bind(g)(params);
}

}  // namespace ftspan::runner
