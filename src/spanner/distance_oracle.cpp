#include "spanner/distance_oracle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/csr.hpp"
#include "graph/sp_engine.hpp"
#include "util/rng.hpp"

namespace ftspan {

DistanceOracle::DistanceOracle(const Graph& g, std::size_t k,
                               std::uint64_t seed, const VertexSet* faults)
    : k_(k), n_(g.num_vertices()) {
  if (k < 1) throw std::invalid_argument("DistanceOracle: k must be >= 1");
  Rng rng(seed);

  auto alive = [&](Vertex v) { return faults == nullptr || !faults->contains(v); };

  // Levels A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}; A_k = ∅.
  std::vector<std::vector<Vertex>> levels(k_);
  for (Vertex v = 0; v < n_; ++v)
    if (alive(v)) levels[0].push_back(v);
  const double p = levels[0].empty()
                       ? 0.5
                       : std::pow(static_cast<double>(
                                      std::max<std::size_t>(levels[0].size(), 2)),
                                  -1.0 / static_cast<double>(k_));
  for (std::size_t i = 1; i < k_; ++i)
    for (Vertex v : levels[i - 1])
      if (rng.bernoulli(p)) levels[i].push_back(v);

  witness_.assign(k_ + 1, std::vector<Vertex>(n_, kInvalidVertex));
  witness_dist_.assign(k_ + 1, std::vector<Weight>(n_, kInfiniteWeight));
  bunch_.assign(n_, {});

  // One CSR snapshot and one pooled engine serve every search below.
  const Csr csr(g);
  DijkstraEngine engine;

  // Multi-source Dijkstra per level for witnesses p_i(v) = nearest of A_i.
  // Witnesses propagate down the shortest-path tree: settle order guarantees
  // a vertex's final parent is settled before it, so one forward pass labels
  // every vertex with its tree root.
  for (std::size_t i = 0; i < k_; ++i) {
    if (levels[i].empty()) continue;
    engine.run_multi(csr, levels[i], faults);
    for (const Vertex v : engine.settle_order()) {
      witness_dist_[i][v] = engine.dist(v);
      const Vertex parent = engine.parent(v);
      witness_[i][v] = parent == kInvalidVertex ? v : witness_[i][parent];
    }
  }
  // Level k: empty set, distance infinity (already initialized).

  // Clusters: for each center w in A_i \ A_{i+1}, grow
  // C(w) = { v : d(w,v) < d(v, A_{i+1}) }; record w into the bunch of every
  // member (bunches and clusters are duals: w ∈ B(v) iff v ∈ C(w)).
  std::vector<char> in_next(n_);
  for (std::size_t i = 0; i < k_; ++i) {
    std::fill(in_next.begin(), in_next.end(), 0);
    if (i + 1 < k_)
      for (Vertex v : levels[i + 1]) in_next[v] = 1;

    for (Vertex w : levels[i]) {
      if (in_next[w]) continue;
      engine.run_pruned(csr, w, faults, witness_dist_[i + 1].data());
      for (const Vertex v : engine.settle_order())
        bunch_[v][w] = engine.dist(v);
    }
  }
}

Weight DistanceOracle::query(Vertex u, Vertex v) const {
  if (u >= n_ || v >= n_) return kInfiniteWeight;
  if (u == v) return 0;
  // The TZ walk is asymmetric in (u, v); running it from both sides and
  // taking the min keeps the stretch bound and makes the API symmetric.
  return std::min(walk(u, v), walk(v, u));
}

Weight DistanceOracle::walk(Vertex u, Vertex v) const {
  // The classic TZ walk: w = u at level 0; while w not in B(v), move one
  // level up and swap the roles of u and v.
  Vertex w = u;
  for (std::size_t i = 0; i < k_; ++i) {
    if (i > 0) {
      std::swap(u, v);
      w = witness_[i][u];
      if (w == kInvalidVertex) return kInfiniteWeight;
    }
    const auto it = bunch_[v].find(w);
    if (it != bunch_[v].end())
      return witness_dist_[i][u] + it->second;
  }
  return kInfiniteWeight;
}

std::size_t DistanceOracle::size() const {
  std::size_t s = 0;
  for (const auto& b : bunch_) s += b.size();
  return s;
}

std::vector<std::pair<Vertex, Weight>> DistanceOracle::bunch(Vertex v) const {
  std::vector<std::pair<Vertex, Weight>> out(bunch_[v].begin(), bunch_[v].end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ftspan
