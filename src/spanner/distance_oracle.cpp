#include "spanner/distance_oracle.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace ftspan {

namespace {

struct QueueItem {
  Weight dist;
  Vertex v;
  bool operator>(const QueueItem& o) const { return dist > o.dist; }
};

using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

}  // namespace

DistanceOracle::DistanceOracle(const Graph& g, std::size_t k,
                               std::uint64_t seed, const VertexSet* faults)
    : k_(k), n_(g.num_vertices()) {
  if (k < 1) throw std::invalid_argument("DistanceOracle: k must be >= 1");
  Rng rng(seed);

  auto alive = [&](Vertex v) { return faults == nullptr || !faults->contains(v); };

  // Levels A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}; A_k = ∅.
  std::vector<std::vector<Vertex>> levels(k_);
  for (Vertex v = 0; v < n_; ++v)
    if (alive(v)) levels[0].push_back(v);
  const double p = levels[0].empty()
                       ? 0.5
                       : std::pow(static_cast<double>(
                                      std::max<std::size_t>(levels[0].size(), 2)),
                                  -1.0 / static_cast<double>(k_));
  for (std::size_t i = 1; i < k_; ++i)
    for (Vertex v : levels[i - 1])
      if (rng.bernoulli(p)) levels[i].push_back(v);

  witness_.assign(k_ + 1, std::vector<Vertex>(n_, kInvalidVertex));
  witness_dist_.assign(k_ + 1, std::vector<Weight>(n_, kInfiniteWeight));
  bunch_.assign(n_, {});

  // Multi-source Dijkstra per level for witnesses p_i(v) = nearest of A_i.
  for (std::size_t i = 0; i < k_; ++i) {
    MinQueue q;
    for (Vertex s : levels[i]) {
      witness_dist_[i][s] = 0;
      witness_[i][s] = s;
      q.push({0, s});
    }
    while (!q.empty()) {
      const auto [d, v] = q.top();
      q.pop();
      if (d > witness_dist_[i][v]) continue;
      for (const Arc& a : g.neighbors(v)) {
        if (!alive(a.to)) continue;
        const Weight nd = d + a.w;
        if (nd < witness_dist_[i][a.to]) {
          witness_dist_[i][a.to] = nd;
          witness_[i][a.to] = witness_[i][v];
          q.push({nd, a.to});
        }
      }
    }
  }
  // Level k: empty set, distance infinity (already initialized).

  // Clusters: for each center w in A_i \ A_{i+1}, grow
  // C(w) = { v : d(w,v) < d(v, A_{i+1}) }; record w into the bunch of every
  // member (bunches and clusters are duals: w ∈ B(v) iff v ∈ C(w)).
  std::vector<char> in_next(n_);
  for (std::size_t i = 0; i < k_; ++i) {
    std::fill(in_next.begin(), in_next.end(), 0);
    if (i + 1 < k_)
      for (Vertex v : levels[i + 1]) in_next[v] = 1;

    for (Vertex w : levels[i]) {
      if (in_next[w]) continue;
      std::vector<Weight> dist(n_, kInfiniteWeight);
      MinQueue q;
      dist[w] = 0;
      q.push({0, w});
      while (!q.empty()) {
        const auto [d, v] = q.top();
        q.pop();
        if (d > dist[v]) continue;
        bunch_[v][w] = d;
        for (const Arc& a : g.neighbors(v)) {
          if (!alive(a.to)) continue;
          const Weight nd = d + a.w;
          if (nd >= witness_dist_[i + 1][a.to]) continue;  // strict: < d(v,A_{i+1})
          if (nd < dist[a.to]) {
            dist[a.to] = nd;
            q.push({nd, a.to});
          }
        }
      }
    }
  }
}

Weight DistanceOracle::query(Vertex u, Vertex v) const {
  if (u >= n_ || v >= n_) return kInfiniteWeight;
  if (u == v) return 0;
  // The TZ walk is asymmetric in (u, v); running it from both sides and
  // taking the min keeps the stretch bound and makes the API symmetric.
  return std::min(walk(u, v), walk(v, u));
}

Weight DistanceOracle::walk(Vertex u, Vertex v) const {
  // The classic TZ walk: w = u at level 0; while w not in B(v), move one
  // level up and swap the roles of u and v.
  Vertex w = u;
  for (std::size_t i = 0; i < k_; ++i) {
    if (i > 0) {
      std::swap(u, v);
      w = witness_[i][u];
      if (w == kInvalidVertex) return kInfiniteWeight;
    }
    const auto it = bunch_[v].find(w);
    if (it != bunch_[v].end())
      return witness_dist_[i][u] + it->second;
  }
  return kInfiniteWeight;
}

std::size_t DistanceOracle::size() const {
  std::size_t s = 0;
  for (const auto& b : bunch_) s += b.size();
  return s;
}

std::vector<std::pair<Vertex, Weight>> DistanceOracle::bunch(Vertex v) const {
  std::vector<std::pair<Vertex, Weight>> out(bunch_[v].begin(), bunch_[v].end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ftspan
