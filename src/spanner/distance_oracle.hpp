// Thorup–Zwick approximate distance oracle (JACM 2005).
//
// The spanner construction in thorup_zwick.hpp is the edge-set shadow of
// this structure; the oracle itself answers approximate distance queries in
// O(k) time with stretch 2k-1 from O(k n^{1+1/k}) expected space. It is the
// natural "reader's companion" to the paper's Section 2 (CLPR09, the prior
// art being improved, is built directly on it), and the library exposes it
// so downstream users get queryable distances, not just subgraphs.
//
// Structure: sampled levels A_0 ⊇ ... ⊇ A_{k-1}; for each vertex v and
// level i, the witness p_i(v) (nearest vertex of A_i) and the bunch
// B(v) = ∪_i { w ∈ A_i \ A_{i+1} : d(w,v) < d(v, A_{i+1}) } with exact
// distances d(w,v). Query walks the witness levels, alternating endpoints.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace ftspan {

class DistanceOracle {
 public:
  /// Preprocesses g (positive edge lengths) with parameter k >= 1.
  /// Faults, if given, exclude vertices entirely (queries about them return
  /// infinity).
  DistanceOracle(const Graph& g, std::size_t k, std::uint64_t seed,
                 const VertexSet* faults = nullptr);

  /// Approximate distance with stretch at most 2k-1 (infinity if u, v are
  /// disconnected or excluded).
  Weight query(Vertex u, Vertex v) const;

  std::size_t k() const { return k_; }

  /// Total number of (vertex, bunch-entry) pairs — the oracle's size.
  std::size_t size() const;

  /// The bunch of v (sorted by vertex id), for inspection/tests.
  std::vector<std::pair<Vertex, Weight>> bunch(Vertex v) const;

  /// d(v, A_i) and p_i(v) for inspection/tests.
  Weight witness_distance(Vertex v, std::size_t level) const {
    return witness_dist_[level][v];
  }
  Vertex witness(Vertex v, std::size_t level) const {
    return witness_[level][v];
  }

 private:
  /// One directed TZ witness walk (asymmetric in u, v).
  Weight walk(Vertex u, Vertex v) const;

  std::size_t k_;
  std::size_t n_;
  // Per level: nearest sampled vertex and its distance.
  std::vector<std::vector<Vertex>> witness_;
  std::vector<std::vector<Weight>> witness_dist_;
  // Bunches: per vertex, exact distances to bunch members.
  std::vector<std::unordered_map<Vertex, Weight>> bunch_;
};

}  // namespace ftspan
