#include "spanner/baswana_sen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ftspan {

namespace {

constexpr std::uint32_t kUnclustered = std::numeric_limits<std::uint32_t>::max();

}  // namespace

std::vector<EdgeId> baswana_sen_spanner(const Graph& g, std::size_t k,
                                        std::uint64_t seed,
                                        const VertexSet* faults) {
  if (k < 1) throw std::invalid_argument("baswana_sen_spanner: k must be >= 1");
  const std::size_t n = g.num_vertices();
  Rng rng(seed);

  auto alive = [&](Vertex v) { return faults == nullptr || !faults->contains(v); };

  std::vector<EdgeId> spanner;
  if (k == 1) {
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
      const Edge& e = g.edge(id);
      if (alive(e.u) && alive(e.v)) spanner.push_back(id);
    }
    return spanner;
  }

  // Work list of still-unsettled edges (alive endpoints only).
  std::vector<char> removed(g.num_edges(), 1);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& e = g.edge(id);
    if (alive(e.u) && alive(e.v)) removed[id] = 0;
  }

  // cluster[v]: id of v's cluster in the current clustering (kUnclustered if
  // v has left the clustering). Initially every alive vertex is a singleton
  // cluster whose id is the vertex itself.
  std::vector<std::uint32_t> cluster(n, kUnclustered);
  std::size_t alive_count = 0;
  for (Vertex v = 0; v < n; ++v)
    if (alive(v)) {
      cluster[v] = v;
      ++alive_count;
    }
  if (alive_count == 0) return spanner;

  const double p = std::pow(static_cast<double>(std::max<std::size_t>(alive_count, 2)),
                            -1.0 / static_cast<double>(k));

  std::vector<char> sampled(n, 0);
  // Per-vertex scratch: lightest surviving edge to each adjacent cluster,
  // kept in epoch-stamped flat arrays (cluster ids are vertex ids, so they
  // index directly). Compared to a hash map this allocates nothing per
  // vertex and iterates adjacent clusters in first-seen adjacency order —
  // deterministic and platform-independent.
  std::vector<std::uint32_t> seen(n, 0);
  std::vector<EdgeId> light_edge(n, kInvalidEdge);
  std::vector<std::uint32_t> adjacent;  // adjacent cluster ids, first-seen order
  adjacent.reserve(n);
  std::uint32_t scan = 0;

  auto lightest_edges_to_clusters =
      [&](Vertex v, const std::vector<std::uint32_t>& clus) {
        if (++scan == 0) {  // epoch wrap: stale stamps would read as current
          std::fill(seen.begin(), seen.end(), 0u);
          scan = 1;
        }
        adjacent.clear();
        for (const Arc& a : g.neighbors(v)) {
          if (removed[a.edge]) continue;
          const std::uint32_t c = clus[a.to];
          if (c == kUnclustered) continue;
          if (seen[c] != scan) {
            seen[c] = scan;
            light_edge[c] = a.edge;
            adjacent.push_back(c);
          } else if (g.edge(a.edge).w < g.edge(light_edge[c]).w) {
            light_edge[c] = a.edge;
          }
        }
      };

  auto drop_edges_to_cluster = [&](Vertex v, std::uint32_t c,
                                   const std::vector<std::uint32_t>& clus) {
    for (const Arc& a : g.neighbors(v))
      if (!removed[a.edge] && clus[a.to] == c) removed[a.edge] = 1;
  };

  // Phases 1 .. k-1: refine the clustering.
  for (std::size_t phase = 1; phase < k; ++phase) {
    // 1. Sample clusters. The final phase samples nothing (A_k = empty), so
    //    every vertex falls into the "no sampled neighbor" branch and we can
    //    simply skip sampling; phase k is handled after the loop instead.
    std::fill(sampled.begin(), sampled.end(), 0);
    for (Vertex c = 0; c < n; ++c) sampled[c] = rng.bernoulli(p) ? 1 : 0;

    const std::vector<std::uint32_t> prev = cluster;
    for (Vertex v = 0; v < n; ++v) {
      const std::uint32_t cv = prev[v];
      if (cv == kUnclustered) continue;  // already left the clustering
      if (sampled[cv]) continue;         // cluster survives; v stays in it

      lightest_edges_to_clusters(v, prev);

      // Lightest edge into any *sampled* adjacent cluster.
      EdgeId best = kInvalidEdge;
      std::uint32_t best_cluster = kUnclustered;
      for (const std::uint32_t c : adjacent) {
        if (!sampled[c]) continue;
        const EdgeId id = light_edge[c];
        if (best == kInvalidEdge || g.edge(id).w < g.edge(best).w) {
          best = id;
          best_cluster = c;
        }
      }

      if (best == kInvalidEdge) {
        // No sampled neighbor: keep one lightest edge per adjacent cluster,
        // discard the rest, and leave the clustering.
        for (const std::uint32_t c : adjacent) {
          spanner.push_back(light_edge[c]);
          drop_edges_to_cluster(v, c, prev);
        }
        cluster[v] = kUnclustered;
      } else {
        // Join the sampled cluster through `best`; also keep one edge to
        // every adjacent cluster strictly lighter than `best`.
        spanner.push_back(best);
        const Weight bw = g.edge(best).w;
        for (const std::uint32_t c : adjacent) {
          if (c == best_cluster) continue;
          const EdgeId id = light_edge[c];
          if (g.edge(id).w < bw) {
            spanner.push_back(id);
            drop_edges_to_cluster(v, c, prev);
          }
        }
        drop_edges_to_cluster(v, best_cluster, prev);
        cluster[v] = best_cluster;
      }
    }
  }

  // Phase k (vertex-cluster joining): every vertex keeps one lightest
  // surviving edge to each adjacent cluster of the final clustering.
  for (Vertex v = 0; v < n; ++v) {
    if (!alive(v)) continue;
    lightest_edges_to_clusters(v, cluster);
    for (const std::uint32_t c : adjacent) {
      spanner.push_back(light_edge[c]);
      drop_edges_to_cluster(v, c, cluster);
    }
  }

  std::sort(spanner.begin(), spanner.end());
  spanner.erase(std::unique(spanner.begin(), spanner.end()), spanner.end());
  return spanner;
}

Graph baswana_sen_spanner_graph(const Graph& g, std::size_t k,
                                std::uint64_t seed, const VertexSet* faults) {
  return g.edge_subgraph(baswana_sen_spanner(g, k, seed, faults));
}

}  // namespace ftspan
