// The Thorup–Zwick (2k-1)-spanner (from "Approximate distance oracles").
//
// Sample a hierarchy V = A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1} (A_k = ∅), each level
// keeping vertices with probability n^{-1/k}. For every center w in
// A_i \ A_{i+1}, its cluster is C(w) = { v : d(w,v) < d(v, A_{i+1}) }; the
// spanner is the union of the shortest-path trees of all clusters.
// Expected size O(k n^{1+1/k}), stretch 2k-1.
//
// This is the construction CLPR09 builds on; we use it both as a plain
// baseline and inside the ftspanner baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ftspan {

/// Returns edge ids (into g) of a (2k-1)-spanner of G \ faults. k >= 1.
std::vector<EdgeId> thorup_zwick_spanner(const Graph& g, std::size_t k,
                                         std::uint64_t seed,
                                         const VertexSet* faults = nullptr);

Graph thorup_zwick_spanner_graph(const Graph& g, std::size_t k,
                                 std::uint64_t seed,
                                 const VertexSet* faults = nullptr);

}  // namespace ftspan
