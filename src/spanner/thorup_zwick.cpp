#include "spanner/thorup_zwick.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace ftspan {

namespace {

struct QueueItem {
  Weight dist;
  Vertex v;
  bool operator>(const QueueItem& o) const { return dist > o.dist; }
};

using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

/// Multi-source Dijkstra: dist[v] = d(v, sources) on G \ faults.
std::vector<Weight> multi_source_distance(const Graph& g,
                                          const std::vector<Vertex>& sources,
                                          const VertexSet* faults) {
  std::vector<Weight> dist(g.num_vertices(), kInfiniteWeight);
  MinQueue q;
  for (Vertex s : sources) {
    if (faults != nullptr && faults->contains(s)) continue;
    dist[s] = 0;
    q.push({0, s});
  }
  while (!q.empty()) {
    const auto [d, v] = q.top();
    q.pop();
    if (d > dist[v]) continue;
    for (const Arc& a : g.neighbors(v)) {
      if (faults != nullptr && faults->contains(a.to)) continue;
      const Weight nd = d + a.w;
      if (nd < dist[a.to]) {
        dist[a.to] = nd;
        q.push({nd, a.to});
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<EdgeId> thorup_zwick_spanner(const Graph& g, std::size_t k,
                                         std::uint64_t seed,
                                         const VertexSet* faults) {
  if (k < 1)
    throw std::invalid_argument("thorup_zwick_spanner: k must be >= 1");
  const std::size_t n = g.num_vertices();
  Rng rng(seed);

  auto alive = [&](Vertex v) { return faults == nullptr || !faults->contains(v); };

  std::vector<EdgeId> spanner;
  if (k == 1) {
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
      const Edge& e = g.edge(id);
      if (alive(e.u) && alive(e.v)) spanner.push_back(id);
    }
    return spanner;
  }

  std::vector<Vertex> level;  // A_i as a vertex list
  for (Vertex v = 0; v < n; ++v)
    if (alive(v)) level.push_back(v);
  if (level.empty()) return spanner;

  const double p = std::pow(static_cast<double>(std::max<std::size_t>(level.size(), 2)),
                            -1.0 / static_cast<double>(k));

  std::vector<char> keep_edge(g.num_edges(), 0);

  for (std::size_t i = 0; i < k && !level.empty(); ++i) {
    // Sample A_{i+1} (empty at the last level).
    std::vector<Vertex> next;
    if (i + 1 < k)
      for (Vertex v : level)
        if (rng.bernoulli(p)) next.push_back(v);

    // d(v, A_{i+1}); infinity when A_{i+1} is empty.
    const std::vector<Weight> next_dist =
        next.empty() ? std::vector<Weight>(n, kInfiniteWeight)
                     : multi_source_distance(g, next, faults);

    // Centers of level i are A_i \ A_{i+1}.
    std::vector<char> in_next(n, 0);
    for (Vertex v : next) in_next[v] = 1;

    for (Vertex w : level) {
      if (in_next[w]) continue;
      // Truncated Dijkstra growing C(w) = { v : d(w,v) < d(v, A_{i+1}) };
      // keep the tree edges.
      std::vector<Weight> dist(n, kInfiniteWeight);
      std::vector<EdgeId> via(n, kInvalidEdge);
      MinQueue q;
      dist[w] = 0;
      q.push({0, w});
      while (!q.empty()) {
        const auto [d, v] = q.top();
        q.pop();
        if (d > dist[v]) continue;
        if (via[v] != kInvalidEdge) keep_edge[via[v]] = 1;
        for (const Arc& a : g.neighbors(v)) {
          if (!alive(a.to)) continue;
          const Weight nd = d + a.w;
          if (nd >= next_dist[a.to]) continue;  // outside the cluster
          if (nd < dist[a.to]) {
            dist[a.to] = nd;
            via[a.to] = a.edge;
            q.push({nd, a.to});
          }
        }
      }
    }

    level = std::move(next);
  }

  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (keep_edge[id]) spanner.push_back(id);
  return spanner;
}

Graph thorup_zwick_spanner_graph(const Graph& g, std::size_t k,
                                 std::uint64_t seed, const VertexSet* faults) {
  return g.edge_subgraph(thorup_zwick_spanner(g, k, seed, faults));
}

}  // namespace ftspan
