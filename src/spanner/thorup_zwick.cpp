#include "spanner/thorup_zwick.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/csr.hpp"
#include "graph/sp_engine.hpp"
#include "util/rng.hpp"

namespace ftspan {

std::vector<EdgeId> thorup_zwick_spanner(const Graph& g, std::size_t k,
                                         std::uint64_t seed,
                                         const VertexSet* faults) {
  if (k < 1)
    throw std::invalid_argument("thorup_zwick_spanner: k must be >= 1");
  const std::size_t n = g.num_vertices();
  Rng rng(seed);

  auto alive = [&](Vertex v) { return faults == nullptr || !faults->contains(v); };

  std::vector<EdgeId> spanner;
  if (k == 1) {
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
      const Edge& e = g.edge(id);
      if (alive(e.u) && alive(e.v)) spanner.push_back(id);
    }
    return spanner;
  }

  std::vector<Vertex> level;  // A_i as a vertex list
  for (Vertex v = 0; v < n; ++v)
    if (alive(v)) level.push_back(v);
  if (level.empty()) return spanner;

  const double p = std::pow(static_cast<double>(std::max<std::size_t>(level.size(), 2)),
                            -1.0 / static_cast<double>(k));

  // One CSR snapshot and one pooled engine serve every search below.
  const Csr csr(g);
  DijkstraEngine engine;
  std::vector<char> keep_edge(g.num_edges(), 0);
  std::vector<Weight> next_dist(n, kInfiniteWeight);

  for (std::size_t i = 0; i < k && !level.empty(); ++i) {
    // Sample A_{i+1} (empty at the last level).
    std::vector<Vertex> next;
    if (i + 1 < k)
      for (Vertex v : level)
        if (rng.bernoulli(p)) next.push_back(v);

    // d(v, A_{i+1}); infinity when A_{i+1} is empty.
    std::fill(next_dist.begin(), next_dist.end(), kInfiniteWeight);
    if (!next.empty()) {
      engine.run_multi(csr, next, faults);
      for (const Vertex v : engine.settle_order()) next_dist[v] = engine.dist(v);
    }

    // Centers of level i are A_i \ A_{i+1}.
    std::vector<char> in_next(n, 0);
    for (Vertex v : next) in_next[v] = 1;

    for (Vertex w : level) {
      if (in_next[w]) continue;
      // Truncated Dijkstra growing C(w) = { v : d(w,v) < d(v, A_{i+1}) };
      // keep the tree edges.
      engine.run_pruned(csr, w, faults, next_dist.data());
      for (const Vertex v : engine.settle_order())
        if (engine.via(v) != kInvalidEdge) keep_edge[engine.via(v)] = 1;
    }

    level = std::move(next);
  }

  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (keep_edge[id]) spanner.push_back(id);
  return spanner;
}

Graph thorup_zwick_spanner_graph(const Graph& g, std::size_t k,
                                 std::uint64_t seed, const VertexSet* faults) {
  return g.edge_subgraph(thorup_zwick_spanner(g, k, seed, faults));
}

}  // namespace ftspan
