// The randomized (2k-1)-spanner of Baswana and Sen (2007).
//
// k-1 clustering phases (each cluster survives with probability n^{-1/k})
// followed by a vertex-to-cluster joining phase. Expected size O(k n^{1+1/k});
// works for weighted graphs. This is the library's fast spanner baseline and
// the base algorithm distributed in src/local/dist_spanner (its phases are
// naturally local, which is what Theorem 2.3 / Corollary 2.4 need).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ftspan {

/// Returns edge ids (into g) of a (2k-1)-spanner of G \ faults.
/// Requires k >= 1. k = 1 returns all surviving edges.
std::vector<EdgeId> baswana_sen_spanner(const Graph& g, std::size_t k,
                                        std::uint64_t seed,
                                        const VertexSet* faults = nullptr);

Graph baswana_sen_spanner_graph(const Graph& g, std::size_t k,
                                std::uint64_t seed,
                                const VertexSet* faults = nullptr);

}  // namespace ftspan
