#include "spanner/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ftspan {

GreedyContext::GreedyContext(const Graph& g) : graph(&g) {
  // std::sort on ids, exactly as the historical per-call greedy did, so the
  // visit order of equal-weight edges — and therefore every greedy output —
  // is bit-identical to the pre-context implementation.
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&g](EdgeId a, EdgeId b) {
    return g.edge(a).w < g.edge(b).w;
  });
  sorted.reserve(order.size());
  for (const EdgeId id : order) {
    const Edge& e = g.edge(id);
    sorted.push_back({e.u, e.v, e.w, id});
    weights.observe(e.w);
  }
}

void GreedyWorkspace::configure_scratch(const WeightProfile& wp) {
  exact_sums_ = wp.exact_sums();
  const SpQueue q =
      select_sp_queue(policy_, wp.integral, wp.max_weight, bucket_max_);
  eng_.set_queue(q, wp.max_weight, bucket_max_);
  bwd_.set_queue(q, wp.max_weight, bucket_max_);
}

void GreedyWorkspace::reserve(std::size_t n, std::size_t max_edges) {
  if (head_.size() < n) head_.resize(n, kNone);
  pool_.reserve(2 * max_edges);
  touched_.reserve(n);
  kept_.reserve(max_edges);
  // Each directed arc of the scratch spanner causes at most one heap push.
  eng_.reserve(n, 2 * max_edges + 1);
  bwd_.reserve(n, 2 * max_edges + 1);
}

void GreedyWorkspace::reset(std::size_t n) {
  for (const Vertex v : touched_) head_[v] = kNone;
  touched_.clear();
  pool_.clear();
  if (head_.size() < n) head_.resize(n, kNone);
}

void GreedyWorkspace::add_edge(Vertex u, Vertex v, Weight w) {
  // Slot indices are 32-bit with kNone reserved; refuse before they wrap
  // (same policy as the Graph/Csr 32-bit guards).
  if (pool_.size() + 2 > kNone)
    throw std::length_error(
        "GreedyWorkspace: edge count exceeds the 32-bit slot space");
  if (head_[u] == kNone) touched_.push_back(u);
  if (head_[v] == kNone) touched_.push_back(v);
  pool_.push_back({w, v, head_[u]});
  head_[u] = static_cast<std::uint32_t>(pool_.size() - 1);
  pool_.push_back({w, u, head_[v]});
  head_[v] = static_cast<std::uint32_t>(pool_.size() - 1);
}

Weight GreedyWorkspace::bounded_pair(Vertex s, Vertex t,
                                     const VertexSet* faults, Weight bound) {
  // An endpoint with no incident scratch edge cannot reach anything: the
  // common case early in every greedy pass, answered without a search.
  if (head_[s] == kNone || head_[t] == kNone)
    return s == t ? 0 : kInfiniteWeight;

  const auto visit = [this](Vertex v, auto&& relax) {
    for (std::uint32_t i = head_[v]; i != kNone; i = pool_[i].next)
      relax(pool_[i].to, pool_[i].w, kInvalidEdge);
  };

  // Bidirectional fast path: two radius-bound/2 balls instead of one
  // radius-bound ball (the bulk of the engine's speedup on these queries).
  // It sums each path in two halves, so near the bound the result can sit
  // an ulp away from the historical forward sum and flip the caller's
  // "d > k*w" decision. Any result inside a relative tie window around the
  // bound is therefore re-derived by the exact forward-accumulating search,
  // which reproduces the pre-engine pair_distance bit-for-bit. The window
  // (1e-8) exceeds the worst accumulated rounding (~ path hops * 2^-52,
  // relative) by orders of magnitude for any graph this repo handles, and
  // the bidirectional prune runs at bound * (1 + 2 * window) so a path that
  // is borderline-reachable under the true bound is never clipped before
  // the window test can send it to the exact search.
  constexpr Weight kTieWindow = 1e-8;
  const Weight fast = DijkstraEngine::bidirectional_bounded_pair(
      eng_, bwd_, head_.size(), s, t, faults, bound * (1 + 2 * kTieWindow),
      visit);
  // All-integer weights (the common unweighted case): every path sum is
  // exact in any summation order, so `fast` already equals the historical
  // forward sum bit-for-bit and no tie is ever ambiguous. The flag comes
  // from the graph's hoisted WeightProfile (configure_scratch) — computed
  // once per graph instead of per added edge.
  if (exact_sums_) return fast;
  if (fast > bound * (1 + kTieWindow) || fast < bound * (1 - kTieWindow))
    return fast;

  // Tie region: the historical summation order is authoritative.
  const Vertex src[1] = {s};
  const Vertex tgt[1] = {t};
  eng_.run_visit(head_.size(), {src, 1}, faults, bound, {tgt, 1}, nullptr,
                 visit);
  return eng_.dist(t);
}

std::span<const EdgeId> GreedyWorkspace::run(const GreedyContext& ctx,
                                             double k,
                                             const VertexSet* faults) {
  if (k < 1.0) throw std::invalid_argument("greedy_spanner: k must be >= 1");
  const Graph& g = *ctx.graph;
  reserve(g.num_vertices(), g.num_edges());
  configure_scratch(ctx.weights);
  reset(g.num_vertices());
  kept_.clear();
  for (const GreedyContext::OrderedEdge& e : ctx.sorted) {
    if (faults != nullptr && (faults->contains(e.u) || faults->contains(e.v)))
      continue;
    // Distances above k * w(e) are irrelevant, so bound the search; the
    // slack keeps floating-point ties ("exactly k*w") counted as reachable.
    const Weight bound = k * e.w * (1 + kStretchSlack);
    if (bounded_pair(e.u, e.v, faults, bound) > k * e.w) {
      add_edge(e.u, e.v, e.w);
      kept_.push_back(e.id);
    }
  }
  return kept_;
}

std::vector<EdgeId> greedy_spanner(const Graph& g, double k,
                                   const VertexSet* faults) {
  const GreedyContext ctx(g);
  GreedyWorkspace ws;
  const auto kept = ws.run(ctx, k, faults);
  return {kept.begin(), kept.end()};
}

Graph greedy_spanner_graph(const Graph& g, double k, const VertexSet* faults) {
  return g.edge_subgraph(greedy_spanner(g, k, faults));
}

double greedy_size_bound(std::size_t n, double k) {
  return std::pow(static_cast<double>(n), 1.0 + 2.0 / (k + 1.0));
}

}  // namespace ftspan
