#include "spanner/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/shortest_paths.hpp"

namespace ftspan {

std::vector<EdgeId> greedy_spanner(const Graph& g, double k,
                                   const VertexSet* faults) {
  if (k < 1.0) throw std::invalid_argument("greedy_spanner: k must be >= 1");

  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&g](EdgeId a, EdgeId b) {
    return g.edge(a).w < g.edge(b).w;
  });

  Graph h(g.num_vertices());
  std::vector<EdgeId> kept;
  for (EdgeId id : order) {
    const Edge& e = g.edge(id);
    if (faults != nullptr && (faults->contains(e.u) || faults->contains(e.v)))
      continue;
    // Distances above k * w(e) are irrelevant, so bound the search. A tiny
    // slack keeps floating-point ties ("exactly k*w") counted as reachable.
    const Weight bound = k * e.w * (1 + 1e-12);
    const Weight d = pair_distance(h, e.u, e.v, faults, bound);
    if (d > k * e.w) {
      h.add_edge(e.u, e.v, e.w);
      kept.push_back(id);
    }
  }
  return kept;
}

Graph greedy_spanner_graph(const Graph& g, double k, const VertexSet* faults) {
  return g.edge_subgraph(greedy_spanner(g, k, faults));
}

double greedy_size_bound(std::size_t n, double k) {
  return std::pow(static_cast<double>(n), 1.0 + 2.0 / (k + 1.0));
}

}  // namespace ftspan
