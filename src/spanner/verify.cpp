#include "spanner/verify.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/shortest_paths.hpp"
#include "util/rng.hpp"

namespace ftspan {

double max_edge_stretch(const Graph& g, const Graph& h,
                        const VertexSet* faults) {
  if (g.num_vertices() != h.num_vertices())
    throw std::invalid_argument("max_edge_stretch: vertex count mismatch");

  // Group surviving edges by endpoint so each vertex needs one Dijkstra in
  // each of G and H.
  double worst = 1.0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (faults != nullptr && faults->contains(u)) continue;
    bool has_relevant_edge = false;
    for (const Arc& a : g.neighbors(u)) {
      if (a.to < u) continue;  // each edge once
      if (faults != nullptr && faults->contains(a.to)) continue;
      has_relevant_edge = true;
      break;
    }
    if (!has_relevant_edge) continue;

    const auto dg = dijkstra(g, u, faults);
    const auto dh = dijkstra(h, u, faults);
    for (const Arc& a : g.neighbors(u)) {
      if (a.to < u) continue;
      if (faults != nullptr && faults->contains(a.to)) continue;
      if (!dg.reachable(a.to)) continue;  // disconnected in G \ F: exempt
      if (!dh.reachable(a.to)) return kInfiniteWeight;
      if (dg.dist[a.to] <= 0) continue;
      worst = std::max(worst, dh.dist[a.to] / dg.dist[a.to]);
    }
  }
  return worst;
}

bool is_k_spanner(const Graph& g, const Graph& h, double k,
                  const VertexSet* faults) {
  return max_edge_stretch(g, h, faults) <= k * (1 + 1e-9);
}

double sampled_pair_stretch(const Graph& g, const Graph& h,
                            std::size_t samples, std::uint64_t seed,
                            const VertexSet* faults) {
  const std::size_t n = g.num_vertices();
  if (n < 2) return 1.0;
  Rng rng(seed);
  double worst = 1.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const Vertex u = static_cast<Vertex>(rng.uniform_index(n));
    if (faults != nullptr && faults->contains(u)) continue;
    const auto dg = dijkstra(g, u, faults);
    const auto dh = dijkstra(h, u, faults);
    const Vertex v = static_cast<Vertex>(rng.uniform_index(n));
    if (v == u) continue;
    if (faults != nullptr && faults->contains(v)) continue;
    if (!dg.reachable(v) || dg.dist[v] <= 0) continue;
    if (!dh.reachable(v)) return kInfiniteWeight;
    worst = std::max(worst, dh.dist[v] / dg.dist[v]);
  }
  return worst;
}

}  // namespace ftspan
