#include "spanner/verify.hpp"

#include <algorithm>

#include "graph/sp_engine.hpp"
#include "util/rng.hpp"

namespace ftspan {

double max_edge_stretch(const Graph& g, const Graph& h,
                        const VertexSet* faults) {
  // k only affects FtCheckResult::valid, which this entry point discards.
  return StretchOracle(g, h, /*k=*/1.0).max_stretch(faults);
}

FtCheckResult max_edge_stretch_sets(const Graph& g, const Graph& h, double k,
                                    const std::vector<VertexSet>& fault_sets,
                                    const FtCheckOptions& options) {
  return StretchOracle(g, h, k).evaluate_sets(fault_sets, options);
}

bool is_k_spanner(const Graph& g, const Graph& h, double k,
                  const VertexSet* faults) {
  return max_edge_stretch(g, h, faults) <= k * (1 + kStretchCheckTolerance);
}

double sampled_pair_stretch(const Graph& g, const Graph& h,
                            std::size_t samples, std::uint64_t seed,
                            const VertexSet* faults) {
  const std::size_t n = g.num_vertices();
  if (n < 2) return 1.0;
  Rng rng(seed);
  DijkstraEngine dg, dh;
  double worst = 1.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const Vertex u = static_cast<Vertex>(rng.uniform_index(n));
    if (faults != nullptr && faults->contains(u)) continue;
    const Vertex v = static_cast<Vertex>(rng.uniform_index(n));
    if (v == u) continue;
    if (faults != nullptr && faults->contains(v)) continue;
    const Vertex target[1] = {v};
    dg.run(g, u, faults, std::span<const Vertex>(target, 1));
    if (!dg.reachable(v) || dg.dist(v) <= 0) continue;
    dh.run(h, u, faults, std::span<const Vertex>(target, 1));
    if (!dh.reachable(v)) return kInfiniteWeight;
    worst = std::max(worst, dh.dist(v) / dg.dist(v));
  }
  return worst;
}

}  // namespace ftspan
