// The greedy k-spanner of Althöfer, Das, Dobkin, Joseph, and Soares (1993).
//
// Process edges by non-decreasing length; keep an edge iff the spanner built
// so far does not already connect its endpoints within k times its length.
// The result is a k-spanner with girth > k + 1, hence size O(n^{1 + 2/(k+1)})
// for odd k — the base construction behind Corollary 2.2 of the paper.
//
// The conversion of Theorem 2.1 runs this construction Θ(r³ log n) times on
// the same graph under different fault masks, so the repeated-run state is
// split out explicitly:
//
//   GreedyContext    per-graph, immutable: the edge-weight sort, computed
//                    once and shared by every iteration (and every worker).
//   GreedyWorkspace  per-thread, mutable: the incrementally grown spanner
//                    adjacency, the pooled Dijkstra engine, and the output
//                    buffer. Reset between runs in O(kept edges); performs
//                    zero heap allocations after its first run on a context.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/engine_policy.hpp"
#include "graph/graph.hpp"
#include "graph/sp_engine.hpp"

namespace ftspan {

/// Immutable per-graph context for repeated greedy runs.
struct GreedyContext {
  explicit GreedyContext(const Graph& g);

  /// An edge in the weight-sorted scan: the greedy loop walks these
  /// sequentially, so endpoints/weight/id arrive in one cache line instead
  /// of a random load into the graph's edge array per candidate.
  struct OrderedEdge {
    Vertex u, v;
    Weight w;
    EdgeId id;
  };

  const Graph* graph;
  std::vector<OrderedEdge> sorted;  ///< edges by non-decreasing weight
  WeightProfile weights;            ///< hoisted weight facts (once per graph)
};

/// Per-thread workspace: never share one across concurrent callers.
class GreedyWorkspace {
 public:
  /// The greedy k-spanner of ctx.graph \ faults. The returned span points
  /// into the workspace and is valid until the next call.
  std::span<const EdgeId> run(const GreedyContext& ctx, double k,
                              const VertexSet* faults = nullptr);

  // Lower-level interface for variants that interleave their own filtering
  // with the greedy loop (e.g. the layered baseline and the edge-fault
  // conversion): an incrementally grown scratch graph plus bounded
  // point-to-point queries against it.

  /// Clears the scratch spanner back to n isolated vertices, in time
  /// proportional to the number of edges added since the last reset.
  void reset(std::size_t n);
  /// Adds {u, v} with length w to the scratch spanner.
  void add_edge(Vertex u, Vertex v, Weight w);
  /// d(s, t) on the current scratch spanner minus `faults`, searching no
  /// farther than `bound`; kInfiniteWeight if not reachable within it.
  /// Intended for threshold decisions of the form "d > bound-ish": away
  /// from `bound` the value may carry bidirectional-summation rounding (an
  /// ulp or so), but within a relative tie window of `bound` it is exactly
  /// the historical forward-Dijkstra value, so comparisons against
  /// thresholds near `bound` are bit-stable (see the .cpp).
  Weight bounded_pair(Vertex s, Vertex t, const VertexSet* faults,
                      Weight bound);
  /// Pre-sizes every buffer for a graph with n vertices and up to max_edges
  /// scratch edges, making even the first run allocation-free.
  void reserve(std::size_t n, std::size_t max_edges);

  /// Engine policy for this workspace's searches; kAuto picks the bucket
  /// queue on bounded-integer graphs up to bucket_max and delta-stepping
  /// above it. Takes effect at the next configure_scratch (run() configures
  /// from its context automatically).
  void set_engine(SpEnginePolicy policy,
                  Weight bucket_max = kMaxBucketWeight) {
    policy_ = policy;
    bucket_max_ = bucket_max;
  }

  /// Binds the workspace to a graph's hoisted weight profile: resolves the
  /// engine policy against it and enables the exact-sums fast path when
  /// every scratch path length is exactly representable. Scratch edges are
  /// always a subset of the profiled graph's edges, so the profile is an
  /// upper bound on anything add_edge will see. Callers driving the
  /// lower-level reset/add_edge/bounded_pair interface directly must call
  /// this once per graph; the default (unconfigured) state is the
  /// conservative heap + tie-window-fallback path, which is correct on any
  /// weights.
  void configure_scratch(const WeightProfile& wp);

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct HalfArc {
    Weight w;
    Vertex to;
    std::uint32_t next;  ///< next slot in this vertex's list, or kNone
  };  // 16 bytes: weight first so the struct packs without padding

  DijkstraEngine eng_, bwd_;         ///< forward/exact engine + backward half
  SpEnginePolicy policy_ = SpEnginePolicy::kAuto;
  Weight bucket_max_ = kMaxBucketWeight;
  bool exact_sums_ = false;          ///< from the profile; gates the tie window
  std::vector<std::uint32_t> head_;  ///< per-vertex first slot, or kNone
  std::vector<HalfArc> pool_;        ///< two slots per added edge
  std::vector<Vertex> touched_;      ///< vertices whose head_ is live
  std::vector<EdgeId> kept_;         ///< output buffer for run()
};

/// Returns the ids (into g) of the greedy k-spanner's edges, computed on
/// G \ faults (edges with a failed endpoint are skipped). Requires k >= 1.
/// One-shot convenience over GreedyContext + GreedyWorkspace.
std::vector<EdgeId> greedy_spanner(const Graph& g, double k,
                                   const VertexSet* faults = nullptr);

/// Convenience: the greedy spanner as a Graph (same vertex ids as g).
Graph greedy_spanner_graph(const Graph& g, double k,
                           const VertexSet* faults = nullptr);

/// The Althöfer et al. size bound O(n^{1 + 2/(k+1)}) for odd k; used by the
/// experiment harness to normalize measured sizes.
double greedy_size_bound(std::size_t n, double k);

}  // namespace ftspan
