// The greedy k-spanner of Althöfer, Das, Dobkin, Joseph, and Soares (1993).
//
// Process edges by non-decreasing length; keep an edge iff the spanner built
// so far does not already connect its endpoints within k times its length.
// The result is a k-spanner with girth > k + 1, hence size O(n^{1 + 2/(k+1)})
// for odd k — the base construction behind Corollary 2.2 of the paper.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace ftspan {

/// Returns the ids (into g) of the greedy k-spanner's edges, computed on
/// G \ faults (edges with a failed endpoint are skipped). Requires k >= 1.
std::vector<EdgeId> greedy_spanner(const Graph& g, double k,
                                   const VertexSet* faults = nullptr);

/// Convenience: the greedy spanner as a Graph (same vertex ids as g).
Graph greedy_spanner_graph(const Graph& g, double k,
                           const VertexSet* faults = nullptr);

/// The Althöfer et al. size bound O(n^{1 + 2/(k+1)}) for odd k; used by the
/// experiment harness to normalize measured sizes.
double greedy_size_bound(std::size_t n, double k);

}  // namespace ftspan
