// Stretch verification for (plain) spanners — wrappers over the batched
// StretchOracle (src/validate/stretch_oracle.hpp).
//
// It suffices to check the spanner condition over the *edges* of G: if every
// edge (u,v) of G \ F satisfies d_{H\F}(u,v) <= k * d_{G\F}(u,v), then every
// pair does (each edge of a shortest path is stretched by at most k).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "validate/stretch_oracle.hpp"

namespace ftspan {

/// Max over edges (u,v) of G \ faults of d_{H\F}(u,v) / d_{G\F}(u,v).
/// Returns infinity if H fails to connect the endpoints of some surviving
/// G-edge whose endpoints are connected in G \ F; returns 1.0 when G \ F has
/// no edges. H must have the same vertex count as G.
double max_edge_stretch(const Graph& g, const Graph& h,
                        const VertexSet* faults = nullptr);

/// Batched variant: worst stretch and witness over a list of fault sets,
/// fanned across options.threads workers via the StretchOracle. `k` is the
/// stretch bound judged by the returned FtCheckResult::valid.
FtCheckResult max_edge_stretch_sets(const Graph& g, const Graph& h, double k,
                                    const std::vector<VertexSet>& fault_sets,
                                    const FtCheckOptions& options = {});

/// True iff h is a k-spanner of g (restricted to G \ faults).
bool is_k_spanner(const Graph& g, const Graph& h, double k,
                  const VertexSet* faults = nullptr);

/// Stretch over `samples` random vertex pairs (connected in G \ F); returns
/// the maximum observed ratio. Cheap spot check for large graphs.
double sampled_pair_stretch(const Graph& g, const Graph& h,
                            std::size_t samples, std::uint64_t seed,
                            const VertexSet* faults = nullptr);

}  // namespace ftspan
