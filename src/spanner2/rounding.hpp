// Algorithm 1 (threshold rounding) and the Theorem 3.3 approximation driver.
//
// Rounding: draw an independent threshold T_v ∈ [0,1) per vertex and keep
// edge (u,v) iff min(T_u, T_v) <= α · x_{(u,v)}, with α = C ln n. Theorem 3.3
// shows this yields a valid r-fault-tolerant 2-spanner w.h.p. at expected
// cost O(log n) · LP*. The driver retries the rounding until the exact
// Lemma 3.1 check passes (a Las Vegas loop), optionally finishing with the
// greedy repair for stray unsatisfied edges at small α.
#pragma once

#include <cstdint>
#include <optional>

#include "spanner2/formulation.hpp"

namespace ftspan {

struct RoundingOptions {
  /// α = alpha_constant * ln(max(n, 2)), unless `alpha` overrides it.
  double alpha_constant = 1.0;
  std::optional<double> alpha;

  /// Rounding attempts before falling back to repair (each attempt redraws
  /// all thresholds).
  std::size_t max_attempts = 25;

  /// Run greedy_repair on the final attempt if still invalid.
  bool repair = true;

  CuttingPlaneOptions lp;
};

struct TwoSpannerResult {
  std::vector<char> in_spanner;  ///< per-edge membership
  double cost = 0.0;
  double lp_value = 0.0;         ///< LP (4) optimum (lower bound on OPT)
  double alpha = 0.0;
  std::size_t attempts = 0;      ///< rounding attempts used
  std::size_t repaired_edges = 0;
  bool valid = false;
  RelaxationResult relaxation;   ///< LP solve details
};

/// One pass of Algorithm 1 over fractional capacities x (per edge id).
std::vector<char> threshold_round(const Digraph& g,
                                  const std::vector<double>& x, double alpha,
                                  std::uint64_t seed);

/// Theorem 3.3: solve LP (4), round, verify, retry/repair.
TwoSpannerResult approx_ft_2spanner(const Digraph& g, std::size_t r,
                                    std::uint64_t seed,
                                    const RoundingOptions& options = {});

}  // namespace ftspan
