// Exact validity checking and repair for r-fault-tolerant 2-spanners.
//
// Lemma 3.1 gives a polynomial characterization: H ⊆ G is an r-fault-
// tolerant 2-spanner of G iff every edge (u,v) of G is either in H or has at
// least r+1 length-2 u→v paths in H. All checks here are exact.
//
// Spanner membership is represented as a per-edge byte vector `in_spanner`
// indexed by the Digraph's edge ids.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "validate/stretch_oracle.hpp"

namespace ftspan {

/// Number of length-2 u→v paths whose both arcs are in the spanner.
std::size_t spanner_two_paths(const Digraph& g,
                              const std::vector<char>& in_spanner, Vertex u,
                              Vertex v);

/// Lemma 3.1: edge (u,v) is satisfied iff it is in the spanner or has
/// >= r+1 spanner length-2 paths.
bool edge_satisfied(const Digraph& g, const std::vector<char>& in_spanner,
                    EdgeId id, std::size_t r);

/// Exact r-fault-tolerant 2-spanner check (Lemma 3.1 over all edges).
bool is_ft_2spanner(const Digraph& g, const std::vector<char>& in_spanner,
                    std::size_t r);

/// Ids of unsatisfied edges (empty iff valid).
std::vector<EdgeId> unsatisfied_edges(const Digraph& g,
                                      const std::vector<char>& in_spanner,
                                      std::size_t r);

/// Total cost of the spanner edges.
double spanner_cost(const Digraph& g, const std::vector<char>& in_spanner);

/// Definition-level check used to validate Lemma 3.1 itself in tests:
/// enumerates every fault set |F| <= r and verifies the 2-spanner condition
/// on G \ F directly, via a unit-cost DiStretchOracle exact check fanned
/// across options.threads workers. Throws (reporting n, r, and the computed
/// count) if there are more than options.max_fault_sets sets.
bool is_ft_2spanner_by_definition(const Digraph& g,
                                  const std::vector<char>& in_spanner,
                                  std::size_t r,
                                  const FtCheckOptions& options);
bool is_ft_2spanner_by_definition(const Digraph& g,
                                  const std::vector<char>& in_spanner,
                                  std::size_t r,
                                  std::size_t max_fault_sets = 2'000'000);

/// Greedy repair: while some edge (u,v) is unsatisfied, apply the cheaper of
/// (a) adding (u,v) itself, or (b) completing enough missing 2-paths to
/// reach r+1. Returns the number of edges added; guarantees validity.
std::size_t greedy_repair(const Digraph& g, std::vector<char>& in_spanner,
                          std::size_t r);

/// Standalone greedy heuristic: start from the empty spanner and repair.
/// (Used as a sanity comparator in benches; no approximation guarantee.)
std::vector<char> greedy_ft_2spanner(const Digraph& g, std::size_t r);

}  // namespace ftspan
