#include "spanner2/verify2.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "ftspanner/validate.hpp"  // count_fault_sets

namespace ftspan {

std::size_t spanner_two_paths(const Digraph& g,
                              const std::vector<char>& in_spanner, Vertex u,
                              Vertex v) {
  std::size_t count = 0;
  for (const Arc& a : g.out_neighbors(u)) {
    if (a.to == v || !in_spanner[a.edge]) continue;
    const auto second = g.edge_id(a.to, v);
    if (second && in_spanner[*second]) ++count;
  }
  return count;
}

bool edge_satisfied(const Digraph& g, const std::vector<char>& in_spanner,
                    EdgeId id, std::size_t r) {
  if (in_spanner[id]) return true;
  const DiEdge& e = g.edge(id);
  return spanner_two_paths(g, in_spanner, e.u, e.v) >= r + 1;
}

bool is_ft_2spanner(const Digraph& g, const std::vector<char>& in_spanner,
                    std::size_t r) {
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (!edge_satisfied(g, in_spanner, id, r)) return false;
  return true;
}

std::vector<EdgeId> unsatisfied_edges(const Digraph& g,
                                      const std::vector<char>& in_spanner,
                                      std::size_t r) {
  std::vector<EdgeId> out;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (!edge_satisfied(g, in_spanner, id, r)) out.push_back(id);
  return out;
}

double spanner_cost(const Digraph& g, const std::vector<char>& in_spanner) {
  double c = 0;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (in_spanner[id]) c += g.edge(id).w;
  return c;
}

bool is_ft_2spanner_by_definition(const Digraph& g,
                                  const std::vector<char>& in_spanner,
                                  std::size_t r,
                                  const FtCheckOptions& options) {
  const std::size_t n = g.num_vertices();
  const std::size_t count = count_fault_sets(n, r);
  if (count > options.max_fault_sets)
    throw_fault_set_overflow("is_ft_2spanner_by_definition", n, r, count,
                             options.max_fault_sets);

  // The 2-spanner condition on G \ F demands, for each surviving edge
  // (u,v), a spanner u→v path of length <= 2 in *unit* lengths (costs only
  // price the objective), i.e. the edge itself or a surviving 2-path. That
  // is exactly a stretch-2 oracle check over unit-cost copies.
  Digraph unit_g(n);
  Digraph unit_h(n);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const DiEdge& e = g.edge(id);
    unit_g.add_edge(e.u, e.v, 1.0);
    if (in_spanner[id]) unit_h.add_edge(e.u, e.v, 1.0);
  }
  return DiStretchOracle(unit_g, unit_h, 2.0).check_exact(r, options).valid;
}

bool is_ft_2spanner_by_definition(const Digraph& g,
                                  const std::vector<char>& in_spanner,
                                  std::size_t r,
                                  std::size_t max_fault_sets) {
  FtCheckOptions options;
  options.max_fault_sets = max_fault_sets;
  return is_ft_2spanner_by_definition(g, in_spanner, r, options);
}

namespace {

/// Cost of completing the 2-path u -> mid -> v (cost of arcs not yet in the
/// spanner), or infinity if some arc is missing from G.
double completion_cost(const Digraph& g, const std::vector<char>& in_spanner,
                       Vertex u, Vertex mid, Vertex v) {
  const auto first = g.edge_id(u, mid);
  const auto second = g.edge_id(mid, v);
  if (!first || !second) return std::numeric_limits<double>::infinity();
  double c = 0;
  if (!in_spanner[*first]) c += g.edge(*first).w;
  if (!in_spanner[*second]) c += g.edge(*second).w;
  return c;
}

}  // namespace

std::size_t greedy_repair(const Digraph& g, std::vector<char>& in_spanner,
                          std::size_t r) {
  std::size_t added = 0;
  // Fixing one edge only ever adds arcs, which cannot unsatisfy another
  // edge, so a single pass over edges suffices.
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (edge_satisfied(g, in_spanner, id, r)) continue;
    const DiEdge& e = g.edge(id);

    // Option (b): complete the cheapest *incomplete* 2-paths until r+1
    // spanner paths exist. Every midpoint in G is completable; paths already
    // complete in the spanner are counted by `have`.
    const std::vector<Vertex> mids = g.two_path_midpoints(e.u, e.v);
    const std::size_t have = spanner_two_paths(g, in_spanner, e.u, e.v);
    const std::size_t need = r + 1 - have;  // > 0 since unsatisfied

    std::vector<std::pair<double, Vertex>> incomplete;  // (cost, midpoint)
    for (Vertex mid : mids) {
      const double c = completion_cost(g, in_spanner, e.u, mid, e.v);
      if (c > 0) incomplete.emplace_back(c, mid);
    }
    std::sort(incomplete.begin(), incomplete.end());

    const bool paths_possible = incomplete.size() >= need;
    double path_cost = 0;
    if (paths_possible)
      for (std::size_t i = 0; i < need; ++i) path_cost += incomplete[i].first;

    if (!paths_possible || e.w <= path_cost) {
      in_spanner[id] = 1;
      ++added;
    } else {
      for (std::size_t i = 0; i < need; ++i) {
        const Vertex mid = incomplete[i].second;
        const auto first = g.edge_id(e.u, mid);
        const auto second = g.edge_id(mid, e.v);
        if (!in_spanner[*first]) {
          in_spanner[*first] = 1;
          ++added;
        }
        if (!in_spanner[*second]) {
          in_spanner[*second] = 1;
          ++added;
        }
      }
    }
  }
  return added;
}

std::vector<char> greedy_ft_2spanner(const Digraph& g, std::size_t r) {
  std::vector<char> in_spanner(g.num_edges(), 0);
  greedy_repair(g, in_spanner, r);
  return in_spanner;
}

}  // namespace ftspan
