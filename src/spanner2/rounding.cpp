#include "spanner2/rounding.hpp"

#include <cmath>

#include "spanner2/verify2.hpp"
#include "util/rng.hpp"

namespace ftspan {

std::vector<char> threshold_round(const Digraph& g,
                                  const std::vector<double>& x, double alpha,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> threshold(g.num_vertices());
  for (double& t : threshold) t = rng.uniform();

  std::vector<char> in_spanner(g.num_edges(), 0);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const DiEdge& e = g.edge(id);
    if (std::min(threshold[e.u], threshold[e.v]) <= alpha * x[id])
      in_spanner[id] = 1;
  }
  return in_spanner;
}

TwoSpannerResult approx_ft_2spanner(const Digraph& g, std::size_t r,
                                    std::uint64_t seed,
                                    const RoundingOptions& options) {
  TwoSpannerResult out;
  out.relaxation = solve_lp4(g, r, options.lp);
  if (out.relaxation.status != LpStatus::kOptimal) return out;
  out.lp_value = out.relaxation.value;

  const std::size_t n = g.num_vertices();
  out.alpha = options.alpha.value_or(
      options.alpha_constant *
      std::log(static_cast<double>(std::max<std::size_t>(n, 2))));

  Rng rng(seed);
  std::vector<char> best;
  double best_cost = kInfiniteWeight;
  for (out.attempts = 1; out.attempts <= options.max_attempts; ++out.attempts) {
    std::vector<char> cand = threshold_round(g, out.relaxation.x, out.alpha, rng());
    if (!is_ft_2spanner(g, cand, r)) continue;
    const double c = spanner_cost(g, cand);
    if (c < best_cost) {
      best_cost = c;
      best = std::move(cand);
    }
    break;  // first valid rounding wins (Las Vegas); cost bound is in expectation
  }

  if (best.empty()) {
    // No valid draw: take one more rounding and repair it (keeps the output
    // valid deterministically; the repair cost is reported separately).
    best = threshold_round(g, out.relaxation.x, out.alpha, rng());
    if (options.repair) {
      out.repaired_edges = greedy_repair(g, best, r);
      best_cost = spanner_cost(g, best);
    } else {
      best_cost = spanner_cost(g, best);
    }
  }

  out.in_spanner = std::move(best);
  out.cost = best_cost;
  out.valid = is_ft_2spanner(g, out.in_spanner, r);
  return out;
}

}  // namespace ftspan
