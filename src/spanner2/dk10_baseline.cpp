#include "spanner2/dk10_baseline.hpp"

#include <cmath>

#include "spanner2/verify2.hpp"
#include "util/rng.hpp"

namespace ftspan {

TwoSpannerResult dk10_ft_2spanner(const Digraph& g, std::size_t r,
                                  std::uint64_t seed,
                                  const RoundingOptions& options) {
  TwoSpannerResult out;
  out.relaxation = solve_lp3(g, r, options.lp.simplex);
  if (out.relaxation.status != LpStatus::kOptimal) return out;
  out.lp_value = out.relaxation.value;

  const std::size_t n = g.num_vertices();
  out.alpha = options.alpha.value_or(
      options.alpha_constant * static_cast<double>(r + 1) *
      std::log(static_cast<double>(std::max<std::size_t>(n, 2))));

  Rng rng(seed);
  std::vector<char> best;
  double best_cost = kInfiniteWeight;
  for (out.attempts = 1; out.attempts <= options.max_attempts; ++out.attempts) {
    std::vector<char> cand = threshold_round(g, out.relaxation.x, out.alpha, rng());
    if (!is_ft_2spanner(g, cand, r)) continue;
    best_cost = spanner_cost(g, cand);
    best = std::move(cand);
    break;
  }

  if (best.empty()) {
    best = threshold_round(g, out.relaxation.x, out.alpha, rng());
    if (options.repair) out.repaired_edges = greedy_repair(g, best, r);
    best_cost = spanner_cost(g, best);
  }

  out.in_spanner = std::move(best);
  out.cost = best_cost;
  out.valid = is_ft_2spanner(g, out.in_spanner, r);
  return out;
}

}  // namespace ftspan
