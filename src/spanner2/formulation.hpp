// LP formulations for Minimum Cost r-Fault-Tolerant 2-Spanner (Section 3).
//
// LP (3): capacity variables x_e, per-(u,v) path-flow variables f_P, the
//   capacity constraints f_P <= x_e for both arcs of each 2-path, and the
//   base covering constraint (r+1) x_{(u,v)} + Σ_P f_P >= r+1.
// LP (4): LP (3) plus the knapsack-cover inequalities
//   (r+1-|W|) x_{(u,v)} + Σ_{P ∉ W} f_P >= r+1-|W|  for all W ⊆ P_{u,v},
//   |W| <= r — added lazily via the Lemma 3.2 separation oracle (for each
//   edge it suffices to check W = the j paths of largest flow, j = 1..r).
// LP (2): the DK10 per-fault-set flow relaxation, materialized explicitly
//   (one flow system per fault set); exponential size, tiny instances only.
//   Used to reproduce the Section 3.1 integrality-gap discussion.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "lp/cutting_plane.hpp"
#include "lp/model.hpp"

namespace ftspan {

/// One length-2 path variable: u -> mid -> v for the G-edge (u,v).
struct PathVar {
  EdgeId uv = kInvalidEdge;      ///< the spanned edge (u,v)
  Vertex mid = kInvalidVertex;   ///< path midpoint z
  EdgeId first = kInvalidEdge;   ///< arc (u, z)
  EdgeId second = kInvalidEdge;  ///< arc (z, v)
  int var = -1;                  ///< f_P's LP variable index
};

/// LP (3)/(4) instance bound to a digraph.
struct TwoSpannerLp {
  LpModel model;
  std::size_t r = 0;
  std::vector<int> x_var;                     ///< edge id -> x_e variable
  std::vector<PathVar> paths;                 ///< all path variables
  std::vector<std::vector<int>> edge_paths;   ///< edge id -> indices into paths
};

/// Builds LP (3) for (g, r): variables, capacity constraints, and the base
/// covering constraints. Knapsack-cover inequalities are NOT included; add
/// them via knapsack_cover_oracle to obtain LP (4).
TwoSpannerLp build_two_spanner_lp(const Digraph& g, std::size_t r);

/// Lemma 3.2's separation oracle for the knapsack-cover inequalities of
/// LP (4): for every edge, checks W = top-j flows for j = 1..r.
SeparationOracle knapsack_cover_oracle(const TwoSpannerLp& lp);

struct RelaxationResult {
  LpStatus status = LpStatus::kIterationLimit;
  double value = 0.0;              ///< optimal LP objective
  std::vector<double> x;           ///< per-edge capacity values x_e
  std::size_t cut_rounds = 0;      ///< LP re-solves (1 for LP (3))
  std::size_t cuts_added = 0;      ///< knapsack-cover cuts added
  std::size_t simplex_iterations = 0;
};

/// Solves LP (3) (no knapsack-cover cuts).
RelaxationResult solve_lp3(const Digraph& g, std::size_t r,
                           const SimplexOptions& simplex = {});

/// Solves LP (4) = LP (3) + lazily separated knapsack-cover inequalities.
RelaxationResult solve_lp4(const Digraph& g, std::size_t r,
                           const CuttingPlaneOptions& options = {});

/// Solves the DK10 relaxation LP (2) exactly by materializing one flow
/// system per fault set. Throws if the fault-set count exceeds the limit.
RelaxationResult solve_lp2_exact(const Digraph& g, std::size_t r,
                                 std::size_t max_fault_sets = 4000,
                                 const SimplexOptions& simplex = {});

/// The closed-form LP (2) value on the directed complete graph K_n with unit
/// costs (Section 3.1's gap example): every x_e = 1/(n-r-2) is feasible, so
/// the LP costs n(n-1)/(n-r-2), while OPT >= rn.
double lp2_value_complete_graph(std::size_t n, std::size_t r);

}  // namespace ftspan
