#include "spanner2/lll.hpp"

#include <algorithm>
#include <cmath>

#include "spanner2/verify2.hpp"
#include "util/rng.hpp"

namespace ftspan {

namespace {

/// Mutable rounding state: thresholds plus the derived edge memberships.
struct State {
  const Digraph& g;
  const std::vector<double>& x;
  double alpha;
  std::vector<double> threshold;

  bool edge_in(EdgeId id) const {
    const DiEdge& e = g.edge(id);
    return std::min(threshold[e.u], threshold[e.v]) <= alpha * x[id];
  }

  std::vector<char> materialize() const {
    std::vector<char> in(g.num_edges(), 0);
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      if (edge_in(id)) in[id] = 1;
    return in;
  }
};

/// A_{u,v} holds iff (u,v) is outside the spanner and has < r+1 2-paths.
bool event_a(const State& s, EdgeId id, std::size_t r) {
  if (s.edge_in(id)) return false;
  const DiEdge& e = s.g.edge(id);
  std::size_t count = 0;
  for (const Arc& a : s.g.out_neighbors(e.u)) {
    if (a.to == e.v || !s.edge_in(a.edge)) continue;
    const auto second = s.g.edge_id(a.to, e.v);
    if (second && s.edge_in(*second) && ++count > r) return false;
  }
  return count < r + 1;
}

/// B_u holds iff Z⁺_u + Z⁻_u > budget_factor · α · (out mass + in mass).
bool event_b(const State& s, Vertex u, double budget_factor) {
  double mass = 0;
  std::size_t z = 0;
  for (const Arc& a : s.g.out_neighbors(u)) {
    mass += s.x[a.edge];
    if (s.threshold[a.to] <= s.alpha * s.x[a.edge]) ++z;
  }
  for (const Arc& a : s.g.in_neighbors(u)) {
    mass += s.x[a.edge];
    if (s.threshold[a.to] <= s.alpha * s.x[a.edge]) ++z;
  }
  return static_cast<double>(z) > budget_factor * s.alpha * mass;
}

}  // namespace

LllResult lll_ft_2spanner(const Digraph& g, std::size_t r, std::uint64_t seed,
                          const LllOptions& options) {
  LllResult out;
  out.relaxation = solve_lp4(g, r, options.lp);
  if (out.relaxation.status != LpStatus::kOptimal) return out;
  out.lp_value = out.relaxation.value;

  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 2);
  out.alpha = options.alpha.value_or(options.alpha_constant *
                                     std::log(static_cast<double>(delta)));

  Rng rng(seed);
  State s{g, out.relaxation.x, out.alpha, {}};
  s.threshold.resize(g.num_vertices());
  for (double& t : s.threshold) t = rng.uniform();

  // Moser–Tardos: while some bad event holds, resample the variables in its
  // dependency set. Scan order (edges then vertices) is an arbitrary fixed
  // selection rule, which the algorithmic LLL permits.
  while (out.resamples < options.max_resamples) {
    bool found = false;

    for (EdgeId id = 0; id < g.num_edges() && !found; ++id) {
      if (!event_a(s, id, r)) continue;
      found = true;
      ++out.resamples;
      const DiEdge& e = g.edge(id);
      s.threshold[e.u] = rng.uniform();
      s.threshold[e.v] = rng.uniform();
      for (Vertex mid : g.two_path_midpoints(e.u, e.v))
        s.threshold[mid] = rng.uniform();
    }
    if (found) continue;

    for (Vertex u = 0; u < g.num_vertices() && !found; ++u) {
      if (!event_b(s, u, options.budget_factor)) continue;
      found = true;
      ++out.resamples;
      for (const Arc& a : g.out_neighbors(u)) s.threshold[a.to] = rng.uniform();
      for (const Arc& a : g.in_neighbors(u)) s.threshold[a.to] = rng.uniform();
    }
    if (!found) {
      out.converged = true;
      break;
    }
  }

  out.in_spanner = s.materialize();
  if (!out.converged) out.repaired_edges = greedy_repair(g, out.in_spanner, r);
  out.cost = spanner_cost(g, out.in_spanner);
  out.valid = is_ft_2spanner(g, out.in_spanner, r);
  return out;
}

}  // namespace ftspan
