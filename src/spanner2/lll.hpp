// Theorem 3.4: the O(log Δ)-approximation for unit costs via the
// constructive Lovász Local Lemma (Moser–Tardos resampling).
//
// The rounding is Algorithm 1 with inflation α = C log Δ. The bad events are
// exactly the paper's:
//   A_{u,v}: edge (u,v) unsatisfied (not picked and < r+1 spanner 2-paths);
//            depends on T_u, T_v and T_z for midpoints z of (u,v).
//   B_u:     the locally charged degree Z⁺_u + Z⁻_u exceeds
//            4α (Σ_out x + Σ_in x); depends on T_z for z ∈ N⁺(u) ∪ N⁻(u).
// Moser–Tardos: draw all thresholds; while some event holds, redraw exactly
// the variables that event depends on. Expected polynomial resamples when
// e·p·(d+1) <= 1 (Lemma 3.5); we expose the resample count so experiment E7
// can report it.
#pragma once

#include <cstdint>
#include <optional>

#include "spanner2/formulation.hpp"

namespace ftspan {

struct LllOptions {
  /// α = alpha_constant * ln(max(Δ, 2)), unless `alpha` overrides it.
  double alpha_constant = 1.0;
  std::optional<double> alpha;

  /// Multiplier in the B_u budget (the paper uses 4).
  double budget_factor = 4.0;

  /// Give up (and greedy-repair) after this many resampling steps.
  std::size_t max_resamples = 1'000'000;

  CuttingPlaneOptions lp;
};

struct LllResult {
  std::vector<char> in_spanner;
  double cost = 0.0;
  double lp_value = 0.0;
  double alpha = 0.0;
  std::size_t resamples = 0;      ///< Moser–Tardos resampling steps
  std::size_t repaired_edges = 0; ///< only nonzero if resampling hit the cap
  bool valid = false;
  bool converged = false;         ///< all events avoided within the cap
  RelaxationResult relaxation;
};

/// Theorem 3.4's algorithm. Intended for unit-cost digraphs of bounded
/// degree; works for any costs but the O(log Δ) guarantee is for c_e = 1.
LllResult lll_ft_2spanner(const Digraph& g, std::size_t r, std::uint64_t seed,
                          const LllOptions& options = {});

}  // namespace ftspan
