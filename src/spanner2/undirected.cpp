#include "spanner2/undirected.hpp"

#include "graph/generators.hpp"
#include "spanner2/verify2.hpp"

namespace ftspan {

bool is_ft_2spanner_undirected(const Graph& g,
                               const std::vector<char>& in_spanner,
                               std::size_t r) {
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (in_spanner[id]) continue;
    const Edge& e = g.edge(id);
    std::size_t paths = 0;
    for (const Arc& a : g.neighbors(e.u)) {
      if (a.to == e.v || !in_spanner[a.edge]) continue;
      const auto second = g.edge_id(a.to, e.v);
      if (second && in_spanner[*second] && ++paths > r) break;
    }
    if (paths < r + 1) return false;
  }
  return true;
}

UndirectedTwoSpannerResult approx_ft_2spanner_undirected(
    const Graph& g, std::size_t r, std::uint64_t seed,
    const RoundingOptions& options) {
  // Bidirect with half costs so the directed objective counts edge weights
  // once when both arcs are bought.
  Digraph d(g.num_vertices());
  // Arc ids: 2*id (u->v) and 2*id+1 (v->u) for undirected edge id — the
  // insertion order below guarantees it.
  for (const Edge& e : g.edges()) {
    d.add_edge(e.u, e.v, e.w / 2.0);
    d.add_edge(e.v, e.u, e.w / 2.0);
  }

  const TwoSpannerResult directed = approx_ft_2spanner(d, r, seed, options);

  UndirectedTwoSpannerResult out;
  out.lp_value = directed.lp_value;
  out.in_spanner.assign(g.num_edges(), 0);
  if (directed.in_spanner.empty()) return out;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (directed.in_spanner[2 * id] || directed.in_spanner[2 * id + 1])
      out.in_spanner[id] = 1;

  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (out.in_spanner[id]) out.cost += g.edge(id).w;
  out.valid = is_ft_2spanner_undirected(g, out.in_spanner, r);

  // The directed solution can in principle be valid while asymmetric repair
  // left an undirected gap; finish with the undirected repair if needed.
  if (!out.valid) {
    // Symmetrized repair: work on the digraph, then re-symmetrize.
    std::vector<char> arcs(d.num_edges(), 0);
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      if (out.in_spanner[id]) arcs[2 * id] = arcs[2 * id + 1] = 1;
    greedy_repair(d, arcs, r);
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      out.in_spanner[id] = arcs[2 * id] || arcs[2 * id + 1];
    out.cost = 0;
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      if (out.in_spanner[id]) out.cost += g.edge(id).w;
    out.valid = is_ft_2spanner_undirected(g, out.in_spanner, r);
  }
  return out;
}

}  // namespace ftspan
