#include "spanner2/undirected.hpp"

#include "graph/generators.hpp"
#include "spanner2/dk10_baseline.hpp"
#include "spanner2/verify2.hpp"

namespace ftspan {

namespace {

/// Bidirect g with half costs so the directed objective counts each edge
/// weight once when both of its arcs are bought. Arc ids are 2*id (u->v)
/// and 2*id+1 (v->u) for undirected edge id — the insertion order
/// guarantees it, and every reduction below relies on it.
Digraph half_cost_bidirect(const Graph& g) {
  Digraph d(g.num_vertices());
  for (const Edge& e : g.edges()) {
    d.add_edge(e.u, e.v, e.w / 2.0);
    d.add_edge(e.v, e.u, e.w / 2.0);
  }
  return d;
}

/// Symmetrize a directed selection back to undirected edges (keep an edge
/// iff either arc was kept), re-verify the undirected Lemma 3.1 condition,
/// and run the symmetrized repair if the asymmetric solution left a gap.
UndirectedTwoSpannerResult symmetrize(const Graph& g, const Digraph& d,
                                      const std::vector<char>& directed_sel,
                                      double lp_value, std::size_t r) {
  UndirectedTwoSpannerResult out;
  out.lp_value = lp_value;
  out.in_spanner.assign(g.num_edges(), 0);
  if (directed_sel.empty()) return out;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (directed_sel[2 * id] || directed_sel[2 * id + 1])
      out.in_spanner[id] = 1;

  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (out.in_spanner[id]) out.cost += g.edge(id).w;
  out.valid = is_ft_2spanner_undirected(g, out.in_spanner, r);

  // The directed solution can in principle be valid while asymmetric repair
  // left an undirected gap; finish with the undirected repair if needed.
  if (!out.valid) {
    // Symmetrized repair: work on the digraph, then re-symmetrize.
    std::vector<char> arcs(d.num_edges(), 0);
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      if (out.in_spanner[id]) arcs[2 * id] = arcs[2 * id + 1] = 1;
    greedy_repair(d, arcs, r);
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      out.in_spanner[id] = arcs[2 * id] || arcs[2 * id + 1];
    out.cost = 0;
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      if (out.in_spanner[id]) out.cost += g.edge(id).w;
    out.valid = is_ft_2spanner_undirected(g, out.in_spanner, r);
  }
  return out;
}

}  // namespace

bool is_ft_2spanner_undirected(const Graph& g,
                               const std::vector<char>& in_spanner,
                               std::size_t r) {
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (in_spanner[id]) continue;
    const Edge& e = g.edge(id);
    std::size_t paths = 0;
    for (const Arc& a : g.neighbors(e.u)) {
      if (a.to == e.v || !in_spanner[a.edge]) continue;
      const auto second = g.edge_id(a.to, e.v);
      if (second && in_spanner[*second] && ++paths > r) break;
    }
    if (paths < r + 1) return false;
  }
  return true;
}

UndirectedTwoSpannerResult approx_ft_2spanner_undirected(
    const Graph& g, std::size_t r, std::uint64_t seed,
    const RoundingOptions& options) {
  const Digraph d = half_cost_bidirect(g);
  const TwoSpannerResult directed = approx_ft_2spanner(d, r, seed, options);
  return symmetrize(g, d, directed.in_spanner, directed.lp_value, r);
}

UndirectedTwoSpannerResult dk10_ft_2spanner_undirected(
    const Graph& g, std::size_t r, std::uint64_t seed,
    const RoundingOptions& options) {
  const Digraph d = half_cost_bidirect(g);
  const TwoSpannerResult directed = dk10_ft_2spanner(d, r, seed, options);
  return symmetrize(g, d, directed.in_spanner, directed.lp_value, r);
}

UndirectedTwoSpannerResult lll_ft_2spanner_undirected(
    const Graph& g, std::size_t r, std::uint64_t seed,
    const LllOptions& options) {
  const Digraph d = half_cost_bidirect(g);
  const LllResult directed = lll_ft_2spanner(d, r, seed, options);
  return symmetrize(g, d, directed.in_spanner, directed.lp_value, r);
}

}  // namespace ftspan
