#include "spanner2/exact_bb.hpp"

#include <algorithm>
#include <cmath>

#include "lp/cutting_plane.hpp"
#include "spanner2/formulation.hpp"
#include "spanner2/verify2.hpp"

namespace ftspan {

namespace {

constexpr double kIntTol = 1e-6;

enum : signed char { kFree = -1, kOut = 0, kIn = 1 };

/// LP (4) relaxation value under partial fixing; also reports the fractional
/// x and whether the solve succeeded.
struct NodeLp {
  bool ok = false;
  double value = 0.0;
  std::vector<double> x;
};

NodeLp solve_node(const Digraph& g, std::size_t r,
                  const std::vector<signed char>& fixed,
                  const ExactOptions& opt) {
  TwoSpannerLp lp = build_two_spanner_lp(g, r);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (fixed[id] == kIn)
      lp.model.add_constraint({{lp.x_var[id], 1.0}}, Sense::kGreaterEqual, 1.0);
    else if (fixed[id] == kOut)
      lp.model.add_constraint({{lp.x_var[id], 1.0}}, Sense::kLessEqual, 0.0);
  }

  CuttingPlaneOptions cp;
  cp.simplex = opt.simplex;
  cp.max_rounds = opt.max_cut_rounds;
  const SeparationOracle oracle = knapsack_cover_oracle(lp);

  // Cut loop with an extra integral-leaf certification: if the optimum is
  // integral but Lemma 3.1 rejects it, add the witness knapsack-cover cut
  // (the oracle alone may miss it because the LP's f values are feasible for
  // the *current* rows).
  for (std::size_t round = 0; round < opt.max_cut_rounds; ++round) {
    const CuttingPlaneResult res = solve_with_cuts(lp.model, oracle, cp);
    if (res.solution.status == LpStatus::kInfeasible) return {};
    if (res.solution.status != LpStatus::kOptimal) return {};

    NodeLp out;
    out.ok = true;
    out.value = res.solution.objective;
    out.x.resize(g.num_edges());
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      out.x[id] = res.solution.x[lp.x_var[id]];

    // Integral? Then certify with Lemma 3.1.
    bool integral = true;
    for (double v : out.x)
      if (v > kIntTol && v < 1.0 - kIntTol) {
        integral = false;
        break;
      }
    if (!integral) return out;

    std::vector<char> in(g.num_edges(), 0);
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      if (out.x[id] > 0.5) in[id] = 1;
    const std::vector<EdgeId> bad = unsatisfied_edges(g, in, r);
    if (bad.empty()) return out;

    // Add the witness cut for each unsatisfied edge: W = its complete paths.
    for (EdgeId id : bad) {
      std::vector<int> incomplete;
      std::size_t complete = 0;
      for (int pi : lp.edge_paths[id]) {
        const PathVar& p = lp.paths[pi];
        if (in[p.first] && in[p.second])
          ++complete;
        else
          incomplete.push_back(pi);
      }
      if (complete > r) continue;  // cannot happen for an unsatisfied edge
      const double rhs = static_cast<double>(r + 1 - complete);
      std::vector<LinearTerm> terms;
      terms.push_back({lp.x_var[id], rhs});
      for (int pi : incomplete) terms.push_back({lp.paths[pi].var, 1.0});
      lp.model.add_constraint(std::move(terms), Sense::kGreaterEqual, rhs);
    }
  }
  return {};  // cut budget exhausted
}

struct Searcher {
  const Digraph& g;
  std::size_t r;
  const ExactOptions& opt;
  double best_cost;
  std::vector<char> best;
  std::size_t nodes = 0;
  bool capped = false;

  void dfs(std::vector<signed char>& fixed) {
    if (nodes >= opt.max_nodes) {
      capped = true;
      return;
    }
    ++nodes;

    const NodeLp lp = solve_node(g, r, fixed, opt);
    if (!lp.ok) return;                          // infeasible or stuck
    if (lp.value >= best_cost - 1e-7) return;    // pruned

    // Most fractional variable.
    EdgeId branch = kInvalidEdge;
    double best_frac = kIntTol;
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
      const double frac = std::min(lp.x[id], 1.0 - lp.x[id]);
      if (frac > best_frac) {
        best_frac = frac;
        branch = id;
      }
    }

    if (branch == kInvalidEdge) {
      // Integral and (by solve_node's certification) a valid spanner.
      std::vector<char> in(g.num_edges(), 0);
      for (EdgeId id = 0; id < g.num_edges(); ++id)
        if (lp.x[id] > 0.5) in[id] = 1;
      const double c = spanner_cost(g, in);
      if (c < best_cost) {
        best_cost = c;
        best = std::move(in);
      }
      return;
    }

    // Include first (tends to reach feasibility sooner), then exclude.
    fixed[branch] = kIn;
    dfs(fixed);
    fixed[branch] = kOut;
    dfs(fixed);
    fixed[branch] = kFree;
  }
};

}  // namespace

ExactResult exact_min_ft_2spanner(const Digraph& g, std::size_t r,
                                  const ExactOptions& options) {
  // Start from the greedy heuristic as the incumbent.
  std::vector<char> incumbent = greedy_ft_2spanner(g, r);

  Searcher s{g, r, options, spanner_cost(g, incumbent), incumbent};
  std::vector<signed char> fixed(g.num_edges(), kFree);
  s.dfs(fixed);

  ExactResult out;
  out.cost = s.best_cost;
  out.in_spanner = std::move(s.best);
  out.proven_optimal = !s.capped;
  out.nodes = s.nodes;
  return out;
}

}  // namespace ftspan
