// Undirected unit-length r-fault-tolerant 2-spanners via the directed
// machinery.
//
// Section 3 works in the directed, costed setting "because it is more
// general"; this wrapper gives undirected users the natural API. Reduction:
// bidirect the graph with each arc carrying half the edge cost, run the
// directed algorithm, then symmetrize (keep an edge iff either of its arcs
// was kept). Symmetrizing preserves validity — a directed witness
// (arc or r+1 directed 2-paths) maps to the undirected witness — and at
// most doubles the cost, so the O(log n) guarantee carries over.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "spanner2/lll.hpp"
#include "spanner2/rounding.hpp"

namespace ftspan {

/// Undirected Lemma 3.1: every edge {u,v} of g is selected or has >= r+1
/// common neighbors z with both {u,z} and {z,v} selected.
bool is_ft_2spanner_undirected(const Graph& g,
                               const std::vector<char>& in_spanner,
                               std::size_t r);

struct UndirectedTwoSpannerResult {
  std::vector<char> in_spanner;  ///< per undirected edge id
  double cost = 0.0;             ///< sum of selected edge weights
  double lp_value = 0.0;         ///< directed LP (4) bound (edge-cost units)
  bool valid = false;
};

/// O(log n)-approximation for the undirected problem (unit lengths,
/// arbitrary edge costs taken from g's weights).
UndirectedTwoSpannerResult approx_ft_2spanner_undirected(
    const Graph& g, std::size_t r, std::uint64_t seed,
    const RoundingOptions& options = {});

/// The DK10 baseline (weaker LP, α = Θ((r+1) log n)) through the same
/// bidirect-and-symmetrize reduction — the undirected face of
/// dk10_ft_2spanner, for apples-to-apples comparison with the above.
UndirectedTwoSpannerResult dk10_ft_2spanner_undirected(
    const Graph& g, std::size_t r, std::uint64_t seed,
    const RoundingOptions& options = {});

/// Theorem 3.4's O(log Δ) LLL algorithm through the same reduction
/// (intended for unit-length bounded-degree graphs).
UndirectedTwoSpannerResult lll_ft_2spanner_undirected(
    const Graph& g, std::size_t r, std::uint64_t seed,
    const LllOptions& options = {});

}  // namespace ftspan
