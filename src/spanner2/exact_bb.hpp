// Exact minimum-cost r-fault-tolerant 2-spanner via LP-based branch and
// bound (tiny instances only; the problem is NP-hard).
//
// Bounds come from LP (4) with knapsack-cover cuts; branching is on the most
// fractional capacity variable. Integral leaves are certified with the exact
// Lemma 3.1 check; an integral-but-invalid leaf yields a violated
// knapsack-cover cut (W = its currently complete paths) and is re-solved.
// Used by experiment E5 to measure true approximation ratios.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "lp/simplex.hpp"

namespace ftspan {

struct ExactOptions {
  std::size_t max_nodes = 20'000;
  SimplexOptions simplex;
  std::size_t max_cut_rounds = 60;
};

struct ExactResult {
  double cost = 0.0;
  std::vector<char> in_spanner;
  bool proven_optimal = false;  ///< false if a node/iteration cap was hit
  std::size_t nodes = 0;        ///< branch-and-bound nodes explored
};

ExactResult exact_min_ft_2spanner(const Digraph& g, std::size_t r,
                                  const ExactOptions& options = {});

}  // namespace ftspan
