#include "spanner2/formulation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "ftspanner/validate.hpp"  // count_fault_sets

namespace ftspan {

TwoSpannerLp build_two_spanner_lp(const Digraph& g, std::size_t r) {
  TwoSpannerLp lp;
  lp.r = r;
  lp.x_var.resize(g.num_edges());
  lp.edge_paths.resize(g.num_edges());

  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const DiEdge& e = g.edge(id);
    lp.x_var[id] = lp.model.add_variable(
        e.w, 1.0, "x_" + std::to_string(e.u) + "_" + std::to_string(e.v));
  }

  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const DiEdge& e = g.edge(id);
    for (Vertex mid : g.two_path_midpoints(e.u, e.v)) {
      PathVar p;
      p.uv = id;
      p.mid = mid;
      p.first = *g.edge_id(e.u, mid);
      p.second = *g.edge_id(mid, e.v);
      p.var = lp.model.add_variable(0.0, kInfiniteWeight,
                                    "f_" + std::to_string(e.u) + "_" +
                                        std::to_string(mid) + "_" +
                                        std::to_string(e.v));
      // Capacity constraints (the two arcs of a 2-path are distinct and not
      // shared with any other 2-path of the same (u,v), so the paper's
      // aggregated capacity constraint reduces to f_P <= x_e per arc).
      lp.model.add_constraint(
          {{p.var, 1.0}, {lp.x_var[p.first], -1.0}}, Sense::kLessEqual, 0.0);
      lp.model.add_constraint(
          {{p.var, 1.0}, {lp.x_var[p.second], -1.0}}, Sense::kLessEqual, 0.0);
      lp.edge_paths[id].push_back(static_cast<int>(lp.paths.size()));
      lp.paths.push_back(p);
    }
  }

  // Base covering constraints: (r+1) x_{(u,v)} + Σ_P f_P >= r+1.
  const double rp1 = static_cast<double>(r + 1);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    std::vector<LinearTerm> terms;
    terms.push_back({lp.x_var[id], rp1});
    for (int pi : lp.edge_paths[id]) terms.push_back({lp.paths[pi].var, 1.0});
    lp.model.add_constraint(std::move(terms), Sense::kGreaterEqual, rp1);
  }
  return lp;
}

SeparationOracle knapsack_cover_oracle(const TwoSpannerLp& lp) {
  // The oracle captures the structure (not the model) by pointer; the
  // TwoSpannerLp must outlive the returned callable.
  const TwoSpannerLp* s = &lp;
  return [s](const std::vector<double>& sol) {
    constexpr double kTol = 1e-7;
    std::vector<LpConstraint> cuts;

    for (EdgeId id = 0; id < s->x_var.size(); ++id) {
      const auto& path_idx = s->edge_paths[id];
      if (path_idx.empty()) continue;
      // Sort this edge's paths by flow value, largest first (Lemma 3.2: the
      // worst W of size j is the j largest flows).
      std::vector<int> order(path_idx.begin(), path_idx.end());
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return sol[s->paths[a].var] > sol[s->paths[b].var];
      });

      double tail = 0;  // Σ_{P ∉ W} f_P, starting from W = all-of-prefix
      for (int pi : order) tail += sol[s->paths[pi].var];

      const double x_uv = sol[s->x_var[id]];
      double best_violation = kTol;
      std::size_t best_j = 0;
      double prefix = 0;
      for (std::size_t j = 1; j <= std::min<std::size_t>(s->r, order.size());
           ++j) {
        prefix += sol[s->paths[order[j - 1]].var];
        const double rhs = static_cast<double>(s->r + 1 - j);
        const double lhs = rhs * x_uv + (tail - prefix);
        if (rhs - lhs > best_violation) {
          best_violation = rhs - lhs;
          best_j = j;
        }
      }
      if (best_j == 0) continue;

      const double rhs = static_cast<double>(s->r + 1 - best_j);
      LpConstraint cut;
      cut.sense = Sense::kGreaterEqual;
      cut.rhs = rhs;
      cut.terms.push_back({s->x_var[id], rhs});
      for (std::size_t i = best_j; i < order.size(); ++i)
        cut.terms.push_back({s->paths[order[i]].var, 1.0});
      cuts.push_back(std::move(cut));
    }
    return cuts;
  };
}

namespace {

RelaxationResult extract(const TwoSpannerLp& lp, const LpSolution& sol) {
  RelaxationResult out;
  out.status = sol.status;
  out.simplex_iterations = sol.iterations;
  if (sol.status != LpStatus::kOptimal) return out;
  out.value = sol.objective;
  out.x.resize(lp.x_var.size());
  for (EdgeId id = 0; id < lp.x_var.size(); ++id) out.x[id] = sol.x[lp.x_var[id]];
  return out;
}

}  // namespace

RelaxationResult solve_lp3(const Digraph& g, std::size_t r,
                           const SimplexOptions& simplex) {
  TwoSpannerLp lp = build_two_spanner_lp(g, r);
  RelaxationResult out = extract(lp, solve_lp(lp.model, simplex));
  out.cut_rounds = 1;
  return out;
}

RelaxationResult solve_lp4(const Digraph& g, std::size_t r,
                           const CuttingPlaneOptions& options) {
  TwoSpannerLp lp = build_two_spanner_lp(g, r);
  const SeparationOracle oracle = knapsack_cover_oracle(lp);
  const CuttingPlaneResult cp = solve_with_cuts(lp.model, oracle, options);
  RelaxationResult out = extract(lp, cp.solution);
  out.cut_rounds = cp.rounds;
  out.cuts_added = cp.cuts_added;
  if (!cp.separated_clean && out.status == LpStatus::kOptimal)
    out.status = LpStatus::kIterationLimit;
  return out;
}

RelaxationResult solve_lp2_exact(const Digraph& g, std::size_t r,
                                 std::size_t max_fault_sets,
                                 const SimplexOptions& simplex) {
  const std::size_t n = g.num_vertices();
  if (count_fault_sets(n, r) > max_fault_sets)
    throw std::runtime_error("solve_lp2_exact: too many fault sets");

  LpModel model;
  std::vector<int> x_var(g.num_edges());
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    x_var[id] = model.add_variable(g.edge(id).w, 1.0);

  // One flow system per fault set F: for each surviving edge (u,v), flow on
  // the direct edge plus flows on surviving 2-paths must reach 1 unit, each
  // path capped by its arcs' capacities.
  auto add_fault_set = [&](const VertexSet& faults) {
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
      const DiEdge& e = g.edge(id);
      if (faults.contains(e.u) || faults.contains(e.v)) continue;

      std::vector<LinearTerm> cover;
      const int direct = model.add_variable(0.0);
      model.add_constraint({{direct, 1.0}, {x_var[id], -1.0}},
                           Sense::kLessEqual, 0.0);
      cover.push_back({direct, 1.0});

      for (Vertex mid : g.two_path_midpoints(e.u, e.v)) {
        if (faults.contains(mid)) continue;
        const int f = model.add_variable(0.0);
        model.add_constraint({{f, 1.0}, {x_var[*g.edge_id(e.u, mid)], -1.0}},
                             Sense::kLessEqual, 0.0);
        model.add_constraint({{f, 1.0}, {x_var[*g.edge_id(mid, e.v)], -1.0}},
                             Sense::kLessEqual, 0.0);
        cover.push_back({f, 1.0});
      }
      model.add_constraint(std::move(cover), Sense::kGreaterEqual, 1.0);
    }
  };

  for (std::size_t size = 0; size <= std::min(r, n); ++size) {
    std::vector<Vertex> comb(size);
    for (std::size_t i = 0; i < size; ++i) comb[i] = static_cast<Vertex>(i);
    while (true) {
      VertexSet faults(n);
      for (Vertex v : comb) faults.insert(v);
      add_fault_set(faults);

      if (size == 0) break;
      std::size_t i = size;
      while (i > 0) {
        --i;
        if (comb[i] != static_cast<Vertex>(n - size + i)) break;
        if (i == 0) {
          i = size;
          break;
        }
      }
      if (i == size) break;
      ++comb[i];
      for (std::size_t j = i + 1; j < size; ++j)
        comb[j] = static_cast<Vertex>(comb[j - 1] + 1);
    }
  }

  const LpSolution sol = solve_lp(model, simplex);
  RelaxationResult out;
  out.status = sol.status;
  out.simplex_iterations = sol.iterations;
  out.cut_rounds = 1;
  if (sol.status != LpStatus::kOptimal) return out;
  out.value = sol.objective;
  out.x.resize(g.num_edges());
  for (EdgeId id = 0; id < g.num_edges(); ++id) out.x[id] = sol.x[x_var[id]];
  return out;
}

double lp2_value_complete_graph(std::size_t n, std::size_t r) {
  if (n < r + 3)
    throw std::invalid_argument("lp2_value_complete_graph: needs n >= r+3");
  const double nn = static_cast<double>(n);
  return nn * (nn - 1.0) / (nn - static_cast<double>(r) - 2.0);
}

}  // namespace ftspan
