// The prior-art baseline of Dinitz & Krauthgamer (arXiv 2010): the same
// threshold rounding, but driven by the weaker relaxation (no knapsack-cover
// inequalities) and therefore requiring inflation α = Θ((r+1) log n) — the
// O(r log n)-approximation that Theorem 3.3 improves on.
//
// Experiment E6 compares this baseline's cost against approx_ft_2spanner as
// r grows: the baseline's cost scales with r, the paper's does not.
#pragma once

#include "spanner2/rounding.hpp"

namespace ftspan {

/// DK10-style O(r log n) algorithm: solve LP (3), round with
/// α = alpha_constant * (r+1) * ln n, verify / repair as in the driver.
TwoSpannerResult dk10_ft_2spanner(const Digraph& g, std::size_t r,
                                  std::uint64_t seed,
                                  const RoundingOptions& options = {});

}  // namespace ftspan
