#include "util/affinity.hpp"

// Feature test: glibc/musl on Linux ship pthread_setaffinity_np behind
// _GNU_SOURCE (which g++/clang++ define by default for C++). Elsewhere the
// stubs below keep the API compiled and honestly unsuccessful.
#if defined(__linux__) && __has_include(<pthread.h>)
#define FTSPAN_HAS_AFFINITY 1
#include <pthread.h>
#include <sched.h>
#else
#define FTSPAN_HAS_AFFINITY 0
#endif

namespace ftspan {

bool affinity_supported() { return FTSPAN_HAS_AFFINITY != 0; }

#if FTSPAN_HAS_AFFINITY

namespace {
bool pin_handle(pthread_t handle, std::size_t core) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % CPU_SETSIZE, &set);
  return pthread_setaffinity_np(handle, sizeof(set), &set) == 0;
}
}  // namespace

bool pin_thread(std::thread& t, std::size_t core) {
  return pin_handle(t.native_handle(), core);
}

bool pin_current_thread(std::size_t core) {
  return pin_handle(pthread_self(), core);
}

#else

bool pin_thread(std::thread&, std::size_t) { return false; }
bool pin_current_thread(std::size_t) { return false; }

#endif

}  // namespace ftspan
