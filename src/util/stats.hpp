// Small statistics helpers used by the benchmark harness and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ftspan {

/// Accumulates samples; provides mean / variance / min / max / percentiles.
class Stats {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const {
    double s = 0;
    for (double x : samples_) s += x;
    return s;
  }

  double mean() const { return empty() ? 0.0 : sum() / count(); }

  double min() const {
    return empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }

  double max() const {
    return empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    if (count() < 2) return 0.0;
    const double m = mean();
    double s = 0;
    for (double x : samples_) s += (x - m) * (x - m);
    return s / (count() - 1);
  }

  double stddev() const { return std::sqrt(variance()); }

  /// Percentile by linear interpolation, q in [0, 1].
  double percentile(double q) const {
    if (empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * (sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - lo;
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }

  double median() const { return percentile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Least-squares slope of log(y) against log(x): the empirical exponent b in
/// y ~ a * x^b. Used by the scaling experiments (E1, E2).
inline double loglog_slope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++used;
  }
  if (used < 2) return 0.0;
  const double denom = used * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (used * sxy - sx * sy) / denom;
}

}  // namespace ftspan
