// A minimal fixed-size thread pool.
//
// Built for the conversion engine in ftspanner/parallel.cpp: the Θ(r³ log n)
// sampling iterations of Theorem 2.1 are independent, so workers pull
// iteration indices from a shared counter and the pool only needs submit()
// plus a barrier. Exceptions thrown by a job are captured and rethrown from
// wait_idle() on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/affinity.hpp"

namespace ftspan {

class ThreadPool {
 public:
  /// Starts `threads` workers (at least 1). With pin = true, worker i is
  /// pinned to core i % hardware_threads() where the platform allows it;
  /// per-lane success is readable via pinned_lanes(). Default off: pinning
  /// helps a dedicated dataplane but hurts oversubscribed runs (e.g. a
  /// parallel test driver stacking every pool onto the low cores).
  explicit ThreadPool(std::size_t threads, bool pin = false) {
    const std::size_t n = std::max<std::size_t>(threads, 1);
    const std::size_t cores = hardware_threads();
    workers_.reserve(n);
    pinned_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { work(); });
      if (pin) pinned_[i] = pin_thread(workers_[i], i % cores) ? 1 : 0;
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  /// Per-lane affinity status: pinned_lanes()[i] is 1 iff worker i was
  /// successfully pinned (all zero when pinning was not requested or the
  /// platform has no affinity support).
  const std::vector<char>& pinned_lanes() const { return pinned_; }
  std::size_t pinned_count() const {
    std::size_t k = 0;
    for (const char p : pinned_) k += p != 0;
    return k;
  }

  /// Enqueues a job. Jobs must not submit to the same pool they run on
  /// (wait_idle() would be allowed to return between the parent finishing
  /// and the child being queued).
  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push(std::move(job));
    }
    wake_.notify_one();
  }

  /// Blocks until every submitted job has finished. Rethrows the first
  /// exception any job raised (the remaining jobs still run to completion).
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
    if (failure_) {
      std::exception_ptr e = failure_;
      failure_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  /// The machine's hardware concurrency, never reported as 0.
  static std::size_t hardware_threads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<std::size_t>(hc);
  }

 private:
  void work() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stop_ set and queue drained
        job = std::move(jobs_.front());
        jobs_.pop();
        ++active_;
      }
      try {
        job();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!failure_) failure_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        --active_;
        if (jobs_.empty() && active_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> jobs_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr failure_;
  std::vector<std::thread> workers_;
  std::vector<char> pinned_;
};

}  // namespace ftspan
