#include "util/mem.hpp"

#include <sys/resource.h>

namespace ftspan {

std::size_t peak_rss_bytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes (BSD reports bytes; macOS bytes).
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
}

}  // namespace ftspan
