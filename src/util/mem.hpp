// Process memory introspection for the scenario runner's metrics block.
#pragma once

#include <cstddef>

namespace ftspan {

/// Peak resident set size of the calling process in bytes, as reported by
/// getrusage(RUSAGE_SELF). Monotone over the process lifetime — sampling it
/// after a cell runs gives "the high-water mark so far", not a per-cell
/// delta; consumers should treat it as an upper bound on the cell's RSS.
/// Returns 0 on platforms where the query fails.
std::size_t peak_rss_bytes();

}  // namespace ftspan
