// Core affinity for worker lanes.
//
// The dataplane pools (ThreadPool, BurstPool) pin lane i to core
// i % hardware_threads() when asked, so a lane's engines and scratch stay on
// one core's caches instead of migrating under the scheduler — the per-core
// worker idiom the burst pipeline already assumes logically. Pinning is a
// *hint*: platforms without pthread_setaffinity_np (and builds where the
// feature-test below fails) compile the same API as a no-op that reports
// false, and every caller records per-lane success/failure rather than
// assuming it — perf JSON must stay honest about what actually ran where.
#pragma once

#include <cstddef>
#include <thread>

namespace ftspan {

/// True when this build can pin threads to cores at all. Callers use this to
/// distinguish "pin requested but unsupported here" from "pin failed".
bool affinity_supported();

/// Pins `t` to `core` (taken modulo the kernel's cpu-set width) via its
/// native handle; the thread may already be running — pinning from the
/// spawning thread is race-free because the kernel moves it on the spot.
/// Returns true iff the affinity call succeeded.
bool pin_thread(std::thread& t, std::size_t core);

/// Pins the calling thread. Same semantics as pin_thread.
bool pin_current_thread(std::size_t core);

}  // namespace ftspan
