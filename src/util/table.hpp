// Markdown-style table printer for the benchmark harness.
//
// Every experiment binary prints one or more tables in this format so that
// EXPERIMENTS.md can quote bench output verbatim.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace ftspan {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Starts a new row; append cells with `cell(...)`.
  Table& row() {
    rows_.emplace_back();
    return *this;
  }

  Table& cell(const std::string& s) {
    rows_.back().push_back(s);
    return *this;
  }

  Table& cell(const char* s) { return cell(std::string(s)); }

  Table& cell(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return cell(os.str());
  }

  template <class Int>
    requires std::integral<Int>
  Table& cell(Int v) {
    return cell(std::to_string(v));
  }

  /// RFC-4180-style CSV: one header line then one line per row. Fields
  /// containing a comma, quote, CR, or LF are quoted, with embedded quotes
  /// doubled. Used by the scenario runner's `--format csv`.
  void print_csv(std::ostream& os = std::cout) const {
    auto emit_field = [&os](const std::string& s) {
      if (s.find_first_of(",\"\r\n") == std::string::npos) {
        os << s;
        return;
      }
      os << '"';
      for (const char ch : s) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    };
    auto emit_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c > 0) os << ',';
        emit_field(c < cells.size() ? cells[c] : std::string());
      }
      os << '\n';
    };
    emit_row(headers_);
    for (const auto& r : rows_) emit_row(r);
    os.flush();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto print_row = [&](const std::vector<std::string>& cells) {
      os << "|";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        os << " " << s << std::string(width[c] - s.size(), ' ') << " |";
      }
      os << "\n";
    };

    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << std::string(width[c] + 2, '-') << "|";
    os << "\n";
    for (const auto& r : rows_) print_row(r);
    os.flush();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner used between tables in bench output.
inline void banner(const std::string& title, std::ostream& os = std::cout) {
  os << "\n## " << title << "\n\n";
}

}  // namespace ftspan
