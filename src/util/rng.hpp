// Deterministic, platform-independent random number generation.
//
// Everything randomized in ftspan takes an explicit 64-bit seed and draws
// from this generator, so experiments and tests reproduce bit-for-bit across
// platforms (the standard library's distributions do not guarantee that).
//
// The core generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace ftspan {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic 64-bit mix of two values; used to derive per-object seeds.
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless method with rejection.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Geometric: number of failures before the first success, success prob p.
  /// (Pr[X = t] = (1-p)^t p, support {0, 1, 2, ...}.)
  std::uint64_t geometric(double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
    const double u = 1.0 - uniform();  // in (0, 1]
    return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <class Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derive an independent child generator (for parallel-safe substreams).
  Rng fork() { return Rng((*this)()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ftspan
