// SpscRing — a bounded lock-free single-producer single-consumer queue.
//
// The dataplane idiom (DPDK/ndn-dpdk rings): one cache-line-aligned atomic
// index per side, acquire/release pairing only at the point of hand-off, and
// a cached copy of the opposite index so the common-case push/pop touches a
// single shared cache line only when the ring looks full/empty. Capacity is
// rounded up to a power of two so position → slot is a mask, not a modulo.
//
// Contract: exactly one thread calls try_push, exactly one thread calls
// try_pop. Indices are 64-bit and never wrap in practice (2^64 operations),
// so position arithmetic needs no generation tags.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftspan {

template <class T>
class SpscRing {
 public:
  /// Ring with room for at least `capacity` elements (rounded up to a power
  /// of two; minimum 1).
  explicit SpscRing(std::size_t capacity)
      : slots_(std::bit_ceil(capacity == 0 ? std::size_t{1} : capacity)),
        mask_(slots_.size() - 1) {}

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. False iff the ring is full.
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False iff the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side view; racy by nature (a concurrent push may not be
  /// visible yet) but safe — use only for idle/drain heuristics.
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  const std::size_t mask_;
  /// Consumer cursor + the producer's cached view of it (refreshing the
  /// cache is the only time the producer reads the consumer's line).
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::uint64_t cached_head_ = 0;   // producer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::uint64_t cached_tail_ = 0;   // consumer-owned
};

}  // namespace ftspan
