#include "ftspanner/edge_faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "ftspanner/parallel.hpp"
#include "ftspanner/validate.hpp"  // count_fault_sets (C(m, <=r) reuse)
#include "graph/sp_engine.hpp"
#include "spanner/greedy.hpp"
#include "util/rng.hpp"

namespace ftspan {

namespace {

/// Maps each h-edge to the corresponding g-edge id (by endpoints).
std::vector<EdgeId> h_to_g_edges(const Graph& g, const Graph& h) {
  std::vector<EdgeId> map(h.num_edges(), kInvalidEdge);
  for (EdgeId id = 0; id < h.num_edges(); ++id) {
    const Edge& e = h.edge(id);
    const auto gid = g.edge_id(e.u, e.v);
    if (gid) map[id] = *gid;
  }
  return map;
}

/// Checks one edge-fault set; updates the result. The engines are pooled
/// across fault sets by the caller.
void check_one(const Csr& g, const Csr& h, const std::vector<EdgeId>& h2g,
               double k, const std::vector<char>& dead_g,
               DijkstraEngine& dg_eng, DijkstraEngine& dh_eng,
               std::vector<char>& dead_h, EdgeFtCheckResult& out,
               const std::vector<EdgeId>& fault_list) {
  ++out.fault_sets_checked;
  std::fill(dead_h.begin(), dead_h.end(), 0);
  for (EdgeId hid = 0; hid < dead_h.size(); ++hid)
    if (h2g[hid] != kInvalidEdge && dead_g[h2g[hid]]) dead_h[hid] = 1;

  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    bool relevant = false;
    for (const CsrArc& a : g.out(u))
      if (a.to > u && !dead_g[a.edge]) {
        relevant = true;
        break;
      }
    if (!relevant) continue;
    dg_eng.run_avoiding_edges(g, u, dead_g);
    dh_eng.run_avoiding_edges(h, u, dead_h);
    for (const CsrArc& a : g.out(u)) {
      if (a.to < u || dead_g[a.edge]) continue;
      const Weight dgd = dg_eng.dist(a.to);
      if (dgd >= kInfiniteWeight || dgd <= 0) continue;
      const Weight dhd = dh_eng.dist(a.to);
      const double stretch = dhd < kInfiniteWeight
                                 ? dhd / dgd
                                 : std::numeric_limits<double>::infinity();
      if (stretch > out.worst_stretch) {
        out.worst_stretch = stretch;
        out.witness_faults = fault_list;
      }
      if (stretch > k * (1 + kStretchCheckTolerance)) out.valid = false;
    }
  }
}

}  // namespace

std::size_t edge_conversion_iterations(std::size_t r, std::size_t n, double c) {
  const double rr = static_cast<double>(std::max<std::size_t>(r, 1));
  const double keep = rr >= 2 ? 1.0 / rr : 0.5;
  const double q = keep * std::pow(1.0 - keep, rr);
  const double ln_n = std::log(static_cast<double>(std::max<std::size_t>(n, 2)));
  return static_cast<std::size_t>(std::ceil(c * (rr + 2.0) * ln_n / q));
}

EdgeFtResult ft_edge_greedy_spanner(const Graph& g, double k, std::size_t r,
                                    std::uint64_t seed,
                                    const EdgeFtOptions& options) {
  if (r < 1)
    throw std::invalid_argument("ft_edge_greedy_spanner: r must be >= 1");
  if (k < 1.0)
    throw std::invalid_argument("ft_edge_greedy_spanner: k must be >= 1");
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();

  const double keep = r >= 2 ? 1.0 / static_cast<double>(r) : 0.5;
  EdgeFtResult out;
  out.keep_probability = keep;
  out.iterations = options.iterations.value_or(
      edge_conversion_iterations(r, n, options.iteration_constant));

  out.threads_used = resolve_threads(options.threads, out.iterations);

  // Per-iteration RNG streams (hash_combine(seed, it)) keep the fan-out
  // schedule-independent; see parallel.hpp for the determinism contract.
  // Per-worker pooled state: greedy workspace + survivor buffer, so the loop
  // allocates nothing after its first iteration. Each iteration re-sorts its
  // survivors exactly as the historical code sorted the materialized
  // survivor subgraph — same comparator over the same id-ordered sequence —
  // so outputs stay bit-identical to pre-engine even for tied edge weights,
  // where filtering a single hoisted (unstably sorted) global order would
  // visit equal-weight edges in a different relative order.
  // Weight facts hoisted once per graph: shared by every worker's engine
  // selection and exact-sums fast path (satellite of the bucket-queue work).
  WeightProfile profile;
  for (EdgeId id = 0; id < m; ++id) profile.observe(g.edge(id).w);

  const SpEnginePolicy engine = options.engine;
  const Weight bucket_max = options.bucket_max;
  const IterationBodyFactory bodies = [&g, k, keep, seed, n, m, profile,
                                       engine,
                                       bucket_max](std::size_t) -> IterationBody {
    auto ws = std::make_shared<GreedyWorkspace>();
    ws->reserve(n, m);
    ws->set_engine(engine, bucket_max);
    ws->configure_scratch(profile);
    auto survivors = std::vector<EdgeId>();
    survivors.reserve(m);
    // Move-capture: a copy would silently drop the reserved capacity.
    return [&g, ws, survivors = std::move(survivors), k, keep, seed, n,
            m](std::size_t it, std::vector<char>& marks) mutable {
      Rng rng(hash_combine(seed, it));
      survivors.clear();
      for (EdgeId id = 0; id < m; ++id)
        if (rng.bernoulli(keep)) survivors.push_back(id);
      std::sort(survivors.begin(), survivors.end(),
                [&g](EdgeId a, EdgeId b) { return g.edge(a).w < g.edge(b).w; });
      ws->reset(n);
      for (const EdgeId id : survivors) {
        const Edge& e = g.edge(id);
        const Weight bound = k * e.w * (1 + kStretchSlack);
        if (ws->bounded_pair(e.u, e.v, nullptr, bound) > k * e.w) {
          ws->add_edge(e.u, e.v, e.w);
          marks[id] = 1;
        }
      }
    };
  };

  out.edges = marks_to_edges(union_iterations(out.iterations, out.threads_used,
                                              m, options.batch, bodies,
                                              options.pin, &out.lane_pinned));
  for (const char p : out.lane_pinned) out.lanes_pinned += p != 0;
  return out;
}

std::vector<Weight> distances_avoiding_edges(const Graph& g, Vertex source,
                                             const std::vector<char>& dead) {
  DijkstraEngine eng;
  eng.run_avoiding_edges(g, source, dead);
  std::vector<Weight> dist(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) dist[v] = eng.dist(v);
  return dist;
}

EdgeFtCheckResult check_edge_ft_spanner_exact(const Graph& g, const Graph& h,
                                              double k, std::size_t r,
                                              std::size_t max_fault_sets) {
  const std::size_t m = g.num_edges();
  if (count_fault_sets(m, r) > max_fault_sets)
    throw std::runtime_error(
        "check_edge_ft_spanner_exact: too many edge-fault sets");

  const Csr cg(g), ch(h);
  const auto h2g = h_to_g_edges(g, h);
  DijkstraEngine dg_eng, dh_eng;
  std::vector<char> dead_h(h.num_edges(), 0);
  EdgeFtCheckResult out;

  // Pooled fault mask: set/clear via the O(r) combination, not an m-byte
  // allocation per fault set.
  std::vector<char> dead(m, 0);
  for (std::size_t size = 0; size <= std::min(r, m); ++size) {
    std::vector<EdgeId> comb(size);
    for (std::size_t i = 0; i < size; ++i) comb[i] = static_cast<EdgeId>(i);
    while (true) {
      for (EdgeId e : comb) dead[e] = 1;
      check_one(cg, ch, h2g, k, dead, dg_eng, dh_eng, dead_h, out, comb);
      for (EdgeId e : comb) dead[e] = 0;

      if (size == 0) break;
      std::size_t i = size;
      while (i > 0) {
        --i;
        if (comb[i] != static_cast<EdgeId>(m - size + i)) break;
        if (i == 0) {
          i = size;
          break;
        }
      }
      if (i == size) break;
      ++comb[i];
      for (std::size_t j = i + 1; j < size; ++j)
        comb[j] = static_cast<EdgeId>(comb[j - 1] + 1);
    }
  }
  return out;
}

EdgeFtCheckResult check_edge_ft_spanner_sampled(const Graph& g, const Graph& h,
                                                double k, std::size_t r,
                                                std::size_t random_trials,
                                                std::size_t adversarial_edges,
                                                std::uint64_t seed) {
  const std::size_t m = g.num_edges();
  const Csr cg(g), ch(h);
  const auto h2g = h_to_g_edges(g, h);
  Rng rng(seed);
  EdgeFtCheckResult out;
  if (m == 0) return out;

  DijkstraEngine dg_eng, dh_eng;
  std::vector<char> scratch_dead_h(h.num_edges(), 0);

  std::vector<EdgeId> pool(m);
  for (EdgeId e = 0; e < m; ++e) pool[e] = e;
  const std::size_t fault_size = std::min(r, m);

  std::vector<char> dead(m, 0);  // pooled; cleared via the O(r) fault list
  for (std::size_t t = 0; t < random_trials; ++t) {
    rng.shuffle(pool);
    std::vector<EdgeId> faults(pool.begin(), pool.begin() + fault_size);
    for (EdgeId e : faults) dead[e] = 1;
    check_one(cg, ch, h2g, k, dead, dg_eng, dh_eng, scratch_dead_h, out,
              faults);
    for (EdgeId e : faults) dead[e] = 0;
  }

  // Adversary: fail edges along H's current shortest path for a probed edge.
  for (std::size_t t = 0; t < adversarial_edges; ++t) {
    const EdgeId probe = static_cast<EdgeId>(rng.uniform_index(m));
    const Edge& e = g.edge(probe);
    std::fill(dead.begin(), dead.end(), 0);
    std::fill(scratch_dead_h.begin(), scratch_dead_h.end(), 0);
    std::vector<char>& dead_g = dead;
    std::vector<char>& dead_h = scratch_dead_h;
    std::vector<EdgeId> faults;
    for (std::size_t step = 0; step < r; ++step) {
      dh_eng.run_avoiding_edges(ch, e.u, dead_h);
      if (dh_eng.dist(e.v) >= kInfiniteWeight) break;
      // Collect the h-path's edges (by walking via edges backwards).
      std::vector<EdgeId> path;
      for (Vertex x = e.v; dh_eng.via(x) != kInvalidEdge;
           x = h.edge(dh_eng.via(x)).other(x))
        path.push_back(dh_eng.via(x));
      if (path.empty()) break;
      const EdgeId victim_h = path[rng.uniform_index(path.size())];
      const EdgeId victim_g = h2g[victim_h];
      if (victim_g == kInvalidEdge || victim_g == probe) continue;
      dead_h[victim_h] = 1;
      dead_g[victim_g] = 1;
      faults.push_back(victim_g);
    }
    check_one(cg, ch, h2g, k, dead_g, dg_eng, dh_eng, scratch_dead_h, out,
              faults);
  }
  return out;
}

}  // namespace ftspan
