#include "ftspanner/edge_faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "ftspanner/parallel.hpp"
#include "ftspanner/validate.hpp"  // count_fault_sets (C(m, <=r) reuse)
#include "spanner/greedy.hpp"
#include "util/rng.hpp"

namespace ftspan {

namespace {

struct QueueItem {
  Weight dist;
  Vertex v;
  bool operator>(const QueueItem& o) const { return dist > o.dist; }
};

using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

struct EdgeAvoidingTree {
  std::vector<Weight> dist;
  std::vector<EdgeId> via;  ///< edge used to reach each vertex
};

EdgeAvoidingTree dijkstra_avoiding(const Graph& g, Vertex source,
                                   const std::vector<char>& dead) {
  EdgeAvoidingTree t;
  t.dist.assign(g.num_vertices(), kInfiniteWeight);
  t.via.assign(g.num_vertices(), kInvalidEdge);
  MinQueue q;
  t.dist[source] = 0;
  q.push({0, source});
  while (!q.empty()) {
    const auto [d, v] = q.top();
    q.pop();
    if (d > t.dist[v]) continue;
    for (const Arc& a : g.neighbors(v)) {
      if (dead[a.edge]) continue;
      const Weight nd = d + a.w;
      if (nd < t.dist[a.to]) {
        t.dist[a.to] = nd;
        t.via[a.to] = a.edge;
        q.push({nd, a.to});
      }
    }
  }
  return t;
}

/// Maps each h-edge to the corresponding g-edge id (by endpoints).
std::vector<EdgeId> h_to_g_edges(const Graph& g, const Graph& h) {
  std::vector<EdgeId> map(h.num_edges(), kInvalidEdge);
  for (EdgeId id = 0; id < h.num_edges(); ++id) {
    const Edge& e = h.edge(id);
    const auto gid = g.edge_id(e.u, e.v);
    if (gid) map[id] = *gid;
  }
  return map;
}

/// Checks one edge-fault set; updates the result.
void check_one(const Graph& g, const Graph& h,
               const std::vector<EdgeId>& h2g, double k,
               const std::vector<char>& dead_g, EdgeFtCheckResult& out,
               const std::vector<EdgeId>& fault_list) {
  ++out.fault_sets_checked;
  std::vector<char> dead_h(h.num_edges(), 0);
  for (EdgeId hid = 0; hid < h.num_edges(); ++hid)
    if (h2g[hid] != kInvalidEdge && dead_g[h2g[hid]]) dead_h[hid] = 1;

  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    bool relevant = false;
    for (const Arc& a : g.neighbors(u))
      if (a.to > u && !dead_g[a.edge]) {
        relevant = true;
        break;
      }
    if (!relevant) continue;
    const auto dg = dijkstra_avoiding(g, u, dead_g);
    const auto dh = dijkstra_avoiding(h, u, dead_h);
    for (const Arc& a : g.neighbors(u)) {
      if (a.to < u || dead_g[a.edge]) continue;
      if (dg.dist[a.to] >= kInfiniteWeight || dg.dist[a.to] <= 0) continue;
      const double stretch = dh.dist[a.to] < kInfiniteWeight
                                 ? dh.dist[a.to] / dg.dist[a.to]
                                 : std::numeric_limits<double>::infinity();
      if (stretch > out.worst_stretch) {
        out.worst_stretch = stretch;
        out.witness_faults = fault_list;
      }
      if (stretch > k * (1 + 1e-9)) out.valid = false;
    }
  }
}

}  // namespace

std::size_t edge_conversion_iterations(std::size_t r, std::size_t n, double c) {
  const double rr = static_cast<double>(std::max<std::size_t>(r, 1));
  const double keep = rr >= 2 ? 1.0 / rr : 0.5;
  const double q = keep * std::pow(1.0 - keep, rr);
  const double ln_n = std::log(static_cast<double>(std::max<std::size_t>(n, 2)));
  return static_cast<std::size_t>(std::ceil(c * (rr + 2.0) * ln_n / q));
}

EdgeFtResult ft_edge_greedy_spanner(const Graph& g, double k, std::size_t r,
                                    std::uint64_t seed,
                                    const EdgeFtOptions& options) {
  if (r < 1)
    throw std::invalid_argument("ft_edge_greedy_spanner: r must be >= 1");
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();

  const double keep = r >= 2 ? 1.0 / static_cast<double>(r) : 0.5;
  EdgeFtResult out;
  out.keep_probability = keep;
  out.iterations = options.iterations.value_or(
      edge_conversion_iterations(r, n, options.iteration_constant));

  out.threads_used = resolve_threads(options.threads, out.iterations);

  // Per-iteration RNG streams (hash_combine(seed, it)) keep the fan-out
  // schedule-independent; see parallel.hpp for the determinism contract.
  const IterationBody body = [&g, k, keep, seed, n,
                              m](std::size_t it, std::vector<char>& marks) {
    Rng rng(hash_combine(seed, it));
    // Survivor subgraph: alive edges, same vertex ids; remember the mapping
    // from the subgraph's (dense) edge ids back to g's.
    Graph sub(n);
    std::vector<EdgeId> back;
    back.reserve(m);
    for (EdgeId id = 0; id < m; ++id) {
      if (!rng.bernoulli(keep)) continue;
      const Edge& e = g.edge(id);
      sub.add_edge(e.u, e.v, e.w);
      back.push_back(id);
    }
    for (EdgeId sub_id : greedy_spanner(sub, k)) marks[back[sub_id]] = 1;
  };

  out.edges = marks_to_edges(
      union_iterations(out.iterations, out.threads_used, m, body));
  return out;
}

std::vector<Weight> distances_avoiding_edges(const Graph& g, Vertex source,
                                             const std::vector<char>& dead) {
  return dijkstra_avoiding(g, source, dead).dist;
}

EdgeFtCheckResult check_edge_ft_spanner_exact(const Graph& g, const Graph& h,
                                              double k, std::size_t r,
                                              std::size_t max_fault_sets) {
  const std::size_t m = g.num_edges();
  if (count_fault_sets(m, r) > max_fault_sets)
    throw std::runtime_error(
        "check_edge_ft_spanner_exact: too many edge-fault sets");

  const auto h2g = h_to_g_edges(g, h);
  EdgeFtCheckResult out;

  for (std::size_t size = 0; size <= std::min(r, m); ++size) {
    std::vector<EdgeId> comb(size);
    for (std::size_t i = 0; i < size; ++i) comb[i] = static_cast<EdgeId>(i);
    while (true) {
      std::vector<char> dead(m, 0);
      for (EdgeId e : comb) dead[e] = 1;
      check_one(g, h, h2g, k, dead, out, comb);

      if (size == 0) break;
      std::size_t i = size;
      while (i > 0) {
        --i;
        if (comb[i] != static_cast<EdgeId>(m - size + i)) break;
        if (i == 0) {
          i = size;
          break;
        }
      }
      if (i == size) break;
      ++comb[i];
      for (std::size_t j = i + 1; j < size; ++j)
        comb[j] = static_cast<EdgeId>(comb[j - 1] + 1);
    }
  }
  return out;
}

EdgeFtCheckResult check_edge_ft_spanner_sampled(const Graph& g, const Graph& h,
                                                double k, std::size_t r,
                                                std::size_t random_trials,
                                                std::size_t adversarial_edges,
                                                std::uint64_t seed) {
  const std::size_t m = g.num_edges();
  const auto h2g = h_to_g_edges(g, h);
  Rng rng(seed);
  EdgeFtCheckResult out;
  if (m == 0) return out;

  std::vector<EdgeId> pool(m);
  for (EdgeId e = 0; e < m; ++e) pool[e] = e;
  const std::size_t fault_size = std::min(r, m);

  for (std::size_t t = 0; t < random_trials; ++t) {
    rng.shuffle(pool);
    std::vector<char> dead(m, 0);
    std::vector<EdgeId> faults(pool.begin(), pool.begin() + fault_size);
    for (EdgeId e : faults) dead[e] = 1;
    check_one(g, h, h2g, k, dead, out, faults);
  }

  // Adversary: fail edges along H's current shortest path for a probed edge.
  for (std::size_t t = 0; t < adversarial_edges; ++t) {
    const EdgeId probe = static_cast<EdgeId>(rng.uniform_index(m));
    const Edge& e = g.edge(probe);
    std::vector<char> dead_g(m, 0);
    std::vector<char> dead_h(h.num_edges(), 0);
    std::vector<EdgeId> faults;
    for (std::size_t step = 0; step < r; ++step) {
      const auto dh = dijkstra_avoiding(h, e.u, dead_h);
      if (dh.dist[e.v] >= kInfiniteWeight) break;
      // Collect the h-path's edges (by walking via[] backwards).
      std::vector<EdgeId> path;
      for (Vertex x = e.v; dh.via[x] != kInvalidEdge;
           x = h.edge(dh.via[x]).other(x))
        path.push_back(dh.via[x]);
      if (path.empty()) break;
      const EdgeId victim_h = path[rng.uniform_index(path.size())];
      const EdgeId victim_g = h2g[victim_h];
      if (victim_g == kInvalidEdge || victim_g == probe) continue;
      dead_h[victim_h] = 1;
      dead_g[victim_g] = 1;
      faults.push_back(victim_g);
    }
    check_one(g, h, h2g, k, dead_g, out, faults);
  }
  return out;
}

}  // namespace ftspan
