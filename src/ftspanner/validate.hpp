// Fault-tolerance validators for k-spanners — thin wrappers over the
// batched StretchOracle (src/validate/stretch_oracle.hpp).
//
// Exact validation enumerates every fault set F with |F| <= r (feasible when
// C(n, r) is small); sampled validation draws random fault sets and also
// runs a targeted adversary that repeatedly fails interior vertices of the
// spanner's current shortest path between an edge's endpoints — the most
// damaging vertices for that pair. Per fault set the oracle runs one
// source-batched Dijkstra pair per spanner-edge endpoint (not one per pair),
// reuses epoch-stamped scratch across fault sets, and fans independent fault
// sets across FtCheckOptions::threads workers with a thread-count-invariant
// worst witness.
//
// FtCheckResult, FtCheckOptions, and count_fault_sets live in
// validate/stretch_oracle.hpp and are re-exported here for the validators'
// historical call sites.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "validate/stretch_oracle.hpp"

namespace ftspan {

/// Exact check: h is an r-fault-tolerant k-spanner of g?
/// Enumerates all fault sets of size exactly 0..r; throws std::runtime_error
/// (reporting n, r, and the computed fault-set count) if the number of fault
/// sets exceeds options.max_fault_sets.
FtCheckResult check_ft_spanner_exact(const Graph& g, const Graph& h, double k,
                                     std::size_t r,
                                     const FtCheckOptions& options);
FtCheckResult check_ft_spanner_exact(const Graph& g, const Graph& h, double k,
                                     std::size_t r,
                                     std::size_t max_fault_sets = 2'000'000);

/// Sampled check: `random_trials` uniform fault sets of size r, plus a
/// targeted adversary over `adversarial_edges` random edges (for each, up to
/// r interior vertices of the current spanner path are failed iteratively).
/// A returned valid=true is evidence, not proof.
FtCheckResult check_ft_spanner_sampled(const Graph& g, const Graph& h,
                                       double k, std::size_t r,
                                       std::size_t random_trials,
                                       std::size_t adversarial_edges,
                                       std::uint64_t seed,
                                       const FtCheckOptions& options);
FtCheckResult check_ft_spanner_sampled(const Graph& g, const Graph& h,
                                       double k, std::size_t r,
                                       std::size_t random_trials,
                                       std::size_t adversarial_edges,
                                       std::uint64_t seed);

}  // namespace ftspan
