// Fault-tolerance validators for k-spanners.
//
// Exact validation enumerates every fault set F with |F| <= r (feasible when
// C(n, r) is small); sampled validation draws random fault sets and also
// runs a targeted adversary that repeatedly fails interior vertices of the
// spanner's current shortest path between an edge's endpoints — the most
// damaging vertices for that pair.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"

namespace ftspan {

struct FtCheckResult {
  bool valid = true;
  double worst_stretch = 1.0;          ///< max observed d_H\F / d_G\F
  VertexSet witness_faults;            ///< fault set achieving worst_stretch
  Vertex witness_u = kInvalidVertex;   ///< violated / worst pair
  Vertex witness_v = kInvalidVertex;
  std::size_t fault_sets_checked = 0;

  /// Records (F, u, v, stretch) if it is worse than the current worst.
  void consider(double stretch, const VertexSet& faults, Vertex u, Vertex v,
                double k);
};

/// Exact check: h is an r-fault-tolerant k-spanner of g?
/// Enumerates all fault sets of size exactly 0..r; throws std::runtime_error
/// if the number of fault sets exceeds `max_fault_sets`.
FtCheckResult check_ft_spanner_exact(const Graph& g, const Graph& h, double k,
                                     std::size_t r,
                                     std::size_t max_fault_sets = 2'000'000);

/// Sampled check: `random_trials` uniform fault sets of size r, plus a
/// targeted adversary over `adversarial_edges` random edges (for each, up to
/// r interior vertices of the current spanner path are failed iteratively).
/// A returned valid=true is evidence, not proof.
FtCheckResult check_ft_spanner_sampled(const Graph& g, const Graph& h,
                                       double k, std::size_t r,
                                       std::size_t random_trials,
                                       std::size_t adversarial_edges,
                                       std::uint64_t seed);

/// Number of fault sets of size <= r over n vertices (saturating).
std::size_t count_fault_sets(std::size_t n, std::size_t r);

}  // namespace ftspan
