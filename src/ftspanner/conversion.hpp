// Theorem 2.1: the fault-tolerance conversion.
//
// Given any k-spanner construction, build an r-fault-tolerant k-spanner by
// repeating Θ(r³ log n) times: sample a fault set J by putting each vertex
// into J independently with probability 1 - 1/r (1/2 when r = 1), run the
// base construction on G \ J, and take the union of all iterations.
//
// The oversampling is the point: a single iteration's survivors G \ J
// simultaneously certify the spanner condition for *many* fault sets F of
// size <= r (all those with F ⊆ J and the relevant edge endpoints alive),
// which is why polynomially many iterations suffice.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "graph/engine_policy.hpp"
#include "graph/graph.hpp"

namespace ftspan {

/// A pluggable k-spanner construction: (graph, removed-vertex mask, seed) ->
/// edge ids of a k-spanner of G \ mask. Randomized bases consume the seed;
/// deterministic ones ignore it. With ConversionOptions::threads != 1 the
/// callback is invoked concurrently from multiple workers, so it must be
/// thread-safe: no mutable state shared across calls (derive all randomness
/// from the seed argument, keep scratch buffers per call).
using BaseSpanner = std::function<std::vector<EdgeId>(
    const Graph&, const VertexSet*, std::uint64_t)>;

/// A base spanner *bound* to one graph and one worker thread: (removed-vertex
/// mask, seed) -> edge ids of a k-spanner of G \ mask. A bound instance is
/// only ever called sequentially by its owning worker, so it may reuse
/// internal scratch across calls (pooled Dijkstra engine, incremental
/// adjacency, output buffer); the returned span is valid until the next
/// call. This is the zero-allocation hot path of the conversion.
using BoundBaseSpanner =
    std::function<std::span<const EdgeId>(const VertexSet*, std::uint64_t)>;

/// Creates one BoundBaseSpanner per worker thread. Called concurrently from
/// the workers, so it must only read shared immutable context (e.g. a
/// GreedyContext with the hoisted edge-weight sort) and construct fresh
/// per-worker state.
using BaseSpannerFactory = std::function<BoundBaseSpanner()>;

struct ConversionOptions {
  /// c in alpha = ceil(c * max(r,1)^3 * ln n). Theorem 2.1 needs c = Θ(1);
  /// experiment A1 measures how small c can go in practice.
  double iteration_constant = 1.0;

  /// Hard override of the iteration count (ignores iteration_constant).
  std::optional<std::size_t> iterations;

  /// Ablation A2: vertex keep-probability = scale * (1/r), clamped to (0,1].
  /// The paper's choice is scale = 1.
  double keep_probability_scale = 1.0;

  /// Worker threads for the iteration fan-out (see ftspanner/parallel.hpp).
  /// 1 = in-thread sequential loop; 0 = all hardware threads (capped at
  /// kMaxConversionThreads). Every value yields a bit-identical edge set for
  /// the same seed — iterations draw from per-iteration RNG streams, not a
  /// shared sequential stream. With threads != 1 the BaseSpanner callback
  /// must be safe to invoke concurrently.
  std::size_t threads = 1;

  /// Shortest-path engine policy for the built-in greedy base
  /// (graph/engine_policy.hpp); custom BaseSpanner callbacks are free to
  /// ignore it. Never affects the output edge set.
  SpEnginePolicy engine = SpEnginePolicy::kAuto;

  /// Iterations per burst handed to a pipeline worker (0 = default burst;
  /// see pipeline/burst_pipeline.hpp). Irrelevant to the output.
  std::size_t batch = 0;

  /// Integer-weight ceiling separating the Dial bucket queue from
  /// delta-stepping under engine resolution (the `bucket_max=` knob; see
  /// graph/engine_policy.hpp). Never affects the output edge set.
  Weight bucket_max = kMaxBucketWeight;

  /// Pin worker lanes to cores (util/affinity.hpp). A hint — per-lane
  /// success lands in ConversionResult::lane_pinned, never assumed.
  /// Irrelevant to the output.
  bool pin = false;
};

struct ConversionResult {
  std::vector<EdgeId> edges;      ///< spanner edges (ids into the input graph)
  std::size_t iterations = 0;     ///< alpha actually used
  std::size_t max_survivors = 0;  ///< largest |V \ J| over iterations
  double keep_probability = 0;    ///< per-vertex survival probability used
  std::size_t threads_used = 1;   ///< workers the engine actually ran with
  std::vector<char> lane_pinned;  ///< per-lane affinity status (1 = pinned)
  std::size_t lanes_pinned = 0;   ///< number of successfully pinned lanes
};

/// Number of iterations alpha = ceil(c * max(r,1)^3 * ln n) used by the
/// conversion (Theorem 2.1's Θ(r³ log n)).
std::size_t conversion_iterations(std::size_t r, std::size_t n, double c = 1.0);

/// The conversion of Theorem 2.1. Requires r >= 1 and k >= 1.
ConversionResult fault_tolerant_spanner(const Graph& g, std::size_t r,
                                        const BaseSpanner& base,
                                        std::uint64_t seed,
                                        const ConversionOptions& options = {});

/// As above with per-worker pooled base-spanner state — the allocation-free
/// path used by ft_greedy_spanner. Custom bases that keep scratch across
/// iterations should prefer this overload.
ConversionResult fault_tolerant_spanner(const Graph& g, std::size_t r,
                                        const BaseSpannerFactory& factory,
                                        std::uint64_t seed,
                                        const ConversionOptions& options = {});

/// Corollary 2.2: the conversion applied to the greedy k-spanner.
ConversionResult ft_greedy_spanner(const Graph& g, double k, std::size_t r,
                                   std::uint64_t seed,
                                   const ConversionOptions& options = {});

/// Corollary 2.2's size bound O(r^{2-2/(k+1)} n^{1+2/(k+1)} log n) (constant 1).
double corollary22_size_bound(std::size_t n, double k, std::size_t r);

/// CLPR09's size bound O(r² k^{r+1} n^{1+1/k} log^{1-1/k} n) for stretch
/// 2k-1 (constant 1), expressed in terms of the *stretch* s = 2k-1 so it is
/// directly comparable with corollary22_size_bound(n, s, r).
double clpr09_size_bound(std::size_t n, double stretch, std::size_t r);

}  // namespace ftspan
