#include "ftspanner/validate.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "graph/shortest_paths.hpp"
#include "spanner/verify.hpp"
#include "util/rng.hpp"

namespace ftspan {

void FtCheckResult::consider(double stretch, const VertexSet& faults, Vertex u,
                             Vertex v, double k) {
  if (stretch > worst_stretch) {
    worst_stretch = stretch;
    witness_faults = faults;
    witness_u = u;
    witness_v = v;
  }
  if (stretch > k * (1 + 1e-9)) valid = false;
}

std::size_t count_fault_sets(std::size_t n, std::size_t r) {
  constexpr std::size_t kCap = std::numeric_limits<std::size_t>::max() / 4;
  std::size_t total = 0;
  for (std::size_t size = 0; size <= r && size <= n; ++size) {
    // C(n, size), saturating.
    std::size_t c = 1;
    for (std::size_t i = 0; i < size; ++i) {
      if (c > kCap / (n - i)) return kCap;
      c = c * (n - i) / (i + 1);
    }
    if (total > kCap - c) return kCap;
    total += c;
  }
  return total;
}

namespace {

/// Worst stretch over surviving edges for one fixed fault set.
void check_one_fault_set(const Graph& g, const Graph& h, double k,
                         const VertexSet& faults, FtCheckResult& out) {
  ++out.fault_sets_checked;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (faults.contains(u)) continue;
    bool relevant = false;
    for (const Arc& a : g.neighbors(u))
      if (a.to > u && !faults.contains(a.to)) {
        relevant = true;
        break;
      }
    if (!relevant) continue;
    const auto dg = dijkstra(g, u, &faults);
    const auto dh = dijkstra(h, u, &faults);
    for (const Arc& a : g.neighbors(u)) {
      if (a.to < u || faults.contains(a.to)) continue;
      if (!dg.reachable(a.to) || dg.dist[a.to] <= 0) continue;
      const double stretch = dh.reachable(a.to)
                                 ? dh.dist[a.to] / dg.dist[a.to]
                                 : std::numeric_limits<double>::infinity();
      out.consider(stretch, faults, u, a.to, k);
    }
  }
}

}  // namespace

FtCheckResult check_ft_spanner_exact(const Graph& g, const Graph& h, double k,
                                     std::size_t r,
                                     std::size_t max_fault_sets) {
  const std::size_t n = g.num_vertices();
  if (count_fault_sets(n, r) > max_fault_sets)
    throw std::runtime_error(
        "check_ft_spanner_exact: too many fault sets; use the sampled check");

  FtCheckResult out;
  out.witness_faults = VertexSet(n);

  // Enumerate subsets of size exactly `size` for size = 0..r via the
  // standard lexicographic combination walk.
  for (std::size_t size = 0; size <= std::min(r, n); ++size) {
    std::vector<Vertex> comb(size);
    for (std::size_t i = 0; i < size; ++i) comb[i] = static_cast<Vertex>(i);
    while (true) {
      VertexSet faults(n);
      for (Vertex v : comb) faults.insert(v);
      check_one_fault_set(g, h, k, faults, out);

      // Advance to next combination.
      if (size == 0) break;
      std::size_t i = size;
      while (i > 0) {
        --i;
        if (comb[i] != static_cast<Vertex>(n - size + i)) break;
        if (i == 0) {
          i = size;  // done
          break;
        }
      }
      if (i == size) break;
      ++comb[i];
      for (std::size_t j = i + 1; j < size; ++j)
        comb[j] = static_cast<Vertex>(comb[j - 1] + 1);
    }
  }
  return out;
}

FtCheckResult check_ft_spanner_sampled(const Graph& g, const Graph& h,
                                       double k, std::size_t r,
                                       std::size_t random_trials,
                                       std::size_t adversarial_edges,
                                       std::uint64_t seed) {
  const std::size_t n = g.num_vertices();
  Rng rng(seed);
  FtCheckResult out;
  out.witness_faults = VertexSet(n);

  // Uniform random fault sets of size min(r, n-2).
  const std::size_t fault_size = std::min(r, n >= 2 ? n - 2 : std::size_t{0});
  std::vector<Vertex> pool(n);
  for (Vertex v = 0; v < n; ++v) pool[v] = v;
  for (std::size_t t = 0; t < random_trials; ++t) {
    rng.shuffle(pool);
    VertexSet faults(n);
    for (std::size_t i = 0; i < fault_size; ++i) faults.insert(pool[i]);
    check_one_fault_set(g, h, k, faults, out);
  }

  // Targeted adversary: for a random surviving edge (u, v), repeatedly fail
  // an interior vertex of H's current shortest u-v path (up to r faults),
  // then evaluate that pair under the final fault set.
  if (g.num_edges() > 0) {
    for (std::size_t t = 0; t < adversarial_edges; ++t) {
      const EdgeId id = static_cast<EdgeId>(rng.uniform_index(g.num_edges()));
      const Edge& e = g.edge(id);
      VertexSet faults(n);
      for (std::size_t step = 0; step < r; ++step) {
        const auto dh = dijkstra(h, e.u, &faults);
        if (!dh.reachable(e.v)) break;  // already disconnected in H \ F
        // Walk the H-path from v back to u; collect interior vertices.
        std::vector<Vertex> interior;
        for (Vertex x = dh.parent[e.v]; x != kInvalidVertex && x != e.u;
             x = dh.parent[x])
          interior.push_back(x);
        if (interior.empty()) break;  // direct edge in H; cannot be attacked
        faults.insert(interior[rng.uniform_index(interior.size())]);
      }
      ++out.fault_sets_checked;
      const auto dg = dijkstra(g, e.u, &faults);
      const auto dh = dijkstra(h, e.u, &faults);
      if (faults.contains(e.u) || faults.contains(e.v)) continue;
      if (!dg.reachable(e.v) || dg.dist[e.v] <= 0) continue;
      const double stretch = dh.reachable(e.v)
                                 ? dh.dist[e.v] / dg.dist[e.v]
                                 : std::numeric_limits<double>::infinity();
      out.consider(stretch, faults, e.u, e.v, k);
    }
  }
  return out;
}

}  // namespace ftspan
