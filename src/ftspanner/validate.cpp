#include "ftspanner/validate.hpp"

namespace ftspan {

FtCheckResult check_ft_spanner_exact(const Graph& g, const Graph& h, double k,
                                     std::size_t r,
                                     const FtCheckOptions& options) {
  const std::size_t n = g.num_vertices();
  const std::size_t count = count_fault_sets(n, r);
  if (count > options.max_fault_sets)
    throw_fault_set_overflow("check_ft_spanner_exact", n, r, count,
                             options.max_fault_sets);
  return StretchOracle(g, h, k).check_exact(r, options);
}

FtCheckResult check_ft_spanner_exact(const Graph& g, const Graph& h, double k,
                                     std::size_t r,
                                     std::size_t max_fault_sets) {
  FtCheckOptions options;
  options.max_fault_sets = max_fault_sets;
  return check_ft_spanner_exact(g, h, k, r, options);
}

FtCheckResult check_ft_spanner_sampled(const Graph& g, const Graph& h,
                                       double k, std::size_t r,
                                       std::size_t random_trials,
                                       std::size_t adversarial_edges,
                                       std::uint64_t seed,
                                       const FtCheckOptions& options) {
  return StretchOracle(g, h, k).check_sampled(r, random_trials,
                                              adversarial_edges, seed,
                                              options);
}

FtCheckResult check_ft_spanner_sampled(const Graph& g, const Graph& h,
                                       double k, std::size_t r,
                                       std::size_t random_trials,
                                       std::size_t adversarial_edges,
                                       std::uint64_t seed) {
  return check_ft_spanner_sampled(g, h, k, r, random_trials,
                                  adversarial_edges, seed, FtCheckOptions{});
}

}  // namespace ftspan
