#include "ftspanner/baselines.hpp"

#include <algorithm>
#include <stdexcept>

#include "ftspanner/validate.hpp"
#include "spanner/greedy.hpp"
#include "util/rng.hpp"

namespace ftspan {

std::vector<EdgeId> union_over_faults_spanner(const Graph& g, std::size_t r,
                                              const BaseSpanner& base,
                                              std::uint64_t seed,
                                              std::size_t max_fault_sets) {
  const std::size_t n = g.num_vertices();
  if (count_fault_sets(n, r) > max_fault_sets)
    throw std::runtime_error(
        "union_over_faults_spanner: too many fault sets for the exact union");

  Rng rng(seed);
  std::vector<char> in_spanner(g.num_edges(), 0);

  // Enumerate fault sets of size exactly 0..r.
  for (std::size_t size = 0; size <= std::min(r, n); ++size) {
    std::vector<Vertex> comb(size);
    for (std::size_t i = 0; i < size; ++i) comb[i] = static_cast<Vertex>(i);
    while (true) {
      VertexSet faults(n);
      for (Vertex v : comb) faults.insert(v);
      for (EdgeId id : base(g, &faults, rng())) in_spanner[id] = 1;

      if (size == 0) break;
      std::size_t i = size;
      while (i > 0) {
        --i;
        if (comb[i] != static_cast<Vertex>(n - size + i)) break;
        if (i == 0) {
          i = size;
          break;
        }
      }
      if (i == size) break;
      ++comb[i];
      for (std::size_t j = i + 1; j < size; ++j)
        comb[j] = static_cast<Vertex>(comb[j - 1] + 1);
    }
  }

  std::vector<EdgeId> out;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (in_spanner[id]) out.push_back(id);
  return out;
}

std::vector<EdgeId> layered_greedy_spanner(const Graph& g, double k,
                                           std::size_t r) {
  if (k < 1.0)
    throw std::invalid_argument("layered_greedy_spanner: k must be >= 1");

  // One edge-weight sort for all layers; one pooled workspace whose scratch
  // spanner is reset O(kept) between layers.
  const GreedyContext ctx(g);
  GreedyWorkspace ws;
  ws.reserve(g.num_vertices(), g.num_edges());
  ws.configure_scratch(ctx.weights);

  std::vector<char> taken(g.num_edges(), 0);
  std::vector<EdgeId> out;
  for (std::size_t layer = 0; layer <= r; ++layer) {
    ws.reset(g.num_vertices());
    for (const GreedyContext::OrderedEdge& e : ctx.sorted) {
      if (taken[e.id]) continue;
      const Weight bound = k * e.w * (1 + kStretchSlack);
      if (ws.bounded_pair(e.u, e.v, nullptr, bound) > k * e.w) {
        ws.add_edge(e.u, e.v, e.w);
        taken[e.id] = 1;
        out.push_back(e.id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ftspan
