// Edge-fault-tolerant spanners: the conversion of Theorem 2.1 adapted to
// edge faults.
//
// H is an r-EDGE-fault-tolerant k-spanner if for every F ⊆ E with |F| <= r
// and all u, v: d_{H∖F}(u,v) <= k · d_{G∖F}(u,v). The oversampling argument
// carries over verbatim with edges in place of vertices: per iteration keep
// each edge independently with probability 1/r (1/2 when r = 1), build a
// k-spanner of the surviving subgraph, and union the iterations. For a
// surviving edge e and fault set F the per-iteration success probability is
// q = keep · (1-keep)^r (only e itself must survive — its endpoints always
// exist), so α = c (r+2) ln n / q iterations suffice w.h.p. CLPR09 observe
// that edge faults are the easy case; this module makes the library cover
// both fault models.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/engine_policy.hpp"
#include "graph/graph.hpp"

namespace ftspan {

struct EdgeFtOptions {
  double iteration_constant = 1.0;
  std::optional<std::size_t> iterations;

  /// Worker threads for the iteration fan-out (see ftspanner/parallel.hpp).
  /// 1 = in-thread sequential loop; 0 = all hardware threads (capped at
  /// kMaxConversionThreads). Every value yields a bit-identical edge set for
  /// the same seed.
  std::size_t threads = 1;

  /// Shortest-path engine policy for the per-iteration greedy searches
  /// (graph/engine_policy.hpp). Output is engine-independent.
  SpEnginePolicy engine = SpEnginePolicy::kAuto;

  /// Iterations per burst handed to a pipeline worker (0 = default burst;
  /// see pipeline/burst_pipeline.hpp). Irrelevant to the output.
  std::size_t batch = 0;

  /// Bucket/delta engine-resolution ceiling (graph/engine_policy.hpp).
  /// Output is engine-independent.
  Weight bucket_max = kMaxBucketWeight;

  /// Pin worker lanes to cores (util/affinity.hpp); per-lane success is
  /// reported in EdgeFtResult::lane_pinned. Irrelevant to the output.
  bool pin = false;
};

struct EdgeFtResult {
  std::vector<EdgeId> edges;
  std::size_t iterations = 0;
  double keep_probability = 0;
  std::size_t threads_used = 1;  ///< workers the engine actually ran with
  std::vector<char> lane_pinned;  ///< per-lane affinity status (1 = pinned)
  std::size_t lanes_pinned = 0;   ///< number of successfully pinned lanes
};

/// α = ceil(c (r+2) ln n / (keep (1-keep)^r)).
std::size_t edge_conversion_iterations(std::size_t r, std::size_t n,
                                       double c = 1.0);

/// The edge-fault conversion over the greedy k-spanner. r >= 1, k >= 1.
EdgeFtResult ft_edge_greedy_spanner(const Graph& g, double k, std::size_t r,
                                    std::uint64_t seed,
                                    const EdgeFtOptions& options = {});

/// Dijkstra avoiding a set of failed edges (by edge id into g).
std::vector<Weight> distances_avoiding_edges(const Graph& g, Vertex source,
                                             const std::vector<char>& dead);

struct EdgeFtCheckResult {
  bool valid = true;
  double worst_stretch = 1.0;
  std::vector<EdgeId> witness_faults;
  std::size_t fault_sets_checked = 0;
};

/// Exact check over all edge-fault sets of size <= r (small graphs only;
/// throws if there are more than max_fault_sets sets).
EdgeFtCheckResult check_edge_ft_spanner_exact(
    const Graph& g, const Graph& h, double k, std::size_t r,
    std::size_t max_fault_sets = 2'000'000);

/// Random + adversarial sampled check (the adversary repeatedly fails an
/// edge on H's current shortest path between a probed edge's endpoints).
EdgeFtCheckResult check_edge_ft_spanner_sampled(const Graph& g, const Graph& h,
                                                double k, std::size_t r,
                                                std::size_t random_trials,
                                                std::size_t adversarial_edges,
                                                std::uint64_t seed);

}  // namespace ftspan
