#include "ftspanner/conversion.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "ftspanner/parallel.hpp"
#include "spanner/greedy.hpp"
#include "util/rng.hpp"

namespace ftspan {

std::size_t conversion_iterations(std::size_t r, std::size_t n, double c) {
  // The proof of Theorem 2.1 needs, for each (fault set, edge) pair, an
  // iteration where both endpoints survive and the fault set is oversampled:
  // success probability q = keep² (1-keep)^r per iteration (>= 1/(4r²) for
  // r >= 2, = 1/8 for r = 1). A union bound over the <= n^{r+2} pairs then
  // asks for alpha = c (r+2) ln n / q — this *is* Θ(r³ log n), with the
  // constants spelled out so that c = 1 is already valid at small n.
  const double rr = static_cast<double>(std::max<std::size_t>(r, 1));
  const double keep = rr >= 2 ? 1.0 / rr : 0.5;
  const double q = keep * keep * std::pow(1.0 - keep, rr);
  const double ln_n = std::log(static_cast<double>(std::max<std::size_t>(n, 2)));
  return static_cast<std::size_t>(std::ceil(c * (rr + 2.0) * ln_n / q));
}

ConversionResult fault_tolerant_spanner(const Graph& g, std::size_t r,
                                        const BaseSpannerFactory& factory,
                                        std::uint64_t seed,
                                        const ConversionOptions& options) {
  if (r < 1)
    throw std::invalid_argument("fault_tolerant_spanner: r must be >= 1");
  const std::size_t n = g.num_vertices();

  // Per-vertex survival probability: 1/r for r >= 2, 1/2 for r = 1 (the
  // proof of Theorem 2.1 sets p = 1 - 1/r and special-cases r = 1).
  double keep = (r >= 2) ? 1.0 / static_cast<double>(r) : 0.5;
  keep = std::clamp(keep * options.keep_probability_scale, 1e-9, 1.0);

  const std::size_t alpha =
      options.iterations.value_or(conversion_iterations(r, n, options.iteration_constant));

  ConversionResult result;
  result.iterations = alpha;
  result.keep_probability = keep;
  result.threads_used = resolve_threads(options.threads, alpha);

  // Each iteration is seeded by hash_combine(seed, it), so the engine may run
  // them in any order, on any worker, and still reproduce the sequential
  // output bit-for-bit (see parallel.hpp). Survivor counts land in distinct
  // slots of a pre-sized array — no synchronization needed. Each worker owns
  // a bound base spanner plus a reusable fault mask, so after its first
  // iteration the loop performs no heap allocations.
  std::vector<std::size_t> survivors(alpha, 0);
  const IterationBodyFactory bodies = [&factory, &survivors, keep, seed,
                                       n](std::size_t) -> IterationBody {
    return [base = factory(), removed = VertexSet(n), &survivors, keep, seed,
            n](std::size_t it, std::vector<char>& marks) mutable {
      Rng rng(hash_combine(seed, it));
      removed.clear();
      std::size_t alive = 0;
      for (Vertex v = 0; v < n; ++v) {
        if (rng.bernoulli(keep))
          ++alive;
        else
          removed.insert(v);
      }
      survivors[it] = alive;
      if (alive < 2) return;  // nothing to span
      for (EdgeId id : base(&removed, rng())) marks[id] = 1;
    };
  };

  // Passing the already-resolved count keeps threads_used exactly what the
  // engine runs with (resolve_threads is idempotent on its own output).
  result.edges = marks_to_edges(
      union_iterations(alpha, result.threads_used, g.num_edges(),
                       options.batch, bodies, options.pin,
                       &result.lane_pinned));
  for (const char p : result.lane_pinned) result.lanes_pinned += p != 0;
  if (alpha > 0)
    result.max_survivors = *std::max_element(survivors.begin(), survivors.end());
  return result;
}

ConversionResult fault_tolerant_spanner(const Graph& g, std::size_t r,
                                        const BaseSpanner& base,
                                        std::uint64_t seed,
                                        const ConversionOptions& options) {
  // Adapt the stateless interface: each worker gets a private output buffer
  // the copied edge list lands in.
  const BaseSpannerFactory factory = [&g, &base]() -> BoundBaseSpanner {
    return [&g, &base, buffer = std::vector<EdgeId>()](
               const VertexSet* mask,
               std::uint64_t it_seed) mutable -> std::span<const EdgeId> {
      buffer = base(g, mask, it_seed);
      return buffer;
    };
  };
  return fault_tolerant_spanner(g, r, factory, seed, options);
}

ConversionResult ft_greedy_spanner(const Graph& g, double k, std::size_t r,
                                   std::uint64_t seed,
                                   const ConversionOptions& options) {
  // The hoisted per-graph state: one edge-weight sort shared by every
  // iteration and every worker (it is read-only after construction).
  const GreedyContext ctx(g);
  const SpEnginePolicy engine = options.engine;
  const Weight bucket_max = options.bucket_max;
  const BaseSpannerFactory factory = [&ctx, k, engine,
                                      bucket_max]() -> BoundBaseSpanner {
    auto ws = std::make_shared<GreedyWorkspace>();
    ws->set_engine(engine, bucket_max);
    return [&ctx, k, ws](const VertexSet* mask,
                         std::uint64_t) -> std::span<const EdgeId> {
      return ws->run(ctx, k, mask);
    };
  };
  return fault_tolerant_spanner(g, r, factory, seed, options);
}

double corollary22_size_bound(std::size_t n, double k, std::size_t r) {
  const double nn = static_cast<double>(std::max<std::size_t>(n, 2));
  const double rr = static_cast<double>(std::max<std::size_t>(r, 1));
  const double exp_r = 2.0 - 2.0 / (k + 1.0);
  const double exp_n = 1.0 + 2.0 / (k + 1.0);
  return std::pow(rr, exp_r) * std::pow(nn, exp_n) * std::log(nn);
}

double clpr09_size_bound(std::size_t n, double stretch, std::size_t r) {
  const double nn = static_cast<double>(std::max<std::size_t>(n, 2));
  const double rr = static_cast<double>(std::max<std::size_t>(r, 1));
  const double k = (stretch + 1.0) / 2.0;  // stretch 2k-1 -> parameter k
  return rr * rr * std::pow(k, rr + 1.0) * std::pow(nn, 1.0 + 1.0 / k) *
         std::pow(std::log(nn), 1.0 - 1.0 / k);
}

}  // namespace ftspan
