// Comparators for the Theorem 2.1 conversion.
//
// 1. union_over_faults_spanner — the exact (exponential) strategy CLPR09
//    start from: build a spanner of G \ F for *every* fault set |F| <= r and
//    take the union. Always valid; feasible only for small C(n, r).
// 2. layered_greedy_spanner — a natural heuristic: r+1 rounds of the greedy
//    spanner, each round forbidden from reusing earlier rounds' edges
//    (union of r+1 edge-disjoint k-spanners). Cheap and small but NOT
//    vertex-fault-tolerant in general; experiment E3 shows it failing where
//    the conversion holds.
// 3. clpr09_size_bound (in conversion.hpp) — CLPR09's published size bound as
//    an analytic curve, used to exhibit the exponential-vs-polynomial
//    r-dependence without reimplementing their superseded construction.
#pragma once

#include <cstdint>
#include <vector>

#include "ftspanner/conversion.hpp"
#include "graph/graph.hpp"

namespace ftspan {

/// Union of base spanners over every fault set of size <= r.
/// Throws std::runtime_error if there are more than `max_fault_sets` sets.
std::vector<EdgeId> union_over_faults_spanner(
    const Graph& g, std::size_t r, const BaseSpanner& base, std::uint64_t seed,
    std::size_t max_fault_sets = 200'000);

/// Union of r+1 pairwise edge-disjoint greedy k-spanners (heuristic; valid
/// against r *edge* faults but not against vertex faults in general).
std::vector<EdgeId> layered_greedy_spanner(const Graph& g, double k,
                                           std::size_t r);

}  // namespace ftspan
