#include "ftspanner/parallel.hpp"

#include <algorithm>

#include "pipeline/burst_pipeline.hpp"
#include "util/thread_pool.hpp"

namespace ftspan {

std::size_t resolve_threads(std::size_t requested, std::size_t iterations) {
  std::size_t t = requested == 0 ? ThreadPool::hardware_threads() : requested;
  t = std::min(t, std::max<std::size_t>(iterations, 1));
  return std::clamp<std::size_t>(t, 1, kMaxConversionThreads);
}

std::vector<char> union_iterations(std::size_t iterations, std::size_t threads,
                                   std::size_t num_edges,
                                   const IterationBody& body) {
  return union_iterations(iterations, threads, num_edges, 0,
                          [&body](std::size_t) { return body; });
}

std::vector<char> union_iterations(std::size_t iterations, std::size_t threads,
                                   std::size_t num_edges,
                                   const IterationBodyFactory& factory) {
  return union_iterations(iterations, threads, num_edges, 0, factory);
}

std::vector<char> union_iterations(std::size_t iterations, std::size_t threads,
                                   std::size_t num_edges, std::size_t burst,
                                   const IterationBodyFactory& factory,
                                   bool pin, std::vector<char>* lane_pinned) {
  const std::size_t workers = resolve_threads(threads, iterations);

  if (workers == 1) {
    if (lane_pinned != nullptr) lane_pinned->assign(1, 0);
    std::vector<char> marks(num_edges, 0);
    const IterationBody body = factory(0);
    for (std::size_t it = 0; it < iterations; ++it) body(it, marks);
    return marks;
  }

  // Per-worker mark buffers: the burst pipeline guarantees worker w's task
  // runs only on worker w's thread, so buffers[w] needs no synchronization
  // beyond the pipeline's own join.
  std::vector<std::vector<char>> buffers(workers,
                                         std::vector<char>(num_edges, 0));
  BurstOptions opt;
  opt.workers = workers;
  opt.burst = burst;
  opt.pin = pin;
  std::vector<char> pinned = run_bursts(
      iterations, opt, [&buffers, &factory](std::size_t w) -> BurstTask {
        return [&marks = buffers[w],
                body = factory(w)](std::size_t it) { body(it, marks); };
      });
  if (lane_pinned != nullptr) *lane_pinned = std::move(pinned);

  // Fold in worker order: OR is commutative, so this is determinism garnish —
  // but it keeps the merged buffer's construction reproducible too.
  std::vector<char> out = std::move(buffers[0]);
  for (std::size_t w = 1; w < workers; ++w)
    for (std::size_t i = 0; i < num_edges; ++i) out[i] |= buffers[w][i];
  return out;
}

std::vector<EdgeId> marks_to_edges(const std::vector<char>& marks) {
  std::vector<EdgeId> edges;
  for (std::size_t id = 0; id < marks.size(); ++id)
    if (marks[id]) edges.push_back(static_cast<EdgeId>(id));
  return edges;
}

}  // namespace ftspan
