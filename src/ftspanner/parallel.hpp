// The parallel conversion engine.
//
// Both fault-tolerance conversions (vertex faults in conversion.cpp, edge
// faults in edge_faults.cpp) are a union of α independent sampling
// iterations. This engine fans those iterations across a thread pool and
// OR-merges per-thread edge marks, with two rules that make the result
// *bit-identical* to the sequential path for the same seed:
//
//   1. Every iteration draws from its own RNG stream, seeded by
//      hash_combine(seed, iteration index) — which worker runs it, and in
//      what order, cannot change what it samples.
//   2. The union is a commutative OR over per-thread mark buffers, folded in
//      worker order and emitted as a sorted edge-id scan — scheduling cannot
//      change the output edge set either.
//
// The engine is generic over the iteration body so that both fault models
// (and future conversions) share one implementation.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/types.hpp"

namespace ftspan {

/// One conversion iteration: runs iteration `it` and sets marks[id] = 1 for
/// every produced edge id. Must be deterministic given `it` alone (derive all
/// randomness from a per-iteration seed) and must not touch shared mutable
/// state other than writing slot `it` of per-iteration output arrays.
using IterationBody =
    std::function<void(std::size_t it, std::vector<char>& marks)>;

/// Creates the iteration body a single worker will call sequentially. Invoked
/// once per worker, from that worker's thread, so the body may own mutable
/// per-worker scratch (pooled Dijkstra engines, greedy workspaces, fault-set
/// buffers) without any synchronization. The factory itself is called
/// concurrently from different workers and must be safe to do so — in
/// practice it only reads shared immutable context and constructs fresh
/// state. Determinism contract is unchanged: body results may depend on `it`
/// only, never on which worker runs it or in what order.
using IterationBodyFactory = std::function<IterationBody(std::size_t worker)>;

/// Sanity ceiling on worker count, not a tuning knob: far above any
/// speedup-bearing thread count, low enough that a bogus request (e.g.
/// size_t(-1)) cannot exhaust OS threads — each worker also owns an m-byte
/// mark buffer.
inline constexpr std::size_t kMaxConversionThreads = 256;

/// Worker count actually used for a request: 0 means "all hardware threads";
/// the result is clamped to [1, min(iterations, kMaxConversionThreads)] so
/// oversubscription never spawns idle workers.
std::size_t resolve_threads(std::size_t requested, std::size_t iterations);

/// Runs `iterations` bodies across resolve_threads(threads, iterations)
/// workers (inline, pool-free, when that resolves to 1) and returns the
/// OR-union of their marks — a buffer of `num_edges` chars. Iterations are
/// fed to the workers in fixed-size bursts through per-worker SPSC rings
/// (pipeline/burst_pipeline.hpp), so the shared-line hand-off cost is paid
/// once per burst, not once per iteration; each worker owns a private mark
/// buffer, so the hot loop is write-contention-free. Rethrows the first
/// exception an iteration raised.
std::vector<char> union_iterations(std::size_t iterations, std::size_t threads,
                                   std::size_t num_edges,
                                   const IterationBody& body);

/// As above, but with per-worker pooled state: each worker builds its body
/// once via `factory` and then drains iterations through it.
std::vector<char> union_iterations(std::size_t iterations, std::size_t threads,
                                   std::size_t num_edges,
                                   const IterationBodyFactory& factory);

/// As above with an explicit burst size (iterations per ring hand-off);
/// 0 picks the default. Burst size never changes the output. With pin = true
/// worker lanes are core-pinned where supported (util/affinity.hpp); the
/// per-lane status (1 = pinned) is written to *lane_pinned when given — the
/// single-worker inline path reports one unpinned lane. Neither knob ever
/// changes the output marks.
std::vector<char> union_iterations(std::size_t iterations, std::size_t threads,
                                   std::size_t num_edges, std::size_t burst,
                                   const IterationBodyFactory& factory,
                                   bool pin = false,
                                   std::vector<char>* lane_pinned = nullptr);

/// Collects the marked edge ids in increasing order — the canonical output
/// form shared by the sequential and parallel paths.
std::vector<EdgeId> marks_to_edges(const std::vector<char>& marks);

}  // namespace ftspan
