// Epoch-stamped scratch for repeated Dijkstra runs.
//
// The validators run thousands of short Dijkstras (one per spanner-edge
// endpoint per fault set). A fresh ShortestPathTree per run spends more time
// in the allocator and the O(n) infinity-fill than in the actual search, so
// this scratch keeps dist/parent arrays alive across runs and invalidates
// them in O(1) by bumping an epoch counter: an entry is valid only while its
// stamp matches the current epoch. Each validation worker owns one scratch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ftspan {

/// Uniform out-arc access for the two graph types (Graph adjacency is
/// symmetric, so its "out" arcs are simply the incident arcs).
inline std::span<const Arc> out_arcs(const Graph& g, Vertex v) {
  return g.neighbors(v);
}
inline std::span<const Arc> out_arcs(const Digraph& g, Vertex v) {
  return g.out_neighbors(v);
}

class DijkstraScratch {
 public:
  /// Dijkstra from `source` on G \ faults, overwriting the previous run.
  ///
  /// With a non-empty `targets` list the search stops as soon as every
  /// target is settled; only target entries (and the parent chain of any
  /// settled vertex) are then guaranteed final. `bound` leaves vertices
  /// farther than it at infinity — same semantics as dijkstra()'s bound.
  template <class G>
  void run(const G& g, Vertex source, const VertexSet* faults,
           std::span<const Vertex> targets = {},
           Weight bound = kInfiniteWeight) {
    ensure(g.num_vertices());
    ++epoch_;
    heap_.clear();

    std::size_t remaining = 0;
    for (const Vertex t : targets)
      if (target_stamp_[t] != epoch_) {
        target_stamp_[t] = epoch_;
        ++remaining;
      }

    if (faults != nullptr && faults->contains(source)) return;
    stamp_[source] = epoch_;
    dist_[source] = 0;
    parent_[source] = kInvalidVertex;
    heap_.push_back({0, source});

    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
      const HeapItem item = heap_.back();
      heap_.pop_back();
      if (done_[item.v] == epoch_) continue;  // duplicate queue entry
      done_[item.v] = epoch_;
      if (target_stamp_[item.v] == epoch_ && --remaining == 0) break;
      for (const Arc& a : out_arcs(g, item.v)) {
        if (faults != nullptr && faults->contains(a.to)) continue;
        if (done_[a.to] == epoch_) continue;
        const Weight nd = item.d + a.w;
        if (nd > bound) continue;
        if (stamp_[a.to] != epoch_ || nd < dist_[a.to]) {
          stamp_[a.to] = epoch_;
          dist_[a.to] = nd;
          parent_[a.to] = item.v;
          heap_.push_back({nd, a.to});
          std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
        }
      }
    }
  }

  Weight dist(Vertex v) const {
    return stamp_[v] == epoch_ ? dist_[v] : kInfiniteWeight;
  }
  bool reachable(Vertex v) const { return dist(v) < kInfiniteWeight; }
  Vertex parent(Vertex v) const {
    return stamp_[v] == epoch_ ? parent_[v] : kInvalidVertex;
  }
  /// True iff v's distance is final (needed after a targeted early exit).
  bool settled(Vertex v) const { return done_[v] == epoch_; }

 private:
  struct HeapItem {
    Weight d;
    Vertex v;
  };
  struct HeapGreater {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return a.d > b.d;
    }
  };

  void ensure(std::size_t n) {
    if (stamp_.size() < n) {
      stamp_.resize(n, 0);
      done_.resize(n, 0);
      target_stamp_.resize(n, 0);
      dist_.resize(n);
      parent_.resize(n);
    }
  }

  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint64_t> done_;
  std::vector<std::uint64_t> target_stamp_;
  std::vector<Weight> dist_;
  std::vector<Vertex> parent_;
  std::vector<HeapItem> heap_;
};

}  // namespace ftspan
