// StretchOracle — the unified batched stretch-validation engine.
//
// Every validator in this repo reduces to the same question: over a family
// of fault sets F, how large does d_{H\F}(u,v) / d_{G\F}(u,v) get over the
// surviving edges (u,v) of G? (Checking edges suffices: every edge of a
// shortest path is stretched by at most k iff every pair is.) The oracle
// answers it with three mechanisms:
//
//   1. One source-batched Dijkstra pair per spanner-edge endpoint per fault
//      set — never one per pair. The G-side run is bounded by the largest
//      surviving incident edge length (d_{G\F}(u,v) <= w(u,v) for a
//      surviving edge), and both runs stop as soon as every incident target
//      is settled.
//   2. The shared shortest-path engine (graph/sp_engine.hpp): epoch-stamped
//      scratch reused across fault sets — no per-run allocation, O(1)
//      invalidation — running over immutable CSR snapshots of both graphs
//      taken once at oracle construction.
//   3. Independent fault sets fanned across util/thread_pool.hpp workers,
//      each with private scratch. Per-set witnesses land in an index-ordered
//      array and are folded sequentially, so the worst witness — and the
//      whole FtCheckResult — is bit-identical for every thread count.
//
// The legacy validators (ftspanner/validate.hpp, spanner/verify.hpp,
// spanner2/verify2.hpp) are thin wrappers over this class.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "graph/sp_engine.hpp"
#include "util/rng.hpp"

namespace ftspan {

struct FtCheckResult {
  bool valid = true;
  double worst_stretch = 1.0;          ///< max observed d_H\F / d_G\F
  VertexSet witness_faults;            ///< fault set achieving worst_stretch
  Vertex witness_u = kInvalidVertex;   ///< violated / worst pair
  Vertex witness_v = kInvalidVertex;
  std::size_t fault_sets_checked = 0;
  std::vector<char> lane_pinned;  ///< per-lane affinity status (1 = pinned)
  std::size_t lanes_pinned = 0;   ///< number of successfully pinned lanes

  /// Records (F, u, v, stretch) if it is worse than the current worst.
  void consider(double stretch, const VertexSet& faults, Vertex u, Vertex v,
                double k);
};

/// Options shared by all oracle-backed validators.
struct FtCheckOptions {
  /// Worker threads for the fault-set fan-out; 0 = all hardware threads
  /// (capped at kMaxConversionThreads). Every value yields a bit-identical
  /// FtCheckResult for the same inputs and seed.
  std::size_t threads = 1;

  /// Exact checks throw once the fault-set enumeration exceeds this.
  std::size_t max_fault_sets = 2'000'000;

  /// Shortest-path engine policy for the scratch engines
  /// (graph/engine_policy.hpp); resolved per graph from the CSR snapshots'
  /// weight profiles. Never changes the FtCheckResult.
  SpEnginePolicy engine = SpEnginePolicy::kAuto;

  /// Fault sets per burst handed to a pipeline worker (0 = default burst;
  /// see pipeline/burst_pipeline.hpp). Irrelevant to the result.
  std::size_t batch = 0;

  /// Bucket/delta engine-resolution ceiling (graph/engine_policy.hpp).
  /// Never changes the FtCheckResult.
  Weight bucket_max = kMaxBucketWeight;

  /// Pin worker lanes to cores (util/affinity.hpp); per-lane success is
  /// reported in FtCheckResult::lane_pinned. Irrelevant to the result.
  bool pin = false;
};

/// Number of fault sets of size <= r over n vertices (saturating).
std::size_t count_fault_sets(std::size_t n, std::size_t r);

/// Shared throw path for exact enumerations: reports where the overflow
/// happened plus n, r, the computed fault-set count, and the cap.
[[noreturn]] void throw_fault_set_overflow(const char* where, std::size_t n,
                                           std::size_t r, std::size_t count,
                                           std::size_t max_fault_sets);

/// The fault set drawn by check_sampled's random trial i: a partial
/// Fisher-Yates draw of `fault_size` distinct vertices from the identity
/// pool over out.universe_size() vertices, consuming `rng` (which trial i
/// seeds as Rng(hash_combine(seed, i))). Exposed so benches and tests can
/// replay the oracle's trial stream exactly.
void sample_fault_set(Rng& rng, std::size_t fault_size,
                      std::vector<Vertex>& pool, VertexSet& out);

template <class G>
class BasicStretchOracle {
 public:
  /// g is the base graph, h the candidate spanner (same vertex universe —
  /// throws std::invalid_argument otherwise), k the stretch to certify.
  /// Both graphs must outlive the oracle; the deleted overloads reject
  /// temporaries at compile time.
  BasicStretchOracle(const G& g, const G& h, double k);
  BasicStretchOracle(const G&& g, const G& h, double k) = delete;
  BasicStretchOracle(const G& g, const G&& h, double k) = delete;
  BasicStretchOracle(const G&& g, const G&& h, double k) = delete;

  const G& base() const { return *g_; }
  const G& spanner() const { return *h_; }
  double stretch_bound() const { return k_; }

  /// Per-worker scratch: one pooled Dijkstra engine each for G and H plus
  /// the reusable target/pool buffers. One per thread; never shared. The
  /// engines' queue structure is resolved against each graph's weight
  /// profile (bucket on bounded-integer weights under kAuto).
  struct Scratch {
    DijkstraEngine dg, dh;
    std::vector<Vertex> targets;
    std::vector<Vertex> pool;
    std::vector<Vertex> interior;
    VertexSet faults;
  };
  Scratch make_scratch(SpEnginePolicy policy = SpEnginePolicy::kAuto,
                       Weight bucket_max = kMaxBucketWeight) const;

  /// Worst surviving-edge stretch under one fault set; (1.0, invalid,
  /// invalid) when no surviving edge exists. The witness pair is the first
  /// strict maximum in (source ascending, adjacency order) — deterministic.
  struct Witness {
    double stretch = 1.0;
    Vertex u = kInvalidVertex;
    Vertex v = kInvalidVertex;
  };
  Witness evaluate(const VertexSet& faults, Scratch& scratch) const;

  /// Single-shot convenience: worst stretch under `faults` (nullptr = none).
  double max_stretch(const VertexSet* faults = nullptr) const;

  /// Batched evaluation of an explicit fault-set list.
  FtCheckResult evaluate_sets(const std::vector<VertexSet>& fault_sets,
                              const FtCheckOptions& options = {}) const;

  /// Exact check: enumerate every fault set |F| <= r. Throws via
  /// throw_fault_set_overflow once the enumeration exceeds
  /// options.max_fault_sets.
  FtCheckResult check_exact(std::size_t r,
                            const FtCheckOptions& options = {}) const;

  /// Sampled check: `random_trials` fault sets of size min(r, n-2) (per-trial
  /// RNG streams — see sample_fault_set), plus a targeted adversary that for
  /// `adversarial_edges` random G-edges repeatedly fails an interior vertex
  /// of H's current shortest path between the endpoints (up to r faults) and
  /// evaluates that pair. valid=true is evidence, not proof.
  FtCheckResult check_sampled(std::size_t r, std::size_t random_trials,
                              std::size_t adversarial_edges,
                              std::uint64_t seed,
                              const FtCheckOptions& options = {}) const;

 private:
  template <class Eval, class Rebuild>
  FtCheckResult run_indexed(std::size_t count, const Eval& eval,
                            const Rebuild& rebuild,
                            const FtCheckOptions& options) const;

  const G* g_;
  const G* h_;
  Csr cg_;  ///< flat snapshot of *g_, shared read-only by all workers
  Csr ch_;  ///< flat snapshot of *h_
  double k_;
};

using StretchOracle = BasicStretchOracle<Graph>;
using DiStretchOracle = BasicStretchOracle<Digraph>;

extern template class BasicStretchOracle<Graph>;
extern template class BasicStretchOracle<Digraph>;

}  // namespace ftspan
