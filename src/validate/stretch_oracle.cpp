#include "validate/stretch_oracle.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>

#include "ftspanner/parallel.hpp"
#include "pipeline/burst_pipeline.hpp"

namespace ftspan {

void FtCheckResult::consider(double stretch, const VertexSet& faults, Vertex u,
                             Vertex v, double k) {
  if (stretch > worst_stretch) {
    worst_stretch = stretch;
    witness_faults = faults;
    witness_u = u;
    witness_v = v;
  }
  if (stretch > k * (1 + kStretchCheckTolerance)) valid = false;
}

std::size_t count_fault_sets(std::size_t n, std::size_t r) {
  constexpr std::size_t kCap = std::numeric_limits<std::size_t>::max() / 4;
  std::size_t total = 0;
  for (std::size_t size = 0; size <= r && size <= n; ++size) {
    // C(n, size), saturating.
    std::size_t c = 1;
    for (std::size_t i = 0; i < size; ++i) {
      if (c > kCap / (n - i)) return kCap;
      c = c * (n - i) / (i + 1);
    }
    if (total > kCap - c) return kCap;
    total += c;
  }
  return total;
}

void throw_fault_set_overflow(const char* where, std::size_t n, std::size_t r,
                              std::size_t count, std::size_t max_fault_sets) {
  char msg[224];
  std::snprintf(msg, sizeof msg,
                "%s: too many fault sets to enumerate: n=%zu, r=%zu gives "
                "%zu fault sets > max_fault_sets=%zu; use the sampled check",
                where, n, r, count, max_fault_sets);
  throw std::runtime_error(msg);
}

void sample_fault_set(Rng& rng, std::size_t fault_size,
                      std::vector<Vertex>& pool, VertexSet& out) {
  const std::size_t n = out.universe_size();
  out.clear();
  pool.resize(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<Vertex>(i);
  for (std::size_t i = 0; i < fault_size && i < n; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_index(n - i));
    std::swap(pool[i], pool[j]);
    out.insert(pool[i]);
  }
}

namespace {

/// Lexicographic walk over all size-`size` subsets of {0..n-1}.
template <class Fn>
void for_each_combination(std::size_t n, std::size_t size, Fn&& fn) {
  std::vector<Vertex> comb(size);
  for (std::size_t i = 0; i < size; ++i) comb[i] = static_cast<Vertex>(i);
  while (true) {
    fn(comb);
    if (size == 0) break;
    std::size_t i = size;
    while (i > 0) {
      --i;
      if (comb[i] != static_cast<Vertex>(n - size + i)) break;
      if (i == 0) {
        i = size;  // done
        break;
      }
    }
    if (i == size) break;
    ++comb[i];
    for (std::size_t j = i + 1; j < size; ++j)
      comb[j] = static_cast<Vertex>(comb[j - 1] + 1);
  }
}

}  // namespace

template <class G>
BasicStretchOracle<G>::BasicStretchOracle(const G& g, const G& h, double k)
    : g_(&g), h_(&h), cg_(g), ch_(h), k_(k) {
  if (g.num_vertices() != h.num_vertices())
    throw std::invalid_argument("StretchOracle: vertex count mismatch");
}

template <class G>
typename BasicStretchOracle<G>::Scratch BasicStretchOracle<G>::make_scratch(
    SpEnginePolicy policy, Weight bucket_max) const {
  Scratch s;
  s.faults = VertexSet(g_->num_vertices());
  // Resolve the queue per graph side: G and H can differ (H is a subgraph,
  // but the snapshots carry their own hoisted profiles). Pre-size both
  // engines to their graph's push bound so runs are allocation-free from the
  // first fault set.
  const WeightProfile& wg = cg_.weights();
  const WeightProfile& wh = ch_.weights();
  s.dg.set_queue(
      select_sp_queue(policy, wg.integral, wg.max_weight, bucket_max),
      wg.max_weight, bucket_max);
  s.dh.set_queue(
      select_sp_queue(policy, wh.integral, wh.max_weight, bucket_max),
      wh.max_weight, bucket_max);
  s.dg.reserve(g_->num_vertices(), cg_.num_arcs() + 1);
  s.dh.reserve(h_->num_vertices(), ch_.num_arcs() + 1);
  return s;
}

template <class G>
typename BasicStretchOracle<G>::Witness BasicStretchOracle<G>::evaluate(
    const VertexSet& faults, Scratch& s) const {
  constexpr bool kUndirected = std::is_same_v<G, Graph>;
  const std::size_t n = g_->num_vertices();
  Witness w;
  for (Vertex u = 0; u < n; ++u) {
    if (faults.contains(u)) continue;
    s.targets.clear();
    Weight bound = 0;
    for (const CsrArc& a : cg_.out(u)) {
      if constexpr (kUndirected)
        if (a.to < u) continue;  // each edge once
      if (faults.contains(a.to)) continue;
      s.targets.push_back(a.to);
      bound = std::max(bound, a.w);
    }
    if (s.targets.empty()) continue;
    // A surviving edge (u, v) has d_{G\F}(u, v) <= w(u, v) <= bound, so the
    // bounded G-run is still exact for every target; the H-run stops once
    // all targets are settled.
    s.dg.run(cg_, u, &faults, s.targets, bound);
    s.dh.run(ch_, u, &faults, s.targets);
    for (const Vertex v : s.targets) {
      const Weight dg = s.dg.dist(v);
      if (!(dg < kInfiniteWeight) || dg <= 0) continue;
      const Weight dh = s.dh.dist(v);
      const double stretch =
          dh < kInfiniteWeight ? dh / dg : kInfiniteWeight;
      if (stretch > w.stretch) w = {stretch, u, v};
    }
  }
  return w;
}

template <class G>
double BasicStretchOracle<G>::max_stretch(const VertexSet* faults) const {
  Scratch s = make_scratch();
  return evaluate(faults != nullptr ? *faults : s.faults, s).stretch;
}

template <class G>
template <class Eval, class Rebuild>
FtCheckResult BasicStretchOracle<G>::run_indexed(
    std::size_t count, const Eval& eval, const Rebuild& rebuild,
    const FtCheckOptions& options) const {
  FtCheckResult out;
  out.witness_faults = VertexSet(g_->num_vertices());
  out.fault_sets_checked = count;
  if (count == 0) return out;

  std::vector<Witness> witnesses(count);
  const std::size_t workers = resolve_threads(options.threads, count);
  if (workers == 1) {
    out.lane_pinned.assign(1, 0);
    Scratch scratch = make_scratch(options.engine, options.bucket_max);
    for (std::size_t i = 0; i < count; ++i) witnesses[i] = eval(i, scratch);
  } else {
    // Burst pipeline: fault-set indices travel to worker-pinned scratch in
    // fixed-size bursts (pipeline/burst_pipeline.hpp) — one ring hand-off
    // per burst instead of one shared-counter bounce per fault set.
    // Witnesses land in index-keyed slots, so scheduling stays invisible.
    BurstOptions bopt;
    bopt.workers = workers;
    bopt.burst = options.batch;
    bopt.pin = options.pin;
    const SpEnginePolicy engine = options.engine;
    const Weight bucket_max = options.bucket_max;
    out.lane_pinned = run_bursts(
        count, bopt,
        [this, &witnesses, &eval, engine,
         bucket_max](std::size_t) -> BurstTask {
          auto scratch =
              std::make_shared<Scratch>(make_scratch(engine, bucket_max));
          return [&witnesses, &eval, scratch](std::size_t i) {
            witnesses[i] = eval(i, *scratch);
          };
        });
  }
  for (const char p : out.lane_pinned) out.lanes_pinned += p != 0;

  // Deterministic fold in fault-set index order — identical to what a
  // sequential consider() chain over the same stream produces, regardless
  // of which worker evaluated which set.
  std::size_t best = count;
  for (std::size_t i = 0; i < count; ++i)
    if (witnesses[i].stretch > out.worst_stretch) {
      out.worst_stretch = witnesses[i].stretch;
      best = i;
    }
  if (out.worst_stretch > k_ * (1 + kStretchCheckTolerance)) out.valid = false;
  if (best != count) {
    out.witness_u = witnesses[best].u;
    out.witness_v = witnesses[best].v;
    Scratch scratch = make_scratch();
    rebuild(best, scratch, out.witness_faults);
  }
  return out;
}

template <class G>
FtCheckResult BasicStretchOracle<G>::evaluate_sets(
    const std::vector<VertexSet>& fault_sets,
    const FtCheckOptions& options) const {
  return run_indexed(
      fault_sets.size(),
      [&](std::size_t i, Scratch& s) { return evaluate(fault_sets[i], s); },
      [&](std::size_t i, Scratch&, VertexSet& out) { out = fault_sets[i]; },
      options);
}

template <class G>
FtCheckResult BasicStretchOracle<G>::check_exact(
    std::size_t r, const FtCheckOptions& options) const {
  const std::size_t n = g_->num_vertices();
  const std::size_t total = count_fault_sets(n, r);
  if (total > options.max_fault_sets)
    throw_fault_set_overflow("StretchOracle::check_exact", n, r, total,
                             options.max_fault_sets);

  // Materialize the combinations once (flat vertex array + offsets); the
  // per-set Dijkstra work dwarfs this walk.
  std::vector<Vertex> flat;
  std::vector<std::size_t> offsets{0};
  offsets.reserve(total + 1);
  for (std::size_t size = 0; size <= std::min(r, n); ++size)
    for_each_combination(n, size, [&](const std::vector<Vertex>& comb) {
      flat.insert(flat.end(), comb.begin(), comb.end());
      offsets.push_back(flat.size());
    });

  const auto load = [&](std::size_t i, VertexSet& faults) {
    faults.clear();
    for (std::size_t j = offsets[i]; j < offsets[i + 1]; ++j)
      faults.insert(flat[j]);
  };
  return run_indexed(
      total,
      [&](std::size_t i, Scratch& s) {
        load(i, s.faults);
        return evaluate(s.faults, s);
      },
      [&](std::size_t i, Scratch&, VertexSet& out) { load(i, out); },
      options);
}

template <class G>
FtCheckResult BasicStretchOracle<G>::check_sampled(
    std::size_t r, std::size_t random_trials, std::size_t adversarial_edges,
    std::uint64_t seed, const FtCheckOptions& options) const {
  const std::size_t n = g_->num_vertices();
  const std::size_t m = g_->num_edges();
  const std::size_t adversarial = m > 0 ? adversarial_edges : 0;
  const std::size_t fault_size =
      std::min(r, n >= 2 ? n - 2 : std::size_t{0});
  const std::size_t count = random_trials + adversarial;

  // Rebuilds trial i's fault set into s.faults. Each trial owns an RNG
  // stream keyed by its index, so any worker reproduces any trial — and the
  // winning witness set can be regenerated after the fold. Returns the
  // probed edge for adversarial trials.
  const auto build_faults =
      [&](std::size_t i, Scratch& s) -> std::optional<EdgeId> {
    Rng rng(hash_combine(seed, i));
    if (i < random_trials) {
      sample_fault_set(rng, fault_size, s.pool, s.faults);
      return std::nullopt;
    }
    // Targeted adversary: repeatedly fail an interior vertex of H's current
    // shortest path between a random edge's endpoints — the most damaging
    // vertices for that pair.
    const EdgeId id = static_cast<EdgeId>(rng.uniform_index(m));
    const auto& e = g_->edge(id);
    s.faults.clear();
    const Vertex target[1] = {e.v};
    for (std::size_t step = 0; step < r; ++step) {
      s.dh.run(ch_, e.u, &s.faults, std::span<const Vertex>(target, 1));
      if (!s.dh.reachable(e.v)) break;  // already disconnected in H \ F
      s.interior.clear();
      for (Vertex x = s.dh.parent(e.v); x != kInvalidVertex && x != e.u;
           x = s.dh.parent(x))
        s.interior.push_back(x);
      if (s.interior.empty()) break;  // direct edge in H; cannot be attacked
      s.faults.insert(s.interior[rng.uniform_index(s.interior.size())]);
    }
    return id;
  };

  const auto eval = [&](std::size_t i, Scratch& s) -> Witness {
    const auto probed = build_faults(i, s);
    if (!probed) return evaluate(s.faults, s);
    // Adversarial trials evaluate only the probed pair (the faults were
    // chosen against it); the random trials cover the broad sweep.
    const auto& e = g_->edge(*probed);
    if (s.faults.contains(e.u) || s.faults.contains(e.v)) return {};
    const Vertex target[1] = {e.v};
    s.dg.run(cg_, e.u, &s.faults, std::span<const Vertex>(target, 1), e.w);
    const Weight dg = s.dg.dist(e.v);
    if (!(dg < kInfiniteWeight) || dg <= 0) return {};
    s.dh.run(ch_, e.u, &s.faults, std::span<const Vertex>(target, 1));
    const Weight dh = s.dh.dist(e.v);
    const double stretch = dh < kInfiniteWeight ? dh / dg : kInfiniteWeight;
    return {stretch, e.u, e.v};
  };

  return run_indexed(
      count, eval,
      [&](std::size_t i, Scratch& s, VertexSet& out) {
        build_faults(i, s);
        out = s.faults;
      },
      options);
}

template class BasicStretchOracle<Graph>;
template class BasicStretchOracle<Digraph>;

}  // namespace ftspan
