// Algorithm 2 / Theorem 3.9: the distributed O(log n)-approximation for
// Minimum Cost r-Fault-Tolerant 2-Spanner in the LOCAL model.
//
// t = Θ(log n) iterations of: sample a padded decomposition (Lemma 3.7);
// each cluster center gathers G(C) (the sub-digraph induced on C ∪ N(C),
// with edges leaving C at cost 0), solves LP (4) on it, and scatters the
// solution; each edge averages the x values from the iterations in which
// both endpoints shared a cluster, scaled by 4 (Lemma 3.8 makes this a
// feasible solution of cost <= 4 LP* w.h.p.). Finally Algorithm 1 rounds
// the averaged x̃ locally.
//
// The simulator runs the decomposition protocol message-by-message; the
// gather/solve/scatter inside a cluster is local computation at the center
// plus O(diam(C)) = O(log n) communication rounds, which we charge to the
// round budget explicitly (messages in the LOCAL model are unbounded, so
// shipping G(C) or an LP solution is one message per hop).
#pragma once

#include <cstdint>

#include "local/padded_decomposition.hpp"
#include "spanner2/formulation.hpp"
#include "spanner2/rounding.hpp"

namespace ftspan::local {

struct DistTwoSpannerOptions {
  /// t = ceil(iteration_constant * ln n) decomposition iterations, unless
  /// `iterations` overrides it.
  double iteration_constant = 4.0;
  std::optional<std::size_t> iterations;

  PaddedDecompositionOptions decomposition;

  /// Rounding inflation α = alpha_constant * ln n (Algorithm 1).
  double alpha_constant = 1.0;
  std::optional<double> alpha;

  /// Retry/repair policy, as in the centralized driver.
  std::size_t max_attempts = 25;
  bool repair = true;

  ftspan::CuttingPlaneOptions lp;  ///< per-cluster LP (4) solves
};

struct DistTwoSpannerResult {
  std::vector<char> in_spanner;
  double cost = 0.0;
  bool valid = false;
  RunStats stats;                 ///< LOCAL rounds/messages charged
  std::size_t iterations = 0;     ///< t
  std::size_t clusters_solved = 0;
  double x_tilde_cost = 0.0;      ///< Σ c_e x̃_e (Theorem 3.9: <= 4 LP*)
  std::size_t repaired_edges = 0;
  std::size_t attempts = 0;
};

/// The undirected communication graph of a digraph (one edge per arc pair;
/// the paper assumes bidirectional communication links).
ftspan::Graph communication_graph(const ftspan::Digraph& g);

/// Algorithm 2.
DistTwoSpannerResult distributed_ft_2spanner(
    const ftspan::Digraph& g, std::size_t r, std::uint64_t seed,
    const DistTwoSpannerOptions& options = {});

/// Lemma 3.8 ingredients for one partition: the per-cluster LP (4) optima
/// (with out-of-cluster edges at cost 0) and their sum, which the lemma
/// upper-bounds by the global LP (4) optimum.
struct ClusterLpDecomposition {
  double sum_cluster_values = 0.0;
  std::size_t clusters = 0;
};
ClusterLpDecomposition cluster_lp_values(
    const ftspan::Digraph& g, std::size_t r, const PaddedDecomposition& d,
    const ftspan::CuttingPlaneOptions& lp = {});

}  // namespace ftspan::local
