#include "local/dist_spanner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "util/rng.hpp"

namespace ftspan::local {

namespace {

constexpr Vertex kUnclustered = std::numeric_limits<Vertex>::max();

/// Protocol message. One struct covers the three message kinds.
struct Msg {
  enum Kind : std::uint8_t {
    kSampleFlood,  ///< (cluster, flag): sampling bit of a cluster, flooded
    kInfo,         ///< (cluster, flag): sender's cluster + its sampled bit
    kDecision,     ///< (cluster): sender's new cluster; `removed` edge list
  };
  Kind kind = kInfo;
  Vertex cluster = kUnclustered;
  bool flag = false;
  std::vector<Vertex> removed;  ///< kDecision: endpoints of edges the sender removed
};

struct NodeState {
  Vertex cluster = kUnclustered;       ///< current cluster (center id)
  bool cluster_sampled = false;        ///< this phase's sampling bit
  bool knows_sample = false;           ///< received the bit this phase
  std::vector<char> removed;           ///< per incident-edge slot: removed?
  // Info snapshot of neighbors (refreshed in the kInfo round each phase):
  std::unordered_map<Vertex, std::pair<Vertex, bool>> nbr;  // v -> (cluster, sampled)
};

}  // namespace

DistSpannerResult distributed_baswana_sen(const Graph& g, std::size_t k,
                                          std::uint64_t seed,
                                          const VertexSet* faults) {
  const std::size_t n = g.num_vertices();
  DistSpannerResult out;
  auto alive = [&](Vertex v) { return faults == nullptr || !faults->contains(v); };

  std::vector<char> in_spanner(g.num_edges(), 0);
  if (k <= 1) {
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
      const Edge& e = g.edge(id);
      if (alive(e.u) && alive(e.v)) in_spanner[id] = 1;
    }
    for (EdgeId id = 0; id < g.num_edges(); ++id)
      if (in_spanner[id]) out.edges.push_back(id);
    return out;
  }

  ftspan::Rng rng(seed);
  std::vector<NodeState> st(n);
  std::size_t alive_count = 0;
  for (Vertex v = 0; v < n; ++v) {
    st[v].removed.assign(g.degree(v), 0);
    if (alive(v)) {
      st[v].cluster = v;
      ++alive_count;
    }
  }
  if (alive_count == 0) return out;
  const double p =
      std::pow(static_cast<double>(std::max<std::size_t>(alive_count, 2)),
               -1.0 / static_cast<double>(k));

  // Per-vertex RNG substreams so the coin flips are genuinely local.
  std::vector<ftspan::Rng> local_rng;
  local_rng.reserve(n);
  for (Vertex v = 0; v < n; ++v)
    local_rng.emplace_back(ftspan::hash_combine(seed, v));

  auto slot_of = [&](Vertex v, EdgeId id) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      if (nbrs[i].edge == id) return i;
    return nbrs.size();  // unreachable for incident edges
  };
  auto edge_removed = [&](Vertex v, std::size_t slot) -> char& {
    return st[v].removed[slot];
  };

  auto lightest_per_cluster = [&](Vertex v) {
    // cluster -> (weight, edge id, neighbor), over non-removed alive edges
    // whose neighbor is currently clustered (per the kInfo snapshot).
    std::unordered_map<Vertex, std::tuple<Weight, EdgeId, Vertex>> best;
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Arc& a = nbrs[i];
      if (edge_removed(v, i) || !alive(a.to)) continue;
      const auto it = st[v].nbr.find(a.to);
      if (it == st[v].nbr.end()) continue;
      const Vertex c = it->second.first;
      if (c == kUnclustered) continue;
      const auto bit = best.find(c);
      if (bit == best.end() || a.w < std::get<0>(bit->second))
        best[c] = {a.w, a.edge, a.to};
    }
    return best;
  };

  // Decision bookkeeping shared between the decision round (sender side)
  // and the update processing (receiver side).
  for (std::size_t phase = 1; phase < k; ++phase) {
    // --- Sub-protocol A: flood this phase's sampling bit (phase rounds). ---
    for (Vertex v = 0; v < n; ++v) st[v].knows_sample = false;
    const std::size_t flood_rounds = phase;  // cluster radius <= phase-1
    auto flood = [&](std::size_t round, Vertex v,
                     const std::vector<Inbound<Msg>>& inbox, Mailbox<Msg>& mb) {
      if (round == 0) {
        if (st[v].cluster == v) {  // center draws the bit
          st[v].cluster_sampled = local_rng[v].bernoulli(p);
          st[v].knows_sample = true;
          Msg m;
          m.kind = Msg::kSampleFlood;
          m.cluster = v;
          m.flag = st[v].cluster_sampled;
          mb.broadcast(m);
        }
        return;
      }
      for (const auto& in : inbox) {
        if (in.msg.kind != Msg::kSampleFlood) continue;
        if (in.msg.cluster != st[v].cluster || st[v].knows_sample) continue;
        st[v].cluster_sampled = in.msg.flag;
        st[v].knows_sample = true;
        mb.broadcast(in.msg);  // keep flooding within the cluster
      }
    };
    out.stats += run_rounds<Msg>(g, flood_rounds, flood, faults);

    // Vertices that never heard (singleton centers already know; unclustered
    // vertices have no cluster) -- anyone still unsure is its own evidence
    // that its cluster bit is "unsampled" only if it has no cluster; centers
    // always know. Members are within distance phase-1 of their center, so
    // the flood always reaches them.

    // --- Sub-protocol B: one info-exchange round. ---
    auto info = [&](std::size_t, Vertex v, const std::vector<Inbound<Msg>>& inbox,
                    Mailbox<Msg>& mb) {
      for (const auto& in : inbox)
        if (in.msg.kind == Msg::kInfo)
          st[v].nbr[in.from] = {in.msg.cluster,
                                in.msg.flag && in.msg.cluster != kUnclustered};
      Msg m;
      m.kind = Msg::kInfo;
      m.cluster = st[v].cluster;
      m.flag = st[v].cluster != kUnclustered && st[v].cluster_sampled;
      mb.broadcast(m);
    };
    // Two rounds: everyone sends, then everyone receives (the second round
    // sends again, harmlessly — receipt is what matters).
    out.stats += run_rounds<Msg>(g, 2, info, faults);

    // --- Sub-protocol C: local decision + one announcement round. ---
    std::vector<Msg> pending(n);
    for (Vertex v = 0; v < n; ++v) {
      pending[v].kind = Msg::kDecision;
      pending[v].cluster = st[v].cluster;
      if (!alive(v)) continue;
      if (st[v].cluster == kUnclustered) continue;
      if (st[v].cluster_sampled) continue;  // cluster survives; nothing to do

      const auto best = lightest_per_cluster(v);
      // Lightest edge into a *sampled* cluster, if any.
      bool have_sampled = false;
      Weight best_w = 0;
      EdgeId best_e = kInvalidEdge;
      Vertex best_c = kUnclustered;
      for (const auto& [c, tup] : best) {
        const auto& [w, id, nb] = tup;
        const bool c_sampled = st[v].nbr.count(nb) != 0 && st[v].nbr[nb].second;
        if (!c_sampled) continue;
        if (!have_sampled || w < best_w) {
          have_sampled = true;
          best_w = w;
          best_e = id;
          best_c = c;
        }
      }

      auto drop_cluster_edges = [&](Vertex cluster_id) {
        const auto nbrs = g.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const auto it = st[v].nbr.find(nbrs[i].to);
          if (it == st[v].nbr.end() || it->second.first != cluster_id) continue;
          if (edge_removed(v, i)) continue;
          edge_removed(v, i) = 1;
          pending[v].removed.push_back(nbrs[i].to);
        }
      };

      if (!have_sampled) {
        for (const auto& [c, tup] : best) {
          in_spanner[std::get<1>(tup)] = 1;
          drop_cluster_edges(c);
        }
        st[v].cluster = kUnclustered;
      } else {
        in_spanner[best_e] = 1;
        for (const auto& [c, tup] : best) {
          if (c == best_c) continue;
          if (std::get<0>(tup) < best_w) {
            in_spanner[std::get<1>(tup)] = 1;
            drop_cluster_edges(c);
          }
        }
        drop_cluster_edges(best_c);
        st[v].cluster = best_c;
        st[v].cluster_sampled = true;  // now in a sampled cluster
      }
      pending[v].cluster = st[v].cluster;
    }

    auto announce = [&](std::size_t round, Vertex v,
                        const std::vector<Inbound<Msg>>& inbox,
                        Mailbox<Msg>& mb) {
      if (round == 0) {
        mb.broadcast(pending[v]);
        return;
      }
      for (const auto& in : inbox) {
        if (in.msg.kind != Msg::kDecision) continue;
        st[v].nbr[in.from] = {in.msg.cluster, false};
        for (Vertex other : in.msg.removed) {
          if (other != v) continue;
          const auto id = g.edge_id(v, in.from);
          if (id) edge_removed(v, slot_of(v, *id)) = 1;
        }
      }
    };
    out.stats += run_rounds<Msg>(g, 2, announce, faults);
  }

  // --- Joining phase: refresh info, then each vertex keeps one lightest
  // edge per adjacent (final) cluster. ---
  auto info = [&](std::size_t, Vertex v, const std::vector<Inbound<Msg>>& inbox,
                  Mailbox<Msg>& mb) {
    for (const auto& in : inbox)
      if (in.msg.kind == Msg::kInfo)
        st[v].nbr[in.from] = {in.msg.cluster, false};
    Msg m;
    m.kind = Msg::kInfo;
    m.cluster = st[v].cluster;
    mb.broadcast(m);
  };
  out.stats += run_rounds<Msg>(g, 2, info, faults);

  for (Vertex v = 0; v < n; ++v) {
    if (!alive(v)) continue;
    for (const auto& [c, tup] : lightest_per_cluster(v)) {
      in_spanner[std::get<1>(tup)] = 1;
      // Dropping the remaining edges to c needs no announcement: the
      // protocol ends here and each endpoint keeps its own chosen edges.
      const auto nbrs = g.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const auto it = st[v].nbr.find(nbrs[i].to);
        if (it != st[v].nbr.end() && it->second.first == c)
          edge_removed(v, i) = 1;
      }
      (void)c;
    }
  }

  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (in_spanner[id]) out.edges.push_back(id);
  return out;
}

DistFtSpannerResult distributed_ft_spanner(
    const Graph& g, std::size_t k, std::size_t r, std::uint64_t seed,
    const ftspan::ConversionOptions& options) {
  const std::size_t n = g.num_vertices();
  DistFtSpannerResult out;

  double keep = (r >= 2) ? 1.0 / static_cast<double>(r) : 0.5;
  keep = std::clamp(keep * options.keep_probability_scale, 1e-9, 1.0);
  out.iterations = options.iterations.value_or(
      ftspan::conversion_iterations(r, n, options.iteration_constant));

  ftspan::Rng rng(seed);
  std::vector<char> in_spanner(g.num_edges(), 0);
  for (std::size_t it = 0; it < out.iterations; ++it) {
    // Every vertex locally joins J with probability 1 - keep (no
    // communication needed; one round could announce it, which we charge).
    VertexSet removed(n);
    for (Vertex v = 0; v < n; ++v)
      if (!rng.bernoulli(keep)) removed.insert(v);
    out.stats.rounds += 1;  // the J-announcement round

    DistSpannerResult one = distributed_baswana_sen(g, k, rng(), &removed);
    out.stats += one.stats;
    for (EdgeId id : one.edges) in_spanner[id] = 1;
  }

  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (in_spanner[id]) out.edges.push_back(id);
  return out;
}

}  // namespace ftspan::local
