#include "local/padded_decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace ftspan::local {

namespace {

std::size_t radius_cap_for(std::size_t n, const PaddedDecompositionOptions& o) {
  const double ln_n = std::log(static_cast<double>(std::max<std::size_t>(n, 2)));
  return static_cast<std::size_t>(std::ceil(o.cap_factor * ln_n));
}

std::vector<std::size_t> draw_radii(std::size_t n, std::uint64_t seed,
                                    const PaddedDecompositionOptions& o,
                                    std::size_t cap) {
  ftspan::Rng rng(seed);
  std::vector<std::size_t> r(n);
  for (std::size_t v = 0; v < n; ++v)
    r[v] = std::min<std::size_t>(rng.geometric(o.geometric_p), cap);
  return r;
}

}  // namespace

std::vector<Vertex> PaddedDecomposition::centers() const {
  std::vector<Vertex> cs(center);
  std::sort(cs.begin(), cs.end());
  cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
  return cs;
}

PaddedDecomposition sample_padded_decomposition(
    const Graph& g, std::uint64_t seed,
    const PaddedDecompositionOptions& options) {
  const std::size_t n = g.num_vertices();
  PaddedDecomposition d;
  d.radius_cap = radius_cap_for(n, options);
  d.radius = draw_radii(n, seed, options, d.radius_cap);
  d.center.assign(n, kInvalidVertex);

  // Centers in increasing ID order; a vertex joins the first (= smallest-ID)
  // center whose ball reaches it. BFS per center, stopping at its radius.
  for (Vertex c = 0; c < n; ++c) {
    std::queue<std::pair<Vertex, std::size_t>> q;  // (vertex, hops)
    std::vector<char> seen(n, 0);
    q.push({c, 0});
    seen[c] = 1;
    while (!q.empty()) {
      const auto [v, hops] = q.front();
      q.pop();
      if (d.center[v] == kInvalidVertex) d.center[v] = c;
      if (hops == d.radius[c]) continue;
      for (const Arc& a : g.neighbors(v)) {
        if (seen[a.to]) continue;
        seen[a.to] = 1;
        q.push({a.to, hops + 1});
      }
    }
  }
  return d;
}

PaddedDecomposition distributed_padded_decomposition(
    const Graph& g, std::uint64_t seed,
    const PaddedDecompositionOptions& options, RunStats* stats) {
  const std::size_t n = g.num_vertices();
  PaddedDecomposition d;
  d.radius_cap = radius_cap_for(n, options);
  d.radius = draw_radii(n, seed, options, d.radius_cap);
  d.center.assign(n, kInvalidVertex);

  // Message: (center id, remaining ttl). Each vertex remembers, per center
  // it has heard from, the best remaining ttl, and forwards improvements.
  // After radius_cap+1 rounds every vertex has heard exactly the centers
  // whose balls reach it; it picks the smallest ID (itself always counts,
  // since its own ball of radius r_v >= 0 contains it).
  struct State {
    std::vector<std::pair<Vertex, std::size_t>> known;  // (center, best ttl)
  };
  std::vector<State> state(n);

  using Msg = std::pair<Vertex, std::size_t>;  // (center, remaining ttl)
  auto fn = [&](std::size_t round, Vertex v,
                const std::vector<Inbound<Msg>>& inbox, Mailbox<Msg>& out) {
    auto learn = [&](Vertex center, std::size_t ttl) -> bool {
      for (auto& [c, best] : state[v].known) {
        if (c != center) continue;
        if (ttl <= best) return false;
        best = ttl;
        return true;
      }
      state[v].known.emplace_back(center, ttl);
      return true;
    };

    if (round == 0) {
      learn(v, d.radius[v]);
      if (d.radius[v] > 0) out.broadcast({v, d.radius[v] - 1});
      return;
    }
    for (const auto& in : inbox) {
      const auto [center, ttl] = in.msg;
      if (learn(center, ttl) && ttl > 0) out.broadcast({center, ttl - 1});
    }
  };

  const RunStats rs = run_rounds<Msg>(g, d.radius_cap + 1, fn);
  if (stats != nullptr) *stats += rs;

  for (Vertex v = 0; v < n; ++v) {
    Vertex best = kInvalidVertex;
    for (const auto& [c, ttl] : state[v].known) best = std::min(best, c);
    d.center[v] = best;
  }
  return d;
}

bool is_padded(const Graph& g, const PaddedDecomposition& d, Vertex x) {
  for (const Arc& a : g.neighbors(x))
    if (d.center[a.to] != d.center[x]) return false;
  return true;
}

std::size_t max_cluster_diameter(const Graph& g,
                                 const PaddedDecomposition& d) {
  std::size_t worst = 0;
  for (Vertex c : d.centers()) {
    std::vector<Vertex> members = d.cluster_of(c);
    members.push_back(c);  // the center may not belong to its own cluster
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    worst = std::max(worst, ftspan::weak_diameter(g, members));
  }
  return worst;
}

}  // namespace ftspan::local
