#include "local/dist_2spanner.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "spanner2/verify2.hpp"
#include "util/rng.hpp"

namespace ftspan::local {

using ftspan::Digraph;
using ftspan::DiEdge;
using ftspan::EdgeId;
using ftspan::Graph;
using ftspan::Vertex;

Graph communication_graph(const Digraph& g) {
  Graph comm(g.num_vertices());
  for (const DiEdge& e : g.edges()) comm.add_edge(e.u, e.v, 1.0);
  return comm;
}

namespace {

/// One cluster's LP: G(C) on C ∪ N(C), costs kept only inside C.
/// Returns x values mapped back to original edge ids for edges in E(C),
/// plus the LP value (which prices only E(C) edges, matching LP(C)).
struct ClusterSolve {
  bool ok = false;
  double value = 0.0;
  std::vector<std::pair<EdgeId, double>> x_inside;  // (edge in E(C), x)
};

ClusterSolve solve_cluster_lp(const Digraph& g, std::size_t r,
                              const Graph& comm,
                              const std::vector<char>& in_cluster,
                              const ftspan::CuttingPlaneOptions& lp_options) {
  const std::size_t n = g.num_vertices();

  // Members of C ∪ N(C) (N over the communication graph).
  std::vector<char> in_gc(n, 0);
  for (Vertex v = 0; v < n; ++v) {
    if (!in_cluster[v]) continue;
    in_gc[v] = 1;
    for (const ftspan::Arc& a : comm.neighbors(v)) in_gc[a.to] = 1;
  }

  std::vector<Vertex> local_id(n, ftspan::kInvalidVertex);
  std::vector<Vertex> orig_id;
  for (Vertex v = 0; v < n; ++v)
    if (in_gc[v]) {
      local_id[v] = static_cast<Vertex>(orig_id.size());
      orig_id.push_back(v);
    }
  if (orig_id.size() < 2) return {true, 0.0, {}};

  Digraph sub(orig_id.size());
  std::vector<EdgeId> sub_to_orig;
  std::vector<char> sub_inside;  // both endpoints in C?
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const DiEdge& e = g.edge(id);
    if (!in_gc[e.u] || !in_gc[e.v]) continue;
    const bool inside = in_cluster[e.u] && in_cluster[e.v];
    sub.add_edge(local_id[e.u], local_id[e.v], inside ? e.w : 0.0);
    sub_to_orig.push_back(id);
    sub_inside.push_back(inside ? 1 : 0);
  }
  if (sub.num_edges() == 0) return {true, 0.0, {}};

  const ftspan::RelaxationResult res = ftspan::solve_lp4(sub, r, lp_options);
  if (res.status != ftspan::LpStatus::kOptimal) return {};

  ClusterSolve out;
  out.ok = true;
  out.value = res.value;
  for (EdgeId sid = 0; sid < sub.num_edges(); ++sid)
    if (sub_inside[sid]) out.x_inside.emplace_back(sub_to_orig[sid], res.x[sid]);
  return out;
}

/// Clusters of a decomposition as per-cluster membership masks.
std::vector<std::vector<char>> cluster_masks(const PaddedDecomposition& d) {
  std::unordered_map<Vertex, std::size_t> index;
  std::vector<std::vector<char>> masks;
  const std::size_t n = d.center.size();
  for (Vertex v = 0; v < n; ++v) {
    const Vertex c = d.center[v];
    auto [it, fresh] = index.try_emplace(c, masks.size());
    if (fresh) masks.emplace_back(n, 0);
    masks[it->second][v] = 1;
  }
  return masks;
}

}  // namespace

ClusterLpDecomposition cluster_lp_values(
    const Digraph& g, std::size_t r, const PaddedDecomposition& d,
    const ftspan::CuttingPlaneOptions& lp) {
  const Graph comm = communication_graph(g);
  ClusterLpDecomposition out;
  for (const auto& mask : cluster_masks(d)) {
    const ClusterSolve s = solve_cluster_lp(g, r, comm, mask, lp);
    if (s.ok) {
      out.sum_cluster_values += s.value;
      ++out.clusters;
    }
  }
  return out;
}

DistTwoSpannerResult distributed_ft_2spanner(
    const Digraph& g, std::size_t r, std::uint64_t seed,
    const DistTwoSpannerOptions& options) {
  const std::size_t n = g.num_vertices();
  const Graph comm = communication_graph(g);
  ftspan::Rng rng(seed);

  DistTwoSpannerResult out;
  const double ln_n =
      std::log(static_cast<double>(std::max<std::size_t>(n, 2)));
  out.iterations = options.iterations.value_or(static_cast<std::size_t>(
      std::ceil(options.iteration_constant * ln_n)));
  const std::size_t t = std::max<std::size_t>(out.iterations, 1);

  std::vector<double> x_sum(g.num_edges(), 0.0);

  for (std::size_t i = 0; i < t; ++i) {
    const PaddedDecomposition d = distributed_padded_decomposition(
        comm, rng(), options.decomposition, &out.stats);

    // Gather G(C) to each center and scatter the LP solution back: both are
    // O(cluster diameter) LOCAL rounds with unbounded messages.
    const std::size_t diam = max_cluster_diameter(comm, d);
    out.stats.rounds += 2 * (diam + 1);

    for (const auto& mask : cluster_masks(d)) {
      const ClusterSolve s = solve_cluster_lp(g, r, comm, mask, options.lp);
      if (!s.ok) continue;
      ++out.clusters_solved;
      for (const auto& [edge, x] : s.x_inside) x_sum[edge] += x;
    }
  }

  // x̃_e = min(1, (4/t) Σ_{i ∈ I_e} x_e^i); edges whose endpoints never
  // shared a cluster simply have an empty sum here.
  std::vector<double> x_tilde(g.num_edges(), 0.0);
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    x_tilde[id] = std::min(1.0, 4.0 * x_sum[id] / static_cast<double>(t));
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    out.x_tilde_cost += g.edge(id).w * x_tilde[id];

  // Local rounding (Algorithm 1): one round to exchange thresholds'
  // outcomes; retries are fresh threshold draws.
  const double alpha = options.alpha.value_or(options.alpha_constant * ln_n);
  std::vector<char> best;
  for (out.attempts = 1; out.attempts <= options.max_attempts; ++out.attempts) {
    std::vector<char> cand = ftspan::threshold_round(g, x_tilde, alpha, rng());
    out.stats.rounds += 1;  // announce kept edges to both endpoints
    if (ftspan::is_ft_2spanner(g, cand, r)) {
      best = std::move(cand);
      break;
    }
  }
  if (best.empty()) {
    best = ftspan::threshold_round(g, x_tilde, alpha, rng());
    out.stats.rounds += 1;
    if (options.repair) out.repaired_edges = ftspan::greedy_repair(g, best, r);
  }

  out.in_spanner = std::move(best);
  out.cost = ftspan::spanner_cost(g, out.in_spanner);
  out.valid = ftspan::is_ft_2spanner(g, out.in_spanner, r);
  return out;
}

}  // namespace ftspan::local
