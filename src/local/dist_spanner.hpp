// Distributed spanners in the LOCAL model.
//
// distributed_baswana_sen: a LOCAL implementation of the Baswana–Sen
// (2k-1)-spanner. Each of the k-1 clustering phases floods the cluster
// sampling bit through the (radius <= phase) cluster trees, exchanges
// cluster info with neighbors, and lets every vertex decide locally; the
// joining phase is one more exchange. O(k²) rounds total. This serves as
// the base algorithm A for Theorem 2.3 (the paper's Corollary 2.4 uses the
// Derbel–Gavoille–Peleg–Viennot deterministic construction; any LOCAL
// k-spanner of bounded size works — see DESIGN.md for the substitution).
//
// distributed_ft_spanner: Theorem 2.3's distributed conversion — in each of
// α = Θ(r³ log n) iterations every vertex locally joins the oversampled
// fault set J with probability 1 - 1/r and the base algorithm runs on the
// survivors; the spanner is the union over iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "ftspanner/conversion.hpp"
#include "graph/graph.hpp"
#include "local/runtime.hpp"

namespace ftspan::local {

struct DistSpannerResult {
  std::vector<EdgeId> edges;
  RunStats stats;
};

/// LOCAL Baswana–Sen (2k-1)-spanner on G \ faults. k >= 1.
DistSpannerResult distributed_baswana_sen(const Graph& g, std::size_t k,
                                          std::uint64_t seed,
                                          const VertexSet* faults = nullptr);

struct DistFtSpannerResult {
  std::vector<EdgeId> edges;
  RunStats stats;
  std::size_t iterations = 0;
};

/// Theorem 2.3 instantiated with distributed Baswana–Sen (stretch 2k-1).
DistFtSpannerResult distributed_ft_spanner(
    const Graph& g, std::size_t k, std::size_t r, std::uint64_t seed,
    const ftspan::ConversionOptions& options = {});

}  // namespace ftspan::local
