// Padded decompositions (Definition 3.6, Lemma 3.7).
//
// Linial–Saks / Bartal style: every vertex u draws a radius r_u from a
// geometric distribution with constant parameter p (truncated at O(log n)),
// and every vertex joins the cluster of the *smallest-ID* vertex whose ball
// of radius r_u (hop distance) reaches it. Properties (Lemma 3.7):
//   - every cluster C has weak diameter diam(C ∪ {center}) = O(log n) w.h.p.;
//   - Pr[N(x) ⊆ P(x)] >= (1-p)^2 for every x (>= 1/2 for p <= 0.25 — see
//     the capture argument: condition on the first (in ID order) center
//     whose ball reaches B(x,1); by memorylessness it engulfs B(x,1) with
//     probability (1-p)^2, and then it captures all of B(x,1));
//   - the distributed version floods center IDs for O(log n) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/runtime.hpp"

namespace ftspan::local {

struct PaddedDecomposition {
  /// Per vertex: the center of its cluster (clusters are center-named).
  std::vector<Vertex> center;
  /// The radius each vertex drew (diagnostics; radius of its *potential*
  /// cluster, meaningful whether or not anyone joined it).
  std::vector<std::size_t> radius;
  /// Radius truncation cap used (the O(log n) bound on cluster radius).
  std::size_t radius_cap = 0;

  std::vector<Vertex> cluster_of(Vertex c) const {
    std::vector<Vertex> out;
    for (Vertex v = 0; v < center.size(); ++v)
      if (center[v] == c) out.push_back(v);
    return out;
  }

  /// Distinct non-empty cluster centers.
  std::vector<Vertex> centers() const;
};

struct PaddedDecompositionOptions {
  /// Geometric parameter p (success probability). Padding probability is
  /// >= (1-p)^2; p = 0.2 gives >= 0.64.
  double geometric_p = 0.2;
  /// Radius cap = ceil(cap_factor * ln n); Pr[some radius exceeding it] is
  /// n^{-Θ(cap_factor·p)}.
  double cap_factor = 6.0;
};

/// Centralized sampler (same distribution as the protocol; O(Σ ball sizes)).
PaddedDecomposition sample_padded_decomposition(
    const Graph& g, std::uint64_t seed,
    const PaddedDecompositionOptions& options = {});

/// The Lemma 3.7 LOCAL protocol: radius draws, then radius-capped flooding
/// of center IDs for O(log n) rounds. Produces the same assignment rule
/// (smallest reaching ID); `stats` (optional) receives rounds/messages.
PaddedDecomposition distributed_padded_decomposition(
    const Graph& g, std::uint64_t seed,
    const PaddedDecompositionOptions& options = {}, RunStats* stats = nullptr);

/// Is x padded, i.e. N(x) ∪ {x} inside one cluster?
bool is_padded(const Graph& g, const PaddedDecomposition& d, Vertex x);

/// Max over clusters of diam(C ∪ {center}) in hops (through the whole G).
std::size_t max_cluster_diameter(const Graph& g, const PaddedDecomposition& d);

}  // namespace ftspan::local
