// A synchronous message-passing simulator for the LOCAL model (Peleg 2000).
//
// In each round every vertex reads the messages its neighbors sent in the
// previous round, does arbitrary local computation, and sends one message
// per incident edge. Message size is unbounded (the LOCAL model's defining
// relaxation); what the model measures is *rounds*, because information can
// travel only one hop per round — which this engine enforces by construction
// (a node can only send to its graph neighbors).
//
// Protocols are callables invoked once per vertex per round; per-vertex
// state lives in the protocol object. The engine records rounds and message
// counts so experiments can report round complexity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace ftspan::local {

struct RunStats {
  std::size_t rounds = 0;
  std::size_t messages = 0;

  RunStats& operator+=(const RunStats& o) {
    rounds += o.rounds;
    messages += o.messages;
    return *this;
  }
};

/// A message in flight, tagged with its sender.
template <class Msg>
struct Inbound {
  Vertex from;
  Msg msg;
};

/// Per-node, per-round outbox. Sends are restricted to alive neighbors,
/// enforcing the one-hop-per-round locality of the model.
template <class Msg>
class Mailbox {
 public:
  Mailbox(const Graph& g, const VertexSet* faults, Vertex self)
      : g_(g), faults_(faults), self_(self) {}

  /// Sends to a specific neighbor. Silently drops non-neighbor targets in
  /// release builds is unacceptable — throws instead.
  void send(Vertex to, Msg m) {
    if (!g_.has_edge(self_, to))
      throw std::logic_error("LOCAL model violation: send to non-neighbor");
    if (faults_ != nullptr && faults_->contains(to)) return;
    out_.emplace_back(to, std::move(m));
  }

  /// Sends a copy to every alive neighbor.
  void broadcast(const Msg& m) {
    for (const Arc& a : g_.neighbors(self_)) {
      if (faults_ != nullptr && faults_->contains(a.to)) continue;
      out_.emplace_back(a.to, m);
    }
  }

  std::vector<std::pair<Vertex, Msg>>& outgoing() { return out_; }

 private:
  const Graph& g_;
  const VertexSet* faults_;
  Vertex self_;
  std::vector<std::pair<Vertex, Msg>> out_;
};

/// Runs `rounds` synchronous rounds of `fn` over the alive vertices of g.
/// fn signature: void(std::size_t round, Vertex v,
///                    const std::vector<Inbound<Msg>>& inbox,
///                    Mailbox<Msg>& out)
template <class Msg, class RoundFn>
RunStats run_rounds(const Graph& g, std::size_t rounds, RoundFn&& fn,
                    const VertexSet* faults = nullptr) {
  const std::size_t n = g.num_vertices();
  std::vector<std::vector<Inbound<Msg>>> inbox(n), next(n);
  RunStats stats;

  for (std::size_t round = 0; round < rounds; ++round) {
    ++stats.rounds;
    for (Vertex v = 0; v < n; ++v) {
      if (faults != nullptr && faults->contains(v)) continue;
      Mailbox<Msg> mail(g, faults, v);
      fn(round, v, inbox[v], mail);
      for (auto& [to, m] : mail.outgoing()) {
        next[to].push_back({v, std::move(m)});
        ++stats.messages;
      }
    }
    for (Vertex v = 0; v < n; ++v) {
      inbox[v] = std::move(next[v]);
      next[v].clear();
    }
  }
  return stats;
}

}  // namespace ftspan::local
