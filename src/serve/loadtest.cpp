#include "serve/loadtest.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "util/rng.hpp"

namespace ftspan::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// A blocking loopback client speaking just enough HTTP/1.1 to measure the
/// daemon: send one GET, read status line + headers + Content-Length body.
class Client {
 public:
  Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("loadtest: socket() failed");
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      throw std::runtime_error("loadtest: connect() failed");
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trips one request. Returns the HTTP status, or 0 on transport
  /// failure.
  int round_trip(const std::string& target) {
    const std::string req =
        "GET " + target + " HTTP/1.1\r\nHost: l\r\n\r\n";
    if (!send_all(req)) return 0;

    // Read up to the blank line, then Content-Length more bytes.
    std::size_t header_end;
    while ((header_end = buf_.find("\r\n\r\n")) == std::string::npos)
      if (!recv_some()) return 0;
    std::size_t content_length = 0;
    const std::size_t cl = buf_.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      for (std::size_t i = cl + 16; i < header_end && buf_[i] >= '0' &&
                                    buf_[i] <= '9';
           ++i)
        content_length = content_length * 10 +
                         static_cast<std::size_t>(buf_[i] - '0');
    }
    const std::size_t total = header_end + 4 + content_length;
    while (buf_.size() < total)
      if (!recv_some()) return 0;

    int status = 0;
    const std::size_t sp = buf_.find(' ');
    if (sp != std::string::npos)
      for (std::size_t i = sp + 1; i < buf_.size() && buf_[i] >= '0' &&
                                   buf_[i] <= '9';
           ++i)
        status = status * 10 + (buf_[i] - '0');
    buf_.erase(0, total);  // keep-alive: leftovers belong to the next reply
    return status;
  }

 private:
  bool send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }
  bool recv_some() {
    char tmp[4096];
    const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
    if (n <= 0) return false;
    buf_.append(tmp, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buf_;
};

/// The query mix: ~60% plain distance, ~25% stretch, ~15% fault what-if
/// (distance avoiding one or two random vertices). Entirely seed-driven.
std::string random_target(Rng& rng, std::size_t n) {
  const auto v = [&] { return std::to_string(rng.uniform_index(n)); };
  const double roll = rng.uniform();
  if (roll < 0.60) return "/distance?s=" + v() + "&t=" + v();
  if (roll < 0.85) return "/stretch?s=" + v() + "&t=" + v();
  std::string target = "/distance?s=" + v() + "&t=" + v() + "&avoid=" + v();
  if (rng.bernoulli(0.5)) target += "," + v();
  return target;
}

struct ClientTally {
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::vector<double> latencies_ms;
};

void client_main(std::uint16_t port, std::size_t n, std::uint64_t seed,
                 double deadline_s, std::uint64_t paced_count,
                 double interval_s, ClientTally& tally) {
  try {
    Client client(port);
    Rng rng(seed);
    const Clock::time_point start = Clock::now();
    const auto elapsed = [&] {
      return std::chrono::duration<double>(Clock::now() - start).count();
    };
    std::uint64_t sent = 0;
    for (;;) {
      if (paced_count > 0) {
        if (sent == paced_count) break;
        // Pace against the schedule, not the previous response, so a slow
        // reply doesn't silently lower the offered rate.
        const double due = static_cast<double>(sent) * interval_s;
        const double now = elapsed();
        if (due > now)
          std::this_thread::sleep_for(
              std::chrono::duration<double>(due - now));
      } else if (elapsed() >= deadline_s) {
        break;
      }
      const std::string target = random_target(rng, n);
      const Clock::time_point t0 = Clock::now();
      const int status = client.round_trip(target);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      ++sent;
      if (status == 200) {
        ++tally.ok;
        tally.latencies_ms.push_back(ms);
      } else {
        ++tally.errors;
        if (status == 0) break;  // transport gone; stop this client
      }
    }
  } catch (...) {
    ++tally.errors;
  }
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t i = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

}  // namespace

LoadTestResult run_load_test(QueryEngine& engine,
                             const LoadTestOptions& options) {
  const std::size_t conns = options.conns == 0 ? 1 : options.conns;

  ServeOptions so;
  so.max_connections = conns + 4;
  ServeDaemon daemon(engine, so);
  daemon.listen();
  std::thread server([&daemon] { daemon.run(); });

  // Paced mode: split a fixed request count across clients; each client
  // paces its share on its own schedule.
  std::uint64_t paced_total = 0;
  double interval_s = 0;
  if (options.qps > 0) {
    paced_total = static_cast<std::uint64_t>(
        std::max(1.0, std::llround(options.qps * options.duration) * 1.0));
    interval_s = static_cast<double>(conns) / options.qps;
  }

  std::vector<ClientTally> tallies(conns);
  std::vector<std::thread> clients;
  clients.reserve(conns);
  const Clock::time_point t0 = Clock::now();
  for (std::size_t c = 0; c < conns; ++c) {
    const std::uint64_t share =
        paced_total == 0 ? 0 : paced_total / conns + (c < paced_total % conns);
    clients.emplace_back(client_main, daemon.port(),
                         engine.num_vertices(),
                         hash_combine(options.seed, c), options.duration,
                         share, interval_s, std::ref(tallies[c]));
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  daemon.stop();
  server.join();

  LoadTestResult result;
  result.seconds = seconds;
  std::vector<double> all;
  for (ClientTally& tally : tallies) {
    result.requests += tally.ok;
    result.errors += tally.errors;
    all.insert(all.end(), tally.latencies_ms.begin(),
               tally.latencies_ms.end());
  }
  std::sort(all.begin(), all.end());
  result.p50_ms = quantile(all, 0.50);
  result.p99_ms = quantile(all, 0.99);
  result.achieved_qps =
      seconds > 0 ? static_cast<double>(result.requests) / seconds : 0;
  const auto& cache = engine.cache_stats();
  result.cache_hits = cache.hits;
  result.cache_misses = cache.misses;
  const std::uint64_t lookups = cache.hits + cache.misses;
  result.cache_hit_rate =
      lookups == 0 ? 0
                   : static_cast<double>(cache.hits) /
                         static_cast<double>(lookups);
  return result;
}

}  // namespace ftspan::serve
