#include "serve/loadtest.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/net.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace ftspan::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// A blocking loopback client speaking just enough HTTP/1.1 to measure the
/// daemon: send one request, read status line + headers + Content-Length
/// body. Chaos mode needs clients that *survive* their own misbehaviour,
/// so the socket can be torn down and reconnected at any point.
class Client {
 public:
  explicit Client(std::uint16_t port) : port_(port) { reconnect(); }
  ~Client() { disconnect(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  void disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }

  /// (Re)establishes the connection. Throws only from the constructor path
  /// via the first call; later failures just leave the client disconnected
  /// (the caller retries next slot).
  bool reconnect() {
    disconnect();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      disconnect();
      return false;
    }
    return true;
  }

  bool send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          net::send_retry(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Slow-loris: dribbles `bytes` out one chunk at a time with a pause
  /// between chunks, exactly the shape of a trickling attacker.
  bool trickle(const std::string& bytes, std::size_t chunk,
               std::chrono::microseconds pause) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const std::size_t len = std::min(chunk, bytes.size() - off);
      std::size_t sent = 0;
      while (sent < len) {
        const ssize_t n =
            net::send_retry(fd_, bytes.data() + off + sent, len - sent);
        if (n <= 0) return false;
        sent += static_cast<std::size_t>(n);
      }
      off += len;
      if (off < bytes.size()) std::this_thread::sleep_for(pause);
    }
    return true;
  }

  /// Reads one response (status line + headers + Content-Length body).
  /// Returns the HTTP status, or 0 on transport failure.
  int read_response() {
    std::size_t header_end;
    while ((header_end = buf_.find("\r\n\r\n")) == std::string::npos)
      if (!recv_some()) return 0;
    std::size_t content_length = 0;
    const std::size_t cl = buf_.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      for (std::size_t i = cl + 16; i < header_end && buf_[i] >= '0' &&
                                    buf_[i] <= '9';
           ++i)
        content_length = content_length * 10 +
                         static_cast<std::size_t>(buf_[i] - '0');
    }
    const std::size_t total = header_end + 4 + content_length;
    while (buf_.size() < total)
      if (!recv_some()) return 0;

    int status = 0;
    const std::size_t sp = buf_.find(' ');
    if (sp != std::string::npos)
      for (std::size_t i = sp + 1; i < buf_.size() && buf_[i] >= '0' &&
                                   buf_[i] <= '9';
           ++i)
        status = status * 10 + (buf_[i] - '0');
    buf_.erase(0, total);  // keep-alive: leftovers belong to the next reply
    return status;
  }

  /// Round-trips one request. Returns the HTTP status, or 0 on transport
  /// failure.
  int round_trip(const std::string& method, const std::string& target) {
    const std::string req =
        method + " " + target + " HTTP/1.1\r\nHost: l\r\n\r\n";
    if (!send_all(req)) return 0;
    return read_response();
  }

 private:
  bool send_all(const std::string& bytes) { return send_raw(bytes); }
  bool recv_some() {
    char tmp[4096];
    const ssize_t n = net::recv_retry(fd_, tmp, sizeof(tmp));
    if (n <= 0) return false;
    buf_.append(tmp, static_cast<std::size_t>(n));
    return true;
  }

  std::uint16_t port_;
  int fd_ = -1;
  std::string buf_;
};

/// The query mix: ~60% plain distance, ~25% stretch, ~15% fault what-if
/// (distance avoiding one or two random vertices). Entirely seed-driven.
std::string random_target(Rng& rng, std::size_t n) {
  const auto v = [&] { return std::to_string(rng.uniform_index(n)); };
  const double roll = rng.uniform();
  if (roll < 0.60) return "/distance?s=" + v() + "&t=" + v();
  if (roll < 0.85) return "/stretch?s=" + v() + "&t=" + v();
  std::string target = "/distance?s=" + v() + "&t=" + v() + "&avoid=" + v();
  if (rng.bernoulli(0.5)) target += "," + v();
  return target;
}

struct ClientTally {
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t chaos_events = 0;
  std::uint64_t chaos_resets = 0;
  std::uint64_t chaos_slowloris = 0;
  std::uint64_t chaos_malformed = 0;
  std::uint64_t chaos_oversized = 0;
  std::uint64_t reloads_sent = 0;
  std::uint64_t reload_acks = 0;
  std::vector<double> latencies_ms;
};

/// Buckets a response status into the tally. Statuses the daemon can emit
/// under load are *expected* outcomes; anything else (including a dropped
/// connection, status 0) is an error the acceptance gate counts.
void classify(int status, ClientTally& tally) {
  switch (status) {
    case 503: ++tally.shed; break;
    case 400: case 404: case 405: case 408: case 413:
      ++tally.rejected;
      break;
    case 202: case 409: ++tally.reload_acks; break;
    default: ++tally.errors; break;
  }
}

void client_main(std::uint16_t port, std::size_t n,
                 const LoadTestOptions& opts, std::uint64_t seed,
                 std::uint64_t paced_count, double interval_s,
                 ClientTally& tally) {
  try {
    Client client(port);
    if (!client.connected())
      throw std::runtime_error("loadtest: connect() failed");
    Rng rng(seed);
    const Clock::time_point start = Clock::now();
    const auto elapsed = [&] {
      return std::chrono::duration<double>(Clock::now() - start).count();
    };
    std::uint64_t sent = 0;
    for (;;) {
      if (paced_count > 0) {
        if (sent == paced_count) break;
        // Pace against the schedule, not the previous response, so a slow
        // reply doesn't silently lower the offered rate.
        const double due = static_cast<double>(sent) * interval_s;
        const double now = elapsed();
        if (due > now)
          std::this_thread::sleep_for(
              std::chrono::duration<double>(due - now));
      } else if (elapsed() >= opts.duration) {
        break;
      }
      ++sent;
      if (!client.connected() && !client.reconnect()) {
        ++tally.errors;  // the daemon is gone: nothing left to measure
        break;
      }

      // Reload storm: every Nth slot posts an admin reload instead of a
      // query. 202 (started) and 409 (one already running) are both the
      // protocol working as designed.
      if (opts.reload_every > 0 && sent % opts.reload_every == 0) {
        ++tally.reloads_sent;
        const int status = client.round_trip("POST", "/admin/reload");
        if (status == 0) {
          ++tally.errors;  // reload must never cost a connection
          client.reconnect();
        } else {
          classify(status, tally);
        }
        continue;
      }

      // Chaos slot: become one of four misbehaving clients, then recover.
      if (opts.chaos > 0 && rng.uniform() < opts.chaos) {
        ++tally.chaos_events;
        switch (rng.uniform_index(4)) {
          case 0: {  // mid-request connection reset
            ++tally.chaos_resets;
            client.send_raw("GET /distance?s=" +
                            std::to_string(rng.uniform_index(n)));
            client.reconnect();
            break;
          }
          case 1: {  // slow-loris: a valid request, one byte at a time
            ++tally.chaos_slowloris;
            const std::string req = "GET " + random_target(rng, n) +
                                    " HTTP/1.1\r\nHost: l\r\n\r\n";
            if (client.trickle(req, 1, std::chrono::microseconds(200))) {
              const int status = client.read_response();
              if (status == 200)
                ++tally.ok;
              else if (status == 0)
                client.reconnect();
              else
                classify(status, tally);
            } else {
              client.reconnect();
            }
            break;
          }
          case 2: {  // malformed flood: the daemon answers 400 and closes
            ++tally.chaos_malformed;
            if (client.send_raw("BLARG /nope\r\nanti: http\r\n\r\n")) {
              const int status = client.read_response();
              if (status != 0) classify(status, tally);
            }
            client.reconnect();
            break;
          }
          default: {  // oversized request: 413, or a cutoff mid-upload
            ++tally.chaos_oversized;
            std::string req = "GET /distance?s=0&junk=";
            req.append(24 * 1024, 'x');
            req += " HTTP/1.1\r\nHost: l\r\n\r\n";
            if (client.send_raw(req)) {
              const int status = client.read_response();
              if (status != 0) classify(status, tally);
            }
            // The daemon may RST while we are still sending — both the
            // send failure and a clean 413 are expected shapes here.
            client.reconnect();
            break;
          }
        }
        continue;
      }

      const std::string target = random_target(rng, n);
      const Clock::time_point t0 = Clock::now();
      const int status = client.round_trip("GET", target);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      if (status == 200) {
        ++tally.ok;
        tally.latencies_ms.push_back(ms);
      } else if (status == 0) {
        // A dropped connection on a well-formed request is exactly what
        // the reload/robustness machinery promises never happens.
        ++tally.errors;
        client.reconnect();
      } else {
        classify(status, tally);
      }
    }
  } catch (...) {
    ++tally.errors;
  }
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t i = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

}  // namespace

LoadTestResult run_load_test(std::shared_ptr<EpochManager> epochs,
                             const LoadTestOptions& options) {
  const std::size_t conns = options.conns == 0 ? 1 : options.conns;
  const std::size_t n = epochs->current()->engine->num_vertices();

  ServeOptions so;
  so.max_connections = conns + 4;
  ServeDaemon daemon(epochs, so);
  daemon.listen();
  std::thread server([&daemon] { daemon.run(); });

  // Paced mode: split a fixed request count across clients; each client
  // paces its share on its own schedule.
  std::uint64_t paced_total = 0;
  double interval_s = 0;
  if (options.qps > 0) {
    paced_total = static_cast<std::uint64_t>(
        std::max(1.0, std::llround(options.qps * options.duration) * 1.0));
    interval_s = static_cast<double>(conns) / options.qps;
  }

  std::vector<ClientTally> tallies(conns);
  std::vector<std::thread> clients;
  clients.reserve(conns);
  const Clock::time_point t0 = Clock::now();
  for (std::size_t c = 0; c < conns; ++c) {
    const std::uint64_t share =
        paced_total == 0 ? 0 : paced_total / conns + (c < paced_total % conns);
    clients.emplace_back(client_main, daemon.port(), n, options,
                         hash_combine(options.seed, c), share, interval_s,
                         std::ref(tallies[c]));
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  daemon.stop();
  server.join();
  epochs->wait_idle();  // a reload may still be rebuilding: let it land

  LoadTestResult result;
  result.seconds = seconds;
  std::vector<double> all;
  for (ClientTally& tally : tallies) {
    result.requests += tally.ok;
    result.errors += tally.errors;
    result.shed += tally.shed;
    result.rejected += tally.rejected;
    result.chaos_events += tally.chaos_events;
    result.chaos_resets += tally.chaos_resets;
    result.chaos_slowloris += tally.chaos_slowloris;
    result.chaos_malformed += tally.chaos_malformed;
    result.chaos_oversized += tally.chaos_oversized;
    result.reloads_sent += tally.reloads_sent;
    result.reload_acks += tally.reload_acks;
    all.insert(all.end(), tally.latencies_ms.begin(),
               tally.latencies_ms.end());
  }
  std::sort(all.begin(), all.end());
  result.p50_ms = quantile(all, 0.50);
  result.p99_ms = quantile(all, 0.99);
  result.achieved_qps =
      seconds > 0 ? static_cast<double>(result.requests) / seconds : 0;

  const EpochManager::Status es = epochs->status();
  result.reloads_ok = es.ok;
  result.reloads_failed = es.failed;
  result.final_epoch = es.epoch;
  const ServeDaemon::Stats& ds = daemon.stats();
  result.server_shed = ds.shed;
  result.deadline_hits = ds.deadline_hits;
  result.internal_errors = ds.internal_errors;

  const QueryEngine& engine = *epochs->current()->engine;
  const auto& cache = engine.cache_stats();
  result.cache_hits = cache.hits;
  result.cache_misses = cache.misses;
  const std::uint64_t lookups = cache.hits + cache.misses;
  result.cache_hit_rate =
      lookups == 0 ? 0
                   : static_cast<double>(cache.hits) /
                         static_cast<double>(lookups);
  return result;
}

LoadTestResult run_load_test(QueryEngine& engine,
                             const LoadTestOptions& options) {
  LoadTestOptions o = options;
  o.reload_every = 0;  // no builder behind a bare engine: nothing to reload
  return run_load_test(EpochManager::fixed(engine), o);
}

}  // namespace ftspan::serve
