#include "serve/epoch.hpp"

#include <exception>
#include <utility>

namespace ftspan::serve {

std::shared_ptr<EngineEpoch> EngineEpoch::build(
    Graph g, const std::vector<EdgeId>& spanner_edges, double k,
    const QueryEngine::Options& options, std::string source) {
  auto epoch = std::make_shared<EngineEpoch>();
  epoch->source = std::move(source);
  epoch->graph = std::move(g);
  // Constructed against the stored graph: the engine aliases epoch->graph,
  // which lives exactly as long as the engine does.
  epoch->owned = std::make_unique<QueryEngine>(epoch->graph, spanner_edges, k,
                                               options);
  epoch->engine = epoch->owned.get();
  return epoch;
}

std::shared_ptr<EngineEpoch> EngineEpoch::wrap(QueryEngine& engine,
                                               std::string source) {
  auto epoch = std::make_shared<EngineEpoch>();
  epoch->source = std::move(source);
  epoch->engine = &engine;
  return epoch;
}

EpochManager::EpochManager(std::shared_ptr<EngineEpoch> initial,
                           Builder builder)
    : builder_(std::move(builder)), current_(std::move(initial)) {}

std::shared_ptr<EpochManager> EpochManager::fixed(QueryEngine& engine) {
  return std::make_shared<EpochManager>(EngineEpoch::wrap(engine, "fixed"),
                                        Builder{});
}

EpochManager::~EpochManager() {
  wait_idle();
  if (worker_.joinable()) worker_.join();
}

std::shared_ptr<EngineEpoch> EpochManager::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

bool EpochManager::request_reload(const std::string& path) {
  if (!builder_) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (in_progress_) return false;
  if (worker_.joinable()) worker_.join();  // previous reload has finished
  in_progress_ = true;
  worker_ = std::thread(&EpochManager::reload_main, this, path);
  return true;
}

void EpochManager::reload_main(std::string path) {
  std::string resolved = path;
  if (resolved.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    resolved = current_->source;
  }
  std::shared_ptr<EngineEpoch> next;
  std::string error;
  try {
    next = builder_(resolved);
    if (!next) error = "builder returned no epoch";
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown rebuild failure";
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (next) {
    next->id = current_->id + 1;
    // The swap may drop the last reference to the old epoch right here (if
    // the event loop is between rounds) — destroying a QueryEngine nobody
    // references is safe from any thread.
    current_ = std::move(next);
    ++ok_;
  } else {
    ++failed_;
    last_error_ = std::move(error);
  }
  in_progress_ = false;
  idle_cv_.notify_all();
}

EpochManager::Status EpochManager::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  Status s;
  s.epoch = current_->id;
  s.source = current_->source;
  s.ok = ok_;
  s.failed = failed_;
  s.in_progress = in_progress_;
  s.last_error = last_error_;
  return s;
}

void EpochManager::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return !in_progress_; });
}

}  // namespace ftspan::serve
