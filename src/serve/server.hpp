// ServeDaemon — the `ftspan serve` HTTP/JSON front end.
//
// One thread, one poll() loop, no third-party dependencies: a listening
// socket plus per-connection state machines (nonblocking reads into a
// growth-capped buffer, the incremental parser from serve/http.hpp, a
// pending-write buffer drained on POLLOUT). All complete requests found in
// one poll round are answered through a single QueryEngine::answer_batch
// call, so the worker lanes see batches, not single queries, and responses
// still go out in per-connection request order (pipelining-safe).
//
// Endpoints:
//   GET  /distance?s=S&t=T[&avoid=LIST]  spanner distance d_{H\F}(s, t)
//   GET  /stretch?s=S&t=T[&avoid=LIST]   adds base d_{G\F}(s, t) and ratio
//   GET  /stats                          counters: qps, cache, shed, epoch
//   GET  /healthz                        liveness + reload status
//   POST /admin/reload[?path=FILE]       start a background graph reload
// where LIST is comma-separated faults: `7` avoids vertex 7, `3-5` avoids
// edge {3, 5}.
//
// Epochs. The daemon serves through an EpochManager (serve/epoch.hpp): the
// loop pins the current epoch once per poll round, so a reload published
// mid-round is picked up at the next round while every already-parsed
// request answers on the epoch it arrived under. trigger_reload() is
// async-signal-safe (a 'R' byte on the self-pipe) so a SIGHUP handler can
// call it; POST /admin/reload does the same from the wire.
//
// Admission control. Three independent knobs in ServeOptions:
//   max_pipeline  per-connection requests parsed per round — excess stays
//                 buffered and is parsed next round (deferred, never lost);
//   max_pending   queries admitted to one answer_batch — excess requests
//                 are shed with 503 + Retry-After on a still-open conn;
//   deadline_ms   request age limit (first byte to response) — stale
//                 requests answer 503 instead of occupying the batch.
//
// Shutdown: stop() is async-signal-safe (one write to a self-pipe), so a
// SIGINT/SIGTERM handler can call it; the loop then flushes nothing further
// and run() returns after closing every fd.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/epoch.hpp"
#include "serve/query.hpp"

namespace ftspan::serve {

struct HttpRequest;

struct ServeOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the bound one via port()
  std::size_t max_connections = 64;   ///< beyond this, accept + 503 + close
  std::size_t max_request_bytes = 16384;  ///< request line + headers + body
  int idle_timeout_ms = 5000;  ///< idle connections get 408 + close; <= 0 off
  std::size_t max_pipeline = 16;  ///< requests parsed per conn per round
  std::size_t max_pending = 512;  ///< queries per batch; excess shed with 503
  int deadline_ms = 0;  ///< per-request deadline; <= 0 off
};

class ServeDaemon {
 public:
  /// Serves through `epochs` (hot-reloadable when the manager has a
  /// builder). answer_batch is only ever called from the thread inside
  /// run() (the engine's single-coordinator contract).
  ServeDaemon(std::shared_ptr<EpochManager> epochs,
              const ServeOptions& options = {});

  /// Wraps a bare engine in a non-reloadable EpochManager. The engine must
  /// outlive the daemon.
  ServeDaemon(QueryEngine& engine, const ServeOptions& options = {});

  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds and listens (and ignores SIGPIPE process-wide — a dying client
  /// must never kill the daemon). Throws std::runtime_error on failure
  /// (port in use, bad host). Separate from run() so callers learn the
  /// ephemeral port before starting the loop.
  void listen();

  /// The bound port (valid after listen()).
  std::uint16_t port() const { return port_; }

  /// The event loop; returns after stop(). Call listen() first.
  void run();

  /// Requests shutdown. Async-signal-safe and callable from any thread.
  void stop();

  /// Requests a graph reload from the current source — the SIGHUP path.
  /// Async-signal-safe and callable from any thread; a no-op (recorded as
  /// a failed admin request) when the epoch manager is not reloadable.
  void trigger_reload();

  const std::shared_ptr<EpochManager>& epochs() const { return epochs_; }

  struct Stats {
    std::uint64_t requests = 0;     ///< well-formed requests answered
    std::uint64_t bad_requests = 0; ///< 400/404/405/413 responses
    std::uint64_t connections = 0;  ///< total accepted
    std::uint64_t shed = 0;         ///< 503s from the pending-request budget
    std::uint64_t deadline_hits = 0;  ///< 503s from per-request deadlines
    std::uint64_t internal_errors = 0;  ///< 503s from compute/alloc failures
    std::uint64_t reload_requests = 0;  ///< accepted /admin/reload + SIGHUPs
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Conn;

  /// One parsed request awaiting its response bytes. Immediate outcomes
  /// (errors, /stats, /healthz) carry the full response already; query
  /// endpoints carry an index into the round's batch instead and are
  /// resolved after answer_batch. Walking the actions in parse order keeps
  /// pipelined responses in request order per connection.
  struct Action {
    std::size_t conn = 0;
    std::size_t query_idx = static_cast<std::size_t>(-1);
    bool want_stretch = false;
    bool keep_alive = true;
    std::string response;  ///< pre-resolved bytes when query_idx is unset
  };

  void accept_new();
  void read_into(Conn& conn);
  void process(std::size_t ci, QueryEngine& engine);
  void handle_admin_reload(const HttpRequest& req, Action& action);
  void flush(Conn& conn);
  std::string handle_stats(const QueryEngine& engine,
                           double uptime_seconds) const;
  std::string handle_healthz() const;
  void drain_wake_pipe(bool& stop_requested);

  std::shared_ptr<EpochManager> epochs_;
  ServeOptions options_;
  int listen_fd_ = -1;
  int wake_fd_[2] = {-1, -1};  ///< self-pipe: [0] polled; 'S' stop, 'R' reload
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  Stats stats_;
  bool deferred_ = false;  ///< a conn hit max_pipeline: poll must not block

  // Per-round scratch (members so the buffers persist across rounds).
  std::vector<ServeQuery> batch_queries_;
  std::vector<ServeAnswer> batch_answers_;
  std::vector<Action> actions_;
  std::vector<std::int64_t> batch_arrival_ms_;  ///< arrival per batch query
  double uptime_seconds_ = 0;  ///< refreshed each round for /stats
  std::int64_t now_ms_ = 0;    ///< refreshed each round for deadlines
};

}  // namespace ftspan::serve
