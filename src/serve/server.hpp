// ServeDaemon — the `ftspan serve` HTTP/JSON front end.
//
// One thread, one poll() loop, no third-party dependencies: a listening
// socket plus per-connection state machines (nonblocking reads into a
// growth-capped buffer, the incremental parser from serve/http.hpp, a
// pending-write buffer drained on POLLOUT). All complete requests found in
// one poll round are answered through a single QueryEngine::answer_batch
// call, so the worker lanes see batches, not single queries, and responses
// still go out in per-connection request order (pipelining-safe).
//
// Endpoints (GET only):
//   /distance?s=S&t=T[&avoid=LIST]  spanner distance d_{H\F}(s, t)
//   /stretch?s=S&t=T[&avoid=LIST]   adds base d_{G\F}(s, t) and the ratio
//   /stats                          counters: qps, cache hit rate, peak RSS
//   /healthz                        liveness probe
// where LIST is comma-separated faults: `7` avoids vertex 7, `3-5` avoids
// edge {3, 5}.
//
// Shutdown: stop() is async-signal-safe (one write to a self-pipe), so a
// SIGINT/SIGTERM handler can call it; the loop then flushes nothing further
// and run() returns after closing every fd.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/query.hpp"

namespace ftspan::serve {

struct ServeOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the bound one via port()
  std::size_t max_connections = 64;   ///< beyond this, accept + 503 + close
  std::size_t max_request_bytes = 16384;  ///< request line + headers + body
  int idle_timeout_ms = 5000;  ///< idle connections get 408 + close; <= 0 off
};

class ServeDaemon {
 public:
  /// The engine must outlive the daemon; answer_batch is only ever called
  /// from the thread inside run() (the engine's single-coordinator
  /// contract).
  ServeDaemon(QueryEngine& engine, const ServeOptions& options = {});
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds and listens. Throws std::runtime_error on failure (port in use,
  /// bad host). Separate from run() so callers learn the ephemeral port
  /// before starting the loop.
  void listen();

  /// The bound port (valid after listen()).
  std::uint16_t port() const { return port_; }

  /// The event loop; returns after stop(). Call listen() first.
  void run();

  /// Requests shutdown. Async-signal-safe and callable from any thread.
  void stop();

  struct Stats {
    std::uint64_t requests = 0;     ///< well-formed requests answered
    std::uint64_t bad_requests = 0; ///< 400/404/405/413 responses
    std::uint64_t connections = 0;  ///< total accepted
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Conn;

  /// One parsed request awaiting its response bytes. Immediate outcomes
  /// (errors, /stats, /healthz) carry the full response already; query
  /// endpoints carry an index into the round's batch instead and are
  /// resolved after answer_batch. Walking the actions in parse order keeps
  /// pipelined responses in request order per connection.
  struct Action {
    std::size_t conn = 0;
    std::size_t query_idx = static_cast<std::size_t>(-1);
    bool want_stretch = false;
    bool keep_alive = true;
    std::string response;  ///< pre-resolved bytes when query_idx is unset
  };

  void accept_new();
  void read_into(Conn& conn);
  void process(std::size_t ci);
  void flush(Conn& conn);
  std::string handle_stats(double uptime_seconds) const;

  QueryEngine* engine_;
  ServeOptions options_;
  int listen_fd_ = -1;
  int wake_fd_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] written by stop()
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  Stats stats_;

  // Per-round scratch (members so the buffers persist across rounds).
  std::vector<ServeQuery> batch_queries_;
  std::vector<ServeAnswer> batch_answers_;
  std::vector<Action> actions_;
  double uptime_seconds_ = 0;  ///< refreshed each round for /stats
};

}  // namespace ftspan::serve
