#include "serve/net.hpp"

#include <csignal>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <new>
#include <string>

#include "util/rng.hpp"

namespace ftspan::serve::net {

namespace {

#ifdef FTSPAN_CHAOS_SEAM

struct ChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  double short_io = 0;  ///< P(clamp a recv/send to one byte)
  double alloc = 0;     ///< P(chaos_alloc_point throws)
};

ChaosConfig parse_chaos_env() {
  ChaosConfig cfg;
  const char* env = std::getenv("FTSPAN_CHAOS");
  if (env == nullptr || *env == '\0') return cfg;
  cfg.enabled = true;
  std::string s(env);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed")
      cfg.seed = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "short_io")
      cfg.short_io = std::strtod(value.c_str(), nullptr);
    else if (key == "alloc")
      cfg.alloc = std::strtod(value.c_str(), nullptr);
  }
  return cfg;
}

const ChaosConfig& chaos_config() {
  static const ChaosConfig cfg = parse_chaos_env();
  return cfg;
}

std::atomic<std::uint64_t> g_chaos_counter{0};
std::atomic<std::uint64_t> g_chaos_injected{0};

/// The next chaos decision: a uniform double in [0, 1) derived from
/// hash(seed, event counter) — deterministic per seed, independent of time.
double chaos_roll() {
  const std::uint64_t n =
      g_chaos_counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = hash_combine(chaos_config().seed, n);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool chaos_short_io() {
  const ChaosConfig& cfg = chaos_config();
  if (!cfg.enabled || cfg.short_io <= 0) return false;
  if (chaos_roll() >= cfg.short_io) return false;
  g_chaos_injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

#endif  // FTSPAN_CHAOS_SEAM

}  // namespace

void ignore_sigpipe() {
  struct sigaction sa {};
  sa.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &sa, nullptr);
}

ssize_t recv_retry(int fd, void* buf, std::size_t len) {
#ifdef FTSPAN_CHAOS_SEAM
  if (len > 1 && chaos_short_io()) len = 1;
#endif
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

ssize_t send_retry(int fd, const void* buf, std::size_t len) {
#ifdef FTSPAN_CHAOS_SEAM
  if (len > 1 && chaos_short_io()) len = 1;
#endif
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

int accept_retry(int fd) {
  for (;;) {
    const int cfd = ::accept(fd, nullptr, nullptr);
    if (cfd < 0 && errno == EINTR) continue;
    return cfd;
  }
}

int poll_retry(pollfd* fds, nfds_t n, int timeout_ms) {
  for (;;) {
    const int r = ::poll(fds, n, timeout_ms);
    if (r < 0 && errno == EINTR) return 0;
    return r;
  }
}

bool chaos_enabled() {
#ifdef FTSPAN_CHAOS_SEAM
  return chaos_config().enabled;
#else
  return false;
#endif
}

void chaos_alloc_point() {
#ifdef FTSPAN_CHAOS_SEAM
  const ChaosConfig& cfg = chaos_config();
  if (!cfg.enabled || cfg.alloc <= 0) return;
  if (chaos_roll() >= cfg.alloc) return;
  g_chaos_injected.fetch_add(1, std::memory_order_relaxed);
  throw std::bad_alloc();
#endif
}

std::uint64_t chaos_faults_injected() {
#ifdef FTSPAN_CHAOS_SEAM
  return g_chaos_injected.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

}  // namespace ftspan::serve::net
