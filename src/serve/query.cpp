#include "serve/query.hpp"

#include <algorithm>

#include "graph/engine_policy.hpp"
#include "pipeline/burst_pipeline.hpp"

namespace ftspan::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

bool same_query(const ServeQuery& a, const ServeQuery& b) {
  return a.s == b.s && a.t == b.t && a.want_base == b.want_base &&
         a.avoid_vertices == b.avoid_vertices && a.avoid_edges == b.avoid_edges;
}

/// Bounded s-t run on `c` minus vertex faults minus dead edges. The dead
/// mask is indexed by the snapshot's own edge ids, so G and H need separate
/// masks (edge_subgraph renumbers).
Weight pair_avoiding(DijkstraEngine& eng, const Csr& c, Vertex s, Vertex t,
                     const VertexSet* faults, const std::vector<char>& dead) {
  const Vertex src[1] = {s};
  const Vertex tgt[1] = {t};
  eng.run_visit(c.num_vertices(), {src, 1}, faults, kInfiniteWeight, {tgt, 1},
                nullptr, [&](Vertex v, auto&& relax) {
                  for (const auto& a : c.out(v))
                    if (!dead[a.edge]) relax(a.to, a.w, a.edge);
                });
  return eng.dist(t);
}

}  // namespace

void ServeQuery::canonicalize() {
  std::sort(avoid_vertices.begin(), avoid_vertices.end());
  avoid_vertices.erase(
      std::unique(avoid_vertices.begin(), avoid_vertices.end()),
      avoid_vertices.end());
  for (auto& [u, v] : avoid_edges)
    if (u > v) std::swap(u, v);
  std::sort(avoid_edges.begin(), avoid_edges.end());
  avoid_edges.erase(std::unique(avoid_edges.begin(), avoid_edges.end()),
                    avoid_edges.end());
}

std::uint64_t ServeQuery::cache_key() const {
  std::uint64_t h = kFnvOffset;
  h = fnv_u64(h, s);
  h = fnv_u64(h, t);
  h = fnv_u64(h, want_base ? 1 : 0);
  h = fnv_u64(h, avoid_vertices.size());
  for (const Vertex v : avoid_vertices) h = fnv_u64(h, v);
  h = fnv_u64(h, avoid_edges.size());
  for (const auto& [u, v] : avoid_edges) {
    h = fnv_u64(h, u);
    h = fnv_u64(h, v);
  }
  return h;
}

/// One worker lane's pinned state: an engine per graph, a fault mask, and
/// the two dead-edge masks with touched-entry logs so resets are O(|F|),
/// not O(m).
struct QueryEngine::Scratch {
  Scratch(const Csr& cg, const Csr& ch, SpEnginePolicy policy,
          Weight bucket_max) {
    dead_g.assign(cg.num_arcs() / 2, 0);
    dead_h.assign(ch.num_arcs() / 2, 0);
    faults = VertexSet(cg.num_vertices());
    eng_g.set_queue(select_sp_queue(policy, cg.weights().integral,
                                    cg.weights().max_weight, bucket_max),
                    cg.weights().max_weight, bucket_max);
    eng_h.set_queue(select_sp_queue(policy, ch.weights().integral,
                                    ch.weights().max_weight, bucket_max),
                    ch.weights().max_weight, bucket_max);
    eng_g.reserve(cg.num_vertices(), cg.num_arcs() + 1);
    eng_h.reserve(ch.num_vertices(), ch.num_arcs() + 1);
  }

  DijkstraEngine eng_g;
  DijkstraEngine eng_h;
  VertexSet faults;
  std::vector<char> dead_g;  ///< by G edge id
  std::vector<char> dead_h;  ///< by H edge id (renumbered)
  std::vector<EdgeId> touched_g;
  std::vector<EdgeId> touched_h;
};

struct QueryEngine::CacheEntry {
  std::uint64_t key = 0;
  ServeQuery query;  ///< kept to disambiguate genuine hash collisions
  ServeAnswer answer;
};

QueryEngine::QueryEngine(const Graph& g, const std::vector<EdgeId>& spanner_edges,
                         double k, const Options& options)
    : g_(&g),
      h_(g.edge_subgraph(spanner_edges)),
      cg_(g),
      ch_(h_),
      k_(k),
      options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  scratch_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w)
    scratch_.push_back(std::make_unique<Scratch>(cg_, ch_, options_.engine,
                                                 options_.bucket_max));
}

QueryEngine::QueryEngine(const Graph& g,
                         const std::vector<EdgeId>& spanner_edges, double k)
    : QueryEngine(g, spanner_edges, k, Options()) {}

QueryEngine::~QueryEngine() = default;

void QueryEngine::answer_miss(const ServeQuery& q, ServeAnswer& a,
                              Scratch& scratch) const {
  // Stage the fault set. Touched entries are logged so the tear-down below
  // costs O(|F|) regardless of graph size.
  for (const Vertex v : q.avoid_vertices) scratch.faults.insert(v);
  for (const auto& [u, v] : q.avoid_edges) {
    if (const auto id = g_->edge_id(u, v)) {
      scratch.dead_g[*id] = 1;
      scratch.touched_g.push_back(*id);
    }
    if (const auto id = h_.edge_id(u, v)) {
      scratch.dead_h[*id] = 1;
      scratch.touched_h.push_back(*id);
    }
  }

  a.dh = kInfiniteWeight;
  a.dg = kInfiniteWeight;
  a.from_cache = false;
  const bool endpoints_ok =
      !scratch.faults.contains(q.s) && !scratch.faults.contains(q.t);
  if (endpoints_ok && q.s == q.t) {
    a.dh = 0;
    a.dg = 0;
  } else if (endpoints_ok) {
    const VertexSet* faults =
        q.avoid_vertices.empty() ? nullptr : &scratch.faults;
    if (q.avoid_edges.empty()) {
      a.dh = scratch.eng_h.bounded_pair(ch_, q.s, q.t, faults);
      if (q.want_base) a.dg = scratch.eng_g.bounded_pair(cg_, q.s, q.t, faults);
    } else {
      a.dh = pair_avoiding(scratch.eng_h, ch_, q.s, q.t, faults,
                           scratch.dead_h);
      if (q.want_base)
        a.dg = pair_avoiding(scratch.eng_g, cg_, q.s, q.t, faults,
                             scratch.dead_g);
    }
  }

  for (const Vertex v : q.avoid_vertices) scratch.faults.erase(v);
  for (const EdgeId id : scratch.touched_g) scratch.dead_g[id] = 0;
  for (const EdgeId id : scratch.touched_h) scratch.dead_h[id] = 0;
  scratch.touched_g.clear();
  scratch.touched_h.clear();
}

const QueryEngine::CacheEntry* QueryEngine::cache_find(const ServeQuery& q,
                                                       std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end() || !same_query(it->second->query, q)) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
  return &*it->second;
}

void QueryEngine::cache_insert(const ServeQuery& q, std::uint64_t key,
                               const ServeAnswer& a) {
  if (options_.cache_capacity == 0) return;
  if (const auto it = index_.find(key); it != index_.end()) {
    // Same key already cached (duplicate miss in one batch, or a genuine
    // hash collision — the newer answer wins either way).
    it->second->query = q;
    it->second->answer = a;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{key, q, a});
  lru_.front().answer.from_cache = true;  // every future hit is "from cache"
  index_.emplace(key, lru_.begin());
  if (lru_.size() > options_.cache_capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void QueryEngine::answer_batch(std::span<const ServeQuery> queries,
                               std::vector<ServeAnswer>& answers) {
  answers.assign(queries.size(), ServeAnswer{});
  queries_ += queries.size();

  // Phase 1 (calling thread): cache lookups; misses collect into a work
  // list the pipeline fans out over.
  miss_idx_.clear();
  miss_key_.clear();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::uint64_t key =
        options_.cache_capacity == 0 ? 0 : queries[i].cache_key();
    if (options_.cache_capacity != 0) {
      if (const CacheEntry* e = cache_find(queries[i], key)) {
        answers[i] = e->answer;
        ++cache_stats_.hits;
        continue;
      }
      ++cache_stats_.misses;
    }
    miss_idx_.push_back(i);
    miss_key_.push_back(key);
  }
  if (miss_idx_.empty()) return;

  // Phase 2: compute misses on worker-pinned engines. Results are keyed by
  // index, so the answers are identical for every workers/batch setting.
  cur_queries_ = queries;
  cur_answers_ = &answers;
  if (options_.workers == 1) {
    for (const std::size_t qi : miss_idx_)
      answer_miss(queries[qi], answers[qi], *scratch_[0]);
  } else {
    if (pool_ == nullptr)
      pool_ = std::make_unique<BurstPool>(
          options_.workers,
          [this](std::size_t w) {
            Scratch* s = scratch_[w].get();
            return [this, s](std::size_t i) {
              answer_miss(cur_queries_[miss_idx_[i]],
                          (*cur_answers_)[miss_idx_[i]], *s);
            };
          },
          64, options_.pin);
    pool_->run(miss_idx_.size(), options_.batch);
  }

  // Phase 3 (calling thread): newly computed answers land in the cache.
  if (options_.cache_capacity != 0)
    for (std::size_t j = 0; j < miss_idx_.size(); ++j)
      cache_insert(queries[miss_idx_[j]], miss_key_[j],
                   answers[miss_idx_[j]]);
}

std::vector<char> QueryEngine::lane_pinned() const {
  if (pool_ == nullptr) return {};
  return pool_->pinned_lanes();
}

ServeAnswer QueryEngine::answer(const ServeQuery& query) {
  one_query_[0] = query;
  answer_batch({one_query_, 1}, one_answer_);
  return one_answer_[0];
}

}  // namespace ftspan::serve
