// QueryEngine — the daemon's compute core: distance / stretch / fault-
// what-if queries over a precomputed FT spanner, answered by worker-pinned
// pooled DijkstraEngines behind the burst pipeline, with an LRU answer
// cache in front.
//
// A query names a pair (s, t) plus an optional fault set to avoid: vertices
// and/or edges (given as endpoint pairs). The engine answers with the exact
// shortest-path distance in the spanner minus the fault set — and, for
// stretch queries, in the base graph minus the fault set too — using the
// same DijkstraEngine the StretchOracle validates with, so served answers
// are bit-identical to oracle ground truth.
//
// Threading contract: all public methods are called from ONE thread (the
// daemon's event loop). Worker threads only ever run inside answer_batch's
// pipeline fan-out, on their own pinned scratch; the cache is touched by
// the calling thread exclusively.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "graph/sp_engine.hpp"
#include "graph/vertex_set.hpp"

namespace ftspan {
class BurstPool;
}

namespace ftspan::serve {

/// One parsed query. Fault lists must be canonical (sorted, deduplicated,
/// edge endpoints lo <= hi) before hashing/answering — canonicalize() does
/// it. Also the payload type of the daemon's request rings, so it must stay
/// cheaply movable.
struct ServeQuery {
  Vertex s = 0;
  Vertex t = 0;
  bool want_base = false;  ///< stretch query: also compute d_{G\F}(s, t)
  std::vector<Vertex> avoid_vertices;
  std::vector<std::pair<Vertex, Vertex>> avoid_edges;

  /// Sorts + dedups the fault lists and orders edge endpoints; required
  /// before answer()/cache_key().
  void canonicalize();

  /// FNV-1a over (s, t, want_base, fault lists) — the cache key.
  std::uint64_t cache_key() const;
};

/// The answer: exact distances with the fault set applied. `dg` is only
/// meaningful when the query asked for the base distance.
struct ServeAnswer {
  Weight dh = kInfiniteWeight;  ///< d_{H\F}(s, t); infinite = unreachable
  Weight dg = kInfiniteWeight;  ///< d_{G\F}(s, t) (want_base queries only)
  bool from_cache = false;
};

class QueryEngine {
 public:
  struct Options {
    std::size_t workers = 1;        ///< pipeline lanes; 1 = inline, no threads
    std::size_t batch = 0;          ///< queries per burst; 0 = default
    std::size_t cache_capacity = 1024;  ///< LRU entries; 0 disables the cache
    SpEnginePolicy engine = SpEnginePolicy::kAuto;
    /// Bucket/delta engine-resolution ceiling (graph/engine_policy.hpp).
    Weight bucket_max = kMaxBucketWeight;
    /// Pin worker lanes to cores (util/affinity.hpp); per-lane success is
    /// readable via lane_pinned(). Answers never depend on it.
    bool pin = false;
  };

  /// g must outlive the engine; the spanner H is materialized internally
  /// from `spanner_edges` (edge ids into g).
  QueryEngine(const Graph& g, const std::vector<EdgeId>& spanner_edges,
              double k, const Options& options);
  QueryEngine(const Graph& g, const std::vector<EdgeId>& spanner_edges,
              double k);
  QueryEngine(const Graph&& g, const std::vector<EdgeId>& spanner_edges,
              double k, const Options& options) = delete;
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answers queries[i] into answers[i] (resized to match). Cache lookups
  /// happen up front on the calling thread; misses fan out through the
  /// burst pipeline onto worker-pinned engines, then land in the cache.
  /// Queries must be canonicalized. Answers are deterministic and identical
  /// for every workers/batch setting.
  void answer_batch(std::span<const ServeQuery> queries,
                    std::vector<ServeAnswer>& answers);

  /// Single-query convenience over answer_batch.
  ServeAnswer answer(const ServeQuery& query);

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  const CacheStats& cache_stats() const { return cache_stats_; }
  std::uint64_t queries_answered() const { return queries_; }

  /// Per-lane affinity status of the miss-path pool (1 = pinned). Empty
  /// until the first multi-worker batch spawns the pool; always all-zero
  /// when Options::pin was false or the platform lacks affinity support.
  std::vector<char> lane_pinned() const;

  const Graph& base() const { return *g_; }
  const Graph& spanner() const { return h_; }
  double stretch_bound() const { return k_; }
  std::size_t num_vertices() const { return g_->num_vertices(); }

 private:
  struct Scratch;
  struct CacheEntry;

  void answer_miss(const ServeQuery& q, ServeAnswer& a, Scratch& scratch) const;
  const CacheEntry* cache_find(const ServeQuery& q, std::uint64_t key);
  void cache_insert(const ServeQuery& q, std::uint64_t key,
                    const ServeAnswer& a);

  const Graph* g_;
  Graph h_;   ///< the spanner, with its own (renumbered) edge ids
  Csr cg_;    ///< flat snapshots shared read-only by all workers
  Csr ch_;
  double k_;
  Options options_;

  std::vector<std::unique_ptr<Scratch>> scratch_;  ///< one per worker lane
  std::unique_ptr<BurstPool> pool_;  ///< lazily built when workers > 1

  // Per-batch work list, held in members so the pool's (once-constructed)
  // worker tasks can reach the current batch. Valid only inside
  // answer_batch; the single coordinator-thread contract makes this safe.
  std::vector<std::size_t> miss_idx_;
  std::vector<std::uint64_t> miss_key_;
  std::span<const ServeQuery> cur_queries_;
  std::vector<ServeAnswer>* cur_answers_ = nullptr;
  ServeQuery one_query_[1];  ///< answer()'s reusable single-element batch
  std::vector<ServeAnswer> one_answer_;

  // LRU cache: list front = most recent; map points into the list.
  std::list<CacheEntry> lru_;
  std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> index_;
  CacheStats cache_stats_;
  std::uint64_t queries_ = 0;
};

}  // namespace ftspan::serve
