#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>
#include <stdexcept>

#include "runner/scenario.hpp"  // format_double: shortest round-trip doubles
#include "serve/http.hpp"
#include "serve/net.hpp"
#include "util/mem.hpp"

namespace ftspan::serve {

using runner::format_double;

namespace {

constexpr std::size_t kNoQuery = static_cast<std::size_t>(-1);

using Clock = std::chrono::steady_clock;

std::int64_t to_ms(Clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             t.time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Strict decimal vertex id in [0, n).
bool parse_vertex(std::string_view s, std::size_t n, Vertex& out) {
  if (s.empty() || s.size() > 10) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v >= n) return false;
  out = static_cast<Vertex>(v);
  return true;
}

/// The avoid grammar: comma-separated faults, `7` a vertex, `3-5` an edge.
bool parse_avoid(std::string_view list, std::size_t n, ServeQuery& q) {
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? list : list.substr(0, comma);
    list.remove_prefix(comma == std::string_view::npos ? list.size()
                                                       : comma + 1);
    if (item.empty()) return false;
    const std::size_t dash = item.find('-');
    if (dash == std::string_view::npos) {
      Vertex v;
      if (!parse_vertex(item, n, v)) return false;
      q.avoid_vertices.push_back(v);
    } else {
      Vertex u, v;
      if (!parse_vertex(item.substr(0, dash), n, u) ||
          !parse_vertex(item.substr(dash + 1), n, v) || u == v)
        return false;
      q.avoid_edges.emplace_back(u, v);
    }
  }
  return true;
}

std::string json_error(std::string_view message) {
  std::string out = "{\"error\": \"";
  out += message;  // messages are fixed strings, nothing to escape
  out += "\"}";
  return out;
}

/// Escapes a string of unknown provenance (reload errors, file paths) for
/// embedding in a JSON string literal.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_weight(std::string& out, Weight w) {
  if (w >= kInfiniteWeight)
    out += "null";
  else
    out += format_double(w);
}

}  // namespace

/// One client connection's state machine.
struct ServeDaemon::Conn {
  int fd = -1;
  std::string in;   ///< unparsed received bytes
  std::string out;  ///< response bytes awaiting the socket
  bool close_after_flush = false;
  bool broken = false;  ///< peer closed / protocol error: no further parsing
  Clock::time_point last_active;
  std::int64_t in_arrival_ms = 0;  ///< when `in` went empty -> nonempty
};

ServeDaemon::ServeDaemon(std::shared_ptr<EpochManager> epochs,
                         const ServeOptions& options)
    : epochs_(std::move(epochs)), options_(options) {
  if (options_.max_pipeline == 0) options_.max_pipeline = 1;
  if (options_.max_pending == 0) options_.max_pending = 1;
}

ServeDaemon::ServeDaemon(QueryEngine& engine, const ServeOptions& options)
    : ServeDaemon(EpochManager::fixed(engine), options) {}

ServeDaemon::~ServeDaemon() {
  for (auto& c : conns_)
    if (c->fd >= 0) ::close(c->fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_[0] >= 0) ::close(wake_fd_[0]);
  if (wake_fd_[1] >= 0) ::close(wake_fd_[1]);
}

void ServeDaemon::listen() {
  net::ignore_sigpipe();
  if (::pipe(wake_fd_) != 0)
    throw std::runtime_error("serve: pipe() failed");
  set_nonblocking(wake_fd_[0]);
  set_nonblocking(wake_fd_[1]);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("serve: bad host '" + options_.host + "'");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw std::runtime_error("serve: bind to " + options_.host + ":" +
                             std::to_string(options_.port) + " failed: " +
                             std::strerror(errno));
  if (::listen(listen_fd_, 64) != 0)
    throw std::runtime_error("serve: listen() failed");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);
}

void ServeDaemon::stop() {
  const char c = 'S';
  // Async-signal-safe: one write to the (nonblocking) self-pipe.
  [[maybe_unused]] const ssize_t r = ::write(wake_fd_[1], &c, 1);
}

void ServeDaemon::trigger_reload() {
  const char c = 'R';
  [[maybe_unused]] const ssize_t r = ::write(wake_fd_[1], &c, 1);
}

void ServeDaemon::drain_wake_pipe(bool& stop_requested) {
  char buf[64];
  for (;;) {
    const ssize_t n = ::read(wake_fd_[0], buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // EAGAIN: drained
    }
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == 'S') stop_requested = true;
      if (buf[i] == 'R' && epochs_->request_reload())
        ++stats_.reload_requests;
    }
  }
}

void ServeDaemon::accept_new() {
  for (;;) {
    const int fd = net::accept_retry(listen_fd_);
    if (fd < 0) return;  // EAGAIN or transient error: done for this round
    ++stats_.connections;
    if (conns_.size() >= options_.max_connections) {
      const std::string resp = http_response(
          503, "application/json", json_error("connection limit reached"),
          false, "Retry-After: 1\r\n");
      [[maybe_unused]] const ssize_t r =
          net::send_retry(fd, resp.data(), resp.size());
      ::close(fd);
      ++stats_.shed;
      continue;
    }
    set_nonblocking(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->last_active = Clock::now();
    conns_.push_back(std::move(conn));
  }
}

void ServeDaemon::read_into(Conn& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = net::recv_retry(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      if (conn.in.empty()) conn.in_arrival_ms = now_ms_;
      conn.in.append(buf, static_cast<std::size_t>(n));
      conn.last_active = Clock::now();
      // A peer streaming far past the request limit gets cut off here; the
      // parser will report kTooLarge on what already arrived.
      if (conn.in.size() > options_.max_request_bytes + sizeof(buf)) return;
      continue;
    }
    if (n == 0) {
      conn.broken = true;  // orderly EOF
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn.broken = true;
    return;
  }
}

void ServeDaemon::handle_admin_reload(const HttpRequest& req,
                                      Action& action) {
  if (!epochs_->reloadable()) {
    action.response = http_response(
        503, "application/json",
        json_error("this daemon has no reload builder"), action.keep_alive);
    ++stats_.bad_requests;
    return;
  }
  if (epochs_->request_reload(req.param("path"))) {
    ++stats_.reload_requests;
    const EpochManager::Status s = epochs_->status();
    action.response = http_response(
        202, "application/json",
        "{\"ok\": true, \"epoch\": " + std::to_string(s.epoch) +
            ", \"status\": \"reloading\"}",
        action.keep_alive);
    ++stats_.requests;
  } else {
    action.response =
        http_response(409, "application/json",
                      json_error("reload already in progress"),
                      action.keep_alive);
    ++stats_.bad_requests;
  }
}

void ServeDaemon::process(std::size_t ci, QueryEngine& engine) {
  Conn& conn = *conns_[ci];
  const std::size_t n = engine.num_vertices();
  std::size_t offset = 0;
  std::size_t parsed_this_round = 0;
  while (!conn.close_after_flush) {
    if (parsed_this_round >= options_.max_pipeline) {
      // Pipelining cap: the rest of the buffer waits for the next round.
      // poll() won't fire for bytes that already arrived, so the loop must
      // not block while deferred work is buffered.
      if (offset < conn.in.size()) deferred_ = true;
      break;
    }
    HttpRequest req;
    std::size_t consumed = 0;
    const HttpParseStatus status =
        parse_http_request(std::string_view(conn.in).substr(offset),
                           options_.max_request_bytes, req, consumed);
    if (status == HttpParseStatus::kNeedMore) break;

    Action action;
    action.conn = ci;
    if (status == HttpParseStatus::kBad ||
        status == HttpParseStatus::kTooLarge) {
      // Framing is lost (or the request is oversized): answer and close.
      const int code = status == HttpParseStatus::kBad ? 400 : 413;
      action.keep_alive = false;
      action.response = http_response(
          code, "application/json",
          json_error(code == 400 ? "malformed request" : "request too large"),
          false);
      conn.close_after_flush = true;
      ++stats_.bad_requests;
      actions_.push_back(std::move(action));
      break;
    }

    offset += consumed;
    ++parsed_this_round;
    action.keep_alive = req.keep_alive;
    if (!req.keep_alive) conn.close_after_flush = true;

    // The chaos seam's allocation-failure point sits at request admission:
    // everything after this allocates, so a forced bad_alloc here exercises
    // the only place the daemon can still answer cleanly.
    try {
      net::chaos_alloc_point();
    } catch (const std::bad_alloc&) {
      action.response = http_response(
          503, "application/json",
          json_error("temporarily out of memory"), action.keep_alive,
          "Retry-After: 1\r\n");
      ++stats_.internal_errors;
      actions_.push_back(std::move(action));
      continue;
    }

    if (req.path == "/admin/reload") {
      if (req.method != "POST") {
        action.response = http_response(
            405, "application/json",
            json_error("reload is POST-only"), action.keep_alive);
        ++stats_.bad_requests;
      } else {
        handle_admin_reload(req, action);
      }
    } else if (req.method != "GET") {
      action.response = http_response(405, "application/json",
                                      json_error("only GET is supported"),
                                      action.keep_alive);
      ++stats_.bad_requests;
    } else if (req.path == "/healthz") {
      action.response = http_response(200, "application/json",
                                      handle_healthz(), action.keep_alive);
      ++stats_.requests;
    } else if (req.path == "/stats") {
      action.response = http_response(200, "application/json",
                                      handle_stats(engine, uptime_seconds_),
                                      action.keep_alive);
      ++stats_.requests;
    } else if (req.path == "/distance" || req.path == "/stretch") {
      ServeQuery q;
      q.want_base = req.path == "/stretch";
      const bool ok = parse_vertex(req.param("s"), n, q.s) &&
                      parse_vertex(req.param("t"), n, q.t) &&
                      parse_avoid(req.param("avoid"), n, q);
      if (!ok) {
        action.response = http_response(
            400, "application/json",
            json_error("s and t must be vertex ids in [0, n); avoid is a "
                       "comma-separated list of vertices (7) and edges (3-5)"),
            action.keep_alive);
        ++stats_.bad_requests;
      } else if (options_.deadline_ms > 0 &&
                 now_ms_ - conn.in_arrival_ms > options_.deadline_ms) {
        // Already stale at parse time (a trickled request, or work deferred
        // behind long rounds): shed instead of computing a dead answer.
        action.response = http_response(
            503, "application/json", json_error("deadline exceeded"),
            action.keep_alive, "Retry-After: 1\r\n");
        ++stats_.deadline_hits;
      } else if (batch_queries_.size() >= options_.max_pending) {
        // Pending-request budget: bound one round's batch. The connection
        // stays open; the client is told when to come back.
        action.response = http_response(
            503, "application/json", json_error("server overloaded"),
            action.keep_alive, "Retry-After: 1\r\n");
        ++stats_.shed;
      } else {
        q.canonicalize();
        action.query_idx = batch_queries_.size();
        action.want_stretch = q.want_base;
        batch_queries_.push_back(std::move(q));
        batch_arrival_ms_.push_back(conn.in_arrival_ms);
      }
    } else {
      action.response = http_response(404, "application/json",
                                      json_error("no such endpoint"),
                                      action.keep_alive);
      ++stats_.bad_requests;
    }
    actions_.push_back(std::move(action));
  }
  conn.in.erase(0, offset);
}

std::string ServeDaemon::handle_healthz() const {
  const EpochManager::Status s = epochs_->status();
  std::string out = "{\"ok\": true, \"epoch\": " + std::to_string(s.epoch);
  out += ", \"source\": \"" + json_escape(s.source) + "\"";
  out += ", \"reload\": {\"supported\": ";
  out += epochs_->reloadable() ? "true" : "false";
  out += ", \"ok\": " + std::to_string(s.ok);
  out += ", \"failed\": " + std::to_string(s.failed);
  out += ", \"in_progress\": ";
  out += s.in_progress ? "true" : "false";
  out += ", \"last_error\": \"" + json_escape(s.last_error) + "\"}}";
  return out;
}

std::string ServeDaemon::handle_stats(const QueryEngine& engine,
                                      double uptime_seconds) const {
  const auto& cache = engine.cache_stats();
  const std::uint64_t lookups = cache.hits + cache.misses;
  const EpochManager::Status es = epochs_->status();
  std::string out = "{\"uptime_seconds\": ";
  out += format_double(uptime_seconds);
  out += ", \"requests\": " + std::to_string(stats_.requests);
  out += ", \"bad_requests\": " + std::to_string(stats_.bad_requests);
  out += ", \"connections\": " + std::to_string(stats_.connections);
  out += ", \"shed\": " + std::to_string(stats_.shed);
  out += ", \"deadline_hits\": " + std::to_string(stats_.deadline_hits);
  out += ", \"internal_errors\": " + std::to_string(stats_.internal_errors);
  out += ", \"qps\": ";
  out += format_double(uptime_seconds > 0
                           ? static_cast<double>(stats_.requests) /
                                 uptime_seconds
                           : 0);
  out += ", \"queries\": " + std::to_string(engine.queries_answered());
  out += ", \"cache\": {\"hits\": " + std::to_string(cache.hits);
  out += ", \"misses\": " + std::to_string(cache.misses);
  out += ", \"hit_rate\": ";
  out += format_double(lookups == 0 ? 0
                                    : static_cast<double>(cache.hits) /
                                          static_cast<double>(lookups));
  out += "}, \"epoch\": " + std::to_string(es.epoch);
  out += ", \"reloads\": {\"requested\": " +
         std::to_string(stats_.reload_requests);
  out += ", \"ok\": " + std::to_string(es.ok);
  out += ", \"failed\": " + std::to_string(es.failed);
  out += "}, \"chaos_faults\": " +
         std::to_string(net::chaos_faults_injected());
  out += ", \"graph\": {\"n\": " + std::to_string(engine.num_vertices());
  out += ", \"m\": " + std::to_string(engine.base().num_edges());
  out += ", \"spanner_edges\": " +
         std::to_string(engine.spanner().num_edges());
  out += ", \"k\": " + format_double(engine.stretch_bound());
  out += "}, \"peak_rss_bytes\": " + std::to_string(peak_rss_bytes());
  out += "}";
  return out;
}

void ServeDaemon::flush(Conn& conn) {
  while (!conn.out.empty()) {
    const ssize_t n = net::send_retry(conn.fd, conn.out.data(),
                                      conn.out.size());
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      conn.last_active = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    conn.broken = true;
    return;
  }
}

void ServeDaemon::run() {
  const Clock::time_point start = Clock::now();
  std::vector<pollfd> fds;
  std::vector<std::size_t> conn_of;  ///< conn index of fds[i] for i >= 2

  for (;;) {
    fds.clear();
    conn_of.clear();
    fds.push_back({wake_fd_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      short events = POLLIN;
      if (!conns_[i]->out.empty()) events |= POLLOUT;
      fds.push_back({conns_[i]->fd, events, 0});
      conn_of.push_back(i);
    }

    // Deferred work (a conn over its pipelining cap) is already buffered in
    // user space — poll() would never wake for it, so don't block.
    int timeout = options_.idle_timeout_ms > 0
                      ? std::min(options_.idle_timeout_ms, 1000)
                      : -1;
    if (deferred_) timeout = 0;
    deferred_ = false;
    if (net::poll_retry(fds.data(), static_cast<nfds_t>(fds.size()),
                        timeout) < 0)
      break;
    const Clock::time_point now = Clock::now();
    uptime_seconds_ = std::chrono::duration<double>(now - start).count();
    now_ms_ = to_ms(now);

    if ((fds[0].revents & POLLIN) != 0) {
      bool stop_requested = false;
      drain_wake_pipe(stop_requested);
      if (stop_requested) break;
    }
    if ((fds[1].revents & POLLIN) != 0) accept_new();

    for (std::size_t i = 0; i < conn_of.size(); ++i)
      if ((fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
        read_into(*conns_[conn_of[i]]);

    // Pin this round's epoch: every request parsed below answers on it,
    // even if a reload publishes a newer one mid-round. The shared_ptr
    // keeps the old engine alive until the round (and any older rounds'
    // responses) are done with it.
    const std::shared_ptr<EngineEpoch> epoch = epochs_->current();
    QueryEngine& engine = *epoch->engine;

    // Parse every connection's buffered bytes, batch the query endpoints
    // through the engine once, then resolve responses in parse order.
    batch_queries_.clear();
    batch_arrival_ms_.clear();
    actions_.clear();
    for (std::size_t i = 0; i < conns_.size(); ++i)
      if (!conns_[i]->in.empty() && !conns_[i]->broken) process(i, engine);
    bool batch_failed = false;
    if (!batch_queries_.empty()) {
      try {
        engine.answer_batch(batch_queries_, batch_answers_);
      } catch (const std::exception&) {
        // Compute failure (allocation pressure, injected chaos): every
        // query in the round sheds; the connections live on.
        batch_failed = true;
      }
    }
    const std::int64_t resolve_ms = to_ms(Clock::now());
    for (Action& action : actions_) {
      Conn& conn = *conns_[action.conn];
      if (action.query_idx == kNoQuery) {
        conn.out += action.response;
        conn.last_active = now;
        continue;
      }
      if (batch_failed) {
        conn.out += http_response(503, "application/json",
                                  json_error("query computation failed"),
                                  action.keep_alive, "Retry-After: 1\r\n");
        conn.last_active = now;
        ++stats_.internal_errors;
        continue;
      }
      if (options_.deadline_ms > 0 &&
          resolve_ms - batch_arrival_ms_[action.query_idx] >
              options_.deadline_ms) {
        // The answer exists but arrived past the deadline: a stuck or
        // overlong computation becomes a shed, not a stalled connection.
        conn.out += http_response(503, "application/json",
                                  json_error("deadline exceeded"),
                                  action.keep_alive, "Retry-After: 1\r\n");
        conn.last_active = now;
        ++stats_.deadline_hits;
        continue;
      }
      const ServeQuery& q = batch_queries_[action.query_idx];
      const ServeAnswer& a = batch_answers_[action.query_idx];
      std::string body = "{\"s\": " + std::to_string(q.s) +
                         ", \"t\": " + std::to_string(q.t);
      if (action.want_stretch) {
        body += ", \"spanner_distance\": ";
        append_weight(body, a.dh);
        body += ", \"base_distance\": ";
        append_weight(body, a.dg);
        body += ", \"stretch\": ";
        if (a.dh >= kInfiniteWeight || a.dg >= kInfiniteWeight)
          body += "null";
        else
          body += format_double(a.dg == 0 ? 1.0 : a.dh / a.dg);
        body += ", \"bound\": " + format_double(engine.stretch_bound());
      } else {
        body += ", \"distance\": ";
        append_weight(body, a.dh);
      }
      body += ", \"reachable\": ";
      body += a.dh < kInfiniteWeight ? "true" : "false";
      body += ", \"from_cache\": ";
      body += a.from_cache ? "true" : "false";
      body += "}";
      conn.out +=
          http_response(200, "application/json", body, action.keep_alive);
      // Completed request: the idle clock restarts now, so a well-behaved
      // keep-alive client is never 408'd for think time shorter than the
      // timeout.
      conn.last_active = now;
      ++stats_.requests;
    }

    for (auto& conn : conns_) {
      if (!conn->broken && !conn->out.empty()) flush(*conn);
      if (!conn->broken && options_.idle_timeout_ms > 0 &&
          conn->out.empty() && !conn->close_after_flush &&
          now - conn->last_active >
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        conn->out += http_response(408, "application/json",
                                   json_error("idle timeout"), false);
        conn->close_after_flush = true;
        flush(*conn);
      }
      if (conn->broken || (conn->close_after_flush && conn->out.empty())) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& c) {
                                  return c->fd < 0;
                                }),
                 conns_.end());
  }

  for (auto& conn : conns_) ::close(conn->fd);
  conns_.clear();
}

}  // namespace ftspan::serve
