// Socket syscall wrappers shared by the daemon and the load-test client.
//
// Two jobs:
//
//   1. Signal hygiene. Every recv/send/accept/poll in the serve dataplane
//      goes through these wrappers, which retry on EINTR (a signal landing
//      mid-syscall must never look like a transport error) and send with
//      MSG_NOSIGNAL (plus ignore_sigpipe() as a process-wide backstop for
//      platforms where a send path can still raise SIGPIPE).
//
//   2. The chaos seam. When the build enables FTSPAN_CHAOS_SEAM (CMake
//      option FTSPAN_CHAOS) *and* the FTSPAN_CHAOS environment variable is
//      set, the wrappers deterministically inject faults: short reads and
//      writes (length clamped to one byte) and allocation failures at the
//      request-admission boundary (chaos_alloc_point() throws bad_alloc).
//      Injection is driven by a global event counter hashed with the
//      configured seed, so a given seed always injects the same faults at
//      the same points regardless of wall clock. Without the build flag the
//      seam compiles away; without the env var it is inert, so a chaos
//      build still passes the regular test suite.
//
//      FTSPAN_CHAOS syntax: comma-separated key=value, e.g.
//        FTSPAN_CHAOS=seed=42,short_io=0.5,alloc=0.01
//      `short_io` is the probability a recv/send is clamped to one byte;
//      `alloc` the probability chaos_alloc_point() throws.
#pragma once

#include <poll.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>

namespace ftspan::serve::net {

/// Sets SIGPIPE to SIG_IGN process-wide (idempotent). A client closing its
/// socket mid-response must surface as EPIPE from send, never as a
/// process-killing signal.
void ignore_sigpipe();

/// recv(2), retried on EINTR. EAGAIN/EWOULDBLOCK pass through. Under the
/// chaos seam, may clamp len to 1 (a short read).
ssize_t recv_retry(int fd, void* buf, std::size_t len);

/// send(2) with MSG_NOSIGNAL, retried on EINTR. Under the chaos seam, may
/// clamp len to 1 (a short write).
ssize_t send_retry(int fd, const void* buf, std::size_t len);

/// accept(2), retried on EINTR.
int accept_retry(int fd);

/// poll(2), retried on EINTR (returns 0 as if timed out, so callers treat
/// an interrupted wait exactly like an empty round).
int poll_retry(pollfd* fds, nfds_t n, int timeout_ms);

/// True when the chaos seam is compiled in AND FTSPAN_CHAOS is set.
bool chaos_enabled();

/// Deterministic allocation-failure injection point: throws std::bad_alloc
/// with probability `alloc` (from FTSPAN_CHAOS). No-op when chaos is off.
void chaos_alloc_point();

/// Total faults injected so far (short I/Os + thrown allocations) — exposed
/// so /stats and the load test can report that the seam actually fired.
std::uint64_t chaos_faults_injected();

}  // namespace ftspan::serve::net
