// Epoch-versioned engine handles for hot graph reload.
//
// An EngineEpoch bundles one generation of the serving state — the base
// graph, the spanner-backed QueryEngine built over it, and a monotonically
// increasing epoch id — behind a shared_ptr. The daemon's event loop grabs
// the current epoch once per poll round; a reload builds a *new* epoch on a
// background thread and atomically publishes it, so in-flight requests
// finish on the epoch they started on and the old engine is destroyed only
// when its last round-held reference drops. No lock is held while queries
// run, and no connection is ever dropped by a swap.
//
// A failed rebuild (missing file, parse error, spanner construction throw)
// never touches the live epoch: the manager keeps serving the old one and
// records the error for /healthz.
//
// Threading: current()/status()/request_reload() are safe from any thread.
// The builder runs on a dedicated background thread, one reload at a time
// (a second request while one is in flight is refused — the daemon answers
// 409). QueryEngine itself keeps its single-coordinator contract: only the
// event loop calls answer_batch on an epoch's engine.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph.hpp"
#include "serve/query.hpp"

namespace ftspan::serve {

/// One generation of serving state. `graph` is owned here because
/// QueryEngine aliases it (`g must outlive the engine`); keeping them in
/// one refcounted object makes the lifetime coupling structural.
struct EngineEpoch {
  std::uint64_t id = 1;      ///< monotonically increasing across reloads
  std::string source;        ///< where the graph came from (path or label)
  Graph graph;               ///< owned base graph (empty for wrapped engines)
  std::unique_ptr<QueryEngine> owned;  ///< engine built over `graph`
  QueryEngine* engine = nullptr;       ///< = owned.get(), or an external engine

  /// Builds a self-owning epoch: moves the graph in, then constructs the
  /// engine against the *stored* graph (which never moves again).
  static std::shared_ptr<EngineEpoch> build(Graph g,
                                            const std::vector<EdgeId>& spanner_edges,
                                            double k,
                                            const QueryEngine::Options& options,
                                            std::string source);

  /// Wraps an externally owned engine (tests, the legacy ServeDaemon
  /// constructor). The caller keeps ownership and must outlive the epoch.
  static std::shared_ptr<EngineEpoch> wrap(QueryEngine& engine,
                                           std::string source);
};

/// Publishes the current epoch and runs reloads on a background thread.
class EpochManager {
 public:
  /// Builds (or rebuilds) an epoch from a path. An empty path means
  /// "reload whatever the current source is" — the builder decides what
  /// that resolves to. Throw std::exception on failure; the thrown message
  /// becomes last_error.
  using Builder =
      std::function<std::shared_ptr<EngineEpoch>(const std::string& path)>;

  /// A reloadable manager: `initial` is epoch 1, `builder` serves reloads.
  EpochManager(std::shared_ptr<EngineEpoch> initial, Builder builder);

  /// A non-reloadable manager around an externally owned engine —
  /// request_reload() always refuses. For tests and embedded use.
  static std::shared_ptr<EpochManager> fixed(QueryEngine& engine);

  ~EpochManager();  ///< waits for any in-flight rebuild

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The live epoch. Callers hold the shared_ptr for as long as they use
  /// the engine (the daemon: one poll round).
  std::shared_ptr<EngineEpoch> current() const;

  bool reloadable() const { return static_cast<bool>(builder_); }

  /// Starts a background rebuild from `path` (empty = current source).
  /// Returns false — without starting anything — when not reloadable or a
  /// reload is already in flight. On success the new epoch is published
  /// atomically; on failure the old epoch stays live and status() carries
  /// the error.
  bool request_reload(const std::string& path = std::string());

  struct Status {
    std::uint64_t epoch = 0;   ///< id of the live epoch
    std::string source;        ///< live epoch's source
    std::uint64_t ok = 0;      ///< completed successful reloads
    std::uint64_t failed = 0;  ///< completed failed reloads
    bool in_progress = false;
    std::string last_error;    ///< from the most recent failed reload
  };
  Status status() const;

  /// Blocks until no rebuild is in flight (tests poll health via this).
  void wait_idle();

 private:
  void reload_main(std::string path);

  Builder builder_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::shared_ptr<EngineEpoch> current_;
  std::thread worker_;
  bool in_progress_ = false;
  std::uint64_t ok_ = 0;
  std::uint64_t failed_ = 0;
  std::string last_error_;
};

}  // namespace ftspan::serve
