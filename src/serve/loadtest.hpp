// In-process load test for the serve daemon — the engine behind the
// `workload=serve qps=… conns=… duration=…` scenario.
//
// Spins the daemon up on an ephemeral loopback port in a background thread,
// drives it with `conns` client threads over real TCP (so the full
// socket/parse/batch/respond path is measured, not just the query engine),
// and reports latency quantiles plus the engine's cache counters. With
// qps > 0 the clients pace a fixed request count (open-ish loop: a late
// response delays only its own connection); with qps == 0 they run closed
// loop, back-to-back, for the full duration. The query mix and all client
// randomness derive from the seed, so the *request streams* are
// reproducible — the latencies of course are not.
//
// Chaos mode (`chaos` > 0) turns the clients hostile, deterministically:
// with probability `chaos` a request slot becomes one of four seeded fault
// injections — a mid-request connection reset, a slow-loris trickle write,
// a malformed-HTTP flood, or an oversized request — and the client then
// reconnects and carries on. `reload_every` > 0 fires a POST /admin/reload
// every Nth request per client (a reload storm when combined with several
// clients). The result separates *expected* fault outcomes (shed/rejected
// counters) from `errors`, which counts only outcomes the protocol forbids
// (a dropped connection on a well-formed request, an unknown status), so a
// chaos run asserting errors == 0 is exactly the "no connection is ever
// dropped, every response is well-formed" acceptance check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "serve/epoch.hpp"
#include "serve/query.hpp"

namespace ftspan::serve {

struct LoadTestOptions {
  double qps = 0;           ///< total paced rate; 0 = closed loop
  std::size_t conns = 1;    ///< client connections (threads)
  double duration = 0.25;   ///< seconds (paced: target span; closed: deadline)
  std::uint64_t seed = 1;   ///< drives every client's query stream
  double chaos = 0;         ///< P(a request slot injects a client fault)
  std::size_t reload_every = 0;  ///< POST /admin/reload every Nth request
};

struct LoadTestResult {
  std::uint64_t requests = 0;  ///< responses received with status 200
  std::uint64_t errors = 0;    ///< protocol-violating outcomes (see header)
  double seconds = 0;          ///< wall clock, first send to last response
  double achieved_qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t cache_hits = 0;    ///< final epoch's engine
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0;

  // Fault-outcome counters (all deterministic given the seed except where
  // they depend on server-side timing, e.g. shed).
  std::uint64_t shed = 0;          ///< 503 responses observed by clients
  std::uint64_t rejected = 0;      ///< 400/404/405/408/413 observed
  std::uint64_t chaos_events = 0;  ///< client faults injected (all modes)
  std::uint64_t chaos_resets = 0;
  std::uint64_t chaos_slowloris = 0;
  std::uint64_t chaos_malformed = 0;
  std::uint64_t chaos_oversized = 0;
  std::uint64_t reloads_sent = 0;  ///< POST /admin/reload issued
  std::uint64_t reload_acks = 0;   ///< 202/409 answers to those
  std::uint64_t reloads_ok = 0;    ///< manager: completed successful reloads
  std::uint64_t reloads_failed = 0;
  std::uint64_t final_epoch = 0;   ///< live epoch id after the run
  std::uint64_t server_shed = 0;       ///< daemon stats: budget sheds
  std::uint64_t deadline_hits = 0;     ///< daemon stats: deadline 503s
  std::uint64_t internal_errors = 0;   ///< daemon stats: compute 503s
};

/// Runs the daemon + clients over `epochs` (reload storms need a manager
/// with a builder). Throws std::runtime_error if the daemon cannot bind.
LoadTestResult run_load_test(std::shared_ptr<EpochManager> epochs,
                             const LoadTestOptions& options);

/// Convenience: wraps `engine` (which must be idle: the daemon becomes its
/// single coordinator for the duration) in a non-reloadable manager.
/// `reload_every` is ignored in this form.
LoadTestResult run_load_test(QueryEngine& engine,
                             const LoadTestOptions& options);

}  // namespace ftspan::serve
