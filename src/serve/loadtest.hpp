// In-process load test for the serve daemon — the engine behind the
// `workload=serve qps=… conns=… duration=…` scenario.
//
// Spins the daemon up on an ephemeral loopback port in a background thread,
// drives it with `conns` client threads over real TCP (so the full
// socket/parse/batch/respond path is measured, not just the query engine),
// and reports latency quantiles plus the engine's cache counters. With
// qps > 0 the clients pace a fixed request count (open-ish loop: a late
// response delays only its own connection); with qps == 0 they run closed
// loop, back-to-back, for the full duration. The query mix and all client
// randomness derive from the seed, so the *request streams* are
// reproducible — the latencies of course are not.
#pragma once

#include <cstddef>
#include <cstdint>

#include "serve/query.hpp"

namespace ftspan::serve {

struct LoadTestOptions {
  double qps = 0;           ///< total paced rate; 0 = closed loop
  std::size_t conns = 1;    ///< client connections (threads)
  double duration = 0.25;   ///< seconds (paced: target span; closed: deadline)
  std::uint64_t seed = 1;   ///< drives every client's query stream
};

struct LoadTestResult {
  std::uint64_t requests = 0;  ///< responses received with status 200
  std::uint64_t errors = 0;    ///< non-200 responses or transport failures
  double seconds = 0;          ///< wall clock, first send to last response
  double achieved_qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0;
};

/// Runs the daemon + clients against `engine` (which must be idle: the
/// daemon becomes its single coordinator for the duration). Throws
/// std::runtime_error if the daemon cannot bind.
LoadTestResult run_load_test(QueryEngine& engine,
                             const LoadTestOptions& options);

}  // namespace ftspan::serve
