// Minimal dependency-free HTTP/1.1 message handling for the query daemon.
//
// The parser is *incremental*: the connection state machine feeds it the
// bytes received so far and it answers "need more", "here is one complete
// request (and how many bytes it consumed)", "malformed", or "too large".
// Pipelined requests simply leave bytes behind for the next call. Only the
// subset the daemon speaks is implemented — request line + headers +
// optional Content-Length body, percent-decoded query parameters,
// keep-alive negotiation — with hard size limits enforced *during* parsing
// so an attacker cannot make the server buffer an unbounded request.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftspan::serve {

struct HttpRequest {
  std::string method;   ///< e.g. "GET" (never empty on kOk)
  std::string path;     ///< decoded target path, e.g. "/distance"
  /// Query parameters in order of appearance, percent-decoded.
  std::vector<std::pair<std::string, std::string>> params;
  bool keep_alive = true;  ///< HTTP/1.1 default on; "Connection: close" off
  std::string body;        ///< Content-Length bytes (possibly empty)

  /// First value of a named parameter, or `dflt` when absent.
  std::string param(std::string_view name, std::string_view dflt = "") const;
  bool has_param(std::string_view name) const;
};

enum class HttpParseStatus {
  kNeedMore,  ///< `buf` holds a prefix of a valid request — read more bytes
  kOk,        ///< one complete request parsed; `consumed` bytes eaten
  kBad,       ///< malformed — answer 400 and close
  kTooLarge,  ///< header block or body exceeds the limit — 413 and close
};

/// Parses the first request in `buf`. On kOk, `out` is filled and
/// `consumed` is the byte count of the request (start the next parse at
/// buf.substr(consumed)). `max_bytes` bounds the whole request, header
/// block and body together.
HttpParseStatus parse_http_request(std::string_view buf,
                                   std::size_t max_bytes, HttpRequest& out,
                                   std::size_t& consumed);

/// Serializes one response with Content-Length and Connection headers.
/// `status` is the numeric code (200, 400, ...); the reason phrase is
/// derived from it. `extra_headers` is injected verbatim between the fixed
/// headers and the blank line — each entry must be a complete
/// "Name: value\r\n" line (the daemon uses it for `Retry-After` on shed
/// responses).
std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive,
                          std::string_view extra_headers = "");

/// Percent-decodes `in` ('+' becomes a space). False on a malformed escape
/// (e.g. "%2" or "%zz"); `out` is unspecified then.
bool percent_decode(std::string_view in, std::string& out);

}  // namespace ftspan::serve
