#include "serve/http.hpp"

#include <algorithm>
#include <cctype>

namespace ftspan::serve {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

/// The reason phrases for every status the daemon emits.
const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Splits "a=b&c=d" into decoded (key, value) pairs. False on a malformed
/// percent escape anywhere.
bool parse_query(std::string_view query,
                 std::vector<std::pair<std::string, std::string>>& out) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query.remove_prefix(amp == std::string_view::npos ? query.size()
                                                      : amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    std::string key, value;
    if (eq == std::string_view::npos) {
      if (!percent_decode(pair, key)) return false;
    } else {
      if (!percent_decode(pair.substr(0, eq), key)) return false;
      if (!percent_decode(pair.substr(eq + 1), value)) return false;
    }
    out.emplace_back(std::move(key), std::move(value));
  }
  return true;
}

}  // namespace

std::string HttpRequest::param(std::string_view name,
                               std::string_view dflt) const {
  for (const auto& [key, value] : params)
    if (key == name) return value;
  return std::string(dflt);
}

bool HttpRequest::has_param(std::string_view name) const {
  for (const auto& [key, value] : params)
    if (key == name) return true;
  return false;
}

bool percent_decode(std::string_view in, std::string& out) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= in.size()) return false;
      const int hi = hex_digit(in[i + 1]);
      const int lo = hex_digit(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return true;
}

HttpParseStatus parse_http_request(std::string_view buf,
                                   std::size_t max_bytes, HttpRequest& out,
                                   std::size_t& consumed) {
  // Find the end of the header block first; until it arrives the only
  // decision is "need more" vs "already too large".
  const std::size_t header_end = buf.find("\r\n\r\n");
  if (header_end == std::string_view::npos)
    return buf.size() > max_bytes ? HttpParseStatus::kTooLarge
                                  : HttpParseStatus::kNeedMore;
  if (header_end + 4 > max_bytes) return HttpParseStatus::kTooLarge;

  const std::string_view head = buf.substr(0, header_end);

  // Request line: METHOD SP TARGET SP HTTP/1.x
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1)
    return HttpParseStatus::kBad;
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target =
      request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0")
    return HttpParseStatus::kBad;
  for (const char c : method)
    if (!std::isupper(static_cast<unsigned char>(c)))
      return HttpParseStatus::kBad;
  if (target.empty() || target[0] != '/') return HttpParseStatus::kBad;

  out = HttpRequest{};
  out.method = std::string(method);
  out.keep_alive = version == "HTTP/1.1";  // 1.0 defaults to close

  // Headers: the daemon only interprets Content-Length and Connection, but
  // every line must still be well-formed.
  std::size_t content_length = 0;
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    const std::size_t eol = rest.find("\r\n");
    const std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest.remove_prefix(eol == std::string_view::npos ? rest.size() : eol + 2);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return HttpParseStatus::kBad;
    const std::string_view name = line.substr(0, colon);
    const std::string_view value = trim(line.substr(colon + 1));
    if (iequals(name, "content-length")) {
      content_length = 0;
      if (value.empty()) return HttpParseStatus::kBad;
      for (const char c : value) {
        if (c < '0' || c > '9') return HttpParseStatus::kBad;
        content_length = content_length * 10 + static_cast<std::size_t>(c - '0');
        if (content_length > max_bytes) return HttpParseStatus::kTooLarge;
      }
    } else if (iequals(name, "connection")) {
      if (iequals(value, "close")) out.keep_alive = false;
      if (iequals(value, "keep-alive")) out.keep_alive = true;
    }
  }

  const std::size_t total = header_end + 4 + content_length;
  if (total > max_bytes) return HttpParseStatus::kTooLarge;
  if (buf.size() < total) return HttpParseStatus::kNeedMore;
  out.body = std::string(buf.substr(header_end + 4, content_length));

  // Split the target into path + decoded query parameters.
  const std::size_t q = target.find('?');
  const std::string_view raw_path =
      q == std::string_view::npos ? target : target.substr(0, q);
  if (!percent_decode(raw_path, out.path)) return HttpParseStatus::kBad;
  if (q != std::string_view::npos &&
      !parse_query(target.substr(q + 1), out.params))
    return HttpParseStatus::kBad;

  consumed = total;
  return HttpParseStatus::kOk;
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive,
                          std::string_view extra_headers) {
  std::string out;
  out.reserve(body.size() + extra_headers.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason_phrase(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  out += extra_headers;
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace ftspan::serve
