// run_bursts — the dataplane-batched fan-out driver.
//
// The repo's two hot fan-outs (conversion sampling iterations, StretchOracle
// fault-set checks) are index loops 0..count whose bodies run on per-worker
// pooled state. The previous dispatcher handed indices to a generic thread
// pool one atomic fetch_add at a time: one shared-cache-line bounce per
// task, with tasks that can be a few microseconds each. This driver applies
// the dataplane shape instead (per-core workers, SPSC rings, burst
// processing — the ndn-dpdk idiom):
//
//   - the coordinator slices 0..count into fixed-size bursts and round-robins
//     them into one SpscRing per worker (single producer: the coordinator;
//     single consumer: the worker — no shared ring, no CAS anywhere);
//   - each worker drains its own ring and runs whole bursts against its
//     pinned state (engines, scratch graphs), so the shared-line traffic is
//     one acquire/release pair per burst instead of per task;
//   - distribution is deterministic (burst b → worker b % workers), which
//     keeps "which worker ran which index" reproducible, though callers must
//     not depend on it — output determinism comes from index-keyed results,
//     as before.
//
// Exceptions: a worker that throws records the first exception and discards
// the rest of its feed (it keeps draining so the coordinator never blocks on
// a full ring); the coordinator rethrows the lowest-indexed worker's
// exception after joining, matching the thread pool's propagation contract.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace ftspan {

/// Default indices per burst. Large enough to amortize the ring hand-off,
/// small enough that a burst of even the slowest tasks (a greedy run per
/// index) keeps all workers fed for typical iteration counts.
inline constexpr std::size_t kDefaultBurst = 16;

struct BurstOptions {
  std::size_t workers = 1;  ///< consumer threads; 1 = inline, no threads
  std::size_t burst = kDefaultBurst;  ///< indices per burst; 0 = default
  std::size_t ring_capacity = 64;     ///< bursts in flight per worker
  /// Pin lane i to core i % hardware_threads() (util/affinity.hpp). Only a
  /// hint: per-lane success is reported back, and the single-worker inline
  /// path never pins (it runs on the caller's thread, whose affinity must
  /// not be silently changed). Default off — see ThreadPool's rationale.
  bool pin = false;
};

/// Runs one index of the fan-out. Invoked on the owning worker's thread.
using BurstTask = std::function<void(std::size_t)>;

/// Creates the task for worker `w`; called on worker w's own thread, so
/// per-worker state (engines, scratch) is constructed where it runs.
using BurstTaskFactory = std::function<BurstTask(std::size_t worker)>;

/// Runs task(i) for every i in [0, count) across options.workers workers.
/// With workers == 1 this is a plain inline loop (no threads, no rings).
/// With more it stands up a temporary BurstPool (below) for the call.
/// Returns the per-lane affinity status (one entry per worker, 1 = pinned);
/// all zero unless options.pin succeeded — callers that don't report
/// affinity just ignore it.
std::vector<char> run_bursts(std::size_t count, const BurstOptions& options,
                             const BurstTaskFactory& factory);

/// BurstPool — the persistent form of run_bursts (dataplane phase 2).
///
/// run_bursts spawns and joins its workers on every call, which is fine for
/// one-shot fan-outs (a conversion, an oracle check) but wrong for a server
/// answering query batches at a steady cadence: thread creation would
/// dominate small batches. A BurstPool keeps the worker lanes alive across
/// run() calls — workers block on a per-lane condition variable while idle
/// (no spinning between batches) and drain their SPSC ring exactly like the
/// one-shot path while a run is in flight.
///
/// Contracts carried over from run_bursts:
///   - the factory runs once per worker, on that worker's own thread;
///   - distribution is deterministic (burst b -> worker b % workers);
///   - a worker that throws abandons the rest of its feed but keeps
///     draining, and run() rethrows the lowest-indexed worker's exception
///     (after which the pool is usable again — the error slot is cleared).
///
/// One coordinator thread at a time: run() calls must not overlap.
///
/// Teardown contract: run() returns (or throws) only after every burst of
/// that run has been popped and counted, so the destructor never races
/// in-flight feed — it merely flips each lane's stop flag and joins workers
/// that are either idle or finishing their last completion hand-off. The
/// pool may therefore be destroyed immediately after run() returns, after
/// run() threw, without ever calling run(), and from a different thread
/// than the one that ran it (the epoch-teardown shape: the last owner of a
/// retired engine drops it from whichever thread held the final reference).
class BurstPool {
 public:
  /// Spawns `workers` (>= 1) lanes; the factory is invoked on each worker
  /// thread before its first burst. A factory that throws poisons the lane:
  /// its bursts are drained unrun and the next run() rethrows. With
  /// pin = true, lane i is pinned to core i % hardware_threads() where the
  /// platform allows it (the kernel migrates an already-running thread on
  /// the spot, so pinning from the constructor is race-free).
  BurstPool(std::size_t workers, BurstTaskFactory factory,
            std::size_t ring_capacity = 64, bool pin = false);
  ~BurstPool();  ///< joins all workers

  BurstPool(const BurstPool&) = delete;
  BurstPool& operator=(const BurstPool&) = delete;

  std::size_t workers() const { return lanes_.size(); }

  /// Per-lane affinity status: pinned_lanes()[i] is 1 iff lane i was
  /// successfully pinned (all zero when pinning was off or unsupported).
  const std::vector<char>& pinned_lanes() const { return pinned_; }
  std::size_t pinned_count() const {
    std::size_t k = 0;
    for (const char p : pinned_) k += p != 0;
    return k;
  }

  /// Runs task(i) for every i in [0, count), `burst` indices per hand-off
  /// (0 = kDefaultBurst). Blocks until every burst has been processed.
  void run(std::size_t count, std::size_t burst = 0);

 private:
  struct Lane;
  struct Completion;
  void feed(Lane& lane, std::size_t begin, std::size_t end);

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unique_ptr<Completion> done_;
  std::vector<std::thread> threads_;
  std::vector<char> pinned_;
};

}  // namespace ftspan
