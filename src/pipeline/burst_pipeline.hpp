// run_bursts — the dataplane-batched fan-out driver.
//
// The repo's two hot fan-outs (conversion sampling iterations, StretchOracle
// fault-set checks) are index loops 0..count whose bodies run on per-worker
// pooled state. The previous dispatcher handed indices to a generic thread
// pool one atomic fetch_add at a time: one shared-cache-line bounce per
// task, with tasks that can be a few microseconds each. This driver applies
// the dataplane shape instead (per-core workers, SPSC rings, burst
// processing — the ndn-dpdk idiom):
//
//   - the coordinator slices 0..count into fixed-size bursts and round-robins
//     them into one SpscRing per worker (single producer: the coordinator;
//     single consumer: the worker — no shared ring, no CAS anywhere);
//   - each worker drains its own ring and runs whole bursts against its
//     pinned state (engines, scratch graphs), so the shared-line traffic is
//     one acquire/release pair per burst instead of per task;
//   - distribution is deterministic (burst b → worker b % workers), which
//     keeps "which worker ran which index" reproducible, though callers must
//     not depend on it — output determinism comes from index-keyed results,
//     as before.
//
// Exceptions: a worker that throws records the first exception and discards
// the rest of its feed (it keeps draining so the coordinator never blocks on
// a full ring); the coordinator rethrows the lowest-indexed worker's
// exception after joining, matching the thread pool's propagation contract.
#pragma once

#include <cstddef>
#include <functional>

namespace ftspan {

/// Default indices per burst. Large enough to amortize the ring hand-off,
/// small enough that a burst of even the slowest tasks (a greedy run per
/// index) keeps all workers fed for typical iteration counts.
inline constexpr std::size_t kDefaultBurst = 16;

struct BurstOptions {
  std::size_t workers = 1;  ///< consumer threads; 1 = inline, no threads
  std::size_t burst = kDefaultBurst;  ///< indices per burst; 0 = default
  std::size_t ring_capacity = 64;     ///< bursts in flight per worker
};

/// Runs one index of the fan-out. Invoked on the owning worker's thread.
using BurstTask = std::function<void(std::size_t)>;

/// Creates the task for worker `w`; called on worker w's own thread, so
/// per-worker state (engines, scratch) is constructed where it runs.
using BurstTaskFactory = std::function<BurstTask(std::size_t worker)>;

/// Runs task(i) for every i in [0, count) across options.workers workers.
/// With workers == 1 this is a plain inline loop (no threads, no rings).
void run_bursts(std::size_t count, const BurstOptions& options,
                const BurstTaskFactory& factory);

}  // namespace ftspan
