#include "pipeline/burst_pipeline.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/affinity.hpp"
#include "util/spsc_ring.hpp"
#include "util/thread_pool.hpp"

namespace ftspan {

namespace {

/// A half-open index range; the unit that travels through a worker's ring.
struct Burst {
  std::size_t begin = 0;
  std::size_t end = 0;
};

}  // namespace

/// Everything one worker owns. Rings are per-worker (SPSC: coordinator
/// produces, the worker consumes). The mutex/cv pair only matters while the
/// lane is idle: a worker with a non-empty ring never touches it, so the
/// in-flight hand-off cost stays one acquire/release pair per burst.
struct BurstPool::Lane {
  explicit Lane(std::size_t ring_capacity) : ring(ring_capacity) {}
  SpscRing<Burst> ring;
  std::mutex m;
  std::condition_variable cv;
  bool stop = false;         ///< guarded by m
  std::exception_ptr error;  ///< worker-written; read/cleared between runs
  bool factory_failed = false;  ///< permanent: the lane never got a task
};

/// Run-completion rendezvous: workers count finished bursts, the
/// coordinator sleeps until the count reaches the run's burst total.
struct BurstPool::Completion {
  std::atomic<std::size_t> bursts{0};
  std::mutex m;
  std::condition_variable cv;
};

BurstPool::BurstPool(std::size_t workers, BurstTaskFactory factory,
                     std::size_t ring_capacity, bool pin) {
  const std::size_t n = workers == 0 ? 1 : workers;
  lanes_.reserve(n);
  for (std::size_t w = 0; w < n; ++w)
    lanes_.push_back(std::make_unique<Lane>(ring_capacity));

  done_ = std::make_unique<Completion>();
  threads_.reserve(n);
  pinned_.assign(n, 0);
  const std::size_t cores = ThreadPool::hardware_threads();
  for (std::size_t w = 0; w < n; ++w) {
    Lane* lane = lanes_[w].get();
    Completion* done = done_.get();
    threads_.emplace_back([lane, done, factory, w] {
      BurstTask task;
      try {
        task = factory(w);
      } catch (...) {
        lane->error = std::current_exception();
        lane->factory_failed = true;
      }
      Burst b;
      for (;;) {
        if (lane->ring.try_pop(b)) {
          // After a failure keep draining without running: the coordinator
          // may be spinning on this ring being full, so the feed must keep
          // moving even though its results are abandoned.
          if (lane->error == nullptr) {
            try {
              for (std::size_t i = b.begin; i < b.end; ++i) task(i);
            } catch (...) {
              lane->error = std::current_exception();
            }
          }
          done->bursts.fetch_add(1, std::memory_order_release);
          {
            std::lock_guard<std::mutex> l(done->m);
          }
          done->cv.notify_one();
          continue;
        }
        std::unique_lock<std::mutex> l(lane->m);
        if (!lane->ring.empty()) continue;  // pushed while we took the lock
        if (lane->stop) break;
        lane->cv.wait(l);
      }
    });
    if (pin) pinned_[w] = pin_thread(threads_[w], w % cores) ? 1 : 0;
  }
}

BurstPool::~BurstPool() {
  for (auto& lane : lanes_) {
    {
      std::lock_guard<std::mutex> l(lane->m);
      lane->stop = true;
    }
    lane->cv.notify_one();
  }
  for (std::thread& t : threads_) t.join();
}

void BurstPool::feed(Lane& lane, std::size_t begin, std::size_t end) {
  const Burst b{begin, end};
  while (!lane.ring.try_push(b)) std::this_thread::yield();
  // The empty critical section orders the push before the worker's
  // ring-empty recheck under the same mutex, so the notify cannot be lost.
  {
    std::lock_guard<std::mutex> l(lane.m);
  }
  lane.cv.notify_one();
}

void BurstPool::run(std::size_t count, std::size_t burst) {
  if (count == 0) return;
  const std::size_t width = burst == 0 ? kDefaultBurst : burst;
  const std::size_t total = (count + width - 1) / width;

  done_->bursts.store(0, std::memory_order_relaxed);

  // Round-robin distribution: burst b -> worker b % workers, in order. With
  // equal-cost bursts this is exactly the static block-cyclic schedule; with
  // skewed costs the ring depth (bursts in flight) absorbs the imbalance.
  std::size_t next_worker = 0;
  for (std::size_t begin = 0; begin < count; begin += width) {
    feed(*lanes_[next_worker], begin, std::min(begin + width, count));
    next_worker = next_worker + 1 == lanes_.size() ? 0 : next_worker + 1;
  }

  {
    std::unique_lock<std::mutex> l(done_->m);
    done_->cv.wait(l, [this, total] {
      return done_->bursts.load(std::memory_order_acquire) == total;
    });
  }

  // First error by worker index: deterministic, like run_bursts. Task
  // errors are cleared so the pool stays usable; a lane whose factory threw
  // never got a task, so its error is permanent.
  std::exception_ptr first;
  for (auto& lane : lanes_) {
    if (lane->error != nullptr && first == nullptr) first = lane->error;
    if (!lane->factory_failed) lane->error = nullptr;
  }
  if (first != nullptr) std::rethrow_exception(first);
}

std::vector<char> run_bursts(std::size_t count, const BurstOptions& options,
                             const BurstTaskFactory& factory) {
  const std::size_t workers = options.workers == 0 ? 1 : options.workers;
  if (count == 0) return std::vector<char>(workers, 0);
  const std::size_t burst = options.burst == 0 ? kDefaultBurst : options.burst;

  if (workers == 1) {
    // Inline on the caller's thread: never pinned (the caller's affinity is
    // not ours to change), so the one lane always reports 0.
    const BurstTask task = factory(0);
    for (std::size_t i = 0; i < count; ++i) task(i);
    return std::vector<char>(1, 0);
  }

  // One-shot: a temporary pool scoped to this call. Spawning here is what
  // run_bursts always did; callers with a steady cadence of small batches
  // hold a BurstPool instead.
  BurstPool pool(workers, factory, options.ring_capacity, options.pin);
  pool.run(count, burst);
  return pool.pinned_lanes();
}

}  // namespace ftspan
