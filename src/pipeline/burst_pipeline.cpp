#include "pipeline/burst_pipeline.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "util/spsc_ring.hpp"

namespace ftspan {

namespace {

/// A half-open index range; the unit that travels through a worker's ring.
struct Burst {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Everything one worker owns. Rings are per-worker (SPSC: coordinator
/// produces, the worker consumes); `stop` flips only after the coordinator
/// has pushed that worker's last burst.
struct WorkerLane {
  explicit WorkerLane(std::size_t ring_capacity) : ring(ring_capacity) {}
  SpscRing<Burst> ring;
  std::atomic<bool> stop{false};
  std::exception_ptr error;  ///< written by the worker, read after join
};

}  // namespace

void run_bursts(std::size_t count, const BurstOptions& options,
                const BurstTaskFactory& factory) {
  if (count == 0) return;
  const std::size_t workers = options.workers == 0 ? 1 : options.workers;
  const std::size_t burst = options.burst == 0 ? kDefaultBurst : options.burst;

  if (workers == 1) {
    const BurstTask task = factory(0);
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  std::vector<std::unique_ptr<WorkerLane>> lanes;
  lanes.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    lanes.push_back(std::make_unique<WorkerLane>(options.ring_capacity));

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    WorkerLane* lane = lanes[w].get();
    threads.emplace_back([lane, &factory, w] {
      BurstTask task;
      try {
        task = factory(w);
      } catch (...) {
        lane->error = std::current_exception();
      }
      Burst b;
      for (;;) {
        if (lane->ring.try_pop(b)) {
          // After a failure keep draining without running: the coordinator
          // may be spinning on this ring being full, so the feed must keep
          // moving even though its results are abandoned.
          if (lane->error == nullptr) {
            try {
              for (std::size_t i = b.begin; i < b.end; ++i) task(i);
            } catch (...) {
              lane->error = std::current_exception();
            }
          }
          continue;
        }
        if (lane->stop.load(std::memory_order_acquire) && lane->ring.empty())
          break;
        std::this_thread::yield();
      }
    });
  }

  // Round-robin distribution: burst b -> worker b % workers, in order. With
  // equal-cost bursts this is exactly the static block-cyclic schedule; with
  // skewed costs the ring depth (bursts in flight) absorbs the imbalance.
  std::size_t next_worker = 0;
  for (std::size_t begin = 0; begin < count; begin += burst) {
    const Burst b{begin, std::min(begin + burst, count)};
    WorkerLane& lane = *lanes[next_worker];
    while (!lane.ring.try_push(b)) std::this_thread::yield();
    next_worker = next_worker + 1 == workers ? 0 : next_worker + 1;
  }
  for (auto& lane : lanes) lane->stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  // First error by worker index: deterministic, like the thread pool.
  for (auto& lane : lanes)
    if (lane->error != nullptr) std::rethrow_exception(lane->error);
}

}  // namespace ftspan
