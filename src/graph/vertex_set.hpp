// VertexSet: a fixed-universe bitset over the vertices of a graph.
//
// Used throughout as a *fault mask*: shortest-path routines and spanner
// constructions take a VertexSet of failed (or removed) vertices so that
// G \ F never needs to be materialized.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace ftspan {

class VertexSet {
 public:
  VertexSet() = default;

  /// Empty set over a universe of n vertices.
  explicit VertexSet(std::size_t n)
      : n_(n), blocks_((n + 63) / 64, 0) {}

  /// Set containing exactly the listed vertices.
  VertexSet(std::size_t n, std::initializer_list<Vertex> vs) : VertexSet(n) {
    for (Vertex v : vs) insert(v);
  }

  std::size_t universe_size() const { return n_; }

  bool contains(Vertex v) const {
    return (blocks_[v >> 6] >> (v & 63)) & 1u;
  }

  void insert(Vertex v) { blocks_[v >> 6] |= std::uint64_t{1} << (v & 63); }
  void erase(Vertex v) { blocks_[v >> 6] &= ~(std::uint64_t{1} << (v & 63)); }

  void clear() {
    for (auto& b : blocks_) b = 0;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (auto b : blocks_) c += static_cast<std::size_t>(std::popcount(b));
    return c;
  }

  bool empty() const {
    for (auto b : blocks_)
      if (b) return false;
    return true;
  }

  /// True iff this set and `other` share no vertex.
  bool disjoint_from(const VertexSet& other) const {
    const std::size_t k = std::min(blocks_.size(), other.blocks_.size());
    for (std::size_t i = 0; i < k; ++i)
      if (blocks_[i] & other.blocks_[i]) return false;
    return true;
  }

  /// True iff every vertex of this set is in `other`.
  bool subset_of(const VertexSet& other) const {
    const std::size_t k = std::min(blocks_.size(), other.blocks_.size());
    for (std::size_t i = 0; i < k; ++i)
      if (blocks_[i] & ~other.blocks_[i]) return false;
    for (std::size_t i = k; i < blocks_.size(); ++i)
      if (blocks_[i]) return false;
    return true;
  }

  VertexSet& operator|=(const VertexSet& other) {
    for (std::size_t i = 0; i < blocks_.size(); ++i)
      blocks_[i] |= other.blocks_[i];
    return *this;
  }

  /// The members, in increasing order.
  std::vector<Vertex> to_vector() const {
    std::vector<Vertex> out;
    out.reserve(count());
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      std::uint64_t b = blocks_[i];
      while (b) {
        const int bit = std::countr_zero(b);
        out.push_back(static_cast<Vertex>(i * 64 + bit));
        b &= b - 1;
      }
    }
    return out;
  }

  /// Complement within the universe.
  VertexSet complement() const {
    VertexSet out(n_);
    for (std::size_t i = 0; i < blocks_.size(); ++i) out.blocks_[i] = ~blocks_[i];
    // Mask off bits beyond the universe.
    const std::size_t rem = n_ & 63;
    if (rem != 0 && !out.blocks_.empty())
      out.blocks_.back() &= (std::uint64_t{1} << rem) - 1;
    return out;
  }

  friend bool operator==(const VertexSet& a, const VertexSet& b) {
    return a.n_ == b.n_ && a.blocks_ == b.blocks_;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> blocks_;
};

}  // namespace ftspan
