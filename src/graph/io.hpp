// Plain-text edge-list I/O.
//
// Format (both graph kinds):
//   line 1: "<n> <m> <u|d>"        (u = undirected, d = directed;
//                                   case-insensitive)
//   then m lines: "<u> <v> <w>"
// '#' starts a comment — a whole line or the tail of one. CRLF line endings
// and trailing whitespace are accepted; any other trailing garbage on a
// header or edge line is a parse error.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace ftspan {

void write_graph(std::ostream& os, const Graph& g);
void write_digraph(std::ostream& os, const Digraph& g);

/// Parses an undirected graph; throws std::runtime_error on malformed input.
Graph read_graph(std::istream& is);
/// Parses a directed graph; throws std::runtime_error on malformed input.
Digraph read_digraph(std::istream& is);

void save_graph(const std::string& path, const Graph& g);
Graph load_graph(const std::string& path);

}  // namespace ftspan
