#include "graph/graph_file.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <type_traits>

#include "graph/io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FTSPAN_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ftspan {

// The payload is read back by reinterpreting mapped bytes as these structs,
// so their layout *is* the format. Pin it.
static_assert(std::is_trivially_copyable_v<Edge> && sizeof(Edge) == 16);
static_assert(offsetof(Edge, u) == 0 && offsetof(Edge, v) == 4 &&
              offsetof(Edge, w) == 8);
static_assert(std::is_trivially_copyable_v<CsrArc> && sizeof(CsrArc) == 16);
static_assert(offsetof(CsrArc, to) == 0 && offsetof(CsrArc, edge) == 4 &&
              offsetof(CsrArc, w) == 8);
static_assert(offsetof(GraphFileHeader, magic) == 0 &&
              offsetof(GraphFileHeader, version) == 8 &&
              offsetof(GraphFileHeader, flags) == 12 &&
              offsetof(GraphFileHeader, n) == 16 &&
              offsetof(GraphFileHeader, m) == 24 &&
              offsetof(GraphFileHeader, num_arcs) == 32 &&
              offsetof(GraphFileHeader, weights_integral) == 40 &&
              offsetof(GraphFileHeader, max_weight) == 48 &&
              offsetof(GraphFileHeader, total_weight) == 56 &&
              offsetof(GraphFileHeader, checksum) == 64 &&
              offsetof(GraphFileHeader, reserved) == 72);

std::uint64_t graph_file_checksum(std::span<const std::byte> bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a, same as edge_set_hash
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

[[noreturn]] void fail(const std::string& path, std::uint64_t byte_offset,
                       const std::string& what) {
  throw std::runtime_error("graph file '" + path + "': at byte " +
                           std::to_string(byte_offset) + ": " + what);
}

struct Layout {
  std::uint64_t edges_at;    ///< byte offset of the edge array
  std::uint64_t offsets_at;  ///< byte offset of the CSR offset array
  std::uint64_t arcs_at;     ///< byte offset of the CSR arc array
  std::uint64_t total;       ///< total file size
};

/// Section offsets implied by a (validated) header. All inputs are bounded
/// by the 32-bit id checks below, so the 64-bit arithmetic cannot overflow.
Layout layout_of(const GraphFileHeader& h) {
  Layout l;
  l.edges_at = sizeof(GraphFileHeader);
  l.offsets_at = l.edges_at + h.m * sizeof(Edge);
  l.arcs_at = l.offsets_at + (h.n + 1) * sizeof(std::uint64_t);
  l.total = l.arcs_at + h.num_arcs * sizeof(CsrArc);
  return l;
}

}  // namespace

void write_graph_binary(const std::string& path, std::size_t n,
                        std::span<const Edge> edges) {
  // Csr64 unconditionally: the on-disk offsets are 64-bit, so the writer
  // takes the arc-ceiling-free path no matter the graph size.
  const Csr64 csr = Csr64::from_edges(n, edges);

  GraphFileHeader h{};
  std::memcpy(h.magic, kGraphFileMagic, sizeof(h.magic));
  h.version = kGraphFileVersion;
  h.flags = 0;
  h.n = n;
  h.m = edges.size();
  h.num_arcs = csr.num_arcs();
  const WeightProfile& wp = csr.weights();
  h.weights_integral = wp.integral ? 1 : 0;
  h.max_weight = wp.max_weight;
  h.total_weight = wp.total_weight;

  const auto bytes = [](const auto& span) {
    return std::as_bytes(std::span(span));
  };
  std::uint64_t sum = graph_file_checksum(bytes(edges));
  // Continue the running FNV state across sections by re-seeding manually:
  // checksum(payload) must equal one pass over the concatenated bytes.
  const auto extend = [&sum](std::span<const std::byte> b) {
    for (const std::byte x : b) {
      sum ^= static_cast<std::uint64_t>(x);
      sum *= 1099511628211ull;
    }
  };
  extend(bytes(csr.offsets()));
  extend(bytes(csr.arcs()));
  h.checksum = sum;

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("graph file '" + path + "': cannot open for writing");
  const auto write = [&os](const void* p, std::size_t len) {
    os.write(static_cast<const char*>(p), static_cast<std::streamsize>(len));
  };
  write(&h, sizeof(h));
  write(edges.data(), edges.size_bytes());
  write(csr.offsets().data(), csr.offsets().size_bytes());
  write(csr.arcs().data(), csr.arcs().size_bytes());
  os.flush();
  if (!os) throw std::runtime_error("graph file '" + path + "': write failed");
}

void save_graph_binary(const std::string& path, const Graph& g) {
  write_graph_binary(path, g.num_vertices(), g.edges());
}

bool is_graph_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  char magic[8];
  if (!is.read(magic, sizeof(magic))) return false;
  return std::memcmp(magic, kGraphFileMagic, sizeof(magic)) == 0;
}

MappedGraph::MappedGraph(const std::string& path) {
#ifdef FTSPAN_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    throw std::runtime_error("graph file '" + path + "': cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error("graph file '" + path + "': cannot stat");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
      throw std::runtime_error("graph file '" + path + "': mmap failed");
    base_ = static_cast<const std::byte*>(map);
    mmapped_ = true;
  } else {
    ::close(fd);
  }
#else
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw std::runtime_error("graph file '" + path + "': cannot open");
  size_ = static_cast<std::size_t>(is.tellg());
  auto* buf = new std::byte[size_];
  is.seekg(0);
  is.read(reinterpret_cast<char*>(buf), static_cast<std::streamsize>(size_));
  base_ = buf;
  mmapped_ = false;
#endif

  try {
    // --- header field validation (cheap, before touching the payload) ---
    if (size_ < sizeof(GraphFileHeader))
      fail(path, size_,
           "truncated: " + std::to_string(size_) + " bytes, the header alone needs " +
               std::to_string(sizeof(GraphFileHeader)));
    const GraphFileHeader& h = header();
    if (std::memcmp(h.magic, kGraphFileMagic, sizeof(h.magic)) != 0)
      fail(path, 0, "bad magic (not an ftspan.graph.v1 file)");
    if (h.version != kGraphFileVersion)
      fail(path, offsetof(GraphFileHeader, version),
           "unsupported version " + std::to_string(h.version) + " (this build reads version " +
               std::to_string(kGraphFileVersion) + ")");
    if (h.flags != 0)
      fail(path, offsetof(GraphFileHeader, flags),
           "unsupported flags " + std::to_string(h.flags) +
               " (directed graphs and unknown flag bits are not part of v1)");
    if (h.n > static_cast<std::uint64_t>(kInvalidVertex))
      fail(path, offsetof(GraphFileHeader, n),
           "vertex count " + std::to_string(h.n) + " overflows the 32-bit vertex-id space");
    if (h.m > static_cast<std::uint64_t>(kInvalidEdge))
      fail(path, offsetof(GraphFileHeader, m),
           "edge count " + std::to_string(h.m) + " overflows the 32-bit edge-id space");
    if (h.num_arcs != 2 * h.m)
      fail(path, offsetof(GraphFileHeader, num_arcs),
           "arc count " + std::to_string(h.num_arcs) + " is not 2m = " + std::to_string(2 * h.m));

    const Layout l = layout_of(h);
    if (size_ != l.total)
      fail(path, size_,
           "truncated payload: header implies " + std::to_string(l.total) +
               " bytes, file has " + std::to_string(size_));

    // --- payload checksum ---
    const std::uint64_t sum = graph_file_checksum(
        {base_ + sizeof(GraphFileHeader), size_ - sizeof(GraphFileHeader)});
    if (sum != h.checksum)
      fail(path, offsetof(GraphFileHeader, checksum), "payload checksum mismatch");

    edges_ = {reinterpret_cast<const Edge*>(base_ + l.edges_at),
              static_cast<std::size_t>(h.m)};
    offsets_ = {reinterpret_cast<const std::uint64_t*>(base_ + l.offsets_at),
                static_cast<std::size_t>(h.n) + 1};
    arcs_ = {reinterpret_cast<const CsrArc*>(base_ + l.arcs_at),
             static_cast<std::size_t>(h.num_arcs)};

    // --- structural validation: edges, offsets, arcs ---
    const auto n = static_cast<Vertex>(h.n);
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      const Edge& e = edges_[i];
      const std::uint64_t at = l.edges_at + i * sizeof(Edge);
      if (e.u >= n || e.v >= n)
        fail(path, at, "edge " + std::to_string(i) + " endpoint out of range [0, " +
                           std::to_string(h.n) + ")");
      if (e.u == e.v) fail(path, at, "edge " + std::to_string(i) + " is a self-loop");
      if (!(e.w >= 0) || e.w > std::numeric_limits<double>::max())
        fail(path, at, "edge " + std::to_string(i) + " weight is negative or not finite");
    }
    if (offsets_[0] != 0)
      fail(path, l.offsets_at, "CSR offsets do not start at 0");
    for (std::size_t v = 0; v < h.n; ++v)
      if (offsets_[v + 1] < offsets_[v] || offsets_[v + 1] > h.num_arcs)
        fail(path, l.offsets_at + (v + 1) * sizeof(std::uint64_t),
             "CSR offsets are not monotone within [0, num_arcs]");
    if (offsets_[h.n] != h.num_arcs)
      fail(path, l.offsets_at + h.n * sizeof(std::uint64_t),
           "CSR offsets do not end at num_arcs");
    profile_ = WeightProfile{};
    for (std::size_t v = 0; v < h.n; ++v)
      for (std::uint64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
        const CsrArc& a = arcs_[i];
        const std::uint64_t at = l.arcs_at + i * sizeof(CsrArc);
        if (a.to >= n)
          fail(path, at, "arc " + std::to_string(i) + " endpoint out of range");
        if (a.edge >= h.m)
          fail(path, at, "arc " + std::to_string(i) + " edge id out of range");
        const Edge& e = edges_[a.edge];
        const auto src = static_cast<Vertex>(v);
        if (!((e.u == src && e.v == a.to) || (e.v == src && e.u == a.to)) ||
            e.w != a.w)
          fail(path, at,
               "arc " + std::to_string(i) + " disagrees with edge " + std::to_string(a.edge));
        profile_.observe(a.w);
      }
    // The header's hoisted profile must match the payload it summarizes
    // (observation order is arc order — the writer's order, so equality is
    // exact, not approximate).
    if ((h.weights_integral != 0) != profile_.integral ||
        h.max_weight != profile_.max_weight ||
        h.total_weight != profile_.total_weight)
      fail(path, offsetof(GraphFileHeader, weights_integral),
           "header weight profile disagrees with the payload");
  } catch (...) {
    close();
    throw;
  }
}

const GraphFileHeader& MappedGraph::header() const {
  return *reinterpret_cast<const GraphFileHeader*>(base_);
}

void MappedGraph::close() noexcept {
  if (base_ != nullptr) {
#ifdef FTSPAN_HAVE_MMAP
    if (mmapped_) ::munmap(const_cast<std::byte*>(base_), size_);
#else
    delete[] base_;
#endif
  }
  base_ = nullptr;
  size_ = 0;
  mmapped_ = false;
}

MappedGraph::~MappedGraph() { close(); }

MappedGraph::MappedGraph(MappedGraph&& other) noexcept
    : base_(other.base_),
      size_(other.size_),
      mmapped_(other.mmapped_),
      edges_(other.edges_),
      offsets_(other.offsets_),
      arcs_(other.arcs_),
      profile_(other.profile_) {
  other.base_ = nullptr;
  other.size_ = 0;
}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this != &other) {
    close();
    base_ = other.base_;
    size_ = other.size_;
    mmapped_ = other.mmapped_;
    edges_ = other.edges_;
    offsets_ = other.offsets_;
    arcs_ = other.arcs_;
    profile_ = other.profile_;
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Graph MappedGraph::to_graph() const {
  Graph g(num_vertices());
  g.reserve_edges(num_edges());
  for (const Edge& e : edges_) g.add_edge(e.u, e.v, e.w);
  return g;
}

Graph load_graph_binary(const std::string& path) {
  return MappedGraph(path).to_graph();
}

Graph load_graph_any(const std::string& path) {
  if (is_graph_binary(path)) return load_graph_binary(path);
  return load_graph(path);
}

}  // namespace ftspan
