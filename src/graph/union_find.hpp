// Disjoint-set union with path halving and union by size.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "graph/types.hpp"

namespace ftspan {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), Vertex{0});
  }

  Vertex find(Vertex x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns false if already together.
  bool unite(Vertex a, Vertex b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  bool same(Vertex a, Vertex b) { return find(a) == find(b); }

  std::size_t component_size(Vertex a) { return size_[find(a)]; }
  std::size_t num_components() const { return components_; }

 private:
  std::vector<Vertex> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

}  // namespace ftspan
