// ftspan.graph.v1 — the versioned binary on-disk graph format.
//
// The format stores the CSR arrays directly, so loading a graph is an mmap
// plus validation instead of a parse: a MappedGraph exposes the edge array
// and a CsrView straight into the mapping, and the Dijkstra engine traverses
// it in place. Million-vertex instances load in milliseconds where the text
// edge-list format takes a full parse and an adjacency rebuild.
//
// Layout (little-endian, natural alignment, all sections 8-byte aligned):
//
//   byte  0  char[8]  magic            "FTSPANG1"
//   byte  8  u32      version          1
//   byte 12  u32      flags            bit 0 = directed (readers reject set
//                                      bits they do not understand)
//   byte 16  u64      n                vertices
//   byte 24  u64      m                undirected edges
//   byte 32  u64      num_arcs         2m for undirected graphs
//   byte 40  u8       weights_integral hoisted WeightProfile (graph/csr.hpp)
//   byte 41  u8[7]    (zero padding)
//   byte 48  f64      max_weight
//   byte 56  f64      total_weight     observed per arc, i.e. 2x per edge
//   byte 64  u64      checksum         FNV-1a over every payload byte
//   byte 72  u64      (reserved, zero)
//   byte 80  payload:
//            m        x Edge   {u32 u, u32 v, f64 w}   edge array, id order
//            (n + 1)  x u64    CSR offsets
//            num_arcs x CsrArc {u32 to, u32 edge, f64 w}
//
// Offsets are 64-bit on disk unconditionally: the format is 64-bit clean and
// does not inherit the in-memory Csr's 32-bit arc ceiling. Versioning rule:
// readers accept exactly version 1 and reject unknown flag bits, so any
// incompatible change bumps the version; compatible additions are impossible
// by construction (the payload size is fully determined by the header) and
// therefore also bump it. docs/FORMATS.md is the format's reference page.
//
// Every validation failure throws std::runtime_error naming the byte offset
// of the offending header field or payload record.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace ftspan {

inline constexpr char kGraphFileMagic[8] = {'F', 'T', 'S', 'P',
                                            'A', 'N', 'G', '1'};
inline constexpr std::uint32_t kGraphFileVersion = 1;

/// The on-disk header. Field order and widths are the format; the
/// static_asserts in graph_file.cpp pin the layout byte-for-byte.
struct GraphFileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t n;
  std::uint64_t m;
  std::uint64_t num_arcs;
  std::uint8_t weights_integral;
  std::uint8_t pad[7];
  double max_weight;
  double total_weight;
  std::uint64_t checksum;
  std::uint64_t reserved;
};
static_assert(sizeof(GraphFileHeader) == 80,
              "ftspan.graph.v1 header is exactly 80 bytes");

/// FNV-1a over a byte range — the payload checksum. Exposed so tests (and
/// corruption tooling) can re-stamp a patched payload.
std::uint64_t graph_file_checksum(std::span<const std::byte> bytes);

/// Writes `edges` (an n-vertex undirected graph, edge id = array position)
/// as ftspan.graph.v1: the streaming importer's sink. The CSR arrays are
/// built by degree-count + scatter in edge-id order — identical to
/// Csr(Graph) for a Graph holding the same edge sequence — so writer paths
/// that agree on the edge array produce byte-identical files.
void write_graph_binary(const std::string& path, std::size_t n,
                        std::span<const Edge> edges);

/// write_graph_binary over a Graph's edge array.
void save_graph_binary(const std::string& path, const Graph& g);

/// True when `path` starts with the ftspan.graph.v1 magic (false for
/// missing/short files — the caller decides how to treat those).
bool is_graph_binary(const std::string& path);

/// An open, validated, memory-mapped ftspan.graph.v1 file. Validation is one
/// pass over the payload at open (checksum, CSR structure, endpoint/weight
/// ranges, arc-edge cross-consistency); afterwards every accessor is
/// zero-copy into the mapping. Move-only; the mapping lives as long as the
/// object, and every span below points into it.
class MappedGraph {
 public:
  explicit MappedGraph(const std::string& path);
  ~MappedGraph();
  MappedGraph(MappedGraph&& other) noexcept;
  MappedGraph& operator=(MappedGraph&& other) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;

  std::size_t num_vertices() const { return static_cast<std::size_t>(header().n); }
  std::size_t num_edges() const { return static_cast<std::size_t>(header().m); }
  const GraphFileHeader& header() const;

  /// The hoisted weight facts, straight from the (validated) header.
  const WeightProfile& weights() const { return profile_; }

  /// The edge array, id order — the exact sequence Graph::edges() held when
  /// the file was written.
  std::span<const Edge> edges() const { return edges_; }

  /// Zero-copy CSR over the mapped offset/arc arrays; traversable by
  /// DijkstraEngine and friends in place.
  CsrView csr() const { return CsrView(offsets_, arcs_, profile_); }

  /// Materializes the adjacency-list Graph (id-preserving), for consumers
  /// that need mutation or the hash-based edge index. O(n + m).
  Graph to_graph() const;

 private:
  void close() noexcept;

  const std::byte* base_ = nullptr;  ///< mapping (or fallback buffer) base
  std::size_t size_ = 0;
  bool mmapped_ = false;  ///< false: base_ is a heap buffer (read fallback)
  std::span<const Edge> edges_;
  std::span<const std::uint64_t> offsets_;
  std::span<const CsrArc> arcs_;
  WeightProfile profile_;
};

/// Loads a binary graph into a Graph (MappedGraph::to_graph in one call).
Graph load_graph_binary(const std::string& path);

/// Loads `path` as ftspan.graph.v1 when the magic matches, as the text
/// edge-list format (graph/io.hpp) otherwise — the loader behind the
/// `file=` workload and every CLI `-i` flag.
Graph load_graph_any(const std::string& path);

}  // namespace ftspan
