#include "graph/import.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/graph_file.hpp"
#include "graph/types.hpp"

namespace ftspan {

namespace {

[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& what) {
  throw std::runtime_error("import: " + source + " line " +
                           std::to_string(line) + ": " + what);
}

/// Whitespace-splitting cursor over one line; every parse error it raises
/// carries the line number.
struct LineScanner {
  const std::string& source;
  std::size_t line_no;
  const char* p;

  void skip_space() {
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
  }
  bool at_end() {
    skip_space();
    return *p == '\0';
  }

  std::uint64_t u64(const char* what) {
    skip_space();
    if (*p == '-') fail(source, line_no, std::string(what) + " is negative");
    // strtoull accepts a leading '+', which neither grammar allows — the
    // scenario parser's parse_u64 rejects both signs, so match it.
    if (*p == '+')
      fail(source, line_no,
           std::string(what) + " has a sign (unsigned decimal expected)");
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || errno == ERANGE)
      fail(source, line_no, std::string("malformed ") + what);
    p = end;
    return v;
  }

  double real(const char* what) {
    skip_space();
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) fail(source, line_no, std::string("malformed ") + what);
    p = end;
    return v;
  }

  std::string word() {
    skip_space();
    const char* start = p;
    while (*p != '\0' && !std::isspace(static_cast<unsigned char>(*p))) ++p;
    return std::string(start, p);
  }

  void expect_end() {
    if (!at_end())
      fail(source, line_no, std::string("trailing garbage '") + p + "'");
  }

  /// Edge-list lines may end in an inline '#' comment (graph/io.hpp).
  void expect_end_or_comment() {
    if (!at_end() && *p != '#')
      fail(source, line_no, std::string("trailing garbage '") + p + "'");
  }
};

void check_weight(const std::string& source, std::size_t line, double w) {
  if (!(w >= 0) || w > std::numeric_limits<double>::max())
    fail(source, line,
         "weight " + std::to_string(w) + " is negative or not finite");
}

void check_counts(const std::string& source, std::size_t line,
                  std::uint64_t n, std::uint64_t m) {
  if (n > static_cast<std::uint64_t>(kInvalidVertex))
    fail(source, line,
         "vertex count " + std::to_string(n) +
             " overflows the 32-bit vertex-id space");
  if (m > static_cast<std::uint64_t>(kInvalidEdge))
    fail(source, line,
         "edge count " + std::to_string(m) +
             " overflows the 32-bit edge-id space");
}

struct ParsedGraph {
  std::size_t n = 0;
  std::vector<Edge> edges;  ///< first-seen order, self-loops already dropped
  ImportResult stats;
};

/// DIMACS: c comments, one p line, then a/e lines with 1-based endpoints.
/// `line_no` starts past any lines the format sniff already consumed, so
/// reported line numbers stay those of the original input.
ParsedGraph parse_dimacs(std::istream& in, const std::string& source,
                         std::size_t line_no) {
  ParsedGraph out;
  bool have_p = false;
  std::uint64_t n = 0, m = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    LineScanner sc{source, line_no, line.c_str()};
    if (sc.at_end()) continue;
    const std::string tag = sc.word();
    if (tag == "c") continue;  // comment; rest of the line is free text
    if (tag == "p") {
      if (have_p) fail(source, line_no, "duplicate problem ('p') line");
      sc.word();  // problem tag ("sp", "edge", ...) — informational only
      n = sc.u64("vertex count");
      m = sc.u64("arc count");
      sc.expect_end();
      check_counts(source, line_no, n, m);
      have_p = true;
      out.n = static_cast<std::size_t>(n);
      out.edges.reserve(static_cast<std::size_t>(m));
      continue;
    }
    if (tag == "a" || tag == "e") {
      if (!have_p)
        fail(source, line_no, "arc line before the problem ('p') line");
      const std::uint64_t u = sc.u64("endpoint");
      const std::uint64_t v = sc.u64("endpoint");
      // 'a' lines carry a weight; DIMACS 'e' (edge) lines may omit it.
      const double w = (tag == "a" || !sc.at_end()) ? sc.real("weight") : 1.0;
      sc.expect_end();
      if (u < 1 || u > n || v < 1 || v > n)
        fail(source, line_no,
             "endpoint out of range [1, " + std::to_string(n) + "]");
      check_weight(source, line_no, w);
      ++out.stats.arcs_seen;
      if (u == v) {
        ++out.stats.self_loops;
        continue;
      }
      out.edges.push_back({static_cast<Vertex>(u - 1),
                           static_cast<Vertex>(v - 1), w});
      continue;
    }
    fail(source, line_no, "unknown line type '" + tag + "'");
  }
  out.stats.lines = line_no;
  if (!have_p) fail(source, line_no, "missing problem ('p') line");
  if (out.stats.arcs_seen != m)
    fail(source, line_no,
         "arc count mismatch: problem line announced " + std::to_string(m) +
             ", file has " + std::to_string(out.stats.arcs_seen));
  return out;
}

/// This repo's text format: "<n> <m> u" header, then m "<u> <v> <w>" lines,
/// 0-based, '#' comments. Directed ('d') inputs are rejected — v1 of the
/// binary format is undirected-only.
ParsedGraph parse_edge_list(std::istream& in, const std::string& source,
                            std::size_t line_no) {
  ParsedGraph out;
  bool have_header = false;
  std::uint64_t n = 0, m = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    LineScanner sc{source, line_no, line.c_str()};
    if (sc.at_end() || *sc.p == '#') continue;
    if (!have_header) {
      n = sc.u64("vertex count");
      m = sc.u64("edge count");
      std::string kind = sc.word();
      sc.expect_end_or_comment();
      for (char& ch : kind)
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      if (kind == "d")
        fail(source, line_no,
             "directed graphs are not supported by ftspan.graph.v1");
      if (kind != "u")
        fail(source, line_no, "malformed header kind '" + kind + "'");
      check_counts(source, line_no, n, m);
      have_header = true;
      out.n = static_cast<std::size_t>(n);
      out.edges.reserve(static_cast<std::size_t>(m));
      continue;
    }
    if (out.stats.arcs_seen == m)
      fail(source, line_no, "more edge lines than the header's " +
                                std::to_string(m));
    const std::uint64_t u = sc.u64("endpoint");
    const std::uint64_t v = sc.u64("endpoint");
    const double w = sc.real("weight");
    sc.expect_end_or_comment();
    if (u >= n || v >= n)
      fail(source, line_no,
           "endpoint out of range [0, " + std::to_string(n) + ")");
    check_weight(source, line_no, w);
    ++out.stats.arcs_seen;
    if (u == v) {
      ++out.stats.self_loops;
      continue;
    }
    out.edges.push_back({static_cast<Vertex>(u), static_cast<Vertex>(v), w});
  }
  out.stats.lines = line_no;
  if (!have_header) fail(source, line_no, "missing header line");
  if (out.stats.arcs_seen != m)
    fail(source, line_no,
         "truncated edge list: header announced " + std::to_string(m) +
             " edges, file has " + std::to_string(out.stats.arcs_seen));
  return out;
}

/// First-seen duplicate drop without a hash index: sort edge positions by
/// canonical {min, max} endpoint key (stable, so within a key group the
/// original order survives), keep each group's first, compact in input
/// order. O(m log m) time, 8 bytes per edge of scratch.
void drop_duplicates(ParsedGraph& g) {
  const auto key = [&g](std::uint32_t i) {
    const Edge& e = g.edges[i];
    const Vertex lo = std::min(e.u, e.v), hi = std::max(e.u, e.v);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  };
  std::vector<std::uint32_t> order(g.edges.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&key](std::uint32_t a, std::uint32_t b) {
                     return key(a) < key(b);
                   });
  std::vector<char> keep(g.edges.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i)
    if (i == 0 || key(order[i]) != key(order[i - 1])) keep[order[i]] = 1;
  std::size_t out = 0;
  for (std::size_t i = 0; i < g.edges.size(); ++i)
    if (keep[i]) g.edges[out++] = g.edges[i];
  g.stats.duplicates = g.edges.size() - out;
  g.edges.resize(out);
}

/// Reads ahead to the first content character to pick the grammar: DIMACS
/// lines open with a letter tag (c/p/a/e), the edge-list header with a
/// digit (or a '#' comment before it).
ImportFormat sniff(std::istream& in, std::size_t& lines_consumed) {
  for (;;) {
    const int ch = in.peek();
    if (ch == std::char_traits<char>::eof())
      return ImportFormat::kEdgeList;  // empty input: either parser rejects it
    if (std::isspace(static_cast<unsigned char>(ch))) {
      if (ch == '\n') ++lines_consumed;
      in.get();
      continue;
    }
    if (ch == '#') {  // edge-list comment: skip the line
      std::string line;
      std::getline(in, line);
      ++lines_consumed;
      continue;
    }
    // The decisive character is peeked, not consumed — the chosen parser
    // sees it again.
    return std::isdigit(static_cast<unsigned char>(ch))
               ? ImportFormat::kEdgeList
               : ImportFormat::kDimacs;
  }
}

}  // namespace

ImportResult import_graph(std::istream& in, const std::string& out_path,
                          ImportFormat format, const std::string& source_name) {
  std::size_t lines_consumed = 0;
  if (format == ImportFormat::kAuto) {
    // The sniff consumes leading whitespace/comments only, which neither
    // grammar needs to see again; the consumed count keeps the parsers'
    // error line numbers anchored to the original input.
    format = sniff(in, lines_consumed);
  }
  ParsedGraph g = format == ImportFormat::kDimacs
                      ? parse_dimacs(in, source_name, lines_consumed)
                      : parse_edge_list(in, source_name, lines_consumed);
  drop_duplicates(g);
  g.stats.n = g.n;
  g.stats.edges = g.edges.size();
  write_graph_binary(out_path, g.n, g.edges);
  return g.stats;
}

ImportResult import_graph_file(const std::string& in_path,
                               const std::string& out_path,
                               ImportFormat format) {
  std::ifstream is(in_path);
  if (!is) throw std::runtime_error("import: cannot open " + in_path);
  return import_graph(is, out_path, format, in_path);
}

}  // namespace ftspan
