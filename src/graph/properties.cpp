#include "graph/properties.hpp"

#include <algorithm>

#include "graph/shortest_paths.hpp"
#include "graph/union_find.hpp"

namespace ftspan {

bool is_connected(const Graph& g, const VertexSet* faults) {
  return num_components(g, faults) <= 1;
}

std::size_t num_components(const Graph& g, const VertexSet* faults) {
  const std::size_t n = g.num_vertices();
  UnionFind uf(n);
  std::size_t dead = 0;
  for (Vertex v = 0; v < n; ++v)
    if (faults != nullptr && faults->contains(v)) ++dead;
  for (const Edge& e : g.edges()) {
    if (faults != nullptr && (faults->contains(e.u) || faults->contains(e.v)))
      continue;
    uf.unite(e.u, e.v);
  }
  // Components counted by union-find include each dead vertex as a singleton.
  return uf.num_components() - dead;
}

std::size_t hop_eccentricity(const Graph& g, Vertex v,
                             const VertexSet* faults) {
  const auto t = bfs(g, v, faults);
  Weight ecc = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    if (t.reachable(u)) ecc = std::max(ecc, t.dist[u]);
  return static_cast<std::size_t>(ecc);
}

std::size_t hop_diameter(const Graph& g, const VertexSet* faults) {
  std::size_t d = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (faults != nullptr && faults->contains(v)) continue;
    d = std::max(d, hop_eccentricity(g, v, faults));
  }
  return d;
}

std::size_t weak_diameter(const Graph& g, const std::vector<Vertex>& subset) {
  std::size_t d = 0;
  for (Vertex v : subset) {
    const auto t = bfs(g, v);
    for (Vertex u : subset) {
      if (!t.reachable(u)) continue;
      d = std::max(d, static_cast<std::size_t>(t.dist[u]));
    }
  }
  return d;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist(g.max_degree() + 1, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) ++hist[g.degree(v)];
  return hist;
}

bool is_weakly_connected(const Digraph& g) {
  const std::size_t n = g.num_vertices();
  if (n <= 1) return true;
  UnionFind uf(n);
  for (const DiEdge& e : g.edges()) uf.unite(e.u, e.v);
  return uf.num_components() == 1;
}

}  // namespace ftspan
