#include "graph/sp_engine.hpp"

namespace ftspan {

void DijkstraEngine::reserve(std::size_t n, std::size_t heap_hint) {
  ensure(n);
  heap_.reserve(heap_hint);
  bucket_.reserve(heap_hint);
  delta_.reserve(heap_hint);
}

void DijkstraEngine::ensure(std::size_t n) {
  if (stamp_.size() >= n) return;
  stamp_.resize(n, 0);
  done_.resize(n, 0);
  target_stamp_.resize(n, 0);
  dist_.resize(n);
  parent_.resize(n);
  via_.resize(n);
  order_.reserve(n);
}

void DijkstraEngine::next_epoch() {
  if (++epoch_ != 0) return;
  // 32-bit epoch wrapped: stamps from runs 2^32 epochs ago would otherwise
  // read as current. Reset them all and restart the counter at 1 (0 is the
  // "never stamped" state).
  std::fill(stamp_.begin(), stamp_.end(), 0u);
  std::fill(done_.begin(), done_.end(), 0u);
  std::fill(target_stamp_.begin(), target_stamp_.end(), 0u);
  epoch_ = 1;
}

}  // namespace ftspan
