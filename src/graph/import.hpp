// Streaming text-to-binary graph importer (`ftspan import`).
//
// Converts large text instances — DIMACS shortest-path `.gr` files (the
// format real road-network corpora ship in) or this repo's edge-list format
// — into ftspan.graph.v1 (graph/graph_file.hpp) without materializing a
// Graph: no adjacency lists, no hash-based edge index, just one flat edge
// record per input line plus a sort-based duplicate scan. Peak memory is
// ~24 bytes per input arc, so 10^7-arc inputs import in a few hundred MB.
//
// DIMACS mapping (see docs/FORMATS.md for the field table):
//   c ...            comment, ignored
//   p <tag> <n> <m>  problem line: n vertices, m arcs announced ("p sp n m")
//   a <u> <v> <w>    arc, 1-based endpoints, non-negative weight
//   e <u> <v> [w]    edge (DIMACS clique/color flavor), weight defaults to 1
// Arcs are folded into the undirected simple graph the library works on:
// endpoints map to 0-based, self-loops are dropped, and of duplicate
// {u, v} pairs (including the reverse orientation every road file carries)
// the first occurrence wins — exactly Graph::add_edge's policy, so importing
// a file and adding its lines to a Graph produce the same edge sequence.
//
// Every rejection throws std::runtime_error naming the input line number.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace ftspan {

enum class ImportFormat {
  kAuto,      ///< sniff: DIMACS when the first content line is c/p/a/e
  kDimacs,    ///< DIMACS .gr / edge flavor
  kEdgeList,  ///< this repo's "<n> <m> u" edge-list text format
};

struct ImportResult {
  std::size_t n = 0;           ///< vertices in the written graph
  std::size_t edges = 0;       ///< edges kept (after dedup / self-loop drop)
  std::size_t arcs_seen = 0;   ///< input edge/arc lines parsed
  std::size_t duplicates = 0;  ///< dropped as duplicate {u, v} pairs
  std::size_t self_loops = 0;  ///< dropped as self-loops
  std::size_t lines = 0;       ///< input lines consumed
};

/// Streams `in` and writes ftspan.graph.v1 to `out_path`. Throws
/// std::runtime_error (naming the line number) on malformed input.
/// `source_name` labels the input in error messages.
ImportResult import_graph(std::istream& in, const std::string& out_path,
                          ImportFormat format = ImportFormat::kAuto,
                          const std::string& source_name = "<stream>");

/// File-path convenience overload.
ImportResult import_graph_file(const std::string& in_path,
                               const std::string& out_path,
                               ImportFormat format = ImportFormat::kAuto);

}  // namespace ftspan
