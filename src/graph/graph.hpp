// Graph and Digraph: the adjacency-list graph types used everywhere.
//
// `Graph` is a simple undirected graph with positive edge lengths — the
// setting of Section 2 of the paper (fault-tolerant k-spanners, k >= 3).
// `Digraph` is a simple directed graph with non-negative edge costs — the
// setting of Section 3 (minimum-cost r-fault-tolerant 2-spanner).
//
// Both types keep a dense edge array plus adjacency lists carrying edge ids,
// and an O(1) hash-based edge lookup. Vertices are never removed; fault sets
// are expressed as VertexSet masks passed to the algorithms.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "graph/vertex_set.hpp"

namespace ftspan {

/// Simple undirected graph with positive edge lengths.
class Graph {
 public:
  Graph() = default;
  /// Throws std::invalid_argument if n exceeds the 32-bit vertex-id space:
  /// edge hashing packs (u << 32) | v into 64 bits, so vertex ids at or
  /// above 2^32 would silently collide (and kInvalidVertex is reserved).
  explicit Graph(std::size_t n);

  std::size_t num_vertices() const { return adj_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Adds the edge {u, v} with length w. Self-loops and duplicate edges are
  /// rejected (returns kInvalidEdge); otherwise returns the new edge id.
  EdgeId add_edge(Vertex u, Vertex v, Weight w = 1.0);

  /// Pre-sizes the edge array and the hash index for m insertions — the
  /// bulk-load path (binary loader, edge_subgraph at million scale) avoids
  /// rehash-and-grow churn this way.
  void reserve_edges(std::size_t m) {
    edges_.reserve(m);
    index_.reserve(m);
  }

  bool has_edge(Vertex u, Vertex v) const { return edge_id(u, v).has_value(); }
  std::optional<EdgeId> edge_id(Vertex u, Vertex v) const;

  const Edge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<Edge>& edges() const { return edges_; }

  std::span<const Arc> neighbors(Vertex v) const {
    return {adj_[v].data(), adj_[v].size()};
  }
  std::size_t degree(Vertex v) const { return adj_[v].size(); }

  /// Sum of edge lengths.
  Weight total_weight() const;

  /// Largest vertex degree.
  std::size_t max_degree() const;

  /// The subgraph keeping exactly the edges with both endpoints alive
  /// (i.e. not in `faults`). Vertex ids are preserved.
  Graph subgraph_without(const VertexSet& faults) const;

  /// The subgraph with exactly the edges whose ids are listed.
  Graph edge_subgraph(const std::vector<EdgeId>& ids) const;

  static Graph from_edges(std::size_t n, const std::vector<Edge>& edges);

 private:
  // Injective because the constructor guarantees u, v < 2^32 (see above).
  static std::uint64_t key(Vertex u, Vertex v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  std::vector<Edge> edges_;
  std::vector<std::vector<Arc>> adj_;
  std::unordered_map<std::uint64_t, EdgeId> index_;
};

/// Simple directed graph with non-negative edge costs.
class Digraph {
 public:
  Digraph() = default;
  /// Throws std::invalid_argument if n exceeds the 32-bit vertex-id space
  /// (same edge-hash injectivity requirement as Graph).
  explicit Digraph(std::size_t n);

  std::size_t num_vertices() const { return out_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Adds the arc u -> v with cost w. Self-loops and duplicates rejected.
  EdgeId add_edge(Vertex u, Vertex v, Weight w = 1.0);

  bool has_edge(Vertex u, Vertex v) const { return edge_id(u, v).has_value(); }
  std::optional<EdgeId> edge_id(Vertex u, Vertex v) const;

  const DiEdge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<DiEdge>& edges() const { return edges_; }

  std::span<const Arc> out_neighbors(Vertex v) const {
    return {out_[v].data(), out_[v].size()};
  }
  std::span<const Arc> in_neighbors(Vertex v) const {
    return {in_[v].data(), in_[v].size()};
  }
  std::size_t out_degree(Vertex v) const { return out_[v].size(); }
  std::size_t in_degree(Vertex v) const { return in_[v].size(); }

  /// max over v of max(out_degree(v), in_degree(v)) — the Δ of Theorem 3.4.
  std::size_t max_degree() const;

  Weight total_cost() const;

  /// All length-2 path midpoints from u to v: { z : (u,z) and (z,v) in E }.
  /// This is the paper's P_{u,v} (Section 3), identified by midpoints.
  std::vector<Vertex> two_path_midpoints(Vertex u, Vertex v) const;

  static Digraph from_edges(std::size_t n, const std::vector<DiEdge>& edges);

 private:
  static std::uint64_t key(Vertex u, Vertex v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  std::vector<DiEdge> edges_;
  std::vector<std::vector<Arc>> out_;
  std::vector<std::vector<Arc>> in_;
  std::unordered_map<std::uint64_t, EdgeId> index_;
};

}  // namespace ftspan
