// Engine selection for the shortest-path engine (graph/sp_engine.hpp).
//
// The engine owns two interchangeable priority structures: the 4-ary heap
// (works on any weights) and a Dial-style bucket queue (integer weights
// only, O(1) push/pop — the classic win over comparison heaps for bounded
// integer distances). Callers express a *policy*; the concrete queue is
// picked per graph from its hoisted weight profile (see WeightProfile in
// graph/csr.hpp), so `auto` costs one branch per run, not a per-run scan.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "graph/types.hpp"

namespace ftspan {

/// The concrete priority structure a run uses.
enum class SpQueue : std::uint8_t { kHeap, kBucket };

/// What the caller asked for. kAuto resolves to the bucket queue exactly
/// when the graph's weights are non-negative integers no larger than
/// kMaxBucketWeight; kBucket is a *request*, downgraded to the heap on
/// fractional weights (a label-setting bucket queue is incorrect there), so
/// every policy is safe on every graph.
enum class SpEnginePolicy : std::uint8_t { kAuto, kHeap, kBucket };

/// Largest integer arc weight the bucket queue accepts: the circular bucket
/// array has max_weight + 1 slots and a pop scans forward one key at a time
/// (Dial's O(m + D)), so huge weights would trade heap log-factors for a
/// worse linear scan. 4096 covers every integer-weight workload in the
/// registry with a bucket array that still fits in L1/L2.
inline constexpr Weight kMaxBucketWeight = 4096;

inline SpQueue select_sp_queue(SpEnginePolicy policy, bool weights_integral,
                               Weight max_weight) {
  if (policy == SpEnginePolicy::kHeap) return SpQueue::kHeap;
  return weights_integral && max_weight <= kMaxBucketWeight
             ? SpQueue::kBucket
             : SpQueue::kHeap;
}

inline const char* to_string(SpEnginePolicy p) {
  switch (p) {
    case SpEnginePolicy::kHeap: return "heap";
    case SpEnginePolicy::kBucket: return "bucket";
    default: return "auto";
  }
}

inline std::optional<SpEnginePolicy> parse_engine_policy(std::string_view s) {
  if (s == "auto") return SpEnginePolicy::kAuto;
  if (s == "heap") return SpEnginePolicy::kHeap;
  if (s == "bucket") return SpEnginePolicy::kBucket;
  return std::nullopt;
}

}  // namespace ftspan
