// Engine selection for the shortest-path engine (graph/sp_engine.hpp).
//
// The engine owns three interchangeable priority structures: the 4-ary heap
// (works on any weights), a Dial-style bucket queue (integer weights only,
// O(1) push/pop — the classic win over comparison heaps for bounded integer
// distances), and a delta-stepping queue (integer weights of any magnitude:
// delta-wide buckets park far pushes in O(1), a small heap orders only the
// active bucket). Callers express a *policy*; the concrete queue is picked
// per graph from its hoisted weight profile (see WeightProfile in
// graph/csr.hpp), so `auto` costs one branch per run, not a per-run scan.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "graph/types.hpp"

namespace ftspan {

/// The concrete priority structure a run uses.
enum class SpQueue : std::uint8_t { kHeap, kBucket, kDelta };

/// What the caller asked for. kAuto resolves per graph: the bucket queue
/// when the weights are non-negative integers no larger than the bucket
/// ceiling, the delta queue for integer weights above it (the mid-range
/// regime: DIMACS road weights up to ~10^6), and the heap otherwise.
/// kBucket and kDelta are *requests*, downgraded to the heap on fractional
/// weights (a label-setting bucket structure is incorrect there), so every
/// policy is safe on every graph.
enum class SpEnginePolicy : std::uint8_t { kAuto, kHeap, kBucket, kDelta };

/// Largest integer arc weight the bucket queue accepts by default: the
/// circular bucket array has max_weight + 1 slots and a pop scans forward
/// one key at a time (Dial's O(m + D)), so huge weights would trade heap
/// log-factors for a worse linear scan. 4096 covers every integer-weight
/// workload in the registry with a bucket array that still fits in L1/L2.
/// Overridable per scenario via the `bucket_max=` knob, which doubles as
/// the delta queue's bucket-count budget (see tune_delta).
inline constexpr Weight kMaxBucketWeight = 4096;

/// Upper wall for the `bucket_max=` knob: the bucket array is allocated
/// eagerly at bucket_max + 1 slots, so an unchecked value would turn a typo
/// into a multi-GiB allocation. 2^20 slots is ~16 MiB of Slot heads — far
/// past any L2-friendly configuration but still a safe experiment.
inline constexpr Weight kBucketMaxCeiling = 1048576;

/// Auto-tuned delta-stepping bucket width: the smallest power of two such
/// that max_weight / delta <= bucket_max, i.e. the delta bucket array has
/// at most bucket_max + 2 buckets — the same array budget the Dial queue
/// gets at its ceiling. Power-of-two widths make bucketing a shift, not a
/// division. Examples at the default ceiling: max_weight 10^5 -> delta 32,
/// 10^6 -> delta 256.
inline Weight tune_delta(Weight max_weight,
                         Weight bucket_max = kMaxBucketWeight) {
  Weight delta = 1;
  while (max_weight / delta > bucket_max) delta *= 2;
  return delta;
}

inline SpQueue select_sp_queue(SpEnginePolicy policy, bool weights_integral,
                               Weight max_weight,
                               Weight bucket_max = kMaxBucketWeight) {
  switch (policy) {
    case SpEnginePolicy::kHeap: return SpQueue::kHeap;
    case SpEnginePolicy::kBucket:
      return weights_integral && max_weight <= bucket_max ? SpQueue::kBucket
                                                          : SpQueue::kHeap;
    case SpEnginePolicy::kDelta:
      return weights_integral ? SpQueue::kDelta : SpQueue::kHeap;
    case SpEnginePolicy::kAuto:
    default:
      if (!weights_integral) return SpQueue::kHeap;
      return max_weight <= bucket_max ? SpQueue::kBucket : SpQueue::kDelta;
  }
}

inline const char* to_string(SpEnginePolicy p) {
  switch (p) {
    case SpEnginePolicy::kHeap: return "heap";
    case SpEnginePolicy::kBucket: return "bucket";
    case SpEnginePolicy::kDelta: return "delta";
    default: return "auto";
  }
}

inline const char* to_string(SpQueue q) {
  switch (q) {
    case SpQueue::kBucket: return "bucket";
    case SpQueue::kDelta: return "delta";
    default: return "heap";
  }
}

inline std::optional<SpEnginePolicy> parse_engine_policy(std::string_view s) {
  if (s == "auto") return SpEnginePolicy::kAuto;
  if (s == "heap") return SpEnginePolicy::kHeap;
  if (s == "bucket") return SpEnginePolicy::kBucket;
  if (s == "delta") return SpEnginePolicy::kDelta;
  return std::nullopt;
}

}  // namespace ftspan
