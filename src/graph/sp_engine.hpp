// DijkstraEngine — the one shortest-path implementation in this repository.
//
// Every shortest-path computation in src/ (greedy spanner, Thorup–Zwick,
// distance oracle, edge-fault checks, the StretchOracle, and the public
// dijkstra()/pair_distance() wrappers) runs through run_visit() below. The
// engine is a *pooled workspace*: it owns epoch-stamped dist/parent/via
// arrays, a reusable priority structure, and the settle-order log, so that
// after the first run at a given graph size a run performs zero heap
// allocations — invalidation of the previous run's state is an O(1) epoch
// bump, not an O(n) infinity-fill (the trick that bought 17.6x on the
// validation side in validate/scratch.hpp, now shared by the construction
// side too).
//
// Three interchangeable priority structures sit behind the same loop
// (selected with set_queue; see graph/engine_policy.hpp for the policy):
//
//   HeapQueue    a 4-ary min-heap ordered by (distance, push sequence) —
//                the push-sequence tie-break makes equal-distance pops FIFO,
//                i.e. *stable*, which pins the settle order to something a
//                bucket queue can reproduce exactly.
//   BucketQueue  Dial's algorithm: max_weight + 1 circular buckets indexed
//                by distance mod width, FIFO within a bucket, O(1) push and
//                amortized O(1) pop. Integer weights only (a label-setting
//                bucket queue is incorrect on fractional keys); on integer
//                weights it pops in exactly the stable heap's (distance,
//                push sequence) order, so distances, parents, vias, and the
//                settle order are bit-identical between the two structures.
//   DeltaQueue   delta-stepping (Meyer–Sanders) for integer weights above
//                the Dial ceiling: delta-wide buckets (delta a power of
//                two, so bucketing is a shift) park far pushes in the same
//                flat-slab intrusive-FIFO layout as the BucketQueue; the
//                active bucket is drained through a small binary heap on
//                (distance bits, push sequence) — the settle-stamp pass.
//                Classic delta-stepping is label-correcting (re-relaxes
//                light edges); this is the deterministic *label-setting*
//                variant: because Dijkstra's frontier is monotone and the
//                buckets partition the key space, the global pop order is
//                exactly (distance, push sequence) lexicographic, i.e.
//                bit-identical to the stable heap — the heap log factor is
//                paid only within one delta-window, not across the whole
//                frontier.
//
// Usage pattern: one engine per thread, reused across runs. Engines are not
// thread-safe; never share one across concurrent callers.
//
// Semantics (identical to the historical implementations it replaces):
//   - `bound`:   a relaxation with tentative distance nd > bound is skipped;
//                vertices beyond the bound stay at infinity.
//   - `targets`: with a non-empty target list the search stops as soon as
//                every (distinct) target is settled; only target entries and
//                parent chains of settled vertices are then final.
//   - `prune_at`: optional per-vertex ceiling; a relaxation with
//                nd >= prune_at[to] is skipped (the Thorup–Zwick cluster
//                truncation d(w, v) < d(v, A_{i+1})).
//   - faulted vertices are never relaxed and never used as sources.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/engine_policy.hpp"
#include "graph/graph.hpp"
#include "graph/vertex_set.hpp"

namespace ftspan {

/// Uniform out-arc access for the graph types (Graph adjacency is symmetric,
/// so its "out" arcs are simply the incident arcs).
inline std::span<const Arc> out_arcs(const Graph& g, Vertex v) {
  return g.neighbors(v);
}
inline std::span<const Arc> out_arcs(const Digraph& g, Vertex v) {
  return g.out_neighbors(v);
}
template <class Offset>
inline std::span<const CsrArc> out_arcs(const BasicCsr<Offset>& g, Vertex v) {
  return g.out(v);
}
// The mmap-backed view (graph/graph_file.hpp) runs through the same engine —
// there is no 32-bit arc ceiling on this path, the view's offsets are
// 64-bit. (The heap's per-run push-sequence tie-break counter is 32-bit; a
// single run would need > 2^32 relaxations to recycle it, which bounded
// searches never approach.)
inline std::span<const CsrArc> out_arcs(const CsrView& g, Vertex v) {
  return g.out(v);
}

class DijkstraEngine {
 public:
  /// Pre-sizes every internal buffer for an n-vertex graph whose searches
  /// push at most heap_hint entries (2m + #sources is always enough: each
  /// directed arc causes at most one push). Optional — buffers also grow on
  /// demand — but calling it up front makes later runs allocation-free even
  /// on the very first search.
  void reserve(std::size_t n, std::size_t heap_hint);

  /// Selects the priority structure for subsequent runs. For kBucket and
  /// kDelta, max_weight is the largest integer arc weight any run will
  /// relax (the Dial array gets max_weight + 1 slots; the delta queue gets
  /// tune_delta(max_weight, bucket_max)-wide buckets, at most
  /// bucket_max + 2 of them); the caller is responsible for only routing
  /// integer-weight graphs here — use select_sp_queue with the graph's
  /// WeightProfile. Defaults to the heap.
  void set_queue(SpQueue q, Weight max_weight = 1,
                 Weight bucket_max = kMaxBucketWeight) {
    queue_ = q;
    if (q == SpQueue::kBucket) {
      bucket_.configure(static_cast<std::size_t>(max_weight) + 1);
    } else if (q == SpQueue::kDelta) {
      const Weight delta = tune_delta(max_weight, bucket_max);
      delta_.configure(delta,
                       static_cast<std::size_t>(max_weight / delta) + 2);
    }
  }
  SpQueue queue() const { return queue_; }

  /// Single-source run; see the header comment for bound/targets semantics.
  /// G is Graph, Digraph, or Csr. Drop-in replacement for the retired
  /// DijkstraScratch::run.
  template <class G>
  void run(const G& g, Vertex source, const VertexSet* faults = nullptr,
           std::span<const Vertex> targets = {},
           Weight bound = kInfiniteWeight) {
    const Vertex src[1] = {source};
    run_visit(g.num_vertices(), {src, 1}, faults, bound, targets, nullptr,
              arc_visitor(g));
  }

  /// Multi-source run: dist(v) = d(v, sources).
  template <class G>
  void run_multi(const G& g, std::span<const Vertex> sources,
                 const VertexSet* faults = nullptr) {
    run_visit(g.num_vertices(), sources, faults, kInfiniteWeight, {}, nullptr,
              arc_visitor(g));
  }

  /// Truncated single-source run: relaxations with nd >= prune_at[to] are
  /// skipped (prune_at has num_vertices entries).
  template <class G>
  void run_pruned(const G& g, Vertex source, const VertexSet* faults,
                  const Weight* prune_at) {
    const Vertex src[1] = {source};
    run_visit(g.num_vertices(), {src, 1}, faults, kInfiniteWeight, {},
              prune_at, arc_visitor(g));
  }

  /// Single-source run on G minus a set of dead *edges* (the edge-fault
  /// model): arcs whose edge id is marked dead are never relaxed.
  template <class G>
  void run_avoiding_edges(const G& g, Vertex source,
                          const std::vector<char>& dead_edges) {
    const Vertex src[1] = {source};
    const auto inner = arc_visitor(g);
    run_visit(g.num_vertices(), {src, 1}, nullptr, kInfiniteWeight, {},
              nullptr, [&](Vertex v, auto&& relax) {
                inner(v, [&](Vertex to, Weight w, EdgeId edge) {
                  if (!dead_edges[edge]) relax(to, w, edge);
                });
              });
  }

  /// Single-pair distance with early exit once `target` settles; same
  /// semantics as the historical pair_distance (bounded, fault-masked).
  template <class G>
  Weight bounded_pair(const G& g, Vertex source, Vertex target,
                      const VertexSet* faults = nullptr,
                      Weight bound = kInfiniteWeight) {
    const Vertex tgt[1] = {target};
    run(g, source, faults, {tgt, 1}, bound);
    return dist(target);
  }

  // --- results of the most recent run -------------------------------------

  Weight dist(Vertex v) const {
    return stamp_[v] == epoch_ ? dist_[v] : kInfiniteWeight;
  }
  bool reachable(Vertex v) const { return dist(v) < kInfiniteWeight; }
  Vertex parent(Vertex v) const {
    return stamp_[v] == epoch_ ? parent_[v] : kInvalidVertex;
  }
  /// Edge id used to first reach v at its final distance (kInvalidEdge for
  /// sources / unreached vertices, or when the arcs carried no edge ids).
  EdgeId via(Vertex v) const {
    return stamp_[v] == epoch_ ? via_[v] : kInvalidEdge;
  }
  /// True iff v's distance is final (needed after a targeted early exit).
  bool settled(Vertex v) const { return done_[v] == epoch_; }
  /// The vertices settled by the last run, in non-decreasing distance order.
  /// Parents appear before their children, so one forward pass can propagate
  /// any per-root label down the shortest-path tree.
  std::span<const Vertex> settle_order() const { return order_; }

  // --- the core loop ------------------------------------------------------

  /// The single Dijkstra implementation. VisitArcs is called as
  /// visit(v, relax) and must invoke relax(to, w, edge) once per out-arc of
  /// v; every public entry point above is a thin wrapper around this. The
  /// body is instantiated once per priority structure and dispatched on the
  /// configured queue.
  template <class VisitArcs>
  void run_visit(std::size_t n, std::span<const Vertex> sources,
                 const VertexSet* faults, Weight bound,
                 std::span<const Vertex> targets, const Weight* prune_at,
                 VisitArcs&& visit) {
    if (queue_ == SpQueue::kBucket)
      run_visit_q(bucket_, n, sources, faults, bound, targets, prune_at,
                  visit);
    else if (queue_ == SpQueue::kDelta)
      run_visit_q(delta_, n, sources, faults, bound, targets, prune_at,
                  visit);
    else
      run_visit_q(heap_, n, sources, faults, bound, targets, prune_at, visit);
  }

  /// Exact bounded s-t distance by *bidirectional* search: two cooperating
  /// half-searches (one per engine) expand alternately — cheaper frontier
  /// first — and stop as soon as the best meeting path is provably optimal
  /// (topF + topB >= mu) or provably longer than `bound`. Explores two
  /// radius-bound/2 balls instead of one radius-bound ball, which is the
  /// asymptotic win on expander-like graphs. Floating-point caveat: a path
  /// is summed in two halves that meet in the middle, so the returned value
  /// can differ from a forward-accumulating run() by accumulated rounding
  /// (~hops * eps, relative); callers whose *decision* compares the result
  /// against a threshold must treat a window around that threshold as
  /// undecided and re-query run() — see GreedyWorkspace::bounded_pair.
  /// Undirected adjacency only: `visit` serves both directions. Both engines
  /// must be configured with the same queue kind (they are dispatched on
  /// fwd's).
  template <class VisitArcs>
  static Weight bidirectional_bounded_pair(DijkstraEngine& fwd,
                                           DijkstraEngine& bwd, std::size_t n,
                                           Vertex s, Vertex t,
                                           const VertexSet* faults,
                                           Weight bound, VisitArcs&& visit) {
    if (fwd.queue_ == SpQueue::kBucket)
      return bidirectional_impl(fwd.bucket_, bwd.bucket_, fwd, bwd, n, s, t,
                                faults, bound, visit);
    if (fwd.queue_ == SpQueue::kDelta)
      return bidirectional_impl(fwd.delta_, bwd.delta_, fwd, bwd, n, s, t,
                                faults, bound, visit);
    return bidirectional_impl(fwd.heap_, bwd.heap_, fwd, bwd, n, s, t, faults,
                              bound, visit);
  }

  // --- epoch plumbing (exposed for the rollover test) ----------------------

  std::uint32_t debug_epoch() const { return epoch_; }
  /// Test hook: jump the epoch counter (e.g. to just below the 32-bit wrap)
  /// so the rollover path is exercisable without 2^32 runs.
  void debug_set_epoch(std::uint32_t e) { epoch_ = e; }

 private:
  /// A queued (tentative distance, vertex) entry — what pop() hands back.
  struct QueueItem {
    Weight d;
    Vertex v;
  };

  // 4-ary min-heap: shallower than a binary heap (fewer cache-missing levels
  // per sift) and branch-friendly on the 4-child min scan. Items carry a
  // per-run push sequence number and order lexicographically by
  // (d, seq) — seq values are unique, so the order is total and pops of
  // equal-distance entries come out in push (FIFO) order, exactly matching
  // the BucketQueue below. Distances are stored as their raw IEEE-754 bits:
  // for the non-negative finite-or-infinity values Dijkstra produces, the
  // bit patterns order identically to the doubles, and integer compares let
  // the compiler fuse the (key, seq) test without double-comparison
  // semantics in the way — ties are *the* common case on unit-weight graphs,
  // so the tie branch is hot.
  class HeapQueue {
   public:
    void clear() {
      items_.clear();
      seq_ = 0;
    }
    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }
    Weight front_d() const { return std::bit_cast<Weight>(items_.front().key); }
    void reserve(std::size_t cap) { items_.reserve(cap); }

    void push(Weight d, Vertex v) {
      items_.push_back({std::bit_cast<std::uint64_t>(d), v, seq_++});
      std::size_t i = items_.size() - 1;
      while (i > 0) {
        const std::size_t p = (i - 1) >> 2;
        if (!less(items_[i], items_[p])) break;
        std::swap(items_[p], items_[i]);
        i = p;
      }
    }

    QueueItem pop() {
      const Item top = items_.front();
      const Item last = items_.back();
      items_.pop_back();
      if (!items_.empty()) {
        std::size_t i = 0;
        const std::size_t n = items_.size();
        for (;;) {
          const std::size_t first = (i << 2) + 1;
          if (first >= n) break;
          std::size_t best = first;
          const std::size_t end = std::min(first + 4, n);
          for (std::size_t c = first + 1; c < end; ++c)
            if (less(items_[c], items_[best])) best = c;
          if (!less(items_[best], last)) break;
          items_[i] = items_[best];
          i = best;
        }
        items_[i] = last;
      }
      return {std::bit_cast<Weight>(top.key), top.v};
    }

   private:
    struct Item {
      std::uint64_t key;  ///< distance as raw bits (order-preserving for >= 0)
      Vertex v;
      std::uint32_t seq;
    };  // 16 bytes: the seq fills what was previously padding

    static bool less(const Item& a, const Item& b) {
      return a.key < b.key || (a.key == b.key && a.seq < b.seq);
    }

    std::vector<Item> items_;
    std::uint32_t seq_ = 0;
  };

  // Dial's bucket queue: width = max_weight + 1 circular buckets, bucket
  // index = integer distance mod width. Dijkstra's frontier is monotone and
  // spans at most max_weight + 1 distinct keys, so the bucket holding the
  // current key is always unambiguous. Entries live in one flat slab with an
  // intrusive per-bucket FIFO list (head/tail indices), so the whole
  // structure is three flat arrays: the slab never re-allocates once
  // reserve()d to the push bound (2m + #sources — the same bound the heap
  // uses), unlike a vector-per-bucket layout whose per-bucket capacities
  // would keep growing run over run. Appends during a bucket's drain land
  // behind the list head and are popped in the same pass, which preserves
  // global FIFO-within-key — the order the stable heap reproduces.
  class BucketQueue {
   public:
    /// Sizes the circular array for keys spanning `width` = max_weight + 1.
    /// Only grows; leftover entries from an abandoned run are dropped by the
    /// next clear().
    void configure(std::size_t width) {
      if (heads_.size() < width) {
        heads_.resize(width, kNil);
        tails_.resize(width, kNil);
      }
      width_ = width;
    }

    /// Pre-sizes the slab for a run pushing at most cap entries (the dirty
    /// list is bounded by the push count too).
    void reserve(std::size_t cap) {
      slab_.reserve(cap);
      dirty_.reserve(cap);
    }

    void clear() {
      for (const std::uint32_t b : dirty_) {
        heads_[b] = kNil;
        tails_[b] = kNil;
      }
      dirty_.clear();
      slab_.clear();
      cur_ = 0;
      cur_b_ = 0;
      live_ = 0;
    }
    bool empty() const { return live_ == 0; }

    void push(Weight d, Vertex v) {
      // Monotonicity gives key - cur_ < width_, so the bucket index is the
      // cursor's bucket plus that offset with one conditional wrap — no
      // hardware division (a div per push would dominate these short
      // searches).
      const std::uint64_t key = static_cast<std::uint64_t>(d);
      std::size_t b = cur_b_ + static_cast<std::size_t>(key - cur_);
      if (b >= width_) b -= width_;
      const std::uint32_t i = static_cast<std::uint32_t>(slab_.size());
      slab_.push_back({d, v, kNil});
      if (heads_[b] == kNil) {
        dirty_.push_back(static_cast<std::uint32_t>(b));
        heads_[b] = i;
      } else {
        slab_[tails_[b]].next = i;
      }
      tails_[b] = i;
      ++live_;
    }

    /// Minimum queued distance. Precondition: !empty().
    Weight front_d() { return slab_[heads_[advance()]].d; }

    QueueItem pop() {
      const std::size_t b = advance();
      const Slot& s = slab_[heads_[b]];
      heads_[b] = s.next;
      --live_;
      return {s.d, s.v};
    }

   private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    struct Slot {
      Weight d;
      Vertex v;
      std::uint32_t next;  ///< next slab index in this bucket's FIFO, or kNil
    };  // 16 bytes, no padding

    /// Index of the bucket holding the current minimum key. An empty bucket
    /// at the cursor means no live key equals it (live keys sit in
    /// [cur_, cur_ + width_ - 1], so indices are unambiguous), and the slot
    /// it vacates is exactly the one key cur_ + width_ will need.
    /// Precondition: !empty().
    std::size_t advance() {
      while (heads_[cur_b_] == kNil) {
        ++cur_;
        if (++cur_b_ == width_) cur_b_ = 0;
      }
      return cur_b_;
    }

    std::vector<Slot> slab_;            ///< all entries, in push order
    std::vector<std::uint32_t> heads_;  ///< per-bucket FIFO head slab index
    std::vector<std::uint32_t> tails_;  ///< per-bucket FIFO tail slab index
    std::vector<std::uint32_t> dirty_;  ///< buckets made non-empty since clear
    std::size_t width_ = 1;
    std::uint64_t cur_ = 0;   ///< absolute key cursor (monotone within a run)
    std::size_t cur_b_ = 0;   ///< cur_ % width_, maintained incrementally
    std::size_t live_ = 0;
  };

  // Delta-stepping queue: a two-level structure for integer weights above
  // the Dial ceiling. Level 1 is the BucketQueue's flat-slab circular array,
  // but each bucket spans a delta-wide key range (delta a power of two, so
  // bucket index = integer key >> shift — no division); a push beyond the
  // active bucket parks its entry in O(1), untouched until its bucket opens.
  // Level 2 is a small binary min-heap on (distance bits, push sequence):
  // when the cursor reaches a bucket, its whole FIFO chain is moved into the
  // heap (the settle-stamp pass), and pushes that land *inside* the open
  // bucket's window go straight to the heap. Monotonicity makes the open
  // bucket's contents the global minimum at all times, and the heap's
  // (key, seq) order is total, so pops come out in exactly the stable heap's
  // order — bit-identical settle order at a log factor paid only within one
  // delta window. Unlike classic (label-correcting) delta-stepping there is
  // no re-relaxation: the engine's stale-entry check keeps this label-
  // setting, and determinism is structural, not a post-pass.
  class DeltaQueue {
   public:
    /// Sizes the circular array for `width` buckets of `delta` keys each
    /// (delta must be a power of two — use tune_delta). Only grows; leftover
    /// entries from an abandoned run are dropped by the next clear().
    void configure(Weight delta, std::size_t width) {
      shift_ = static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(delta)));
      if (heads_.size() < width) {
        heads_.resize(width, kNil);
        tails_.resize(width, kNil);
      }
      width_ = width;
    }

    /// Pre-sizes the slab and the active heap for a run pushing at most cap
    /// entries (every parked entry may pass through the heap).
    void reserve(std::size_t cap) {
      slab_.reserve(cap);
      dirty_.reserve(cap);
      active_.reserve(cap);
    }

    void clear() {
      for (const std::uint32_t b : dirty_) {
        heads_[b] = kNil;
        tails_[b] = kNil;
      }
      dirty_.clear();
      slab_.clear();
      active_.clear();
      cur_ab_ = 0;
      cur_b_ = 0;
      live_ = 0;
      seq_ = 0;
      open_ = false;
    }
    bool empty() const { return live_ == 0; }

    void push(Weight d, Vertex v) {
      const std::uint64_t ab = static_cast<std::uint64_t>(d) >> shift_;
      ++live_;
      if (open_ && ab == cur_ab_) {
        // Lands inside the open window: joins the settle heap directly so
        // it is ordered against the bucket's remaining entries.
        heap_push({std::bit_cast<std::uint64_t>(d), v, seq_++});
        return;
      }
      // Far push: park it. Monotonicity bounds ab - cur_ab_ by
      // max_weight / delta + 1 < width_, so one conditional wrap suffices.
      std::size_t b = cur_b_ + static_cast<std::size_t>(ab - cur_ab_);
      if (b >= width_) b -= width_;
      const std::uint32_t i = static_cast<std::uint32_t>(slab_.size());
      slab_.push_back({d, v, seq_++, kNil});
      if (heads_[b] == kNil) {
        dirty_.push_back(static_cast<std::uint32_t>(b));
        heads_[b] = i;
      } else {
        slab_[tails_[b]].next = i;
      }
      tails_[b] = i;
    }

    /// Minimum queued distance. Precondition: !empty().
    Weight front_d() {
      open_next_bucket_if_needed();
      return std::bit_cast<Weight>(active_.front().key);
    }

    QueueItem pop() {
      open_next_bucket_if_needed();
      const Item top = heap_pop();
      --live_;
      return {std::bit_cast<Weight>(top.key), top.v};
    }

   private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    struct Slot {
      Weight d;
      Vertex v;
      std::uint32_t seq;   ///< global push stamp — the heap tie-break
      std::uint32_t next;  ///< next slab index in this bucket's FIFO, or kNil
    };  // 24 bytes (8-byte aligned)

    struct Item {
      std::uint64_t key;  ///< distance as raw bits (order-preserving for >= 0)
      Vertex v;
      std::uint32_t seq;
    };

    static bool less(const Item& a, const Item& b) {
      return a.key < b.key || (a.key == b.key && a.seq < b.seq);
    }

    /// If the settle heap is drained, advances the cursor to the next
    /// non-empty bucket and moves its FIFO chain into the heap. While a
    /// bucket is open its flat slot stays empty (in-window pushes go to the
    /// heap), so the scan never revisits it. Precondition: !empty().
    void open_next_bucket_if_needed() {
      if (!active_.empty()) return;
      while (heads_[cur_b_] == kNil) {
        ++cur_ab_;
        if (++cur_b_ == width_) cur_b_ = 0;
      }
      for (std::uint32_t i = heads_[cur_b_]; i != kNil;) {
        const Slot& s = slab_[i];
        heap_push({std::bit_cast<std::uint64_t>(s.d), s.v, s.seq});
        i = s.next;
      }
      heads_[cur_b_] = kNil;
      tails_[cur_b_] = kNil;
      open_ = true;
    }

    void heap_push(Item it) {
      active_.push_back(it);
      std::size_t i = active_.size() - 1;
      while (i > 0) {
        const std::size_t p = (i - 1) >> 1;
        if (!less(active_[i], active_[p])) break;
        std::swap(active_[p], active_[i]);
        i = p;
      }
    }

    Item heap_pop() {
      const Item top = active_.front();
      const Item last = active_.back();
      active_.pop_back();
      if (!active_.empty()) {
        std::size_t i = 0;
        const std::size_t n = active_.size();
        for (;;) {
          const std::size_t l = (i << 1) + 1;
          if (l >= n) break;
          std::size_t best = l;
          if (l + 1 < n && less(active_[l + 1], active_[l])) best = l + 1;
          if (!less(active_[best], last)) break;
          active_[i] = active_[best];
          i = best;
        }
        active_[i] = last;
      }
      return top;
    }

    std::vector<Slot> slab_;            ///< parked entries, in push order
    std::vector<std::uint32_t> heads_;  ///< per-bucket FIFO head slab index
    std::vector<std::uint32_t> tails_;  ///< per-bucket FIFO tail slab index
    std::vector<std::uint32_t> dirty_;  ///< buckets made non-empty since clear
    std::vector<Item> active_;          ///< settle heap over the open bucket
    std::uint32_t shift_ = 0;           ///< log2(delta)
    std::size_t width_ = 1;
    std::uint64_t cur_ab_ = 0;  ///< absolute bucket cursor (key >> shift_)
    std::size_t cur_b_ = 0;     ///< cur_ab_ % width_, maintained incrementally
    std::size_t live_ = 0;
    std::uint32_t seq_ = 0;     ///< per-run global push sequence
    bool open_ = false;         ///< cursor bucket has been moved to the heap
  };

  template <class Q, class VisitArcs>
  void run_visit_q(Q& q, std::size_t n, std::span<const Vertex> sources,
                   const VertexSet* faults, Weight bound,
                   std::span<const Vertex> targets, const Weight* prune_at,
                   VisitArcs&& visit) {
    ensure(n);
    next_epoch();
    q.clear();
    order_.clear();

    std::size_t remaining = 0;
    for (const Vertex t : targets)
      if (target_stamp_[t] != epoch_) {
        target_stamp_[t] = epoch_;
        ++remaining;
      }

    for (const Vertex s : sources) {
      if (faults != nullptr && faults->contains(s)) continue;
      if (stamp_[s] == epoch_) continue;  // duplicate source
      stamp_[s] = epoch_;
      dist_[s] = 0;
      parent_[s] = kInvalidVertex;
      via_[s] = kInvalidEdge;
      q.push(0, s);
    }

    while (!q.empty()) {
      const QueueItem item = q.pop();
      const Vertex v = item.v;
      if (done_[v] == epoch_) continue;  // stale duplicate queue entry
      done_[v] = epoch_;
      order_.push_back(v);
      if (target_stamp_[v] == epoch_ && --remaining == 0) break;
      visit(v, [&](Vertex to, Weight w, EdgeId edge) {
        if (faults != nullptr && faults->contains(to)) return;
        if (done_[to] == epoch_) return;
        const Weight nd = item.d + w;
        if (nd > bound) return;
        if (prune_at != nullptr && nd >= prune_at[to]) return;
        if (stamp_[to] != epoch_ || nd < dist_[to]) {
          stamp_[to] = epoch_;
          dist_[to] = nd;
          parent_[to] = v;
          via_[to] = edge;
          q.push(nd, to);
        }
      });
    }
  }

  template <class Q, class VisitArcs>
  static Weight bidirectional_impl(Q& qf, Q& qb, DijkstraEngine& fwd,
                                   DijkstraEngine& bwd, std::size_t n,
                                   Vertex s, Vertex t, const VertexSet* faults,
                                   Weight bound, VisitArcs&& visit) {
    if (s == t) return 0;
    fwd.ensure(n);
    bwd.ensure(n);
    fwd.next_epoch();
    bwd.next_epoch();
    qf.clear();
    qb.clear();
    fwd.order_.clear();
    bwd.order_.clear();
    if (faults != nullptr && (faults->contains(s) || faults->contains(t)))
      return kInfiniteWeight;

    fwd.seed_source(s, qf);
    bwd.seed_source(t, qb);
    Weight mu = kInfiniteWeight;

    // Settles one vertex of `self`, relaxing its arcs and improving the best
    // meeting length mu against `other`'s stamped (tentative or final)
    // distances — every such combination is the length of a real s-t path.
    const auto expand = [&](DijkstraEngine& self, Q& q,
                            DijkstraEngine& other) {
      while (!q.empty()) {
        const QueueItem item = q.pop();
        const Vertex v = item.v;
        if (self.done_[v] == self.epoch_) continue;  // stale duplicate
        self.done_[v] = self.epoch_;
        if (other.stamp_[v] == other.epoch_)
          mu = std::min(mu, item.d + other.dist_[v]);
        visit(v, [&](Vertex to, Weight w, EdgeId edge) {
          if (faults != nullptr && faults->contains(to)) return;
          if (self.done_[to] == self.epoch_) return;
          const Weight nd = item.d + w;
          if (nd > bound) return;
          if (self.stamp_[to] != self.epoch_ || nd < self.dist_[to]) {
            self.stamp_[to] = self.epoch_;
            self.dist_[to] = nd;
            self.parent_[to] = v;
            self.via_[to] = edge;
            q.push(nd, to);
            if (other.stamp_[to] == other.epoch_)
              mu = std::min(mu, nd + other.dist_[to]);
          }
        });
        return;
      }
    };

    for (;;) {
      const Weight top_f = qf.empty() ? kInfiniteWeight : qf.front_d();
      const Weight top_b = qb.empty() ? kInfiniteWeight : qb.front_d();
      if (top_f >= kInfiniteWeight && top_b >= kInfiniteWeight) break;
      const Weight reach = top_f + top_b;
      if (reach >= mu || reach > bound) break;
      if (top_f <= top_b)
        expand(fwd, qf, bwd);
      else
        expand(bwd, qb, fwd);
    }
    // If d(s,t) <= bound then mu == d(s,t) exactly up to the rounding noted
    // above (classical bidirectional termination argument); otherwise mu is
    // the length of some witnessed longer path, or infinity — either way on
    // the "> bound" side.
    return mu;
  }

  template <class Q>
  void seed_source(Vertex s, Q& q) {
    stamp_[s] = epoch_;
    dist_[s] = 0;
    parent_[s] = kInvalidVertex;
    via_[s] = kInvalidEdge;
    q.push(0, s);
  }

  void ensure(std::size_t n);
  void next_epoch();

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_;         ///< dist/parent/via valid iff == epoch_
  std::vector<std::uint32_t> done_;          ///< settled iff == epoch_
  std::vector<std::uint32_t> target_stamp_;  ///< target of this run iff == epoch_
  std::vector<Weight> dist_;
  std::vector<Vertex> parent_;
  std::vector<EdgeId> via_;
  HeapQueue heap_;
  BucketQueue bucket_;
  DeltaQueue delta_;
  SpQueue queue_ = SpQueue::kHeap;
  std::vector<Vertex> order_;

  template <class G>
  static auto arc_visitor(const G& g) {
    return [&g](Vertex v, auto&& relax) {
      for (const auto& a : out_arcs(g, v)) relax(a.to, a.w, a.edge);
    };
  }
};

}  // namespace ftspan
