// DijkstraEngine — the one Dijkstra implementation in this repository.
//
// Every shortest-path computation in src/ (greedy spanner, Thorup–Zwick,
// distance oracle, edge-fault checks, the StretchOracle, and the public
// dijkstra()/pair_distance() wrappers) runs through run_visit() below. The
// engine is a *pooled workspace*: it owns epoch-stamped dist/parent/via
// arrays, a reusable 4-ary heap, and the settle-order log, so that after the
// first run at a given graph size a run performs zero heap allocations —
// invalidation of the previous run's state is an O(1) epoch bump, not an
// O(n) infinity-fill (the trick that bought 17.6x on the validation side in
// validate/scratch.hpp, now shared by the construction side too).
//
// Usage pattern: one engine per thread, reused across runs. Engines are not
// thread-safe; never share one across concurrent callers.
//
// Semantics (identical to the historical implementations it replaces):
//   - `bound`:   a relaxation with tentative distance nd > bound is skipped;
//                vertices beyond the bound stay at infinity.
//   - `targets`: with a non-empty target list the search stops as soon as
//                every (distinct) target is settled; only target entries and
//                parent chains of settled vertices are then final.
//   - `prune_at`: optional per-vertex ceiling; a relaxation with
//                nd >= prune_at[to] is skipped (the Thorup–Zwick cluster
//                truncation d(w, v) < d(v, A_{i+1})).
//   - faulted vertices are never relaxed and never used as sources.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "graph/vertex_set.hpp"

namespace ftspan {

/// Uniform out-arc access for the graph types (Graph adjacency is symmetric,
/// so its "out" arcs are simply the incident arcs).
inline std::span<const Arc> out_arcs(const Graph& g, Vertex v) {
  return g.neighbors(v);
}
inline std::span<const Arc> out_arcs(const Digraph& g, Vertex v) {
  return g.out_neighbors(v);
}
inline std::span<const CsrArc> out_arcs(const Csr& g, Vertex v) {
  return g.out(v);
}

class DijkstraEngine {
 public:
  /// Pre-sizes every internal buffer for an n-vertex graph whose searches
  /// push at most heap_hint entries (2m + #sources is always enough: each
  /// directed arc causes at most one push). Optional — buffers also grow on
  /// demand — but calling it up front makes later runs allocation-free even
  /// on the very first search.
  void reserve(std::size_t n, std::size_t heap_hint);

  /// Single-source run; see the header comment for bound/targets semantics.
  /// G is Graph, Digraph, or Csr. Drop-in replacement for the retired
  /// DijkstraScratch::run.
  template <class G>
  void run(const G& g, Vertex source, const VertexSet* faults = nullptr,
           std::span<const Vertex> targets = {},
           Weight bound = kInfiniteWeight) {
    const Vertex src[1] = {source};
    run_visit(g.num_vertices(), {src, 1}, faults, bound, targets, nullptr,
              arc_visitor(g));
  }

  /// Multi-source run: dist(v) = d(v, sources).
  template <class G>
  void run_multi(const G& g, std::span<const Vertex> sources,
                 const VertexSet* faults = nullptr) {
    run_visit(g.num_vertices(), sources, faults, kInfiniteWeight, {}, nullptr,
              arc_visitor(g));
  }

  /// Truncated single-source run: relaxations with nd >= prune_at[to] are
  /// skipped (prune_at has num_vertices entries).
  template <class G>
  void run_pruned(const G& g, Vertex source, const VertexSet* faults,
                  const Weight* prune_at) {
    const Vertex src[1] = {source};
    run_visit(g.num_vertices(), {src, 1}, faults, kInfiniteWeight, {},
              prune_at, arc_visitor(g));
  }

  /// Single-source run on G minus a set of dead *edges* (the edge-fault
  /// model): arcs whose edge id is marked dead are never relaxed.
  template <class G>
  void run_avoiding_edges(const G& g, Vertex source,
                          const std::vector<char>& dead_edges) {
    const Vertex src[1] = {source};
    const auto inner = arc_visitor(g);
    run_visit(g.num_vertices(), {src, 1}, nullptr, kInfiniteWeight, {},
              nullptr, [&](Vertex v, auto&& relax) {
                inner(v, [&](Vertex to, Weight w, EdgeId edge) {
                  if (!dead_edges[edge]) relax(to, w, edge);
                });
              });
  }

  /// Single-pair distance with early exit once `target` settles; same
  /// semantics as the historical pair_distance (bounded, fault-masked).
  template <class G>
  Weight bounded_pair(const G& g, Vertex source, Vertex target,
                      const VertexSet* faults = nullptr,
                      Weight bound = kInfiniteWeight) {
    const Vertex tgt[1] = {target};
    run(g, source, faults, {tgt, 1}, bound);
    return dist(target);
  }

  // --- results of the most recent run -------------------------------------

  Weight dist(Vertex v) const {
    return stamp_[v] == epoch_ ? dist_[v] : kInfiniteWeight;
  }
  bool reachable(Vertex v) const { return dist(v) < kInfiniteWeight; }
  Vertex parent(Vertex v) const {
    return stamp_[v] == epoch_ ? parent_[v] : kInvalidVertex;
  }
  /// Edge id used to first reach v at its final distance (kInvalidEdge for
  /// sources / unreached vertices, or when the arcs carried no edge ids).
  EdgeId via(Vertex v) const {
    return stamp_[v] == epoch_ ? via_[v] : kInvalidEdge;
  }
  /// True iff v's distance is final (needed after a targeted early exit).
  bool settled(Vertex v) const { return done_[v] == epoch_; }
  /// The vertices settled by the last run, in non-decreasing distance order.
  /// Parents appear before their children, so one forward pass can propagate
  /// any per-root label down the shortest-path tree.
  std::span<const Vertex> settle_order() const { return order_; }

  // --- the core loop ------------------------------------------------------

  /// The single Dijkstra implementation. VisitArcs is called as
  /// visit(v, relax) and must invoke relax(to, w, edge) once per out-arc of
  /// v; every public entry point above is a thin wrapper around this.
  template <class VisitArcs>
  void run_visit(std::size_t n, std::span<const Vertex> sources,
                 const VertexSet* faults, Weight bound,
                 std::span<const Vertex> targets, const Weight* prune_at,
                 VisitArcs&& visit) {
    ensure(n);
    next_epoch();
    heap_.clear();
    order_.clear();

    std::size_t remaining = 0;
    for (const Vertex t : targets)
      if (target_stamp_[t] != epoch_) {
        target_stamp_[t] = epoch_;
        ++remaining;
      }

    for (const Vertex s : sources) {
      if (faults != nullptr && faults->contains(s)) continue;
      if (stamp_[s] == epoch_) continue;  // duplicate source
      stamp_[s] = epoch_;
      dist_[s] = 0;
      parent_[s] = kInvalidVertex;
      via_[s] = kInvalidEdge;
      heap_push({0, s});
    }

    while (!heap_.empty()) {
      const HeapItem item = heap_pop();
      const Vertex v = item.v;
      if (done_[v] == epoch_) continue;  // stale duplicate queue entry
      done_[v] = epoch_;
      order_.push_back(v);
      if (target_stamp_[v] == epoch_ && --remaining == 0) break;
      visit(v, [&](Vertex to, Weight w, EdgeId edge) {
        if (faults != nullptr && faults->contains(to)) return;
        if (done_[to] == epoch_) return;
        const Weight nd = item.d + w;
        if (nd > bound) return;
        if (prune_at != nullptr && nd >= prune_at[to]) return;
        if (stamp_[to] != epoch_ || nd < dist_[to]) {
          stamp_[to] = epoch_;
          dist_[to] = nd;
          parent_[to] = v;
          via_[to] = edge;
          heap_push({nd, to});
        }
      });
    }
  }

  /// Exact bounded s-t distance by *bidirectional* search: two cooperating
  /// half-searches (one per engine) expand alternately — cheaper frontier
  /// first — and stop as soon as the best meeting path is provably optimal
  /// (topF + topB >= mu) or provably longer than `bound`. Explores two
  /// radius-bound/2 balls instead of one radius-bound ball, which is the
  /// asymptotic win on expander-like graphs. Floating-point caveat: a path
  /// is summed in two halves that meet in the middle, so the returned value
  /// can differ from a forward-accumulating run() by accumulated rounding
  /// (~hops * eps, relative); callers whose *decision* compares the result
  /// against a threshold must treat a window around that threshold as
  /// undecided and re-query run() — see GreedyWorkspace::bounded_pair.
  /// Undirected adjacency only: `visit` serves both directions.
  template <class VisitArcs>
  static Weight bidirectional_bounded_pair(DijkstraEngine& fwd,
                                           DijkstraEngine& bwd, std::size_t n,
                                           Vertex s, Vertex t,
                                           const VertexSet* faults,
                                           Weight bound, VisitArcs&& visit) {
    if (s == t) return 0;
    fwd.ensure(n);
    bwd.ensure(n);
    fwd.next_epoch();
    bwd.next_epoch();
    fwd.heap_.clear();
    bwd.heap_.clear();
    fwd.order_.clear();
    bwd.order_.clear();
    if (faults != nullptr && (faults->contains(s) || faults->contains(t)))
      return kInfiniteWeight;

    fwd.seed_source(s);
    bwd.seed_source(t);
    Weight mu = kInfiniteWeight;

    // Settles one vertex of `self`, relaxing its arcs and improving the best
    // meeting length mu against `other`'s stamped (tentative or final)
    // distances — every such combination is the length of a real s-t path.
    const auto expand = [&](DijkstraEngine& self, DijkstraEngine& other) {
      while (!self.heap_.empty()) {
        const HeapItem item = self.heap_pop();
        const Vertex v = item.v;
        if (self.done_[v] == self.epoch_) continue;  // stale duplicate
        self.done_[v] = self.epoch_;
        if (other.stamp_[v] == other.epoch_)
          mu = std::min(mu, item.d + other.dist_[v]);
        visit(v, [&](Vertex to, Weight w, EdgeId edge) {
          if (faults != nullptr && faults->contains(to)) return;
          if (self.done_[to] == self.epoch_) return;
          const Weight nd = item.d + w;
          if (nd > bound) return;
          if (self.stamp_[to] != self.epoch_ || nd < self.dist_[to]) {
            self.stamp_[to] = self.epoch_;
            self.dist_[to] = nd;
            self.parent_[to] = v;
            self.via_[to] = edge;
            self.heap_push({nd, to});
            if (other.stamp_[to] == other.epoch_)
              mu = std::min(mu, nd + other.dist_[to]);
          }
        });
        return;
      }
    };

    for (;;) {
      const Weight top_f =
          fwd.heap_.empty() ? kInfiniteWeight : fwd.heap_.front().d;
      const Weight top_b =
          bwd.heap_.empty() ? kInfiniteWeight : bwd.heap_.front().d;
      if (top_f >= kInfiniteWeight && top_b >= kInfiniteWeight) break;
      const Weight reach = top_f + top_b;
      if (reach >= mu || reach > bound) break;
      if (top_f <= top_b)
        expand(fwd, bwd);
      else
        expand(bwd, fwd);
    }
    // If d(s,t) <= bound then mu == d(s,t) exactly up to the rounding noted
    // above (classical bidirectional termination argument); otherwise mu is
    // the length of some witnessed longer path, or infinity — either way on
    // the "> bound" side.
    return mu;
  }

  // --- epoch plumbing (exposed for the rollover test) ----------------------

  std::uint32_t debug_epoch() const { return epoch_; }
  /// Test hook: jump the epoch counter (e.g. to just below the 32-bit wrap)
  /// so the rollover path is exercisable without 2^32 runs.
  void debug_set_epoch(std::uint32_t e) { epoch_ = e; }

 private:
  struct HeapItem {
    Weight d;
    Vertex v;
  };

  void seed_source(Vertex s) {
    stamp_[s] = epoch_;
    dist_[s] = 0;
    parent_[s] = kInvalidVertex;
    via_[s] = kInvalidEdge;
    heap_push({0, s});
  }

  // 4-ary min-heap: shallower than a binary heap (fewer cache-missing levels
  // per sift) and branch-friendly on the 4-child min scan.
  void heap_push(HeapItem item) {
    heap_.push_back(item);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t p = (i - 1) >> 2;
      if (heap_[p].d <= heap_[i].d) break;
      std::swap(heap_[p], heap_[i]);
      i = p;
    }
  }

  HeapItem heap_pop() {
    const HeapItem top = heap_.front();
    const HeapItem last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      std::size_t i = 0;
      const std::size_t n = heap_.size();
      for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t end = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < end; ++c)
          if (heap_[c].d < heap_[best].d) best = c;
        if (heap_[best].d >= last.d) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

  void ensure(std::size_t n);
  void next_epoch();

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_;         ///< dist/parent/via valid iff == epoch_
  std::vector<std::uint32_t> done_;          ///< settled iff == epoch_
  std::vector<std::uint32_t> target_stamp_;  ///< target of this run iff == epoch_
  std::vector<Weight> dist_;
  std::vector<Vertex> parent_;
  std::vector<EdgeId> via_;
  std::vector<HeapItem> heap_;
  std::vector<Vertex> order_;

  template <class G>
  static auto arc_visitor(const G& g) {
    return [&g](Vertex v, auto&& relax) {
      for (const auto& a : out_arcs(g, v)) relax(a.to, a.w, a.edge);
    };
  }
};

}  // namespace ftspan
