// Csr — an immutable compressed-sparse-row snapshot of a Graph or Digraph.
//
// The adjacency-list types (vector<vector<Arc>>) are convenient to build but
// pointer-chasing to traverse: every vertex's arc list is its own heap
// allocation. The hot loops (the Theorem 2.1 conversion, the StretchOracle)
// traverse adjacency millions of times over a graph that never changes, so
// they take a one-time O(n + m) snapshot into two flat arrays — offsets and
// arcs — and scan those instead. Arc order within a vertex is preserved
// exactly, so any order-dependent tie-breaking (e.g. the oracle's witness
// selection) is unchanged by the snapshot.
//
// The snapshot is templated on the offset width. `Csr` (32-bit offsets) is
// the default: offsets stay half the size, which matters in the hot loops,
// and 2^32 - 1 arcs cover every in-memory workload. `Csr64` lifts that
// ceiling for million-to-billion-arc graphs — same layout, 64-bit offsets —
// and `make_csr_auto` picks the width from the arc count. `CsrView` is the
// non-owning variant over externally owned arrays (64-bit offsets, the
// ftspan.graph.v1 on-disk layout — see graph/graph_file.hpp), so an mmap'ed
// graph is traversable without copying a byte.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace ftspan {

/// Aggregate weight facts hoisted out of the hot loops: computed once per
/// graph snapshot (Csr::build, GreedyContext) instead of tracked per added
/// edge. Shared by the greedy tie-window fast path, the engine's
/// heap-vs-bucket `auto` selection, and the StretchOracle scratch setup.
struct WeightProfile {
  bool integral = true;    ///< every observed weight is a non-negative integer
  Weight max_weight = 0;   ///< largest observed weight
  Weight total_weight = 0; ///< sum of observed weights (exactness guard)

  void observe(Weight w) {
    integral = integral && w >= 0 && w == std::floor(w);
    max_weight = std::max(max_weight, w);
    total_weight += w;
  }

  /// True when every path sum over these weights is exactly representable in
  /// a double regardless of summation order: integers with a total far below
  /// 2^53, so no intermediate sum can round.
  bool exact_sums() const { return integral && total_weight < 4.0e15; }
};

/// Flat adjacency entry. Same fields as Arc, packed so a vertex's arcs sit in
/// one contiguous 16-byte-strided run.
struct CsrArc {
  Vertex to = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
  Weight w = 1.0;
};

/// True when `num_arcs` overflows the 32-bit Csr's offset space and the
/// 64-bit `Csr64` (or the always-64-bit on-disk layout) must carry the graph.
inline constexpr bool csr_needs_64bit(std::size_t num_arcs) {
  return num_arcs > std::numeric_limits<std::uint32_t>::max();
}

/// The refusal policy behind the 32-bit snapshot: a graph with >= 2^32 arcs
/// (2^31 undirected edges) would wrap 32-bit offsets into non-monotonic
/// garbage. Exposed as a function so the message is unit-testable without
/// materializing a 2^32-arc graph.
template <class Offset>
void csr_check_arc_capacity(std::size_t num_arcs) {
  if (num_arcs <= static_cast<std::size_t>(std::numeric_limits<Offset>::max()))
    return;
  throw std::length_error(
      "Csr: arc count " + std::to_string(num_arcs) +
      " exceeds the 32-bit offset ceiling " +
      std::to_string(std::numeric_limits<Offset>::max()) +
      "; snapshot this graph into the 64-bit-offset Csr64 instead "
      "(make_csr_auto selects it automatically)");
}

template <class Offset>
class BasicCsr {
 public:
  BasicCsr() = default;

  /// Snapshot of an undirected graph: both directions of every edge.
  explicit BasicCsr(const Graph& g) {
    build(g.num_vertices(), [&g](Vertex v) { return g.neighbors(v); });
  }

  /// Snapshot of a digraph's out-arcs.
  explicit BasicCsr(const Digraph& g) {
    build(g.num_vertices(), [&g](Vertex v) { return g.out_neighbors(v); });
  }

  /// Snapshot built straight from an undirected edge array (edge id =
  /// position), without materializing adjacency lists — the path the binary
  /// graph writer and the streaming importer take. Arc order per vertex is
  /// edge-id order, which is exactly the order BasicCsr(Graph) produces for
  /// a Graph built by inserting `edges` in sequence.
  static BasicCsr from_edges(std::size_t n, std::span<const Edge> edges) {
    BasicCsr out;
    if (edges.size() > static_cast<std::size_t>(kInvalidEdge))
      throw std::length_error(
          "Csr::from_edges: edge count exceeds the 32-bit edge-id space");
    csr_check_arc_capacity<Offset>(edges.size() * 2);
    out.offsets_.assign(n + 1, 0);
    for (const Edge& e : edges) {
      ++out.offsets_[e.u + 1];
      ++out.offsets_[e.v + 1];
    }
    for (std::size_t v = 0; v < n; ++v) out.offsets_[v + 1] += out.offsets_[v];
    out.arcs_.resize(edges.size() * 2);
    std::vector<Offset> cursor(out.offsets_.begin(), out.offsets_.end() - 1);
    for (EdgeId id = 0; id < edges.size(); ++id) {
      const Edge& e = edges[id];
      out.arcs_[cursor[e.u]++] = {e.v, id, e.w};
      out.arcs_[cursor[e.v]++] = {e.u, id, e.w};
    }
    for (const CsrArc& a : out.arcs_) out.profile_.observe(a.w);
    return out;
  }

  std::size_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_arcs() const { return arcs_.size(); }

  std::span<const CsrArc> out(Vertex v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }
  std::size_t degree(Vertex v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Weight facts over all arcs, computed once at build (an undirected
  /// snapshot observes each edge twice — the integral/max facts are
  /// unaffected and total_weight is merely a conservative doubling for the
  /// exact_sums() guard).
  const WeightProfile& weights() const { return profile_; }

  /// The raw arrays, exposed for the binary graph writer (graph_file.cpp)
  /// and for structural tests. Offsets have n + 1 entries; arcs of v are
  /// [offsets()[v], offsets()[v + 1]).
  std::span<const Offset> offsets() const { return offsets_; }
  std::span<const CsrArc> arcs() const { return arcs_; }

 private:
  template <class NeighborFn>
  void build(std::size_t n, NeighborFn&& neighbors) {
    offsets_.resize(n + 1);
    std::size_t total = 0;
    for (Vertex v = 0; v < n; ++v) {
      offsets_[v] = static_cast<Offset>(total);
      total += neighbors(v).size();
    }
    csr_check_arc_capacity<Offset>(total);
    offsets_[n] = static_cast<Offset>(total);
    arcs_.reserve(total);
    for (Vertex v = 0; v < n; ++v)
      for (const Arc& a : neighbors(v)) {
        arcs_.push_back({a.to, a.edge, a.w});
        profile_.observe(a.w);
      }
  }

  std::vector<Offset> offsets_;  ///< n + 1 entries; arcs of v are [offsets_[v], offsets_[v+1])
  std::vector<CsrArc> arcs_;
  WeightProfile profile_;
};

/// The default snapshot: 32-bit offsets, enough for 2^32 - 1 arcs.
using Csr = BasicCsr<std::uint32_t>;
/// The 64-bit-offset variant for graphs past the 32-bit arc ceiling.
using Csr64 = BasicCsr<std::uint64_t>;

/// Width-erased snapshot plus the selector that picks the narrow offsets
/// whenever they fit (hot-loop cache win) and falls over to 64-bit offsets
/// exactly when the arc count demands them. Visit with std::visit — every
/// consumer of a snapshot is already templated on the graph type.
using CsrAuto = std::variant<Csr, Csr64>;

inline CsrAuto make_csr_auto(const Graph& g) {
  if (csr_needs_64bit(g.num_edges() * 2)) return Csr64(g);
  return Csr(g);
}

inline CsrAuto make_csr_auto(const Digraph& g) {
  if (csr_needs_64bit(g.num_edges())) return Csr64(g);
  return Csr(g);
}

/// Non-owning CSR over externally owned arrays — the traversal interface of
/// BasicCsr (out/degree/weights) without the copy. This is how an
/// mmap-loaded ftspan.graph.v1 graph is walked in place: the offsets and
/// arcs spans point straight into the mapping (64-bit offsets, the on-disk
/// width). The arrays must outlive the view and satisfy the CSR invariants
/// (monotone offsets, offsets.front() == 0, offsets.back() == arcs.size());
/// the binary loader validates them before handing a view out.
class CsrView {
 public:
  CsrView() = default;
  CsrView(std::span<const std::uint64_t> offsets, std::span<const CsrArc> arcs,
          const WeightProfile& profile)
      : offsets_(offsets), arcs_(arcs), profile_(profile) {}

  std::size_t num_vertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_arcs() const { return arcs_.size(); }

  std::span<const CsrArc> out(Vertex v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }
  std::size_t degree(Vertex v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  const WeightProfile& weights() const { return profile_; }

 private:
  std::span<const std::uint64_t> offsets_;
  std::span<const CsrArc> arcs_;
  WeightProfile profile_;
};

}  // namespace ftspan
