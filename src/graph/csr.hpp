// Csr — an immutable compressed-sparse-row snapshot of a Graph or Digraph.
//
// The adjacency-list types (vector<vector<Arc>>) are convenient to build but
// pointer-chasing to traverse: every vertex's arc list is its own heap
// allocation. The hot loops (the Theorem 2.1 conversion, the StretchOracle)
// traverse adjacency millions of times over a graph that never changes, so
// they take a one-time O(n + m) snapshot into two flat arrays — offsets and
// arcs — and scan those instead. Arc order within a vertex is preserved
// exactly, so any order-dependent tie-breaking (e.g. the oracle's witness
// selection) is unchanged by the snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace ftspan {

/// Flat adjacency entry. Same fields as Arc, packed so a vertex's arcs sit in
/// one contiguous 16-byte-strided run.
struct CsrArc {
  Vertex to = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
  Weight w = 1.0;
};

class Csr {
 public:
  Csr() = default;

  /// Snapshot of an undirected graph: both directions of every edge.
  explicit Csr(const Graph& g) {
    build(g.num_vertices(), [&g](Vertex v) { return g.neighbors(v); });
  }

  /// Snapshot of a digraph's out-arcs.
  explicit Csr(const Digraph& g) {
    build(g.num_vertices(), [&g](Vertex v) { return g.out_neighbors(v); });
  }

  std::size_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_arcs() const { return arcs_.size(); }

  std::span<const CsrArc> out(Vertex v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }
  std::size_t degree(Vertex v) const { return offsets_[v + 1] - offsets_[v]; }

 private:
  template <class NeighborFn>
  void build(std::size_t n, NeighborFn&& neighbors) {
    offsets_.resize(n + 1);
    std::size_t total = 0;
    for (Vertex v = 0; v < n; ++v) {
      offsets_[v] = static_cast<std::uint32_t>(total);
      total += neighbors(v).size();
    }
    // Offsets are 32-bit; a graph with >= 2^32 arcs (2^31 undirected edges)
    // would wrap them into non-monotonic garbage. Same refusal policy as the
    // Graph/Digraph vertex-count guards.
    if (total > std::numeric_limits<std::uint32_t>::max())
      throw std::length_error("Csr: arc count exceeds the 32-bit offset space");
    offsets_[n] = static_cast<std::uint32_t>(total);
    arcs_.reserve(total);
    for (Vertex v = 0; v < n; ++v)
      for (const Arc& a : neighbors(v)) arcs_.push_back({a.to, a.edge, a.w});
  }

  std::vector<std::uint32_t> offsets_;  ///< n + 1 entries; arcs of v are [offsets_[v], offsets_[v+1])
  std::vector<CsrArc> arcs_;
};

}  // namespace ftspan
