// Csr — an immutable compressed-sparse-row snapshot of a Graph or Digraph.
//
// The adjacency-list types (vector<vector<Arc>>) are convenient to build but
// pointer-chasing to traverse: every vertex's arc list is its own heap
// allocation. The hot loops (the Theorem 2.1 conversion, the StretchOracle)
// traverse adjacency millions of times over a graph that never changes, so
// they take a one-time O(n + m) snapshot into two flat arrays — offsets and
// arcs — and scan those instead. Arc order within a vertex is preserved
// exactly, so any order-dependent tie-breaking (e.g. the oracle's witness
// selection) is unchanged by the snapshot.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace ftspan {

/// Aggregate weight facts hoisted out of the hot loops: computed once per
/// graph snapshot (Csr::build, GreedyContext) instead of tracked per added
/// edge. Shared by the greedy tie-window fast path, the engine's
/// heap-vs-bucket `auto` selection, and the StretchOracle scratch setup.
struct WeightProfile {
  bool integral = true;    ///< every observed weight is a non-negative integer
  Weight max_weight = 0;   ///< largest observed weight
  Weight total_weight = 0; ///< sum of observed weights (exactness guard)

  void observe(Weight w) {
    integral = integral && w >= 0 && w == std::floor(w);
    max_weight = std::max(max_weight, w);
    total_weight += w;
  }

  /// True when every path sum over these weights is exactly representable in
  /// a double regardless of summation order: integers with a total far below
  /// 2^53, so no intermediate sum can round.
  bool exact_sums() const { return integral && total_weight < 4.0e15; }
};

/// Flat adjacency entry. Same fields as Arc, packed so a vertex's arcs sit in
/// one contiguous 16-byte-strided run.
struct CsrArc {
  Vertex to = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
  Weight w = 1.0;
};

class Csr {
 public:
  Csr() = default;

  /// Snapshot of an undirected graph: both directions of every edge.
  explicit Csr(const Graph& g) {
    build(g.num_vertices(), [&g](Vertex v) { return g.neighbors(v); });
  }

  /// Snapshot of a digraph's out-arcs.
  explicit Csr(const Digraph& g) {
    build(g.num_vertices(), [&g](Vertex v) { return g.out_neighbors(v); });
  }

  std::size_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_arcs() const { return arcs_.size(); }

  std::span<const CsrArc> out(Vertex v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }
  std::size_t degree(Vertex v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Weight facts over all arcs, computed once at build (an undirected
  /// snapshot observes each edge twice — the integral/max facts are
  /// unaffected and total_weight is merely a conservative doubling for the
  /// exact_sums() guard).
  const WeightProfile& weights() const { return profile_; }

 private:
  template <class NeighborFn>
  void build(std::size_t n, NeighborFn&& neighbors) {
    offsets_.resize(n + 1);
    std::size_t total = 0;
    for (Vertex v = 0; v < n; ++v) {
      offsets_[v] = static_cast<std::uint32_t>(total);
      total += neighbors(v).size();
    }
    // Offsets are 32-bit; a graph with >= 2^32 arcs (2^31 undirected edges)
    // would wrap them into non-monotonic garbage. Same refusal policy as the
    // Graph/Digraph vertex-count guards.
    if (total > std::numeric_limits<std::uint32_t>::max())
      throw std::length_error("Csr: arc count exceeds the 32-bit offset space");
    offsets_[n] = static_cast<std::uint32_t>(total);
    arcs_.reserve(total);
    for (Vertex v = 0; v < n; ++v)
      for (const Arc& a : neighbors(v)) {
        arcs_.push_back({a.to, a.edge, a.w});
        profile_.observe(a.w);
      }
  }

  std::vector<std::uint32_t> offsets_;  ///< n + 1 entries; arcs of v are [offsets_[v], offsets_[v+1])
  std::vector<CsrArc> arcs_;
  WeightProfile profile_;
};

}  // namespace ftspan
