#include "graph/shortest_paths.hpp"

#include <queue>

namespace ftspan {

namespace {

struct QueueItem {
  Weight dist;
  Vertex v;
  bool operator>(const QueueItem& o) const { return dist > o.dist; }
};

using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

template <class NeighborFn>
ShortestPathTree dijkstra_impl(std::size_t n, Vertex source,
                               const VertexSet* faults,
                               std::optional<Weight> bound,
                               std::optional<Vertex> target,
                               NeighborFn&& neighbors) {
  ShortestPathTree t;
  t.dist.assign(n, kInfiniteWeight);
  t.parent.assign(n, kInvalidVertex);
  if (faults != nullptr && faults->contains(source)) return t;

  MinQueue q;
  t.dist[source] = 0;
  q.push({0, source});
  while (!q.empty()) {
    const auto [d, v] = q.top();
    q.pop();
    if (d > t.dist[v]) continue;  // stale entry
    if (target && v == *target) break;
    for (const Arc& a : neighbors(v)) {
      if (faults != nullptr && faults->contains(a.to)) continue;
      const Weight nd = d + a.w;
      if (bound && nd > *bound) continue;
      if (nd < t.dist[a.to]) {
        t.dist[a.to] = nd;
        t.parent[a.to] = v;
        q.push({nd, a.to});
      }
    }
  }
  return t;
}

}  // namespace

ShortestPathTree dijkstra(const Graph& g, Vertex source,
                          const VertexSet* faults,
                          std::optional<Weight> bound) {
  return dijkstra_impl(g.num_vertices(), source, faults, bound, std::nullopt,
                       [&g](Vertex v) { return g.neighbors(v); });
}

ShortestPathTree bfs(const Graph& g, Vertex source, const VertexSet* faults,
                     std::optional<std::size_t> max_hops) {
  ShortestPathTree t;
  const std::size_t n = g.num_vertices();
  t.dist.assign(n, kInfiniteWeight);
  t.parent.assign(n, kInvalidVertex);
  if (faults != nullptr && faults->contains(source)) return t;

  std::queue<Vertex> q;
  t.dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    const Weight d = t.dist[v];
    if (max_hops && d >= static_cast<Weight>(*max_hops)) continue;
    for (const Arc& a : g.neighbors(v)) {
      if (faults != nullptr && faults->contains(a.to)) continue;
      if (t.dist[a.to] < kInfiniteWeight) continue;
      t.dist[a.to] = d + 1;
      t.parent[a.to] = v;
      q.push(a.to);
    }
  }
  return t;
}

Weight pair_distance(const Graph& g, Vertex s, Vertex t,
                     const VertexSet* faults, std::optional<Weight> bound) {
  const ShortestPathTree tree =
      dijkstra_impl(g.num_vertices(), s, faults, bound, t,
                    [&g](Vertex v) { return g.neighbors(v); });
  return tree.dist[t];
}

std::vector<std::vector<Weight>> all_pairs_distances(const Graph& g,
                                                     const VertexSet* faults) {
  std::vector<std::vector<Weight>> d;
  d.reserve(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    d.push_back(dijkstra(g, v, faults).dist);
  return d;
}

ShortestPathTree dijkstra(const Digraph& g, Vertex source,
                          const VertexSet* faults,
                          std::optional<Weight> bound) {
  return dijkstra_impl(g.num_vertices(), source, faults, bound, std::nullopt,
                       [&g](Vertex v) { return g.out_neighbors(v); });
}

}  // namespace ftspan
