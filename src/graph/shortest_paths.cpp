#include "graph/shortest_paths.hpp"

#include <queue>

#include "graph/sp_engine.hpp"

namespace ftspan {

namespace {

// One pooled engine per thread: the convenience wrappers below stay
// allocation-free in the search itself and only pay for the O(n) result
// materialization their return type requires.
DijkstraEngine& engine() {
  thread_local DijkstraEngine eng;
  return eng;
}

ShortestPathTree export_tree(const DijkstraEngine& eng, std::size_t n) {
  ShortestPathTree t;
  t.dist.resize(n);
  t.parent.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    t.dist[v] = eng.dist(v);
    t.parent[v] = eng.parent(v);
  }
  return t;
}

}  // namespace

ShortestPathTree dijkstra(const Graph& g, Vertex source,
                          const VertexSet* faults,
                          std::optional<Weight> bound) {
  DijkstraEngine& eng = engine();
  eng.run(g, source, faults, {}, bound.value_or(kInfiniteWeight));
  return export_tree(eng, g.num_vertices());
}

ShortestPathTree bfs(const Graph& g, Vertex source, const VertexSet* faults,
                     std::optional<std::size_t> max_hops) {
  ShortestPathTree t;
  const std::size_t n = g.num_vertices();
  t.dist.assign(n, kInfiniteWeight);
  t.parent.assign(n, kInvalidVertex);
  if (faults != nullptr && faults->contains(source)) return t;

  std::queue<Vertex> q;
  t.dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    const Weight d = t.dist[v];
    if (max_hops && d >= static_cast<Weight>(*max_hops)) continue;
    for (const Arc& a : g.neighbors(v)) {
      if (faults != nullptr && faults->contains(a.to)) continue;
      if (t.dist[a.to] < kInfiniteWeight) continue;
      t.dist[a.to] = d + 1;
      t.parent[a.to] = v;
      q.push(a.to);
    }
  }
  return t;
}

Weight pair_distance(const Graph& g, Vertex s, Vertex t,
                     const VertexSet* faults, std::optional<Weight> bound) {
  return engine().bounded_pair(g, s, t, faults,
                               bound.value_or(kInfiniteWeight));
}

std::vector<std::vector<Weight>> all_pairs_distances(const Graph& g,
                                                     const VertexSet* faults) {
  std::vector<std::vector<Weight>> d;
  d.reserve(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    d.push_back(dijkstra(g, v, faults).dist);
  return d;
}

ShortestPathTree dijkstra(const Digraph& g, Vertex source,
                          const VertexSet* faults,
                          std::optional<Weight> bound) {
  DijkstraEngine& eng = engine();
  eng.run(g, source, faults, {}, bound.value_or(kInfiniteWeight));
  return export_tree(eng, g.num_vertices());
}

}  // namespace ftspan
