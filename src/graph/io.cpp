#include "graph/io.hpp"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ftspan {

namespace {

/// Reads the next non-comment, non-empty line into `line`; false at EOF.
bool next_content_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    return true;
  }
  return false;
}

/// After the expected fields parsed, only whitespace (including the \r a
/// CRLF file leaves behind) or an inline '#' comment may remain.
bool only_trailing_comment(std::istringstream& ls) {
  char ch;
  if (!(ls >> ch)) return true;  // whitespace-only tail
  return ch == '#';
}

struct Header {
  std::size_t n;
  std::size_t m;
  char kind;
};

Header read_header(std::istream& is) {
  std::string line;
  if (!next_content_line(is, line))
    throw std::runtime_error("graph io: missing header line");
  std::istringstream ls(line);
  Header h{};
  if (!(ls >> h.n >> h.m >> h.kind) || !only_trailing_comment(ls))
    throw std::runtime_error("graph io: malformed header: " + line);
  h.kind = static_cast<char>(
      std::tolower(static_cast<unsigned char>(h.kind)));
  if (h.kind != 'u' && h.kind != 'd')
    throw std::runtime_error("graph io: malformed header: " + line);
  return h;
}

}  // namespace

void write_graph(std::ostream& os, const Graph& g) {
  os << std::setprecision(17);  // round-trip exact for doubles
  os << g.num_vertices() << " " << g.num_edges() << " u\n";
  for (const Edge& e : g.edges()) os << e.u << " " << e.v << " " << e.w << "\n";
}

void write_digraph(std::ostream& os, const Digraph& g) {
  os << std::setprecision(17);
  os << g.num_vertices() << " " << g.num_edges() << " d\n";
  for (const DiEdge& e : g.edges())
    os << e.u << " " << e.v << " " << e.w << "\n";
}

Graph read_graph(std::istream& is) {
  const Header h = read_header(is);
  if (h.kind != 'u')
    throw std::runtime_error("graph io: expected undirected ('u') header");
  Graph g(h.n);
  std::string line;
  for (std::size_t i = 0; i < h.m; ++i) {
    if (!next_content_line(is, line))
      throw std::runtime_error("graph io: truncated edge list");
    std::istringstream ls(line);
    Vertex u, v;
    Weight w;
    if (!(ls >> u >> v >> w) || !only_trailing_comment(ls))
      throw std::runtime_error("graph io: malformed edge: " + line);
    g.add_edge(u, v, w);
  }
  return g;
}

Digraph read_digraph(std::istream& is) {
  const Header h = read_header(is);
  if (h.kind != 'd')
    throw std::runtime_error("graph io: expected directed ('d') header");
  Digraph g(h.n);
  std::string line;
  for (std::size_t i = 0; i < h.m; ++i) {
    if (!next_content_line(is, line))
      throw std::runtime_error("graph io: truncated edge list");
    std::istringstream ls(line);
    Vertex u, v;
    Weight w;
    if (!(ls >> u >> v >> w) || !only_trailing_comment(ls))
      throw std::runtime_error("graph io: malformed edge: " + line);
    g.add_edge(u, v, w);
  }
  return g;
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("graph io: cannot open " + path);
  write_graph(os, g);
}

Graph load_graph(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("graph io: cannot open " + path);
  return read_graph(is);
}

}  // namespace ftspan
