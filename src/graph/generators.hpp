// Graph generators for tests, examples, and the benchmark workloads.
//
// All generators are deterministic given the seed. Weighted variants draw
// lengths uniformly from [1, max_weight]; unit-weight graphs use w = 1.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ftspan {

/// Erdős–Rényi G(n, p).
Graph gnp(std::size_t n, double p, std::uint64_t seed, double max_weight = 1.0);

/// G(n, p) conditioned on connectivity: resamples (new sub-seed) until the
/// graph is connected; throws after `max_attempts` failures.
Graph gnp_connected(std::size_t n, double p, std::uint64_t seed,
                    double max_weight = 1.0, int max_attempts = 64);

/// Random geometric graph: n points uniform in the unit square, edge between
/// points at Euclidean distance <= radius, length = distance. A standard
/// proxy for road/sensor networks.
Graph random_geometric(std::size_t n, double radius, std::uint64_t seed);

/// 2-D grid graph (rows x cols), unit lengths.
Graph grid(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube (2^d vertices), unit lengths.
Graph hypercube(std::size_t d);

/// Complete graph K_n, unit lengths.
Graph complete(std::size_t n);

/// Complete bipartite graph K_{a,b}, unit lengths. Every edge of K_{a,b}
/// must appear in any 2-spanner — the paper's Ω(n²) example for k = 2.
Graph complete_bipartite(std::size_t a, std::size_t b);

/// Path P_n, cycle C_n, star S_n (center 0), unit lengths.
Graph path(std::size_t n);
Graph cycle(std::size_t n);
Graph star(std::size_t n);

/// Barabási–Albert preferential attachment: each new vertex attaches to m
/// distinct existing vertices sampled proportionally to degree.
Graph barabasi_albert(std::size_t n, std::size_t m, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta.
Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                     std::uint64_t seed);

/// Random graph with (approximately) regular degree d: d/2 superimposed
/// random perfect matchings / cycles (simple union).
Graph random_regular_ish(std::size_t n, std::size_t d, std::uint64_t seed);

/// Road-like network: a rows x cols grid whose segment lengths carry ±10%
/// jitter (no two blocks are exactly alike) plus, per grid cell, one
/// diagonal shortcut with probability shortcut_prob (length ~ sqrt(2) with
/// the same jitter). Low degree and near-planar — a street-network stand-in
/// where the geometric disk model is too dense.
Graph road_like(std::size_t rows, std::size_t cols, double shortcut_prob,
                std::uint64_t seed);

/// Worst-case tie workload: G(n, p) whose lengths are drawn from the
/// `levels` decimal values 1.0, 1.1, ..., 1.0 + (levels-1)/10. The tiny
/// weight alphabet maximizes shortest-path and greedy-scan tie-breaking
/// pressure — the adversarial case for visit-order-sensitive code.
Graph tie_dense(std::size_t n, double p, std::size_t levels,
                std::uint64_t seed);

// --- Directed generators (Section 3 workloads) ---

/// Directed G(n, p): each ordered pair (u, v), u != v, is an arc with
/// probability p; costs uniform in [1, max_cost] (1 when max_cost = 1).
Digraph di_gnp(std::size_t n, double p, std::uint64_t seed,
               double max_cost = 1.0);

/// Directed complete graph on n vertices with unit costs — the paper's
/// Ω(r) integrality-gap example for LP (2) (Section 3.1).
Digraph di_complete(std::size_t n);

/// Bidirected version of an undirected graph (each edge becomes two arcs of
/// the same cost).
Digraph bidirect(const Graph& g);

/// Directed random graph with max in/out degree <= delta (for Theorem 3.4
/// experiments): repeatedly add random arcs subject to the degree cap.
Digraph di_bounded_degree(std::size_t n, std::size_t delta, double density,
                          std::uint64_t seed);

/// The paper's Section 3.2 gap gadget: vertices u, v, w_1..w_r; an expensive
/// arc u -> v of cost M and unit-cost arcs u -> w_i -> v. LP (3) (without
/// knapsack-cover inequalities) has value ~ M/(r+1) + 2r while OPT >= M.
Digraph gap_gadget(std::size_t r, double big_cost);

}  // namespace ftspan
