// Fundamental graph types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace ftspan {

/// Vertex identifier; vertices of an n-vertex graph are 0 .. n-1.
using Vertex = std::uint32_t;

/// Edge identifier; dense, assigned in insertion order.
using EdgeId = std::uint32_t;

/// Edge length (Section 2) or edge cost (Section 3). Non-negative.
using Weight = double;

inline constexpr Vertex kInvalidVertex = std::numeric_limits<Vertex>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr Weight kInfiniteWeight = std::numeric_limits<Weight>::infinity();

/// Relative slack applied to a stretch bound before a distance is compared
/// against it, so that floating-point ties ("distance exactly k * w") land on
/// the reachable side. Shared by every construction that bounds a
/// shortest-path search by k * w(e).
inline constexpr double kStretchSlack = 1e-12;

/// Relative tolerance used when a *measured* stretch is compared against the
/// certified bound k (validators accept stretch <= k * (1 + tolerance)).
/// Looser than kStretchSlack because measured stretches accumulate rounding
/// from two independent shortest-path sums.
inline constexpr double kStretchCheckTolerance = 1e-9;

/// An undirected edge {u, v} with length w.
struct Edge {
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;
  Weight w = 1.0;

  /// The endpoint that is not `x`. Precondition: x is an endpoint.
  Vertex other(Vertex x) const { return x == u ? v : u; }
};

/// A directed edge (arc) u -> v with cost w.
struct DiEdge {
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;
  Weight w = 1.0;
};

/// Adjacency-list entry: neighbor, weight, and the id of the crossed edge.
struct Arc {
  Vertex to = kInvalidVertex;
  Weight w = 1.0;
  EdgeId edge = kInvalidEdge;
};

}  // namespace ftspan
