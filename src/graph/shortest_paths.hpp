// Shortest-path routines, all fault-mask aware.
//
// Every routine accepts an optional VertexSet of failed vertices; failed
// vertices are treated as removed (never relaxed, never used as midpoints),
// which is exactly the G \ F semantics of the fault-tolerance definition.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace ftspan {

/// Result of a single-source run: dist[v] (kInfiniteWeight if unreachable)
/// and parent[v] (kInvalidVertex for the source / unreachable vertices).
struct ShortestPathTree {
  std::vector<Weight> dist;
  std::vector<Vertex> parent;

  bool reachable(Vertex v) const { return dist[v] < kInfiniteWeight; }
};

/// Dijkstra from `source` on G \ faults. If `bound` is given, vertices
/// farther than bound are left at infinity (early exit — used by the greedy
/// spanner, where only distances <= k * w(e) matter).
ShortestPathTree dijkstra(const Graph& g, Vertex source,
                          const VertexSet* faults = nullptr,
                          std::optional<Weight> bound = std::nullopt);

/// Unweighted BFS (hop counts) from `source` on G \ faults, optionally
/// stopping at `max_hops`.
ShortestPathTree bfs(const Graph& g, Vertex source,
                     const VertexSet* faults = nullptr,
                     std::optional<std::size_t> max_hops = std::nullopt);

/// Single-pair distance on G \ faults (Dijkstra with early target exit).
Weight pair_distance(const Graph& g, Vertex s, Vertex t,
                     const VertexSet* faults = nullptr,
                     std::optional<Weight> bound = std::nullopt);

/// All-pairs distances (n Dijkstra runs); intended for small graphs.
std::vector<std::vector<Weight>> all_pairs_distances(
    const Graph& g, const VertexSet* faults = nullptr);

/// Dijkstra on a digraph following out-arcs.
ShortestPathTree dijkstra(const Digraph& g, Vertex source,
                          const VertexSet* faults = nullptr,
                          std::optional<Weight> bound = std::nullopt);

}  // namespace ftspan
