#include "graph/generators.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/properties.hpp"

namespace ftspan {

namespace {

Weight draw_weight(Rng& rng, double max_weight) {
  if (max_weight <= 1.0) return 1.0;
  return rng.uniform(1.0, max_weight);
}

}  // namespace

Graph gnp(std::size_t n, double p, std::uint64_t seed, double max_weight) {
  Rng rng(seed);
  Graph g(n);
  if (p <= 0) return g;
  if (p >= 1) {
    for (Vertex u = 0; u + 1 < n; ++u)
      for (Vertex v = u + 1; v < n; ++v)
        g.add_edge(u, v, draw_weight(rng, max_weight));
    return g;
  }
  // Geometric skipping (Batagelj–Brandes): expected O(n + m) time.
  const double log_q = std::log1p(-p);
  std::int64_t u = 1, v = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (u < nn) {
    const double x = 1.0 - rng.uniform();  // in (0, 1]
    v += 1 + static_cast<std::int64_t>(std::floor(std::log(x) / log_q));
    while (v >= u && u < nn) {
      v -= u;
      ++u;
    }
    if (u < nn)
      g.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v),
                 draw_weight(rng, max_weight));
  }
  return g;
}

Graph gnp_connected(std::size_t n, double p, std::uint64_t seed,
                    double max_weight, int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Graph g = gnp(n, p, hash_combine(seed, static_cast<std::uint64_t>(attempt)),
                  max_weight);
    if (is_connected(g)) return g;
  }
  throw std::runtime_error(
      "gnp_connected: no connected sample found; p is likely below the "
      "connectivity threshold");
}

Graph random_geometric(std::size_t n, double radius, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  Graph g(n);
  const double r2 = radius * radius;
  for (Vertex u = 0; u + 1 < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) {
      const double dx = x[u] - x[v];
      const double dy = y[u] - y[v];
      const double d2 = dx * dx + dy * dy;
      if (d2 <= r2) g.add_edge(u, v, std::max(std::sqrt(d2), 1e-9));
    }
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  return g;
}

Graph hypercube(std::size_t d) {
  const std::size_t n = std::size_t{1} << d;
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t b = 0; b < d; ++b) {
      const std::size_t u = v ^ (std::size_t{1} << b);
      if (u > v) g.add_edge(static_cast<Vertex>(v), static_cast<Vertex>(u));
    }
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (Vertex u = 0; u + 1 < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  Graph g(a + b);
  for (Vertex u = 0; u < a; ++u)
    for (Vertex v = 0; v < b; ++v)
      g.add_edge(u, static_cast<Vertex>(a + v));
  return g;
}

Graph path(std::size_t n) {
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle(std::size_t n) {
  Graph g = path(n);
  if (n >= 3) g.add_edge(static_cast<Vertex>(n - 1), 0);
  return g;
}

Graph star(std::size_t n) {
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t m, std::uint64_t seed) {
  if (n <= m) return complete(n);
  Rng rng(seed);
  Graph g(n);
  // Start from a clique on m+1 vertices so every new vertex has m targets.
  std::vector<Vertex> chances;  // vertex repeated once per incident edge
  for (Vertex u = 0; u <= m; ++u)
    for (Vertex v = u + 1; v <= m; ++v) {
      g.add_edge(u, v);
      chances.push_back(u);
      chances.push_back(v);
    }
  for (Vertex v = static_cast<Vertex>(m + 1); v < n; ++v) {
    VertexSet picked(n);
    std::size_t added = 0;
    while (added < m) {
      const Vertex t = chances[rng.uniform_index(chances.size())];
      if (picked.contains(t)) continue;
      picked.insert(t);
      g.add_edge(v, t);
      ++added;
    }
    for (Vertex t : picked.to_vector()) {
      chances.push_back(v);
      chances.push_back(t);
    }
  }
  return g;
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                     std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t j = 1; j <= k; ++j) {
      Vertex u = static_cast<Vertex>(v);
      Vertex w = static_cast<Vertex>((v + j) % n);
      if (rng.bernoulli(beta)) {
        // Rewire the far endpoint to a uniform non-neighbor.
        for (int tries = 0; tries < 32; ++tries) {
          const Vertex cand = static_cast<Vertex>(rng.uniform_index(n));
          if (cand != u && !g.has_edge(u, cand)) {
            w = cand;
            break;
          }
        }
      }
      g.add_edge(u, w);
    }
  return g;
}

Graph random_regular_ish(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  std::vector<Vertex> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<Vertex>(i);
  // d random Hamiltonian cycles superimposed: every vertex gets ~2 edges per
  // cycle, duplicates silently skipped.
  const std::size_t cycles = (d + 1) / 2;
  for (std::size_t c = 0; c < cycles; ++c) {
    rng.shuffle(perm);
    for (std::size_t i = 0; i < n; ++i)
      g.add_edge(perm[i], perm[(i + 1) % n]);
  }
  return g;
}

Graph road_like(std::size_t rows, std::size_t cols, double shortcut_prob,
                std::uint64_t seed) {
  Rng rng(seed);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  auto jitter = [&rng] { return 1.0 + 0.2 * (rng.uniform() - 0.5); };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), jitter());
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), jitter());
      if (r + 1 < rows && c + 1 < cols && rng.bernoulli(shortcut_prob))
        g.add_edge(id(r, c), id(r + 1, c + 1), std::sqrt(2.0) * jitter());
    }
  return g;
}

Graph tie_dense(std::size_t n, double p, std::size_t levels,
                std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  const std::size_t k = std::max<std::size_t>(levels, 1);
  for (Vertex u = 0; u + 1 < n; ++u)
    for (Vertex v = u + 1; v < n; ++v)
      if (rng.bernoulli(p))
        g.add_edge(u, v, 1.0 + 0.1 * static_cast<double>(rng.uniform_index(k)));
  return g;
}

Digraph di_gnp(std::size_t n, double p, std::uint64_t seed, double max_cost) {
  Rng rng(seed);
  Digraph g(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = 0; v < n; ++v)
      if (u != v && rng.bernoulli(p)) g.add_edge(u, v, draw_weight(rng, max_cost));
  return g;
}

Digraph di_complete(std::size_t n) {
  Digraph g(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = 0; v < n; ++v)
      if (u != v) g.add_edge(u, v);
  return g;
}

Digraph bidirect(const Graph& g) {
  Digraph d(g.num_vertices());
  for (const Edge& e : g.edges()) {
    d.add_edge(e.u, e.v, e.w);
    d.add_edge(e.v, e.u, e.w);
  }
  return d;
}

Digraph di_bounded_degree(std::size_t n, std::size_t delta, double density,
                          std::uint64_t seed) {
  Rng rng(seed);
  Digraph g(n);
  const std::size_t target =
      static_cast<std::size_t>(density * static_cast<double>(n) * delta);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * target + 1000;
  while (g.num_edges() < target && attempts < max_attempts) {
    ++attempts;
    const Vertex u = static_cast<Vertex>(rng.uniform_index(n));
    const Vertex v = static_cast<Vertex>(rng.uniform_index(n));
    if (u == v || g.has_edge(u, v)) continue;
    if (g.out_degree(u) >= delta || g.in_degree(v) >= delta) continue;
    g.add_edge(u, v);
  }
  return g;
}

Digraph gap_gadget(std::size_t r, double big_cost) {
  // Vertices: 0 = u, 1 = v, 2..r+1 = w_1..w_r.
  Digraph g(r + 2);
  g.add_edge(0, 1, big_cost);
  for (std::size_t i = 0; i < r; ++i) {
    const Vertex w = static_cast<Vertex>(2 + i);
    g.add_edge(0, w, 1.0);
    g.add_edge(w, 1, 1.0);
  }
  return g;
}

}  // namespace ftspan
