#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ftspan {

namespace {

// Vertex ids are 32-bit and the edge index packs (u << 32) | v, so a vertex
// universe reaching 2^32 would make ids unrepresentable and the hash
// non-injective. kInvalidVertex itself is reserved as a sentinel.
void check_vertex_count(std::size_t n, const char* type) {
  if (n > static_cast<std::size_t>(kInvalidVertex))
    throw std::invalid_argument(std::string(type) +
                                ": vertex count exceeds the 32-bit id space");
}

}  // namespace

Graph::Graph(std::size_t n) : adj_((check_vertex_count(n, "Graph"), n)) {}

EdgeId Graph::add_edge(Vertex u, Vertex v, Weight w) {
  if (u == v) return kInvalidEdge;
  if (u >= adj_.size() || v >= adj_.size())
    throw std::out_of_range("Graph::add_edge: vertex out of range");
  const std::uint64_t k = key(u, v);
  if (index_.contains(k)) return kInvalidEdge;
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({u, v, w});
  adj_[u].push_back({v, w, id});
  adj_[v].push_back({u, w, id});
  index_.emplace(k, id);
  return id;
}

std::optional<EdgeId> Graph::edge_id(Vertex u, Vertex v) const {
  if (u >= adj_.size() || v >= adj_.size() || u == v) return std::nullopt;
  const auto it = index_.find(key(u, v));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Weight Graph::total_weight() const {
  Weight s = 0;
  for (const Edge& e : edges_) s += e.w;
  return s;
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& a : adj_) d = std::max(d, a.size());
  return d;
}

Graph Graph::subgraph_without(const VertexSet& faults) const {
  Graph out(num_vertices());
  for (const Edge& e : edges_)
    if (!faults.contains(e.u) && !faults.contains(e.v))
      out.add_edge(e.u, e.v, e.w);
  return out;
}

Graph Graph::edge_subgraph(const std::vector<EdgeId>& ids) const {
  Graph out(num_vertices());
  for (EdgeId id : ids) {
    const Edge& e = edges_[id];
    out.add_edge(e.u, e.v, e.w);
  }
  return out;
}

Graph Graph::from_edges(std::size_t n, const std::vector<Edge>& edges) {
  Graph g(n);
  for (const Edge& e : edges) g.add_edge(e.u, e.v, e.w);
  return g;
}

Digraph::Digraph(std::size_t n)
    : out_((check_vertex_count(n, "Digraph"), n)), in_(n) {}

EdgeId Digraph::add_edge(Vertex u, Vertex v, Weight w) {
  if (u == v) return kInvalidEdge;
  if (u >= out_.size() || v >= out_.size())
    throw std::out_of_range("Digraph::add_edge: vertex out of range");
  const std::uint64_t k = key(u, v);
  if (index_.contains(k)) return kInvalidEdge;
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({u, v, w});
  out_[u].push_back({v, w, id});
  in_[v].push_back({u, w, id});
  index_.emplace(k, id);
  return id;
}

std::optional<EdgeId> Digraph::edge_id(Vertex u, Vertex v) const {
  if (u >= out_.size() || v >= out_.size() || u == v) return std::nullopt;
  const auto it = index_.find(key(u, v));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::size_t Digraph::max_degree() const {
  std::size_t d = 0;
  for (std::size_t v = 0; v < out_.size(); ++v)
    d = std::max({d, out_[v].size(), in_[v].size()});
  return d;
}

Weight Digraph::total_cost() const {
  Weight s = 0;
  for (const DiEdge& e : edges_) s += e.w;
  return s;
}

std::vector<Vertex> Digraph::two_path_midpoints(Vertex u, Vertex v) const {
  // Scan the smaller of out(u) and in(v).
  std::vector<Vertex> mids;
  if (out_[u].size() <= in_[v].size()) {
    for (const Arc& a : out_[u])
      if (a.to != v && has_edge(a.to, v)) mids.push_back(a.to);
  } else {
    for (const Arc& a : in_[v])
      if (a.to != u && has_edge(u, a.to)) mids.push_back(a.to);
  }
  std::sort(mids.begin(), mids.end());
  return mids;
}

Digraph Digraph::from_edges(std::size_t n, const std::vector<DiEdge>& edges) {
  Digraph g(n);
  for (const DiEdge& e : edges) g.add_edge(e.u, e.v, e.w);
  return g;
}

}  // namespace ftspan
