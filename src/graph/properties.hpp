// Structural graph properties: connectivity, components, diameter, degrees.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace ftspan {

/// Connected on the surviving vertices (vertices outside `faults`)?
/// A graph with <= 1 surviving vertex counts as connected.
bool is_connected(const Graph& g, const VertexSet* faults = nullptr);

/// Number of connected components among surviving vertices.
std::size_t num_components(const Graph& g, const VertexSet* faults = nullptr);

/// Hop-count eccentricity of v (max BFS distance to a reachable vertex).
std::size_t hop_eccentricity(const Graph& g, Vertex v,
                             const VertexSet* faults = nullptr);

/// Exact hop diameter (max over vertices of hop_eccentricity); O(n·m).
/// Returns 0 for empty graphs; unreachable pairs are ignored.
std::size_t hop_diameter(const Graph& g, const VertexSet* faults = nullptr);

/// Weak (undirected-sense) diameter of a vertex subset S measured through
/// the whole graph G — the paper's diam(C) for clusters (Definition 3.6).
std::size_t weak_diameter(const Graph& g, const std::vector<Vertex>& subset);

/// Degree histogram: result[d] = number of vertices of degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

/// Is the digraph weakly connected (connected if arcs are undirected)?
bool is_weakly_connected(const Digraph& g);

}  // namespace ftspan
