// A small linear-programming model: min c'x subject to row constraints and
// variable bounds. Consumed by the simplex solver (simplex.hpp) and extended
// lazily by the cutting-plane driver (cutting_plane.hpp).
//
// Only what the paper needs: minimization, {<=, >=, =} rows, and variable
// bounds of the form 0 <= x <= u (u may be +infinity).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/types.hpp"  // for kInfiniteWeight reuse as +inf

namespace ftspan {

enum class Sense { kLessEqual, kGreaterEqual, kEqual };

struct LinearTerm {
  int var = 0;
  double coeff = 0.0;
};

struct LpConstraint {
  std::vector<LinearTerm> terms;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

class LpModel {
 public:
  /// Adds a variable with bounds [0, upper] and the given objective
  /// coefficient; returns its index. upper may be infinity.
  int add_variable(double objective_coeff,
                   double upper = kInfiniteWeight,
                   std::string name = {});

  /// Adds a row; duplicate variables within one row are allowed (they sum).
  /// Returns the row index.
  int add_constraint(std::vector<LinearTerm> terms, Sense sense, double rhs);

  std::size_t num_variables() const { return objective_.size(); }
  std::size_t num_constraints() const { return rows_.size(); }

  const std::vector<double>& objective() const { return objective_; }
  const std::vector<double>& upper_bounds() const { return upper_; }
  const std::vector<LpConstraint>& rows() const { return rows_; }
  const std::string& variable_name(int v) const { return names_[v]; }

  /// Objective value of an assignment (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Max constraint violation (and bound violation) of an assignment.
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<double> objective_;
  std::vector<double> upper_;
  std::vector<std::string> names_;
  std::vector<LpConstraint> rows_;
};

}  // namespace ftspan
