// Two-phase primal simplex on a dense tableau.
//
// Standing in for the paper's use of the Ellipsoid method (Lemma 3.2): the
// paper only needs *a* polynomial-time LP solver behind a separation oracle;
// in practice, cutting planes around simplex is what implementations use.
//
// Variable upper bounds are handled by explicit rows (the LP (4) instances
// only bound the |E| capacity variables, so this costs |E| extra rows).
// Anti-cycling: Dantzig pricing normally, switching to Bland's rule after a
// stall is detected.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/model.hpp"

namespace ftspan {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;        ///< primal values, one per model variable
  std::size_t iterations = 0;   ///< total simplex pivots (both phases)
};

struct SimplexOptions {
  std::size_t max_iterations = 200'000;
  double tolerance = 1e-9;
};

LpSolution solve_lp(const LpModel& model, const SimplexOptions& options = {});

}  // namespace ftspan
