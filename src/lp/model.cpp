#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ftspan {

int LpModel::add_variable(double objective_coeff, double upper,
                          std::string name) {
  if (upper < 0)
    throw std::invalid_argument("LpModel: upper bound must be >= 0");
  objective_.push_back(objective_coeff);
  upper_.push_back(upper);
  names_.push_back(std::move(name));
  return static_cast<int>(objective_.size()) - 1;
}

int LpModel::add_constraint(std::vector<LinearTerm> terms, Sense sense,
                            double rhs) {
  for (const LinearTerm& t : terms)
    if (t.var < 0 || t.var >= static_cast<int>(num_variables()))
      throw std::out_of_range("LpModel: constraint references unknown variable");
  rows_.push_back({std::move(terms), sense, rhs});
  return static_cast<int>(rows_.size()) - 1;
}

double LpModel::objective_value(const std::vector<double>& x) const {
  double z = 0;
  for (std::size_t i = 0; i < objective_.size(); ++i) z += objective_[i] * x[i];
  return z;
}

double LpModel::max_violation(const std::vector<double>& x) const {
  double worst = 0;
  for (std::size_t i = 0; i < num_variables(); ++i) {
    worst = std::max(worst, -x[i]);            // x >= 0
    worst = std::max(worst, x[i] - upper_[i]);  // x <= u
  }
  for (const LpConstraint& row : rows_) {
    double lhs = 0;
    for (const LinearTerm& t : row.terms) lhs += t.coeff * x[t.var];
    switch (row.sense) {
      case Sense::kLessEqual:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case Sense::kGreaterEqual:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case Sense::kEqual:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace ftspan
