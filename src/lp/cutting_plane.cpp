#include "lp/cutting_plane.hpp"

namespace ftspan {

CuttingPlaneResult solve_with_cuts(LpModel& model,
                                   const SeparationOracle& oracle,
                                   const CuttingPlaneOptions& options) {
  CuttingPlaneResult out;
  for (out.rounds = 1; out.rounds <= options.max_rounds; ++out.rounds) {
    out.solution = solve_lp(model, options.simplex);
    if (out.solution.status != LpStatus::kOptimal) {
      out.separated_clean = false;
      return out;
    }
    std::vector<LpConstraint> cuts = oracle(out.solution.x);
    if (cuts.empty()) return out;
    if (cuts.size() > options.max_cuts_per_round)
      cuts.resize(options.max_cuts_per_round);
    for (LpConstraint& c : cuts)
      model.add_constraint(std::move(c.terms), c.sense, c.rhs);
    out.cuts_added += cuts.size();
  }
  out.rounds = options.max_rounds;
  out.separated_clean = false;
  return out;
}

}  // namespace ftspan
