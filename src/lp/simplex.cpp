#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace ftspan {

namespace {

/// Dense two-phase tableau simplex.
///
/// Layout: columns 0..n_struct-1 are the model variables, then one slack or
/// surplus column per row that needs one, then one artificial column per row
/// that needs one. `tab_` holds m rows plus is accompanied by an objective
/// (reduced-cost) row `obj_` and value `obj_val_`.
class Tableau {
 public:
  Tableau(const LpModel& model, const SimplexOptions& opt) : opt_(opt) {
    build(model);
  }

  LpSolution run(const LpModel& model) {
    LpSolution sol;

    // ---- Phase 1: minimize the sum of artificials. ----
    if (num_artificial_ > 0) {
      set_phase1_objective();
      const LpStatus st = iterate(sol.iterations);
      if (st == LpStatus::kIterationLimit) {
        sol.status = st;
        return sol;
      }
      if (obj_val_ > 1e-6) {
        sol.status = LpStatus::kInfeasible;
        return sol;
      }
      drive_out_artificials();
      artificial_banned_ = true;
    }

    // ---- Phase 2: the real objective. ----
    set_phase2_objective(model);
    const LpStatus st = iterate(sol.iterations);
    sol.status = st;
    if (st != LpStatus::kOptimal) return sol;

    sol.x.assign(n_struct_, 0.0);
    for (std::size_t r = 0; r < m_; ++r)
      if (basis_[r] < n_struct_) sol.x[basis_[r]] = rhs_[r];
    sol.objective = model.objective_value(sol.x);
    return sol;
  }

 private:
  void build(const LpModel& model) {
    n_struct_ = model.num_variables();

    // Upper bounds become explicit <= rows.
    struct Row {
      std::vector<double> a;
      double b;
      Sense sense;
    };
    std::vector<Row> rows;
    rows.reserve(model.num_constraints() + n_struct_);
    for (const LpConstraint& c : model.rows()) {
      Row r{std::vector<double>(n_struct_, 0.0), c.rhs, c.sense};
      for (const LinearTerm& t : c.terms) r.a[t.var] += t.coeff;
      rows.push_back(std::move(r));
    }
    for (std::size_t v = 0; v < n_struct_; ++v) {
      const double u = model.upper_bounds()[v];
      if (u < kInfiniteWeight) {
        Row r{std::vector<double>(n_struct_, 0.0), u, Sense::kLessEqual};
        r.a[v] = 1.0;
        rows.push_back(std::move(r));
      }
    }

    // Normalize to b >= 0.
    for (Row& r : rows) {
      if (r.b < 0) {
        for (double& a : r.a) a = -a;
        r.b = -r.b;
        if (r.sense == Sense::kLessEqual)
          r.sense = Sense::kGreaterEqual;
        else if (r.sense == Sense::kGreaterEqual)
          r.sense = Sense::kLessEqual;
      }
    }

    m_ = rows.size();
    std::size_t num_slack = 0;
    for (const Row& r : rows)
      if (r.sense != Sense::kEqual) ++num_slack;
    num_artificial_ = 0;
    for (const Row& r : rows)
      if (r.sense != Sense::kLessEqual) ++num_artificial_;

    n_total_ = n_struct_ + num_slack + num_artificial_;
    first_artificial_ = n_struct_ + num_slack;
    tab_.assign(m_, std::vector<double>(n_total_, 0.0));
    rhs_.assign(m_, 0.0);
    basis_.assign(m_, 0);

    std::size_t slack_col = n_struct_;
    std::size_t art_col = first_artificial_;
    for (std::size_t r = 0; r < m_; ++r) {
      for (std::size_t v = 0; v < n_struct_; ++v) tab_[r][v] = rows[r].a[v];
      // Deterministic tiny perturbation: breaks the massive rhs ties of
      // symmetric instances (e.g. complete graphs), which otherwise cause
      // long degenerate stalls. The induced solution error is far below the
      // library's 1e-6 tolerances.
      rhs_[r] = rows[r].b + 1e-11 * static_cast<double>(r + 1);
      switch (rows[r].sense) {
        case Sense::kLessEqual:
          tab_[r][slack_col] = 1.0;
          basis_[r] = slack_col++;
          break;
        case Sense::kGreaterEqual:
          tab_[r][slack_col] = -1.0;
          ++slack_col;
          tab_[r][art_col] = 1.0;
          basis_[r] = art_col++;
          break;
        case Sense::kEqual:
          tab_[r][art_col] = 1.0;
          basis_[r] = art_col++;
          break;
      }
    }
    obj_.assign(n_total_, 0.0);
    obj_val_ = 0.0;
  }

  /// Phase-1 objective: min sum of artificials. The reduced-cost row is
  /// -(sum of rows whose basic variable is artificial).
  void set_phase1_objective() {
    std::fill(obj_.begin(), obj_.end(), 0.0);
    obj_val_ = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < first_artificial_) continue;
      for (std::size_t c = 0; c < n_total_; ++c) obj_[c] -= tab_[r][c];
      obj_val_ += rhs_[r];
    }
    // Artificial columns themselves must carry reduced cost 0 in this row
    // (cost 1 each); the subtraction above already handles basic ones, and
    // non-basic artificials keep cost +1:
    for (std::size_t c = first_artificial_; c < n_total_; ++c) obj_[c] += 1.0;
  }

  /// Phase-2 objective from the model costs, priced out over the basis.
  void set_phase2_objective(const LpModel& model) {
    std::fill(obj_.begin(), obj_.end(), 0.0);
    obj_val_ = 0.0;
    for (std::size_t v = 0; v < n_struct_; ++v) obj_[v] = model.objective()[v];
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t b = basis_[r];
      const double cb = b < n_struct_ ? model.objective()[b] : 0.0;
      if (cb == 0.0) continue;
      for (std::size_t c = 0; c < n_total_; ++c) obj_[c] -= cb * tab_[r][c];
      obj_val_ += cb * rhs_[r];
    }
  }

  /// Pivot on (row, col): make col basic in row.
  void pivot(std::size_t row, std::size_t col) {
    const double p = tab_[row][col];
    for (std::size_t c = 0; c < n_total_; ++c) tab_[row][c] /= p;
    rhs_[row] /= p;
    tab_[row][col] = 1.0;  // cancel roundoff
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == row) continue;
      const double f = tab_[r][col];
      if (std::abs(f) < 1e-13) continue;
      for (std::size_t c = 0; c < n_total_; ++c) tab_[r][c] -= f * tab_[row][c];
      tab_[r][col] = 0.0;
      rhs_[r] -= f * rhs_[row];
      if (std::abs(rhs_[r]) < 1e-12) rhs_[r] = 0.0;
    }
    const double f = obj_[col];
    if (std::abs(f) > 1e-13) {
      for (std::size_t c = 0; c < n_total_; ++c) obj_[c] -= f * tab_[row][c];
      obj_[col] = 0.0;
      // Invariant: z(x) = Σ_c obj_[c]·x_c + obj_val_ for every x satisfying
      // the tableau rows; substituting the pivot row shifts the constant by
      // f · rhs (f < 0 on a minimizing pivot, so the objective decreases).
      obj_val_ += f * rhs_[row];
    }
    basis_[row] = col;
  }

  /// Runs pivots until optimal / unbounded / iteration limit.
  LpStatus iterate(std::size_t& iteration_counter) {
    const double tol = opt_.tolerance;
    std::size_t stall = 0;
    double last_obj = obj_val_;
    bool bland = false;

    while (true) {
      if (iteration_counter >= opt_.max_iterations)
        return LpStatus::kIterationLimit;

      // Entering column. Dantzig pricing stalls badly on highly symmetric
      // degenerate instances (e.g. complete graphs), so among the columns
      // within a factor of the most negative reduced cost we pick one at
      // random (seeded — runs stay deterministic). Bland mode (on stall)
      // takes the smallest negative-cost index, which guarantees progress.
      std::size_t enter = n_total_;
      if (!bland) {
        double best = -tol;
        for (std::size_t c = 0; c < n_total_; ++c) {
          if (artificial_banned_ && c >= first_artificial_) continue;
          if (obj_[c] < best) {
            best = obj_[c];
            enter = c;
          }
        }
        if (enter != n_total_) {
          const double threshold = 0.9 * best;  // best < 0
          std::size_t seen = 0;
          for (std::size_t c = 0; c < n_total_; ++c) {
            if (artificial_banned_ && c >= first_artificial_) continue;
            if (obj_[c] <= threshold) {
              ++seen;
              if (rng_.uniform_index(seen) == 0) enter = c;  // reservoir pick
            }
          }
        }
      } else {
        for (std::size_t c = 0; c < n_total_; ++c) {
          if (artificial_banned_ && c >= first_artificial_) continue;
          if (obj_[c] < -tol) {
            enter = c;
            break;
          }
        }
      }
      if (enter == n_total_) return LpStatus::kOptimal;

      // Leaving row: min ratio rhs/tab over positive entries. Ties broken
      // randomly under Dantzig pricing, by basic-variable index under Bland.
      std::size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      std::size_t tied = 0;
      for (std::size_t r = 0; r < m_; ++r) {
        const double a = tab_[r][enter];
        if (a <= tol) continue;
        const double ratio = rhs_[r] / a;
        if (ratio < best_ratio - 1e-12) {
          best_ratio = ratio;
          leave = r;
          tied = 1;
        } else if (ratio < best_ratio + 1e-12 && leave != m_) {
          if (bland) {
            if (basis_[r] < basis_[leave]) leave = r;
          } else {
            ++tied;
            if (rng_.uniform_index(tied) == 0) leave = r;
          }
        }
      }
      if (leave == m_) return LpStatus::kUnbounded;

      pivot(leave, enter);
      ++iteration_counter;

      // Stall detection -> Bland's rule (guarantees termination); back to
      // Dantzig pricing as soon as the objective moves again.
      if (obj_val_ > last_obj - 1e-12) {
        if (++stall > m_ + 64) bland = true;
      } else {
        stall = 0;
        bland = false;
        last_obj = obj_val_;
      }
    }
  }

  /// After phase 1, pivot artificials that remain basic (at value 0) out of
  /// the basis where possible; rows that cannot be pivoted are redundant and
  /// harmless (their artificial stays basic at 0 and is banned from
  /// re-entering).
  void drive_out_artificials() {
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < first_artificial_) continue;
      for (std::size_t c = 0; c < first_artificial_; ++c) {
        if (std::abs(tab_[r][c]) > 1e-7) {
          pivot(r, c);
          break;
        }
      }
    }
  }

  SimplexOptions opt_;
  std::size_t n_struct_ = 0;
  std::size_t n_total_ = 0;
  std::size_t m_ = 0;
  std::size_t num_artificial_ = 0;
  std::size_t first_artificial_ = 0;
  bool artificial_banned_ = false;

  std::vector<std::vector<double>> tab_;
  std::vector<double> rhs_;
  std::vector<double> obj_;
  double obj_val_ = 0.0;
  std::vector<std::size_t> basis_;
  Rng rng_{0x5eedf00dULL};  // fixed seed: deterministic tie-breaking
};

}  // namespace

LpSolution solve_lp(const LpModel& model, const SimplexOptions& options) {
  Tableau t(model, options);
  return t.run(model);
}

}  // namespace ftspan
