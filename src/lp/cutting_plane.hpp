// Generic cutting-plane driver: solve an LP, ask a separation oracle for
// violated constraints, add them, repeat. This is the practical counterpart
// of the paper's "Ellipsoid + separation oracle" argument (Lemma 3.2).
#pragma once

#include <functional>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace ftspan {

/// Given the current optimum x, returns violated constraints to add (empty
/// means x is feasible for the full, implicitly-described LP).
using SeparationOracle =
    std::function<std::vector<LpConstraint>(const std::vector<double>&)>;

struct CuttingPlaneOptions {
  std::size_t max_rounds = 200;
  std::size_t max_cuts_per_round = 10'000;
  SimplexOptions simplex;
};

struct CuttingPlaneResult {
  LpSolution solution;
  std::size_t rounds = 0;      ///< LP re-solves performed
  std::size_t cuts_added = 0;  ///< total separation cuts added
  bool separated_clean = true; ///< oracle returned empty on the final solution
};

/// Solves `model` (modified in place by adding cuts) to optimality over the
/// constraint family described by the oracle.
CuttingPlaneResult solve_with_cuts(LpModel& model,
                                   const SeparationOracle& oracle,
                                   const CuttingPlaneOptions& options = {});

}  // namespace ftspan
