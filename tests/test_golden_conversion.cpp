// Golden-seed bit-identity for the Theorem 2.1 conversion.
//
// The expected hashes below were captured from the pre-engine implementation
// (adjacency-list greedy + per-call pair_distance, commit 6a18ca8) on
// gnp(400, 0.05, 1234), k = 3, r = 2, iteration_constant = 0.25. The CSR +
// pooled-engine hot path must reproduce every edge set bit-for-bit, at every
// thread count — the refactor is a pure performance change.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <sstream>
#include <vector>

#include "ftspanner/conversion.hpp"
#include "ftspanner/edge_faults.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/import.hpp"
#include "runner/runner.hpp"
#include "runner/workloads.hpp"
#include "util/rng.hpp"
#include "validate/stretch_oracle.hpp"

namespace ftspan {
namespace {

// The shared FNV-1a fingerprint — using the runner's implementation keeps
// these golden hashes directly comparable to ScenarioCell::edges_hash.
std::uint64_t fnv1a(const std::vector<EdgeId>& edges) {
  return runner::edge_set_hash(edges);
}

struct Golden {
  std::uint64_t seed;
  std::size_t edges;
  std::uint64_t hash;
};

// One row per conversion seed; each must hold at threads 1, 2, 4, and 8.
constexpr Golden kGolden[] = {
    {1, 4033, 0xea91477888d16344ull},
    {7, 4028, 0xfef289fb1141209cull},
    {42, 4030, 0x2c7feb972a4d3910ull},
};

TEST(GoldenConversion, FtGreedySpannerBitIdenticalAcrossRefactorAndThreads) {
  const Graph g = gnp(400, 0.05, 1234);
  // The golden hashes must also survive every engine policy: the bucket
  // queue's FIFO pop order — and the delta queue's (key, seq) settle-stamp
  // order — are the stable heap's order, so heap, bucket, delta, and auto
  // are all bit-identical on this unit-weight graph — at every thread count
  // and burst geometry.
  constexpr SpEnginePolicy kPolicies[] = {
      SpEnginePolicy::kAuto, SpEnginePolicy::kHeap, SpEnginePolicy::kBucket,
      SpEnginePolicy::kDelta};
  for (const Golden& want : kGolden) {
    std::vector<EdgeId> at_one_thread;
    for (const SpEnginePolicy engine : kPolicies)
      for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        ConversionOptions opt;
        opt.threads = threads;
        opt.iteration_constant = 0.25;
        opt.engine = engine;
        opt.batch = threads == 4 ? 8 : 0;  // exercise a non-default burst
        const auto res = ft_greedy_spanner(g, 3.0, 2, want.seed, opt);
        EXPECT_EQ(res.edges.size(), want.edges)
            << "seed=" << want.seed << " threads=" << threads
            << " engine=" << to_string(engine);
        EXPECT_EQ(fnv1a(res.edges), want.hash)
            << "seed=" << want.seed << " threads=" << threads
            << " engine=" << to_string(engine);
        if (at_one_thread.empty())
          at_one_thread = res.edges;
        else
          EXPECT_EQ(res.edges, at_one_thread)
              << "thread count or engine changed the output at seed "
              << want.seed;
      }
  }
}

// Same contract for the edge-fault conversion, on both a unit-weight graph
// (every edge weight tied — the case where greedy visit order is most
// fragile) and a distinct-weight graph. Hashes captured from commit 6a18ca8
// on gnp(200, 0.06, 5[, 10.0]), k = 5, r = 2, iteration_constant = 0.2.
constexpr Golden kGoldenEdgeUnit[] = {
    {3, 1194, 0xcc9d282eb433da20ull},
    {9, 1187, 0x65d2f23ba63c0f9full},
};
constexpr Golden kGoldenEdgeWeighted[] = {
    {3, 771, 0x29f4603432f4de74ull},
    {9, 781, 0xb856f65238c06602ull},
};

void check_edge_goldens(const Graph& g, std::span<const Golden> want) {
  for (const Golden& row : want) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      EdgeFtOptions opt;
      opt.threads = threads;
      opt.iteration_constant = 0.2;
      const auto res = ft_edge_greedy_spanner(g, 5.0, 2, row.seed, opt);
      EXPECT_EQ(res.edges.size(), row.edges)
          << "seed=" << row.seed << " threads=" << threads;
      EXPECT_EQ(fnv1a(res.edges), row.hash)
          << "seed=" << row.seed << " threads=" << threads;
    }
  }
}

// ISSUE 10: engine=delta must reproduce engine=heap bit-for-bit — edge set,
// hash, AND the oracle's worst-stretch/witness bits — on every golden
// instance class of the mid-range regime (uniform integer, tie-dense,
// DIMACS-imported) at threads 1, 2, 4, and 8.
void check_delta_matches_heap(const Graph& g) {
  std::vector<EdgeId> heap_edges;
  for (const SpEnginePolicy engine :
       {SpEnginePolicy::kHeap, SpEnginePolicy::kDelta})
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      ConversionOptions opt;
      opt.threads = threads;
      opt.iteration_constant = 0.25;
      opt.engine = engine;
      const auto res = ft_greedy_spanner(g, 3.0, 2, 42, opt);
      if (heap_edges.empty())
        heap_edges = res.edges;
      else
        ASSERT_EQ(res.edges, heap_edges)
            << "engine=" << to_string(engine) << " threads=" << threads;
    }
  ASSERT_FALSE(heap_edges.empty());

  // The oracle's verdict must be the same bits under both engines too.
  const Graph h = g.edge_subgraph(heap_edges);
  const StretchOracle oracle(g, h, 3.0);
  FtCheckOptions heap_opt, delta_opt;
  heap_opt.engine = SpEnginePolicy::kHeap;
  delta_opt.engine = SpEnginePolicy::kDelta;
  const FtCheckResult a = oracle.check_sampled(2, 6, 4, 77, heap_opt);
  const FtCheckResult b = oracle.check_sampled(2, 6, 4, 77, delta_opt);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.worst_stretch, b.worst_stretch);
  EXPECT_EQ(a.witness_u, b.witness_u);
  EXPECT_EQ(a.witness_v, b.witness_v);
}

TEST(GoldenConversion, DeltaMatchesHeapOnUniformMidRangeWeights) {
  runner::WorkloadParams wp;
  wp.n = 160;
  wp.seed = 1234;
  wp.max_weight = 100000;  // the runner's mid-range reweight knob
  const Graph g = runner::make_workload("gnp", wp).g;
  check_delta_matches_heap(g);
}

TEST(GoldenConversion, DeltaMatchesHeapOnTieDenseMidRangeWeights) {
  // tie_dense weights scaled into the mid-range: three massive tie classes,
  // the regime where an unstable frontier would scramble greedy's order.
  const Graph base = tie_dense(140, 0.1, 3, 7);
  std::vector<Edge> edges;
  for (EdgeId id = 0; id < base.num_edges(); ++id) {
    Edge e = base.edge(id);
    e.w = std::floor(e.w * 10.0) * 10000.0;
    edges.push_back(e);
  }
  check_delta_matches_heap(Graph::from_edges(base.num_vertices(), edges));
}

TEST(GoldenConversion, DeltaMatchesHeapOnDimacsImportedInstance) {
  // A DIMACS .gr instance with road-like mid-range arc weights, streamed
  // through the importer into ftspan.graph.v1 and loaded back — the exact
  // path a real corpus takes into the engine.
  const Graph base = gnp(120, 0.08, 9);
  Rng rng(2026);
  std::ostringstream gr;
  gr << "c synthetic mid-range road-weight instance\n";
  gr << "p sp " << base.num_vertices() << " " << 2 * base.num_edges() << "\n";
  for (EdgeId id = 0; id < base.num_edges(); ++id) {
    const Edge& e = base.edge(id);
    const std::int64_t w = rng.uniform_int(4097, 1000000);
    // Both orientations, the way road corpora ship arcs.
    gr << "a " << e.u + 1 << " " << e.v + 1 << " " << w << "\n";
    gr << "a " << e.v + 1 << " " << e.u + 1 << " " << w << "\n";
  }
  const std::string path = ::testing::TempDir() + "/golden_dimacs.fgb";
  std::istringstream in(gr.str());
  const ImportResult imp = import_graph(in, path, ImportFormat::kDimacs);
  ASSERT_EQ(imp.n, base.num_vertices());
  ASSERT_EQ(imp.edges, base.num_edges());
  const Graph g = load_graph_any(path);
  check_delta_matches_heap(g);
}

TEST(GoldenConversion, FtEdgeGreedySpannerBitIdenticalUnitWeights) {
  check_edge_goldens(gnp(200, 0.06, 5), kGoldenEdgeUnit);
}

TEST(GoldenConversion, FtEdgeGreedySpannerBitIdenticalDistinctWeights) {
  check_edge_goldens(gnp(200, 0.06, 5, 10.0), kGoldenEdgeWeighted);
}

}  // namespace
}  // namespace ftspan
