// Golden-seed bit-identity for the Theorem 2.1 conversion.
//
// The expected hashes below were captured from the pre-engine implementation
// (adjacency-list greedy + per-call pair_distance, commit 6a18ca8) on
// gnp(400, 0.05, 1234), k = 3, r = 2, iteration_constant = 0.25. The CSR +
// pooled-engine hot path must reproduce every edge set bit-for-bit, at every
// thread count — the refactor is a pure performance change.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "ftspanner/conversion.hpp"
#include "ftspanner/edge_faults.hpp"
#include "graph/generators.hpp"
#include "runner/runner.hpp"

namespace ftspan {
namespace {

// The shared FNV-1a fingerprint — using the runner's implementation keeps
// these golden hashes directly comparable to ScenarioCell::edges_hash.
std::uint64_t fnv1a(const std::vector<EdgeId>& edges) {
  return runner::edge_set_hash(edges);
}

struct Golden {
  std::uint64_t seed;
  std::size_t edges;
  std::uint64_t hash;
};

// One row per conversion seed; each must hold at threads 1, 2, 4, and 8.
constexpr Golden kGolden[] = {
    {1, 4033, 0xea91477888d16344ull},
    {7, 4028, 0xfef289fb1141209cull},
    {42, 4030, 0x2c7feb972a4d3910ull},
};

TEST(GoldenConversion, FtGreedySpannerBitIdenticalAcrossRefactorAndThreads) {
  const Graph g = gnp(400, 0.05, 1234);
  // The golden hashes must also survive every engine policy: the bucket
  // queue's FIFO pop order is the stable heap's (key, seq) order, so heap,
  // bucket, and auto are all bit-identical on this unit-weight graph — at
  // every thread count and burst geometry.
  constexpr SpEnginePolicy kPolicies[] = {
      SpEnginePolicy::kAuto, SpEnginePolicy::kHeap, SpEnginePolicy::kBucket};
  for (const Golden& want : kGolden) {
    std::vector<EdgeId> at_one_thread;
    for (const SpEnginePolicy engine : kPolicies)
      for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        ConversionOptions opt;
        opt.threads = threads;
        opt.iteration_constant = 0.25;
        opt.engine = engine;
        opt.batch = threads == 4 ? 8 : 0;  // exercise a non-default burst
        const auto res = ft_greedy_spanner(g, 3.0, 2, want.seed, opt);
        EXPECT_EQ(res.edges.size(), want.edges)
            << "seed=" << want.seed << " threads=" << threads
            << " engine=" << to_string(engine);
        EXPECT_EQ(fnv1a(res.edges), want.hash)
            << "seed=" << want.seed << " threads=" << threads
            << " engine=" << to_string(engine);
        if (at_one_thread.empty())
          at_one_thread = res.edges;
        else
          EXPECT_EQ(res.edges, at_one_thread)
              << "thread count or engine changed the output at seed "
              << want.seed;
      }
  }
}

// Same contract for the edge-fault conversion, on both a unit-weight graph
// (every edge weight tied — the case where greedy visit order is most
// fragile) and a distinct-weight graph. Hashes captured from commit 6a18ca8
// on gnp(200, 0.06, 5[, 10.0]), k = 5, r = 2, iteration_constant = 0.2.
constexpr Golden kGoldenEdgeUnit[] = {
    {3, 1194, 0xcc9d282eb433da20ull},
    {9, 1187, 0x65d2f23ba63c0f9full},
};
constexpr Golden kGoldenEdgeWeighted[] = {
    {3, 771, 0x29f4603432f4de74ull},
    {9, 781, 0xb856f65238c06602ull},
};

void check_edge_goldens(const Graph& g, std::span<const Golden> want) {
  for (const Golden& row : want) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      EdgeFtOptions opt;
      opt.threads = threads;
      opt.iteration_constant = 0.2;
      const auto res = ft_edge_greedy_spanner(g, 5.0, 2, row.seed, opt);
      EXPECT_EQ(res.edges.size(), row.edges)
          << "seed=" << row.seed << " threads=" << threads;
      EXPECT_EQ(fnv1a(res.edges), row.hash)
          << "seed=" << row.seed << " threads=" << threads;
    }
  }
}

TEST(GoldenConversion, FtEdgeGreedySpannerBitIdenticalUnitWeights) {
  check_edge_goldens(gnp(200, 0.06, 5), kGoldenEdgeUnit);
}

TEST(GoldenConversion, FtEdgeGreedySpannerBitIdenticalDistinctWeights) {
  check_edge_goldens(gnp(200, 0.06, 5, 10.0), kGoldenEdgeWeighted);
}

}  // namespace
}  // namespace ftspan
