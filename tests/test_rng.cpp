#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace ftspan {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, UniformIndexCoversAll) {
  Rng rng(3);
  std::array<int, 7> hits{};
  for (int i = 0; i < 7000; ++i) ++hits[rng.uniform_index(7)];
  for (int h : hits) EXPECT_GT(h, 700);  // expected 1000 each
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, GeometricMean) {
  // Mean of failures-before-success is (1-p)/p = 3 for p = 0.25.
  Rng rng(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricP1IsZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(13);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);
}

TEST(Rng, ForkIndependence) {
  Rng parent(21);
  Rng child = parent.fork();
  // Child and parent produce different streams.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, HashCombineDistinct) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(0, 0), hash_combine(0, 1));
}

}  // namespace
}  // namespace ftspan
