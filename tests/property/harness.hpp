// Randomized property-test harness: a generator × algorithm × fault-model
// matrix validated through the StretchOracle, with shrinking on failure.
//
// A cell is one (graph generator, spanner algorithm) pair. run_cell()
// generates the graph at full scale, builds the spanner, and validates the
// algorithm's advertised stretch / fault-tolerance guarantee:
//
//   FaultModel::kNone    plain stretch, exact over all edges (oracle,
//                        empty fault set)
//   FaultModel::kVertex  r-vertex-fault tolerance — exact enumeration when
//                        count_fault_sets(n, r) fits the budget, the
//                        oracle's sampled + adversarial check otherwise
//   FaultModel::kEdge    r-edge-fault tolerance — the sampled edge-fault
//                        checker (edge masks are outside the vertex-fault
//                        oracle's domain)
//
// On failure the harness *shrinks*: the generator is re-run at geometrically
// smaller scales with the same seed and the smallest still-failing instance
// wins. Every failure is reported as a replayable (generator, params, seed)
// tuple — paste it into a regression test to reproduce.
//
// Everything is deterministic given the seed: generators, algorithms, and
// validators all derive their randomness from it via hash_combine.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ftspanner/edge_faults.hpp"
#include "graph/generators.hpp"
#include "runner/algorithms.hpp"
#include "runner/workloads.hpp"
#include "util/rng.hpp"
#include "validate/stretch_oracle.hpp"

namespace ftspan::proptest {

struct GraphCase {
  Graph g;
  std::string params;  ///< human-readable generator parameters, e.g. "n=240 p=0.042"
};

/// A graph family. `make(scale, seed)` builds an instance; scale = 1 is the
/// full-size graph, smaller scales shrink it (used by the shrinking loop).
struct Generator {
  std::string name;
  std::function<GraphCase(double scale, std::uint64_t seed)> make;
};

enum class FaultModel { kNone, kVertex, kEdge };

/// A spanner construction plus the guarantee it advertises.
struct Algorithm {
  std::string name;
  FaultModel model = FaultModel::kNone;
  double k = 3.0;     ///< stretch to validate
  std::size_t r = 0;  ///< fault tolerance to validate (0 for plain spanners)
  std::function<std::vector<EdgeId>(const Graph&, std::uint64_t seed)> build;
};

struct CellFailure {
  std::string generator;
  std::string algorithm;
  std::string params;
  std::uint64_t seed = 0;
  double scale = 1.0;
  double worst_stretch = 0.0;
};

/// The replayable failure tuple printed by the matrix test.
inline std::string replay_tuple(const CellFailure& f) {
  std::ostringstream os;
  os << "(generator=" << f.generator << ", params={" << f.params
     << "}, algorithm=" << f.algorithm << ", seed=" << f.seed
     << ", scale=" << f.scale << ", worst_stretch=" << f.worst_stretch << ")";
  return os.str();
}

struct HarnessOptions {
  double scale = 1.0;              ///< scale of the first (full-size) attempt
  std::size_t shrink_attempts = 5;
  double shrink_factor = 0.55;
  std::size_t trials = 8;          ///< sampled-check budget for FT cells
  std::size_t adversarial = 8;
  std::size_t exact_budget = 600;  ///< use exact enumeration below this count
  std::size_t threads = 1;         ///< oracle fan-out inside one cell
};

namespace detail {

/// Runs one attempt of a cell; returns the violating worst stretch, or
/// nullopt when the guarantee holds.
inline std::optional<double> failing_stretch(const Generator& gen,
                                             const Algorithm& algo,
                                             double scale, std::uint64_t seed,
                                             const HarnessOptions& opt,
                                             std::string* params_out) {
  const GraphCase gc = gen.make(scale, seed);
  if (params_out != nullptr) *params_out = gc.params;
  const std::uint64_t algo_seed = hash_combine(seed, 0xa160);
  const Graph h = gc.g.edge_subgraph(algo.build(gc.g, algo_seed));

  FtCheckOptions copt;
  copt.threads = opt.threads;
  switch (algo.model) {
    case FaultModel::kNone: {
      const double s = StretchOracle(gc.g, h, algo.k).max_stretch();
      if (s > algo.k * (1 + 1e-9)) return s;
      return std::nullopt;
    }
    case FaultModel::kVertex: {
      const StretchOracle oracle(gc.g, h, algo.k);
      const FtCheckResult res =
          count_fault_sets(gc.g.num_vertices(), algo.r) <= opt.exact_budget
              ? oracle.check_exact(algo.r, copt)
              : oracle.check_sampled(algo.r, opt.trials, opt.adversarial,
                                     hash_combine(seed, 0xfa01), copt);
      if (!res.valid) return res.worst_stretch;
      return std::nullopt;
    }
    case FaultModel::kEdge: {
      const EdgeFtCheckResult res = check_edge_ft_spanner_sampled(
          gc.g, h, algo.k, algo.r, opt.trials, opt.adversarial,
          hash_combine(seed, 0xedfa));
      if (!res.valid) return res.worst_stretch;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace detail

/// Runs one matrix cell. Returns nullopt when the guarantee holds; otherwise
/// the smallest failing instance found by the shrinking loop.
inline std::optional<CellFailure> run_cell(const Generator& gen,
                                           const Algorithm& algo,
                                           std::uint64_t seed,
                                           const HarnessOptions& opt = {}) {
  std::string params;
  const auto stretch =
      detail::failing_stretch(gen, algo, opt.scale, seed, opt, &params);
  if (!stretch) return std::nullopt;

  CellFailure fail{gen.name, algo.name, params, seed, opt.scale, *stretch};
  // Shrink: each smaller scale is tried from the same seed; a failure at
  // scale s need not persist at s' < s, so the smallest failing attempt
  // (not the last) wins.
  double scale = opt.scale;
  for (std::size_t i = 0; i < opt.shrink_attempts; ++i) {
    scale *= opt.shrink_factor;
    std::string small_params;
    const auto small =
        detail::failing_stretch(gen, algo, scale, seed, opt, &small_params);
    if (small)
      fail = CellFailure{gen.name,  algo.name, small_params,
                         seed,      scale,     *small};
  }
  return fail;
}

/// The standard generator set — thin wrappers over the runner's workload
/// registry (src/runner/workloads.hpp), so the property matrix validates
/// exactly the instances the benches and `ftspan bench` run. Eight
/// families; the registry's `scale` knob drives the shrinking loop.
inline std::vector<Generator> default_generators() {
  std::vector<Generator> out;
  for (const char* name : {"gnp", "sensor", "grid", "hypercube",
                           "preferential", "smallworld", "road",
                           "tie_dense"}) {
    const runner::Workload& workload = runner::workload_registry().get(name);
    out.push_back({name, [&workload](double scale, std::uint64_t seed) {
                     runner::WorkloadParams wp;
                     wp.scale = scale;
                     wp.seed = seed;
                     runner::WorkloadInstance inst = workload.make(wp);
                     return GraphCase{std::move(inst.g),
                                      std::move(inst.params)};
                   }});
  }
  return out;
}

/// The standard algorithm set — the three base constructions plus both
/// fault-model conversions of Theorem 2.1, resolved through the runner's
/// algorithm registry so tests exercise the same factories as the benches.
inline std::vector<Algorithm> default_algorithms() {
  const auto from_registry = [](const std::string& name, FaultModel model,
                                double k, std::size_t r) {
    const runner::SpannerAlgorithm& algo =
        runner::algorithm_registry().get(name);
    std::ostringstream label;
    label << name << "(k=" << k;
    if (r > 0) label << ",r=" << r;
    label << ")";
    return Algorithm{label.str(), model, k, r,
                     [&algo, k, r](const Graph& g, std::uint64_t seed) {
                       runner::AlgoParams params;
                       params.k = k;
                       params.r = r;
                       params.seed = seed;
                       return algo.bind(g)(params).edges;
                     }};
  };
  return {from_registry("greedy", FaultModel::kNone, 3.0, 0),
          from_registry("baswana_sen", FaultModel::kNone, 3.0, 0),
          from_registry("thorup_zwick", FaultModel::kNone, 3.0, 0),
          from_registry("ft_vertex", FaultModel::kVertex, 3.0, 1),
          from_registry("ft_edge", FaultModel::kEdge, 3.0, 1)};
}

}  // namespace ftspan::proptest
