#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace ftspan {
namespace {

TEST(Stats, EmptyIsSafe) {
  Stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
}

TEST(Stats, MeanMinMax) {
  Stats s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(Stats, VarianceKnownValue) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Stats, SingleSampleVarianceZero) {
  Stats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, MedianOddEven) {
  Stats odd;
  for (double x : {5.0, 1.0, 3.0}) odd.add(x);
  EXPECT_DOUBLE_EQ(odd.median(), 3.0);

  Stats even;
  for (double x : {1.0, 2.0, 3.0, 4.0}) even.add(x);
  EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  Stats s;
  for (double x : {10.0, 20.0, 30.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 30.0);
}

TEST(LogLogSlope, RecoversPowerLaw) {
  // y = 2 x^1.5
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(2.0 * std::pow(v, 1.5));
  }
  EXPECT_NEAR(loglog_slope(x, y), 1.5, 1e-9);
}

TEST(LogLogSlope, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(loglog_slope({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(loglog_slope({}, {}), 0.0);
  // Non-positive values are skipped.
  EXPECT_DOUBLE_EQ(loglog_slope({0.0, -1.0}, {1.0, 2.0}), 0.0);
}

TEST(Table, PrintsAlignedMarkdown) {
  Table t({"a", "long_header"});
  t.row().cell("x").cell(1.5, 1);
  t.row().cell(std::size_t{42}).cell("y");
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a  | long_header |"), std::string::npos);
  EXPECT_NE(out.find("| x  | 1.5"), std::string::npos);
  EXPECT_NE(out.find("| 42 |"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("|----"), std::string::npos);
}

TEST(Table, NumericFormatting) {
  Table t({"v"});
  t.row().cell(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

}  // namespace
}  // namespace ftspan
