#include "local/dist_spanner.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "spanner/verify.hpp"

namespace ftspan::local {
namespace {

using ftspan::Graph;
using ftspan::VertexSet;
using ftspan::check_ft_spanner_exact;
using ftspan::is_k_spanner;

TEST(DistBaswanaSen, K1TakesWholeGraph) {
  const Graph g = ftspan::gnp(20, 0.3, 1);
  const auto res = distributed_baswana_sen(g, 1, 7);
  EXPECT_EQ(res.edges.size(), g.num_edges());
  EXPECT_EQ(res.stats.rounds, 0u);  // purely local
}

TEST(DistBaswanaSen, Stretch3OnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = ftspan::gnp(50, 0.25, seed);
    const auto res = distributed_baswana_sen(g, 2, seed * 11);
    EXPECT_TRUE(is_k_spanner(g, g.edge_subgraph(res.edges), 3.0))
        << "seed=" << seed;
  }
}

TEST(DistBaswanaSen, Stretch5) {
  for (std::uint64_t seed : {4ull, 5ull}) {
    const Graph g = ftspan::gnp(50, 0.3, seed);
    const auto res = distributed_baswana_sen(g, 3, seed);
    EXPECT_TRUE(is_k_spanner(g, g.edge_subgraph(res.edges), 5.0));
  }
}

TEST(DistBaswanaSen, SparsifiesDenseGraph) {
  const Graph g = ftspan::complete(60);
  const auto res = distributed_baswana_sen(g, 2, 9);
  EXPECT_LT(res.edges.size(), g.num_edges() / 2);
}

TEST(DistBaswanaSen, RoundsQuadraticInK) {
  const Graph g = ftspan::gnp(40, 0.3, 11);
  const auto k2 = distributed_baswana_sen(g, 2, 1);
  const auto k4 = distributed_baswana_sen(g, 4, 1);
  // Per phase: phase flood rounds + 2 info + 2 announce; joining adds 2.
  // k=2: 1 phase -> 1+4 + 2 = 7; k=4: 3 phases -> (1+4)+(2+4)+(3+4) + 2 = 20.
  EXPECT_EQ(k2.stats.rounds, 7u);
  EXPECT_EQ(k4.stats.rounds, 20u);
}

TEST(DistBaswanaSen, FaultMaskRespected) {
  const Graph g = ftspan::gnp(30, 0.4, 13);
  VertexSet f(30, {0, 7, 19});
  const auto res = distributed_baswana_sen(g, 2, 13, &f);
  for (auto id : res.edges) {
    EXPECT_FALSE(f.contains(g.edge(id).u));
    EXPECT_FALSE(f.contains(g.edge(id).v));
  }
  EXPECT_TRUE(is_k_spanner(g, g.edge_subgraph(res.edges), 3.0, &f));
}

TEST(DistFtSpanner, ExactFaultToleranceSmall) {
  const Graph g = ftspan::gnp(12, 0.6, 17);
  const auto res = distributed_ft_spanner(g, 2, 1, 19);
  const auto check =
      check_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 1);
  EXPECT_TRUE(check.valid) << "worst " << check.worst_stretch;
}

TEST(DistFtSpanner, IterationCountMatchesTheorem) {
  const Graph g = ftspan::gnp(16, 0.5, 23);
  ftspan::ConversionOptions opt;
  opt.iteration_constant = 0.5;
  const auto res = distributed_ft_spanner(g, 2, 2, 23, opt);
  EXPECT_EQ(res.iterations, ftspan::conversion_iterations(2, 16, 0.5));
  // Rounds scale with iterations (each iteration ~ O(k²) + 1 rounds).
  EXPECT_GE(res.stats.rounds, res.iterations * 8);
}

TEST(DistFtSpanner, UnionGrowsWithR) {
  const Graph g = ftspan::complete(14);
  ftspan::ConversionOptions opt;
  opt.iterations = 30;
  const auto r1 = distributed_ft_spanner(g, 2, 1, 3, opt);
  Graph h1 = g.edge_subgraph(r1.edges);
  // More iterations/faults should not shrink the spanner on average; at
  // minimum the r=1 spanner is a valid 3-spanner.
  EXPECT_TRUE(is_k_spanner(g, h1, 3.0));
}

class DistBsSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DistBsSweep, StretchBound) {
  const auto [k, seed] = GetParam();
  const Graph g = ftspan::gnp(40, 0.3, static_cast<std::uint64_t>(seed));
  const auto res = distributed_baswana_sen(
      g, static_cast<std::size_t>(k), static_cast<std::uint64_t>(seed) * 5);
  EXPECT_TRUE(
      is_k_spanner(g, g.edge_subgraph(res.edges), 2.0 * k - 1.0));
}

INSTANTIATE_TEST_SUITE_P(Grid, DistBsSweep,
                         ::testing::Combine(::testing::Values(2, 3),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace ftspan::local
