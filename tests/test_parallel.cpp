#include "ftspanner/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "ftspanner/conversion.hpp"
#include "ftspanner/edge_faults.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "util/affinity.hpp"
#include "util/thread_pool.hpp"

namespace ftspan {
namespace {

TEST(ResolveThreads, ZeroMeansHardware) {
  EXPECT_EQ(resolve_threads(0, 100000),
            std::min(ThreadPool::hardware_threads(), kMaxConversionThreads));
}

TEST(ResolveThreads, ClampedToIterations) {
  EXPECT_EQ(resolve_threads(8, 3), 3u);
  EXPECT_EQ(resolve_threads(8, 0), 1u);  // never 0 workers
  EXPECT_EQ(resolve_threads(2, 1000), 2u);
}

TEST(ResolveThreads, BogusRequestHitsTheCeiling) {
  EXPECT_EQ(resolve_threads(static_cast<std::size_t>(-1), 1u << 20),
            kMaxConversionThreads);
}

TEST(ThreadPool, RunsAllJobsAcrossWorkers) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesJobException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, PinnedLanesReportMatchesPlatformSupport) {
  // Default: no pinning requested, every lane reports 0.
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.pinned_lanes(), std::vector<char>(3, 0));
    EXPECT_EQ(pool.pinned_count(), 0u);
  }
  // pin = true: cores are taken modulo hardware_threads(), so even a pool
  // wider than the machine pins every lane wherever the build supports
  // affinity at all — and reports all zeros (not a lie) where it does not.
  {
    ThreadPool pool(4, /*pin=*/true);
    ASSERT_EQ(pool.pinned_lanes().size(), 4u);
    const char want = affinity_supported() ? 1 : 0;
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(pool.pinned_lanes()[i], want) << "lane " << i;
    EXPECT_EQ(pool.pinned_count(), affinity_supported() ? 4u : 0u);
    // A pinned pool still runs jobs normally.
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(UnionIterations, SingleThreadMatchesManualLoop) {
  const auto body = [](std::size_t it, std::vector<char>& marks) {
    marks[it % marks.size()] = 1;
  };
  const auto marks = union_iterations(5, 1, 3, body);
  EXPECT_EQ(marks, (std::vector<char>{1, 1, 1}));
  EXPECT_EQ(marks_to_edges(marks), (std::vector<EdgeId>{0, 1, 2}));
}

TEST(UnionIterations, ThreadCountInvariant) {
  const auto body = [](std::size_t it, std::vector<char>& marks) {
    marks[(it * 7) % marks.size()] = 1;
  };
  const auto one = union_iterations(20, 1, 50, body);
  const auto four = union_iterations(20, 4, 50, body);
  EXPECT_EQ(one, four);
}

TEST(UnionIterations, RethrowsBodyException) {
  const IterationBody body = [](std::size_t it, std::vector<char>&) {
    if (it == 3) throw std::invalid_argument("it 3");
  };
  EXPECT_THROW(union_iterations(8, 4, 2, body), std::invalid_argument);
}

TEST(UnionIterations, PinReportsLanesAndNeverChangesTheMarks) {
  const IterationBodyFactory factory = [](std::size_t) -> IterationBody {
    return [](std::size_t it, std::vector<char>& marks) {
      marks[(it * 13) % marks.size()] = 1;
    };
  };
  const std::vector<char> want = union_iterations(40, 1, 64, 0, factory);

  // Multi-worker with pin on: same marks, one status slot per resolved
  // worker, each honest about platform support.
  std::vector<char> lanes;
  const std::vector<char> pinned =
      union_iterations(40, 4, 64, 0, factory, /*pin=*/true, &lanes);
  EXPECT_EQ(pinned, want);
  ASSERT_EQ(lanes.size(), resolve_threads(4, 40));
  const char expect = affinity_supported() ? 1 : 0;
  for (std::size_t i = 0; i < lanes.size(); ++i)
    EXPECT_EQ(lanes[i], expect) << "lane " << i;

  // Single worker resolves to the inline path: one unpinned lane, even
  // with pin requested (the caller's thread affinity is left alone).
  lanes.assign(5, 42);  // stale garbage the call must overwrite
  EXPECT_EQ(union_iterations(40, 1, 64, 0, factory, /*pin=*/true, &lanes),
            want);
  EXPECT_EQ(lanes, std::vector<char>(1, 0));

  // Pin off never pins, with or without the out-param.
  lanes.clear();
  EXPECT_EQ(union_iterations(40, 3, 64, 0, factory, /*pin=*/false, &lanes),
            want);
  EXPECT_EQ(lanes, std::vector<char>(resolve_threads(3, 40), 0));
  EXPECT_EQ(union_iterations(40, 3, 64, 0, factory), want);
}

// The engine's headline guarantee: for the same seed, the conversion's edge
// set does not depend on the thread count — the vertex-fault path...
TEST(ParallelConversion, VertexFaultBitIdenticalToSequential) {
  const Graph g = gnp(48, 0.3, 21);
  for (const std::uint64_t seed : {1ULL, 99ULL, 31337ULL}) {
    ConversionOptions seq_opt;
    seq_opt.threads = 1;
    const auto seq = ft_greedy_spanner(g, 3.0, 2, seed, seq_opt);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      ConversionOptions par_opt;
      par_opt.threads = threads;
      const auto par = ft_greedy_spanner(g, 3.0, 2, seed, par_opt);
      EXPECT_EQ(par.edges, seq.edges) << "threads=" << threads;
      EXPECT_EQ(par.max_survivors, seq.max_survivors);
      EXPECT_EQ(par.iterations, seq.iterations);
    }
  }
}

// ...and the edge-fault path.
TEST(ParallelConversion, EdgeFaultBitIdenticalToSequential) {
  const Graph g = gnp(40, 0.3, 5);
  for (const std::uint64_t seed : {7ULL, 1234ULL}) {
    EdgeFtOptions seq_opt;
    seq_opt.threads = 1;
    const auto seq = ft_edge_greedy_spanner(g, 3.0, 2, seed, seq_opt);
    for (const std::size_t threads : {3u, 8u}) {
      EdgeFtOptions par_opt;
      par_opt.threads = threads;
      const auto par = ft_edge_greedy_spanner(g, 3.0, 2, seed, par_opt);
      EXPECT_EQ(par.edges, seq.edges) << "threads=" << threads;
    }
  }
}

TEST(ParallelConversion, ThreadsZeroUsesHardwareAndStaysDeterministic) {
  const Graph g = gnp(32, 0.4, 11);
  ConversionOptions auto_opt;
  auto_opt.threads = 0;
  ConversionOptions seq_opt;
  seq_opt.threads = 1;
  const auto a = ft_greedy_spanner(g, 3.0, 1, 42, auto_opt);
  const auto b = ft_greedy_spanner(g, 3.0, 1, 42, seq_opt);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_GE(a.threads_used, 1u);
}

TEST(ParallelConversion, ParallelOutputIsStillValid) {
  const Graph g = gnp(16, 0.5, 3);
  ConversionOptions opt;
  opt.threads = 4;
  const auto res = ft_greedy_spanner(g, 3.0, 2, 17, opt);
  // Determinism aside, the parallel union must still be fault tolerant.
  EXPECT_TRUE(
      check_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 2).valid);
}

}  // namespace
}  // namespace ftspan
