// The scenario engine (src/runner): registries, spec round-trips, driver
// determinism, and parity with the direct library APIs.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "ftspanner/conversion.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "runner/algorithms.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/workloads.hpp"
#include "spanner/greedy.hpp"

namespace ftspan {
namespace {

using runner::AlgoParams;
using runner::ScenarioReport;
using runner::ScenarioSpec;
using runner::WorkloadParams;

// --- registries ---------------------------------------------------------

TEST(Registries, UnknownWorkloadErrorListsValidNames) {
  try {
    runner::workload_registry().get("no_such_workload");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown workload 'no_such_workload'"),
              std::string::npos)
        << msg;
    // Every registered name must appear in the message.
    for (const std::string& name : runner::workload_registry().names())
      EXPECT_NE(msg.find(name), std::string::npos) << "missing " << name;
  }
}

TEST(Registries, UnknownAlgorithmErrorListsValidNames) {
  try {
    runner::algorithm_registry().get("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown algorithm 'bogus'"), std::string::npos);
    for (const std::string& name : runner::algorithm_registry().names())
      EXPECT_NE(msg.find(name), std::string::npos) << "missing " << name;
  }
}

TEST(Registries, CatalogCoverage) {
  // The acceptance floor: >= 6 algorithms and >= 5 workloads registered.
  EXPECT_GE(runner::algorithm_registry().size(), 6u);
  EXPECT_GE(runner::workload_registry().size(), 5u);
  for (const char* name : {"greedy", "baswana_sen", "thorup_zwick",
                           "ft_vertex", "ft_edge", "ft2_rounding",
                           "ft2_dk10", "ft2_lll"})
    EXPECT_TRUE(runner::algorithm_registry().contains(name)) << name;
  for (const char* name : {"gnp", "grid", "sensor", "road", "preferential",
                           "tie_dense"})
    EXPECT_TRUE(runner::workload_registry().contains(name)) << name;
}

TEST(Registries, WorkloadsAreSeedDeterministic) {
  // The `file` workload has no generator seed — its instance is the file.
  // Point it at a saved graph so two make_workload calls load it twice.
  const std::string fgb = ::testing::TempDir() + "/runner_registry.fgb";
  save_graph_binary(fgb, gnp(30, 0.2, 7, 4.0));
  for (const std::string& name : runner::workload_registry().names()) {
    WorkloadParams wp;
    wp.seed = 77;
    if (name == "file") wp.path = fgb;
    const auto a = runner::make_workload(name, wp);
    const auto b = runner::make_workload(name, wp);
    EXPECT_EQ(a.params, b.params) << name;
    EXPECT_EQ(a.g.num_vertices(), b.g.num_vertices()) << name;
    EXPECT_EQ(a.g.num_edges(), b.g.num_edges()) << name;
  }
}

// --- scenario specs -----------------------------------------------------

TEST(ScenarioSpecTest, ParseToStringRoundTripsByteIdentically) {
  const char* cases[] = {
      "workload=gnp wseed=1 algo=ft_vertex k=3 r=1 seed=1 threads=1 reps=1 "
      "validate=sampled trials=40 adversarial=60 vseed=99",
      "workload=complete n=14 wseed=1 algo=greedy k=3,5 r=0 seed=3 "
      "threads=1,2,4,8 reps=2 validate=exact trials=40 adversarial=60 "
      "vseed=99",
      "workload=gnp n=128,256 p=0.09375 wseed=42 algo=ft_vertex k=3 r=1,2,4 "
      "c=1.25 iters=48 seed=7 threads=1 reps=3 validate=none timings=off",
      // The serve load-test keys print between scale and wseed, and only
      // when non-default.
      "workload=serve n=48 qps=64 conns=4 duration=0.4 wseed=2 "
      "algo=ft_vertex k=3 r=1 seed=3 threads=2 reps=1 validate=sampled "
      "trials=5 adversarial=5 vseed=9",
      // chaos/reload_every print after duration; zero (the default) stays
      // invisible (previous case).
      "workload=serve n=48 conns=3 duration=0.4 chaos=0.25 reload_every=50 "
      "wseed=2 algo=ft_vertex k=3 r=1 seed=3 threads=2 reps=1 "
      "validate=none",
      // engine/batch print between threads and reps; engine=auto and
      // batch=0 are the defaults and must stay invisible (first case above).
      "workload=gnp wseed=1 algo=ft_vertex k=3 r=2 seed=1 threads=2 "
      "engine=bucket batch=32 reps=1 validate=none",
      "workload=gnp wseed=1 algo=greedy k=3 r=0 seed=1 threads=1 "
      "engine=heap reps=1 validate=none",
      // ISSUE 10 keys: max_weight prints after scale; bucket_max and pin
      // print after batch; all three stay invisible at their defaults
      // (every case above). format_double prints 100000 in its shortest
      // round-trip form "1e+05" — that IS the canonical spelling.
      "workload=gnp n=64 max_weight=1e+05 wseed=1 algo=greedy k=3 r=0 "
      "seed=1 threads=1 engine=delta bucket_max=8192 pin=on reps=1 "
      "validate=none",
      "workload=gnp wseed=1 algo=ft_vertex k=3 r=1 seed=1 threads=2 "
      "bucket_max=1048576 reps=1 validate=none",
  };
  for (const char* text : cases) {
    const ScenarioSpec spec = ScenarioSpec::parse(text);
    const std::string canonical = spec.to_string();
    // parse → to_string → parse: identical spec, identical bytes.
    const ScenarioSpec again = ScenarioSpec::parse(canonical);
    EXPECT_EQ(spec, again) << text;
    EXPECT_EQ(canonical, again.to_string()) << text;
  }
  // The cases above are already canonical: to_string must reproduce them.
  for (const char* text : cases)
    EXPECT_EQ(ScenarioSpec::parse(text).to_string(), text);
}

TEST(ScenarioSpecTest, LaterKeysOverrideEarlierOnes) {
  const ScenarioSpec spec =
      ScenarioSpec::parse("workload=gnp r=1 r=2,3 seed=5 seed=9");
  EXPECT_EQ(spec.r, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(spec.seed, 9u);
}

TEST(ScenarioSpecTest, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(ScenarioSpec::parse("wibble=1"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("r=two"), std::invalid_argument);
  // strtoull would silently wrap negatives; the parser must reject them.
  EXPECT_THROW(ScenarioSpec::parse("r=-1"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("seed=+7"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("validate=maybe"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("timings=sometimes"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("engine=quantum"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("batch=-1"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("pin=maybe"), std::invalid_argument);
  try {
    ScenarioSpec::parse("frobnicate=1");
  } catch (const std::invalid_argument& e) {
    // The unknown-key error teaches the valid keys, new ones included.
    EXPECT_NE(std::string(e.what()).find("valid keys"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("chaos"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("reload_every"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("max_weight"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bucket_max"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("pin"), std::string::npos);
  }
}

TEST(ScenarioSpecTest, RejectsOutOfRangeNumericValues) {
  // Range checks on the numeric keys: every case used to parse silently
  // and flow a nonsense value into the generators/algorithms.
  const char* bad[] = {
      "p=nan",        "p=1.5",       "p=-0.5",       "p=inf",
      "scale=0",      "scale=-2",    "scale=nan",    "scale=inf",
      "c=0",          "c=0.99",      "c=-1",         "c=nan",
      "k=0.5",        "k=0",         "k=nan",        "k=3,0.5",
      "qps=-1",       "qps=nan",     "qps=inf",
      "conns=0",      "duration=-1", "duration=nan", "duration=inf",
      "chaos=1.5",    "chaos=-0.1",  "chaos=nan",    "chaos=inf",
      "reload_every=-1",
      // ISSUE 10 knobs: max_weight must be a whole number >= 1 (or the
      // 0 default); bucket_max is range-checked against kBucketMaxCeiling.
      "max_weight=-1", "max_weight=0.5", "max_weight=nan", "max_weight=inf",
      "bucket_max=-1", "bucket_max=0.5", "bucket_max=nan", "bucket_max=inf",
      "bucket_max=1048577",
  };
  for (const char* text : bad) {
    const std::string key(text, std::strchr(text, '=') - text);
    try {
      ScenarioSpec::parse(text);
      FAIL() << "expected std::invalid_argument for \"" << text << "\"";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
          << "message for \"" << text << "\" was: " << e.what();
    }
  }
  // The boundary values themselves stay valid.
  EXPECT_EQ(ScenarioSpec::parse("p=0").p, 0.0);
  EXPECT_EQ(ScenarioSpec::parse("p=1").p, 1.0);
  EXPECT_EQ(ScenarioSpec::parse("c=1").c, 1.0);
  EXPECT_EQ(ScenarioSpec::parse("k=1").k, (std::vector<double>{1.0}));
  EXPECT_EQ(ScenarioSpec::parse("qps=0").qps, 0.0);
  EXPECT_EQ(ScenarioSpec::parse("conns=1").conns, 1u);
  EXPECT_EQ(ScenarioSpec::parse("duration=0").duration, 0.0);
  EXPECT_EQ(ScenarioSpec::parse("chaos=0").chaos, 0.0);
  EXPECT_EQ(ScenarioSpec::parse("chaos=1").chaos, 1.0);
  EXPECT_EQ(ScenarioSpec::parse("reload_every=0").reload_every, 0u);
  EXPECT_EQ(ScenarioSpec::parse("max_weight=0").max_weight, 0.0);
  EXPECT_EQ(ScenarioSpec::parse("max_weight=1").max_weight, 1.0);
  EXPECT_EQ(ScenarioSpec::parse("bucket_max=0").bucket_max, 0.0);
  EXPECT_EQ(ScenarioSpec::parse("bucket_max=1").bucket_max, 1.0);
  EXPECT_EQ(ScenarioSpec::parse("bucket_max=1048576").bucket_max, 1048576.0);
}

TEST(ScenarioSpecTest, RejectsWhitespaceInPath) {
  // Specs are whitespace-tokenized: a path containing a space cannot
  // round-trip through to_string/parse (the splitter would truncate it into
  // a different spec), so both ends must reject it instead of corrupting
  // the spec silently.
  ScenarioSpec spec;
  spec.workload = "file";
  spec.path = "graphs/my graph.fgb";
  try {
    spec.to_string();
    FAIL() << "expected std::invalid_argument for a path with whitespace";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("whitespace"), std::string::npos)
        << e.what();
  }
  spec.path = "graphs/tab\tgraph.fgb";
  EXPECT_THROW(spec.to_string(), std::invalid_argument);
  // A whitespace-free path round-trips untouched.
  spec.path = "graphs/clean.fgb";
  EXPECT_EQ(ScenarioSpec::parse(spec.to_string()).path, spec.path);
}

TEST(ScenarioSpecTest, IntegerBoundaryValuesErrorWithTheKeyName) {
  // strtoull accepts out-of-range input by saturating (and sets ERANGE);
  // the parser must surface that as a hard error, not a silent clamp.
  const char* bad[] = {
      "r=99999999999999999999999",     // > 2^64: ERANGE saturation
      "seed=18446744073709551616",     // exactly 2^64
      "threads=",                      // empty value
      "batch=",                        // empty value, new key
      "r=-1",                          // strtoull would wrap to 2^64-1
  };
  for (const char* text : bad) {
    const std::string key(text, std::strchr(text, '=') - text);
    try {
      ScenarioSpec::parse(text);
      FAIL() << "expected std::invalid_argument for \"" << text << "\"";
    } catch (const std::invalid_argument& e) {
      // The message must name the offending key.
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
          << "message for \"" << text << "\" was: " << e.what();
    }
  }
  // The extreme *valid* value still parses exactly.
  EXPECT_EQ(ScenarioSpec::parse("seed=18446744073709551615").seed,
            18446744073709551615ull);
}

TEST(ScenarioSpecTest, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(runner::format_double(3.0), "3");
  EXPECT_EQ(runner::format_double(0.05), "0.05");
  EXPECT_EQ(runner::format_double(0.09375), "0.09375");
  const double ugly = 1.7 / 7.3;
  EXPECT_EQ(std::strtod(runner::format_double(ugly).c_str(), nullptr), ugly);
}

// --- the driver ---------------------------------------------------------

TEST(ScenarioRunner, ExpandsSweepsInDocumentedOrder) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "workload=gnp n=16,24 p=0.4 wseed=3 algo=ft_vertex k=3 r=1,2 "
      "seed=5 threads=1 reps=1 validate=none");
  const ScenarioReport report = runner::run_scenario(spec);
  ASSERT_EQ(report.cells.size(), 4u);  // n-major, then k, then r, then threads
  EXPECT_EQ(report.cells[0].n, 16u);
  EXPECT_EQ(report.cells[0].r, 1u);
  EXPECT_EQ(report.cells[1].n, 16u);
  EXPECT_EQ(report.cells[1].r, 2u);
  EXPECT_EQ(report.cells[2].n, 24u);
  EXPECT_EQ(report.cells[3].n, 24u);
}

TEST(ScenarioRunner, MatchesDirectLibraryCalls) {
  // The runner cell for ft_vertex must reproduce ft_greedy_spanner
  // bit-for-bit: same workload instance, same conversion, same edge set.
  const ScenarioSpec spec = ScenarioSpec::parse(
      "workload=gnp n=48 p=0.2 wseed=11 algo=ft_vertex k=3 r=2 c=1.5 seed=13 "
      "threads=1 reps=2 validate=exact trials=40 adversarial=60 vseed=99");
  const ScenarioReport report = runner::run_scenario(spec);
  ASSERT_EQ(report.cells.size(), 1u);
  const runner::ScenarioCell& cell = report.cells[0];

  const Graph g = gnp(48, 0.2, 11);
  ConversionOptions opt;
  opt.iteration_constant = 1.5;
  const auto direct = ft_greedy_spanner(g, 3.0, 2, 13, opt);
  EXPECT_EQ(cell.m, g.num_edges());
  EXPECT_EQ(cell.edges, direct.edges.size());
  EXPECT_EQ(cell.edges_hash, runner::edge_set_hash(direct.edges));
  EXPECT_EQ(static_cast<std::size_t>(cell.stat("iterations")),
            direct.iterations);
}

TEST(ScenarioRunner, RepetitionsReuseBoundScratchWithoutChangingMetrics) {
  const Graph g = gnp(40, 0.25, 7);
  const runner::BoundAlgorithm bound =
      runner::algorithm_registry().get("ft_vertex").bind(g);
  AlgoParams params;
  params.k = 3.0;
  params.r = 1;
  params.c = 0.5;
  params.seed = 21;
  const runner::AlgoResult first = bound(params);
  for (int rep = 0; rep < 3; ++rep) {
    const runner::AlgoResult again = bound(params);
    EXPECT_EQ(again.edges, first.edges) << "rep " << rep;
  }
}

TEST(ScenarioRunner, JsonIsBitIdenticalAcrossThreadCounts) {
  // The determinism contract end to end: same spec and seeds, timings off,
  // any thread count — every computed metric in the emitted cells is
  // byte-identical. The only fields allowed to differ are the ones that
  // *echo* the requested width ("threads": N and the threads_used stat);
  // the normalizer below blanks exactly those before comparing.
  const auto normalize = [](std::string s) {
    for (const char* needle : {"\"threads\": ", "\"threads_used\": "}) {
      std::size_t at = 0;
      while ((at = s.find(needle, at)) != std::string::npos) {
        at += std::string(needle).size();
        while (at < s.size() && (std::isdigit(s[at]) != 0)) s.erase(at, 1);
      }
    }
    return s;
  };
  std::string cells_at_1;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::ostringstream spec_text;
    spec_text << "workload=gnp n=60 p=0.2 wseed=3 algo=ft_vertex k=3 r=1,2 "
                 "c=1.5 seed=5 threads="
              << threads
              << " reps=2 validate=sampled trials=6 adversarial=6 vseed=9 "
                 "timings=off";
    const ScenarioReport report =
        runner::run_scenario(ScenarioSpec::parse(spec_text.str()));
    std::ostringstream json;
    runner::print_json(report, json);
    const std::string text = json.str();
    // Compare everything from the cells array on (the echoed spec string
    // legitimately differs in its threads= token).
    const std::size_t at = text.find("\"cells\"");
    ASSERT_NE(at, std::string::npos);
    const std::string cells = normalize(text.substr(at));
    EXPECT_NE(cells.find("\"edges_hash\""), std::string::npos);
    if (threads == 1)
      cells_at_1 = cells;
    else
      EXPECT_EQ(cells, cells_at_1) << "threads=" << threads;
  }
}

TEST(ScenarioRunner, TwoSpannerAlgorithmsForceK2AndValidate) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "workload=gnp n=14 p=0.4 wseed=7 algo=ft2_rounding k=3 r=1 seed=3 "
      "reps=1 validate=exact");
  const ScenarioReport report = runner::run_scenario(spec);
  ASSERT_EQ(report.cells.size(), 1u);
  const runner::ScenarioCell& cell = report.cells[0];
  EXPECT_EQ(cell.k, 2.0);  // fixed_k overrides the spec's k=3
  EXPECT_TRUE(cell.valid) << "worst stretch " << cell.worst_stretch;
  EXPECT_EQ(cell.stat("lemma_valid"), 1.0);
  EXPECT_GT(cell.stat("lp_value"), 0.0);
}

TEST(ScenarioRunner, UnknownNamesSurfaceFromTheDriver) {
  ScenarioSpec spec;
  spec.workload = "mystery";
  EXPECT_THROW(runner::run_scenario(spec), std::invalid_argument);
  spec.workload = "gnp";
  spec.algo = "mystery";
  EXPECT_THROW(runner::run_scenario(spec), std::invalid_argument);
}

TEST(ScenarioRunner, PresetsParseAndCoverEveryAlgorithm) {
  for (const std::string& name : runner::preset_registry().names()) {
    const runner::ScenarioPreset& preset =
        runner::preset_registry().get(name);
    // Every committed preset must parse and name registered entries.
    const ScenarioSpec spec = ScenarioSpec::parse(preset.spec);
    EXPECT_TRUE(runner::workload_registry().contains(spec.workload)) << name;
    EXPECT_TRUE(runner::algorithm_registry().contains(spec.algo)) << name;
  }
  for (const std::string& algo : runner::algorithm_registry().names())
    EXPECT_TRUE(runner::preset_registry().contains("smoke_" + algo)) << algo;
}

}  // namespace
}  // namespace ftspan
