#include "ftspanner/validate.hpp"

#include <gtest/gtest.h>

#include "ftspanner/conversion.hpp"
#include "graph/generators.hpp"
#include "spanner/greedy.hpp"

namespace ftspan {
namespace {

TEST(CountFaultSets, SmallValues) {
  EXPECT_EQ(count_fault_sets(5, 0), 1u);               // only ∅
  EXPECT_EQ(count_fault_sets(5, 1), 6u);               // ∅ + 5
  EXPECT_EQ(count_fault_sets(5, 2), 16u);              // 1 + 5 + 10
  EXPECT_EQ(count_fault_sets(4, 4), 16u);              // all subsets
  EXPECT_EQ(count_fault_sets(4, 10), 16u);             // r > n saturates at 2^n
}

TEST(CountFaultSets, SaturatesInsteadOfOverflowing) {
  EXPECT_GT(count_fault_sets(1000, 20), 1'000'000'000u);
}

TEST(ExactCheck, SpannerOfItselfIsAlwaysValid) {
  const Graph g = gnp(12, 0.5, 3);
  const auto res = check_ft_spanner_exact(g, g, 3.0, 2);
  EXPECT_TRUE(res.valid);
  EXPECT_DOUBLE_EQ(res.worst_stretch, 1.0);
  EXPECT_EQ(res.fault_sets_checked, count_fault_sets(12, 2));
}

TEST(ExactCheck, DetectsNonFaultTolerantSpanner) {
  // Star spanner of K_5 is a 2-spanner but dies with the center.
  const Graph g = complete(5);
  const Graph h = star(5);
  EXPECT_TRUE(check_ft_spanner_exact(g, h, 2.0, 0).valid);
  const auto res = check_ft_spanner_exact(g, h, 2.0, 1);
  EXPECT_FALSE(res.valid);
  // Witness should be the center.
  EXPECT_TRUE(res.witness_faults.contains(0));
}

TEST(ExactCheck, WitnessPairIsReal) {
  const Graph g = complete(6);
  const Graph h = star(6);
  const auto res = check_ft_spanner_exact(g, h, 3.0, 1);
  ASSERT_FALSE(res.valid);
  EXPECT_NE(res.witness_u, kInvalidVertex);
  EXPECT_NE(res.witness_v, kInvalidVertex);
  EXPECT_TRUE(g.has_edge(res.witness_u, res.witness_v));
  EXPECT_FALSE(res.witness_faults.contains(res.witness_u));
  EXPECT_FALSE(res.witness_faults.contains(res.witness_v));
}

TEST(ExactCheck, TooManyFaultSetsThrows) {
  const Graph g = gnp(100, 0.1, 1);
  EXPECT_THROW(check_ft_spanner_exact(g, g, 3.0, 8), std::runtime_error);
}

TEST(SampledCheck, AgreesWithExactOnValidSpanner) {
  const Graph g = complete(14);
  const auto ft = ft_greedy_spanner(g, 3.0, 1, 7);
  const Graph h = g.edge_subgraph(ft.edges);
  ASSERT_TRUE(check_ft_spanner_exact(g, h, 3.0, 1).valid);
  EXPECT_TRUE(check_ft_spanner_sampled(g, h, 3.0, 1, 200, 200, 5).valid);
}

TEST(SampledCheck, AdversaryFindsStarWeakness) {
  // Random fault sets rarely hit the star center for large n, but the
  // targeted adversary fails interior path vertices — i.e. the center.
  const Graph g = complete(40);
  const Graph h = star(40);
  const auto res = check_ft_spanner_sampled(g, h, 2.0, 1, 0, 50, 5);
  EXPECT_FALSE(res.valid);
}

TEST(SampledCheck, CountsFaultSets) {
  const Graph g = complete(10);
  const auto res = check_ft_spanner_sampled(g, g, 2.0, 1, 17, 9, 5);
  EXPECT_EQ(res.fault_sets_checked, 26u);
}

TEST(FtCheckResult, ConsiderTracksWorst) {
  FtCheckResult res;
  res.witness_faults = VertexSet(4);
  VertexSet f(4, {1});
  res.consider(2.5, f, 0, 2, 3.0);
  EXPECT_TRUE(res.valid);  // 2.5 <= 3
  EXPECT_DOUBLE_EQ(res.worst_stretch, 2.5);
  VertexSet f2(4, {2});
  res.consider(3.5, f2, 0, 3, 3.0);
  EXPECT_FALSE(res.valid);
  EXPECT_EQ(res.witness_v, 3u);
  // A smaller stretch later does not overwrite the worst.
  res.consider(1.5, f, 0, 1, 3.0);
  EXPECT_DOUBLE_EQ(res.worst_stretch, 3.5);
}

}  // namespace
}  // namespace ftspan
