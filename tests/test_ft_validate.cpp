#include "ftspanner/validate.hpp"

#include <gtest/gtest.h>

#include "ftspanner/conversion.hpp"
#include "graph/generators.hpp"
#include "spanner/greedy.hpp"

namespace ftspan {
namespace {

TEST(CountFaultSets, SmallValues) {
  EXPECT_EQ(count_fault_sets(5, 0), 1u);               // only ∅
  EXPECT_EQ(count_fault_sets(5, 1), 6u);               // ∅ + 5
  EXPECT_EQ(count_fault_sets(5, 2), 16u);              // 1 + 5 + 10
  EXPECT_EQ(count_fault_sets(4, 4), 16u);              // all subsets
  EXPECT_EQ(count_fault_sets(4, 10), 16u);             // r > n saturates at 2^n
}

TEST(CountFaultSets, SaturatesInsteadOfOverflowing) {
  EXPECT_GT(count_fault_sets(1000, 20), 1'000'000'000u);
}

TEST(CountFaultSets, BoundaryRZeroIsAlwaysOne) {
  // r = 0: only the empty fault set, for any n (including n = 0).
  EXPECT_EQ(count_fault_sets(0, 0), 1u);
  EXPECT_EQ(count_fault_sets(1, 0), 1u);
  EXPECT_EQ(count_fault_sets(1'000'000'000, 0), 1u);
}

TEST(CountFaultSets, BoundaryLargeNSmallR) {
  // Exact values stay exact as long as they fit: 1 + n + C(n, 2).
  const std::size_t n = 1'000'000;
  EXPECT_EQ(count_fault_sets(n, 1), n + 1);
  EXPECT_EQ(count_fault_sets(n, 2), 1 + n + n * (n - 1) / 2);
}

TEST(CountFaultSets, BoundaryRNearNSaturates) {
  // 2^64 and 2^64 - C(64, 64) both exceed the saturation cap, and once
  // saturated the count is monotone-stable: the same cap for every larger
  // argument.
  const std::size_t cap = count_fault_sets(64, 64);
  EXPECT_GT(cap, std::size_t{1} << 61);
  EXPECT_EQ(count_fault_sets(64, 63), cap);
  EXPECT_EQ(count_fault_sets(200, 199), cap);
  EXPECT_EQ(count_fault_sets(200, 200), cap);
  // r > n saturates at 2^n when that still fits...
  EXPECT_EQ(count_fault_sets(20, 1000), std::size_t{1} << 20);
  // ...and at the cap when it does not.
  EXPECT_EQ(count_fault_sets(80, 1000), cap);
}

TEST(ExactCheck, SpannerOfItselfIsAlwaysValid) {
  const Graph g = gnp(12, 0.5, 3);
  const auto res = check_ft_spanner_exact(g, g, 3.0, 2);
  EXPECT_TRUE(res.valid);
  EXPECT_DOUBLE_EQ(res.worst_stretch, 1.0);
  EXPECT_EQ(res.fault_sets_checked, count_fault_sets(12, 2));
}

TEST(ExactCheck, DetectsNonFaultTolerantSpanner) {
  // Star spanner of K_5 is a 2-spanner but dies with the center.
  const Graph g = complete(5);
  const Graph h = star(5);
  EXPECT_TRUE(check_ft_spanner_exact(g, h, 2.0, 0).valid);
  const auto res = check_ft_spanner_exact(g, h, 2.0, 1);
  EXPECT_FALSE(res.valid);
  // Witness should be the center.
  EXPECT_TRUE(res.witness_faults.contains(0));
}

TEST(ExactCheck, WitnessPairIsReal) {
  const Graph g = complete(6);
  const Graph h = star(6);
  const auto res = check_ft_spanner_exact(g, h, 3.0, 1);
  ASSERT_FALSE(res.valid);
  EXPECT_NE(res.witness_u, kInvalidVertex);
  EXPECT_NE(res.witness_v, kInvalidVertex);
  EXPECT_TRUE(g.has_edge(res.witness_u, res.witness_v));
  EXPECT_FALSE(res.witness_faults.contains(res.witness_u));
  EXPECT_FALSE(res.witness_faults.contains(res.witness_v));
}

TEST(ExactCheck, TooManyFaultSetsThrows) {
  const Graph g = gnp(100, 0.1, 1);
  EXPECT_THROW(check_ft_spanner_exact(g, g, 3.0, 8), std::runtime_error);
}

TEST(ExactCheck, TooManyFaultSetsMessageReportsParameters) {
  const Graph g = gnp(100, 0.1, 1);
  try {
    check_ft_spanner_exact(g, g, 3.0, 8);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("check_ft_spanner_exact"), std::string::npos) << msg;
    EXPECT_NE(msg.find("n=100"), std::string::npos) << msg;
    EXPECT_NE(msg.find("r=8"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(count_fault_sets(100, 8))),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("max_fault_sets=2000000"), std::string::npos) << msg;
  }
}

TEST(ExactCheck, CustomCapIsReportedInMessage) {
  const Graph g = complete(10);
  try {
    check_ft_spanner_exact(g, g, 2.0, 2, /*max_fault_sets=*/5);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("n=10"), std::string::npos) << msg;
    EXPECT_NE(msg.find("r=2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("56"), std::string::npos) << msg;  // 1 + 10 + 45
    EXPECT_NE(msg.find("max_fault_sets=5"), std::string::npos) << msg;
  }
}

TEST(SampledCheck, AgreesWithExactOnValidSpanner) {
  const Graph g = complete(14);
  const auto ft = ft_greedy_spanner(g, 3.0, 1, 7);
  const Graph h = g.edge_subgraph(ft.edges);
  ASSERT_TRUE(check_ft_spanner_exact(g, h, 3.0, 1).valid);
  EXPECT_TRUE(check_ft_spanner_sampled(g, h, 3.0, 1, 200, 200, 5).valid);
}

TEST(SampledCheck, AdversaryFindsStarWeakness) {
  // Random fault sets rarely hit the star center for large n, but the
  // targeted adversary fails interior path vertices — i.e. the center.
  const Graph g = complete(40);
  const Graph h = star(40);
  const auto res = check_ft_spanner_sampled(g, h, 2.0, 1, 0, 50, 5);
  EXPECT_FALSE(res.valid);
}

TEST(SampledCheck, CountsFaultSets) {
  const Graph g = complete(10);
  const auto res = check_ft_spanner_sampled(g, g, 2.0, 1, 17, 9, 5);
  EXPECT_EQ(res.fault_sets_checked, 26u);
}

TEST(FtCheckResult, ConsiderTracksWorst) {
  FtCheckResult res;
  res.witness_faults = VertexSet(4);
  VertexSet f(4, {1});
  res.consider(2.5, f, 0, 2, 3.0);
  EXPECT_TRUE(res.valid);  // 2.5 <= 3
  EXPECT_DOUBLE_EQ(res.worst_stretch, 2.5);
  VertexSet f2(4, {2});
  res.consider(3.5, f2, 0, 3, 3.0);
  EXPECT_FALSE(res.valid);
  EXPECT_EQ(res.witness_v, 3u);
  // A smaller stretch later does not overwrite the worst.
  res.consider(1.5, f, 0, 1, 3.0);
  EXPECT_DOUBLE_EQ(res.worst_stretch, 3.5);
}

}  // namespace
}  // namespace ftspan
