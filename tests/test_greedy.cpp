#include "spanner/greedy.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/shortest_paths.hpp"
#include "spanner/verify.hpp"

namespace ftspan {
namespace {

TEST(GreedySpanner, RejectsBadStretch) {
  EXPECT_THROW(greedy_spanner(path(3), 0.5), std::invalid_argument);
}

TEST(GreedySpanner, TreeIsKeptEntirely) {
  // A tree has no redundant edges; any k-spanner must keep all of them.
  const Graph g = path(20);
  EXPECT_EQ(greedy_spanner(g, 3.0).size(), g.num_edges());
}

TEST(GreedySpanner, CompleteGraphStretch3IsSparse) {
  const Graph g = complete(40);
  const auto edges = greedy_spanner(g, 3.0);
  // K_n with unit weights: a 3-spanner can be a star (n-1 edges); the greedy
  // kept-edge set has girth > 4 so it is far below n²/2.
  EXPECT_LT(edges.size(), g.num_edges() / 4);
  EXPECT_TRUE(is_k_spanner(g, g.edge_subgraph(edges), 3.0));
}

TEST(GreedySpanner, StretchOneKeepsShortestPathsExactly) {
  const Graph g = gnp_connected(30, 0.3, 7, 5.0);
  const Graph h = greedy_spanner_graph(g, 1.0);
  EXPECT_TRUE(is_k_spanner(g, h, 1.0));
}

TEST(GreedySpanner, GirthProperty) {
  // Greedy k-spanner has girth > k+1: every kept edge, when added, had no
  // alternative path of length <= k*w. For unit weights and k = 3 that
  // forbids triangles and 4-cycles.
  const Graph g = gnp(40, 0.3, 11);
  const Graph h = greedy_spanner_graph(g, 3.0);
  for (const Edge& e : h.edges()) {
    // Remove e; the remaining distance must exceed 3.
    Graph without(h.num_vertices());
    for (const Edge& f : h.edges())
      if (f.u != e.u || f.v != e.v) without.add_edge(f.u, f.v, f.w);
    EXPECT_GT(pair_distance(without, e.u, e.v, nullptr, 3.0), 3.0);
  }
}

TEST(GreedySpanner, FaultMaskRestrictsSpanner) {
  const Graph g = complete(20);
  VertexSet f(20, {0, 1, 2});
  const auto edges = greedy_spanner(g, 3.0, &f);
  for (EdgeId id : edges) {
    EXPECT_FALSE(f.contains(g.edge(id).u));
    EXPECT_FALSE(f.contains(g.edge(id).v));
  }
  // And it spans the survivors.
  EXPECT_TRUE(is_k_spanner(g, g.edge_subgraph(edges), 3.0, &f));
}

TEST(GreedySpanner, WeightedStretchRespected) {
  const Graph g = gnp_connected(35, 0.25, 13, 8.0);
  for (double k : {2.0, 3.0, 5.0}) {
    const Graph h = greedy_spanner_graph(g, k);
    EXPECT_TRUE(is_k_spanner(g, h, k)) << "k=" << k;
  }
}

TEST(GreedySpanner, SizeBoundFormula) {
  EXPECT_NEAR(greedy_size_bound(100, 3.0), std::pow(100.0, 1.5), 1e-9);
  EXPECT_NEAR(greedy_size_bound(64, 7.0), std::pow(64.0, 1.25), 1e-9);
}

TEST(GreedySpanner, SizeWithinTheoreticalBound) {
  // O(n^{1+2/(k+1)}) with a modest constant; verify constant <= 4 here.
  for (std::uint64_t seed : {1ull, 2ull}) {
    const Graph g = gnp(200, 0.2, seed);
    const auto edges = greedy_spanner(g, 3.0);
    EXPECT_LT(static_cast<double>(edges.size()),
              4.0 * greedy_size_bound(200, 3.0));
  }
}

TEST(GreedySpanner, MonotoneInStretch) {
  const Graph g = gnp(60, 0.3, 17);
  const auto s3 = greedy_spanner(g, 3.0);
  const auto s5 = greedy_spanner(g, 5.0);
  const auto s9 = greedy_spanner(g, 9.0);
  EXPECT_GE(s3.size(), s5.size());
  EXPECT_GE(s5.size(), s9.size());
}

// Property sweep: greedy output is always a valid k-spanner.
class GreedySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, double, int>> {};

TEST_P(GreedySweep, AlwaysValid) {
  const auto [n, p, k, seed] = GetParam();
  const Graph g = gnp(n, p, static_cast<std::uint64_t>(seed), 4.0);
  const Graph h = greedy_spanner_graph(g, k);
  EXPECT_TRUE(is_k_spanner(g, h, k));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GreedySweep,
    ::testing::Combine(::testing::Values<std::size_t>(10, 30, 60),
                       ::testing::Values(0.1, 0.4),
                       ::testing::Values(3.0, 5.0, 7.0),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace ftspan
