#include "ftspanner/edge_faults.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spanner/greedy.hpp"

namespace ftspan {
namespace {

TEST(EdgeConversionIterations, Formula) {
  // r = 1: keep 1/2, q = 1/4 -> ceil(3 ln 100 * 4) = 56.
  EXPECT_EQ(edge_conversion_iterations(1, 100, 1.0), 56u);
  // Scales with c.
  EXPECT_EQ(edge_conversion_iterations(1, 100, 2.0), 111u);
}

TEST(EdgeFt, RejectsR0) {
  EXPECT_THROW(ft_edge_greedy_spanner(path(3), 3.0, 0, 1),
               std::invalid_argument);
}

TEST(DistancesAvoidingEdges, MasksCorrectly) {
  const Graph g = cycle(6);  // two routes between any pair
  std::vector<char> dead(g.num_edges(), 0);
  auto d = distances_avoiding_edges(g, 0, dead);
  EXPECT_DOUBLE_EQ(d[3], 3.0);
  dead[*g.edge_id(0, 1)] = 1;  // force the long way for vertex 1
  d = distances_avoiding_edges(g, 0, dead);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(EdgeFt, OneEdgeFaultOnCompleteGraph) {
  const Graph g = complete(12);
  const auto res = ft_edge_greedy_spanner(g, 3.0, 1, 7);
  const auto check =
      check_edge_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 1);
  EXPECT_TRUE(check.valid) << "worst " << check.worst_stretch;
}

TEST(EdgeFt, PlainGreedyFailsUnderEdgeFaults) {
  const Graph g = complete(12);
  const Graph plain = greedy_spanner_graph(g, 3.0);
  const auto check = check_edge_ft_spanner_exact(g, plain, 3.0, 1);
  EXPECT_FALSE(check.valid);
  EXPECT_FALSE(check.witness_faults.empty());
}

TEST(EdgeFt, TwoEdgeFaultsSmallGnp) {
  const Graph g = gnp(10, 0.6, 3);
  const auto res = ft_edge_greedy_spanner(g, 3.0, 2, 11);
  const auto check =
      check_edge_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 2);
  EXPECT_TRUE(check.valid) << "worst " << check.worst_stretch;
}

TEST(EdgeFt, ExactCheckThrowsOnHugeEnumeration) {
  const Graph g = complete(40);
  EXPECT_THROW(check_edge_ft_spanner_exact(g, g, 3.0, 6, 1000),
               std::runtime_error);
}

TEST(EdgeFt, SampledAdversaryBreaksCutEdgeSpanner) {
  // Spanner = a spanning star of K_20: one edge fault (a star edge) makes
  // some pair unreachable in H while G survives.
  const Graph g = complete(20);
  const Graph h = star(20);
  const auto check = check_edge_ft_spanner_sampled(g, h, 2.0, 1, 0, 60, 5);
  EXPECT_FALSE(check.valid);
}

TEST(EdgeFt, SampledAgreesOnValidSpanner) {
  const Graph g = complete(12);
  const auto res = ft_edge_greedy_spanner(g, 3.0, 1, 13);
  const Graph h = g.edge_subgraph(res.edges);
  ASSERT_TRUE(check_edge_ft_spanner_exact(g, h, 3.0, 1).valid);
  EXPECT_TRUE(check_edge_ft_spanner_sampled(g, h, 3.0, 1, 50, 50, 7).valid);
}

TEST(EdgeFt, IterationOverrideAndDeterminism) {
  const Graph g = gnp(16, 0.5, 5);
  EdgeFtOptions opt;
  opt.iterations = 10;
  const auto a = ft_edge_greedy_spanner(g, 3.0, 2, 99, opt);
  const auto b = ft_edge_greedy_spanner(g, 3.0, 2, 99, opt);
  EXPECT_EQ(a.iterations, 10u);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(EdgeFt, VertexFaultsHarderThanEdgeFaults) {
  // Any r-vertex-FT spanner handles the corresponding edge faults on paths
  // through those vertices, but not vice versa; sanity: the edge-FT spanner
  // here is smaller or equal in typical instances. Just check both valid
  // under edge faults.
  const Graph g = complete(12);
  const auto edge_ft = ft_edge_greedy_spanner(g, 3.0, 1, 17);
  EXPECT_TRUE(check_edge_ft_spanner_exact(
                  g, g.edge_subgraph(edge_ft.edges), 3.0, 1)
                  .valid);
}

}  // namespace
}  // namespace ftspan
