#include "ftspanner/edge_faults.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spanner/greedy.hpp"

namespace ftspan {
namespace {

TEST(EdgeConversionIterations, Formula) {
  // r = 1: keep 1/2, q = 1/4 -> ceil(3 ln 100 * 4) = 56.
  EXPECT_EQ(edge_conversion_iterations(1, 100, 1.0), 56u);
  // Scales with c.
  EXPECT_EQ(edge_conversion_iterations(1, 100, 2.0), 111u);
}

TEST(EdgeConversionIterations, R1UsesKeepHalf) {
  // The r = 1 special case pins keep = 1/2 (not 1/1, which would make the
  // success probability q = keep (1-keep)^r collapse to 0). With keep = 1/2,
  // alpha = ceil(c (r+2) ln n / (1/2 * (1/2)^1)) = ceil(4 c * 3 ln n).
  const double expected = std::ceil(4.0 * 3.0 * std::log(1000.0));
  EXPECT_EQ(edge_conversion_iterations(1, 1000, 1.0),
            static_cast<std::size_t>(expected));
  // r = 0 is clamped to r = 1 by the formula (the conversion itself rejects
  // r = 0 before ever computing alpha).
  EXPECT_EQ(edge_conversion_iterations(0, 1000, 1.0),
            edge_conversion_iterations(1, 1000, 1.0));
}

TEST(EdgeConversionIterations, LargeRGrowsQuadratically) {
  // For r >= 2, q = (1/r)(1-1/r)^r -> 1/(e r), so alpha ~ c (r+2) ln n * e r
  // grows ~ r²: doubling r multiplies alpha by ~4 (within the drift of
  // (1-1/r)^r towards 1/e and the ceil).
  const std::size_t a32 = edge_conversion_iterations(32, 4096, 1.0);
  const std::size_t a64 = edge_conversion_iterations(64, 4096, 1.0);
  const std::size_t a128 = edge_conversion_iterations(128, 4096, 1.0);
  EXPECT_LT(a32, a64);
  EXPECT_LT(a64, a128);
  const double r64 = static_cast<double>(a64) / static_cast<double>(a32);
  const double r128 = static_cast<double>(a128) / static_cast<double>(a64);
  EXPECT_GT(r64, 3.4);
  EXPECT_LT(r64, 4.6);
  EXPECT_GT(r128, 3.4);
  EXPECT_LT(r128, 4.6);
}

TEST(EdgeConversionIterations, ScalesLinearlyInC) {
  // alpha is ceil(c * X): c = 10 gives 10x (up to the two ceils), and more
  // iterations for larger c always.
  const std::size_t base = edge_conversion_iterations(3, 500, 1.0);
  const std::size_t ten = edge_conversion_iterations(3, 500, 10.0);
  EXPECT_GE(ten, 10 * (base - 1));
  EXPECT_LE(ten, 10 * base);
  EXPECT_LT(edge_conversion_iterations(3, 500, 0.1), base);
}

TEST(EdgeConversionIterations, MonotoneInN) {
  EXPECT_LT(edge_conversion_iterations(2, 100, 1.0),
            edge_conversion_iterations(2, 10000, 1.0));
  // n <= 2 is clamped so alpha never vanishes.
  EXPECT_GE(edge_conversion_iterations(2, 0, 1.0), 1u);
}

TEST(EdgeFt, RejectsR0) {
  EXPECT_THROW(ft_edge_greedy_spanner(path(3), 3.0, 0, 1),
               std::invalid_argument);
}

TEST(EdgeFt, RejectsKBelowOne) {
  EXPECT_THROW(ft_edge_greedy_spanner(path(3), 0.5, 1, 1),
               std::invalid_argument);
}

TEST(DistancesAvoidingEdges, MasksCorrectly) {
  const Graph g = cycle(6);  // two routes between any pair
  std::vector<char> dead(g.num_edges(), 0);
  auto d = distances_avoiding_edges(g, 0, dead);
  EXPECT_DOUBLE_EQ(d[3], 3.0);
  dead[*g.edge_id(0, 1)] = 1;  // force the long way for vertex 1
  d = distances_avoiding_edges(g, 0, dead);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(EdgeFt, OneEdgeFaultOnCompleteGraph) {
  const Graph g = complete(12);
  const auto res = ft_edge_greedy_spanner(g, 3.0, 1, 7);
  const auto check =
      check_edge_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 1);
  EXPECT_TRUE(check.valid) << "worst " << check.worst_stretch;
}

TEST(EdgeFt, PlainGreedyFailsUnderEdgeFaults) {
  const Graph g = complete(12);
  const Graph plain = greedy_spanner_graph(g, 3.0);
  const auto check = check_edge_ft_spanner_exact(g, plain, 3.0, 1);
  EXPECT_FALSE(check.valid);
  EXPECT_FALSE(check.witness_faults.empty());
}

TEST(EdgeFt, TwoEdgeFaultsSmallGnp) {
  const Graph g = gnp(10, 0.6, 3);
  const auto res = ft_edge_greedy_spanner(g, 3.0, 2, 11);
  const auto check =
      check_edge_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 2);
  EXPECT_TRUE(check.valid) << "worst " << check.worst_stretch;
}

TEST(EdgeFt, ExactCheckThrowsOnHugeEnumeration) {
  const Graph g = complete(40);
  EXPECT_THROW(check_edge_ft_spanner_exact(g, g, 3.0, 6, 1000),
               std::runtime_error);
}

TEST(EdgeFt, SampledAdversaryBreaksCutEdgeSpanner) {
  // Spanner = a spanning star of K_20: one edge fault (a star edge) makes
  // some pair unreachable in H while G survives.
  const Graph g = complete(20);
  const Graph h = star(20);
  const auto check = check_edge_ft_spanner_sampled(g, h, 2.0, 1, 0, 60, 5);
  EXPECT_FALSE(check.valid);
}

TEST(EdgeFt, SampledAgreesOnValidSpanner) {
  const Graph g = complete(12);
  const auto res = ft_edge_greedy_spanner(g, 3.0, 1, 13);
  const Graph h = g.edge_subgraph(res.edges);
  ASSERT_TRUE(check_edge_ft_spanner_exact(g, h, 3.0, 1).valid);
  EXPECT_TRUE(check_edge_ft_spanner_sampled(g, h, 3.0, 1, 50, 50, 7).valid);
}

TEST(EdgeFt, IterationOverrideAndDeterminism) {
  const Graph g = gnp(16, 0.5, 5);
  EdgeFtOptions opt;
  opt.iterations = 10;
  const auto a = ft_edge_greedy_spanner(g, 3.0, 2, 99, opt);
  const auto b = ft_edge_greedy_spanner(g, 3.0, 2, 99, opt);
  EXPECT_EQ(a.iterations, 10u);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(EdgeFt, VertexFaultsHarderThanEdgeFaults) {
  // Any r-vertex-FT spanner handles the corresponding edge faults on paths
  // through those vertices, but not vice versa; sanity: the edge-FT spanner
  // here is smaller or equal in typical instances. Just check both valid
  // under edge faults.
  const Graph g = complete(12);
  const auto edge_ft = ft_edge_greedy_spanner(g, 3.0, 1, 17);
  EXPECT_TRUE(check_edge_ft_spanner_exact(
                  g, g.edge_subgraph(edge_ft.edges), 3.0, 1)
                  .valid);
}

}  // namespace
}  // namespace ftspan
