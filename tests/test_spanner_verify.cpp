#include "spanner/verify.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ftspan {
namespace {

TEST(MaxEdgeStretch, IdenticalGraphsHaveStretchOne) {
  const Graph g = gnp_connected(30, 0.2, 3, 4.0);
  EXPECT_DOUBLE_EQ(max_edge_stretch(g, g), 1.0);
}

TEST(MaxEdgeStretch, KnownStretchOnCycle) {
  // C_5 minus one edge: the removed edge's endpoints are 4 apart.
  const Graph g = cycle(5);
  Graph h(5);
  for (const Edge& e : g.edges())
    if (!(e.u == 0 && e.v == 1)) h.add_edge(e.u, e.v, e.w);
  EXPECT_DOUBLE_EQ(max_edge_stretch(g, h), 4.0);
  EXPECT_TRUE(is_k_spanner(g, h, 4.0));
  EXPECT_FALSE(is_k_spanner(g, h, 3.0));
}

TEST(MaxEdgeStretch, DisconnectedSpannerIsInfinite) {
  const Graph g = path(4);
  Graph h(4);
  h.add_edge(0, 1);
  h.add_edge(2, 3);  // missing middle edge
  EXPECT_EQ(max_edge_stretch(g, h), kInfiniteWeight);
}

TEST(MaxEdgeStretch, VertexCountMismatchThrows) {
  EXPECT_THROW(max_edge_stretch(path(4), Graph(3)), std::invalid_argument);
}

TEST(MaxEdgeStretch, FaultAwareExemptsDisconnectedPairs) {
  // 0-1-2 plus 0-2: remove vertex 1; edge (0,2) must still be checked, but
  // edge (0,1)/(1,2) are exempt.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  Graph h(3);
  h.add_edge(0, 2);
  VertexSet f(3, {1});
  EXPECT_DOUBLE_EQ(max_edge_stretch(g, h, &f), 1.0);
  // Without faults, h misses edges (0,1) and (1,2) entirely.
  EXPECT_EQ(max_edge_stretch(g, h), kInfiniteWeight);
}

TEST(MaxEdgeStretch, NoEdgesGivesOne) {
  EXPECT_DOUBLE_EQ(max_edge_stretch(Graph(5), Graph(5)), 1.0);
}

TEST(SampledPairStretch, AgreesWithExactOnSmallGraph) {
  const Graph g = gnp_connected(25, 0.25, 5);
  Graph h(25);
  // h = g minus nothing (copy): stretch 1 everywhere.
  for (const Edge& e : g.edges()) h.add_edge(e.u, e.v, e.w);
  EXPECT_DOUBLE_EQ(sampled_pair_stretch(g, h, 200, 1), 1.0);
}

TEST(SampledPairStretch, DetectsMissingConnectivity) {
  const Graph g = path(6);
  Graph h(6);
  h.add_edge(0, 1);  // mostly disconnected
  EXPECT_EQ(sampled_pair_stretch(g, h, 500, 2), kInfiniteWeight);
}

TEST(SampledPairStretch, LowerBoundsExactStretch) {
  const Graph g = gnp_connected(30, 0.3, 9);
  // Delete a few edges to create stretch.
  Graph h(30);
  for (EdgeId i = 0; i < g.num_edges(); ++i)
    if (i % 7 != 0) {
      const Edge& e = g.edge(i);
      h.add_edge(e.u, e.v, e.w);
    }
  const double exact = max_edge_stretch(g, h);
  const double sampled = sampled_pair_stretch(g, h, 400, 3);
  if (exact < kInfiniteWeight) {
    EXPECT_LE(sampled, exact + 1e-9);
  }
}

}  // namespace
}  // namespace ftspan
