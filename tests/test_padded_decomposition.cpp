#include "local/padded_decomposition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace ftspan::local {
namespace {

using ftspan::Graph;
using ftspan::Vertex;
using ftspan::kInvalidVertex;

TEST(PaddedDecomposition, EveryVertexAssigned) {
  const Graph g = ftspan::gnp_connected(80, 0.08, 3);
  const auto d = sample_padded_decomposition(g, 7);
  for (Vertex v = 0; v < 80; ++v) EXPECT_NE(d.center[v], kInvalidVertex);
}

TEST(PaddedDecomposition, IsolatedVertexIsOwnCluster) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = sample_padded_decomposition(g, 1);
  EXPECT_EQ(d.center[2], 2u);
}

TEST(PaddedDecomposition, SmallestReachingIdWins) {
  // On a path, vertex 0's ball covers whatever its radius allows, and any
  // covered vertex must choose center 0 (the smallest ID overall).
  const Graph g = ftspan::path(30);
  const auto d = sample_padded_decomposition(g, 11);
  for (Vertex v = 0; v < 30; ++v) {
    if (v <= d.radius[0]) {
      EXPECT_EQ(d.center[v], 0u);
    }
  }
}

TEST(PaddedDecomposition, RadiiRespectCap) {
  const Graph g = ftspan::gnp(200, 0.05, 5);
  const auto d = sample_padded_decomposition(g, 9);
  for (Vertex v = 0; v < 200; ++v) EXPECT_LE(d.radius[v], d.radius_cap);
}

TEST(PaddedDecomposition, ClusterDiameterLogarithmic) {
  // diam(C ∪ {center}) <= 2 * radius_cap = O(log n).
  const Graph g = ftspan::gnp_connected(150, 0.05, 13);
  const auto d = sample_padded_decomposition(g, 13);
  EXPECT_LE(max_cluster_diameter(g, d), 2 * d.radius_cap);
}

TEST(PaddedDecomposition, PaddingProbabilityAtLeastHalf) {
  // Definition 3.6 condition 2, measured empirically: the fraction of
  // (vertex, sample) pairs with N(x) ⊆ P(x) should be >= (1-p)² ~ 0.64;
  // assert the paper's 1/2 with slack.
  const Graph g = ftspan::gnp_connected(60, 0.08, 17);
  std::size_t padded = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto d = sample_padded_decomposition(g, seed);
    for (Vertex v = 0; v < 60; ++v) {
      padded += is_padded(g, d, v);
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(padded) / total, 0.5);
}

TEST(PaddedDecomposition, DistributedMatchesCentralizedRule) {
  // Same seed -> same radii -> identical assignment.
  const Graph g = ftspan::gnp_connected(50, 0.1, 19);
  const auto c = sample_padded_decomposition(g, 23);
  const auto d = distributed_padded_decomposition(g, 23);
  EXPECT_EQ(c.center, d.center);
  EXPECT_EQ(c.radius, d.radius);
}

TEST(PaddedDecomposition, DistributedRoundsAreLogarithmic) {
  const Graph g = ftspan::gnp_connected(100, 0.07, 29);
  RunStats stats;
  const auto d = distributed_padded_decomposition(g, 31, {}, &stats);
  EXPECT_EQ(stats.rounds, d.radius_cap + 1);
  const double ln_n = std::log(100.0);
  EXPECT_LE(static_cast<double>(stats.rounds), 8.0 * ln_n + 2.0);
}

TEST(PaddedDecomposition, CentersListedOnce) {
  const Graph g = ftspan::grid(8, 8);
  const auto d = sample_padded_decomposition(g, 37);
  const auto cs = d.centers();
  for (std::size_t i = 1; i < cs.size(); ++i) EXPECT_LT(cs[i - 1], cs[i]);
  // Every vertex's center is in the list.
  for (Vertex v = 0; v < 64; ++v)
    EXPECT_TRUE(std::binary_search(cs.begin(), cs.end(), d.center[v]));
}

TEST(PaddedDecomposition, ClusterOfReturnsMembers) {
  const Graph g = ftspan::path(10);
  const auto d = sample_padded_decomposition(g, 41);
  std::size_t total = 0;
  for (Vertex c : d.centers()) total += d.cluster_of(c).size();
  EXPECT_EQ(total, 10u);  // partition
}

TEST(PaddedDecomposition, HigherPShrinksRadii) {
  const Graph g = ftspan::gnp(100, 0.05, 43);
  PaddedDecompositionOptions lo, hi;
  lo.geometric_p = 0.1;
  hi.geometric_p = 0.6;
  double lo_sum = 0, hi_sum = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto a = sample_padded_decomposition(g, seed, lo);
    const auto b = sample_padded_decomposition(g, seed, hi);
    for (Vertex v = 0; v < 100; ++v) {
      lo_sum += static_cast<double>(a.radius[v]);
      hi_sum += static_cast<double>(b.radius[v]);
    }
  }
  EXPECT_GT(lo_sum, 2.0 * hi_sum);
}

}  // namespace
}  // namespace ftspan::local
