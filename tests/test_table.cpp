// util/table.hpp: the markdown layout and the CSV emit mode.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ftspan {
namespace {

Table sample() {
  Table t({"name", "value", "note"});
  t.row().cell("plain").cell(42).cell(1.5, 2);
  t.row().cell("with, comma").cell("say \"hi\"").cell("line\nbreak");
  t.row().cell("short");  // missing trailing cells pad as empty
  return t;
}

TEST(Table, MarkdownLayoutAlignsColumns) {
  std::ostringstream os;
  sample().print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("| name "), std::string::npos);
  EXPECT_NE(text.find("| plain "), std::string::npos);
  EXPECT_NE(text.find("| 1.50 "), std::string::npos);
  EXPECT_NE(text.find("|------"), std::string::npos);
}

TEST(Table, CsvEmitsHeaderAndRows) {
  Table t({"a", "b"});
  t.row().cell(1).cell(2);
  t.row().cell(3).cell(4);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, CsvQuotesSpecialFieldsAndPadsShortRows) {
  std::ostringstream os;
  sample().print_csv(os);
  EXPECT_EQ(os.str(),
            "name,value,note\n"
            "plain,42,1.50\n"
            "\"with, comma\",\"say \"\"hi\"\"\",\"line\nbreak\"\n"
            "short,,\n");
}

}  // namespace
}  // namespace ftspan
