// Cross-module integration and property tests: each test here ties two or
// more subsystems together (e.g. branch-and-bound against brute-force
// enumeration, LP solutions against the constraint family they were
// separated from, the conversion over a different base construction).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ftspanner/conversion.hpp"
#include "ftspanner/edge_faults.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/shortest_paths.hpp"
#include "spanner/distance_oracle.hpp"
#include "spanner/thorup_zwick.hpp"
#include "spanner2/exact_bb.hpp"
#include "spanner2/formulation.hpp"
#include "spanner2/rounding.hpp"
#include "spanner2/verify2.hpp"

namespace ftspan {
namespace {

// --- exact branch & bound vs brute force over all edge subsets ---

double brute_force_opt(const Digraph& g, std::size_t r) {
  const std::size_t m = g.num_edges();
  double best = kInfiniteWeight;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    std::vector<char> in(m, 0);
    double cost = 0;
    for (std::size_t e = 0; e < m; ++e)
      if (mask >> e & 1) {
        in[e] = 1;
        cost += g.edge(static_cast<EdgeId>(e)).w;
      }
    if (cost >= best) continue;
    if (is_ft_2spanner(g, in, r)) best = cost;
  }
  return best;
}

TEST(Crosscutting, ExactBbMatchesBruteForce) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const Digraph g = di_gnp(5, 0.6, seed, 3.0);
    if (g.num_edges() > 14) continue;  // keep 2^m manageable
    for (std::size_t r : {0u, 1u}) {
      const double brute = brute_force_opt(g, r);
      const auto bb = exact_min_ft_2spanner(g, r);
      ASSERT_TRUE(bb.proven_optimal);
      EXPECT_NEAR(bb.cost, brute, 1e-6) << "seed=" << seed << " r=" << r;
    }
  }
}

// --- LP (4) optimum satisfies every knapsack-cover inequality ---

TEST(Crosscutting, Lp4SolutionSurvivesFullSeparation) {
  for (std::uint64_t seed : {5ull, 6ull}) {
    const Digraph g = di_gnp(10, 0.4, seed);
    const std::size_t r = 2;
    TwoSpannerLp lp = build_two_spanner_lp(g, r);
    const SeparationOracle oracle = knapsack_cover_oracle(lp);
    CuttingPlaneOptions opt;
    const auto res = solve_with_cuts(lp.model, oracle, opt);
    ASSERT_EQ(res.solution.status, LpStatus::kOptimal);
    // The oracle must find nothing at the returned optimum...
    EXPECT_TRUE(oracle(res.solution.x).empty());
    // ...and the model's own constraints must hold numerically.
    EXPECT_LT(lp.model.max_violation(res.solution.x), 1e-6);
  }
}

// --- conversion theorem over the Thorup–Zwick base (Theorem 2.1 is
//     generic in the base construction) ---

TEST(Crosscutting, ConversionOverThorupZwickBase) {
  const Graph g = gnp(14, 0.6, 7);
  const BaseSpanner base = [](const Graph& graph, const VertexSet* mask,
                              std::uint64_t seed) {
    return thorup_zwick_spanner(graph, 2, seed, mask);
  };
  const auto res = fault_tolerant_spanner(g, 1, base, 11);
  const auto check =
      check_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 1);
  EXPECT_TRUE(check.valid) << check.worst_stretch;
}

// --- vertex-FT implies the spanner also handles single *edge* faults on
//     2-connected remainders? Not in general — but an (r=2)-vertex-FT
//     spanner tolerates any single edge fault: failing one endpoint of the
//     edge is at least as damaging as failing the edge, for pairs avoiding
//     that endpoint. We test the implication we can prove: the r-vertex-FT
//     spanner passes the sampled *edge*-fault check with r_edge = 1 when
//     its stretch certificates avoid single vertices (observed empirically
//     on these instances). ---

TEST(Crosscutting, VertexFtSpannerSurvivesSingleEdgeFaultsEmpirically) {
  const Graph g = complete(12);
  const auto res = ft_greedy_spanner(g, 3.0, 2, 13);
  const Graph h = g.edge_subgraph(res.edges);
  const auto check = check_edge_ft_spanner_exact(g, h, 3.0, 1);
  EXPECT_TRUE(check.valid) << check.worst_stretch;
}

// --- distance oracle built on a spanner: stretches compose ---

TEST(Crosscutting, OracleOnSpannerComposesStretch) {
  const Graph g = gnp_connected(40, 0.2, 17, 4.0);
  const Graph h = g.edge_subgraph(thorup_zwick_spanner(g, 2, 19));  // 3-spanner
  const DistanceOracle oracle(h, 2, 23);  // stretch 3 on h
  const auto exact = all_pairs_distances(g);
  for (Vertex u = 0; u < 40; u += 3)
    for (Vertex v = 1; v < 40; v += 3) {
      if (u == v) continue;
      // Composition: oracle(u,v) <= 3 * d_h(u,v) <= 9 * d_g(u,v).
      EXPECT_LE(oracle.query(u, v), 9.0 * exact[u][v] + 1e-9);
      EXPECT_GE(oracle.query(u, v), exact[u][v] - 1e-9);
    }
}

// --- rounding on the undirectable: bidirected instances should cost at
//     most twice their undirected counterpart's LP bound ---

TEST(Crosscutting, BidirectedLpTwiceUndirectedHeuristicBound) {
  const Graph g = gnp(12, 0.5, 29);
  const Digraph d = bidirect(g);
  const auto lp = solve_lp4(d, 1);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  // Any undirected r-FT 2-spanner E'' yields a directed one of double cost;
  // greedy on the undirected side gives such an E''.
  Digraph d_unit = bidirect(g);
  const auto greedy_directed = greedy_ft_2spanner(d_unit, 1);
  EXPECT_LE(lp.value, spanner_cost(d_unit, greedy_directed) + 1e-6);
}

// --- conversion size grows with r under the default (r-scaled) iteration
//     count. (At a FIXED iteration budget this can fail: higher r keeps
//     fewer survivors per iteration, shrinking each contribution.) ---

TEST(Crosscutting, ConversionSizeMonotoneInRWithDefaultIterations) {
  const Graph g = complete(24);
  ConversionOptions opt;
  opt.iteration_constant = 0.25;  // practical preset; keeps runtime small
  std::size_t prev = 0;
  for (std::size_t r : {1u, 2u, 4u}) {
    const auto res = ft_greedy_spanner(g, 3.0, r, 31, opt);
    // Allow 10% slack for sampling noise.
    EXPECT_GE(res.edges.size() * 11, prev * 10) << "r=" << r;
    prev = res.edges.size();
  }
}

// --- validators agree: sampled check never passes what exact rejects
//     (on the same fault model and instance) ---

TEST(Crosscutting, SampledCheckIsWeakerThanExact) {
  const Graph g = complete(10);
  const Graph star_h = star(10);
  const auto exact = check_ft_spanner_exact(g, star_h, 2.0, 1);
  ASSERT_FALSE(exact.valid);
  // Sampled with an adversary finds it too (the converse need not hold).
  const auto sampled = check_ft_spanner_sampled(g, star_h, 2.0, 1, 10, 40, 3);
  EXPECT_FALSE(sampled.valid);
}

// --- fault masks and subgraph_without agree for distances ---

TEST(Crosscutting, MaskAndMaterializedSubgraphAgree) {
  const Graph g = gnp_connected(30, 0.2, 37, 5.0);
  VertexSet f(30, {3, 11, 22});
  const Graph without = g.subgraph_without(f);
  for (Vertex u : {0u, 7u, 29u}) {
    const auto masked = dijkstra(g, u, &f);
    const auto materialized = dijkstra(without, u);
    for (Vertex v = 0; v < 30; ++v) {
      if (f.contains(v) || f.contains(u)) continue;
      EXPECT_DOUBLE_EQ(masked.dist[v], materialized.dist[v]);
    }
  }
}

// --- LP (4) value is monotone in r ---

TEST(Crosscutting, Lp4MonotoneInR) {
  const Digraph g = di_gnp(12, 0.45, 41);
  double prev = -1;
  for (std::size_t r : {0u, 1u, 2u, 3u}) {
    const auto res = solve_lp4(g, r);
    ASSERT_EQ(res.status, LpStatus::kOptimal);
    EXPECT_GE(res.value, prev - 1e-7) << "r=" << r;
    prev = res.value;
  }
}

// --- greedy repair is idempotent ---

TEST(Crosscutting, GreedyRepairIdempotent) {
  const Digraph g = di_gnp(12, 0.4, 43);
  std::vector<char> in(g.num_edges(), 0);
  greedy_repair(g, in, 2);
  auto snapshot = in;
  EXPECT_EQ(greedy_repair(g, in, 2), 0u);
  EXPECT_EQ(in, snapshot);
}

}  // namespace
}  // namespace ftspan
