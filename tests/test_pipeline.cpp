// The dataplane pipeline: SpscRing (bounded lock-free SPSC queue) and
// run_bursts (the burst-batched fan-out driver).
//
// This translation unit overrides the global allocation functions with
// counting wrappers so the steady-state ring tests can assert an exact
// allocation count of zero.
#include "pipeline/burst_pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ftspanner/parallel.hpp"
#include "serve/query.hpp"
#include "util/affinity.hpp"
#include "util/spsc_ring.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ftspan {
namespace {

// --- SpscRing ------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FullAndEmptyAreReportedExactly) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

// Push/pop far beyond the capacity: the 64-bit positions mask down into the
// slot array, so order must survive arbitrarily many wraps.
TEST(SpscRing, WraparoundPreservesFifoOrder) {
  SpscRing<int> ring(4);
  int next_push = 0, next_pop = 0, out = 0;
  for (int round = 0; round < 1000; ++round) {
    // Vary the fill level so head/tail cross the slot boundary at every
    // possible phase.
    const int batch = 1 + round % 4;
    for (int i = 0; i < batch; ++i) ASSERT_TRUE(ring.try_push(next_push++));
    for (int i = 0; i < batch; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, SteadyStateOperationsAreAllocationFree) {
  SpscRing<int> ring(8);
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  int out = 0;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_TRUE(ring.try_pop(out));
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

// The actual SPSC contract: one producer thread, one consumer thread, no
// locks. The consumer must observe every value exactly once, in order.
TEST(SpscRing, ConcurrentProducerConsumerDeliversInOrder) {
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(16);
  std::atomic<bool> failed{false};

  std::thread consumer([&] {
    std::uint64_t expect = 0, v = 0;
    while (expect < kCount) {
      if (!ring.try_pop(v)) {
        std::this_thread::yield();
        continue;
      }
      if (v != expect) {
        failed.store(true);
        return;
      }
      ++expect;
    }
  });

  for (std::uint64_t i = 0; i < kCount; ++i)
    while (!ring.try_push(i)) std::this_thread::yield();
  consumer.join();
  EXPECT_FALSE(failed.load());
}

// The degenerate geometry: one slot. Full after one push, empty after one
// pop — the boundary where an off-by-one in the masked positions would make
// full and empty indistinguishable.
TEST(SpscRing, CapacityOneAlternatesFullAndEmpty) {
  SpscRing<int> ring(1);
  ASSERT_EQ(ring.capacity(), 1u);
  int out = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ring.empty());
    ASSERT_TRUE(ring.try_push(i));
    EXPECT_FALSE(ring.empty());
    EXPECT_FALSE(ring.try_push(-1));  // full at depth 1
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
    EXPECT_FALSE(ring.try_pop(out));
  }
}

// empty() is consumer-side state plus one acquire load of the producer's
// tail — safe to call while the producer is pushing. Run it hot against a
// live producer so TSan can vet the claim; the only invariant it must hold
// is "false implies try_pop succeeds" (from the single consumer's view,
// non-empty cannot become empty without a pop).
TEST(SpscRing, EmptyIsSafeAgainstAConcurrentProducer) {
  constexpr std::uint64_t kCount = 100000;
  SpscRing<std::uint64_t> ring(8);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i)
      while (!ring.try_push(i)) std::this_thread::yield();
  });

  std::uint64_t expect = 0, v = 0;
  while (expect < kCount) {
    if (ring.empty()) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_TRUE(ring.try_pop(v));  // non-empty must imply a poppable item
    ASSERT_EQ(v, expect);
    ++expect;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// The serve daemon's request/response payloads ride rings between the event
// loop and the worker lanes; pin that the non-trivial types (heap-owning
// vectors) move through a ring intact under the real two-thread contract.
TEST(SpscRing, CarriesServeQueryPayloadsAcrossThreads) {
  constexpr std::uint64_t kCount = 20000;
  SpscRing<serve::ServeQuery> ring(4);
  std::atomic<bool> failed{false};

  std::thread consumer([&] {
    serve::ServeQuery q;
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_pop(q)) std::this_thread::yield();
      const auto v = static_cast<Vertex>(i % 97);
      if (q.s != v || q.t != v + 1 || q.avoid_vertices.size() != i % 3 ||
          q.avoid_edges.size() != i % 2) {
        failed.store(true);
        return;
      }
    }
  });

  for (std::uint64_t i = 0; i < kCount; ++i) {
    serve::ServeQuery q;
    q.s = static_cast<Vertex>(i % 97);
    q.t = q.s + 1;
    q.avoid_vertices.assign(i % 3, q.s);
    q.avoid_edges.assign(i % 2, {q.s, q.t});
    while (!ring.try_push(q)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
}

// --- run_bursts ----------------------------------------------------------

// Every index in [0, count) must run exactly once, whatever the worker and
// burst geometry — including bursts larger than the whole count and the
// 0 = default burst size.
TEST(RunBursts, CoversEveryIndexExactlyOnce) {
  const std::size_t counts[] = {0, 1, 7, 64, 257};
  const std::size_t workerses[] = {1, 2, 4};
  const std::size_t bursts[] = {0, 1, 3, 1024};
  for (const std::size_t count : counts)
    for (const std::size_t workers : workerses)
      for (const std::size_t burst : bursts) {
        std::vector<std::atomic<int>> hits(count);
        for (auto& h : hits) h.store(0);
        BurstOptions opt;
        opt.workers = workers;
        opt.burst = burst;
        run_bursts(count, opt, [&hits](std::size_t) -> BurstTask {
          return [&hits](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          };
        });
        for (std::size_t i = 0; i < count; ++i)
          ASSERT_EQ(hits[i].load(), 1)
              << "count=" << count << " workers=" << workers
              << " burst=" << burst << " i=" << i;
      }
}

TEST(RunBursts, WorkerPinningIsDeterministic) {
  // Burst b goes to worker b % workers: record who ran each index and check
  // the round-robin layout directly.
  constexpr std::size_t kCount = 96, kWorkers = 3, kBurst = 8;
  std::vector<std::atomic<std::size_t>> ran_by(kCount);
  for (auto& r : ran_by) r.store(SIZE_MAX);
  BurstOptions opt;
  opt.workers = kWorkers;
  opt.burst = kBurst;
  run_bursts(kCount, opt, [&ran_by](std::size_t w) -> BurstTask {
    return [&ran_by, w](std::size_t i) {
      ran_by[i].store(w, std::memory_order_relaxed);
    };
  });
  for (std::size_t i = 0; i < kCount; ++i)
    EXPECT_EQ(ran_by[i].load(), (i / kBurst) % kWorkers) << "i=" << i;
}

TEST(RunBursts, TaskExceptionPropagatesWithoutDeadlock) {
  // A mid-stream throw must reach the caller even though the coordinator
  // keeps pushing bursts into the thrower's ring (the worker drains and
  // discards them).
  BurstOptions opt;
  opt.workers = 2;
  opt.burst = 1;
  opt.ring_capacity = 2;  // small: a stalled consumer would deadlock the feed
  EXPECT_THROW(
      run_bursts(10000, opt,
                 [](std::size_t) -> BurstTask {
                   return [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   };
                 }),
      std::runtime_error);
}

TEST(RunBursts, FactoryExceptionPropagates) {
  BurstOptions opt;
  opt.workers = 2;
  EXPECT_THROW(run_bursts(100, opt,
                          [](std::size_t w) -> BurstTask {
                            if (w == 1)
                              throw std::runtime_error("factory boom");
                            return [](std::size_t) {};
                          }),
               std::runtime_error);
}

// The consumer contract the conversion engine relies on: union_iterations
// over the burst pipeline produces the same marks as the sequential loop,
// for every (workers, burst) geometry.
TEST(RunBursts, UnionIterationsIsGeometryInvariant) {
  constexpr std::size_t kIters = 200, kEdges = 512;
  const IterationBodyFactory factory = [](std::size_t) -> IterationBody {
    return [](std::size_t it, std::vector<char>& marks) {
      // A deterministic, iteration-dependent scatter.
      for (std::size_t j = 0; j < 16; ++j)
        marks[(it * 31 + j * 97) % kEdges] = 1;
    };
  };
  const std::vector<char> want =
      union_iterations(kIters, 1, kEdges, 0, factory);
  for (const std::size_t workers : {2, 3, 8})
    for (const std::size_t burst : {0, 1, 5, 64})
      EXPECT_EQ(union_iterations(kIters, workers, kEdges, burst, factory),
                want)
          << "workers=" << workers << " burst=" << burst;
}

// The burst inner loop itself must not allocate: after the factory has built
// the per-worker state, processing indices is ring pops + task calls only.
TEST(RunBursts, SingleWorkerInnerLoopIsAllocationFree) {
  BurstOptions opt;
  opt.workers = 1;
  std::size_t sum = 0, before = 0, after = 0;
  run_bursts(100000, opt, [&](std::size_t) -> BurstTask {
    before = g_allocations.load(std::memory_order_relaxed);
    return [&sum](std::size_t i) { sum += i; };
  });
  after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(sum, 0u);
  // The one allowance: materializing the returned BurstTask (a
  // std::function) may allocate once outside the loop.
  EXPECT_LE(after - before, 1u);
}

// --- BurstPool -----------------------------------------------------------

// The persistent pool must behave exactly like run_bursts call after call:
// the factory runs once per worker (not once per run), and every run covers
// its indices exactly once.
TEST(BurstPool, ReusesLanesAcrossRuns) {
  constexpr std::size_t kWorkers = 3;
  std::atomic<std::size_t> factory_calls{0};
  std::vector<std::atomic<int>> hits(257);
  BurstPool pool(kWorkers, [&](std::size_t) -> BurstTask {
    factory_calls.fetch_add(1, std::memory_order_relaxed);
    return [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    };
  });
  EXPECT_EQ(pool.workers(), kWorkers);

  const std::size_t counts[] = {1, 64, 257, 7, 0, 100};
  int rounds = 0;
  for (const std::size_t count : counts) {
    for (auto& h : hits) h.store(0);
    pool.run(count, /*burst=*/3);
    ++rounds;
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), i < count ? 1 : 0)
          << "round=" << rounds << " count=" << count << " i=" << i;
  }
  EXPECT_EQ(factory_calls.load(), kWorkers);
}

// A task exception poisons one run, not the pool: run() rethrows, then the
// next run must succeed (the error slot is cleared).
TEST(BurstPool, RecoversAfterATaskException) {
  std::atomic<bool> armed{true};
  std::atomic<std::size_t> done{0};
  BurstPool pool(2, [&](std::size_t) -> BurstTask {
    return [&](std::size_t i) {
      if (armed.load(std::memory_order_relaxed) && i == 13)
        throw std::runtime_error("boom");
      done.fetch_add(1, std::memory_order_relaxed);
    };
  });
  EXPECT_THROW(pool.run(100, 1), std::runtime_error);
  armed.store(false);
  done.store(0);
  pool.run(100, 1);
  EXPECT_EQ(done.load(), 100u);
}

// A factory that throws poisons its lane permanently: every run rethrows
// (the lane never got a task), but runs still terminate — the lane drains
// its feed without executing it.
TEST(BurstPool, FactoryFailurePoisonsEveryRun) {
  BurstPool pool(2, [](std::size_t w) -> BurstTask {
    if (w == 1) throw std::runtime_error("factory boom");
    return [](std::size_t) {};
  });
  EXPECT_THROW(pool.run(50, 1), std::runtime_error);
  EXPECT_THROW(pool.run(50, 1), std::runtime_error);
}

// --- BurstPool teardown --------------------------------------------------
//
// The pool's destructor runs while worker threads may still be between
// their last completion hand-off and the idle wait; these tests hammer that
// window from every shape the serve layer can produce (see the teardown
// contract in burst_pipeline.hpp). They are primarily TSan/ASan fodder: the
// assertions are thin on purpose — the property under test is "no data
// race, no deadlock, no touch-after-free during teardown".

// Destroy the pool the instant run() returns, while workers are still
// draining out of their final notify. Slow tasks widen the window; several
// rounds make the interleaving vary.
TEST(BurstPool, DestructionImmediatelyAfterRunIsClean) {
  for (int round = 0; round < 8; ++round) {
    std::atomic<std::size_t> done{0};
    {
      BurstPool pool(4, [&done](std::size_t) -> BurstTask {
        return [&done](std::size_t) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          done.fetch_add(1, std::memory_order_relaxed);
        };
      });
      pool.run(64, 1);
    }  // ~BurstPool races the workers' post-completion wind-down
    EXPECT_EQ(done.load(), 64u);
  }
}

// A run that throws still drains every burst before rethrowing, so tearing
// the pool down right out of the catch block must be as safe as after a
// clean run — no worker may still hold a burst whose task state is gone.
TEST(BurstPool, DestructionAfterAThrowingRunIsClean) {
  for (int round = 0; round < 8; ++round) {
    bool threw = false;
    {
      BurstPool pool(3, [](std::size_t) -> BurstTask {
        return [](std::size_t i) {
          if (i == 17) throw std::runtime_error("boom");
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        };
      });
      try {
        pool.run(200, 4);
      } catch (const std::runtime_error&) {
        threw = true;
      }
    }
    EXPECT_TRUE(threw);
  }
}

// Construct-then-destroy with no run in between: the stop flag may be set
// before a worker has even reached its first idle wait (or run its
// factory), and the join must still succeed.
TEST(BurstPool, DestructionWithoutAnyRunIsClean) {
  for (int round = 0; round < 16; ++round) {
    BurstPool pool(4, [](std::size_t) -> BurstTask {
      return [](std::size_t) {};
    });
  }
}

// The epoch-teardown shape: the pool is built and run on one thread, but
// the last owner drops it from another (a retired engine's final reference
// is released by whichever thread held it — for the serve daemon, possibly
// the reload worker). The destructor must not assume the coordinator's
// thread identity.
TEST(BurstPool, DestructionOnADifferentThreadIsClean) {
  std::atomic<std::size_t> done{0};
  auto pool = std::make_unique<BurstPool>(3, [&done](std::size_t) -> BurstTask {
    return [&done](std::size_t) {
      done.fetch_add(1, std::memory_order_relaxed);
    };
  });
  pool->run(100, 2);
  EXPECT_EQ(done.load(), 100u);
  std::thread reaper([p = std::move(pool)]() mutable { p.reset(); });
  reaper.join();
}

// Same deterministic distribution as run_bursts: burst b -> worker
// b % workers, stable across runs of the same pool.
TEST(BurstPool, WorkerPinningMatchesRunBursts) {
  constexpr std::size_t kCount = 96, kWorkers = 3, kBurst = 8;
  std::vector<std::atomic<std::size_t>> ran_by(kCount);
  BurstPool pool(kWorkers, [&ran_by](std::size_t w) -> BurstTask {
    return [&ran_by, w](std::size_t i) {
      ran_by[i].store(w, std::memory_order_relaxed);
    };
  });
  for (int round = 0; round < 3; ++round) {
    for (auto& r : ran_by) r.store(SIZE_MAX);
    pool.run(kCount, kBurst);
    for (std::size_t i = 0; i < kCount; ++i)
      EXPECT_EQ(ran_by[i].load(), (i / kBurst) % kWorkers)
          << "round=" << round << " i=" << i;
  }
}

// --- core affinity (ISSUE 10) -------------------------------------------

// run_bursts reports one affinity slot per worker, and the slots are honest:
// all zero with pin off, all zero on the inline single-worker path (the
// caller's affinity is not ours to change), and — wherever the platform
// supports affinity at all — all one when pinning was requested on a real
// pool.
TEST(RunBursts, LanePinReportIsHonest) {
  const BurstTaskFactory noop = [](std::size_t) -> BurstTask {
    return [](std::size_t) {};
  };

  // count == 0: no lane ever ran, one zero slot per worker either way.
  for (const bool pin : {false, true}) {
    BurstOptions opt;
    opt.workers = 3;
    opt.pin = pin;
    EXPECT_EQ(run_bursts(0, opt, noop), std::vector<char>(3, 0));
  }

  // workers == 1 runs inline on the caller's thread: never pinned, even
  // when asked.
  {
    BurstOptions opt;
    opt.workers = 1;
    opt.pin = true;
    EXPECT_EQ(run_bursts(16, opt, noop), std::vector<char>(1, 0));
  }

  // A real pool with pin off stays unpinned.
  {
    BurstOptions opt;
    opt.workers = 2;
    EXPECT_EQ(run_bursts(16, opt, noop), std::vector<char>(2, 0));
  }

  // Pin on: every lane reports success where the build supports affinity
  // (cores are taken modulo hardware_threads(), so oversubscription cannot
  // fail the call), and reports failure-as-zero where it does not.
  {
    BurstOptions opt;
    opt.workers = 4;
    opt.pin = true;
    const std::vector<char> lanes = run_bursts(16, opt, noop);
    ASSERT_EQ(lanes.size(), 4u);
    const char want = affinity_supported() ? 1 : 0;
    for (std::size_t i = 0; i < lanes.size(); ++i)
      EXPECT_EQ(lanes[i], want) << "lane " << i;
  }
}

// The persistent pool exposes the same per-lane report, stable across runs,
// and pinning must not perturb the deterministic burst distribution.
TEST(BurstPool, PinnedLanesReportAndKeepDeterministicDistribution) {
  constexpr std::size_t kCount = 64, kWorkers = 3, kBurst = 4;
  std::vector<std::atomic<std::size_t>> ran_by(kCount);
  BurstPool pool(
      kWorkers,
      [&ran_by](std::size_t w) -> BurstTask {
        return [&ran_by, w](std::size_t i) {
          ran_by[i].store(w, std::memory_order_relaxed);
        };
      },
      /*ring_capacity=*/64, /*pin=*/true);
  const char want = affinity_supported() ? 1 : 0;
  ASSERT_EQ(pool.pinned_lanes().size(), kWorkers);
  for (std::size_t i = 0; i < kWorkers; ++i)
    EXPECT_EQ(pool.pinned_lanes()[i], want) << "lane " << i;
  EXPECT_EQ(pool.pinned_count(), affinity_supported() ? kWorkers : 0u);
  for (int round = 0; round < 2; ++round) {
    for (auto& r : ran_by) r.store(SIZE_MAX);
    pool.run(kCount, kBurst);
    for (std::size_t i = 0; i < kCount; ++i)
      EXPECT_EQ(ran_by[i].load(), (i / kBurst) % kWorkers)
          << "round=" << round << " i=" << i;
  }
  // The report is a property of construction, not of any particular run.
  EXPECT_EQ(pool.pinned_count(), affinity_supported() ? kWorkers : 0u);
}

TEST(BurstPool, DefaultConstructionDoesNotPin) {
  BurstPool pool(2, [](std::size_t) -> BurstTask {
    return [](std::size_t) {};
  });
  EXPECT_EQ(pool.pinned_lanes(), std::vector<char>(2, 0));
  EXPECT_EQ(pool.pinned_count(), 0u);
}

}  // namespace
}  // namespace ftspan
