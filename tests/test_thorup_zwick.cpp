#include "spanner/thorup_zwick.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "spanner/verify.hpp"

namespace ftspan {
namespace {

TEST(ThorupZwick, RejectsK0) {
  EXPECT_THROW(thorup_zwick_spanner(path(3), 0, 1), std::invalid_argument);
}

TEST(ThorupZwick, K1ReturnsWholeGraph) {
  const Graph g = gnp(30, 0.3, 1);
  EXPECT_EQ(thorup_zwick_spanner(g, 1, 7).size(), g.num_edges());
}

TEST(ThorupZwick, Stretch3OnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const Graph g = gnp(60, 0.2, seed);
    const Graph h = thorup_zwick_spanner_graph(g, 2, seed * 13 + 5);
    EXPECT_TRUE(is_k_spanner(g, h, 3.0)) << "seed=" << seed;
  }
}

TEST(ThorupZwick, Stretch5Weighted) {
  for (std::uint64_t seed : {9ull, 10ull}) {
    const Graph g = gnp(50, 0.3, seed, 5.0);
    const Graph h = thorup_zwick_spanner_graph(g, 3, seed);
    EXPECT_TRUE(is_k_spanner(g, h, 5.0)) << "seed=" << seed;
  }
}

TEST(ThorupZwick, SparsifiesDenseGraphs) {
  const Graph g = complete(100);
  const auto edges = thorup_zwick_spanner(g, 2, 11);
  EXPECT_LT(edges.size(), 4000u);
}

TEST(ThorupZwick, FaultMaskRespected) {
  const Graph g = gnp(40, 0.4, 13);
  VertexSet f(40, {2, 4});
  const auto edges = thorup_zwick_spanner(g, 2, 13, &f);
  for (EdgeId id : edges) {
    EXPECT_FALSE(f.contains(g.edge(id).u));
    EXPECT_FALSE(f.contains(g.edge(id).v));
  }
  EXPECT_TRUE(is_k_spanner(g, g.edge_subgraph(edges), 3.0, &f));
}

TEST(ThorupZwick, DeterministicPerSeed) {
  const Graph g = gnp(50, 0.3, 17);
  EXPECT_EQ(thorup_zwick_spanner(g, 3, 4), thorup_zwick_spanner(g, 3, 4));
}

TEST(ThorupZwick, DisconnectedGraphHandled) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const Graph h = thorup_zwick_spanner_graph(g, 2, 3);
  EXPECT_TRUE(is_k_spanner(g, h, 3.0));
}

class TzSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TzSweep, StretchBound) {
  const auto [k, seed] = GetParam();
  const Graph g = gnp(50, 0.25, static_cast<std::uint64_t>(seed), 3.0);
  const Graph h =
      thorup_zwick_spanner_graph(g, static_cast<std::size_t>(k),
                                 static_cast<std::uint64_t>(seed) * 3 + 2);
  EXPECT_TRUE(is_k_spanner(g, h, 2.0 * k - 1.0));
}

INSTANTIATE_TEST_SUITE_P(Grid, TzSweep,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace ftspan
