#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace ftspan {
namespace {

TEST(GraphIo, RoundTripUndirected) {
  const Graph g = gnp(40, 0.2, 3, 5.0);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(h.edge(i).u, g.edge(i).u);
    EXPECT_EQ(h.edge(i).v, g.edge(i).v);
    EXPECT_DOUBLE_EQ(h.edge(i).w, g.edge(i).w);
  }
}

TEST(GraphIo, RoundTripDirected) {
  const Digraph g = di_gnp(20, 0.2, 5, 3.0);
  std::stringstream ss;
  write_digraph(ss, g);
  const Digraph h = read_digraph(ss);
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(h.edge(i).u, g.edge(i).u);
    EXPECT_EQ(h.edge(i).v, g.edge(i).v);
  }
}

TEST(GraphIo, CommentsAndBlankLinesSkipped) {
  std::stringstream ss("# a comment\n\n3 1 u\n# another\n0 1 2.5\n");
  const Graph g = read_graph(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 2.5);
}

TEST(GraphIo, CrlfLineEndingsAccepted) {
  std::stringstream ss("3 1 u\r\n0 1 2.5\r\n");
  const Graph g = read_graph(ss);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 2.5);
}

TEST(GraphIo, TrailingWhitespaceAccepted) {
  std::stringstream ss("3 1 u   \t\n0 1 2.5 \t \n");
  const Graph g = read_graph(ss);
  ASSERT_EQ(g.num_edges(), 1u);
}

TEST(GraphIo, HeaderKindIsCaseInsensitive) {
  std::stringstream upper("3 1 U\n0 1 2.5\n");
  EXPECT_EQ(read_graph(upper).num_edges(), 1u);
  std::stringstream upper_d("3 1 D\n0 1 2.5\n");
  EXPECT_EQ(read_digraph(upper_d).num_edges(), 1u);
}

TEST(GraphIo, InlineCommentsAccepted) {
  std::stringstream ss("3 1 u # header comment\n0 1 2.5 # edge comment\n");
  const Graph g = read_graph(ss);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 2.5);
}

TEST(GraphIo, TrailingGarbageOnHeaderThrows) {
  std::stringstream ss("3 1 u garbage\n0 1 2.5\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, TrailingGarbageOnEdgeThrows) {
  std::stringstream ss("3 1 u\n0 1 2.5 garbage\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, MalformedHeaderThrows) {
  std::stringstream ss("oops\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, WrongKindThrows) {
  std::stringstream ss("3 0 d\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
  std::stringstream ss2("3 0 u\n");
  EXPECT_THROW(read_digraph(ss2), std::runtime_error);
}

TEST(GraphIo, TruncatedEdgeListThrows) {
  std::stringstream ss("3 2 u\n0 1 1.0\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, MalformedEdgeThrows) {
  std::stringstream ss("3 1 u\n0 x 1.0\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, SaveLoadFile) {
  const Graph g = grid(3, 3);
  const std::string path = ::testing::TempDir() + "/ftspan_io_test.txt";
  save_graph(path, g);
  const Graph h = load_graph(path);
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_graph("/nonexistent/dir/file.txt"), std::runtime_error);
}

}  // namespace
}  // namespace ftspan
