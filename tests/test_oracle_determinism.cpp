// Determinism regression for the StretchOracle's fault-set fan-out: the
// worst witness and the whole FtCheckResult must be bit-identical for every
// thread count (same pattern as tests/test_parallel.cpp for the conversion
// engine).
#include <gtest/gtest.h>

#include "ftspanner/conversion.hpp"
#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "spanner/greedy.hpp"
#include "validate/stretch_oracle.hpp"

namespace ftspan {
namespace {

void expect_bit_identical(const FtCheckResult& a, const FtCheckResult& b,
                          std::size_t threads) {
  EXPECT_EQ(a.valid, b.valid) << "threads=" << threads;
  // EXPECT_EQ (not NEAR): the fold must produce the same double bit for bit.
  EXPECT_EQ(a.worst_stretch, b.worst_stretch) << "threads=" << threads;
  EXPECT_EQ(a.witness_faults, b.witness_faults) << "threads=" << threads;
  EXPECT_EQ(a.witness_u, b.witness_u) << "threads=" << threads;
  EXPECT_EQ(a.witness_v, b.witness_v) << "threads=" << threads;
  EXPECT_EQ(a.fault_sets_checked, b.fault_sets_checked)
      << "threads=" << threads;
}

TEST(OracleDeterminism, ExactCheckBitIdenticalAcrossThreads) {
  // An invalid spanner, so the worst witness is nontrivial.
  const Graph g = complete(12);
  const Graph h = star(12);
  const StretchOracle oracle(g, h, 2.0);
  FtCheckOptions seq;
  seq.threads = 1;
  const FtCheckResult base = oracle.check_exact(2, seq);
  ASSERT_FALSE(base.valid);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    FtCheckOptions par;
    par.threads = threads;
    expect_bit_identical(base, oracle.check_exact(2, par), threads);
  }
}

TEST(OracleDeterminism, SampledCheckBitIdenticalAcrossThreads) {
  const Graph g = gnp(60, 0.15, 21, 4.0);
  const Graph h = greedy_spanner_graph(g, 3.0);  // not fault tolerant
  const StretchOracle oracle(g, h, 3.0);
  FtCheckOptions seq;
  seq.threads = 1;
  const FtCheckResult base = oracle.check_sampled(2, 24, 16, 77, seq);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    FtCheckOptions par;
    par.threads = threads;
    expect_bit_identical(base, oracle.check_sampled(2, 24, 16, 77, par),
                         threads);
  }
}

TEST(OracleDeterminism, WrapperThreadsKnobIsBitIdenticalToo) {
  // Through the legacy entry points (the options overloads).
  const Graph g = gnp(24, 0.4, 3);
  const auto ft = ft_greedy_spanner(g, 3.0, 1, 9);
  const Graph h = g.edge_subgraph(ft.edges);
  const FtCheckResult base = check_ft_spanner_exact(g, h, 3.0, 1);
  for (const std::size_t threads : {2u, 8u}) {
    FtCheckOptions opt;
    opt.threads = threads;
    expect_bit_identical(base, check_ft_spanner_exact(g, h, 3.0, 1, opt),
                         threads);
  }
}

TEST(OracleDeterminism, ThreadsZeroMeansHardwareAndStaysDeterministic) {
  const Graph g = complete(14);
  const Graph h = star(14);
  const StretchOracle oracle(g, h, 2.0);
  FtCheckOptions all;
  all.threads = 0;
  expect_bit_identical(oracle.check_exact(1), oracle.check_exact(1, all), 0);
}

}  // namespace
}  // namespace ftspan
