#include "graph/shortest_paths.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ftspan {
namespace {

Graph diamond() {
  // 0 -1- 1 -1- 3, 0 -1- 2 -1- 3, plus a heavy direct edge 0 -5- 3.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 3, 5.0);
  return g;
}

TEST(Dijkstra, BasicDistances) {
  const auto t = dijkstra(diamond(), 0);
  EXPECT_DOUBLE_EQ(t.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(t.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(t.dist[2], 1.0);
  EXPECT_DOUBLE_EQ(t.dist[3], 2.0);
}

TEST(Dijkstra, ParentsFormTree) {
  const auto t = dijkstra(diamond(), 0);
  EXPECT_EQ(t.parent[0], kInvalidVertex);
  // 3's parent is 1 or 2 (tie), never the heavy direct edge's endpoint 0.
  EXPECT_TRUE(t.parent[3] == 1 || t.parent[3] == 2);
}

TEST(Dijkstra, FaultMaskReroutes) {
  const Graph g = diamond();
  VertexSet f(4, {1});
  auto t = dijkstra(g, 0, &f);
  EXPECT_DOUBLE_EQ(t.dist[3], 2.0);  // via 2
  VertexSet f2(4, {1, 2});
  t = dijkstra(g, 0, &f2);
  EXPECT_DOUBLE_EQ(t.dist[3], 5.0);  // only the direct edge remains
}

TEST(Dijkstra, FaultySourceUnreachable) {
  const Graph g = diamond();
  VertexSet f(4, {0});
  const auto t = dijkstra(g, 0, &f);
  EXPECT_FALSE(t.reachable(0));
  EXPECT_FALSE(t.reachable(3));
}

TEST(Dijkstra, BoundCutsOff) {
  const Graph g = path(10);  // 0-1-...-9, unit weights
  const auto t = dijkstra(g, 0, nullptr, 3.0);
  EXPECT_TRUE(t.reachable(3));
  EXPECT_FALSE(t.reachable(4));
}

TEST(Dijkstra, DisconnectedInfinite) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto t = dijkstra(g, 0);
  EXPECT_FALSE(t.reachable(2));
  EXPECT_EQ(t.dist[2], kInfiniteWeight);
}

TEST(Bfs, HopCountsIgnoreWeights) {
  const Graph g = diamond();  // heavy 0-3 edge is 1 hop
  const auto t = bfs(g, 0);
  EXPECT_DOUBLE_EQ(t.dist[3], 1.0);
}

TEST(Bfs, MaxHopsLimit) {
  const Graph g = path(10);
  const auto t = bfs(g, 0, nullptr, 4);
  EXPECT_TRUE(t.reachable(4));
  EXPECT_FALSE(t.reachable(5));
}

TEST(Bfs, FaultMask) {
  const Graph g = path(5);
  VertexSet f(5, {2});
  const auto t = bfs(g, 0, &f);
  EXPECT_TRUE(t.reachable(1));
  EXPECT_FALSE(t.reachable(3));
}

TEST(PairDistance, MatchesDijkstra) {
  const Graph g = gnp_connected(60, 0.1, 5, 4.0);
  const auto t = dijkstra(g, 7);
  for (Vertex v : {0u, 13u, 59u})
    EXPECT_DOUBLE_EQ(pair_distance(g, 7, v), t.dist[v]);
}

TEST(PairDistance, BoundReturnsInfinityBeyond) {
  const Graph g = path(10);
  EXPECT_EQ(pair_distance(g, 0, 9, nullptr, 4.0), kInfiniteWeight);
  EXPECT_DOUBLE_EQ(pair_distance(g, 0, 4, nullptr, 4.0), 4.0);
}

TEST(AllPairs, SymmetricAndConsistent) {
  const Graph g = gnp_connected(40, 0.15, 9, 3.0);
  const auto d = all_pairs_distances(g);
  for (Vertex u = 0; u < 40; ++u)
    for (Vertex v = u; v < 40; ++v) EXPECT_DOUBLE_EQ(d[u][v], d[v][u]);
  // Triangle inequality on a few triples.
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Vertex a = static_cast<Vertex>(rng.uniform_index(40));
    const Vertex b = static_cast<Vertex>(rng.uniform_index(40));
    const Vertex c = static_cast<Vertex>(rng.uniform_index(40));
    EXPECT_LE(d[a][c], d[a][b] + d[b][c] + 1e-9);
  }
}

TEST(DigraphDijkstra, FollowsDirection) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  auto t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.dist[2], 2.0);
  t = dijkstra(g, 2);
  EXPECT_FALSE(t.reachable(0));  // no reverse arcs
}

TEST(DigraphDijkstra, FaultMask) {
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  VertexSet f(4, {1});
  const auto t = dijkstra(g, 0, &f);
  EXPECT_DOUBLE_EQ(t.dist[3], 2.0);
}

// Property: Dijkstra distances on unit-weight graphs equal BFS hop counts.
class UnitWeightEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(UnitWeightEquivalence, DijkstraEqualsBfs) {
  const Graph g = gnp(80, 0.08, static_cast<std::uint64_t>(GetParam()));
  const auto dj = dijkstra(g, 0);
  const auto bf = bfs(g, 0);
  for (Vertex v = 0; v < 80; ++v) EXPECT_DOUBLE_EQ(dj.dist[v], bf.dist[v]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnitWeightEquivalence,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace ftspan
