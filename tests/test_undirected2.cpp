#include "spanner2/undirected.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ftspan {
namespace {

TEST(UndirectedCheck, WholeGraphValid) {
  const Graph g = gnp(15, 0.4, 3);
  std::vector<char> all(g.num_edges(), 1);
  EXPECT_TRUE(is_ft_2spanner_undirected(g, all, 0));
  EXPECT_TRUE(is_ft_2spanner_undirected(g, all, 3));
}

TEST(UndirectedCheck, NeedsCommonNeighbors) {
  // K_5 minus the selected edge {0,1}: 3 common neighbors.
  const Graph g = complete(5);
  std::vector<char> in(g.num_edges(), 1);
  in[*g.edge_id(0, 1)] = 0;
  EXPECT_TRUE(is_ft_2spanner_undirected(g, in, 2));
  EXPECT_FALSE(is_ft_2spanner_undirected(g, in, 3));
}

TEST(UndirectedApprox, ValidOnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    const Graph g = gnp(12, 0.5, seed);
    for (std::size_t r : {0u, 1u, 2u}) {
      const auto res = approx_ft_2spanner_undirected(g, r, seed * 7 + r);
      EXPECT_TRUE(res.valid) << "seed=" << seed << " r=" << r;
      EXPECT_TRUE(is_ft_2spanner_undirected(g, res.in_spanner, r));
      EXPECT_GE(res.cost, res.lp_value - 1e-6);  // LP is a lower bound
    }
  }
}

TEST(UndirectedApprox, SparsifiesDenseGraph) {
  // complete(8) keeps the bidirected LP small enough for the dense simplex.
  const Graph g = complete(8);
  const auto res = approx_ft_2spanner_undirected(g, 1, 5);
  ASSERT_TRUE(res.valid);
  std::size_t kept = 0;
  for (char b : res.in_spanner) kept += b;
  EXPECT_LT(kept, g.num_edges());
}

TEST(UndirectedApprox, CompleteBipartiteNeedsAllEdges) {
  // K_{a,b} has no length-2 paths between opposite sides: every edge is
  // mandatory even for r = 0 (the paper's Ω(n²) example for k = 2).
  const Graph g = complete_bipartite(4, 4);
  const auto res = approx_ft_2spanner_undirected(g, 0, 3);
  ASSERT_TRUE(res.valid);
  for (char b : res.in_spanner) EXPECT_TRUE(b);
  EXPECT_NEAR(res.lp_value, 16.0, 1e-5);  // LP already forces x = 1
}

TEST(UndirectedApprox, CostAccountsEdgeWeights) {
  Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(2, 3, 4.0);  // a path: everything mandatory
  const auto res = approx_ft_2spanner_undirected(g, 1, 9);
  ASSERT_TRUE(res.valid);
  EXPECT_DOUBLE_EQ(res.cost, 9.0);
}

}  // namespace
}  // namespace ftspan
