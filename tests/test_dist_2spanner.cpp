#include "local/dist_2spanner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spanner2/verify2.hpp"

namespace ftspan::local {
namespace {

using ftspan::Digraph;
using ftspan::di_gnp;
using ftspan::is_ft_2spanner;

TEST(CommunicationGraph, MergesArcPairs) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  const auto comm = communication_graph(g);
  EXPECT_EQ(comm.num_edges(), 2u);
  EXPECT_TRUE(comm.has_edge(0, 1));
  EXPECT_TRUE(comm.has_edge(1, 2));
}

TEST(ClusterLpValues, Lemma38HoldsOnSampledPartitions) {
  // Σ_C LP*(C) <= LP* for every partition (Lemma 3.8).
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Digraph g = di_gnp(12, 0.35, seed);
    const std::size_t r = 1;
    const auto full = ftspan::solve_lp4(g, r);
    ASSERT_EQ(full.status, ftspan::LpStatus::kOptimal);
    const auto comm = communication_graph(g);
    const auto d = sample_padded_decomposition(comm, seed * 7);
    const auto sum = cluster_lp_values(g, r, d);
    EXPECT_LE(sum.sum_cluster_values, full.value + 1e-5)
        << "seed=" << seed;
  }
}

TEST(DistFt2Spanner, ValidOnRandomInstances) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    const Digraph g = di_gnp(10, 0.4, seed);
    for (std::size_t r : {0u, 1u}) {
      const auto res = distributed_ft_2spanner(g, r, seed * 3 + r);
      EXPECT_TRUE(res.valid) << "seed=" << seed << " r=" << r;
      EXPECT_TRUE(is_ft_2spanner(g, res.in_spanner, r));
    }
  }
}

TEST(DistFt2Spanner, IterationCountIsLogarithmic) {
  const Digraph g = di_gnp(12, 0.4, 5);
  DistTwoSpannerOptions opt;
  opt.iteration_constant = 2.0;
  const auto res = distributed_ft_2spanner(g, 0, 7, opt);
  EXPECT_EQ(res.iterations,
            static_cast<std::size_t>(std::ceil(2.0 * std::log(12.0))));
}

TEST(DistFt2Spanner, XTildeCostBoundedByFourLpStar) {
  // Theorem 3.9's accounting: Σ c_e x̃_e <= 4 LP* (before the min with 1,
  // which can only lower it).
  for (std::uint64_t seed : {3ull, 4ull}) {
    const Digraph g = di_gnp(10, 0.45, seed);
    const std::size_t r = 1;
    const auto full = ftspan::solve_lp4(g, r);
    ASSERT_EQ(full.status, ftspan::LpStatus::kOptimal);
    const auto res = distributed_ft_2spanner(g, r, seed);
    EXPECT_LE(res.x_tilde_cost, 4.0 * full.value + 1e-5) << "seed=" << seed;
  }
}

TEST(DistFt2Spanner, RoundsPolylogarithmic) {
  const Digraph g = di_gnp(12, 0.4, 9);
  const auto res = distributed_ft_2spanner(g, 1, 11);
  const double ln_n = std::log(12.0);
  // t = O(log n) iterations x O(log n) rounds each, plus rounding rounds.
  EXPECT_LE(static_cast<double>(res.stats.rounds),
            60.0 * ln_n * ln_n + 40.0);
  EXPECT_GT(res.stats.rounds, res.iterations);  // at least 1 round/iteration
}

TEST(DistFt2Spanner, CostWithinLogFactorOfLp) {
  const Digraph g = di_gnp(12, 0.45, 13);
  const std::size_t r = 1;
  const auto full = ftspan::solve_lp4(g, r);
  ASSERT_EQ(full.status, ftspan::LpStatus::kOptimal);
  ASSERT_GT(full.value, 0.0);
  const auto res = distributed_ft_2spanner(g, r, 15);
  ASSERT_TRUE(res.valid);
  // Generous constant: 8 · 4 · ln n (4 from averaging, ln n from rounding).
  EXPECT_LT(res.cost / full.value, 32.0 * std::log(12.0));
}

TEST(DistFt2Spanner, EmptyGraphTrivial) {
  Digraph g(5);
  const auto res = distributed_ft_2spanner(g, 2, 1);
  EXPECT_TRUE(res.valid);
  EXPECT_DOUBLE_EQ(res.cost, 0.0);
}

}  // namespace
}  // namespace ftspan::local
