#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ftspan {
namespace {

TEST(Properties, ConnectivityBasics) {
  EXPECT_TRUE(is_connected(path(10)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(num_components(g), 2u);
}

TEST(Properties, IsolatedVerticesCount) {
  Graph g(5);
  g.add_edge(0, 1);
  EXPECT_EQ(num_components(g), 4u);
}

TEST(Properties, ConnectivityUnderFaults) {
  const Graph g = path(5);
  VertexSet mid(5, {2});
  EXPECT_FALSE(is_connected(g, &mid));
  EXPECT_EQ(num_components(g, &mid), 2u);
  VertexSet end(5, {0});
  EXPECT_TRUE(is_connected(g, &end));
}

TEST(Properties, HopEccentricityAndDiameter) {
  const Graph g = path(6);
  EXPECT_EQ(hop_eccentricity(g, 0), 5u);
  EXPECT_EQ(hop_eccentricity(g, 3), 3u);
  EXPECT_EQ(hop_diameter(g), 5u);
  EXPECT_EQ(hop_diameter(cycle(8)), 4u);
  EXPECT_EQ(hop_diameter(complete(7)), 1u);
  EXPECT_EQ(hop_diameter(grid(4, 4)), 6u);
}

TEST(Properties, DiameterIgnoresUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(hop_diameter(g), 1u);
}

TEST(Properties, WeakDiameterThroughGraph) {
  // Subset {0, 4} of a 5-cycle: weak diameter goes through the graph (2),
  // even though the subset induces no edges.
  const Graph g = cycle(5);
  EXPECT_EQ(weak_diameter(g, {0, 2}), 2u);
  EXPECT_EQ(weak_diameter(g, {0}), 0u);
  EXPECT_EQ(weak_diameter(g, {}), 0u);
}

TEST(Properties, DegreeHistogram) {
  const Graph g = star(5);  // center degree 4, leaves degree 1
  const auto h = degree_histogram(g);
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[1], 4u);
  EXPECT_EQ(h[4], 1u);
  EXPECT_EQ(h[0], 0u);
}

TEST(Properties, WeaklyConnectedDigraph) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(2, 1);  // no directed path 0->2, but weakly connected
  EXPECT_TRUE(is_weakly_connected(g));
  Digraph h(4);
  h.add_edge(0, 1);
  h.add_edge(2, 3);
  EXPECT_FALSE(is_weakly_connected(h));
}

}  // namespace
}  // namespace ftspan
