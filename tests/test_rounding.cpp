#include "spanner2/rounding.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/generators.hpp"
#include "spanner2/dk10_baseline.hpp"
#include "spanner2/verify2.hpp"

namespace ftspan {
namespace {

TEST(ThresholdRound, AlphaXAboveOneTakesEverything) {
  const Digraph g = di_complete(6);
  std::vector<double> x(g.num_edges(), 1.0);
  const auto in = threshold_round(g, x, 2.0, 1);
  for (char b : in) EXPECT_TRUE(b);
}

TEST(ThresholdRound, ZeroCapacityTakesNothing) {
  const Digraph g = di_complete(6);
  std::vector<double> x(g.num_edges(), 0.0);
  const auto in = threshold_round(g, x, 5.0, 1);
  for (char b : in) EXPECT_FALSE(b);
}

TEST(ThresholdRound, InclusionProbabilityScalesWithAlphaX) {
  const Digraph g = di_complete(30);
  std::vector<double> x(g.num_edges(), 0.05);
  const double alpha = 4.0;
  // Pr[edge kept] = Pr[min(Tu,Tv) <= 0.2] = 1 - 0.8² = 0.36.
  std::size_t kept = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto in = threshold_round(g, x, alpha, seed);
    for (char b : in) {
      kept += b;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / total, 0.36, 0.04);
}

TEST(ThresholdRound, DeterministicPerSeed) {
  const Digraph g = di_gnp(12, 0.4, 3);
  std::vector<double> x(g.num_edges(), 0.3);
  EXPECT_EQ(threshold_round(g, x, 2.0, 77), threshold_round(g, x, 2.0, 77));
}

TEST(ApproxFt2Spanner, ValidOnRandomInstances) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    const Digraph g = di_gnp(12, 0.4, seed);
    for (std::size_t r : {0u, 1u, 2u}) {
      const auto res = approx_ft_2spanner(g, r, seed * 5 + r);
      EXPECT_TRUE(res.valid) << "seed=" << seed << " r=" << r;
      EXPECT_TRUE(is_ft_2spanner(g, res.in_spanner, r));
      EXPECT_GE(res.cost, res.lp_value - 1e-6);  // LP is a lower bound
    }
  }
}

TEST(ApproxFt2Spanner, ApproximationFactorReasonable) {
  // Not the O(log n) proof — just a regression guard: cost within
  // 3 ln n of the LP lower bound on these instances.
  for (std::uint64_t seed : {3ull, 4ull}) {
    const Digraph g = di_gnp(14, 0.4, seed);
    const auto res = approx_ft_2spanner(g, 1, seed);
    ASSERT_TRUE(res.valid);
    ASSERT_GT(res.lp_value, 0.0);
    EXPECT_LT(res.cost / res.lp_value, 3.0 * std::log(14.0) + 1.0);
  }
}

TEST(ApproxFt2Spanner, GapGadgetBuysExpensiveEdge) {
  const Digraph g = gap_gadget(3, 50.0);
  const auto res = approx_ft_2spanner(g, 3, 7);
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(res.in_spanner[*g.edge_id(0, 1)]);
  // LP (4) already pays for the edge, so cost stays near OPT = M + 2r.
  EXPECT_LE(res.cost, 50.0 + 2.0 * 3 + 1e-6);
}

TEST(ApproxFt2Spanner, AlphaOverride) {
  const Digraph g = di_gnp(10, 0.5, 5);
  RoundingOptions opt;
  opt.alpha = 100.0;  // absurdly large: every positive-x edge is taken
  const auto res = approx_ft_2spanner(g, 1, 3, opt);
  EXPECT_DOUBLE_EQ(res.alpha, 100.0);
  EXPECT_TRUE(res.valid);
}

TEST(ApproxFt2Spanner, RepairKicksInAtTinyAlpha) {
  const Digraph g = di_gnp(12, 0.4, 9);
  RoundingOptions opt;
  opt.alpha = 1e-6;  // rounding alone will fail; repair must save validity
  opt.max_attempts = 2;
  const auto res = approx_ft_2spanner(g, 1, 3, opt);
  EXPECT_TRUE(res.valid);
  EXPECT_GT(res.repaired_edges, 0u);
}

TEST(Dk10Baseline, ValidAndUsesLargerAlpha) {
  const Digraph g = di_gnp(12, 0.4, 11);
  const std::size_t r = 3;
  const auto ours = approx_ft_2spanner(g, r, 1);
  const auto dk10 = dk10_ft_2spanner(g, r, 1);
  EXPECT_TRUE(ours.valid);
  EXPECT_TRUE(dk10.valid);
  // DK10 inflates by (r+1) ln n vs our ln n.
  EXPECT_NEAR(dk10.alpha / ours.alpha, static_cast<double>(r + 1), 1e-9);
}

TEST(Dk10Baseline, Lp3ValueAtMostLp4Value) {
  const Digraph g = di_gnp(12, 0.4, 13);
  const auto ours = approx_ft_2spanner(g, 2, 1);
  const auto dk10 = dk10_ft_2spanner(g, 2, 1);
  EXPECT_LE(dk10.lp_value, ours.lp_value + 1e-6);
}

// Property sweep: the driver always returns a valid spanner.
class RoundingSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(RoundingSweep, AlwaysValid) {
  const auto [n, r, seed] = GetParam();
  const Digraph g = di_gnp(n, 0.45, static_cast<std::uint64_t>(seed), 3.0);
  const auto res = approx_ft_2spanner(g, r, static_cast<std::uint64_t>(seed));
  EXPECT_TRUE(res.valid);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RoundingSweep,
    ::testing::Combine(::testing::Values<std::size_t>(8, 12),
                       ::testing::Values<std::size_t>(0, 1, 3),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace ftspan
