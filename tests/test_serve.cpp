// The serve subsystem: the incremental HTTP parser, the QueryEngine
// (distances under fault sets, LRU cache, worker fan-out), the poll()
// daemon over real loopback sockets, and the in-process load test.
//
// The exactness tests pin the served answers to ground truth two ways:
// against an independently materialized filtered subgraph run through the
// free-function dijkstra, and bit-identical against StretchOracle::evaluate
// (the engine the validators trust).
#include "serve/query.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "ftspanner/conversion.hpp"
#include "serve/epoch.hpp"
#include "serve/http.hpp"
#include "serve/loadtest.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "validate/stretch_oracle.hpp"

namespace ftspan {
namespace {

using serve::HttpParseStatus;
using serve::HttpRequest;
using serve::ServeAnswer;
using serve::ServeQuery;

// --- HTTP parser ---------------------------------------------------------

constexpr std::size_t kLimit = 16384;

HttpParseStatus parse(std::string_view buf, HttpRequest& out,
                      std::size_t& consumed, std::size_t limit = kLimit) {
  return serve::parse_http_request(buf, limit, out, consumed);
}

TEST(HttpParser, AcceptsACompleteGetAndReportsConsumed) {
  HttpRequest req;
  std::size_t consumed = 0;
  const std::string raw = "GET /distance?s=3&t=9 HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(parse(raw, req, consumed), HttpParseStatus::kOk);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/distance");
  EXPECT_EQ(req.param("s"), "3");
  EXPECT_EQ(req.param("t"), "9");
  EXPECT_EQ(req.param("absent", "dflt"), "dflt");
  EXPECT_TRUE(req.has_param("s"));
  EXPECT_FALSE(req.has_param("absent"));
  EXPECT_TRUE(req.keep_alive);
}

TEST(HttpParser, IncrementalFeedNeedsMoreUntilTheLastByte) {
  const std::string raw =
      "GET /stretch?s=0&t=1 HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
  HttpRequest req;
  std::size_t consumed = 0;
  for (std::size_t len = 0; len < raw.size(); ++len)
    ASSERT_EQ(parse(raw.substr(0, len), req, consumed),
              HttpParseStatus::kNeedMore)
        << "prefix length " << len;
  ASSERT_EQ(parse(raw, req, consumed), HttpParseStatus::kOk);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(req.body, "ok");
}

TEST(HttpParser, PipelinedRequestsLeaveBytesForTheNextCall) {
  const std::string first = "GET /healthz HTTP/1.1\r\n\r\n";
  const std::string second = "GET /stats HTTP/1.1\r\n\r\n";
  const std::string both = first + second;
  HttpRequest req;
  std::size_t consumed = 0;
  ASSERT_EQ(parse(both, req, consumed), HttpParseStatus::kOk);
  EXPECT_EQ(consumed, first.size());
  EXPECT_EQ(req.path, "/healthz");
  ASSERT_EQ(parse(std::string_view(both).substr(consumed), req, consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(consumed, second.size());
  EXPECT_EQ(req.path, "/stats");
}

TEST(HttpParser, RejectsMalformedRequests) {
  const char* bad[] = {
      "GARBAGE\r\n\r\n",                        // no spaces at all
      "get / HTTP/1.1\r\n\r\n",                 // lowercase method
      "GET distance HTTP/1.1\r\n\r\n",          // target missing leading '/'
      "GET / HTTP/2.0\r\n\r\n",                 // unsupported version
      "GET /  HTTP/1.1\r\n\r\n",                // empty target
      "GET / HTTP/1.1\r\nno-colon-line\r\n\r\n",
      "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length:\r\n\r\n",
      "GET /p%zz HTTP/1.1\r\n\r\n",             // bad escape in path
      "GET /p?a=%2 HTTP/1.1\r\n\r\n",           // truncated escape in query
  };
  HttpRequest req;
  std::size_t consumed = 0;
  for (const char* raw : bad)
    EXPECT_EQ(parse(raw, req, consumed), HttpParseStatus::kBad) << raw;
}

TEST(HttpParser, EnforcesSizeLimitsDuringParsing) {
  HttpRequest req;
  std::size_t consumed = 0;
  // An unterminated header block beyond the limit is rejected while still
  // incomplete — the server never buffers past max_bytes + one read.
  const std::string flood = "GET / HTTP/1.1\r\nX: " + std::string(100, 'a');
  EXPECT_EQ(parse(flood, req, consumed, /*limit=*/64),
            HttpParseStatus::kTooLarge);
  // A complete header block over the limit.
  const std::string big_head =
      "GET / HTTP/1.1\r\nX: " + std::string(100, 'a') + "\r\n\r\n";
  EXPECT_EQ(parse(big_head, req, consumed, 64), HttpParseStatus::kTooLarge);
  // A declared body over the limit is rejected from the header alone, even
  // though no body byte has arrived (and the digit loop cannot overflow on
  // an absurd declared length).
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nContent-Length: 999\r\n\r\n", req,
                  consumed, 64),
            HttpParseStatus::kTooLarge);
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nContent-Length: 99999999999999999999"
                  "9999999999\r\n\r\n",
                  req, consumed, 64),
            HttpParseStatus::kTooLarge);
}

TEST(HttpParser, DecodesPathAndParams) {
  HttpRequest req;
  std::size_t consumed = 0;
  ASSERT_EQ(parse("GET /a%2Fb?msg=hi+there%21&flag HTTP/1.1\r\n\r\n", req,
                  consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(req.path, "/a/b");
  EXPECT_EQ(req.param("msg"), "hi there!");
  EXPECT_TRUE(req.has_param("flag"));  // no '=': key only, empty value
  EXPECT_EQ(req.param("flag"), "");
}

TEST(HttpParser, NegotiatesKeepAlive) {
  HttpRequest req;
  std::size_t consumed = 0;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\n\r\n", req, consumed),
            HttpParseStatus::kOk);
  EXPECT_TRUE(req.keep_alive);
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", req,
                  consumed),
            HttpParseStatus::kOk);
  EXPECT_FALSE(req.keep_alive);
  ASSERT_EQ(parse("GET / HTTP/1.0\r\n\r\n", req, consumed),
            HttpParseStatus::kOk);
  EXPECT_FALSE(req.keep_alive);  // 1.0 defaults to close
  ASSERT_EQ(parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", req,
                  consumed),
            HttpParseStatus::kOk);
  EXPECT_TRUE(req.keep_alive);
}

TEST(PercentDecode, HandlesEscapesAndRejectsMalformed) {
  std::string out;
  EXPECT_TRUE(serve::percent_decode("a%20b%2Bc+d", out));
  EXPECT_EQ(out, "a b+c d");
  EXPECT_TRUE(serve::percent_decode("%41", out));
  EXPECT_EQ(out, "A");
  EXPECT_FALSE(serve::percent_decode("%", out));
  EXPECT_FALSE(serve::percent_decode("%4", out));
  EXPECT_FALSE(serve::percent_decode("%4g", out));
  EXPECT_FALSE(serve::percent_decode("ok%", out));
}

TEST(HttpResponse, SerializesHeadersAndBody) {
  const std::string r =
      serve::http_response(200, "application/json", "{\"x\": 1}", true);
  EXPECT_EQ(r.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(r.find("Content-Type: application/json\r\n"), std::string::npos);
  EXPECT_NE(r.find("Content-Length: 8\r\n"), std::string::npos);
  EXPECT_NE(r.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 8), "{\"x\": 1}");
  const std::string e = serve::http_response(413, "text/plain", "", false);
  EXPECT_EQ(e.find("HTTP/1.1 413 Content Too Large\r\n"), 0u);
  EXPECT_NE(e.find("Connection: close\r\n"), std::string::npos);
}

// --- ServeQuery ----------------------------------------------------------

TEST(ServeQuery, CanonicalizeSortsDedupsAndOrientsEdges) {
  ServeQuery q;
  q.avoid_vertices = {9, 2, 9, 5, 2};
  q.avoid_edges = {{7, 3}, {1, 4}, {3, 7}, {4, 1}};
  q.canonicalize();
  EXPECT_EQ(q.avoid_vertices, (std::vector<Vertex>{2, 5, 9}));
  EXPECT_EQ(q.avoid_edges,
            (std::vector<std::pair<Vertex, Vertex>>{{1, 4}, {3, 7}}));
}

TEST(ServeQuery, CacheKeySeparatesDistinctQueries) {
  auto key = [](Vertex s, Vertex t, bool base, std::vector<Vertex> av,
                std::vector<std::pair<Vertex, Vertex>> ae) {
    ServeQuery q;
    q.s = s;
    q.t = t;
    q.want_base = base;
    q.avoid_vertices = std::move(av);
    q.avoid_edges = std::move(ae);
    q.canonicalize();
    return q.cache_key();
  };
  const std::uint64_t base = key(1, 2, false, {}, {});
  EXPECT_NE(base, key(2, 1, false, {}, {}));       // direction matters
  EXPECT_NE(base, key(1, 2, true, {}, {}));        // stretch != distance
  EXPECT_NE(base, key(1, 2, false, {3}, {}));      // fault set matters
  EXPECT_NE(key(1, 2, false, {3}, {}),             // vertex 3 != edge {3, x}
            key(1, 2, false, {}, {{3, 4}}));
  // Canonically equal queries agree regardless of input order.
  EXPECT_EQ(key(1, 2, false, {5, 3, 5}, {{9, 6}}),
            key(1, 2, false, {3, 5}, {{6, 9}}));
}

// --- QueryEngine ---------------------------------------------------------

std::vector<EdgeId> all_edges(const Graph& g) {
  std::vector<EdgeId> ids(g.num_edges());
  for (EdgeId id = 0; id < g.num_edges(); ++id) ids[id] = id;
  return ids;
}

/// Independent reference: materialize G minus the fault set (drop edges
/// incident to avoided vertices and the avoided edges themselves) and run
/// the free-function dijkstra on the copy.
Graph minus_faults(const Graph& g, const std::vector<Vertex>& av,
                   const std::vector<std::pair<Vertex, Vertex>>& ae) {
  std::vector<char> dead_vertex(g.num_vertices(), 0);
  for (const Vertex v : av) dead_vertex[v] = 1;
  Graph out(g.num_vertices());
  for (const Edge& e : g.edges()) {
    if (dead_vertex[e.u] || dead_vertex[e.v]) continue;
    const auto lo = std::min(e.u, e.v);
    const auto hi = std::max(e.u, e.v);
    if (std::find(ae.begin(), ae.end(), std::make_pair(lo, hi)) != ae.end())
      continue;
    out.add_edge(e.u, e.v, e.w);
  }
  return out;
}

TEST(QueryEngine, MatchesMaterializedSubgraphDijkstra) {
  const Graph g = gnp_connected(28, 0.2, 3, 4.0);
  // Thin the graph so the spanner genuinely differs from the base.
  std::vector<EdgeId> kept;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (id % 4 != 0) kept.push_back(id);
  const Graph h = g.edge_subgraph(kept);
  serve::QueryEngine engine(g, kept, 3.0);

  Rng rng(17);
  const Vertex n = static_cast<Vertex>(g.num_vertices());
  for (int trial = 0; trial < 40; ++trial) {
    ServeQuery q;
    q.s = static_cast<Vertex>(rng.uniform_index(n));
    q.t = static_cast<Vertex>(rng.uniform_index(n));
    q.want_base = true;
    for (std::size_t i = rng.uniform_index(3); i-- > 0;)
      q.avoid_vertices.push_back(static_cast<Vertex>(rng.uniform_index(n)));
    for (std::size_t i = rng.uniform_index(3); i-- > 0;) {
      const Edge& e = g.edge(rng.uniform_index(g.num_edges()));
      q.avoid_edges.emplace_back(e.u, e.v);
    }
    q.canonicalize();
    const ServeAnswer a = engine.answer(q);

    const bool endpoint_dead =
        std::find(q.avoid_vertices.begin(), q.avoid_vertices.end(), q.s) !=
            q.avoid_vertices.end() ||
        std::find(q.avoid_vertices.begin(), q.avoid_vertices.end(), q.t) !=
            q.avoid_vertices.end();
    if (endpoint_dead) {
      EXPECT_EQ(a.dh, kInfiniteWeight) << "trial " << trial;
      EXPECT_EQ(a.dg, kInfiniteWeight) << "trial " << trial;
      continue;
    }
    const Graph gf = minus_faults(g, q.avoid_vertices, q.avoid_edges);
    const Graph hf = minus_faults(h, q.avoid_vertices, q.avoid_edges);
    EXPECT_EQ(a.dg, dijkstra(gf, q.s).dist[q.t]) << "trial " << trial;
    EXPECT_EQ(a.dh, dijkstra(hf, q.s).dist[q.t]) << "trial " << trial;
  }
}

TEST(QueryEngine, HandlesDegenerateQueries) {
  const Graph g = path(5);
  serve::QueryEngine engine(g, all_edges(g), 3.0);
  ServeQuery q;
  q.s = q.t = 2;
  q.want_base = true;
  EXPECT_EQ(engine.answer(q).dh, 0.0);  // s == t
  EXPECT_EQ(engine.answer(q).dg, 0.0);
  q.avoid_vertices = {2};  // a faulted endpoint beats s == t
  q.canonicalize();
  EXPECT_EQ(engine.answer(q).dh, kInfiniteWeight);
  q.s = 0;
  q.t = 4;
  q.avoid_vertices = {4};
  q.canonicalize();
  EXPECT_EQ(engine.answer(q).dh, kInfiniteWeight);
  // Cutting the path's middle vertex disconnects but never crashes.
  q.avoid_vertices = {2};
  q.canonicalize();
  const ServeAnswer cut = engine.answer(q);
  EXPECT_EQ(cut.dh, kInfiniteWeight);
  EXPECT_EQ(cut.dg, kInfiniteWeight);
}

// The acceptance pin: served dh/dg ratios must reproduce the StretchOracle's
// witness stretch bit-for-bit — both sides run the same DijkstraEngine, so
// this is equality, not tolerance.
TEST(QueryEngine, ServedRatiosPinTheOracleWitnessExactly) {
  const Graph g = gnp_connected(26, 0.25, 7, 4.0);
  const ConversionResult conv = ft_greedy_spanner(g, 3.0, 1, 11);
  const Graph h = g.edge_subgraph(conv.edges);
  serve::QueryEngine engine(g, conv.edges, 3.0);
  const StretchOracle oracle(g, h, 3.0);
  auto scratch = oracle.make_scratch();

  const std::vector<std::vector<Vertex>> fault_lists = {
      {}, {3}, {11}, {1, 8}, {0, 13, 25}};
  for (const std::vector<Vertex>& fl : fault_lists) {
    VertexSet faults(g.num_vertices());
    for (const Vertex v : fl) faults.insert(v);
    const auto witness = oracle.evaluate(faults, scratch);

    double worst = 1.0;
    for (const Edge& e : g.edges()) {
      if (faults.contains(e.u) || faults.contains(e.v)) continue;
      ServeQuery q;
      // The oracle sums each path outward from the lower endpoint; querying
      // the same direction keeps the floating-point sums bit-identical.
      q.s = std::min(e.u, e.v);
      q.t = std::max(e.u, e.v);
      q.want_base = true;
      q.avoid_vertices = fl;
      q.canonicalize();
      const ServeAnswer a = engine.answer(q);
      ASSERT_LT(a.dg, kInfiniteWeight);  // a surviving edge bounds d_G
      worst = std::max(
          worst, a.dh < kInfiniteWeight ? a.dh / a.dg : kInfiniteWeight);
    }
    EXPECT_EQ(worst, witness.stretch) << "faults: " << fl.size();
  }
}

TEST(QueryEngine, CacheCountsHitsAndEvictsLru) {
  const Graph g = path(6);
  serve::QueryEngine::Options opt;
  opt.cache_capacity = 2;
  serve::QueryEngine engine(g, all_edges(g), 3.0, opt);
  auto q = [](Vertex s, Vertex t) {
    ServeQuery out;
    out.s = s;
    out.t = t;
    return out;
  };
  EXPECT_FALSE(engine.answer(q(0, 1)).from_cache);  // miss
  EXPECT_TRUE(engine.answer(q(0, 1)).from_cache);   // hit
  EXPECT_FALSE(engine.answer(q(0, 2)).from_cache);  // miss
  EXPECT_FALSE(engine.answer(q(0, 3)).from_cache);  // miss — evicts (0, 1)
  EXPECT_FALSE(engine.answer(q(0, 1)).from_cache);  // miss again (evicted)
  EXPECT_TRUE(engine.answer(q(0, 3)).from_cache);   // still resident
  EXPECT_EQ(engine.cache_stats().hits, 2u);
  EXPECT_EQ(engine.cache_stats().misses, 4u);
  EXPECT_EQ(engine.queries_answered(), 6u);
  // Cached answers carry the same distances as fresh ones.
  EXPECT_EQ(engine.answer(q(0, 3)).dh, 3.0);
}

TEST(QueryEngine, ZeroCapacityDisablesTheCache) {
  const Graph g = path(4);
  serve::QueryEngine::Options opt;
  opt.cache_capacity = 0;
  serve::QueryEngine engine(g, all_edges(g), 3.0, opt);
  ServeQuery q;
  q.s = 0;
  q.t = 3;
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(engine.answer(q).from_cache);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
  EXPECT_EQ(engine.cache_stats().misses, 0u);
  EXPECT_EQ(engine.queries_answered(), 3u);
}

TEST(QueryEngine, WorkerCountNeverChangesAnswers) {
  const Graph g = gnp_connected(24, 0.25, 5, 3.0);
  std::vector<EdgeId> kept;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (id % 3 != 0) kept.push_back(id);

  std::vector<ServeQuery> queries;
  Rng rng(23);
  const Vertex n = static_cast<Vertex>(g.num_vertices());
  for (int i = 0; i < 50; ++i) {
    ServeQuery q;
    q.s = static_cast<Vertex>(rng.uniform_index(n));
    q.t = static_cast<Vertex>(rng.uniform_index(n));
    q.want_base = (i % 2) == 0;
    if (i % 3 == 0)
      q.avoid_vertices.push_back(static_cast<Vertex>(rng.uniform_index(n)));
    if (i % 5 == 0) {
      const Edge& e = g.edge(rng.uniform_index(g.num_edges()));
      q.avoid_edges.emplace_back(e.u, e.v);
    }
    q.canonicalize();
    queries.push_back(std::move(q));
  }

  // A cold cache per run so every query is computed, not replayed.
  std::vector<std::vector<ServeAnswer>> results;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    serve::QueryEngine::Options opt;
    opt.workers = workers;
    opt.cache_capacity = 0;
    opt.batch = 2;
    serve::QueryEngine engine(g, kept, 3.0, opt);
    std::vector<ServeAnswer> answers;
    engine.answer_batch(queries, answers);
    results.push_back(std::move(answers));
  }
  ASSERT_EQ(results[0].size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[0][i].dh, results[1][i].dh) << "query " << i;
    EXPECT_EQ(results[0][i].dg, results[1][i].dg) << "query " << i;
  }
}

// ISSUE 10: on a mid-range integer-weight graph — where engine=auto
// resolves to delta-stepping — served answers must be bit-identical under
// every engine policy, worker count, and affinity setting; lane pinning is
// report-only.
TEST(QueryEngine, EngineChoiceNeverChangesServedAnswersOnMidRangeWeights) {
  const Graph base = gnp_connected(24, 0.25, 5, 3.0);
  std::vector<Edge> reweighted;
  for (EdgeId id = 0; id < base.num_edges(); ++id) {
    Edge e = base.edge(id);
    e.w = std::floor(e.w * 12345.0) + 4097.0;  // integral, > bucket ceiling
    reweighted.push_back(e);
  }
  const Graph g = Graph::from_edges(base.num_vertices(), reweighted);
  std::vector<EdgeId> kept;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (id % 3 != 0) kept.push_back(id);

  std::vector<ServeQuery> queries;
  Rng rng(29);
  const Vertex n = static_cast<Vertex>(g.num_vertices());
  for (int i = 0; i < 40; ++i) {
    ServeQuery q;
    q.s = static_cast<Vertex>(rng.uniform_index(n));
    q.t = static_cast<Vertex>(rng.uniform_index(n));
    q.want_base = (i % 2) == 0;
    if (i % 3 == 0)
      q.avoid_vertices.push_back(static_cast<Vertex>(rng.uniform_index(n)));
    if (i % 5 == 0) {
      const Edge& e = g.edge(rng.uniform_index(g.num_edges()));
      q.avoid_edges.emplace_back(e.u, e.v);
    }
    q.canonicalize();
    queries.push_back(std::move(q));
  }

  std::vector<std::vector<ServeAnswer>> results;
  for (const SpEnginePolicy engine :
       {SpEnginePolicy::kHeap, SpEnginePolicy::kDelta, SpEnginePolicy::kAuto})
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
      serve::QueryEngine::Options opt;
      opt.workers = workers;
      opt.cache_capacity = 0;
      opt.batch = 2;
      opt.engine = engine;
      opt.pin = true;  // report-only: must never move an answer bit
      serve::QueryEngine engine_obj(g, kept, 3.0, opt);
      std::vector<ServeAnswer> answers;
      engine_obj.answer_batch(queries, answers);
      // Affinity reporting: one status per miss-pool lane once it exists
      // (workers == 1 answers inline and never spawns the pool).
      const std::vector<char> lanes = engine_obj.lane_pinned();
      if (workers > 1) EXPECT_EQ(lanes.size(), workers);
      results.push_back(std::move(answers));
    }
  for (std::size_t run = 1; run < results.size(); ++run) {
    ASSERT_EQ(results[run].size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(results[0][i].dh, results[run][i].dh)
          << "run " << run << " query " << i;
      EXPECT_EQ(results[0][i].dg, results[run][i].dg)
          << "run " << run << " query " << i;
    }
  }
}

// --- ServeDaemon over real sockets ---------------------------------------

/// Daemon on an ephemeral loopback port with its event loop on a background
/// thread; the destructor stops and joins.
struct TestServer {
  Graph g;
  serve::QueryEngine engine;
  serve::ServeDaemon daemon;
  std::thread loop;

  explicit TestServer(Graph graph, serve::ServeOptions options = {})
      : g(std::move(graph)), engine(g, make_ids(g), 3.0),
        daemon(engine, options) {
    daemon.listen();
    loop = std::thread([this] { daemon.run(); });
  }
  ~TestServer() {
    daemon.stop();
    loop.join();
  }

  static std::vector<EdgeId> make_ids(const Graph& graph) {
    std::vector<EdgeId> ids(graph.num_edges());
    for (EdgeId id = 0; id < graph.num_edges(); ++id) ids[id] = id;
    return ids;
  }
};

/// The CI smoke graph: a 5-vertex path with weights 1, 2, 3, 4, so
/// d(0, 4) = 10 and cutting vertex 2 disconnects the ends.
Graph weighted_path5() {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(3, 4, 4.0);
  return g;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent = ::send(fd, data.data(), data.size(), 0);
    if (sent <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

/// Reads exactly one HTTP response (headers + Content-Length body) out of
/// `buf`, receiving more as needed; leftovers stay in `buf` for pipelining.
/// Empty return = the peer closed or errored first.
std::string recv_response(int fd, std::string& buf) {
  for (;;) {
    const std::size_t he = buf.find("\r\n\r\n");
    if (he != std::string::npos) {
      std::size_t content_length = 0;
      const std::size_t cl = buf.find("Content-Length: ");
      if (cl != std::string::npos && cl < he)
        content_length = std::strtoull(buf.c_str() + cl + 16, nullptr, 10);
      const std::size_t total = he + 4 + content_length;
      if (buf.size() >= total) {
        std::string out = buf.substr(0, total);
        buf.erase(0, total);
        return out;
      }
    }
    char tmp[4096];
    const ssize_t got = ::recv(fd, tmp, sizeof(tmp), 0);
    if (got <= 0) return {};
    buf.append(tmp, static_cast<std::size_t>(got));
  }
}

/// One-shot GET with Connection: close.
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = connect_loopback(port);
  if (fd < 0) return {};
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nConnection: close\r\n\r\n";
  std::string buf, out;
  if (send_all(fd, req)) out = recv_response(fd, buf);
  ::close(fd);
  return out;
}

bool peer_closed(int fd) {
  char tmp[64];
  return ::recv(fd, tmp, sizeof(tmp), 0) == 0;
}

/// Numeric value of `"key": <number>` in a JSON body (format_double may
/// render 10 as "1e+01", so substring-matching the digits is not enough).
double json_number(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t p = body.find(needle);
  if (p == std::string::npos) return -1e300;
  return std::strtod(body.c_str() + p + needle.size(), nullptr);
}

TEST(ServeDaemon, AnswersDistanceQueriesOverRealSockets) {
  TestServer server(weighted_path5());
  const std::uint16_t port = server.daemon.port();

  const std::string d = http_get(port, "/distance?s=0&t=4");
  EXPECT_NE(d.find("200 OK"), std::string::npos);
  EXPECT_EQ(json_number(d, "distance"), 10.0) << d;
  EXPECT_NE(d.find("\"reachable\": true"), std::string::npos) << d;

  // Cutting vertex 2 disconnects 0 from 4.
  const std::string cut = http_get(port, "/distance?s=0&t=4&avoid=2");
  EXPECT_NE(cut.find("\"distance\": null"), std::string::npos) << cut;
  EXPECT_NE(cut.find("\"reachable\": false"), std::string::npos) << cut;

  // Cutting edge {1, 2} does the same through the edge grammar.
  const std::string ecut = http_get(port, "/distance?s=0&t=4&avoid=1-2");
  EXPECT_NE(ecut.find("\"reachable\": false"), std::string::npos) << ecut;

  // The spanner is the whole graph here, so stretch is exactly 1.
  const std::string st = http_get(port, "/stretch?s=0&t=4");
  EXPECT_EQ(json_number(st, "stretch"), 1.0) << st;

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
}

TEST(ServeDaemon, SpeaksKeepAliveAndPipelining) {
  TestServer server(weighted_path5());
  const int fd = connect_loopback(server.daemon.port());
  ASSERT_GE(fd, 0);
  // Two pipelined requests in one write; responses must come back in
  // order on the same connection.
  ASSERT_TRUE(send_all(fd,
                       "GET /distance?s=0&t=1 HTTP/1.1\r\n\r\n"
                       "GET /distance?s=0&t=2 HTTP/1.1\r\n\r\n"));
  std::string buf;
  const std::string first = recv_response(fd, buf);
  const std::string second = recv_response(fd, buf);
  EXPECT_EQ(json_number(first, "distance"), 1.0) << first;
  EXPECT_EQ(json_number(second, "distance"), 3.0) << second;
  // A third request on the same (kept-alive) connection still works.
  ASSERT_TRUE(send_all(fd, "GET /healthz HTTP/1.1\r\n\r\n"));
  EXPECT_NE(recv_response(fd, buf).find("200 OK"), std::string::npos);
  ::close(fd);
}

TEST(ServeDaemon, CachedRepeatsReportFromCache) {
  TestServer server(weighted_path5());
  const std::uint16_t port = server.daemon.port();
  const std::string first = http_get(port, "/distance?s=1&t=4");
  EXPECT_NE(first.find("\"from_cache\": false"), std::string::npos) << first;
  const std::string repeat = http_get(port, "/distance?s=1&t=4");
  EXPECT_NE(repeat.find("\"from_cache\": true"), std::string::npos) << repeat;
}

TEST(ServeDaemon, RejectsGarbageWithoutDying) {
  TestServer server(weighted_path5());
  const std::uint16_t port = server.daemon.port();

  // Malformed request: 400 and the server closes the connection.
  {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(send_all(fd, "NOT HTTP AT ALL\r\n\r\n"));
    std::string buf;
    EXPECT_NE(recv_response(fd, buf).find("400"), std::string::npos);
    EXPECT_TRUE(peer_closed(fd));
    ::close(fd);
  }
  // Oversized request: 413 and close, long before the flood completes.
  {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    send_all(fd, "GET /" + std::string(20000, 'x'));
    std::string buf;
    EXPECT_NE(recv_response(fd, buf).find("413"), std::string::npos);
    ::close(fd);
  }
  // Semantic errors are 400 but keep the connection alive.
  {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    std::string buf;
    ASSERT_TRUE(send_all(fd, "GET /distance?s=99&t=0 HTTP/1.1\r\n\r\n"));
    EXPECT_NE(recv_response(fd, buf).find("400"), std::string::npos);
    ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=1 HTTP/1.1\r\n\r\n"));
    EXPECT_NE(recv_response(fd, buf).find("200"), std::string::npos);
    ::close(fd);
  }
  EXPECT_NE(http_get(port, "/nope").find("404"), std::string::npos);
  {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    std::string buf;
    ASSERT_TRUE(send_all(fd, "POST /distance HTTP/1.1\r\n\r\n"));
    EXPECT_NE(recv_response(fd, buf).find("405"), std::string::npos);
    ::close(fd);
  }
  // After all that abuse the daemon still answers correctly.
  EXPECT_EQ(json_number(http_get(port, "/distance?s=0&t=4"), "distance"),
            10.0);
  EXPECT_GT(server.daemon.stats().bad_requests, 0u);
}

TEST(ServeDaemon, StatsEndpointReportsCounters) {
  TestServer server(weighted_path5());
  const std::uint16_t port = server.daemon.port();
  http_get(port, "/distance?s=0&t=1");
  http_get(port, "/distance?s=0&t=1");  // cache hit
  const std::string stats = http_get(port, "/stats");
  EXPECT_NE(stats.find("\"requests\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"hits\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"misses\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"peak_rss_bytes\":"), std::string::npos);
  EXPECT_NE(stats.find("\"n\": 5"), std::string::npos);
}

// --- epochs & hot reload -------------------------------------------------

/// Path "B" for reload tests: the same 5-vertex path with doubled weights,
/// so a successful swap is observable as d(0, 4) jumping from 10 to 20.
Graph doubled_path5() {
  Graph g(5);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 4.0);
  g.add_edge(2, 3, 6.0);
  g.add_edge(3, 4, 8.0);
  return g;
}

std::shared_ptr<serve::EngineEpoch> build_path_epoch(const std::string& name) {
  Graph g = name == "B" ? doubled_path5() : weighted_path5();
  const std::vector<EdgeId> ids = TestServer::make_ids(g);
  return serve::EngineEpoch::build(std::move(g), ids, 3.0, {}, name);
}

/// Builder mapping symbolic "paths" to in-memory graphs; "corrupt" fails
/// the way an unreadable graph file would.
serve::EpochManager::Builder path_builder() {
  return [](const std::string& path) {
    if (path == "corrupt")
      throw std::runtime_error("graph io: corrupt graph file");
    return build_path_epoch(path);
  };
}

/// A reloadable daemon: epoch 1 serves path "A"; reloads go through
/// `builder` (default: the symbolic path builder above).
struct ReloadableServer {
  std::shared_ptr<serve::EpochManager> epochs;
  serve::ServeDaemon daemon;
  std::thread loop;

  explicit ReloadableServer(
      serve::ServeOptions options = {},
      serve::EpochManager::Builder builder = path_builder())
      : epochs(std::make_shared<serve::EpochManager>(build_path_epoch("A"),
                                                     std::move(builder))),
        daemon(epochs, options) {
    daemon.listen();
    loop = std::thread([this] { daemon.run(); });
  }
  ~ReloadableServer() {
    daemon.stop();
    loop.join();
  }
};

/// One-shot request with an arbitrary method and Connection: close.
std::string http_request(std::uint16_t port, const std::string& method,
                         const std::string& target) {
  const int fd = connect_loopback(port);
  if (fd < 0) return {};
  const std::string req =
      method + " " + target + " HTTP/1.1\r\nConnection: close\r\n\r\n";
  std::string buf, out;
  if (send_all(fd, req)) out = recv_response(fd, buf);
  ::close(fd);
  return out;
}

/// Polls `pred` for up to five seconds — generous for in-process reloads.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

TEST(EpochManager, ReloadPublishesNewEpochAndOldStaysAlive) {
  serve::EpochManager mgr(build_path_epoch("A"), path_builder());
  const std::shared_ptr<serve::EngineEpoch> pinned = mgr.current();
  EXPECT_EQ(pinned->id, 1u);
  ASSERT_TRUE(mgr.request_reload("B"));
  mgr.wait_idle();
  const std::shared_ptr<serve::EngineEpoch> fresh = mgr.current();
  EXPECT_EQ(fresh->id, 2u);
  EXPECT_EQ(fresh->source, "B");
  // The retired epoch stays fully usable while a reference holds it — this
  // is what lets in-flight rounds finish across a swap.
  ServeQuery q;
  q.s = 0;
  q.t = 4;
  EXPECT_EQ(pinned->engine->answer(q).dh, 10.0);
  EXPECT_EQ(fresh->engine->answer(q).dh, 20.0);
  const serve::EpochManager::Status s = mgr.status();
  EXPECT_EQ(s.epoch, 2u);
  EXPECT_EQ(s.ok, 1u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_FALSE(s.in_progress);
}

TEST(EpochManager, FailedReloadKeepsOldEpochAndRecordsError) {
  serve::EpochManager mgr(build_path_epoch("A"), path_builder());
  ASSERT_TRUE(mgr.request_reload("corrupt"));
  mgr.wait_idle();
  EXPECT_EQ(mgr.current()->id, 1u);  // the old epoch never stopped serving
  const serve::EpochManager::Status s = mgr.status();
  EXPECT_EQ(s.epoch, 1u);
  EXPECT_EQ(s.ok, 0u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_NE(s.last_error.find("corrupt"), std::string::npos) << s.last_error;
  // The failure is not sticky: a later good reload still swaps.
  ASSERT_TRUE(mgr.request_reload("B"));
  mgr.wait_idle();
  EXPECT_EQ(mgr.current()->id, 2u);
  EXPECT_EQ(mgr.status().ok, 1u);
}

TEST(EpochManager, EmptyPathRebuildsTheCurrentSource) {
  serve::EpochManager mgr(build_path_epoch("A"), path_builder());
  ASSERT_TRUE(mgr.request_reload());  // the SIGHUP shape: no explicit path
  mgr.wait_idle();
  const std::shared_ptr<serve::EngineEpoch> fresh = mgr.current();
  EXPECT_EQ(fresh->id, 2u);
  EXPECT_EQ(fresh->source, "A");  // same source, new generation
  ServeQuery q;
  q.s = 0;
  q.t = 4;
  EXPECT_EQ(fresh->engine->answer(q).dh, 10.0);
}

TEST(EpochManager, FixedManagerRefusesReloads) {
  Graph g = weighted_path5();
  serve::QueryEngine engine(g, TestServer::make_ids(g), 3.0);
  const std::shared_ptr<serve::EpochManager> mgr =
      serve::EpochManager::fixed(engine);
  EXPECT_FALSE(mgr->reloadable());
  EXPECT_FALSE(mgr->request_reload());
  EXPECT_FALSE(mgr->request_reload("B"));
  EXPECT_EQ(mgr->current()->engine, &engine);
  EXPECT_EQ(mgr->status().epoch, 1u);
}

TEST(ServeDaemon, AdminReloadSwapsEpochsUnderKeepAlive) {
  ReloadableServer server;
  const int fd = connect_loopback(server.daemon.port());
  ASSERT_GE(fd, 0);
  std::string buf;

  ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=4 HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(json_number(recv_response(fd, buf), "distance"), 10.0);

  ASSERT_TRUE(send_all(fd, "POST /admin/reload?path=B HTTP/1.1\r\n\r\n"));
  const std::string ack = recv_response(fd, buf);
  EXPECT_NE(ack.find("202"), std::string::npos) << ack;
  EXPECT_NE(ack.find("\"status\": \"reloading\""), std::string::npos) << ack;

  server.epochs->wait_idle();
  // Same connection, next round: the new epoch answers. The swap dropped
  // nothing — this socket was open across it the whole time.
  ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=4 HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(json_number(recv_response(fd, buf), "distance"), 20.0);

  ASSERT_TRUE(send_all(fd, "GET /healthz HTTP/1.1\r\n\r\n"));
  const std::string health = recv_response(fd, buf);
  EXPECT_EQ(json_number(health, "epoch"), 2.0) << health;
  EXPECT_NE(health.find("\"ok\": 1"), std::string::npos) << health;
  ::close(fd);
}

TEST(ServeDaemon, FailedReloadKeepsOldEpochServing) {
  ReloadableServer server;
  const std::uint16_t port = server.daemon.port();
  const std::string ack =
      http_request(port, "POST", "/admin/reload?path=corrupt");
  EXPECT_NE(ack.find("202"), std::string::npos) << ack;
  server.epochs->wait_idle();
  const std::string health = http_get(port, "/healthz");
  EXPECT_EQ(json_number(health, "epoch"), 1.0) << health;
  EXPECT_NE(health.find("\"failed\": 1"), std::string::npos) << health;
  EXPECT_NE(health.find("corrupt"), std::string::npos) << health;
  EXPECT_EQ(json_number(http_get(port, "/distance?s=0&t=4"), "distance"),
            10.0);
}

TEST(ServeDaemon, ReloadIsPostOnlyAndNeedsABuilder) {
  {
    ReloadableServer server;
    const std::string r = http_get(server.daemon.port(), "/admin/reload");
    EXPECT_NE(r.find("405"), std::string::npos) << r;
  }
  {
    TestServer server(weighted_path5());  // fixed manager: no builder
    const std::string r =
        http_request(server.daemon.port(), "POST", "/admin/reload");
    EXPECT_NE(r.find("503"), std::string::npos) << r;
    EXPECT_NE(r.find("no reload builder"), std::string::npos) << r;
  }
}

TEST(ServeDaemon, TriggerReloadFollowsTheSignalPath) {
  ReloadableServer server;
  server.daemon.trigger_reload();  // exactly what a SIGHUP handler calls
  ASSERT_TRUE(
      eventually([&] { return server.epochs->status().epoch == 2; }));
  // Same source rebuilt: the answers are unchanged on the new epoch.
  EXPECT_EQ(json_number(http_get(server.daemon.port(), "/distance?s=0&t=4"),
                        "distance"),
            10.0);
}

TEST(ServeDaemon, ConcurrentReloadIsRefusedWith409) {
  serve::EpochManager::Builder slow = [](const std::string& path) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return build_path_epoch(path);
  };
  ReloadableServer server({}, std::move(slow));
  const int fd = connect_loopback(server.daemon.port());
  ASSERT_GE(fd, 0);
  std::string buf;
  ASSERT_TRUE(send_all(fd, "POST /admin/reload?path=B HTTP/1.1\r\n\r\n"));
  EXPECT_NE(recv_response(fd, buf).find("202"), std::string::npos);
  ASSERT_TRUE(send_all(fd, "POST /admin/reload?path=B HTTP/1.1\r\n\r\n"));
  const std::string second = recv_response(fd, buf);
  EXPECT_NE(second.find("409"), std::string::npos) << second;
  EXPECT_NE(second.find("already in progress"), std::string::npos) << second;
  // A 409 keeps the connection alive and the daemon responsive.
  ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=1 HTTP/1.1\r\n\r\n"));
  EXPECT_NE(recv_response(fd, buf).find("200"), std::string::npos);
  ::close(fd);
  server.epochs->wait_idle();
  EXPECT_EQ(server.epochs->status().epoch, 2u);
}

TEST(ServeDaemon, HotReloadUnderLoadNeverDropsOrChangesAnswers) {
  ReloadableServer server;
  std::atomic<bool> storming{true};
  std::thread storm([&] {
    for (int i = 0; i < 12; ++i) {
      EXPECT_TRUE(server.epochs->request_reload("A"));
      server.epochs->wait_idle();
    }
    storming.store(false);
  });

  const int fd = connect_loopback(server.daemon.port());
  ASSERT_GE(fd, 0);
  std::string buf;
  int served = 0;
  while (storming.load()) {
    ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=4 HTTP/1.1\r\n\r\n"));
    const std::string resp = recv_response(fd, buf);
    ASSERT_FALSE(resp.empty()) << "connection dropped after " << served;
    // Bit-identical across every swap: the rebuilt epoch serves the same
    // graph, so the answer never wobbles.
    EXPECT_EQ(json_number(resp, "distance"), 10.0) << resp;
    ++served;
  }
  storm.join();
  EXPECT_GT(served, 0);
  EXPECT_EQ(server.epochs->status().epoch, 13u);  // all 12 swaps landed
  // The connection that lived through every swap still works.
  ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=4 HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(json_number(recv_response(fd, buf), "distance"), 10.0);
  ::close(fd);
}

// --- admission control ---------------------------------------------------

TEST(ServeDaemon, PendingBudgetShedsWith503AndRetryAfter) {
  serve::ServeOptions options;
  options.max_pending = 1;
  TestServer server(weighted_path5(), options);
  const int fd = connect_loopback(server.daemon.port());
  ASSERT_GE(fd, 0);
  // One write, three pipelined queries: a ~120-byte loopback write arrives
  // whole, so one poll round parses all three and the budget admits one.
  ASSERT_TRUE(send_all(fd,
                       "GET /distance?s=0&t=1 HTTP/1.1\r\n\r\n"
                       "GET /distance?s=0&t=2 HTTP/1.1\r\n\r\n"
                       "GET /distance?s=0&t=3 HTTP/1.1\r\n\r\n"));
  std::string buf;
  const std::string first = recv_response(fd, buf);
  const std::string second = recv_response(fd, buf);
  const std::string third = recv_response(fd, buf);
  EXPECT_NE(first.find("200"), std::string::npos) << first;
  EXPECT_EQ(json_number(first, "distance"), 1.0);
  for (const std::string* shed : {&second, &third}) {
    EXPECT_NE(shed->find("503"), std::string::npos) << *shed;
    EXPECT_NE(shed->find("Retry-After:"), std::string::npos) << *shed;
    EXPECT_NE(shed->find("overloaded"), std::string::npos) << *shed;
  }
  // Shedding never drops the connection: the retried query succeeds.
  ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=2 HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(json_number(recv_response(fd, buf), "distance"), 3.0);
  ASSERT_TRUE(send_all(fd, "GET /stats HTTP/1.1\r\n\r\n"));
  const std::string stats = recv_response(fd, buf);
  EXPECT_EQ(json_number(stats, "shed"), 2.0) << stats;
  ::close(fd);
}

TEST(ServeDaemon, PipeliningCapDefersWithoutDroppingRequests) {
  serve::ServeOptions options;
  options.max_pipeline = 1;
  TestServer server(weighted_path5(), options);
  const int fd = connect_loopback(server.daemon.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd,
                       "GET /distance?s=0&t=1 HTTP/1.1\r\n\r\n"
                       "GET /distance?s=0&t=2 HTTP/1.1\r\n\r\n"
                       "GET /distance?s=0&t=3 HTTP/1.1\r\n\r\n"
                       "GET /distance?s=0&t=4 HTTP/1.1\r\n\r\n"));
  // The cap defers parsing, never sheds: all four answer 200, in order,
  // across (at least) four zero-timeout rounds.
  std::string buf;
  const double want[] = {1.0, 3.0, 6.0, 10.0};
  for (const double expect : want) {
    const std::string resp = recv_response(fd, buf);
    EXPECT_NE(resp.find("200"), std::string::npos) << resp;
    EXPECT_EQ(json_number(resp, "distance"), expect) << resp;
  }
  ::close(fd);
}

TEST(ServeDaemon, TrickledRequestsAnswer503AfterTheDeadline) {
  serve::ServeOptions options;
  options.deadline_ms = 50;
  TestServer server(weighted_path5(), options);
  const int fd = connect_loopback(server.daemon.port());
  ASSERT_GE(fd, 0);
  std::string buf;
  // A slow-loris shape: the head arrives, then nothing for far longer than
  // the deadline, then the finishing bytes.
  ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=4 HTTP/1.1\r\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(send_all(fd, "\r\n"));
  const std::string stale = recv_response(fd, buf);
  EXPECT_NE(stale.find("503"), std::string::npos) << stale;
  EXPECT_NE(stale.find("deadline exceeded"), std::string::npos) << stale;
  // The shed is per-request: a prompt request on the same connection works.
  ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=4 HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(json_number(recv_response(fd, buf), "distance"), 10.0);
  ::close(fd);
}

// --- signal hygiene & idle accounting ------------------------------------

TEST(IgnoreSigpipe, SendToAClosedPeerReturnsEpipeInsteadOfKilling) {
  serve::net::ignore_sigpipe();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);
  // Plain send, deliberately without MSG_NOSIGNAL: before ignore_sigpipe()
  // this raised SIGPIPE and killed the whole process.
  errno = 0;
  const ssize_t r = ::send(sv[0], "x", 1, 0);
  EXPECT_EQ(r, -1);
  EXPECT_EQ(errno, EPIPE);
  ::close(sv[0]);
}

TEST(ServeDaemon, SurvivesClientsVanishingMidResponse) {
  TestServer server(weighted_path5());
  const std::uint16_t port = server.daemon.port();
  // Five clients send a request and hard-reset (SO_LINGER 0 → RST) without
  // reading: the daemon's flush hits a dead socket each time.
  for (int i = 0; i < 5; ++i) {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=4 HTTP/1.1\r\n\r\n"));
    const linger lg{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
  }
  // The daemon must still be alive and correct afterwards.
  EXPECT_EQ(json_number(http_get(port, "/distance?s=0&t=4"), "distance"),
            10.0);
}

TEST(ServeDaemon, IdleClockRestartsOnEveryCompletedRequest) {
  serve::ServeOptions options;
  options.idle_timeout_ms = 600;
  TestServer server(weighted_path5(), options);
  const int fd = connect_loopback(server.daemon.port());
  ASSERT_GE(fd, 0);
  std::string buf;
  // Four requests with 150 ms of think time each: ~600 ms on one
  // connection, but never 600 ms idle — the per-request clock reset must
  // keep it open (the old accounting timed the connection, not the gaps).
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ASSERT_TRUE(send_all(fd, "GET /distance?s=0&t=1 HTTP/1.1\r\n\r\n"));
    const std::string resp = recv_response(fd, buf);
    ASSERT_NE(resp.find("200"), std::string::npos) << "request " << i;
  }
  // Now actually go idle: the daemon answers 408 and closes.
  const std::string idle = recv_response(fd, buf);
  EXPECT_NE(idle.find("408"), std::string::npos) << idle;
  EXPECT_TRUE(peer_closed(fd));
  ::close(fd);
}

// --- load test -----------------------------------------------------------

TEST(LoadTest, ClosedLoopReportsQuantilesAndCacheCounters) {
  const Graph g = gnp_connected(24, 0.25, 9, 3.0);
  std::vector<EdgeId> ids(g.num_edges());
  for (EdgeId id = 0; id < g.num_edges(); ++id) ids[id] = id;
  serve::QueryEngine engine(g, ids, 3.0);
  serve::LoadTestOptions options;
  options.conns = 2;
  options.duration = 0.1;
  options.seed = 7;
  const serve::LoadTestResult r = run_load_test(engine, options);
  EXPECT_GT(r.requests, 0u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.achieved_qps, 0.0);
  EXPECT_LE(r.p50_ms, r.p99_ms);
  EXPECT_EQ(r.cache_hits + r.cache_misses, engine.queries_answered());
  EXPECT_GE(r.cache_hit_rate, 0.0);
  EXPECT_LE(r.cache_hit_rate, 1.0);
}

// The in-process acceptance run: hostile seeded clients (resets, slow-loris,
// malformed floods, oversized requests) plus a reload storm, against a
// rebuildable epoch manager. `errors` counts only protocol violations — a
// dropped well-formed request or an unknown status — so errors == 0 is the
// "zero dropped connections, every response well-formed" invariant.
TEST(LoadTest, ChaosAndReloadStormKeepTheProtocolClean) {
  const Graph g = gnp_connected(32, 0.25, 9, 3.0);
  std::vector<EdgeId> ids(g.num_edges());
  for (EdgeId id = 0; id < g.num_edges(); ++id) ids[id] = id;
  auto make_epoch = [g, ids] {
    Graph copy = g;
    return serve::EngineEpoch::build(std::move(copy), ids, 3.0, {}, "mem");
  };
  auto epochs = std::make_shared<serve::EpochManager>(
      make_epoch(), [make_epoch](const std::string&) { return make_epoch(); });

  serve::LoadTestOptions options;
  options.conns = 3;
  options.duration = 0.3;
  options.seed = 11;
  options.chaos = 0.4;
  options.reload_every = 16;
  const serve::LoadTestResult r = run_load_test(epochs, options);

  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.requests, 0u);
  EXPECT_GT(r.chaos_events, 0u);
  EXPECT_EQ(r.chaos_events, r.chaos_resets + r.chaos_slowloris +
                                r.chaos_malformed + r.chaos_oversized);
  EXPECT_GT(r.reloads_sent, 0u);
  EXPECT_GE(r.reload_acks, 1u);
  EXPECT_GE(r.reloads_ok, 1u);
  EXPECT_GE(r.final_epoch, 2u);  // the storm landed at least one swap
}

}  // namespace
}  // namespace ftspan
