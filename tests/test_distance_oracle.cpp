#include "spanner/distance_oracle.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"

namespace ftspan {
namespace {

TEST(DistanceOracle, RejectsK0) {
  EXPECT_THROW(DistanceOracle(path(3), 0, 1), std::invalid_argument);
}

TEST(DistanceOracle, SelfDistanceZero) {
  const DistanceOracle oracle(path(5), 2, 1);
  for (Vertex v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(oracle.query(v, v), 0.0);
}

TEST(DistanceOracle, K1IsExact) {
  const Graph g = gnp_connected(40, 0.15, 3, 5.0);
  const DistanceOracle oracle(g, 1, 7);
  const auto exact = all_pairs_distances(g);
  for (Vertex u = 0; u < 40; u += 3)
    for (Vertex v = 0; v < 40; v += 5)
      EXPECT_NEAR(oracle.query(u, v), exact[u][v], 1e-9);
}

TEST(DistanceOracle, StretchBoundHolds) {
  for (std::size_t k : {2u, 3u}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      const Graph g = gnp_connected(50, 0.15, seed, 4.0);
      const DistanceOracle oracle(g, k, seed * 11);
      const auto exact = all_pairs_distances(g);
      for (Vertex u = 0; u < 50; u += 2) {
        for (Vertex v = 0; v < 50; v += 3) {
          if (u == v) continue;
          const Weight est = oracle.query(u, v);
          EXPECT_GE(est, exact[u][v] - 1e-9) << u << "," << v;  // never under
          EXPECT_LE(est, (2.0 * k - 1.0) * exact[u][v] + 1e-9)
              << "k=" << k << " u=" << u << " v=" << v;
        }
      }
    }
  }
}

TEST(DistanceOracle, SymmetricQueries) {
  const Graph g = gnp_connected(30, 0.2, 5);
  const DistanceOracle oracle(g, 2, 9);
  for (Vertex u = 0; u < 30; u += 2)
    for (Vertex v = u + 1; v < 30; v += 3)
      EXPECT_DOUBLE_EQ(oracle.query(u, v), oracle.query(v, u));
}

TEST(DistanceOracle, DisconnectedReturnsInfinity) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const DistanceOracle oracle(g, 2, 3);
  EXPECT_EQ(oracle.query(0, 3), kInfiniteWeight);
  EXPECT_EQ(oracle.query(0, 5), kInfiniteWeight);
  EXPECT_LT(oracle.query(0, 2), kInfiniteWeight);
}

TEST(DistanceOracle, FaultedVerticesExcluded) {
  const Graph g = path(5);  // 0-1-2-3-4
  VertexSet f(5, {2});
  const DistanceOracle oracle(g, 2, 3, &f);
  EXPECT_EQ(oracle.query(0, 4), kInfiniteWeight);
  EXPECT_LT(oracle.query(0, 1), kInfiniteWeight);
}

TEST(DistanceOracle, SizeSubquadraticOnDenseGraph) {
  const std::size_t n = 120;
  const Graph g = complete(n);
  const DistanceOracle oracle(g, 2, 13);
  // Expected O(k n^{3/2}) ~ 2*1315; allow generous slack, must beat n².
  EXPECT_LT(oracle.size(), n * n / 2);
}

TEST(DistanceOracle, BunchContainsTopLevelWitness) {
  const Graph g = gnp_connected(30, 0.2, 17);
  const std::size_t k = 3;
  const DistanceOracle oracle(g, k, 19);
  // Every vertex of the top level A_{k-1} lies in every bunch.
  for (Vertex v = 0; v < 30; ++v) {
    const Vertex top = oracle.witness(v, k - 1);
    if (top == kInvalidVertex) continue;
    bool found = false;
    for (const auto& [w, d] : oracle.bunch(v))
      if (w == top) found = true;
    EXPECT_TRUE(found) << "v=" << v;
  }
}

TEST(DistanceOracle, WitnessDistancesMonotoneInLevel) {
  const Graph g = gnp_connected(40, 0.2, 21);
  const DistanceOracle oracle(g, 3, 23);
  for (Vertex v = 0; v < 40; ++v) {
    EXPECT_DOUBLE_EQ(oracle.witness_distance(v, 0), 0.0);  // A_0 = V
    EXPECT_LE(oracle.witness_distance(v, 0), oracle.witness_distance(v, 1));
    EXPECT_LE(oracle.witness_distance(v, 1), oracle.witness_distance(v, 2));
  }
}

class OracleSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(OracleSweep, NeverUnderestimatesNeverExceedsStretch) {
  const auto [k, seed] = GetParam();
  const Graph g = gnp_connected(35, 0.2, static_cast<std::uint64_t>(seed), 3.0);
  const DistanceOracle oracle(g, k, static_cast<std::uint64_t>(seed) * 29);
  const auto exact = all_pairs_distances(g);
  for (Vertex u = 0; u < 35; u += 4)
    for (Vertex v = 1; v < 35; v += 4) {
      if (u == v) continue;
      const Weight est = oracle.query(u, v);
      EXPECT_GE(est, exact[u][v] - 1e-9);
      EXPECT_LE(est, (2.0 * k - 1.0) * exact[u][v] + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OracleSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace ftspan
