#include "graph/vertex_set.hpp"

#include <gtest/gtest.h>

namespace ftspan {
namespace {

TEST(VertexSet, EmptyAfterConstruction) {
  VertexSet s(100);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.universe_size(), 100u);
  for (Vertex v = 0; v < 100; ++v) EXPECT_FALSE(s.contains(v));
}

TEST(VertexSet, InsertEraseContains) {
  VertexSet s(70);
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(69);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(69));
  EXPECT_FALSE(s.contains(1));
  s.erase(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.count(), 3u);
}

TEST(VertexSet, InitializerList) {
  VertexSet s(10, {1, 3, 5});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(2));
}

TEST(VertexSet, InsertIdempotent) {
  VertexSet s(10);
  s.insert(5);
  s.insert(5);
  EXPECT_EQ(s.count(), 1u);
}

TEST(VertexSet, ClearEmpties) {
  VertexSet s(10, {1, 2, 3});
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(VertexSet, ToVectorSorted) {
  VertexSet s(130, {129, 0, 64, 63});
  const auto v = s.to_vector();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[1], 63u);
  EXPECT_EQ(v[2], 64u);
  EXPECT_EQ(v[3], 129u);
}

TEST(VertexSet, DisjointAndSubset) {
  VertexSet a(10, {1, 2});
  VertexSet b(10, {3, 4});
  VertexSet c(10, {1, 2, 3});
  EXPECT_TRUE(a.disjoint_from(b));
  EXPECT_FALSE(a.disjoint_from(c));
  EXPECT_TRUE(a.subset_of(c));
  EXPECT_FALSE(c.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
}

TEST(VertexSet, UnionAssign) {
  VertexSet a(10, {1, 2});
  VertexSet b(10, {2, 3});
  a |= b;
  EXPECT_EQ(a.count(), 3u);
  EXPECT_TRUE(a.contains(3));
}

TEST(VertexSet, ComplementRespectsUniverse) {
  VertexSet s(67, {0, 66});
  const VertexSet c = s.complement();
  EXPECT_EQ(c.count(), 65u);
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.contains(66));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(65));
  // No phantom bits beyond the universe.
  EXPECT_EQ(c.to_vector().back(), 65u);
}

TEST(VertexSet, Equality) {
  VertexSet a(10, {1});
  VertexSet b(10, {1});
  VertexSet c(10, {2});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(VertexSet, WordBoundaryStress) {
  VertexSet s(256);
  for (Vertex v = 0; v < 256; v += 2) s.insert(v);
  EXPECT_EQ(s.count(), 128u);
  const VertexSet c = s.complement();
  EXPECT_EQ(c.count(), 128u);
  for (Vertex v = 0; v < 256; ++v) EXPECT_NE(s.contains(v), c.contains(v));
}

}  // namespace
}  // namespace ftspan
