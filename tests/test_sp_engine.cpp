// DijkstraEngine / Csr tests: equivalence with the public dijkstra() wrapper,
// targeted early exit, epoch rollover of the pooled scratch, and the
// zero-allocation guarantee for the conversion inner loop.
//
// This translation unit overrides the global allocation functions with
// counting wrappers so the hot-loop tests can assert an exact allocation
// count of zero after warm-up.
#include "graph/sp_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "ftspanner/conversion.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"
#include "spanner/greedy.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ftspan {
namespace {

Graph weighted_test_graph() {
  Graph g(8);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 1.5);
  g.add_edge(0, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 2, 1.0);
  g.add_edge(2, 5, 4.0);
  g.add_edge(5, 6, 0.5);
  g.add_edge(1, 6, 10.0);
  // vertex 7 isolated
  return g;
}

TEST(DijkstraEngine, MatchesReferenceDijkstra) {
  const Graph g = gnp(60, 0.1, 7);
  DijkstraEngine eng;
  for (Vertex s = 0; s < g.num_vertices(); s += 7) {
    const auto ref = dijkstra(g, s);
    eng.run(g, s);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(eng.dist(v), ref.dist[v]) << "s=" << s << " v=" << v;
      EXPECT_EQ(eng.parent(v), ref.parent[v]) << "s=" << s << " v=" << v;
    }
  }
}

TEST(DijkstraEngine, CsrViewMatchesAdjacencyView) {
  const Graph g = gnp(60, 0.1, 8);
  const Csr csr(g);
  ASSERT_EQ(csr.num_vertices(), g.num_vertices());
  ASSERT_EQ(csr.num_arcs(), 2 * g.num_edges());
  // The snapshot preserves per-vertex arc order exactly.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto arcs = g.neighbors(v);
    const auto flat = csr.out(v);
    ASSERT_EQ(arcs.size(), flat.size());
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      EXPECT_EQ(arcs[i].to, flat[i].to);
      EXPECT_EQ(arcs[i].edge, flat[i].edge);
      EXPECT_EQ(arcs[i].w, flat[i].w);
    }
  }
  DijkstraEngine a, b;
  for (Vertex s = 0; s < g.num_vertices(); s += 11) {
    a.run(g, s);
    b.run(csr, s);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(a.dist(v), b.dist(v));
      EXPECT_EQ(a.parent(v), b.parent(v));
      EXPECT_EQ(a.via(v), b.via(v));
    }
  }
}

TEST(DijkstraEngine, BoundAndFaultsMatchReference) {
  const Graph g = weighted_test_graph();
  VertexSet faults(g.num_vertices());
  faults.insert(3);
  const Weight bound = 4.0;
  const auto ref = dijkstra(g, 0, &faults, bound);
  DijkstraEngine eng;
  eng.run(g, 0, &faults, {}, bound);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(eng.dist(v), ref.dist[v]) << "v=" << v;
}

TEST(DijkstraEngine, TargetedEarlyExitSettlesAllTargets) {
  const Graph g = weighted_test_graph();
  DijkstraEngine eng;
  const Vertex targets[] = {2, 6};
  eng.run(g, 0, nullptr, targets);
  const auto ref = dijkstra(g, 0);
  for (const Vertex t : targets) {
    EXPECT_TRUE(eng.settled(t));
    EXPECT_EQ(eng.dist(t), ref.dist[t]);
  }
}

TEST(DijkstraEngine, BoundedPairMatchesPairDistance) {
  const Graph g = gnp(50, 0.12, 9);
  DijkstraEngine eng;
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const Vertex s = static_cast<Vertex>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.num_vertices()) - 1));
    const Vertex t = static_cast<Vertex>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.num_vertices()) - 1));
    EXPECT_EQ(eng.bounded_pair(g, s, t), pair_distance(g, s, t));
  }
}

TEST(DijkstraEngine, SettleOrderIsNonDecreasingAndParentFirst) {
  const Graph g = gnp(40, 0.15, 4);
  DijkstraEngine eng;
  eng.run(g, 0);
  Weight prev = 0;
  std::vector<char> seen(g.num_vertices(), 0);
  for (const Vertex v : eng.settle_order()) {
    EXPECT_GE(eng.dist(v), prev);
    prev = eng.dist(v);
    if (eng.parent(v) != kInvalidVertex) EXPECT_TRUE(seen[eng.parent(v)]);
    seen[v] = 1;
  }
}

// The pooled scratch is invalidated by a 32-bit epoch bump; when the counter
// wraps, stamps from 2^32 runs ago must not read as current. Jump the epoch
// to just below the wrap and check results straddling it.
TEST(DijkstraEngine, EpochRolloverKeepsResultsCorrect) {
  const Graph g = weighted_test_graph();
  const auto ref = dijkstra(g, 0);

  DijkstraEngine eng;
  eng.run(g, 0);  // stamps every reachable vertex at epoch 1
  eng.debug_set_epoch(0xfffffffeu);
  // Next run uses epoch 0xffffffff; the one after wraps to 0 -> reset to 1,
  // the same value the first run used. Stale stamps must not leak through.
  for (int run = 0; run < 3; ++run) {
    eng.run(g, 1);  // different source: distances differ from the stale run
    const auto ref1 = dijkstra(g, 1);
    for (Vertex v = 0; v < g.num_vertices(); ++v)
      EXPECT_EQ(eng.dist(v), ref1.dist[v]) << "run=" << run << " v=" << v;
  }
  EXPECT_GE(eng.debug_epoch(), 1u);
  EXPECT_LE(eng.debug_epoch(), 2u);  // wrapped: 0xffffffff -> 1 -> 2
}

// An integer-weight random graph (weights 1..max_w). With the default
// max_w = 12 this is the domain where kAuto switches to the bucket queue;
// with max_w above kMaxBucketWeight it is the delta queue's mid-range.
Graph integer_test_graph(std::size_t n, double p, std::uint64_t seed,
                         std::int64_t max_w = 12) {
  Graph g = gnp(n, p, seed);
  Graph out(g.num_vertices());
  Rng rng(hash_combine(seed, 0x1b));
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& e = g.edge(id);
    out.add_edge(e.u, e.v, static_cast<Weight>(rng.uniform_int(1, max_w)));
  }
  return out;
}

// The tentpole contract: on integer weights the bucket queue reproduces the
// stable heap bit-for-bit — distances, parents, vias, AND the settle order.
TEST(DijkstraEngine, BucketQueueMatchesHeapBitForBitOnIntegerWeights) {
  const Graph g = integer_test_graph(90, 0.08, 21);
  const Csr csr(g);
  ASSERT_TRUE(csr.weights().integral);
  DijkstraEngine heap, bucket;
  heap.set_queue(SpQueue::kHeap);
  bucket.set_queue(SpQueue::kBucket, csr.weights().max_weight);
  VertexSet faults(g.num_vertices());
  faults.insert(3);
  faults.insert(17);
  for (Vertex s = 0; s < g.num_vertices(); s += 5) {
    heap.run(csr, s, &faults);
    bucket.run(csr, s, &faults);
    const auto ho = heap.settle_order();
    const auto bo = bucket.settle_order();
    ASSERT_EQ(ho.size(), bo.size()) << "s=" << s;
    for (std::size_t i = 0; i < ho.size(); ++i)
      EXPECT_EQ(ho[i], bo[i]) << "s=" << s << " i=" << i;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(heap.dist(v), bucket.dist(v)) << "s=" << s << " v=" << v;
      EXPECT_EQ(heap.parent(v), bucket.parent(v)) << "s=" << s << " v=" << v;
      EXPECT_EQ(heap.via(v), bucket.via(v)) << "s=" << s << " v=" << v;
    }
  }
}

TEST(DijkstraEngine, BucketQueueBoundedPairMatchesHeap) {
  const Graph g = integer_test_graph(70, 0.1, 33);
  const Csr csr(g);
  DijkstraEngine heap, bucket;
  heap.set_queue(SpQueue::kHeap);
  bucket.set_queue(SpQueue::kBucket, csr.weights().max_weight);
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    const Vertex s = static_cast<Vertex>(rng.uniform_index(g.num_vertices()));
    const Vertex t = static_cast<Vertex>(rng.uniform_index(g.num_vertices()));
    const Weight bound = static_cast<Weight>(rng.uniform_int(1, 24));
    EXPECT_EQ(heap.bounded_pair(csr, s, t, nullptr, bound),
              bucket.bounded_pair(csr, s, t, nullptr, bound))
        << "s=" << s << " t=" << t << " bound=" << bound;
  }
}

TEST(DijkstraEngine, BidirectionalBoundedPairWorksOnBucketQueue) {
  const Graph g = integer_test_graph(60, 0.1, 44);
  const Csr csr(g);
  DijkstraEngine hf, hb, bf, bb;
  hf.set_queue(SpQueue::kHeap);
  hb.set_queue(SpQueue::kHeap);
  bf.set_queue(SpQueue::kBucket, csr.weights().max_weight);
  bb.set_queue(SpQueue::kBucket, csr.weights().max_weight);
  const auto visit = [&csr](Vertex v, auto&& relax) {
    for (const CsrArc& a : csr.out(v)) relax(a.to, a.w, a.edge);
  };
  Rng rng(6);
  for (int trial = 0; trial < 60; ++trial) {
    const Vertex s = static_cast<Vertex>(rng.uniform_index(g.num_vertices()));
    const Vertex t = static_cast<Vertex>(rng.uniform_index(g.num_vertices()));
    const Weight bound = static_cast<Weight>(rng.uniform_int(1, 24));
    const Weight want = DijkstraEngine::bidirectional_bounded_pair(
        hf, hb, g.num_vertices(), s, t, nullptr, bound, visit);
    const Weight got = DijkstraEngine::bidirectional_bounded_pair(
        bf, bb, g.num_vertices(), s, t, nullptr, bound, visit);
    EXPECT_EQ(want, got) << "s=" << s << " t=" << t << " bound=" << bound;
  }
}

// The delta queue on mid-range weights (1..10^5, above the Dial ceiling):
// distances, parents, vias, AND the settle order must match the stable heap
// bit for bit — the same contract the bucket queue carries below the ceiling.
TEST(DijkstraEngine, DeltaQueueMatchesHeapBitForBitOnMidRangeWeights) {
  const Graph g = integer_test_graph(90, 0.08, 21, 100000);
  const Csr csr(g);
  ASSERT_TRUE(csr.weights().integral);
  ASSERT_GT(csr.weights().max_weight, kMaxBucketWeight);
  DijkstraEngine heap, delta;
  heap.set_queue(SpQueue::kHeap);
  delta.set_queue(SpQueue::kDelta, csr.weights().max_weight);
  VertexSet faults(g.num_vertices());
  faults.insert(3);
  faults.insert(17);
  for (Vertex s = 0; s < g.num_vertices(); s += 5) {
    heap.run(csr, s, &faults);
    delta.run(csr, s, &faults);
    const auto ho = heap.settle_order();
    const auto dl = delta.settle_order();
    ASSERT_EQ(ho.size(), dl.size()) << "s=" << s;
    for (std::size_t i = 0; i < ho.size(); ++i)
      EXPECT_EQ(ho[i], dl[i]) << "s=" << s << " i=" << i;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(heap.dist(v), delta.dist(v)) << "s=" << s << " v=" << v;
      EXPECT_EQ(heap.parent(v), delta.parent(v)) << "s=" << s << " v=" << v;
      EXPECT_EQ(heap.via(v), delta.via(v)) << "s=" << s << " v=" << v;
    }
  }
}

// Tie-dense regime: few distinct weights, so equal-distance pops are the
// common case and the (distance, push sequence) tie-break carries the whole
// determinism contract through the settle heap.
TEST(DijkstraEngine, DeltaQueueMatchesHeapOnTieDenseWeights) {
  Graph base = gnp(80, 0.1, 77);
  Graph g(base.num_vertices());
  Rng rng(hash_combine(77, 0x2c));
  for (EdgeId id = 0; id < base.num_edges(); ++id) {
    const Edge& e = base.edge(id);
    // Three weight levels far above the Dial ceiling -> constant ties.
    g.add_edge(e.u, e.v,
               static_cast<Weight>(10000 * rng.uniform_int(1, 3)));
  }
  const Csr csr(g);
  DijkstraEngine heap, delta;
  heap.set_queue(SpQueue::kHeap);
  delta.set_queue(SpQueue::kDelta, csr.weights().max_weight);
  for (Vertex s = 0; s < g.num_vertices(); s += 7) {
    heap.run(csr, s);
    delta.run(csr, s);
    const auto ho = heap.settle_order();
    const auto dl = delta.settle_order();
    ASSERT_EQ(ho.size(), dl.size()) << "s=" << s;
    for (std::size_t i = 0; i < ho.size(); ++i)
      ASSERT_EQ(ho[i], dl[i]) << "s=" << s << " i=" << i;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(heap.parent(v), delta.parent(v)) << "s=" << s << " v=" << v;
      ASSERT_EQ(heap.via(v), delta.via(v)) << "s=" << s << " v=" << v;
    }
  }
}

TEST(DijkstraEngine, DeltaQueueBoundedPairMatchesHeap) {
  const Graph g = integer_test_graph(70, 0.1, 33, 100000);
  const Csr csr(g);
  DijkstraEngine heap, delta;
  heap.set_queue(SpQueue::kHeap);
  delta.set_queue(SpQueue::kDelta, csr.weights().max_weight);
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    const Vertex s = static_cast<Vertex>(rng.uniform_index(g.num_vertices()));
    const Vertex t = static_cast<Vertex>(rng.uniform_index(g.num_vertices()));
    const Weight bound = static_cast<Weight>(rng.uniform_int(1, 300000));
    EXPECT_EQ(heap.bounded_pair(csr, s, t, nullptr, bound),
              delta.bounded_pair(csr, s, t, nullptr, bound))
        << "s=" << s << " t=" << t << " bound=" << bound;
  }
}

TEST(DijkstraEngine, BidirectionalBoundedPairWorksOnDeltaQueue) {
  const Graph g = integer_test_graph(60, 0.1, 44, 100000);
  const Csr csr(g);
  DijkstraEngine hf, hb, df, db;
  hf.set_queue(SpQueue::kHeap);
  hb.set_queue(SpQueue::kHeap);
  df.set_queue(SpQueue::kDelta, csr.weights().max_weight);
  db.set_queue(SpQueue::kDelta, csr.weights().max_weight);
  const auto visit = [&csr](Vertex v, auto&& relax) {
    for (const CsrArc& a : csr.out(v)) relax(a.to, a.w, a.edge);
  };
  Rng rng(6);
  for (int trial = 0; trial < 60; ++trial) {
    const Vertex s = static_cast<Vertex>(rng.uniform_index(g.num_vertices()));
    const Vertex t = static_cast<Vertex>(rng.uniform_index(g.num_vertices()));
    const Weight bound = static_cast<Weight>(rng.uniform_int(1, 300000));
    const Weight want = DijkstraEngine::bidirectional_bounded_pair(
        hf, hb, g.num_vertices(), s, t, nullptr, bound, visit);
    const Weight got = DijkstraEngine::bidirectional_bounded_pair(
        df, db, g.num_vertices(), s, t, nullptr, bound, visit);
    EXPECT_EQ(want, got) << "s=" << s << " t=" << t << " bound=" << bound;
  }
}

// An explicit delta request must also be exact on *small* integer weights
// (delta = 1: every bucket holds one key, the settle heap is pure FIFO).
TEST(DijkstraEngine, DeltaQueueMatchesHeapOnSmallIntegerWeights) {
  const Graph g = integer_test_graph(90, 0.08, 21);
  const Csr csr(g);
  DijkstraEngine heap, delta;
  heap.set_queue(SpQueue::kHeap);
  delta.set_queue(SpQueue::kDelta, csr.weights().max_weight);
  for (Vertex s = 0; s < g.num_vertices(); s += 9) {
    heap.run(csr, s);
    delta.run(csr, s);
    const auto ho = heap.settle_order();
    const auto dl = delta.settle_order();
    ASSERT_EQ(ho.size(), dl.size()) << "s=" << s;
    for (std::size_t i = 0; i < ho.size(); ++i)
      ASSERT_EQ(ho[i], dl[i]) << "s=" << s << " i=" << i;
  }
}

TEST(DijkstraEngine, TuneDeltaFollowsTheBucketBudgetRule) {
  // delta = smallest power of two with max_weight / delta <= bucket_max.
  EXPECT_EQ(tune_delta(100.0), 1.0);
  EXPECT_EQ(tune_delta(4096.0), 1.0);
  EXPECT_EQ(tune_delta(100000.0), 32.0);
  EXPECT_EQ(tune_delta(1000000.0), 256.0);
  EXPECT_EQ(tune_delta(100000.0, 1024.0), 128.0);
  EXPECT_EQ(tune_delta(0.0), 1.0);
}

TEST(DijkstraEngine, AutoPolicySelectsBucketOnlyForBoundedIntegerWeights) {
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kAuto, true, 12.0),
            SpQueue::kBucket);
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kAuto, false, 12.0),
            SpQueue::kHeap);
  // Above the Dial ceiling, integral weights now resolve to delta-stepping
  // (the mid-range regime), not the heap.
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kAuto, true,
                            static_cast<Weight>(kMaxBucketWeight) + 1),
            SpQueue::kDelta);
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kAuto, false,
                            static_cast<Weight>(kMaxBucketWeight) + 1),
            SpQueue::kHeap);
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kHeap, true, 1.0), SpQueue::kHeap);
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kBucket, true, 1.0),
            SpQueue::kBucket);
  // An explicit bucket/delta request is downgraded on fractional weights — a
  // label-setting bucket structure would be incorrect there.
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kBucket, false, 1.0),
            SpQueue::kHeap);
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kDelta, false, 1.0),
            SpQueue::kHeap);
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kDelta, true, 100000.0),
            SpQueue::kDelta);
  // The bucket_max knob moves the bucket/delta frontier in both directions.
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kAuto, true, 100000.0, 100000.0),
            SpQueue::kBucket);
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kAuto, true, 100.0, 64.0),
            SpQueue::kDelta);
  EXPECT_EQ(select_sp_queue(SpEnginePolicy::kBucket, true, 100.0, 64.0),
            SpQueue::kHeap);
}

TEST(DijkstraEngine, BucketQueueRunIsAllocationFreeAfterWarmUp) {
  const Graph g = integer_test_graph(80, 0.1, 55);
  const Csr csr(g);
  DijkstraEngine eng;
  eng.set_queue(SpQueue::kBucket, csr.weights().max_weight);
  eng.reserve(g.num_vertices(), 2 * g.num_edges() + 1);
  eng.run(csr, 0);  // warm-up
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (Vertex s = 0; s < g.num_vertices(); ++s) eng.run(csr, s);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(DijkstraEngine, DeltaQueueRunIsAllocationFreeAfterWarmUp) {
  const Graph g = integer_test_graph(80, 0.1, 55, 100000);
  const Csr csr(g);
  DijkstraEngine eng;
  eng.set_queue(SpQueue::kDelta, csr.weights().max_weight);
  eng.reserve(g.num_vertices(), 2 * g.num_edges() + 1);
  eng.run(csr, 0);  // warm-up
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (Vertex s = 0; s < g.num_vertices(); ++s) eng.run(csr, s);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(DijkstraEngine, RunIsAllocationFreeAfterWarmUp) {
  const Graph g = gnp(80, 0.1, 5);
  const Csr csr(g);
  DijkstraEngine eng;
  eng.reserve(g.num_vertices(), 2 * g.num_edges() + 1);
  eng.run(csr, 0);  // warm-up
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (Vertex s = 0; s < g.num_vertices(); ++s) eng.run(csr, s);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

// The conversion inner loop: sample a fault set, run the greedy base spanner
// on G \ F through the pooled workspace. After one warm-up iteration the
// whole loop must perform zero heap allocations.
TEST(DijkstraEngine, ConversionInnerLoopIsAllocationFreeAfterWarmUp) {
  const Graph g = gnp(120, 0.08, 6);
  const GreedyContext ctx(g);
  GreedyWorkspace ws;
  VertexSet removed(g.num_vertices());

  const auto iteration = [&](std::uint64_t it) {
    Rng rng(hash_combine(11, it));
    removed.clear();
    for (Vertex v = 0; v < g.num_vertices(); ++v)
      if (!rng.bernoulli(0.8)) removed.insert(v);
    return ws.run(ctx, 3.0, &removed).size();
  };

  std::size_t kept = iteration(0);  // warm-up
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t it = 1; it <= 20; ++it) kept += iteration(it);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(kept, 0u);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace ftspan
