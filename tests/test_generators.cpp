#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/properties.hpp"

namespace ftspan {
namespace {

TEST(Generators, GnpEdgeCountNearExpectation) {
  const std::size_t n = 300;
  const double p = 0.1;
  const Graph g = gnp(n, p, 1);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.15 * expected);
}

TEST(Generators, GnpDeterministicPerSeed) {
  const Graph a = gnp(50, 0.2, 7);
  const Graph b = gnp(50, 0.2, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edge(i).u, b.edge(i).u);
    EXPECT_EQ(a.edge(i).v, b.edge(i).v);
  }
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(gnp(20, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(gnp(20, 1.0, 1).num_edges(), 190u);
}

TEST(Generators, GnpConnectedIsConnected) {
  const Graph g = gnp_connected(60, 0.15, 3);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GnpConnectedThrowsWhenHopeless) {
  EXPECT_THROW(gnp_connected(50, 0.0001, 3, 1.0, 3), std::runtime_error);
}

TEST(Generators, GnpWeighted) {
  const Graph g = gnp(100, 0.2, 5, 10.0);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, 1.0);
    EXPECT_LE(e.w, 10.0);
  }
}

TEST(Generators, RandomGeometricRespectsRadius) {
  const Graph g = random_geometric(100, 0.3, 11);
  for (const Edge& e : g.edges()) EXPECT_LE(e.w, 0.3 + 1e-9);
}

TEST(Generators, GridStructure) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // rows*(cols-1) + (rows-1)*cols = 3*3 + 2*4 = 17
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(3, 4));  // row wrap must not connect
}

TEST(Generators, HypercubeStructure) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // n d / 2
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CompleteAndBipartite) {
  EXPECT_EQ(complete(7).num_edges(), 21u);
  const Graph kb = complete_bipartite(3, 4);
  EXPECT_EQ(kb.num_edges(), 12u);
  EXPECT_FALSE(kb.has_edge(0, 1));  // same side
  EXPECT_TRUE(kb.has_edge(0, 3));
}

TEST(Generators, PathCycleStar) {
  EXPECT_EQ(path(5).num_edges(), 4u);
  EXPECT_EQ(cycle(5).num_edges(), 5u);
  const Graph s = star(6);
  EXPECT_EQ(s.num_edges(), 5u);
  EXPECT_EQ(s.degree(0), 5u);
}

TEST(Generators, BarabasiAlbertSizeAndConnectivity) {
  const Graph g = barabasi_albert(200, 3, 17);
  EXPECT_EQ(g.num_vertices(), 200u);
  // Clique on 4 + 3 per additional vertex.
  EXPECT_EQ(g.num_edges(), 6u + 3u * 196u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, WattsStrogatzDegreeMass) {
  const Graph g = watts_strogatz(100, 2, 0.1, 23);
  // Ring lattice has n*k edges; rewiring can only drop duplicates.
  EXPECT_GE(g.num_edges(), 150u);
  EXPECT_LE(g.num_edges(), 200u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomRegularIshDegrees) {
  const Graph g = random_regular_ish(100, 4, 29);
  for (Vertex v = 0; v < 100; ++v) EXPECT_LE(g.degree(v), 4u);
  EXPECT_TRUE(is_connected(g));  // union of 2 Hamiltonian cycles
}

TEST(Generators, DiGnpDensity) {
  const Digraph g = di_gnp(100, 0.1, 31);
  const double expected = 0.1 * 100 * 99;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.2 * expected);
}

TEST(Generators, DiCompleteCount) {
  const Digraph g = di_complete(9);
  EXPECT_EQ(g.num_edges(), 72u);
  EXPECT_TRUE(g.has_edge(3, 5));
  EXPECT_TRUE(g.has_edge(5, 3));
}

TEST(Generators, BidirectDoubles) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const Digraph d = bidirect(g);
  EXPECT_EQ(d.num_edges(), 4u);
  EXPECT_TRUE(d.has_edge(0, 1));
  EXPECT_TRUE(d.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(d.edge(*d.edge_id(1, 0)).w, 2.0);
}

TEST(Generators, DiBoundedDegreeRespectsCap) {
  const Digraph g = di_bounded_degree(80, 5, 0.8, 37);
  for (Vertex v = 0; v < 80; ++v) {
    EXPECT_LE(g.out_degree(v), 5u);
    EXPECT_LE(g.in_degree(v), 5u);
  }
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(Generators, GapGadgetShape) {
  const Digraph g = gap_gadget(4, 100.0);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 9u);  // expensive edge + 2 per w_i
  EXPECT_DOUBLE_EQ(g.edge(*g.edge_id(0, 1)).w, 100.0);
  EXPECT_EQ(g.two_path_midpoints(0, 1).size(), 4u);
}

// Property sweep: generators produce simple graphs (no duplicate edges is
// enforced by Graph; verify vertex counts and determinism across a grid).
class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {};

TEST_P(GeneratorSweep, GnpIsSimpleAndDeterministic) {
  const auto [n, p, seed] = GetParam();
  const Graph a = gnp(n, p, static_cast<std::uint64_t>(seed));
  const Graph b = gnp(n, p, static_cast<std::uint64_t>(seed));
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_vertices(), n);
  EXPECT_LE(a.num_edges(), n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 10, 64, 150),
                       ::testing::Values(0.0, 0.05, 0.5, 1.0),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace ftspan
